#ifndef SICMAC_TRACE_LINK_TRACE_HPP
#define SICMAC_TRACE_LINK_TRACE_HPP

/// \file link_trace.hpp
/// The Section 7 download-measurement campaign: "5 Soekris boxes co-located
/// with existing APs ... 100 locations in adjacent classrooms and offices
/// as client locations. For each client we recorded the SNR from all the
/// 5 APs." This module generates the synthetic equivalent — a dense
/// (AP × client-location) SNR matrix from a floor-plan model — and exposes
/// the derived measurements the paper uses: the best clean 802.11g bitrate
/// per link and the best bitrate under interference from another AP.

#include <cstdint>
#include <vector>

#include "channel/two_link_rss.hpp"
#include "phy/rate_table.hpp"
#include "util/units.hpp"

namespace sic::trace {

struct LinkTraceConfig {
  int n_aps = 5;
  int n_client_locations = 100;
  double ap_spacing_m = 35.0;      ///< APs along a corridor
  double room_depth_m = 12.0;      ///< client offset range from the corridor
  /// Corridor-and-classroom propagation. The defaults put most serving
  /// links in the 20-45 dB SNR band the paper's campaign implies (every
  /// location sustains a measurable 802.11g rate from at least one AP),
  /// which is where the discrete-vs-Shannon contrast of Fig. 14 lives:
  /// saturated discrete rates shrug off moderate interference while the
  /// ideal rate degrades smoothly.
  double pathloss_exponent = 3.0;
  Decibels shadowing_sigma{5.0};
  Dbm ap_tx_power{26.0};   ///< EIRP incl. antenna gain
  Dbm noise_floor{-94.0};
};

/// A dense matrix of per-(AP, location) clean SNRs.
class LinkTrace {
 public:
  LinkTrace(int n_aps, int n_locations);

  [[nodiscard]] int n_aps() const { return n_aps_; }
  [[nodiscard]] int n_locations() const { return n_locations_; }

  [[nodiscard]] Decibels snr(int ap, int location) const;
  void set_snr(int ap, int location, Decibels snr);

  /// Best clean 802.11g bitrate for the link (the paper's "highest 802.11g
  /// bitrate at which 90% of packets are received successfully").
  [[nodiscard]] BitsPerSecond clean_rate(int ap, int location,
                                         const phy::RateTable& table) const;

  /// Best bitrate from \p ap at \p location while \p interferer transmits
  /// concurrently (the carrier-sense-off experiment): the table rate at the
  /// resulting SINR.
  [[nodiscard]] BitsPerSecond rate_under_interference(
      int ap, int interferer, int location, const phy::RateTable& table) const;

  /// Builds the 2×2 RSS matrix for the pair of AP→client links
  /// (ap1 → loc1) and (ap2 → loc2) with unit-normalized noise.
  [[nodiscard]] channel::TwoLinkRss two_link_rss(int ap1, int loc1, int ap2,
                                                 int loc2) const;

 private:
  int n_aps_;
  int n_locations_;
  std::vector<Decibels> snr_;
};

/// Generates the synthetic measurement campaign.
[[nodiscard]] LinkTrace generate_link_trace(const LinkTraceConfig& config,
                                            std::uint64_t seed);

}  // namespace sic::trace

#endif  // SICMAC_TRACE_LINK_TRACE_HPP
