#include "obs/trace_sink.hpp"

#include <cstdio>
#include <cstdlib>

namespace sic::obs {

namespace {

thread_local TraceSink* g_trace = nullptr;

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

/// True when \p text is already a self-contained JSON number, so arg
/// values like "3" or "2.5" stay numeric in the viewer.
bool is_json_number(std::string_view text) {
  if (text.empty()) return false;
  // strtod alone would also accept hex ("0x10"), "inf" and "nan" — none of
  // which are JSON — so restrict to the plain decimal alphabet first.
  for (const char c : text) {
    const bool plain = (c >= '0' && c <= '9') || c == '+' || c == '-' ||
                       c == '.' || c == 'e' || c == 'E';
    if (!plain) return false;
  }
  char* end = nullptr;
  const std::string owned{text};
  std::strtod(owned.c_str(), &end);
  return end == owned.c_str() + owned.size();
}

void append_number(std::string& out, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out += buf;
}

}  // namespace

TraceSink::TraceSink(std::ostream& os) : os_(&os) {
  // JSON Array Format; the spec makes the closing ']' optional so the
  // file stays loadable even if the process dies mid-run.
  *os_ << "[\n";
}

TraceSink::~TraceSink() { flush(); }

void TraceSink::event(char ph, std::string_view name, double ts_us,
                      double dur_us, int tid, const Args& args,
                      bool metadata) {
  std::string line;
  line.reserve(96);
  line += "{\"name\":";
  append_escaped(line, name);
  line += ",\"ph\":\"";
  line += ph;
  line += '"';
  if (!metadata) {
    line += ",\"ts\":";
    append_number(line, ts_us);
  }
  if (ph == 'X') {
    line += ",\"dur\":";
    append_number(line, dur_us);
  }
  if (ph == 'i') line += ",\"s\":\"t\"";
  line += ",\"pid\":0,\"tid\":";
  line += std::to_string(tid);
  if (!args.empty()) {
    line += ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : args) {
      if (!first) line += ',';
      first = false;
      append_escaped(line, key);
      line += ':';
      if (is_json_number(value)) {
        line += value;
      } else {
        append_escaped(line, value);
      }
    }
    line += '}';
  }
  line += "},\n";
  *os_ << line;
  ++events_;
}

void TraceSink::complete(std::string_view name, double ts_us, double dur_us,
                         int tid, const Args& args) {
  event('X', name, ts_us, dur_us, tid, args);
}

void TraceSink::begin(std::string_view name, double ts_us, int tid,
                      const Args& args) {
  event('B', name, ts_us, 0.0, tid, args);
}

void TraceSink::end(std::string_view name, double ts_us, int tid) {
  event('E', name, ts_us, 0.0, tid, {});
}

void TraceSink::instant(std::string_view name, double ts_us, int tid,
                        const Args& args) {
  event('i', name, ts_us, 0.0, tid, args);
}

void TraceSink::name_track(int tid, std::string_view name) {
  event('M', "thread_name", 0.0, 0.0, tid,
        Args{{"name", std::string{name}}}, /*metadata=*/true);
}

void TraceSink::flush() { os_->flush(); }

TraceSink* trace() { return g_trace; }

TraceSink* set_trace(TraceSink* sink) {
  TraceSink* previous = g_trace;
  g_trace = sink;
  return previous;
}

}  // namespace sic::obs
