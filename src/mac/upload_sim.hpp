#ifndef SICMAC_MAC_UPLOAD_SIM_HPP
#define SICMAC_MAC_UPLOAD_SIM_HPP

/// \file upload_sim.hpp
/// End-to-end upload experiments on the discrete-event simulator:
///
///  - run_dcf_upload: backlogged clients contend with plain CSMA/CA. With
///    `sic_at_ap` the AP's receiver recovers collided pairs (capture +
///    SIC), turning collisions from pure waste into deliveries.
///  - run_scheduled_upload: the AP executes a Section 6 SIC-aware schedule
///    (client pairing, optional power control) with no contention; every
///    planned concurrent pair must actually decode under the medium's
///    receiver model, which makes this an executable proof of the
///    scheduler's feasibility conditions.
///
/// Node ids: AP = 0, client k = k + 1.

#include <cstdint>
#include <span>
#include <vector>

#include "channel/link.hpp"
#include "core/scheduler.hpp"
#include "mac/medium.hpp"
#include "phy/rate_adapter.hpp"

namespace sic::mac {

struct UploadSimConfig {
  double packet_bits = 12000.0;
  int frames_per_client = 1;
  bool sic_at_ap = true;
  /// Fraction of the clean best feasible rate the stations actually use.
  /// 1.0 is the paper's ideal-rate assumption (collisions are then never
  /// SIC-decodable); lower values model the slack a practical bitrate
  /// adapter leaves, which SIC can harvest (Section 1's discussion).
  double rate_margin = 1.0;
  /// RTS/CTS before every data frame — the classical (pre-SIC) answer to
  /// hidden terminals, for head-to-head comparison with the SIC AP.
  bool use_rts_cts = false;
  /// Section 9 receiver imperfections, applied to the AP's SIC decoder.
  double cancellation_residual = 0.0;
  Decibels max_decodable_disparity{1e9};
  /// Mutual client-to-client RSS, as dB over the noise floor. Above the
  /// carrier-sense threshold = no hidden terminals (the default); below =
  /// everyone is hidden from everyone.
  Decibels client_mutual_snr{25.0};
  std::uint64_t seed = 1;
  SimTime horizon = from_seconds(300.0);
};

struct UploadSimResult {
  double completion_s = 0.0;     ///< last ACKed delivery (or horizon)
  std::uint64_t offered = 0;     ///< frames enqueued
  /// Data frames decoded at the AP. This counts MAC-layer receptions: when
  /// an ACK defers past a station's retry timeout (e.g. the SIC AP holding
  /// its ACK while still receiving the weaker frame), the retransmission
  /// is received again, so delivered can exceed offered — exactly the
  /// ACK-vs-latency tension [4] reports for real SIC receivers.
  std::uint64_t delivered = 0;
  std::uint64_t retries = 0;
  std::uint64_t drops = 0;
  MediumStats medium;
};

[[nodiscard]] UploadSimResult run_dcf_upload(
    std::span<const channel::LinkBudget> clients,
    const phy::RateAdapter& adapter, const UploadSimConfig& config);

/// Executes \p schedule (produced by core::schedule_upload on the same
/// clients/adapter/options) slot by slot. Multirate slots run as 802.11-
/// style fragment bursts: the stronger packet's overlap fragment rides the
/// collision at the interference-limited rate (no ACK), and its remainder
/// is boosted to the clean rate after the weaker packet's ACK turnaround.
[[nodiscard]] UploadSimResult run_scheduled_upload(
    std::span<const channel::LinkBudget> clients,
    const phy::RateAdapter& adapter, const core::Schedule& schedule,
    const UploadSimConfig& config);

}  // namespace sic::mac

#endif  // SICMAC_MAC_UPLOAD_SIM_HPP
