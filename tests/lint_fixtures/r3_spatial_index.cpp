// Lint fixture: R3 — the spatial-index determinism contract.
//
// The real SpatialGridIndex (src/topology/spatial_index.*) is deterministic
// *by construction*: flat CSR arrays, canonical cell order, sorted query
// outputs — no unordered containers anywhere, so R3 stays hot on it with
// nothing to flag. This fixture pins the counterfactual: the "obvious"
// hash-bucketed index shape below iterates an unordered_map and must
// still be caught, so nobody can drift the index back onto a container
// whose iteration order varies across libstdc++ versions and runs.
#include <unordered_map>
#include <vector>

struct BucketedIndex {
  std::unordered_map<long, std::vector<int>> cells;

  std::vector<int> all_ids() const {
    std::vector<int> out;
    for (const auto& cell : cells) {  // line 18: R3 (unordered iteration)
      out.insert(out.end(), cell.second.begin(), cell.second.end());
    }
    return out;
  }

  bool cell_occupied(long key) const {
    return cells.find(key) != cells.end();  // clean: membership, not order
  }
};

// The CSR shape the real index uses: flat arrays, id-ordered fill —
// nothing here for R3 to object to.
struct CsrIndex {
  std::vector<int> cell_start;
  std::vector<int> ids;

  std::vector<int> cell_ids(int cell) const {
    return std::vector<int>(
        ids.begin() + cell_start[static_cast<unsigned>(cell)],
        ids.begin() + cell_start[static_cast<unsigned>(cell) + 1]);
  }
};
