#ifndef SICMAC_UTIL_CHECK_HPP
#define SICMAC_UTIL_CHECK_HPP

/// \file check.hpp
/// Precondition checking. SIC_CHECK is always on (library boundary /
/// programmer-error checks, per CppCoreGuidelines I.6); SIC_DCHECK compiles
/// out in release hot paths.

#include <sstream>
#include <stdexcept>
#include <string>

namespace sic::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "SIC_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace sic::detail

#define SIC_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr)) ::sic::detail::check_failed(#expr, __FILE__, __LINE__, {}); \
  } while (false)

#define SIC_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr))                                                      \
      ::sic::detail::check_failed(#expr, __FILE__, __LINE__, (msg));  \
  } while (false)

#ifdef NDEBUG
#define SIC_DCHECK(expr) ((void)0)
#else
#define SIC_DCHECK(expr) SIC_CHECK(expr)
#endif

#endif  // SICMAC_UTIL_CHECK_HPP
