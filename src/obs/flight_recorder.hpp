#ifndef SICMAC_OBS_FLIGHT_RECORDER_HPP
#define SICMAC_OBS_FLIGHT_RECORDER_HPP

/// \file flight_recorder.hpp
/// Deployment flight recorder: a bounded ring of structured per-(ap,epoch)
/// events plus a latching trip switch and a one-shot post-mortem emitter.
///
/// The deployment engine records every discrete incident it acts on —
/// handoffs, quarantines and readmissions, ladder moves, watchdog
/// warnings/fires, fault-schedule activations — as it happens. Nothing
/// reads those events during the run (observer purity, same contract as
/// MetricsRegistry); they exist so that when something *does* go wrong
/// (watchdog trip, invariant violation, or an operator asking via
/// `--postmortem-out`), `postmortem_json()` can replay the final N epochs
/// in order alongside the time-series, the run configuration, and the
/// build id — one self-describing JSON document instead of a shrug.
///
/// Ring sizing: the default (4096 events) holds the full event stream of
/// every bench/test-scale run; at 100k-client scale an epoch under churn
/// emits O(hundreds) of events, so the ring still retains tens of epochs —
/// and the post-mortem window (default 16 epochs) is what matters for
/// forensics. Overflow evicts the oldest events and counts them in
/// `events_dropped`, which the post-mortem reports honestly.
///
/// Determinism: events are recorded on the engine's sequential phases only
/// (never from pool workers), so for a fixed seed the ring contents — and
/// therefore the post-mortem bytes — are identical at any thread count.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sic::obs {

class TimeSeriesRegistry;

/// One structured incident. `ap`/`client` use -1 for "not applicable"
/// (e.g. a storm activation has no AP; a watchdog fire has no client).
/// `kind` is a short dotted identifier (e.g. "chaos.outage",
/// "quarantine.enter", "watchdog.fire"); `detail` is free-form
/// human-oriented context ("down_for=3", "from_ap=1 to_ap=2").
struct FlightEvent {
  std::uint64_t epoch = 0;
  int ap = -1;
  int client = -1;
  std::string kind;
  std::string detail;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 4096);

  /// Appends an event; evicts the oldest when the ring is full.
  void record(FlightEvent event);

  /// Records a run-configuration entry shown verbatim in the post-mortem
  /// "config" object (numeric-looking values stay numbers, everything
  /// else is quoted). Last write per key wins; keys emit name-ordered.
  void set_config(std::string_view key, std::string_view value);

  /// Latches the trip state. Returns true on the first call only — the
  /// caller that wins the latch is the one that should dump the
  /// post-mortem, so a cascade (watchdog fire followed by an invariant
  /// violation in the same run) produces exactly one document.
  bool trip(std::string_view reason, std::uint64_t epoch);

  [[nodiscard]] bool tripped() const { return tripped_; }
  [[nodiscard]] const std::string& trip_reason() const { return reason_; }
  [[nodiscard]] std::uint64_t trip_epoch() const { return trip_epoch_; }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t events_dropped() const { return dropped_; }
  /// i-th retained event, oldest first (0 <= i < size()).
  [[nodiscard]] const FlightEvent& event(std::size_t i) const;

  /// The self-describing post-mortem document:
  ///   {"postmortem":{"version":1,"build":...,"reason":...,
  ///    "trip_epoch":...,"window_epochs":N,"config":{...},
  ///    "events_dropped":...,"events":[...],"timeseries":{...}}}
  /// Events are windowed to the last \p window_epochs epochs (anchored at
  /// the trip epoch when tripped, else at the newest recorded event) and
  /// replayed oldest-first in recording order. `reason` is "requested"
  /// and `trip_epoch` the anchor when not tripped. \p series may be null
  /// (the "timeseries" object is then empty); when present its full
  /// retained rings are included — they are bounded already.
  [[nodiscard]] std::string postmortem_json(
      const TimeSeriesRegistry* series, std::uint64_t window_epochs = 16) const;

 private:
  std::vector<FlightEvent> ring_;
  std::size_t head_ = 0;  ///< index of the oldest retained event
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
  bool tripped_ = false;
  std::string reason_;
  std::uint64_t trip_epoch_ = 0;
  std::map<std::string, std::string, std::less<>> config_;
};

/// Thread-local attach point, same contract as obs::metrics(): null (the
/// default on every thread) means flight recording is off and instrumented
/// code must skip it.
[[nodiscard]] FlightRecorder* flight();
/// Installs \p recorder as the calling thread's target and returns the
/// previous one (so scoped attachment can restore it). Pass nullptr to
/// detach.
FlightRecorder* set_flight(FlightRecorder* recorder);

}  // namespace sic::obs

#endif  // SICMAC_OBS_FLIGHT_RECORDER_HPP
