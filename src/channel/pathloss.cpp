#include "channel/pathloss.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sic::channel {

LogDistancePathLoss::LogDistancePathLoss(double exponent,
                                         Decibels reference_loss,
                                         double reference_distance_m)
    : exponent_(exponent),
      reference_loss_(reference_loss),
      reference_distance_m_(reference_distance_m) {
  SIC_CHECK_MSG(exponent > 0.0, "path-loss exponent must be positive");
  SIC_CHECK_MSG(reference_distance_m > 0.0, "reference distance must be positive");
}

LogDistancePathLoss LogDistancePathLoss::for_carrier(double exponent,
                                                     double carrier_hz) {
  constexpr double kSpeedOfLight = 299'792'458.0;
  // 20·log10(x) = 2 × 10·log10(x); doubling a double is exact, so this is
  // bit-identical to the former hand-rolled 20·log10 form.
  const Decibels fsl =
      Decibels::from_linear(4.0 * M_PI * 1.0 * carrier_hz / kSpeedOfLight) *
      2.0;
  return LogDistancePathLoss{exponent, fsl, 1.0};
}

Decibels LogDistancePathLoss::loss(double distance_m) const {
  const double d = std::max(distance_m, reference_distance_m_);
  // The log-distance law in its textbook form. Not routed through
  // Decibels::from_linear: 10·α·log10(x) groups as (10·α)·log10(x), and
  // re-associating to α·(10·log10(x)) can move the last ulp — the pinned
  // figure outputs demand the historical grouping. This file is sic_lint
  // R1's blessed home for the raw log10 law, so no suppression is needed.
  return reference_loss_ +
         Decibels{10.0 * exponent_ *
                  std::log10(d / reference_distance_m_)};
}

Dbm LogDistancePathLoss::received_power(Dbm tx_power, double distance_m) const {
  return tx_power - loss(distance_m);
}

Milliwatts NormalizedPathLoss::received_power(double distance_m,
                                              double tx_power) const {
  SIC_CHECK(tx_power >= 0.0);
  const double d = std::max(distance_m, 1.0);
  return Milliwatts{tx_power * std::pow(d, -exponent_)};
}

}  // namespace sic::channel
