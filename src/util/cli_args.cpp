#include "util/cli_args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace sic {

namespace {

bool is_flag(const std::string& token) {
  return token.size() > 2 && token[0] == '-' && token[1] == '-';
}

double parse_double(const std::string& flag, const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw UsageError("flag --" + flag + ": not a number: " + text);
  }
  return value;
}

}  // namespace

ArgParser::ArgParser(int argc, const char* const* argv) {
  int i = 1;
  if (i < argc && !is_flag(argv[i])) {
    command_ = argv[i];
    ++i;
  }
  while (i < argc) {
    const std::string token = argv[i];
    if (!is_flag(token)) {
      throw UsageError("expected a --flag, got: " + token);
    }
    Entry entry;
    entry.name = token.substr(2);
    if (i + 1 < argc && !is_flag(argv[i + 1])) {
      entry.value = std::string(argv[i + 1]);
      i += 2;
    } else {
      ++i;
    }
    entries_.push_back(std::move(entry));
  }
}

const ArgParser::Entry* ArgParser::find(const std::string& flag) const {
  for (const auto& e : entries_) {
    if (e.name == flag) {
      e.queried = true;
      return &e;
    }
  }
  return nullptr;
}

bool ArgParser::has(const std::string& flag) const {
  return find(flag) != nullptr;
}

std::optional<std::string> ArgParser::get(const std::string& flag) const {
  const Entry* e = find(flag);
  return e != nullptr ? e->value : std::nullopt;
}

std::string ArgParser::get_string(const std::string& flag,
                                  const std::string& fallback) const {
  const auto v = get(flag);
  return v.has_value() ? *v : fallback;
}

double ArgParser::get_double(const std::string& flag, double fallback) const {
  const auto v = get(flag);
  if (!v.has_value()) return fallback;
  return parse_double(flag, *v);
}

int ArgParser::get_int(const std::string& flag, int fallback) const {
  return static_cast<int>(get_double(flag, fallback));
}

std::uint64_t ArgParser::get_u64(const std::string& flag,
                                 std::uint64_t fallback) const {
  const auto v = get(flag);
  if (!v.has_value()) return fallback;
  return static_cast<std::uint64_t>(parse_double(flag, *v));
}

std::vector<double> ArgParser::get_double_list(const std::string& flag) const {
  std::vector<double> out;
  const auto v = get(flag);
  if (!v.has_value()) return out;
  std::string text = *v;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string piece =
        text.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    if (!piece.empty()) out.push_back(parse_double(flag, piece));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int ArgParser::get_threads(int fallback) const {
  const int threads = get_int("threads", fallback);
  if (threads < 0) {
    throw UsageError("flag --threads: must be >= 0 (0 = all hardware threads)");
  }
  return threads;
}

std::vector<std::string> ArgParser::unknown_flags() const {
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    if (!e.queried) out.push_back(e.name);
  }
  return out;
}

}  // namespace sic
