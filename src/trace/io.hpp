#ifndef SICMAC_TRACE_IO_HPP
#define SICMAC_TRACE_IO_HPP

/// \file io.hpp
/// CSV serialization of RSSI traces. Format (header included):
///
///   timestamp_s,ap_id,client_id,rssi_dbm
///
/// A real building trace post-processed to the paper's snapshot form would
/// be loaded through the same reader, which is the point of the exercise —
/// the evaluation pipeline is byte-for-byte agnostic to whether the trace
/// is synthetic.

#include <iosfwd>
#include <string>

#include "trace/snapshot.hpp"

namespace sic::trace {

void write_csv(const RssiTrace& trace, std::ostream& os);
void write_csv_file(const RssiTrace& trace, const std::string& path);

/// Parses a trace; throws std::runtime_error on malformed input. Snapshots
/// are keyed by timestamp; rows may arrive in any order.
[[nodiscard]] RssiTrace read_csv(std::istream& is);
[[nodiscard]] RssiTrace read_csv_file(const std::string& path);

}  // namespace sic::trace

#endif  // SICMAC_TRACE_IO_HPP
