#ifndef SICMAC_CHANNEL_LINK_HPP
#define SICMAC_CHANNEL_LINK_HPP

/// \file link.hpp
/// Link budgets: the (RSS at receiver, noise floor) pair every formula in
/// the paper consumes. A LinkBudget is deliberately tiny and value-typed so
/// the completion-time algebra in sic::core stays pure and testable.

#include "util/units.hpp"

namespace sic::channel {

/// Received signal strength of one transmitter at one receiver, plus the
/// receiver's noise floor, in linear units.
struct LinkBudget {
  Milliwatts rss;
  Milliwatts noise;

  /// Clean (interference-free) SNR, linear.
  [[nodiscard]] double snr() const { return rss / noise; }

  /// SINR against an additional interference power.
  [[nodiscard]] double sinr_against(Milliwatts interference) const {
    return rss / (interference + noise);
  }

  /// Builds a budget from dB-domain quantities.
  [[nodiscard]] static LinkBudget from_db(Dbm rss_dbm, Dbm noise_dbm) {
    return LinkBudget{rss_dbm.to_milliwatts(), noise_dbm.to_milliwatts()};
  }

  /// Builds a budget from a clean SNR in dB with unit noise (the paper's
  /// normalized setting where N₀ = 1).
  [[nodiscard]] static LinkBudget from_snr_db(Decibels snr_db) {
    return LinkBudget{Milliwatts{snr_db.linear()}, Milliwatts{1.0}};
  }
};

}  // namespace sic::channel

#endif  // SICMAC_CHANNEL_LINK_HPP
