/// Reproduces Fig. 12: "Translating SIC-aware scheduling into Edmond's
/// minimum weight perfect matching algorithm." Prints the reduction for a
/// small worked instance — the complete pair-cost graph t_ij (including
/// the dummy client for the odd count), the minimum-weight perfect
/// matching, and the resulting transmission schedule.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/scheduler.hpp"
#include "matching/blossom.hpp"

int main() {
  using namespace sic;
  bench::header("Fig. 12 — the scheduling → matching reduction",
                "pair costs t_ij, dummy client for odd counts, min-weight "
                "perfect matching, schedule");

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  constexpr Milliwatts kN0{1.0};
  // Five backlogged clients (odd, to exercise the dummy vertex).
  const double snrs_db[] = {30.0, 24.0, 19.0, 12.0, 9.0};
  std::vector<channel::LinkBudget> clients;
  for (const double db : snrs_db) {
    clients.push_back(channel::LinkBudget{Milliwatts{Decibels{db}.linear()},
                                          kN0});
  }
  const int n = static_cast<int>(clients.size());
  core::SchedulerOptions options;
  options.enable_power_control = true;

  // The reduction's graph: t_ij for client pairs, solo time to the dummy D.
  const int m = n + 1;
  matching::CostMatrix costs{m};
  std::printf("pair costs t_ij in us (D = dummy = solo transmission):\n");
  std::printf("      ");
  for (int j = 0; j < n; ++j) std::printf("   C%d   ", j);
  std::printf("    D\n");
  for (int i = 0; i < n; ++i) {
    std::printf("  C%d  ", i);
    for (int j = 0; j < n; ++j) {
      if (j <= i) {
        std::printf("   .    ");
        continue;
      }
      const auto plan =
          core::best_pair_plan(clients[i], clients[j], shannon, options);
      costs.set(i, j, plan.airtime);
      std::printf("%7.1f ", 1e6 * plan.airtime);
    }
    const double solo = core::solo_airtime(clients[i], shannon, 12000.0);
    costs.set(i, n, solo);
    std::printf("%7.1f\n", 1e6 * solo);
  }

  const auto matching = matching::min_weight_perfect_matching(costs);
  std::printf("\nminimum-weight perfect matching (total %.1f us):\n",
              1e6 * matching.total_cost);
  for (const auto& [u, v] : matching.pairs) {
    if (v == n) {
      std::printf("  C%d — D   (transmits alone)\n", u);
    } else {
      std::printf("  C%d — C%d\n", u, v);
    }
  }

  const auto schedule = core::schedule_upload(clients, shannon, options);
  const double serial = core::serial_upload_airtime(clients, shannon, 12000.0);
  std::printf("\nresulting schedule (any slot order):\n");
  for (const auto& slot : schedule.slots) {
    if (slot.second < 0) {
      std::printf("  C%d solo            %8.1f us\n", slot.first,
                  1e6 * slot.plan.airtime);
    } else {
      std::printf("  C%d + C%d %-12s %8.1f us\n", slot.first, slot.second,
                  to_string(slot.plan.mode), 1e6 * slot.plan.airtime);
    }
  }
  std::printf("total %.1f us vs serial %.1f us  ->  gain %.3fx\n",
              1e6 * schedule.total_airtime, 1e6 * serial,
              serial / schedule.total_airtime);
  return 0;
}
