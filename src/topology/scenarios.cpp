#include "topology/scenarios.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace sic::topology {

Milliwatts Deployment::rss(const Node& from, const Node& to) const {
  const double d = distance(from.position, to.position);
  return pathloss.received_power(from.tx_power, d).to_milliwatts();
}

const Node& Deployment::by_role(NodeRole role, int index) const {
  int seen = 0;
  for (const auto& node : nodes) {
    if (node.role == role) {
      if (seen == index) return node;
      ++seen;
    }
  }
  SIC_CHECK_MSG(false, "no such node role/index in deployment");
  return nodes.front();  // unreachable
}

Deployment make_ewlan(double ap_separation_m, double cell_radius_m,
                      std::uint64_t seed) {
  SIC_CHECK(ap_separation_m > 0.0 && cell_radius_m > 0.0);
  Rng rng{seed};
  Deployment d;
  const Point ap1{0.0, 0.0};
  const Point ap2{ap_separation_m, 0.0};
  d.nodes.push_back(Node{0, NodeRole::kAccessPoint, ap1});
  d.nodes.push_back(Node{1, NodeRole::kAccessPoint, ap2});
  for (NodeId i = 0; i < 2; ++i) {
    d.nodes.push_back(
        Node{2 + i, NodeRole::kClient, random_in_disc(rng, ap1, cell_radius_m)});
  }
  for (NodeId i = 0; i < 2; ++i) {
    d.nodes.push_back(
        Node{4 + i, NodeRole::kClient, random_in_disc(rng, ap2, cell_radius_m)});
  }
  return d;
}

Deployment make_residential(double apartment_width_m, std::uint64_t seed) {
  SIC_CHECK(apartment_width_m > 0.0);
  Rng rng{seed};
  Deployment d;
  // Indoor propagation: steeper exponent than the open EWLAN floor.
  d.pathloss = channel::LogDistancePathLoss::for_carrier(/*exponent=*/3.5);
  const double w = apartment_width_m;
  // Apartment 1 spans [0, w], apartment 2 spans [w, 2w]; the shared wall
  // is at x = w. AP1 sits deep in apartment 1 while the neighbor's AP2
  // happens to sit near the wall — the crowded-complex configuration
  // Section 4.2 highlights.
  const Point ap1{w * 0.20, 0.0};
  const Point ap2{w * 1.20, 0.0};
  d.nodes.push_back(Node{0, NodeRole::kAccessPoint, ap1});
  d.nodes.push_back(Node{1, NodeRole::kAccessPoint, ap2});
  // C1: near its own AP. C2: at the shared wall — much closer to the
  // neighbor's AP2 than to its own AP1, the SIC opportunity.
  d.nodes.push_back(Node{2, NodeRole::kClient,
                         random_in_disc(rng, ap1, w * 0.15)});
  d.nodes.push_back(Node{3, NodeRole::kClient, Point{w * 0.98, 0.0}});
  // Apartment 2's clients: C3 right next to AP2 (a high-rate link C2 can
  // NOT decode), C4 at the far end (a lower-rate link C2 can).
  d.nodes.push_back(Node{4, NodeRole::kClient, Point{w * 1.25, 0.0}});
  d.nodes.push_back(Node{5, NodeRole::kClient, Point{w * 1.98, 0.0}});
  return d;
}

Deployment make_mesh_chain(double long_hop_m, double short_hop_m) {
  SIC_CHECK(long_hop_m > short_hop_m && short_hop_m > 0.0);
  Deployment d;
  d.pathloss = channel::LogDistancePathLoss::for_carrier(/*exponent=*/3.0);
  double x = 0.0;
  d.nodes.push_back(Node{0, NodeRole::kMeshRelay, Point{x, 0.0}});  // A
  x += long_hop_m;
  d.nodes.push_back(Node{1, NodeRole::kMeshRelay, Point{x, 0.0}});  // C
  x += short_hop_m;
  d.nodes.push_back(Node{2, NodeRole::kMeshRelay, Point{x, 0.0}});  // D
  x += long_hop_m;
  d.nodes.push_back(Node{3, NodeRole::kMeshRelay, Point{x, 0.0}});  // E
  return d;
}

}  // namespace sic::topology
