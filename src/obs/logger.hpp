#ifndef SICMAC_OBS_LOGGER_HPP
#define SICMAC_OBS_LOGGER_HPP

/// \file logger.hpp
/// Leveled diagnostic logging, off by default. Replaces the ad-hoc
/// `fprintf(stderr, ...)` debugging paths (e.g. the old SICMAC_MEDIUM_LOG
/// env toggle, which now maps to debug level).
///
/// The SIC_LOG_* macros check the level *before* evaluating their
/// arguments, so a disabled log line costs one global load and a compare —
/// cheap enough for per-frame call sites.
///
///   obs::set_log_level(obs::LogLevel::kInfo);
///   SIC_LOG_INFO("sweep %d/%d (%.0f samples/s)", done, total, rate);
///
/// The initial level comes from the SICMAC_LOG_LEVEL environment variable
/// (off|error|warn|info|debug); the CLI's --log-level overrides it.

#include <optional>
#include <ostream>
#include <string_view>

namespace sic::obs {

enum class LogLevel { kOff = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

[[nodiscard]] LogLevel log_level();
void set_log_level(LogLevel level);

/// "off"|"error"|"warn"|"info"|"debug" -> level; nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view name);
[[nodiscard]] const char* to_string(LogLevel level);

[[nodiscard]] inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(log_level());
}

/// printf-style; prepends "[sic level] " and appends a newline. Writes to
/// the sink installed by set_log_sink (stderr by default).
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char* fmt, ...);

/// Redirects log output, for tests; pass nullptr to restore stderr.
/// Returns the previous sink.
std::ostream* set_log_sink(std::ostream* sink);

}  // namespace sic::obs

#define SIC_LOG_AT(level_, ...)                           \
  do {                                                    \
    if (::sic::obs::log_enabled(level_)) {                \
      ::sic::obs::logf(level_, __VA_ARGS__);              \
    }                                                     \
  } while (false)

#define SIC_LOG_ERROR(...) SIC_LOG_AT(::sic::obs::LogLevel::kError, __VA_ARGS__)
#define SIC_LOG_WARN(...) SIC_LOG_AT(::sic::obs::LogLevel::kWarn, __VA_ARGS__)
#define SIC_LOG_INFO(...) SIC_LOG_AT(::sic::obs::LogLevel::kInfo, __VA_ARGS__)
#define SIC_LOG_DEBUG(...) SIC_LOG_AT(::sic::obs::LogLevel::kDebug, __VA_ARGS__)

#endif  // SICMAC_OBS_LOGGER_HPP
