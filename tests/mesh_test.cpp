#include "core/mesh.hpp"

#include <gtest/gtest.h>

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

topology::Deployment chain(double long_hop, double short_hop,
                           double exponent = 4.0) {
  auto deployment = topology::make_mesh_chain(long_hop, short_hop);
  deployment.pathloss = channel::LogDistancePathLoss::for_carrier(exponent);
  for (auto& node : deployment.nodes) node.tx_power = Dbm{23.0};
  return deployment;
}

TEST(MeshChain, LongHopsEnableSicAtRelay) {
  const auto report = analyze_mesh_chain(chain(40.0, 10.0), kShannon);
  EXPECT_TRUE(report.sic_feasible_at_relay);
  EXPECT_GT(report.gain, 1.2);
}

TEST(MeshChain, ShortHopsDisableSic) {
  // Shrinking the long hops raises D's rate past what C can decode.
  const auto report = analyze_mesh_chain(chain(20.0, 10.0), kShannon);
  EXPECT_FALSE(report.sic_feasible_at_relay);
  EXPECT_DOUBLE_EQ(report.gain, 1.0);
  EXPECT_DOUBLE_EQ(report.pipelined_throughput_bps,
                   report.serial_throughput_bps);
}

TEST(MeshChain, GainNeverBelowOne) {
  for (double lh = 15.0; lh <= 50.0; lh += 5.0) {
    for (double sh = 5.0; sh < lh; sh += 5.0) {
      const auto report = analyze_mesh_chain(chain(lh, sh), kShannon);
      EXPECT_GE(report.gain, 1.0) << "L=" << lh << " S=" << sh;
      EXPECT_GE(report.pipelined_throughput_bps,
                report.serial_throughput_bps - 1e-9);
    }
  }
}

TEST(MeshChain, SerialCycleIsSumOfHops) {
  const auto deployment = chain(35.0, 12.0);
  const auto report = analyze_mesh_chain(deployment, kShannon, 12000.0);
  const auto& a = deployment.nodes[0];
  const auto& c = deployment.nodes[1];
  const auto& d = deployment.nodes[2];
  const auto& e = deployment.nodes[3];
  const double expect =
      airtime_seconds(12000.0,
                      kShannon.rate(deployment.rss(a, c) / deployment.noise())) +
      airtime_seconds(12000.0,
                      kShannon.rate(deployment.rss(c, d) / deployment.noise())) +
      airtime_seconds(12000.0,
                      kShannon.rate(deployment.rss(d, e) / deployment.noise()));
  EXPECT_NEAR(report.serial_cycle_s, expect, expect * 1e-12);
  EXPECT_NEAR(report.serial_throughput_bps, 12000.0 / expect, 1e-6);
}

TEST(MeshChain, LongerHopsLowerAbsoluteThroughput) {
  // The paper's bottleneck observation: even when SIC wins relatively, the
  // absolute numbers fall as the long hops stretch.
  const auto near = analyze_mesh_chain(chain(25.0, 10.0), kShannon);
  const auto far = analyze_mesh_chain(chain(45.0, 10.0), kShannon);
  EXPECT_GT(near.serial_throughput_bps, far.serial_throughput_bps);
  EXPECT_GT(near.pipelined_throughput_bps, far.pipelined_throughput_bps);
}

TEST(MeshChain, RejectsWrongChainShape) {
  const auto bad = topology::make_ewlan();  // 6 nodes, not a chain
  EXPECT_THROW((void)analyze_mesh_chain(bad, kShannon), std::logic_error);
}

}  // namespace
}  // namespace sic::core
