#ifndef SICMAC_CHANNEL_FADING_HPP
#define SICMAC_CHANNEL_FADING_HPP

/// \file fading.hpp
/// Temporally correlated channel variation. A first-order Gauss-Markov
/// (AR(1)) track in the dB domain models the slowly drifting shadowing a
/// rate adapter chases: the adapter picks rates from the channel as it
/// *was*, the packet flies through the channel as it *is*. The correlation
/// coefficient ρ is the knob between a clairvoyant adapter (ρ = 1, the
/// paper's ideal-rate assumption) and a hopelessly stale one (ρ = 0).

#include "util/rng.hpp"
#include "util/units.hpp"

namespace sic::channel {

/// Stationary AR(1) process in dB: x_{t+1} = ρ·x_t + √(1−ρ²)·N(0, σ).
/// Marginal distribution is N(0, σ) for every t.
class Ar1ShadowingTrack {
 public:
  /// \p rho ∈ [0, 1]; \p sigma is the stationary standard deviation.
  Ar1ShadowingTrack(double rho, Decibels sigma, Rng& rng);

  /// Current deviation from the nominal channel, dB.
  [[nodiscard]] Decibels current() const { return state_; }

  /// Advances one coherence interval and returns the new deviation.
  Decibels step(Rng& rng);

  [[nodiscard]] double rho() const { return rho_; }

 private:
  double rho_;
  Decibels sigma_{0.0};
  Decibels state_{0.0};
};

}  // namespace sic::channel

#endif  // SICMAC_CHANNEL_FADING_HPP
