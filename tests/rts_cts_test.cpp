/// RTS/CTS + NAV in the DCF simulator — the classical hidden-terminal
/// protection, and its head-to-head against the SIC-capable AP.

#include <gtest/gtest.h>

#include <vector>

#include "mac/upload_sim.hpp"

namespace sic::mac {
namespace {

constexpr Milliwatts kN0{1.0};
const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

std::vector<channel::LinkBudget> two_clients() {
  return {channel::LinkBudget{Milliwatts{Decibels{24.0}.linear()}, kN0},
          channel::LinkBudget{Milliwatts{Decibels{18.0}.linear()}, kN0}};
}

UploadSimResult run(bool rts, bool hidden, std::uint64_t seed,
                    int frames = 20) {
  UploadSimConfig config;
  config.frames_per_client = frames;
  config.use_rts_cts = rts;
  config.client_mutual_snr = hidden ? Decibels{0.0} : Decibels{25.0};
  config.seed = seed;
  return run_dcf_upload(two_clients(), kShannon, config);
}

TEST(RtsCts, DeliversEverythingOnCleanChannel) {
  const auto result = run(/*rts=*/true, /*hidden=*/false, 1);
  EXPECT_EQ(result.delivered, result.offered);
  EXPECT_EQ(result.drops, 0u);
}

TEST(RtsCts, AddsOverheadOnCleanChannel) {
  // With everyone in range, the reservation exchange is pure overhead.
  const auto with = run(true, false, 2);
  const auto without = run(false, false, 2);
  EXPECT_EQ(with.delivered, with.offered);
  EXPECT_EQ(without.delivered, without.offered);
  EXPECT_GT(with.completion_s, without.completion_s);
}

TEST(RtsCts, ProtectsDataFramesFromHiddenTerminals) {
  // Hidden terminals collide on the cheap RTS frames instead of the long
  // data frames: data-frame collision losses shrink dramatically.
  std::uint64_t protected_data_failures = 0;
  std::uint64_t bare_data_failures = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto with = run(true, true, seed);
    const auto without = run(false, true, seed);
    // Count all collision failures; with RTS most involve control frames,
    // and deliveries must not regress.
    protected_data_failures += with.drops;
    bare_data_failures += without.drops;
    EXPECT_EQ(with.delivered + with.drops >= with.offered, true);
  }
  EXPECT_LE(protected_data_failures, bare_data_failures);
}

TEST(RtsCts, NavSilencesThirdParty) {
  // Three visible clients: once one wins the channel via RTS/CTS, the
  // others defer through the NAV and never stomp the data frame.
  std::vector<channel::LinkBudget> clients{
      channel::LinkBudget{Milliwatts{Decibels{24.0}.linear()}, kN0},
      channel::LinkBudget{Milliwatts{Decibels{20.0}.linear()}, kN0},
      channel::LinkBudget{Milliwatts{Decibels{16.0}.linear()}, kN0}};
  UploadSimConfig config;
  config.frames_per_client = 10;
  config.use_rts_cts = true;
  config.seed = 5;
  const auto result = run_dcf_upload(clients, kShannon, config);
  EXPECT_EQ(result.delivered, result.offered);
  EXPECT_EQ(result.drops, 0u);
}

TEST(RtsCts, SicApBeatsRtsCtsOnThroughputWithMargin) {
  // The interesting comparison: hidden terminals with practical rate
  // margin. RTS/CTS serializes everything (correct but slow); the SIC AP
  // rides the collisions. Compare completion times on equal delivered
  // work.
  UploadSimConfig rts_config;
  rts_config.frames_per_client = 20;
  rts_config.use_rts_cts = true;
  rts_config.client_mutual_snr = Decibels{0.0};
  rts_config.rate_margin = 0.5;
  UploadSimConfig sic_config = rts_config;
  sic_config.use_rts_cts = false;
  double rts_total = 0.0;
  double sic_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    rts_config.seed = seed;
    sic_config.seed = seed;
    rts_total += run_dcf_upload(two_clients(), kShannon, rts_config).completion_s;
    sic_total += run_dcf_upload(two_clients(), kShannon, sic_config).completion_s;
  }
  // Not asserting a winner by a fixed factor — both resolve the hidden
  // terminal — but the SIC path must be competitive (no serialization tax).
  EXPECT_LT(sic_total, rts_total * 1.2);
}

}  // namespace
}  // namespace sic::mac
