#include "core/download.hpp"

#include <gtest/gtest.h>

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};
constexpr Milliwatts kN0{1.0};

UploadPairContext ctx_db(double s1_db, double s2_db) {
  return UploadPairContext::make(Milliwatts{Decibels{s1_db}.linear()},
                                 Milliwatts{Decibels{s2_db}.linear()}, kN0,
                                 kShannon);
}

TEST(Download, SerialRoutesBothThroughStrongerAp) {
  const auto ctx = ctx_db(24.0, 12.0);
  const auto r = evaluate_download(ctx);
  const double best = kShannon.rate(Decibels{24.0}.linear()).value();
  EXPECT_NEAR(r.serial_airtime, 2.0 * 12000.0 / best, 1e-12);
}

TEST(Download, GainWeakerThanUploadGain) {
  // Section 4.1/Fig. 8: the wired-backbone baseline (both packets via the
  // stronger AP) makes download gains strictly smaller than the upload
  // gains at the same RSS pair whenever the APs differ.
  for (double s1 = 10.0; s1 <= 40.0; s1 += 5.0) {
    for (double s2 = 5.0; s2 < s1; s2 += 5.0) {
      const auto ctx = ctx_db(s1, s2);
      const auto down = evaluate_download(ctx);
      const double up = realized_gain(ctx);
      EXPECT_LE(down.gain, up + 1e-12) << "s1=" << s1 << " s2=" << s2;
    }
  }
}

TEST(Download, ModestGainNearSquareRelationship) {
  // Fig. 8: modest gains when one RSS is roughly the square of the other.
  const auto near_ridge = evaluate_download(ctx_db(24.0, 12.0));
  EXPECT_GT(near_ridge.gain, 1.0);
  EXPECT_LT(near_ridge.gain, 1.5);  // "very little benefit"
}

TEST(Download, EqualApsYieldNoGain) {
  // With equal RSS, SIC's concurrent time equals 2L/r (the stronger's SIC
  // rate collapses), no better than serial through one AP.
  const auto r = evaluate_download(ctx_db(20.0, 20.0));
  EXPECT_NEAR(r.gain, 1.0, 0.05);
}

TEST(Download, GainClampedAtOne) {
  for (double s1 = 2.0; s1 <= 40.0; s1 += 3.0) {
    for (double s2 = 1.0; s2 <= s1; s2 += 3.0) {
      EXPECT_GE(evaluate_download(ctx_db(s1, s2)).gain, 1.0);
    }
  }
}

TEST(Download, RawGainBelowOneOffRidge) {
  // Far from the ridge the concurrent exchange genuinely loses to the
  // stronger-AP serial baseline — the reason Fig. 8 is mostly dark.
  const auto r = evaluate_download(ctx_db(35.0, 34.0));
  EXPECT_LT(r.raw_gain, 1.0);
  EXPECT_DOUBLE_EQ(r.gain, 1.0);
}

}  // namespace
}  // namespace sic::core
