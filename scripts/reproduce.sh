#!/usr/bin/env bash
# Full reproduction: build, run the test suite, regenerate every figure and
# ablation, and (optionally) export plot-ready CSVs.
#
#   scripts/reproduce.sh [csv-output-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

CSV_DIR="${1:-}"
for bench in build/bench/fig* build/bench/ablation_*; do
  echo
  if [[ -n "${CSV_DIR}" ]]; then
    mkdir -p "${CSV_DIR}"
    "${bench}" --csv "${CSV_DIR}/"
  else
    "${bench}"
  fi
done

echo
echo "perf benches (shortened):"
for bench in build/bench/perf_*; do
  "${bench}" --benchmark_min_time=0.05 || "${bench}"
done
