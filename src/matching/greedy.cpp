#include "matching/greedy.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sic::matching {

Matching greedy_min_weight_perfect_matching(const CostMatrix& costs) {
  const int n = costs.size();
  SIC_CHECK_MSG(n % 2 == 0, "perfect matching requires an even vertex count");
  auto edges = costs.edges();
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.weight < b.weight;
            });
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  Matching out;
  for (const auto& e : edges) {
    if (used[e.u] || used[e.v]) continue;
    used[e.u] = used[e.v] = true;
    out.pairs.emplace_back(e.u, e.v);
    out.total_cost += e.weight;
  }
  SIC_CHECK(static_cast<int>(out.pairs.size()) * 2 == n);
  return out;
}

}  // namespace sic::matching
