/// Performance of the matching engines: the O(n³) blossom matcher (the
/// paper quotes O(n²m) for Edmonds; our dense implementation is O(n³)),
/// the greedy heuristic, the approximate tier (greedy + 2-opt postpass),
/// and the exponential oracle. Also reports the exact-vs-heuristic quality
/// gaps as counters (schedule cost ratios).
///
/// Unlike the other perf binaries this one emits an *extended* one-line
/// JSON summary: besides wall_ms/throughput it carries the approximate
/// tier's headline numbers — samples/sec for blossom and approx at n = 256,
/// their ratio (the speedup the scaling tier buys), and the deterministic
/// scheduler-level airtime gap at n <= 64 — so the bench gate can pin the
/// speedup and the quality floor from day one.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "channel/link.hpp"
#include "core/scheduler.hpp"
#include "matching/approx.hpp"
#include "matching/blossom.hpp"
#include "matching/greedy.hpp"
#include "matching/oracle.hpp"
#include "phy/rate_adapter.hpp"
#include "util/rng.hpp"

namespace {

using namespace sic;
using namespace sic::matching;

CostMatrix random_costs(int n, std::uint64_t seed) {
  Rng rng{seed};
  CostMatrix costs{n};
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) costs.set(i, j, rng.uniform(1.0, 100.0));
  }
  return costs;
}

void BM_BlossomPerfectMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto costs = random_costs(n, 42);
  for (auto _ : state) {
    const auto m = min_weight_perfect_matching(costs);
    benchmark::DoNotOptimize(m.total_cost);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BlossomPerfectMatching)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity(benchmark::oNCubed);

void BM_GreedyPerfectMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto costs = random_costs(n, 42);
  for (auto _ : state) {
    const auto m = greedy_min_weight_perfect_matching(costs);
    benchmark::DoNotOptimize(m.total_cost);
  }
}
BENCHMARK(BM_GreedyPerfectMatching)->RangeMultiplier(2)->Range(8, 128);

void BM_ApproxPerfectMatching(benchmark::State& state) {
  // The scaling tier: greedy seed + deterministic 2-opt postpass, dense
  // input (sparsification is exercised at the scheduler level where serial
  // baselines exist). Extends past blossom's bench range on purpose.
  const int n = static_cast<int>(state.range(0));
  const auto costs = random_costs(n, 42);
  for (auto _ : state) {
    const auto m = approx_min_weight_perfect_matching(costs);
    benchmark::DoNotOptimize(m.total_cost);
  }
}
BENCHMARK(BM_ApproxPerfectMatching)->RangeMultiplier(2)->Range(8, 256);

void BM_OraclePerfectMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto costs = random_costs(n, 42);
  for (auto _ : state) {
    const auto m = min_weight_perfect_matching_oracle(costs);
    benchmark::DoNotOptimize(m.total_cost);
  }
}
BENCHMARK(BM_OraclePerfectMatching)->DenseRange(8, 16, 4);

void BM_GreedyQualityGap(benchmark::State& state) {
  // Not a speed benchmark: reports how much schedule cost greedy leaves on
  // the table vs the exact matcher, averaged over instances.
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  double ratio_sum = 0.0;
  int count = 0;
  for (auto _ : state) {
    const auto costs = random_costs(n, seed++);
    const double exact = min_weight_perfect_matching(costs).total_cost;
    const double greedy = greedy_min_weight_perfect_matching(costs).total_cost;
    ratio_sum += greedy / exact;
    ++count;
    benchmark::DoNotOptimize(greedy);
  }
  state.counters["greedy/optimal"] = ratio_sum / count;
}
BENCHMARK(BM_GreedyQualityGap)->Arg(16)->Arg(64);

void BM_ApproxQualityGap(benchmark::State& state) {
  // Companion counter: the 2-opt postpass claws back most of greedy's gap.
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  double ratio_sum = 0.0;
  int count = 0;
  for (auto _ : state) {
    const auto costs = random_costs(n, seed++);
    const double exact = min_weight_perfect_matching(costs).total_cost;
    const double approx = approx_min_weight_perfect_matching(costs).total_cost;
    ratio_sum += approx / exact;
    ++count;
    benchmark::DoNotOptimize(approx);
  }
  state.counters["approx/optimal"] = ratio_sum / count;
}
BENCHMARK(BM_ApproxQualityGap)->Arg(16)->Arg(64);

// ---------------------------------------------------------------------------
// Summary measurements behind the one-line JSON (bench-gate pins).
// ---------------------------------------------------------------------------

/// Iterations/second of \p run: one warm-up call, then at least 3 timed
/// iterations and at least 0.25 s of wall clock.
template <typename F>
double samples_per_sec(F&& run) {
  using clock = std::chrono::steady_clock;
  run();
  const auto start = clock::now();
  int iters = 0;
  double elapsed = 0.0;
  do {
    run();
    ++iters;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (iters < 3 || elapsed < 0.25);
  return static_cast<double>(iters) / elapsed;
}

/// Deterministic scheduler-level quality measure: worst relative
/// total-airtime excess of the approximate tier over exact blossom across
/// seeded random WLAN uploads at n <= 64. Pure computation over fixed
/// seeds — identical on every machine — so the gate can pin it tightly.
double worst_airtime_gap_frac() {
  const phy::ShannonRateAdapter adapter{megahertz(20.0)};
  double worst = 0.0;
  for (const int n : {16, 32, 64}) {
    for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      Rng rng{seed};
      std::vector<channel::LinkBudget> clients;
      clients.reserve(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) {
        clients.push_back(channel::LinkBudget{
            Milliwatts{Decibels{rng.uniform(0.0, 30.0)}.linear()},
            Milliwatts{1.0}});
      }
      core::SchedulerOptions exact_opts;
      exact_opts.pairing = core::SchedulerOptions::Pairing::kBlossom;
      core::SchedulerOptions approx_opts;
      approx_opts.pairing = core::SchedulerOptions::Pairing::kApprox;
      const double exact =
          core::schedule_upload(clients, adapter, exact_opts).total_airtime;
      const double approx =
          core::schedule_upload(clients, adapter, approx_opts).total_airtime;
      const double gap = (approx - exact) / exact;
      if (gap > worst) worst = gap;
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  // Accept (and drop) the repo-wide `--threads N` flag like the other perf
  // binaries (see perf_util.hpp); the matching benches are single-threaded.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 < argc && argv[i + 1][0] != '-') ++i;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n_run = benchmark::RunSpecifiedBenchmarks();

  // Headline A/B at n = 256: the backlog size where exact matching stops
  // being affordable and the auto tier has long since crossed over.
  const auto costs = random_costs(256, 42);
  const double blossom_sps = samples_per_sec([&costs] {
    benchmark::DoNotOptimize(min_weight_perfect_matching(costs).total_cost);
  });
  const double approx_sps = samples_per_sec([&costs] {
    benchmark::DoNotOptimize(
        approx_min_weight_perfect_matching(costs).total_cost);
  });
  const double gap = worst_airtime_gap_frac();

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  const double throughput =
      wall_ms > 0.0 ? 1e3 * static_cast<double>(n_run) / wall_ms : 0.0;
  std::printf(
      "{\"bench\":\"perf_matching\",\"wall_ms\":%.1f,\"throughput\":%.3f,"
      "\"blossom_samples_per_sec_n256\":%.2f,"
      "\"approx_samples_per_sec_n256\":%.2f,"
      "\"approx_speedup_n256\":%.2f,"
      "\"airtime_gap_frac_n64\":%.5f,"
      "\"airtime_match_frac_n64\":%.5f}\n",
      wall_ms, throughput, blossom_sps, approx_sps,
      blossom_sps > 0.0 ? approx_sps / blossom_sps : 0.0, gap, 1.0 - gap);
  benchmark::Shutdown();
  return 0;
}
