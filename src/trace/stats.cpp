#include "trace/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sic::trace {

TraceStats compute_trace_stats(const RssiTrace& trace) {
  TraceStats stats;
  stats.snapshots = trace.snapshots.size();
  double rssi_sum = 0.0;
  double rssi_sum2 = 0.0;
  std::size_t cells = 0;
  std::size_t cell_clients = 0;
  for (const auto& snap : trace.snapshots) {
    for (const auto& ap : snap.aps) {
      const int n = static_cast<int>(ap.clients.size());
      if (n == 0) continue;
      ++cells;
      cell_clients += static_cast<std::size_t>(n);
      stats.max_clients_per_cell = std::max(stats.max_clients_per_cell, n);
      if (n >= 2) ++stats.cells_with_pairing_potential;
      for (const auto& obs : ap.clients) {
        rssi_sum += obs.rssi_dbm;
        rssi_sum2 += obs.rssi_dbm * obs.rssi_dbm;
        ++stats.observations;
      }
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
          const double a = ap.clients[static_cast<std::size_t>(i)].rssi_dbm;
          const double b = ap.clients[static_cast<std::size_t>(j)].rssi_dbm;
          stats.pairwise_disparity_db.push_back(std::fabs(a - b));
          stats.pair_weak_rssi_and_disparity_.emplace_back(std::min(a, b),
                                                           std::fabs(a - b));
        }
      }
    }
  }
  if (cells > 0) {
    stats.mean_clients_per_cell =
        static_cast<double>(cell_clients) / static_cast<double>(cells);
  }
  if (stats.observations > 0) {
    const double n = static_cast<double>(stats.observations);
    stats.rssi_mean_dbm = rssi_sum / n;
    const double var =
        std::max(0.0, rssi_sum2 / n - stats.rssi_mean_dbm * stats.rssi_mean_dbm);
    stats.rssi_stddev_db = std::sqrt(var);
  }
  return stats;
}

double TraceStats::ridge_fraction(double noise_floor_dbm,
                                  double band_db) const {
  if (pair_weak_rssi_and_disparity_.empty()) return 0.0;
  std::size_t on_ridge = 0;
  for (const auto& [weak_rssi, disparity] : pair_weak_rssi_and_disparity_) {
    // Ridge: stronger SNR = 2 * weaker SNR (dB) ⇔ disparity = weaker SNR.
    const double weaker_snr_db = weak_rssi - noise_floor_dbm;
    if (std::fabs(disparity - weaker_snr_db) <= band_db) ++on_ridge;
  }
  return static_cast<double>(on_ridge) /
         static_cast<double>(pair_weak_rssi_and_disparity_.size());
}

}  // namespace sic::trace
