#ifndef SICMAC_MATCHING_GREEDY_HPP
#define SICMAC_MATCHING_GREEDY_HPP

/// \file greedy.hpp
/// Greedy minimum-weight perfect matching: repeatedly take the globally
/// cheapest pair among unmatched vertices. Used as the ablation baseline
/// against the exact blossom matcher (DESIGN.md perf benches) and as the
/// seed of the approximate tier (approx.hpp) — on its own it is a
/// 2-approximation-ish heuristic that a naive AP implementation might ship.

#include <vector>

#include "matching/graph.hpp"

namespace sic::matching {

/// Requires even n (throws MatchingError otherwise). O(n² log n).
[[nodiscard]] Matching greedy_min_weight_perfect_matching(const CostMatrix& costs);

/// Scratch-reusing variant: \p edge_scratch holds the materialized edge
/// list across calls so per-round re-matching (the deployment engine's
/// epoch loop) does not re-allocate it. Results are identical to the
/// allocating overload.
[[nodiscard]] Matching greedy_min_weight_perfect_matching(
    const CostMatrix& costs, std::vector<WeightedEdge>& edge_scratch);

}  // namespace sic::matching

#endif  // SICMAC_MATCHING_GREEDY_HPP
