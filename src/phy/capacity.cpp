#include "phy/capacity.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/mathx.hpp"

namespace sic::phy {

BitsPerSecond shannon_rate(Hertz bandwidth, Milliwatts signal,
                           Milliwatts interference_plus_noise) {
  SIC_CHECK_MSG(interference_plus_noise.value() > 0.0,
                "interference-plus-noise power must be positive");
  if (signal.value() <= 0.0) return BitsPerSecond{0.0};
  return shannon_rate(bandwidth, signal / interference_plus_noise);
}

BitsPerSecond shannon_rate(Hertz bandwidth, double sinr_linear) {
  if (sinr_linear <= 0.0) return BitsPerSecond{0.0};
  return BitsPerSecond{bandwidth.value() * log2_1p(sinr_linear)};
}

double sinr(Milliwatts signal, Milliwatts interference, Milliwatts noise) {
  SIC_CHECK(noise.value() > 0.0);
  SIC_CHECK(interference.value() >= 0.0);
  return signal / (interference + noise);
}

TwoSignalArrival TwoSignalArrival::make(Milliwatts a, Milliwatts b,
                                        Milliwatts noise) {
  SIC_CHECK_MSG(noise.value() > 0.0, "noise floor must be positive");
  SIC_CHECK_MSG(a.value() >= 0.0 && b.value() >= 0.0,
                "linear RSS must be non-negative");
  if (a >= b) return TwoSignalArrival{a, b, noise};
  return TwoSignalArrival{b, a, noise};
}

BitsPerSecond sic_rate_stronger(Hertz bandwidth,
                                const TwoSignalArrival& arrival) {
  return shannon_rate(bandwidth, arrival.stronger,
                      arrival.weaker + arrival.noise);
}

BitsPerSecond sic_rate_weaker(Hertz bandwidth,
                              const TwoSignalArrival& arrival) {
  return shannon_rate(bandwidth, arrival.weaker, arrival.noise);
}

BitsPerSecond sic_rate_weaker_residual(Hertz bandwidth,
                                       const TwoSignalArrival& arrival,
                                       double residual) {
  SIC_CHECK_MSG(residual >= 0.0 && residual <= 1.0,
                "cancellation residual is a fraction in [0,1]");
  return shannon_rate(bandwidth, arrival.weaker,
                      arrival.stronger * residual + arrival.noise);
}

BitsPerSecond capacity_without_sic(Hertz bandwidth,
                                   const TwoSignalArrival& arrival) {
  const auto c1 = shannon_rate(bandwidth, arrival.stronger, arrival.noise);
  const auto c2 = shannon_rate(bandwidth, arrival.weaker, arrival.noise);
  return std::max(c1, c2);
}

BitsPerSecond capacity_with_sic(Hertz bandwidth,
                                const TwoSignalArrival& arrival) {
  return shannon_rate(bandwidth, arrival.stronger + arrival.weaker,
                      arrival.noise);
}

double capacity_gain(Hertz bandwidth, const TwoSignalArrival& arrival) {
  const auto with = capacity_with_sic(bandwidth, arrival);
  const auto without = capacity_without_sic(bandwidth, arrival);
  SIC_CHECK_MSG(without.value() > 0.0, "both links are dead; gain undefined");
  return with.value() / without.value();
}

}  // namespace sic::phy
