/// sic_lint CLI — lints the given files and exits non-zero on findings.
///
///   sic_lint [options] FILE...
///
///   --baseline FILE    R2 findings listed in FILE (path:identifier lines)
///                      are accepted debt; stale entries fail the run.
///   --print-baseline   Instead of failing, print the R2 findings in
///                      baseline format (to regenerate the baseline file).
///   --only RULES       Run only these rule ids (comma-separated, e.g.
///                      R5,R7). Repeatable.
///   --exclude RULES    Skip these rule ids. Repeatable.
///   --json FILE        Also write the findings as deterministic JSON
///                      (sorted by file, line, col, rule) to FILE, or to
///                      stdout when FILE is `-`. Written even when the run
///                      fails, so CI can always upload the artifact.
///
/// Output format: path:line:col: [rule] message
/// On findings the exit status is 1 and the summary line on stderr reports
/// per-rule counts plus the number of files scanned.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

void split_rules(const std::string& arg, std::vector<std::string>& out) {
  std::stringstream ss{arg};
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    if (!rule.empty()) out.push_back(rule);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string json_path;
  bool print_baseline = false;
  sic::lint::LintOptions options;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool needs_value = arg == "--baseline" || arg == "--only" ||
                             arg == "--exclude" || arg == "--json";
    if (needs_value && i + 1 >= argc) {
      std::cerr << "sic_lint: " << arg << " needs an argument\n";
      return 2;
    }
    if (arg == "--baseline") {
      baseline_path = argv[++i];
    } else if (arg == "--only") {
      split_rules(argv[++i], options.only);
    } else if (arg == "--exclude") {
      split_rules(argv[++i], options.exclude);
    } else if (arg == "--json") {
      json_path = argv[++i];
    } else if (arg == "--print-baseline") {
      print_baseline = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sic_lint [--baseline FILE] [--print-baseline] "
                   "[--only RULES] [--exclude RULES] [--json FILE|-] "
                   "FILE...\n";
      return 0;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "sic_lint: no input files\n";
    return 2;
  }

  std::vector<std::string> baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::cerr << "sic_lint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    baseline = sic::lint::parse_baseline(text);
  }

  std::vector<sic::lint::FileInput> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    std::string source;
    if (!read_file(path, source)) {
      std::cerr << "sic_lint: cannot read " << path << "\n";
      return 2;
    }
    files.push_back(sic::lint::FileInput{path, std::move(source)});
  }

  auto findings = sic::lint::lint_tree(files, options);

  if (print_baseline) {
    std::cout << "# sic_lint R2 baseline — accepted raw-double unit-suffix "
                 "debt.\n# One path:identifier per line; regenerate with "
                 "`sic_lint --print-baseline`.\n";
    for (const auto& f : findings) {
      if (f.rule == "R2") std::cout << f.path << ":" << f.symbol << "\n";
    }
    return 0;
  }

  findings = sic::lint::apply_baseline(
      std::move(findings), baseline,
      baseline_path.empty() ? std::string{"<none>"} : baseline_path);

  if (!json_path.empty()) {
    const std::string json = sic::lint::to_json(findings, files.size());
    if (json_path == "-") {
      std::cout << json;
    } else {
      std::ofstream out{json_path, std::ios::binary};
      if (!out) {
        std::cerr << "sic_lint: cannot write " << json_path << "\n";
        return 2;
      }
      out << json;
    }
  }

  for (const auto& f : findings) {
    std::cout << sic::lint::format_finding(f) << "\n";
  }
  if (!findings.empty()) {
    std::map<std::string, int> counts;
    for (const auto& f : findings) ++counts[f.rule];
    std::cerr << "sic_lint: " << findings.size() << " finding(s) across "
              << files.size() << " file(s) scanned [";
    bool first = true;
    for (const auto& [rule, n] : counts) {
      if (!first) std::cerr << ", ";
      first = false;
      std::cerr << rule << ": " << n;
    }
    std::cerr << "]\n";
    return 1;
  }
  return 0;
}
