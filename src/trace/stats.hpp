#ifndef SICMAC_TRACE_STATS_HPP
#define SICMAC_TRACE_STATS_HPP

/// \file stats.hpp
/// Descriptive statistics over an RSSI trace. The quantity that decides
/// how much the Fig. 13 pairing gains can be is the *pairwise RSS
/// disparity* distribution among clients backlogged at the same AP
/// (DESIGN.md, substitution 1): the Fig. 4 ridge wants the stronger client
/// ~2x (in dB SNR) over the weaker. This module computes that census, plus
/// occupancy and load summaries, for any trace — synthetic or real.

#include <cstdint>
#include <utility>
#include <vector>

#include "trace/snapshot.hpp"
#include "util/units.hpp"

namespace sic::trace {

struct TraceStats {
  std::size_t snapshots = 0;
  std::size_t observations = 0;
  /// Distribution of clients-per-(snapshot, AP) cell (only non-empty cells).
  double mean_clients_per_cell = 0.0;
  int max_clients_per_cell = 0;
  std::size_t cells_with_pairing_potential = 0;  ///< >= 2 clients
  /// RSSI distribution across all observations.
  Dbm rssi_mean{0.0};
  Decibels rssi_stddev{0.0};
  /// Pairwise |RSSI_i − RSSI_j| over all client pairs sharing a cell.
  std::vector<Decibels> pairwise_disparity;

  /// Fraction of same-cell pairs whose disparity lies within \p band of
  /// the Fig. 4 ridge: the stronger client's SNR ≈ 2x the weaker's, i.e.
  /// disparity ≈ weaker-SNR dB. Needs the noise floor to convert RSSI→SNR.
  [[nodiscard]] double ridge_fraction(Dbm noise_floor,
                                      Decibels band = Decibels{3.0}) const;

 private:
  friend TraceStats compute_trace_stats(const RssiTrace& trace);
  /// Per-pair (weaker RSSI, disparity) retained for ridge analysis.
  std::vector<std::pair<Dbm, Decibels>> pair_weak_rssi_and_disparity_;
};

[[nodiscard]] TraceStats compute_trace_stats(const RssiTrace& trace);

}  // namespace sic::trace

#endif  // SICMAC_TRACE_STATS_HPP
