/// sic_lint — domain static analysis for the sicmac tree.
///
/// A deliberately small analyzer (no libclang — it runs in milliseconds
/// anywhere the repo builds) enforcing the project's domain conventions.
/// Since PR 10 the rules run on a real token stream (tools/sic_lint/lexer)
/// with file/line/col positions, brace/paren scope depth, enclosing-function
/// capture, and preprocessor tracking, instead of regexes over a blanked
/// text view. Rule families:
///
///   R1  conversion-hygiene: no hand-rolled pow(10, x/10) / log10 dB↔linear
///       conversions — use sic::Decibels / sic::Dbm. Blessed homes:
///       util/units.hpp (it IS the conversion layer) and
///       channel/pathloss.cpp (the textbook log-distance law, whose operand
///       grouping is pinned by figure outputs). tests/ are exempt: probing
///       raw conversions against units.hpp is what unit tests are for.
///   R2  unit-suffix hygiene: no raw `double` declarations whose identifier
///       carries a unit suffix (_db, _dbm, _mw) in headers. Existing debt is
///       tracked in a checked-in baseline; new findings and stale baseline
///       entries both fail the lint.
///   R3  determinism sources: no std::rand/srand, no wall-clock time
///       (system_clock, high_resolution_clock), no iteration over unordered
///       containers. Iterator-validity comparisons (`it != c.end()`) are
///       exempt; obs/ and bench/ are exempt by path (they time things).
///   R4  observer purity: metrics mutators (counter(...).inc, gauge(...).set,
///       histogram(...).observe, series(...).record) must be statements of
///       their own — never returned, assigned, or nested in another call.
///   R5  include-layer DAG: `#include "…"` edges across src/ must respect
///       the declared layer order (util → obs → channel → topology → phy →
///       matching → trace → core → mac → analysis; everything outside src/
///       is a consumer and may include any layer). Any back-edge fails, and
///       lint_tree() additionally rejects include *cycles*, printing the
///       full offending path.
///   R6  RNG substream discipline: in a translation unit that uses
///       ParallelRunner / parallel_for, constructing an Rng or calling
///       .fork() inside a loop body is flagged — substreams must come from
///       the counter-based Rng::at(seed, index), which is order- and
///       thread-independent.
///   R7  FP determinism: no reduction (compound assignment) inside a
///       range-for over an unordered container, no `float` in src/core or
///       src/phy numeric code, and no `==`/`!=` between computed double
///       expressions (comparisons against literals are exempt; tests/ are
///       exempt; util/mathx.hpp is the blessed home of bitwise_equal()).
///   R8  typed-error policy: every `throw` in src/ must construct a project
///       error type (TraceIoError, FaultConfigError, MatchingError,
///       CheckError, UsageError, std::out_of_range, …) — never a bare
///       std::runtime_error / std::logic_error or a string literal.
///
/// Findings can be locally suppressed with a trailing
/// `// sic-lint: allow(R1)` comment (or a comment-only line immediately
/// above the offending line); multiple rules separate with commas. Only
/// real comments count: the marker inside a string literal is inert. The
/// suppression surface is designed to shrink — PR 10 deleted every inline
/// allow() in the tree and tests/sic_lint_tree_test.cpp keeps the count at
/// zero.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sic::lint {

/// One rule violation (or baseline staleness error).
struct Finding {
  std::string rule;     ///< "R1".."R8", or "baseline" for stale entries.
  std::string path;     ///< File path as passed to the linter.
  int line = 1;         ///< 1-indexed line of the violation.
  int col = 1;          ///< 1-indexed column of the violation.
  std::string symbol;   ///< Flagged identifier (R2 only; baseline key).
  std::string message;  ///< Human-readable explanation.
};

/// One file handed to lint_tree().
struct FileInput {
  std::string path;
  std::string source;
};

/// Per-rule selection: `only` non-empty restricts the run to those rule
/// ids; `exclude` removes rule ids afterwards. "baseline" findings are
/// controlled by the "R2" id (they are R2 bookkeeping).
struct LintOptions {
  std::vector<std::string> only;
  std::vector<std::string> exclude;

  [[nodiscard]] bool rule_enabled(std::string_view rule) const;
};

/// Replaces comments and string/char literal contents with spaces while
/// preserving the line structure and column positions of all remaining
/// tokens. Lexer-backed since PR 10 (handles line continuations inside //
/// comments and digit separators correctly). Kept public as a debugging
/// view and for the lexer regression tests.
[[nodiscard]] std::string sanitize(std::string_view source);

/// Inverse channel of sanitize(): keeps comment text (and newlines), blanks
/// code and literal contents. Suppression comments live in this channel, so
/// `sic-lint: allow(...)` inside a string literal never suppresses.
[[nodiscard]] std::string comments_only(std::string_view source);

/// Lints every file with every applicable rule, including the cross-file
/// analyses (R5 include cycles, the R7 double-symbol table). Findings are
/// sorted by (path, line, col, rule). Suppression comments are honored.
/// The R2 baseline is NOT applied here — see apply_baseline().
[[nodiscard]] std::vector<Finding> lint_tree(const std::vector<FileInput>& files,
                                             const LintOptions& options = {});

/// Single-file convenience wrapper over lint_tree(). Cross-file context
/// degrades gracefully: the R7 symbol table sees only this file, and R5
/// cycle detection sees only this file's edges (back-edges still fire).
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             std::string_view source);

/// Parses a baseline file: one `path:identifier` entry per line, `#`
/// comments and blank lines ignored.
[[nodiscard]] std::vector<std::string> parse_baseline(std::string_view text);

/// Removes R2 findings whose `path:symbol` key appears in `baseline`.
/// Baseline entries that match no finding are STALE: each produces a
/// Finding with rule "baseline" naming `baseline_path` and the removal
/// command, so the file cannot rot.
[[nodiscard]] std::vector<Finding> apply_baseline(
    std::vector<Finding> findings, const std::vector<std::string>& baseline,
    const std::string& baseline_path);

/// `path:line:col: [rule] message` — the canonical one-line rendering.
[[nodiscard]] std::string format_finding(const Finding& finding);

/// Deterministic JSON rendering of a lint run: an object with
/// "files_scanned", per-rule "counts" (sorted by rule id), and "findings"
/// sorted by (path, line, col, rule) — byte-identical for identical inputs.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings,
                                  std::size_t files_scanned);

}  // namespace sic::lint
