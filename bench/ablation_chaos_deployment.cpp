/// Ablation — deployment-wide chaos: the multi-AP engine under AP
/// outages, client churn, and correlated interference bursts. PR 1's
/// closed loop recovers a single cell from per-run faults; this bench
/// asks what survives fleet-scale faults, sweeping outage x churn x burst
/// across three control variants:
///
///   open       — open-loop deployment: no inner recovery, no ladder, no
///                watchdog, no quarantine (the seed's posture at scale)
///   closed     — inner closed loop + degradation ladder + watchdog, but
///                hopeless clients are retried forever
///   closed+qr  — the same plus client quarantine with exponential-
///                backoff re-admission
///
/// Headline: under the acceptance profile (1% AP outage/epoch, 2% churn,
/// 5% 20 dB bursts) closed+qr holds steady-state confirmation at >= 95%
/// while the open loop degrades; quarantine's margin over plain closed
/// grows with fault rate because it stops burning epoch budget on links
/// that cannot confirm. Also reports planning decisions/sec and the mean
/// epochs an AP outage needs before confirmation is back at the
/// steady-state level (recovery epochs), the two numbers the CI chaos
/// smoke tracks (BENCH_deployment.json).

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "mac/deployment_engine.hpp"
#include "phy/rate_adapter.hpp"
#include "util/cli_args.hpp"

namespace {

struct ChaosCell {
  const char* name;
  double outage;
  double churn;
  double burst;
  double burst_depth_db;
  double arrival_radius_m;  ///< > ~1 km puts arrivals out of coverage
};

struct VariantOutcome {
  double steady_frac = 0.0;    ///< mean confirmation over the last half
  double overall_frac = 0.0;   ///< mean confirmation over every epoch
  double recovery_epochs = 0.0;
  double mean_health = 0.0;    ///< mean epoch health score (see obs docs)
  double decisions = 0.0;
  double quarantines = 0.0;
  double watchdogs = 0.0;
  bool audited = true;
};

/// Mean epochs from each outage start until the epoch confirmation rate
/// is back above `target`; outages with no recovery in the run count the
/// remaining horizon (an honest penalty, not a dropped sample).
double mean_recovery_epochs(const std::vector<sic::mac::EpochStats>& epochs,
                            double target) {
  double total = 0.0;
  int outages = 0;
  for (std::size_t e = 0; e < epochs.size(); ++e) {
    if (epochs[e].outages_started == 0) continue;
    ++outages;
    std::size_t back = epochs.size();
    for (std::size_t f = e; f < epochs.size(); ++f) {
      if (epochs[f].confirmation_rate() >= target) {
        back = f;
        break;
      }
    }
    total += static_cast<double>(back - e);
  }
  return outages == 0 ? 0.0 : total / static_cast<double>(outages);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sic;
  const bench::RunTimer timer;
  const auto csv = bench::csv_prefix(argc, argv);
  const ArgParser args{argc, argv};
  const int n_aps = args.get_int("aps", 4);
  const int n_clients = args.get_int("clients", 32);
  const int n_epochs = args.get_int("epochs", 50);
  const int n_seeds = args.get_int("seeds", 2);
  const int threads = args.get_threads(1);

  bench::header(
      "Ablation — deployment-wide chaos: outages x churn x bursts",
      "a fleet needs fleet-scale recovery: the inner closed loop alone "
      "keeps burning airtime on dead links; quarantine + watchdog hold "
      "steady-state confirmation through sustained faults");

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};

  const ChaosCell cells[] = {
      {"calm", 0.0, 0.0, 0.0, 0.0, 40.0},
      {"default", 0.01, 0.02, 0.05, 20.0, 40.0},
      {"outage-heavy", 0.05, 0.02, 0.05, 20.0, 40.0},
      {"burst-heavy", 0.01, 0.02, 0.20, 60.0, 40.0},
      // Floor-wide arrivals: a slice lands outside every AP's coverage,
      // the persistently-hopeless population quarantine exists for. One
      // such member's ~100 kbps slot overruns the epoch budget and
      // starves its whole cell, so exiling it is worth whole epochs.
      {"coverage-churn", 0.01, 0.08, 0.05, 20.0, 1500.0},
  };
  struct Variant {
    const char* name;
    bool closed;
    bool quarantine;
  };
  const Variant variants[] = {
      {"open", false, false},
      {"closed", true, false},
      {"closed+qr", true, true},
  };

  std::ostringstream csv_rows;
  csv_rows << "chaos,variant,steady_frac,overall_frac,recovery_epochs,"
              "mean_health,quarantines,watchdog_fires,audited\n";
  std::printf("%-14s %-10s %-8s %-8s %-9s %-7s %-7s %-6s %-7s\n", "chaos",
              "variant", "steady", "overall", "recov_ep", "health", "quar",
              "wdog", "audit");

  double smoke_decisions = 0.0;
  double smoke_elapsed_s = 0.0;
  double smoke_recovery = 0.0;
  double smoke_steady = 0.0;
  double smoke_health = 0.0;
  std::uint64_t samples = 0;

  for (const ChaosCell& cell : cells) {
    for (const Variant& variant : variants) {
      VariantOutcome mean;
      double elapsed_s = 0.0;
      for (int seed = 1; seed <= n_seeds; ++seed) {
        mac::ChaosProfile profile;
        profile.ap_outage_prob = cell.outage;
        profile.outage_epochs = 3;
        profile.departure_prob = cell.churn;
        profile.arrival_rate = cell.churn * static_cast<double>(n_clients);
        profile.burst_prob = cell.burst;
        profile.burst_depth = Decibels{cell.burst_depth_db};
        profile.burst_epochs = 2;

        mac::DeploymentEngineConfig config;
        config.scheduler.enable_power_control = true;
        config.scheduler.enable_multirate = true;
        config.closed_loop = variant.closed;
        config.enable_quarantine = variant.quarantine;
        config.epoch_drift_sigma = Decibels{2.0};
        // Tight epoch budget: a link buried by a burst cannot confirm
        // inside the epoch, so faults actually cost confirmation.
        config.upload.horizon = mac::from_seconds(0.05);
        config.arrival_radius_m = cell.arrival_radius_m;
        config.threads = threads;
        config.seed = static_cast<std::uint64_t>(seed);

        std::vector<topology::Point> sites;
        for (int a = 0; a < n_aps; ++a) {
          sites.push_back({60.0 * a, 0.0});
        }
        mac::DeploymentEngine engine{
            sites, shannon, config,
            profile.any() ? mac::FaultSchedule{profile}
                          : mac::FaultSchedule{}};
        for (int c = 0; c < n_clients; ++c) {
          const int ap = c % n_aps;
          engine.add_client({60.0 * ap + 4.0 + 1.5 * (c / n_aps),
                             (c % 2 == 0) ? 6.0 : -6.0});
        }
        mac::InvariantAuditor auditor;
        engine.set_auditor(&auditor);

        const bench::RunTimer run_timer;
        const mac::DeploymentResult r = engine.run_epochs(n_epochs);
        elapsed_s += run_timer.elapsed_s();
        ++samples;

        const std::size_t half = r.epochs.size() / 2;
        double steady = 0.0;
        for (std::size_t e = half; e < r.epochs.size(); ++e) {
          steady += r.epochs[e].confirmation_rate();
        }
        mean.steady_frac +=
            steady / static_cast<double>(r.epochs.size() - half);
        mean.overall_frac += r.confirmation_rate();
        mean.recovery_epochs += mean_recovery_epochs(r.epochs, 0.95);
        double health = 0.0;
        for (const mac::EpochStats& e : r.epochs) health += e.mean_health;
        mean.mean_health +=
            r.epochs.empty()
                ? 1.0
                : health / static_cast<double>(r.epochs.size());
        mean.decisions += static_cast<double>(r.decisions);
        mean.quarantines += static_cast<double>(r.quarantines);
        mean.watchdogs += static_cast<double>(r.watchdog_fires);
        mean.audited = mean.audited && auditor.ok();
      }
      const double k = static_cast<double>(n_seeds);
      mean.steady_frac /= k;
      mean.overall_frac /= k;
      mean.recovery_epochs /= k;
      mean.mean_health /= k;
      mean.quarantines /= k;
      mean.watchdogs /= k;

      std::printf(
          "%-14s %-10s %-8.4f %-8.4f %-9.2f %-7.4f %-7.1f %-6.1f %-7s\n",
          cell.name, variant.name, mean.steady_frac, mean.overall_frac,
          mean.recovery_epochs, mean.mean_health, mean.quarantines,
          mean.watchdogs, mean.audited ? "ok" : "FAIL");
      csv_rows << cell.name << ',' << variant.name << ',' << mean.steady_frac
               << ',' << mean.overall_frac << ',' << mean.recovery_epochs
               << ',' << mean.mean_health << ',' << mean.quarantines << ','
               << mean.watchdogs << ',' << (mean.audited ? "ok" : "FAIL")
               << '\n';

      if (std::string(cell.name) == "default" &&
          std::string(variant.name) == "closed+qr") {
        smoke_decisions = mean.decisions;
        smoke_elapsed_s = elapsed_s;
        smoke_recovery = mean.recovery_epochs;
        smoke_steady = mean.steady_frac;
        smoke_health = mean.mean_health;
      }
    }
  }

  std::printf(
      "\n(%d APs, %d clients, %d epochs, %d seeds per cell, threads=%d. "
      "steady = mean epoch confirmation over the last half; recov_ep = mean "
      "epochs from an AP outage until confirmation is back over 95%%. The "
      "open loop never quarantines, so one out-of-coverage or buried link "
      "drags every later epoch; closed+qr exiles it after a losing streak "
      "and probes it back with exponential backoff.)\n",
      n_aps, n_clients, n_epochs, n_seeds, threads);

  if (csv) {
    bench::write_text_file(*csv + "chaos_deployment.csv",
                           bench::manifest(/*seed=*/1, timer, samples) +
                               csv_rows.str());
  }

  // Final line: the CI chaos-smoke contract (BENCH_deployment.json) —
  // planning throughput and recovery latency of the headline variant.
  const double dps =
      smoke_elapsed_s > 0.0 ? smoke_decisions / smoke_elapsed_s : 0.0;
  std::printf(
      "{\"bench\":\"deployment\",\"variant\":\"closed+qr\",\"chaos\":"
      "\"default\",\"decisions_per_sec\":%.0f,\"recovery_epochs\":%.2f,"
      "\"confirmed_frac\":%.4f,\"mean_health\":%.4f}\n",
      dps, smoke_recovery, smoke_steady, smoke_health);
  return 0;
}
