#include "core/upload_pair.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"

namespace sic::core {

UploadPairContext UploadPairContext::make(Milliwatts s1, Milliwatts s2,
                                          Milliwatts noise,
                                          const phy::RateAdapter& adapter,
                                          double packet_bits) {
  SIC_CHECK(packet_bits > 0.0);
  UploadPairContext ctx;
  ctx.arrival = phy::TwoSignalArrival::make(s1, s2, noise);
  ctx.packet_bits = packet_bits;
  ctx.adapter = &adapter;
  return ctx;
}

SicRatePair sic_rates(const UploadPairContext& ctx) {
  SIC_CHECK(ctx.adapter != nullptr);
  const auto& a = ctx.arrival;
  SicRatePair out;
  out.stronger = ctx.adapter->rate(a.stronger / (a.weaker + a.noise));
  out.weaker = ctx.adapter->rate(a.weaker / a.noise);
  return out;
}

SicRatePair sic_rates(const UploadPairContext& ctx,
                      const SicImpairments& impairments) {
  SIC_CHECK(ctx.adapter != nullptr);
  SIC_CHECK(impairments.cancellation_residual >= 0.0 &&
            impairments.cancellation_residual <= 1.0);
  const auto& a = ctx.arrival;
  SicRatePair out;
  out.stronger = ctx.adapter->rate(a.stronger / (a.weaker + a.noise));
  if (a.weaker.value() > 0.0 &&
      Decibels::from_linear(a.stronger / a.weaker) >
          impairments.max_decodable_disparity) {
    out.weaker = BitsPerSecond{0.0};  // ADC saturation: weaker unrecoverable
    return out;
  }
  out.weaker = ctx.adapter->rate(
      a.weaker /
      (a.stronger * impairments.cancellation_residual + a.noise));
  return out;
}

double serial_airtime(const UploadPairContext& ctx) {
  SIC_CHECK(ctx.adapter != nullptr);
  const auto& a = ctx.arrival;
  const auto r1 = ctx.adapter->rate(a.stronger / a.noise);
  const auto r2 = ctx.adapter->rate(a.weaker / a.noise);
  return airtime_seconds(ctx.packet_bits, r1) +
         airtime_seconds(ctx.packet_bits, r2);
}

double sic_airtime(const UploadPairContext& ctx) {
  const auto rates = sic_rates(ctx);
  return std::max(airtime_seconds(ctx.packet_bits, rates.stronger),
                  airtime_seconds(ctx.packet_bits, rates.weaker));
}

double sic_airtime(const UploadPairContext& ctx,
                   const SicImpairments& impairments) {
  const auto rates = sic_rates(ctx, impairments);
  return std::max(airtime_seconds(ctx.packet_bits, rates.stronger),
                  airtime_seconds(ctx.packet_bits, rates.weaker));
}

double realized_gain(const UploadPairContext& ctx,
                     const SicImpairments& impairments) {
  const double z_minus = serial_airtime(ctx);
  const double z_plus = sic_airtime(ctx, impairments);
  if (!std::isfinite(z_plus) || !std::isfinite(z_minus)) return 1.0;
  return std::max(1.0, z_minus / z_plus);
}

double sic_gain(const UploadPairContext& ctx) {
  const double z_minus = serial_airtime(ctx);
  const double z_plus = sic_airtime(ctx);
  if (!std::isfinite(z_plus)) return 0.0;
  if (!std::isfinite(z_minus)) {
    return std::numeric_limits<double>::infinity();
  }
  return z_minus / z_plus;
}

double realized_gain(const UploadPairContext& ctx) {
  return std::max(1.0, sic_gain(ctx));
}

Milliwatts equal_rate_stronger_rss(Milliwatts weaker, Milliwatts noise) {
  SIC_CHECK(noise.value() > 0.0);
  // Equal rates: S¹/(S²+N₀) = S²/N₀  ⇒  S¹ = S²(S²+N₀)/N₀.
  return Milliwatts{weaker.value() * (weaker.value() + noise.value()) /
                    noise.value()};
}

}  // namespace sic::core
