#include "topology/samplers.hpp"

#include <gtest/gtest.h>

namespace sic::topology {
namespace {

TEST(Samplers, TwoToOneRssConsistentWithDistance) {
  Rng rng{1};
  SamplerConfig config;
  config.range_m = 40.0;
  config.pathloss_exponent = 4.0;
  for (int i = 0; i < 200; ++i) {
    const auto s = sample_two_to_one(rng, config);
    EXPECT_LE(s.d1_m, config.range_m + 1e-9);
    EXPECT_LE(s.d2_m, config.range_m + 1e-9);
    const double expected1 = std::pow(std::max(1.0, s.d1_m), -4.0);
    EXPECT_NEAR(s.s1.value(), expected1, expected1 * 1e-12);
    EXPECT_DOUBLE_EQ(s.noise.value(), config.noise);
  }
}

TEST(Samplers, TwoLinkGeometryFixed) {
  Rng rng{2};
  SamplerConfig config;
  config.range_m = 30.0;
  for (int i = 0; i < 100; ++i) {
    const auto s = sample_two_link(rng, config);
    EXPECT_DOUBLE_EQ(s.t1.x, 0.0);
    EXPECT_DOUBLE_EQ(s.t2.x, 30.0);
    EXPECT_LE(distance(s.t1, s.r1), 30.0 + 1e-9);
    EXPECT_LE(distance(s.t2, s.r2), 30.0 + 1e-9);
    // All four RSS entries positive, noise as configured.
    EXPECT_GT(s.rss.s11.value(), 0.0);
    EXPECT_GT(s.rss.s12.value(), 0.0);
    EXPECT_GT(s.rss.s21.value(), 0.0);
    EXPECT_GT(s.rss.s22.value(), 0.0);
  }
}

TEST(Samplers, TwoLinkOwnSignalUsuallyDecentButInterferenceReal) {
  // Receivers sit in their own transmitter's disc, so S11/S22 dominate on
  // average, yet a nontrivial fraction of draws put the receiver nearer the
  // foreign transmitter — the raw material of Fig. 6.
  Rng rng{3};
  SamplerConfig config;
  int interference_dominant = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    const auto s = sample_two_link(rng, config);
    if (s.rss.s12 > s.rss.s11 || s.rss.s21 > s.rss.s22) {
      ++interference_dominant;
    }
  }
  const double frac = static_cast<double>(interference_dominant) / kN;
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.5);
}

TEST(Samplers, UploadClientsSortedByRss) {
  Rng rng{4};
  SamplerConfig config;
  const auto budgets = sample_upload_clients(rng, config, 10);
  ASSERT_EQ(budgets.size(), 10u);
  for (std::size_t i = 1; i < budgets.size(); ++i) {
    EXPECT_GE(budgets[i - 1].rss.value(), budgets[i].rss.value());
    EXPECT_DOUBLE_EQ(budgets[i].noise.value(), config.noise);
  }
}

TEST(Samplers, UploadClientsEmptyAndSingle) {
  Rng rng{5};
  SamplerConfig config;
  EXPECT_TRUE(sample_upload_clients(rng, config, 0).empty());
  EXPECT_EQ(sample_upload_clients(rng, config, 1).size(), 1u);
}

TEST(Samplers, DeterministicAcrossSeeds) {
  SamplerConfig config;
  Rng a{77};
  Rng b{77};
  const auto sa = sample_two_link(a, config);
  const auto sb = sample_two_link(b, config);
  EXPECT_DOUBLE_EQ(sa.rss.s11.value(), sb.rss.s11.value());
  EXPECT_DOUBLE_EQ(sa.rss.s22.value(), sb.rss.s22.value());
}

}  // namespace
}  // namespace sic::topology
