#include "analysis/montecarlo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "analysis/parallel.hpp"
#include "core/cross_link.hpp"
#include "core/multirate.hpp"
#include "core/packing.hpp"
#include "core/pair_cost_engine.hpp"
#include "core/power_control.hpp"
#include "core/scheduler.hpp"
#include "obs/logger.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/check.hpp"

namespace sic::analysis {

namespace {

/// Batch boundary for one Monte-Carlo sweep: on destruction, wall time and
/// samples/sec go into the registry and one progress line is logged at
/// info level. The clock is only read when someone is listening (registry
/// attached or info logging on) — the sweep loops themselves stay clean.
/// Lives on the sweep's calling thread; the per-trial work underneath runs
/// on the parallel engine with its own per-chunk registries.
class SweepTimer {
 public:
  SweepTimer(const char* sweep, int trials, int threads)
      : sweep_(sweep),
        trials_(trials),
        threads_(threads),
        active_(obs::metrics() != nullptr ||
                obs::log_enabled(obs::LogLevel::kInfo)) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }

  SweepTimer(const SweepTimer&) = delete;
  SweepTimer& operator=(const SweepTimer&) = delete;

  ~SweepTimer() {
    if (!active_) return;
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double rate = elapsed_s > 0.0 ? trials_ / elapsed_s : 0.0;
    if (obs::MetricsRegistry* reg = obs::metrics()) {
      const std::string prefix = std::string("analysis.montecarlo.") + sweep_;
      reg->counter(prefix + ".trials")
          .inc(static_cast<std::uint64_t>(trials_));
      reg->histogram(prefix + ".wall_s").observe(elapsed_s);
      reg->gauge(prefix + ".samples_per_sec").set(rate);
      reg->gauge(prefix + ".threads").set(threads_);
    }
    SIC_LOG_INFO(
        "montecarlo %s: %d trials on %d threads in %.3f s (%.0f samples/sec)",
        sweep_, trials_, threads_, elapsed_s, rate);
  }

 private:
  const char* sweep_;
  int trials_;
  int threads_;
  bool active_;
  std::chrono::steady_clock::time_point start_{};
};

/// Splits per-trial TechniqueGains into the per-technique vectors. Every
/// populated vector is reserved up front; multirate is filled only when
/// requested (it stays intentionally empty for the two-receiver sweep).
TechniqueSamples split_samples(const std::vector<TechniqueGains>& gains,
                               bool with_multirate) {
  TechniqueSamples out;
  out.sic.reserve(gains.size());
  out.power_control.reserve(gains.size());
  out.packing.reserve(gains.size());
  if (with_multirate) out.multirate.reserve(gains.size());
  for (const auto& g : gains) {
    out.sic.push_back(g.sic);
    out.power_control.push_back(g.power_control);
    out.packing.push_back(g.packing);
    if (with_multirate) out.multirate.push_back(g.multirate);
  }
  return out;
}

}  // namespace

TechniqueGains evaluate_upload_pair_techniques(
    const core::UploadPairContext& ctx) {
  TechniqueGains out;
  const double serial = core::serial_airtime(ctx);
  out.sic = core::realized_gain(ctx);
  if (std::isfinite(serial)) {
    const double pc = core::power_controlled_airtime(ctx);
    if (pc > 0.0) out.power_control = std::max(1.0, serial / pc);
    const double mr = core::multirate_airtime(ctx);
    if (mr > 0.0 && std::isfinite(mr)) {
      out.multirate = std::max(1.0, serial / mr);
    }
  }
  out.packing = core::packing_two_to_one(ctx).gain;
  return out;
}

std::vector<double> run_two_link_gains(const topology::SamplerConfig& config,
                                       const phy::RateAdapter& adapter,
                                       int trials, std::uint64_t seed,
                                       double packet_bits, int threads) {
  SIC_CHECK(trials > 0);
  ParallelRunner runner{{.threads = threads}};
  SweepTimer sweep{"two_link_gains", trials, runner.threads()};
  SIC_SPAN("montecarlo.two_link_gains");
  return runner.map_trials<double>(
      trials, seed, [&](Rng& rng, std::int64_t) {
        const auto sample = topology::sample_two_link(rng, config);
        return core::evaluate_cross_link(sample.rss, adapter, packet_bits)
            .gain;
      });
}

TechniqueSamples run_two_to_one_techniques(
    const topology::SamplerConfig& config, const phy::RateAdapter& adapter,
    int trials, std::uint64_t seed, double packet_bits, int threads) {
  SIC_CHECK(trials > 0);
  ParallelRunner runner{{.threads = threads}};
  SweepTimer sweep{"two_to_one_techniques", trials, runner.threads()};
  SIC_SPAN("montecarlo.two_to_one_techniques");
  const auto gains = runner.map_trials<TechniqueGains>(
      trials, seed, [&](Rng& rng, std::int64_t) {
        const auto sample = topology::sample_two_to_one(rng, config);
        const auto ctx = core::UploadPairContext::make(
            sample.s1, sample.s2, sample.noise, adapter, packet_bits);
        return evaluate_upload_pair_techniques(ctx);
      });
  return split_samples(gains, /*with_multirate=*/true);
}

namespace {

/// Scales transmitter T1's power by `scale` (both of its RSS entries).
channel::TwoLinkRss scale_t1(const channel::TwoLinkRss& rss, double scale) {
  channel::TwoLinkRss out = rss;
  out.s11 = rss.s11 * scale;
  out.s21 = rss.s21 * scale;
  return out;
}

/// Best realized cross-link gain over power reductions of either
/// transmitter (coarse dB grid; reductions only, per Section 5.4's caveat
/// against boosting).
double cross_link_power_control_gain(const channel::TwoLinkRss& rss,
                                     const phy::RateAdapter& adapter,
                                     double packet_bits) {
  // The no-SIC serial baseline always uses full power.
  const double serial =
      core::evaluate_cross_link(rss, adapter, packet_bits).serial_airtime;
  double best = core::evaluate_cross_link(rss, adapter, packet_bits).gain;
  if (!std::isfinite(serial)) return best;
  constexpr int kSteps = 81;  // 0 .. -20 dB in 0.25 dB steps
  for (int tx = 0; tx < 2; ++tx) {
    for (int i = 1; i < kSteps; ++i) {
      const double db = -20.0 * i / (kSteps - 1);
      const double scale = Decibels{db}.linear();
      const channel::TwoLinkRss scaled =
          tx == 0 ? scale_t1(rss, scale) : scale_t1(rss.mirrored(), scale).mirrored();
      const auto res = core::evaluate_cross_link(scaled, adapter, packet_bits);
      if (std::isfinite(res.concurrent_airtime) && res.concurrent_airtime > 0.0) {
        best = std::max(best, std::max(1.0, serial / res.concurrent_airtime));
      }
    }
  }
  return best;
}

}  // namespace

TechniqueSamples run_two_link_techniques(const topology::SamplerConfig& config,
                                         const phy::RateAdapter& adapter,
                                         int trials, std::uint64_t seed,
                                         double packet_bits, int threads) {
  SIC_CHECK(trials > 0);
  ParallelRunner runner{{.threads = threads}};
  SweepTimer sweep{"two_link_techniques", trials, runner.threads()};
  SIC_SPAN("montecarlo.two_link_techniques");
  const auto gains = runner.map_trials<TechniqueGains>(
      trials, seed, [&](Rng& rng, std::int64_t) {
        const auto sample = topology::sample_two_link(rng, config);
        TechniqueGains g;
        g.sic = core::evaluate_cross_link(sample.rss, adapter, packet_bits)
                    .gain;
        g.power_control =
            cross_link_power_control_gain(sample.rss, adapter, packet_bits);
        g.packing =
            core::cross_link_packing_gain(sample.rss, adapter, packet_bits);
        return g;
      });
  // Multirate is N/A with two receivers (Section 5.5): left empty.
  return split_samples(gains, /*with_multirate=*/false);
}

std::vector<double> run_upload_deployment_gains(
    const topology::SamplerConfig& config, const phy::RateAdapter& adapter,
    int trials, int n_clients, std::uint64_t seed, double packet_bits,
    int threads) {
  SIC_CHECK(trials > 0);
  SIC_CHECK(n_clients >= 2);
  ParallelRunner runner{{.threads = threads}};
  SweepTimer sweep{"upload_deployment_gains", trials, runner.threads()};
  SIC_SPAN("montecarlo.upload_deployment_gains");
  core::SchedulerOptions options;
  options.packet_bits = packet_bits;
  return runner.map_trials<double>(
      trials, seed, [&](Rng& rng, std::int64_t) {
        const auto clients =
            topology::sample_upload_clients(rng, config, n_clients);
        const double serial =
            core::serial_upload_airtime(clients, adapter, packet_bits);
        if (!std::isfinite(serial) || serial <= 0.0) return 1.0;
        // Trial-local engine: every trial is a fresh topology, so the build
        // is cold by construction and the published scheduler.pair_engine.*
        // counters depend only on the trial set, never on thread placement.
        core::PairCostEngine engine{adapter, options};
        engine.set_clients(clients);
        const auto schedule = engine.schedule();
        return schedule.total_airtime > 0.0 ? serial / schedule.total_airtime
                                            : 1.0;
      });
}

}  // namespace sic::analysis
