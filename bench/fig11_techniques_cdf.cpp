/// Reproduces Fig. 11: Monte Carlo CDFs of throughput gain for SIC coupled
/// with power control, multirate packetization and packet packing, in (a)
/// the two-transmitter/one-receiver geometry and (b) the two-receiver
/// geometry. Paper: in (a) SIC alone gains >20% in ~20% of cases and the
/// techniques lift that to >20% in ~40%; in (b) nothing helps much.

#include <cstdio>

#include "analysis/montecarlo.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace sic;
  const bench::RunTimer timer;
  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  constexpr int kTrials = 10000;
  constexpr std::uint64_t kSeed = 42;
  constexpr double kBits = 12000.0;
  const int threads = bench::threads(argc, argv);
  topology::SamplerConfig config;

  bench::header("Fig. 11a — two transmitters, one receiver",
                "SIC alone: >20% gain in ~20% of cases; with power control "
                "or multirate: >20% gain in ~40%");
  const auto a = analysis::run_two_to_one_techniques(config, shannon, kTrials,
                                                     kSeed, kBits, threads);
  const analysis::EmpiricalCdf a_sic{a.sic};
  const analysis::EmpiricalCdf a_pc{a.power_control};
  const analysis::EmpiricalCdf a_mr{a.multirate};
  const analysis::EmpiricalCdf a_pk{a.packing};
  bench::print_fractions("SIC alone", a_sic);
  bench::print_fractions("SIC + power control", a_pc);
  bench::print_fractions("SIC + multirate", a_mr);
  bench::print_fractions("SIC + packing", a_pk);
  bench::print_cdf("SIC alone", a_sic);
  bench::print_cdf("SIC + power control", a_pc);
  bench::print_cdf("SIC + multirate", a_mr);
  bench::print_cdf("SIC + packing", a_pk);

  bench::header("Fig. 11b — two transmitters, two receivers",
                "SIC alone has almost no gain, and very little even with "
                "the optimizations");
  const auto bb = analysis::run_two_link_techniques(config, shannon, kTrials,
                                                    kSeed, kBits, threads);
  const analysis::EmpiricalCdf b_sic{bb.sic};
  const analysis::EmpiricalCdf b_pc{bb.power_control};
  const analysis::EmpiricalCdf b_pk{bb.packing};
  bench::print_fractions("SIC alone", b_sic);
  bench::print_fractions("SIC + power control", b_pc);
  bench::print_fractions("SIC + packing", b_pk);
  bench::print_cdf("SIC alone", b_sic);
  bench::print_cdf("SIC + power control", b_pc);
  bench::print_cdf("SIC + packing", b_pk);
  std::printf("(multirate is not applicable with two receivers, Sec. 5.5)\n");
  if (const auto prefix = bench::csv_prefix(argc, argv)) {
    const std::string man = bench::manifest(kSeed, timer, 2 * kTrials);
    bench::write_text_file(*prefix + "fig11a_sic.csv",
                           man + bench::cdf_csv(a_sic));
    bench::write_text_file(*prefix + "fig11a_power.csv",
                           man + bench::cdf_csv(a_pc));
    bench::write_text_file(*prefix + "fig11a_multirate.csv",
                           man + bench::cdf_csv(a_mr));
    bench::write_text_file(*prefix + "fig11a_packing.csv",
                           man + bench::cdf_csv(a_pk));
    bench::write_text_file(*prefix + "fig11b_sic.csv",
                           man + bench::cdf_csv(b_sic));
    bench::write_text_file(*prefix + "fig11b_power.csv",
                           man + bench::cdf_csv(b_pc));
    bench::write_text_file(*prefix + "fig11b_packing.csv",
                           man + bench::cdf_csv(b_pk));
  }
  return 0;
}
