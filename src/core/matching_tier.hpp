#ifndef SICMAC_CORE_MATCHING_TIER_HPP
#define SICMAC_CORE_MATCHING_TIER_HPP

/// \file matching_tier.hpp
/// Resolution of a SchedulerOptions::Pairing policy to the concrete matcher
/// that runs for a given backlog size, shared by every caller of the
/// Fig. 12 reduction (the pair-cost engine and the backlog drain planner)
/// so the two cannot drift apart on what "auto" means.
///
/// The policy exists because exact blossom is O(n³): affordable (and the
/// paper's construction) at the tens-of-clients backlogs of Fig. 12, a wall
/// at the hundreds-of-clients per-AP backlogs of the dense deployments the
/// ROADMAP targets. kAuto crosses from exact to the approximate tier at a
/// configurable client count.

#include <span>
#include <vector>

#include "core/scheduler.hpp"
#include "matching/graph.hpp"

namespace sic::core {

/// The concrete matcher a Pairing policy resolves to for one backlog.
enum class MatchingTier {
  kBlossom,  ///< exact minimum-weight perfect matching
  kGreedy,   ///< cheapest-pair-first heuristic
  kApprox,   ///< sparsified greedy + 2-opt postpass
};

[[nodiscard]] constexpr const char* to_string(MatchingTier t) {
  switch (t) {
    case MatchingTier::kBlossom: return "blossom";
    case MatchingTier::kGreedy: return "greedy";
    case MatchingTier::kApprox: return "approx";
  }
  return "?";
}

/// Resolves \p pairing for a backlog of \p num_clients clients (the count
/// before any dummy vertex is added). kAuto uses the approximate tier at
/// num_clients >= auto_tier_threshold and exact blossom below it; the
/// fixed policies resolve to themselves regardless of size.
[[nodiscard]] MatchingTier resolve_matching_tier(
    SchedulerOptions::Pairing pairing, int num_clients,
    int auto_tier_threshold);

/// Runs the resolved matcher over \p costs. \p vertex_serial_cost feeds
/// the approximate tier's sparsification (per-vertex solo airtime, 0.0 for
/// a dummy vertex — its edges are always dropped and closed by the
/// fallback) and \p sparsify_margin is the admission margin; both are
/// ignored by the exact tiers. \p edge_scratch is reused across calls.
[[nodiscard]] matching::Matching run_matching_tier(
    const matching::CostMatrix& costs, MatchingTier tier,
    std::span<const double> vertex_serial_cost, Decibels sparsify_margin,
    std::vector<matching::WeightedEdge>& edge_scratch);

}  // namespace sic::core

#endif  // SICMAC_CORE_MATCHING_TIER_HPP
