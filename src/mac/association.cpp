#include "mac/association.hpp"

#include <algorithm>
#include <cmath>

#include "topology/geometry.hpp"
#include "util/check.hpp"

namespace sic::mac {

namespace {

/// Guard subtracted from the grid cutoff's upper bound before pruning.
/// The bound mixes received_power(ring_lower_bound) with the minimum load
/// penalty in plain dB arithmetic; 1e-6 dB absorbs any rounding slack in
/// that *bound* (scores themselves are computed exactly, so decisions
/// stay bit-identical to brute force — the guard only makes the walk
/// visit at most one extra ring).
constexpr double kCutoffSlackDb = 1e-6;

}  // namespace

AssociationPlanner::AssociationPlanner(
    std::span<const topology::Point> ap_sites,
    const channel::LogDistancePathLoss& pathloss, Dbm client_tx_power,
    Decibels load_penalty_per_client)
    : index_(ap_sites),
      pathloss_(&pathloss),
      client_tx_power_(client_tx_power),
      load_penalty_per_client_(load_penalty_per_client) {
  SIC_CHECK(load_penalty_per_client_.value() >= 0.0);
}

Dbm AssociationPlanner::score(topology::Point client, int ap,
                              int members) const {
  const double d = topology::distance(client, index_.point(ap));
  return pathloss_->received_power(client_tx_power_, d) -
         load_penalty_per_client_ * static_cast<double>(members);
}

AssociationProposal AssociationPlanner::propose_brute(
    topology::Point client, int incumbent,
    std::span<const std::uint8_t> ap_alive,
    std::span<const int> ap_members) const {
  AssociationProposal p;
  const int n = index_.size();
  for (int ap = 0; ap < n; ++ap) {
    if (ap_alive[static_cast<std::size_t>(ap)] == 0) continue;
    const Dbm s = score(client, ap, ap_members[static_cast<std::size_t>(ap)]);
    ++p.candidates;
    if (ap == incumbent) p.incumbent_score = s;
    // Strict > in ascending id order: ties keep the lower id.
    if (p.best_ap < 0 || s > p.best_score) {
      p.best_ap = ap;
      p.best_score = s;
    }
  }
  return p;
}

AssociationProposal AssociationPlanner::propose_grid(
    topology::Point client, int incumbent,
    std::span<const std::uint8_t> ap_alive, std::span<const int> ap_members,
    int min_live_members, std::vector<int>& ring_scratch) const {
  AssociationProposal p;
  // No live AP can beat this bound from ring r onward: its RSS is at most
  // the RSS at the ring's distance lower bound (received power is
  // monotone non-increasing in distance, clamped below the reference
  // distance), and its load penalty is at least the fleet minimum.
  const Decibels min_penalty =
      load_penalty_per_client_ * static_cast<double>(min_live_members);
  const int last_ring = index_.max_ring(client);
  for (int ring = 0; ring <= last_ring; ++ring) {
    if (p.best_ap >= 0) {
      const Dbm bound =
          pathloss_->received_power(client_tx_power_,
                                    index_.ring_lower_bound_m(ring)) -
          min_penalty;
      if (bound.value() + kCutoffSlackDb < p.best_score.value()) break;
    }
    ring_scratch.clear();
    index_.collect_ring(client, ring, ring_scratch);
    for (const int ap : ring_scratch) {
      if (ap_alive[static_cast<std::size_t>(ap)] == 0) continue;
      const Dbm s =
          score(client, ap, ap_members[static_cast<std::size_t>(ap)]);
      ++p.candidates;
      if (ap == incumbent) p.incumbent_score = s;
      // Brute force scans ascending ids with strict >, which resolves
      // equal scores toward the lower id; the ring walk visits ids out of
      // order, so spell the tie-break out.
      if (p.best_ap < 0 || s > p.best_score ||
          (s == p.best_score && ap < p.best_ap)) {
        p.best_ap = ap;
        p.best_score = s;
      }
    }
  }
  // The walk may prune the incumbent's ring when it cannot win, but the
  // commit phase's hysteresis check still needs its score.
  if (incumbent >= 0 && ap_alive[static_cast<std::size_t>(incumbent)] != 0 &&
      std::isinf(p.incumbent_score.value())) {
    p.incumbent_score =
        score(client, incumbent,
              ap_members[static_cast<std::size_t>(incumbent)]);
  }
  return p;
}

void AssociationPlanner::plan(AssociationMode mode,
                              std::span<const double> xs,
                              std::span<const double> ys,
                              std::span<const std::uint8_t> eligible,
                              std::span<const int> incumbent,
                              std::span<const std::uint8_t> ap_alive,
                              std::span<const int> ap_members,
                              ThreadPool& pool,
                              std::vector<AssociationProposal>& out) const {
  const std::size_t n_clients = xs.size();
  SIC_CHECK(ys.size() == n_clients && eligible.size() == n_clients &&
            incumbent.size() == n_clients);
  SIC_CHECK(ap_alive.size() == static_cast<std::size_t>(index_.size()) &&
            ap_members.size() == static_cast<std::size_t>(index_.size()));
  out.assign(n_clients, AssociationProposal{});

  // Fleet-wide minimum member count over live APs, for the grid cutoff's
  // load bound. One sequential O(APs) pass per epoch — negligible next to
  // the per-client work it prunes.
  int min_live_members = 0;
  if (mode == AssociationMode::kGrid) {
    bool seen = false;
    for (int ap = 0; ap < index_.size(); ++ap) {
      if (ap_alive[static_cast<std::size_t>(ap)] == 0) continue;
      const int m = ap_members[static_cast<std::size_t>(ap)];
      min_live_members = seen ? std::min(min_live_members, m) : m;
      seen = true;
    }
  }

  constexpr std::int64_t kChunk = 256;
  pool.parallel_for(
      static_cast<std::int64_t>(n_clients), kChunk,
      [&](std::int64_t begin, std::int64_t end) {
        std::vector<int> ring_scratch;
        for (std::int64_t i = begin; i < end; ++i) {
          const std::size_t ci = static_cast<std::size_t>(i);
          if (eligible[ci] == 0) continue;
          const topology::Point q{xs[ci], ys[ci]};
          out[ci] = mode == AssociationMode::kBruteForce
                        ? propose_brute(q, incumbent[ci], ap_alive,
                                        ap_members)
                        : propose_grid(q, incumbent[ci], ap_alive,
                                       ap_members, min_live_members,
                                       ring_scratch);
        }
      });
}

}  // namespace sic::mac
