#include "matching/approx.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "matching/blossom.hpp"
#include "matching/error.hpp"
#include "matching/greedy.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace sic::matching {
namespace {

CostMatrix random_costs(int n, Rng& rng) {
  CostMatrix costs{n};
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) costs.set(i, j, rng.uniform(1.0, 100.0));
  }
  return costs;
}

void expect_perfect(const Matching& m, int n) {
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (const auto& [a, b] : m.pairs) {
    ASSERT_GE(a, 0);
    ASSERT_LT(a, n);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, n);
    EXPECT_FALSE(seen[static_cast<std::size_t>(a)]);
    EXPECT_FALSE(seen[static_cast<std::size_t>(b)]);
    seen[static_cast<std::size_t>(a)] = seen[static_cast<std::size_t>(b)] =
        true;
  }
  EXPECT_EQ(m.pairs.size(), static_cast<std::size_t>(n) / 2);
}

TEST(ApproxMatching, PostpassFixesTheGreedyTrap) {
  // The classic instance where greedy pays 101 and exact pays 4: one 2-opt
  // rewiring of {(0,1),(2,3)} reaches the optimum.
  CostMatrix costs{4};
  costs.set(0, 1, 1.0);
  costs.set(2, 3, 100.0);
  costs.set(0, 2, 2.0);
  costs.set(1, 3, 2.0);
  costs.set(0, 3, 50.0);
  costs.set(1, 2, 50.0);
  ApproxMatchStats stats;
  const auto m = approx_min_weight_perfect_matching(costs, &stats);
  EXPECT_DOUBLE_EQ(m.total_cost, 4.0);
  EXPECT_GE(stats.swaps_applied, 1u);
  expect_perfect(m, 4);
}

/// Scheduler-shaped random costs: each vertex gets a solo airtime s_k and a
/// pair costs max(s_u, s_v) + U(0,1) * min(s_u, s_v). That is the structure
/// the Fig. 12 reduction actually produces — SIC can't finish before the
/// slower client's solo airtime, and serial transmission (s_u + s_v) is
/// always available as a fallback — and it is what makes the greedy family
/// competitive. (On unstructured uniform matrices greedy's per-instance
/// ratio provably exceeds any constant.)
CostMatrix scheduler_shaped_costs(int n, Rng& rng) {
  std::vector<double> solo(static_cast<std::size_t>(n));
  for (double& s : solo) s = rng.uniform(1.0, 10.0);
  CostMatrix costs{n};
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double hi = std::max(solo[static_cast<std::size_t>(i)],
                                 solo[static_cast<std::size_t>(j)]);
      const double lo = std::min(solo[static_cast<std::size_t>(i)],
                                 solo[static_cast<std::size_t>(j)]);
      costs.set(i, j, hi + rng.uniform(0.0, 1.0) * lo);
    }
  }
  return costs;
}

TEST(ApproxMatching, PropertyBoundsVsBlossom) {
  // The PR's quality contract on seeded scheduler-shaped matrices,
  // n = 4..32:
  //   greedy          <= 2.0x the exact total,
  //   greedy + 2-opt  <= 1.5x the exact total,
  //   approx          <= greedy (the postpass only applies improvements).
  Rng rng{7};
  for (int n = 4; n <= 32; n += 2) {
    for (int trial = 0; trial < 8; ++trial) {
      const auto costs = scheduler_shaped_costs(n, rng);
      const double exact = min_weight_perfect_matching(costs).total_cost;
      const double greedy =
          greedy_min_weight_perfect_matching(costs).total_cost;
      const auto approx = approx_min_weight_perfect_matching(costs);
      ASSERT_GT(exact, 0.0);
      EXPECT_LE(greedy, 2.0 * exact) << "n=" << n << " trial=" << trial;
      EXPECT_LE(approx.total_cost, 1.5 * exact)
          << "n=" << n << " trial=" << trial;
      EXPECT_LE(approx.total_cost, greedy + 1e-9)
          << "n=" << n << " trial=" << trial;
      EXPECT_GE(approx.total_cost + 1e-9, exact)
          << "n=" << n << " trial=" << trial;
      expect_perfect(approx, n);
    }
  }
}

TEST(ApproxMatching, DeterministicAcrossCalls) {
  Rng rng{11};
  const auto costs = random_costs(24, rng);
  const auto a = approx_min_weight_perfect_matching(costs);
  const auto b = approx_min_weight_perfect_matching(costs);
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i], b.pairs[i]);
  }
  EXPECT_EQ(a.total_cost, b.total_cost);  // bitwise, not approximate
}

TEST(ApproxMatching, OddCountRejected) {
  CostMatrix costs{5};
  try {
    (void)approx_min_weight_perfect_matching(costs);
    FAIL() << "odd vertex count must throw MatchingError";
  } catch (const MatchingError& e) {
    EXPECT_NE(std::string{e.what()}.find("5"), std::string::npos);
  }
  std::vector<double> serial(5, 1.0);
  std::vector<WeightedEdge> scratch;
  try {
    (void)approx_min_weight_perfect_matching(costs, serial, Decibels{0.0},
                                             scratch);
    FAIL() << "odd vertex count must throw MatchingError (sparse overload)";
  } catch (const MatchingError& e) {
    EXPECT_NE(std::string{e.what()}.find("5"), std::string::npos);
  }
}

TEST(ApproxMatching, DenseStatsCountEveryEdge) {
  Rng rng{13};
  const int n = 10;
  const auto costs = random_costs(n, rng);
  ApproxMatchStats stats;
  (void)approx_min_weight_perfect_matching(costs, &stats);
  EXPECT_EQ(stats.kept_edges, static_cast<std::uint64_t>(n * (n - 1) / 2));
  EXPECT_EQ(stats.dropped_edges, 0u);
  EXPECT_EQ(stats.fallback_pairs, 0u);
  EXPECT_GE(stats.swap_passes, 1u);
}

TEST(ApproxMatching, SparsifyDropsEdgesThatLoseToSerial) {
  // Two vertices (0, 1) whose pairing beats their serial sum; the other two
  // (2, 3) pair worse than serial everywhere, so every one of their edges
  // is cut and the fallback closes them.
  CostMatrix costs{4};
  costs.set(0, 1, 1.0);    // serial sum 10 -> kept
  costs.set(0, 2, 50.0);   // > serial sums -> dropped
  costs.set(0, 3, 50.0);
  costs.set(1, 2, 50.0);
  costs.set(1, 3, 50.0);
  costs.set(2, 3, 50.0);
  const std::vector<double> serial{5.0, 5.0, 6.0, 6.0};
  std::vector<WeightedEdge> scratch;
  ApproxMatchStats stats;
  const auto m = approx_min_weight_perfect_matching(costs, serial,
                                                    Decibels{0.0}, scratch,
                                                    &stats);
  EXPECT_EQ(stats.kept_edges, 1u);
  EXPECT_EQ(stats.dropped_edges, 5u);
  EXPECT_EQ(stats.fallback_pairs, 1u);  // (2, 3) closed by the fallback
  expect_perfect(m, 4);
  EXPECT_DOUBLE_EQ(m.total_cost, 51.0);
}

TEST(ApproxMatching, SparsifyMarginTightensAdmission) {
  // At margin 0 dB the edge cost 9.9 < serial sum 10 survives; demanding a
  // 3 dB gain (cost < 10 * 10^-0.3 ~ 5.01) cuts it.
  CostMatrix costs{2};
  costs.set(0, 1, 9.9);
  const std::vector<double> serial{5.0, 5.0};
  std::vector<WeightedEdge> scratch;
  ApproxMatchStats loose_stats;
  (void)approx_min_weight_perfect_matching(costs, serial, Decibels{0.0},
                                           scratch, &loose_stats);
  EXPECT_EQ(loose_stats.kept_edges, 1u);
  ApproxMatchStats tight_stats;
  const auto m = approx_min_weight_perfect_matching(costs, serial,
                                                    Decibels{3.0}, scratch,
                                                    &tight_stats);
  EXPECT_EQ(tight_stats.kept_edges, 0u);
  EXPECT_EQ(tight_stats.fallback_pairs, 1u);
  expect_perfect(m, 2);  // fallback still pairs them at the matrix cost
  EXPECT_DOUBLE_EQ(m.total_cost, 9.9);
}

TEST(ApproxMatching, DummyVertexNeverKeepsAnEdge) {
  // serial[dummy] = 0 models the odd-count dummy client. The engine prices
  // a dummy edge at the real vertex's solo airtime, so the admission test
  // cost < (serial[u] + 0) * margin_linear is never strict at margin 0 and
  // every dummy edge drops; the dummy always lands in the fallback, exactly
  // like the scheduler's dummy absorbs the odd vertex.
  Rng rng{17};
  const int n = 6;
  auto costs = random_costs(n, rng);
  std::vector<double> serial(static_cast<std::size_t>(n), 1000.0);
  serial.back() = 0.0;  // the dummy
  for (int i = 0; i < n - 1; ++i) {
    costs.set(i, n - 1, serial[static_cast<std::size_t>(i)]);  // solo cost
  }
  std::vector<WeightedEdge> scratch;
  ApproxMatchStats stats;
  const auto m = approx_min_weight_perfect_matching(costs, serial,
                                                    Decibels{0.0}, scratch,
                                                    &stats);
  expect_perfect(m, n);
  // Dummy edges (5 of them) must all have been dropped at admission.
  EXPECT_GE(stats.dropped_edges, 5u);
  bool dummy_matched = false;
  for (const auto& [a, b] : m.pairs) {
    if (a == n - 1 || b == n - 1) dummy_matched = true;
  }
  EXPECT_TRUE(dummy_matched);
}

TEST(ApproxMatching, SparseMatchesDenseWhenNothingDrops) {
  // With an infinite admission allowance (huge negative margin) the
  // sparsified overload keeps every edge and must reproduce the dense
  // tier's matching bit for bit.
  Rng rng{19};
  const int n = 16;
  const auto costs = random_costs(n, rng);
  const std::vector<double> serial(static_cast<std::size_t>(n), 1e9);
  std::vector<WeightedEdge> scratch;
  const auto dense = approx_min_weight_perfect_matching(costs);
  const auto sparse = approx_min_weight_perfect_matching(
      costs, serial, Decibels{0.0}, scratch);
  ASSERT_EQ(dense.pairs.size(), sparse.pairs.size());
  for (std::size_t i = 0; i < dense.pairs.size(); ++i) {
    EXPECT_EQ(dense.pairs[i], sparse.pairs[i]);
  }
  EXPECT_EQ(dense.total_cost, sparse.total_cost);
}

TEST(CostMatrixEdges, OutParamOverloadIsBitIdentical) {
  Rng rng{23};
  const auto costs = random_costs(12, rng);
  const auto fresh = costs.edges();
  std::vector<WeightedEdge> reused;
  reused.reserve(128);  // pre-existing capacity must not change the output
  costs.edges(reused);
  ASSERT_EQ(fresh.size(), reused.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(fresh[i].u, reused[i].u);
    EXPECT_EQ(fresh[i].v, reused[i].v);
    EXPECT_EQ(fresh[i].weight, reused[i].weight);  // bitwise
  }
  // Reuse across calls: a second fill after clear sees the same list.
  costs.edges(reused);
  ASSERT_EQ(fresh.size(), reused.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(fresh[i].weight, reused[i].weight);
  }
}

}  // namespace
}  // namespace sic::matching
