#ifndef SICMAC_MAC_STATION_HPP
#define SICMAC_MAC_STATION_HPP

/// \file station.hpp
/// A CSMA/CA (DCF) client station: DIFS + slotted binary-exponential
/// backoff, data transmission at its clean best rate, ACK wait with retry
/// and CW doubling. This is the -SIC-era MAC the paper's baselines assume;
/// the SIC gains in the simulator appear when the *AP's receiver* can
/// recover collided frames (capture / SIC), sparing retries.

#include <cstdint>
#include <deque>

#include "mac/event_queue.hpp"
#include "mac/medium.hpp"
#include "util/rng.hpp"

namespace sic::mac {

struct StationStats {
  std::uint64_t attempts = 0;
  std::uint64_t delivered = 0;
  std::uint64_t retries = 0;
  std::uint64_t drops = 0;
  SimTime completion_time = 0;  ///< when the last queued frame was acked
};

class DcfStation : public MediumListener {
 public:
  /// \p medium and \p queue must outlive the station. \p data_rate is the
  /// fixed rate this station uses for data frames (the paper's best
  /// feasible clean rate).
  DcfStation(EventQueue& queue, Medium& medium, MacNodeId id, MacNodeId ap,
             BitsPerSecond data_rate, Rng rng);

  DcfStation(const DcfStation&) = delete;
  DcfStation& operator=(const DcfStation&) = delete;

  /// Queues \p count data frames of \p bits each.
  void enqueue(int count, double bits);

  /// Enables the RTS/CTS exchange before each data frame (hidden-terminal
  /// protection via NAV reservations). Off by default.
  void set_rts_cts(bool enabled) { use_rts_cts_ = enabled; }

  /// Begins contending for the queued frames.
  void start();

  [[nodiscard]] bool done() const { return pending_.empty() && !in_flight_; }
  [[nodiscard]] const StationStats& stats() const { return stats_; }
  [[nodiscard]] MacNodeId id() const { return id_; }

  // MediumListener:
  void on_channel_update() override;
  void on_frame_received(const Frame& frame, bool decoded) override;
  void on_frame_overheard(const Frame& frame) override;

 private:
  enum class State {
    kIdle,      ///< nothing to send
    kWaitIdle,  ///< have a frame, medium busy
    kDifs,      ///< medium idle, DIFS running
    kBackoff,   ///< backoff counter running
    kTx,        ///< frame on air
    kAwaitCts,  ///< RTS sent, waiting for the CTS
    kAwaitAck,  ///< waiting for the AP's ACK
  };

  [[nodiscard]] bool medium_busy() const;
  void try_begin_contention();
  void begin_difs();
  void begin_backoff();
  void pause_backoff();
  void transmit_head();
  void send_data_frame();
  void on_ack_timeout(std::uint64_t epoch);
  void frame_succeeded();
  void frame_failed();
  [[nodiscard]] SimTime data_duration() const;

  EventQueue* queue_;
  Medium* medium_;
  MacNodeId id_;
  MacNodeId ap_;
  BitsPerSecond data_rate_;
  Rng rng_;

  State state_ = State::kIdle;
  std::deque<Frame> pending_;
  bool in_flight_ = false;
  bool use_rts_cts_ = false;
  SimTime nav_until_ = 0;  ///< virtual carrier sense from overheard RTS/CTS
  int cw_ = 0;                 ///< current contention window
  int retry_count_ = 0;
  int backoff_slots_ = -1;     ///< remaining slots (-1 = not drawn yet)
  SimTime backoff_started_ = 0;
  std::uint64_t timer_epoch_ = 0;  ///< invalidates stale timer callbacks
  std::uint64_t next_frame_id_;
  StationStats stats_;
};

}  // namespace sic::mac

#endif  // SICMAC_MAC_STATION_HPP
