#include "trace/generator.hpp"

#include <cmath>
#include <vector>

#include "channel/pathloss.hpp"
#include "channel/shadowing.hpp"
#include "topology/geometry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sic::trace {

double diurnal_presence_factor(int timestamp_s) {
  const int day = (timestamp_s / 86400) % 7;     // 0 = Monday
  const int hour = (timestamp_s / 3600) % 24;
  const bool weekend = day >= 5;
  // Smooth daytime bump peaking at 13h, floor at night.
  const double phase = (hour - 13.0) / 4.5;
  const double bump = std::exp(-0.5 * phase * phase);
  const double daytime = 0.05 + 0.95 * bump;
  return weekend ? 0.05 + 0.20 * bump : daytime;
}

RssiTrace generate_building_trace(const BuildingConfig& config,
                                  std::uint64_t seed) {
  SIC_CHECK(config.ap_grid_x >= 1 && config.ap_grid_y >= 1);
  SIC_CHECK(config.client_population >= 0);
  SIC_CHECK(config.snapshot_period_s > 0 && config.duration_s > 0);
  Rng rng{seed};

  // AP grid.
  std::vector<topology::Point> aps;
  for (int gy = 0; gy < config.ap_grid_y; ++gy) {
    for (int gx = 0; gx < config.ap_grid_x; ++gx) {
      aps.push_back(topology::Point{gx * config.ap_spacing_m,
                                    gy * config.ap_spacing_m});
    }
  }
  const double x_max = (config.ap_grid_x - 1) * config.ap_spacing_m;
  const double y_max = (config.ap_grid_y - 1) * config.ap_spacing_m;

  // Client homes.
  std::vector<topology::Point> homes;
  homes.reserve(static_cast<std::size_t>(config.client_population));
  for (int c = 0; c < config.client_population; ++c) {
    homes.push_back(topology::random_in_rect(
        rng, -config.floor_margin_m, -config.floor_margin_m,
        x_max + config.floor_margin_m, y_max + config.floor_margin_m));
  }

  const auto pathloss = channel::LogDistancePathLoss::for_carrier(
      config.pathloss_exponent);
  const channel::LogNormalShadowing shadowing{config.shadowing_sigma};
  const Dbm tx_power = config.client_tx_power;

  RssiTrace trace;
  for (int ts = 0; ts < config.duration_s; ts += config.snapshot_period_s) {
    Snapshot snap;
    snap.timestamp_s = ts;
    snap.aps.resize(aps.size());
    for (std::size_t a = 0; a < aps.size(); ++a) {
      snap.aps[a].ap_id = static_cast<std::uint32_t>(a);
    }
    const double presence =
        config.presence_probability *
        (config.diurnal ? diurnal_presence_factor(ts) : 1.0);
    for (int c = 0; c < config.client_population; ++c) {
      if (!rng.chance(presence)) continue;
      const topology::Point pos = topology::random_in_disc(
          rng, homes[static_cast<std::size_t>(c)], config.roam_radius_m);
      // RSSI at every AP; associate with the strongest.
      int best_ap = -1;
      double best_rssi = -1e9;
      for (std::size_t a = 0; a < aps.size(); ++a) {
        const double d = topology::distance(pos, aps[a]);
        const Dbm rssi =
            pathloss.received_power(tx_power, d) + shadowing.sample(rng);
        if (rssi.value() > best_rssi) {
          best_rssi = rssi.value();
          best_ap = static_cast<int>(a);
        }
      }
      if (best_ap >= 0 && best_rssi >= config.association_floor.value()) {
        snap.aps[static_cast<std::size_t>(best_ap)].clients.push_back(
            ClientObservation{static_cast<std::uint32_t>(c), Dbm{best_rssi}});
      }
    }
    trace.snapshots.push_back(std::move(snap));
  }
  return trace;
}

}  // namespace sic::trace
