#include "matching/greedy.hpp"

#include <algorithm>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/check.hpp"

namespace sic::matching {

Matching greedy_min_weight_perfect_matching(const CostMatrix& costs) {
  const int n = costs.size();
  SIC_CHECK_MSG(n % 2 == 0, "perfect matching requires an even vertex count");
  obs::MetricsRegistry* reg = obs::metrics();
  obs::ScopedTimer timer{
      reg != nullptr ? &reg->histogram("matching.greedy.wall_s") : nullptr,
      reg != nullptr ? &reg->counter("matching.greedy.calls") : nullptr};
  auto edges = costs.edges();
  std::sort(edges.begin(), edges.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              return a.weight < b.weight;
            });
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  Matching out;
  std::uint64_t edge_visits = 0;
  for (const auto& e : edges) {
    ++edge_visits;
    if (used[e.u] || used[e.v]) continue;
    used[e.u] = used[e.v] = true;
    out.pairs.emplace_back(e.u, e.v);
    out.total_cost += e.weight;
  }
  SIC_CHECK(static_cast<int>(out.pairs.size()) * 2 == n);
  if (reg != nullptr) {
    reg->counter("matching.greedy.edge_visits").inc(edge_visits);
    reg->counter("matching.greedy.vertices").inc(
        static_cast<std::uint64_t>(n));
  }
  return out;
}

}  // namespace sic::matching
