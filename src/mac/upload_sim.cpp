#include "mac/upload_sim.hpp"

#include <algorithm>
#include <memory>

#include "core/multirate.hpp"
#include "core/power_control.hpp"
#include "mac/access_point.hpp"
#include "mac/station.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sic::mac {

namespace {

constexpr MacNodeId kApId = 0;

/// Builds the medium for one AP + n clients from their AP-side budgets.
/// Client-to-client gains come from the configured mutual SNR.
std::unique_ptr<Medium> build_medium(EventQueue& queue,
                                     std::span<const channel::LinkBudget> clients,
                                     const phy::RateAdapter& adapter,
                                     const UploadSimConfig& config) {
  SIC_CHECK(!clients.empty());
  const Milliwatts noise = clients.front().noise;
  for (const auto& c : clients) {
    SIC_CHECK_MSG(c.noise == noise, "clients must share the AP noise floor");
  }
  const int n_nodes = static_cast<int>(clients.size()) + 1;
  phy::SicDecoderConfig decoder;
  decoder.sic_capable = config.sic_at_ap;
  decoder.cancellation_residual = config.cancellation_residual;
  decoder.max_decodable_disparity = config.max_decodable_disparity;
  auto medium =
      std::make_unique<Medium>(queue, n_nodes, noise, adapter, decoder);
  const Milliwatts mutual = noise * config.client_mutual_snr.linear();
  for (int i = 0; i < static_cast<int>(clients.size()); ++i) {
    medium->set_gain(kApId, i + 1, clients[static_cast<std::size_t>(i)].rss);
    for (int j = i + 1; j < static_cast<int>(clients.size()); ++j) {
      medium->set_gain(i + 1, j + 1, mutual);
    }
  }
  return medium;
}

}  // namespace

UploadSimResult run_dcf_upload(std::span<const channel::LinkBudget> clients,
                               const phy::RateAdapter& adapter,
                               const UploadSimConfig& config) {
  SIC_CHECK(config.frames_per_client >= 1);
  SIC_CHECK(config.rate_margin > 0.0 && config.rate_margin <= 1.0);
  EventQueue queue;
  auto medium = build_medium(queue, clients, adapter, config);
  AccessPoint ap{queue, *medium, kApId};
  Rng rng{config.seed};

  std::vector<std::unique_ptr<DcfStation>> stations;
  for (int i = 0; i < static_cast<int>(clients.size()); ++i) {
    const auto& budget = clients[static_cast<std::size_t>(i)];
    const BitsPerSecond rate{adapter.rate(budget.snr()).value() *
                             config.rate_margin};
    if (rate.value() <= 0.0) continue;  // dead link; cannot participate
    auto st = std::make_unique<DcfStation>(queue, *medium, i + 1, kApId, rate,
                                           rng.fork());
    st->set_rts_cts(config.use_rts_cts);
    st->enqueue(config.frames_per_client, config.packet_bits);
    st->start();
    stations.push_back(std::move(st));
  }

  queue.run_until(config.horizon);

  UploadSimResult result;
  result.offered =
      stations.size() * static_cast<std::uint64_t>(config.frames_per_client);
  result.delivered = ap.stats().data_received;
  SimTime completion = 0;
  for (const auto& st : stations) {
    result.retries += st->stats().retries;
    result.drops += st->stats().drops;
    completion = std::max(completion, st->stats().completion_time);
  }
  result.completion_s = to_seconds(completion);
  result.medium = medium->stats();
  return result;
}

namespace {

/// Executes one schedule slot starting now; returns the wall-clock span of
/// its data portion (ACK turnaround is appended by the caller).
class ScheduleRunner {
 public:
  ScheduleRunner(EventQueue& queue, Medium& medium,
                 std::span<const channel::LinkBudget> clients,
                 const phy::RateAdapter& adapter, const core::Schedule& schedule,
                 double packet_bits)
      : queue_(&queue),
        medium_(&medium),
        clients_(clients),
        adapter_(&adapter),
        schedule_(&schedule),
        packet_bits_(packet_bits) {}

  void start() { run_slot(0); }

 private:
  void run_slot(std::size_t index) {
    if (index >= schedule_->slots.size()) return;
    const core::ScheduledSlot& slot = schedule_->slots[index];
    const PhyParams& phy = medium_->phy();
    SimTime span = 0;

    const auto send = [&](int client, BitsPerSecond rate, double scale) {
      Frame f;
      f.id = next_id_++;
      f.type = FrameType::kData;
      f.src = client + 1;
      f.dst = kApId;
      f.payload_bits = packet_bits_;
      medium_->transmit(f, rate, scale);
      return medium_->frame_duration(f, rate);
    };
    const auto clean_rate = [&](int client) {
      return adapter_->rate(clients_[static_cast<std::size_t>(client)].snr());
    };

    int acks = 1;
    switch (slot.plan.mode) {
      case core::PairMode::kSolo:
        span = send(slot.first, clean_rate(slot.first), 1.0);
        break;
      case core::PairMode::kSerial: {
        // First packet now; the second after the first's ACK turnaround.
        const SimTime t1 = send(slot.first, clean_rate(slot.first), 1.0);
        const SimTime gap = t1 + phy.sifs + phy.ack_duration() + phy.sifs;
        const int second = slot.second;
        queue_->schedule_after(gap, [this, second, index, send_bits =
                                     packet_bits_] {
          Frame f;
          f.id = next_id_++;
          f.type = FrameType::kData;
          f.src = second + 1;
          f.dst = kApId;
          f.payload_bits = send_bits;
          const BitsPerSecond r = adapter_->rate(
              clients_[static_cast<std::size_t>(second)].snr());
          medium_->transmit(f, r);
          const SimTime t2 = medium_->frame_duration(f, r);
          queue_->schedule_after(
              t2 + medium_->phy().sifs + medium_->phy().ack_duration() +
                  medium_->phy().sifs,
              [this, index] { run_slot(index + 1); });
        });
        return;  // continuation handles the next slot
      }
      case core::PairMode::kSicMultirate: {
        SIC_CHECK(slot.second >= 0);
        const auto& a = clients_[static_cast<std::size_t>(slot.first)];
        const auto& b = clients_[static_cast<std::size_t>(slot.second)];
        const bool a_stronger = a.rss >= b.rss;
        const int strong = a_stronger ? slot.first : slot.second;
        const int weak = a_stronger ? slot.second : slot.first;
        const auto ctx = core::UploadPairContext::make(
            a.rss, b.rss, a.noise, *adapter_, packet_bits_);
        const auto mr = core::multirate_airtime_detailed(ctx);
        if (!mr.boosted) {
          // Nothing to boost; run as a plain SIC pair.
          const auto rates = core::sic_rates(ctx);
          const SimTime ts = send(strong, rates.stronger, 1.0);
          const SimTime tw = send(weak, rates.weaker, 1.0);
          span = std::max(ts, tw);
          acks = 2;
          break;
        }
        // Fragment 1 of the stronger packet rides the overlap at the
        // interference-limited rate; the weaker packet runs in full.
        const auto rates = core::sic_rates(ctx);
        SimTime overlap_span = send(weak, rates.weaker, 1.0);
        if (mr.overlap_bits > 0.0) {
          Frame frag;
          frag.id = next_id_++;
          frag.type = FrameType::kData;
          frag.src = strong + 1;
          frag.dst = kApId;
          frag.payload_bits = mr.overlap_bits;
          frag.final_fragment = false;
          medium_->transmit(frag, rates.stronger);
          overlap_span =
              std::max(overlap_span, medium_->frame_duration(frag, rates.stronger));
        }
        // After the overlap and the weaker packet's ACK turnaround, the
        // stronger client boosts the remainder to its clean rate.
        const double remaining =
            std::max(0.0, packet_bits_ - mr.overlap_bits);
        const SimTime gap =
            overlap_span + phy.sifs + phy.ack_duration() + phy.sifs;
        queue_->schedule_after(gap, [this, strong, remaining, index] {
          Frame tail;
          tail.id = next_id_++;
          tail.type = FrameType::kData;
          tail.src = strong + 1;
          tail.dst = kApId;
          tail.payload_bits = remaining;
          const BitsPerSecond clean = adapter_->rate(
              clients_[static_cast<std::size_t>(strong)].snr());
          medium_->transmit(tail, clean);
          const SimTime t_tail = medium_->frame_duration(tail, clean);
          const PhyParams& p = medium_->phy();
          queue_->schedule_after(t_tail + p.sifs + p.ack_duration() + p.sifs,
                                 [this, index] { run_slot(index + 1); });
        });
        return;  // continuation handles the next slot
      }
      case core::PairMode::kSic:
      case core::PairMode::kSicPowerControl: {
        SIC_CHECK(slot.second >= 0);
        const auto& a = clients_[static_cast<std::size_t>(slot.first)];
        const auto& b = clients_[static_cast<std::size_t>(slot.second)];
        const bool a_stronger = a.rss >= b.rss;
        const int strong = a_stronger ? slot.first : slot.second;
        const int weak = a_stronger ? slot.second : slot.first;
        const double scale = slot.plan.mode == core::PairMode::kSicPowerControl
                                 ? slot.plan.weaker_power_scale
                                 : 1.0;
        auto ctx = core::UploadPairContext::make(
            a.rss, b.rss, a.noise, *adapter_, packet_bits_);
        ctx.arrival.weaker = ctx.arrival.weaker * scale;
        const auto rates = core::sic_rates(ctx);
        const SimTime ts = send(strong, rates.stronger, 1.0);
        const SimTime tw = send(weak, rates.weaker, scale);
        span = std::max(ts, tw);
        acks = 2;
        break;
      }
    }
    const SimTime turnaround =
        span + phy.sifs + acks * (phy.ack_duration() + phy.sifs);
    queue_->schedule_after(turnaround, [this, index] { run_slot(index + 1); });
  }

  EventQueue* queue_;
  Medium* medium_;
  std::span<const channel::LinkBudget> clients_;
  const phy::RateAdapter* adapter_;
  const core::Schedule* schedule_;
  double packet_bits_;
  std::uint64_t next_id_ = 1;
};

}  // namespace

UploadSimResult run_scheduled_upload(
    std::span<const channel::LinkBudget> clients,
    const phy::RateAdapter& adapter, const core::Schedule& schedule,
    const UploadSimConfig& config) {
  EventQueue queue;
  auto medium = build_medium(queue, clients, adapter, config);
  AccessPoint ap{queue, *medium, kApId};
  ScheduleRunner runner{queue,    *medium,  clients,
                        adapter,  schedule, config.packet_bits};
  runner.start();
  queue.run_until(config.horizon);

  UploadSimResult result;
  std::uint64_t offered = 0;
  for (const auto& slot : schedule.slots) {
    offered += slot.second >= 0 ? 2 : 1;
  }
  result.offered = offered;
  result.delivered = ap.stats().data_received;
  result.completion_s = to_seconds(queue.now());
  result.medium = medium->stats();
  return result;
}

}  // namespace sic::mac
