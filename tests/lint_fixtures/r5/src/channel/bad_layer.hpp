// Lint fixture: R5 — an include back-edge against the layer DAG.
// This file sits in the `channel` layer (the fixture path contains
// src/channel/) but reaches UP into `mac`, five layers above it.
#pragma once

#include "mac/frame.hpp"   // line 6: R5 violation (channel -> mac back-edge)
#include "util/units.hpp"  // clean: util is below channel
#include <vector>          // clean: system includes are out of scope

struct FixtureChannelThing {
  std::vector<int> taps;
};
