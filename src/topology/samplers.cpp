#include "topology/samplers.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sic::topology {

namespace {

channel::NormalizedPathLoss model_for(const SamplerConfig& config) {
  return channel::NormalizedPathLoss{config.pathloss_exponent};
}

}  // namespace

TwoToOneSample sample_two_to_one(Rng& rng, const SamplerConfig& config) {
  SIC_CHECK(config.range_m > 0.0 && config.noise > 0.0);
  const auto model = model_for(config);
  const Point receiver{0.0, 0.0};
  const Point c1 = random_in_disc(rng, receiver, config.range_m);
  const Point c2 = random_in_disc(rng, receiver, config.range_m);
  TwoToOneSample out;
  out.d1_m = distance(c1, receiver);
  out.d2_m = distance(c2, receiver);
  out.s1 = model.received_power(out.d1_m);
  out.s2 = model.received_power(out.d2_m);
  out.noise = Milliwatts{config.noise};
  return out;
}

TwoLinkSample sample_two_link(Rng& rng, const SamplerConfig& config) {
  SIC_CHECK(config.range_m > 0.0 && config.noise > 0.0);
  const auto model = model_for(config);
  TwoLinkSample out;
  out.t1 = Point{0.0, 0.0};
  out.t2 = Point{config.range_m, 0.0};
  out.r1 = random_in_disc(rng, out.t1, config.range_m);
  out.r2 = random_in_disc(rng, out.t2, config.range_m);
  out.rss.s11 = model.received_power(distance(out.t1, out.r1));
  out.rss.s12 = model.received_power(distance(out.t2, out.r1));
  out.rss.s21 = model.received_power(distance(out.t1, out.r2));
  out.rss.s22 = model.received_power(distance(out.t2, out.r2));
  out.rss.noise = Milliwatts{config.noise};
  return out;
}

std::vector<channel::LinkBudget> sample_upload_clients(
    Rng& rng, const SamplerConfig& config, int n_clients) {
  SIC_CHECK(n_clients >= 0);
  const auto model = model_for(config);
  const Point ap{0.0, 0.0};
  std::vector<channel::LinkBudget> budgets;
  budgets.reserve(static_cast<std::size_t>(n_clients));
  for (int i = 0; i < n_clients; ++i) {
    const Point c = random_in_disc(rng, ap, config.range_m);
    budgets.push_back(channel::LinkBudget{
        model.received_power(distance(c, ap)), Milliwatts{config.noise}});
  }
  std::sort(budgets.begin(), budgets.end(),
            [](const channel::LinkBudget& a, const channel::LinkBudget& b) {
              return a.rss > b.rss;
            });
  return budgets;
}

}  // namespace sic::topology
