#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/json_util.hpp"
#include "util/check.hpp"
#include "util/mathx.hpp"

namespace sic::obs {

namespace {

thread_local MetricsRegistry* g_metrics = nullptr;

using detail::format_double;

void append_json_key(std::ostringstream& os, const std::string& name) {
  detail::append_json_string(os, name);
}

}  // namespace

void Gauge::merge_from(const Gauge& other) {
  if (other.stamp_ > stamp_ ||
      (other.stamp_ == stamp_ && other.value_ > value_)) {
    stamp_ = other.stamp_;
    value_ = other.value_;
  }
}

Histogram::Histogram(double min_value, int n_buckets) : min_value_(min_value) {
  SIC_CHECK(min_value > 0.0 && n_buckets >= 1);
  buckets_.assign(static_cast<std::size_t>(n_buckets), 0);
}

int Histogram::bucket_index(double value) const {
  if (!(value > min_value_)) return 0;
  const int k = static_cast<int>(std::floor(std::log2(value / min_value_)));
  // log2 rounding can land one bucket off right at a boundary; nudge so
  // bucket_lower_bound(k) <= value < bucket_lower_bound(k+1) holds exactly.
  int idx = std::max(0, k);
  if (value < bucket_lower_bound(idx)) --idx;
  if (idx + 1 < n_buckets() && value >= bucket_lower_bound(idx + 1)) ++idx;
  return std::min(idx, n_buckets() - 1);
}

double Histogram::bucket_lower_bound(int k) const {
  return min_value_ * std::exp2(static_cast<double>(k));
}

void Histogram::observe(double value) {
  ++buckets_[static_cast<std::size_t>(bucket_index(value))];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target sample, 1-based, ceil(q * count) with q=0 -> 1.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(clamped * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (int k = 0; k < n_buckets(); ++k) {
    seen += buckets_[static_cast<std::size_t>(k)];
    if (seen >= rank) return bucket_lower_bound(k);
  }
  return bucket_lower_bound(n_buckets() - 1);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string{name}, Counter{}).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string{name}, Gauge{}).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, double min_value,
                                      int n_buckets) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::string{name}, Histogram{min_value, n_buckets})
      .first->second;
}

std::string MetricsRegistry::text_snapshot() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%-44s %20llu\n", name.c_str(),
                  static_cast<unsigned long long>(c.value()));
    os << buf;
  }
  for (const auto& [name, g] : gauges_) {
    os << name;
    for (std::size_t i = name.size(); i < 44; ++i) os << ' ';
    os << ' ' << format_double(g.value()) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << name << "  count=" << h.count() << " sum=" << format_double(h.sum())
       << " min=" << format_double(h.min())
       << " p50=" << format_double(h.quantile(0.5))
       << " p99=" << format_double(h.quantile(0.99))
       << " max=" << format_double(h.max()) << '\n';
  }
  return os.str();
}

std::string MetricsRegistry::json_snapshot() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ',';
    first = false;
    append_json_key(os, name);
    os << ':' << c.value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ',';
    first = false;
    append_json_key(os, name);
    os << ':' << format_double(g.value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ',';
    first = false;
    append_json_key(os, name);
    os << ":{\"count\":" << h.count() << ",\"sum\":" << format_double(h.sum())
       << ",\"min\":" << format_double(h.min())
       << ",\"max\":" << format_double(h.max())
       << ",\"p50\":" << format_double(h.quantile(0.5))
       << ",\"p90\":" << format_double(h.quantile(0.9))
       << ",\"p99\":" << format_double(h.quantile(0.99)) << ",\"buckets\":{";
    bool bfirst = true;
    for (int k = 0; k < h.n_buckets(); ++k) {
      if (h.bucket_count(k) == 0) continue;
      if (!bfirst) os << ',';
      bfirst = false;
      os << '"' << k << "\":" << h.bucket_count(k);
    }
    os << "}}";
  }
  os << "}}";
  return os.str();
}

void Histogram::merge_from(const Histogram& other) {
  // Layout identity is a configuration check: two histograms built from
  // the same options have bit-identical bounds, so bit-exact is right.
  SIC_CHECK_MSG(bitwise_equal(min_value_, other.min_value_) &&
                    buckets_.size() == other.buckets_.size(),
                "histogram merge requires identical bucket layouts");
  if (other.count_ == 0) return;
  for (std::size_t k = 0; k < buckets_.size(); ++k) {
    buckets_[k] += other.buckets_[k];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).merge_from(g);
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.bucket_lower_bound(0), h.n_buckets()).merge_from(h);
  }
}

std::vector<std::pair<std::string, std::uint64_t>>
MetricsRegistry::counter_values() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  return out;
}

MetricsRegistry* metrics() { return g_metrics; }

MetricsRegistry* set_metrics(MetricsRegistry* registry) {
  MetricsRegistry* previous = g_metrics;
  g_metrics = registry;
  return previous;
}

}  // namespace sic::obs
