#ifndef SICMAC_BENCH_BENCH_UTIL_HPP
#define SICMAC_BENCH_BENCH_UTIL_HPP

/// \file bench_util.hpp
/// Shared output helpers for the figure-reproduction binaries. Every
/// figure binary prints: a header naming the paper artifact, the series
/// the paper reports (as aligned text tables the EXPERIMENTS.md rows are
/// copied from), and the deterministic seed it ran with.

#include <cstdio>
#include <fstream>
#include <optional>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/stats.hpp"

namespace sic::bench {

/// Parses `--csv <prefix>` from argv: when present, figure benches also
/// write machine-readable CSVs as <prefix><series>.csv for plotting.
inline std::optional<std::string> csv_prefix(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--csv") return std::string(argv[i + 1]);
  }
  return std::nullopt;
}

inline void write_text_file(const std::string& path,
                            const std::string& content) {
  std::ofstream os{path};
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  os << content;
  std::printf("wrote %s\n", path.c_str());
}

/// Full empirical CDF as "value,cumulative_probability" rows.
inline std::string cdf_csv(const analysis::EmpiricalCdf& cdf) {
  std::ostringstream os;
  os << "value,cumulative_probability\n";
  const auto samples = cdf.sorted_samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    os << samples[i] << ','
       << static_cast<double>(i + 1) / static_cast<double>(samples.size())
       << '\n';
  }
  return os.str();
}

inline void header(const std::string& figure, const std::string& claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("==============================================================\n");
}

/// Prints an (x, F(x)) CDF as the paper's figures plot them.
inline void print_cdf(const std::string& label,
                      const analysis::EmpiricalCdf& cdf, int points = 13) {
  std::printf("%-28s", (label + " CDF:").c_str());
  for (const auto& p : cdf.curve(points)) {
    std::printf(" (%.2f,%.2f)", p.x, p.f);
  }
  std::printf("\n");
}

/// Prints the headline fractions the paper quotes ("X%% of cases gain over
/// 20%%").
inline void print_fractions(const std::string& label,
                            const analysis::EmpiricalCdf& cdf) {
  std::printf("%-22s  no-gain %.1f%%  >5%% %.1f%%  >20%% %.1f%%  >50%% %.1f%%  median %.3f\n",
              label.c_str(), 100.0 * cdf.at(1.0 + 1e-9),
              100.0 * cdf.fraction_above(1.05),
              100.0 * cdf.fraction_above(1.2),
              100.0 * cdf.fraction_above(1.5), cdf.quantile(0.5));
}

}  // namespace sic::bench

#endif  // SICMAC_BENCH_BENCH_UTIL_HPP
