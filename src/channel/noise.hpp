#ifndef SICMAC_CHANNEL_NOISE_HPP
#define SICMAC_CHANNEL_NOISE_HPP

/// \file noise.hpp
/// Noise floor models. The paper treats N₀ as a single channel constant
/// (Table 1); we provide both that abstract constant and a physically
/// grounded thermal floor (kTB + receiver noise figure) so link budgets in
/// dBm line up with real 802.11 numbers.

#include "util/units.hpp"

namespace sic::channel {

/// Thermal noise floor for the given bandwidth: −174 dBm/Hz + 10·log10(B)
/// + noise figure. For 20 MHz and NF = 7 dB this is ≈ −94 dBm, the usual
/// 802.11 figure.
[[nodiscard]] Dbm thermal_noise_floor(Hertz bandwidth,
                                      Decibels noise_figure = Decibels{7.0});

/// Canonical 20 MHz 802.11 noise floor used as the default everywhere.
[[nodiscard]] Milliwatts default_noise_floor();

}  // namespace sic::channel

#endif  // SICMAC_CHANNEL_NOISE_HPP
