// Lint fixture: R7 — FP-determinism hazards.
#include <unordered_map>

float narrow(float x) { return x; }  // line 4: R7 violation (float, twice)

double sum_airtime(const std::unordered_map<int, double>& airtime) {
  double total = 0.0;
  for (const auto& kv : airtime) {  // (R3 flags the iteration itself)
    total += kv.second;  // line 9: R7 violation (double reduction, unordered)
  }
  return total;
}

bool converged(double prev_mw, double next_mw) {
  return prev_mw == next_mw;  // line 15: R7 violation (computed double ==)
}

bool at_sentinel(double prev_mw) {
  return prev_mw == 0.0;  // clean: comparison against a literal sentinel
}
