#include "core/pair_cost_engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "matching/blossom.hpp"
#include "matching/greedy.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/check.hpp"

namespace sic::core {

PairCostEngine::PairCostEngine(const phy::RateAdapter& adapter,
                               SchedulerOptions options,
                               Decibels invalidation_epsilon)
    : adapter_(&adapter),
      options_(options),
      derate_(Decibels{-options.admission_margin_db.value()}.linear()),
      epsilon_(invalidation_epsilon) {
  SIC_CHECK_MSG(epsilon_.value() >= 0.0,
                "invalidation epsilon must be >= 0 dB");
}

void PairCostEngine::refresh_derived(int client) {
  const std::size_t c = static_cast<std::size_t>(client);
  derated_rss_[c] = rss_[c] * derate_;
  solo_airtime_[c] = solo_airtime(channel::LinkBudget{rss_[c], noise_},
                                  *adapter_, options_.packet_bits);
}

void PairCostEngine::set_clients(
    std::span<const channel::LinkBudget> clients) {
  n_ = static_cast<int>(clients.size());
  const std::size_t n = clients.size();
  noise_ = clients.empty() ? Milliwatts{0.0} : clients.front().noise;
  if (n_ >= 2) {
    SIC_CHECK_MSG(options_.admission_margin_db.value() >= 0.0,
                  "admission margin must be >= 0 dB");
    for (const auto& c : clients) {
      SIC_CHECK_MSG(c.noise == noise_,
                    "pair plan assumes a common receiver noise floor");
    }
  }
  rss_.resize(n);
  derated_rss_.resize(n);
  solo_airtime_.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    rss_[c] = clients[c].rss;
    refresh_derived(static_cast<int>(c));
  }
  plans_.assign(n * n, PairPlan{});
  valid_.assign(n * n, 0);
  all_indices_.resize(n);
  std::iota(all_indices_.begin(), all_indices_.end(), 0);
}

void PairCostEngine::update_client(int client, Milliwatts rss) {
  SIC_CHECK(client >= 0 && client < n_);
  const std::size_t c = static_cast<std::size_t>(client);
  const double old_mw = rss_[c].value();
  const double new_mw = rss.value();
  if (new_mw == old_mw) return;
  if (epsilon_ > Decibels{0.0} && old_mw > 0.0 && new_mw > 0.0) {
    const Decibels drift = Decibels::from_linear(new_mw / old_mw);
    // Within tolerance: the row keeps serving plans of the fingerprinted
    // estimate, so the fingerprint itself must not move either.
    if (std::abs(drift.value()) <= epsilon_.value()) return;
  }
  rss_[c] = rss;
  refresh_derived(client);
  invalidate_row(client);
  ++stats_.row_invalidations;
}

void PairCostEngine::invalidate_row(int client) {
  const std::size_t n = static_cast<std::size_t>(n_);
  const std::size_t c = static_cast<std::size_t>(client);
  for (std::size_t j = 0; j < n; ++j) {
    valid_[c * n + j] = 0;
    valid_[j * n + c] = 0;
  }
}

PairPlan PairCostEngine::compute_pair(int i, int j) const {
  const std::size_t a = static_cast<std::size_t>(i);
  const std::size_t b = static_cast<std::size_t>(j);
  const auto ctx =
      UploadPairContext::make(derated_rss_[a], derated_rss_[b], noise_,
                              *adapter_, options_.packet_bits);
  return best_pair_plan_from_context(
      ctx, solo_airtime_[a] + solo_airtime_[b], options_);
}

const PairPlan& PairCostEngine::pair_plan(int i, int j) {
  const std::size_t n = static_cast<std::size_t>(n_);
  const std::size_t a = static_cast<std::size_t>(std::min(i, j));
  const std::size_t b = static_cast<std::size_t>(std::max(i, j));
  const std::size_t at = a * n + b;
  if (valid_[at] != 0) {
    ++stats_.pair_cache_hits;
    return plans_[at];
  }
  const PairPlan plan = compute_pair(static_cast<int>(a), static_cast<int>(b));
  plans_[at] = plan;
  plans_[b * n + a] = plan;
  valid_[at] = 1;
  valid_[b * n + a] = 1;
  ++stats_.pair_evals;
  return plans_[at];
}

Schedule PairCostEngine::schedule() { return schedule_indices(all_indices_); }

Schedule PairCostEngine::schedule_subset(std::span<const int> clients) {
  for (const int c : clients) SIC_CHECK(c >= 0 && c < n_);
  return schedule_indices(clients);
}

Schedule PairCostEngine::schedule_indices(std::span<const int> idx) {
  Schedule schedule;
  schedule.admission_margin_db = options_.admission_margin_db;
  const int k = static_cast<int>(idx.size());
  if (k == 0) return schedule;
  ++stats_.builds;
  if (k == 1) {
    const double t = solo_airtime_[static_cast<std::size_t>(idx[0])];
    schedule.slots.push_back(
        ScheduledSlot{0, -1, PairPlan{PairMode::kSolo, t, 1.0}});
    schedule.total_airtime = t;
    publish_stats();
    return schedule;
  }

  // Fig. 12 reduction: complete graph over the (sub)set, dummy vertex for
  // odd counts. Only dirty pairs reach the kernel; everything else is a
  // cache read.
  const bool odd = (k % 2) != 0;
  const int m = odd ? k + 1 : k;
  const int dummy = odd ? k : -1;
  obs::MetricsRegistry* reg = obs::metrics();
  costs_.reset(m);
  {
    obs::ScopedTimer kernel_timer{
        reg != nullptr
            ? &reg->histogram("scheduler.pair_engine.kernel_wall_s")
            : nullptr};
    for (int u = 0; u < k; ++u) {
      const int gi = idx[static_cast<std::size_t>(u)];
      for (int v = u + 1; v < k; ++v) {
        costs_.set(u, v, pair_plan(gi, idx[static_cast<std::size_t>(v)]).airtime);
      }
      if (odd) {
        costs_.set(u, dummy, solo_airtime_[static_cast<std::size_t>(gi)]);
      }
    }
  }

  const matching::Matching matching =
      options_.pairing == SchedulerOptions::Pairing::kBlossom
          ? matching::min_weight_perfect_matching(costs_)
          : matching::greedy_min_weight_perfect_matching(costs_);

  const std::size_t n = static_cast<std::size_t>(n_);
  for (const auto& [a, b] : matching.pairs) {
    const int u = std::min(a, b);
    const int v = std::max(a, b);
    ScheduledSlot slot;
    slot.first = u;
    slot.second = (v == dummy) ? -1 : v;
    if (v == dummy) {
      const std::size_t gu = static_cast<std::size_t>(idx[static_cast<std::size_t>(u)]);
      slot.plan = PairPlan{PairMode::kSolo, solo_airtime_[gu], 1.0};
    } else {
      const std::size_t gu = static_cast<std::size_t>(idx[static_cast<std::size_t>(u)]);
      const std::size_t gv = static_cast<std::size_t>(idx[static_cast<std::size_t>(v)]);
      slot.plan = plans_[gu * n + gv];
    }
    schedule.slots.push_back(slot);
    schedule.total_airtime += slot.plan.airtime;
  }
  // Deterministic presentation: longest slot first (the AP may use any
  // order; tests rely on a stable one).
  std::sort(schedule.slots.begin(), schedule.slots.end(),
            [](const ScheduledSlot& a, const ScheduledSlot& b) {
              if (a.plan.airtime != b.plan.airtime) {
                return a.plan.airtime > b.plan.airtime;
              }
              return a.first < b.first;
            });
  publish_stats();
  return schedule;
}

void PairCostEngine::publish_stats() {
  obs::MetricsRegistry* reg = obs::metrics();
  if (reg == nullptr) return;
  reg->counter("scheduler.pair_engine.builds")
      .inc(stats_.builds - published_.builds);
  reg->counter("scheduler.pair_engine.row_invalidations")
      .inc(stats_.row_invalidations - published_.row_invalidations);
  reg->counter("scheduler.pair_engine.pair_evals")
      .inc(stats_.pair_evals - published_.pair_evals);
  reg->counter("scheduler.pair_engine.cache_hits")
      .inc(stats_.pair_cache_hits - published_.pair_cache_hits);
  published_ = stats_;
}

}  // namespace sic::core
