#include "mac/event_queue.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace sic::mac {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueue, FifoAtEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduleAfterUsesNow) {
  EventQueue q;
  SimTime seen = -1;
  q.schedule_at(50, [&] {
    q.schedule_after(25, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, 75);
}

TEST(EventQueue, RunUntilLeavesLaterEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(100, [&] { ++fired; });
  q.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingIntoThePastRejected) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(5, [] {}), std::logic_error);
}

TEST(EventQueue, EventsCanCascade) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) q.schedule_after(1, recurse);
  };
  q.schedule_at(0, recurse);
  q.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(q.now(), 9);
}

TEST(SimTimeHelpers, Conversions) {
  EXPECT_EQ(from_seconds(1.5), 1'500'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(2'000'000'000), 2.0);
  EXPECT_EQ(from_micros(9.0), 9'000);
}

}  // namespace
}  // namespace sic::mac
