// Unit tests for the sic::obs metrics registry: log-bucketed histogram
// boundaries and quantiles, and the deterministic-snapshot contract (two
// identical runs must emit byte-identical JSON).

#include "obs/metrics.hpp"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

namespace sic::obs {
namespace {

TEST(Counter, AccumulatesDeltas) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, LastWriteWins) {
  Gauge g;
  g.set(1.5);
  g.set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
}

TEST(Gauge, MergeAdoptsNewestStampRegardlessOfOrder) {
  // Worker A published at epoch 7, worker B at epoch 3. Whichever merge
  // order the thread pool produces, the epoch-7 value must win.
  Gauge a;
  a.set(0.25, /*stamp=*/7);
  Gauge b;
  b.set(0.90, /*stamp=*/3);

  Gauge ab;
  ab.merge_from(a);
  ab.merge_from(b);
  Gauge ba;
  ba.merge_from(b);
  ba.merge_from(a);

  EXPECT_DOUBLE_EQ(ab.value(), 0.25);
  EXPECT_DOUBLE_EQ(ba.value(), 0.25);
  EXPECT_EQ(ab.stamp(), 7u);
  EXPECT_EQ(ba.stamp(), 7u);
}

TEST(Gauge, MergeTieBreaksOnValueSoOrderNeverMatters) {
  // Equal stamps (two shards publishing the same epoch): the larger value
  // wins in both orders — lexicographic (stamp, value) max.
  Gauge a;
  a.set(1.0, 5);
  Gauge b;
  b.set(2.0, 5);

  Gauge ab;
  ab.merge_from(a);
  ab.merge_from(b);
  Gauge ba;
  ba.merge_from(b);
  ba.merge_from(a);
  EXPECT_DOUBLE_EQ(ab.value(), ba.value());
  EXPECT_DOUBLE_EQ(ab.value(), 2.0);
}

TEST(MetricsRegistry, GaugeMergeIsScheduleIndependent) {
  MetricsRegistry shard_a;
  shard_a.gauge("deploy.mean_health").set(0.4, 9);
  MetricsRegistry shard_b;
  shard_b.gauge("deploy.mean_health").set(0.8, 4);

  MetricsRegistry into_ab;
  into_ab.merge_from(shard_a);
  into_ab.merge_from(shard_b);
  MetricsRegistry into_ba;
  into_ba.merge_from(shard_b);
  into_ba.merge_from(shard_a);
  EXPECT_EQ(into_ab.json_snapshot(), into_ba.json_snapshot());
  EXPECT_DOUBLE_EQ(into_ab.gauge("deploy.mean_health").value(), 0.4);
}

TEST(Histogram, BucketBoundariesArePowersOfTwo) {
  const Histogram h{1.0, 8};
  EXPECT_DOUBLE_EQ(h.bucket_lower_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower_bound(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lower_bound(3), 8.0);

  // Bucket k covers [2^k, 2^(k+1)): exact boundaries land in the upper
  // bucket, values just below stay in the lower one.
  EXPECT_EQ(h.bucket_index(1.0), 0);
  EXPECT_EQ(h.bucket_index(1.999), 0);
  EXPECT_EQ(h.bucket_index(2.0), 1);
  EXPECT_EQ(h.bucket_index(3.999), 1);
  EXPECT_EQ(h.bucket_index(4.0), 2);

  // Below-range and above-range values clamp to the edge buckets.
  EXPECT_EQ(h.bucket_index(0.25), 0);
  EXPECT_EQ(h.bucket_index(0.0), 0);
  EXPECT_EQ(h.bucket_index(1e9), 7);
}

TEST(Histogram, BoundaryExactAcrossManyBuckets) {
  const Histogram h{1e-9, 64};
  for (int k = 0; k < 64; ++k) {
    EXPECT_EQ(h.bucket_index(h.bucket_lower_bound(k)), k) << "bucket " << k;
  }
}

TEST(Histogram, CountSumMinMax) {
  Histogram h{1.0, 8};
  h.observe(1.0);
  h.observe(4.0);
  h.observe(16.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 21.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 16.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(4), 1u);
}

TEST(Histogram, QuantileReturnsBucketLowerBound) {
  Histogram h{1.0, 10};
  // 90 samples in bucket 0 ([1,2)), 10 in bucket 4 ([16,32)).
  for (int i = 0; i < 90; ++i) h.observe(1.5);
  for (int i = 0; i < 10; ++i) h.observe(20.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.9), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 16.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 16.0);
}

TEST(Histogram, QuantileEmptyIsZero) {
  const Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(MetricsRegistry, InstrumentsHaveStableAddresses) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  // Creating many more instruments must not move the first.
  for (int i = 0; i < 100; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  EXPECT_EQ(&a, &reg.counter("a"));
}

std::string snapshot_of_identical_run() {
  MetricsRegistry reg;
  reg.counter("z.last").inc(3);
  reg.counter("a.first").inc(1);
  reg.gauge("rate").set(123.456);
  reg.gauge("oddball").set(0.1 + 0.2);  // exercises round-trip formatting
  Histogram& h = reg.histogram("lat", 1e-9, 64);
  h.observe(1e-3);
  h.observe(2.5e-3);
  h.observe(0.5);
  return reg.json_snapshot();
}

TEST(MetricsRegistry, JsonSnapshotIsDeterministic) {
  const std::string a = snapshot_of_identical_run();
  const std::string b = snapshot_of_identical_run();
  EXPECT_EQ(a, b);
  // Name-ordered: "a.first" must appear before "z.last".
  EXPECT_LT(a.find("a.first"), a.find("z.last"));
  EXPECT_NE(a.find("\"counters\""), std::string::npos);
  EXPECT_NE(a.find("\"gauges\""), std::string::npos);
  EXPECT_NE(a.find("\"histograms\""), std::string::npos);
}

TEST(MetricsRegistry, TextSnapshotMentionsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("runs").inc();
  reg.gauge("speed").set(2.0);
  reg.histogram("wall_s").observe(0.25);
  const std::string text = reg.text_snapshot();
  EXPECT_NE(text.find("runs"), std::string::npos);
  EXPECT_NE(text.find("speed"), std::string::npos);
  EXPECT_NE(text.find("wall_s"), std::string::npos);
}

TEST(GlobalAttachPoint, SetReturnsPrevious) {
  ASSERT_EQ(metrics(), nullptr);
  MetricsRegistry reg;
  EXPECT_EQ(set_metrics(&reg), nullptr);
  EXPECT_EQ(metrics(), &reg);
  EXPECT_EQ(set_metrics(nullptr), &reg);
  EXPECT_EQ(metrics(), nullptr);
}

}  // namespace
}  // namespace sic::obs
