#ifndef SICMAC_MATCHING_APPROX_HPP
#define SICMAC_MATCHING_APPROX_HPP

/// \file approx.hpp
/// Approximate minimum-weight perfect matching: a greedy seed followed by a
/// deterministic 2-opt local-swap postpass, optionally preceded by a
/// sparsification pass that drops pair edges whose SIC gain over serial
/// transmission is below the admission margin.
///
/// Greedy alone is a ½-approximation on the *maximization* form; on our
/// minimization totals the empirical gap is what the perf bench and the
/// property tests pin (greedy ≤ 2× blossom, greedy+postpass ≤ 1.5× blossom
/// on seeded random matrices). The postpass repeatedly rewires pairs of
/// matched edges {(a,b),(c,d)} → {(a,c),(b,d)} or {(a,d),(b,c)} whenever
/// the rewiring strictly lowers total cost, in a fixed deterministic scan
/// order, so the result is a local optimum of the 2-swap neighbourhood.
/// Total cost strictly decreases on every applied swap, so the pass
/// terminates; a pass cap bounds the worst case.
///
/// This is the scaling tier behind SchedulerOptions::Pairing::kApprox and
/// the large-n half of kAuto: blossom is O(n³) and stops being affordable
/// at the per-AP backlogs of dense deployments (Zhang & Haenggi regimes,
/// PAPERS.md); greedy + postpass is O(n² log n) and empirically within a
/// few percent of exact total airtime at the sizes where both can run.

#include <cstdint>
#include <span>
#include <vector>

#include "matching/graph.hpp"
#include "util/units.hpp"

namespace sic::matching {

/// Work and quality counters for one approximate-matching call. Plain
/// integers accumulated on the hot path and published in one batch (obs
/// batch idiom); also returned to callers that want them without metrics.
struct ApproxMatchStats {
  std::uint64_t kept_edges = 0;     ///< edges surviving sparsification
  std::uint64_t dropped_edges = 0;  ///< edges cut by the admission margin
  std::uint64_t fallback_pairs = 0; ///< pairs closed by the dummy-edge fallback
  std::uint64_t swap_passes = 0;    ///< full 2-opt sweeps executed
  std::uint64_t swaps_applied = 0;  ///< individual improving rewirings
};

/// Dense tier: greedy seed over the complete edge list, then the 2-opt
/// postpass. Requires even n (throws MatchingError otherwise).
/// Deterministic for a given cost matrix. O(n² log n).
[[nodiscard]] Matching approx_min_weight_perfect_matching(
    const CostMatrix& costs, ApproxMatchStats* stats = nullptr);

/// Sparsified tier: an edge {u, v} enters the matcher only when pairing
/// beats serial transmission by at least \p sparsify_margin, i.e.
///
///   cost(u, v) < (serial[u] + serial[v]) · 10^(−margin_dB / 10)
///
/// where \p vertex_serial_cost[k] is the serial (solo) airtime of vertex k.
/// A dummy vertex with serial cost 0 therefore never keeps an edge and is
/// paired by the fallback. Vertices left unmatched by the greedy seed over
/// the thin graph are paired in ascending index order at their matrix cost
/// (any pair costs at most the serial sum, so a perfect matching always
/// exists). \p edge_scratch is reused across calls (mirroring
/// CostMatrix::edges(out)). Requires even n (throws MatchingError).
[[nodiscard]] Matching approx_min_weight_perfect_matching(
    const CostMatrix& costs, std::span<const double> vertex_serial_cost,
    Decibels sparsify_margin, std::vector<WeightedEdge>& edge_scratch,
    ApproxMatchStats* stats = nullptr);

}  // namespace sic::matching

#endif  // SICMAC_MATCHING_APPROX_HPP
