#ifndef SICMAC_MATCHING_BLOSSOM_HPP
#define SICMAC_MATCHING_BLOSSOM_HPP

/// \file blossom.hpp
/// Edmonds' blossom algorithm for weighted matching in general graphs —
/// the engine behind the paper's SIC-aware scheduler (Section 6, Fig. 12:
/// "we approach the problem by reducing SIC-aware scheduling to Edmond's
/// minimum weight perfect matching algorithm").
///
/// Implementation: Galil's primal-dual formulation with blossom shrinking
/// and lazy least-slack edge tracking (the van Rantwijk arrangement),
/// O(n³) for dense graphs. Edge weights are quantized onto an exact
/// integer grid internally (relative precision ≈ 2⁻²⁶) so the dual updates
/// never accumulate floating-point drift; results are exact optima of the
/// quantized instance. Correctness is cross-checked against an exponential
/// oracle in tests/matching_blossom_test.cpp.

#include <span>
#include <vector>

#include "matching/graph.hpp"

namespace sic::matching {

/// Maximum-weight matching over an undirected edge list.
///
/// \param n vertex count; vertices are 0..n-1.
/// \param edges undirected weighted edges (no self-loops; parallel edges
///        allowed, the heavier one wins).
/// \param max_cardinality when true, only maximum-cardinality matchings are
///        considered and weight is maximized among them.
/// \return mate vector: mate[v] is v's partner or -1 when single.
[[nodiscard]] std::vector<int> max_weight_matching(
    int n, std::span<const WeightedEdge> edges, bool max_cardinality = false);

/// Minimum-weight perfect matching on the complete graph described by
/// \p costs. Requires an even vertex count (the scheduler adds the dummy
/// client for odd counts before calling this). Implemented via the standard
/// reduction w' = max_cost − cost with max-cardinality matching.
[[nodiscard]] Matching min_weight_perfect_matching(const CostMatrix& costs);

}  // namespace sic::matching

#endif  // SICMAC_MATCHING_BLOSSOM_HPP
