#ifndef SICMAC_TOOLS_BENCH_GATE_GATE_HPP
#define SICMAC_TOOLS_BENCH_GATE_GATE_HPP

/// \file gate.hpp
/// Bench-regression gate: compares a freshly emitted one-line bench
/// summary (BENCH_scheduler.json / BENCH_montecarlo.json /
/// BENCH_deployment.json) against a committed baseline and fails when a
/// pinned key regresses beyond its tolerance. Python-free on purpose —
/// the gate must run anywhere the repo builds (CI installs nothing extra)
/// and in milliseconds, like sic_lint.
///
/// Comparison model: each pinned key has a direction. For
/// higher-is-better keys (throughputs — the default) only a *drop* beyond
/// tolerance fails; for lower-is-better keys (recovery epochs, wall time)
/// only a *rise* does. Improvements always pass, so a faster machine
/// never trips the gate; tolerances absorb machine-to-machine noise in
/// the regressing direction.
///
/// `--perturb key=factor` scales the current value before comparison.
/// CI uses it to prove the gate actually fails on a synthetic regression
/// of the real artifact — a gate nobody has seen fail is a gate that may
/// compare nothing.

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sic::bench_gate {

/// One pinned key. `tolerance_frac` is the allowed relative change in
/// the regressing direction (0.10 = 10 %).
struct Pin {
  std::string key;
  double tolerance_frac = 0.10;
  bool higher_is_better = true;
};

/// Outcome for one pinned key.
struct KeyResult {
  std::string key;
  double baseline = 0.0;
  double current = 0.0;       ///< after any perturbation
  double change_frac = 0.0;   ///< signed (current - baseline) / |baseline|
  double tolerance_frac = 0.0;
  bool higher_is_better = true;
  bool missing_baseline = false;
  bool missing_current = false;
  bool regressed = false;
};

struct GateReport {
  std::vector<KeyResult> keys;
  [[nodiscard]] bool ok() const;
  /// Aligned human-readable table, one line per pinned key plus a
  /// verdict line — what CI prints either way.
  [[nodiscard]] std::string text() const;
};

/// Extracts the top-level numeric fields of a one-line flat JSON object
/// (nested objects/arrays and string values are skipped, not descended
/// into). Tolerant of surrounding whitespace/newlines. Throws
/// std::runtime_error on text that is not a JSON object at all.
[[nodiscard]] std::map<std::string, double> parse_flat_json(
    std::string_view text);

/// Parses a --pin spec: `key[:tol%][:lower]`, e.g.
/// `samples_per_sec:10%`, `recovery_epochs:25%:lower`, `confirmed_frac`.
/// Throws std::runtime_error on a malformed spec.
[[nodiscard]] Pin parse_pin(std::string_view spec, double default_tolerance);

/// Compares \p current against \p baseline over \p pins.
/// \p perturb maps key -> factor applied to the current value first.
[[nodiscard]] GateReport run_gate(
    const std::map<std::string, double>& baseline,
    const std::map<std::string, double>& current,
    const std::vector<Pin>& pins,
    const std::map<std::string, double>& perturb = {});

}  // namespace sic::bench_gate

#endif  // SICMAC_TOOLS_BENCH_GATE_GATE_HPP
