#include "channel/pathloss.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sic::channel {

LogDistancePathLoss::LogDistancePathLoss(double exponent,
                                         Decibels reference_loss,
                                         double reference_distance_m)
    : exponent_(exponent),
      reference_loss_(reference_loss),
      reference_distance_m_(reference_distance_m) {
  SIC_CHECK_MSG(exponent > 0.0, "path-loss exponent must be positive");
  SIC_CHECK_MSG(reference_distance_m > 0.0, "reference distance must be positive");
}

LogDistancePathLoss LogDistancePathLoss::for_carrier(double exponent,
                                                     double carrier_hz) {
  constexpr double kSpeedOfLight = 299'792'458.0;
  const double fsl_db =
      20.0 * std::log10(4.0 * M_PI * 1.0 * carrier_hz / kSpeedOfLight);
  return LogDistancePathLoss{exponent, Decibels{fsl_db}, 1.0};
}

Decibels LogDistancePathLoss::loss(double distance_m) const {
  const double d = std::max(distance_m, reference_distance_m_);
  return reference_loss_ +
         Decibels{10.0 * exponent_ * std::log10(d / reference_distance_m_)};
}

Dbm LogDistancePathLoss::received_power(Dbm tx_power, double distance_m) const {
  return tx_power - loss(distance_m);
}

Milliwatts NormalizedPathLoss::received_power(double distance_m,
                                              double tx_power) const {
  SIC_CHECK(tx_power >= 0.0);
  const double d = std::max(distance_m, 1.0);
  return Milliwatts{tx_power * std::pow(d, -exponent_)};
}

}  // namespace sic::channel
