#ifndef SICMAC_MAC_FAULT_MODEL_HPP
#define SICMAC_MAC_FAULT_MODEL_HPP

/// \file fault_model.hpp
/// Fault injection for the scheduled-upload pipeline. The Section 6
/// scheduler plans on a frozen, perfect channel snapshot; this model
/// supplies the three ways reality disagrees with the plan:
///
///  1. Stale / noisy RSS estimates — the channel drifts between the
///     measurement the schedule was computed from and the packet flight,
///     modeled as a per-client AR(1) shadowing track in dB
///     (channel/fading), exactly the seen-vs-now split the
///     ablation_stale_rates bench measures open-loop.
///  2. Probabilistic cancellation failures — an otherwise-successful SIC
///     (weaker-after-cancellation) decode is force-failed with some
///     probability, standing in for burst channel-estimation error on the
///     reconstruction path (the Section 9 caveat as a transient rather
///     than a steady residual).
///  3. ACK loss — a delivered frame's ACK never reaches the station, so
///     the sender retransmits a frame the AP already has (the duplicate
///     path the ACK-deferral note in upload_sim.hpp describes).
///
/// All knobs default to zero, which makes the model inert: no RNG draws
/// are taken and scheduled uploads behave bit-identically to a fault-free
/// run.

#include <cstdint>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "channel/fading.hpp"
#include "mac/frame.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace sic::mac {

/// Thrown when a FaultConfig carries NaNs, negative rates, or
/// out-of-range probabilities — the malformed-config classes that would
/// otherwise silently produce garbage trajectories (a NaN sigma passes a
/// `>= 0` check and poisons every AR(1) draw after it).
class FaultConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Knobs for the injected faults. Defaults are the paper's ideal world.
struct FaultConfig {
  /// Stationary std-dev of each client's AR(1) channel drift between the
  /// RSS measurement and the packet flight. 0 dB disables channel faults.
  Decibels stale_rss_sigma{0.0};
  /// AR(1) correlation between consecutive estimation epochs. 1 freezes
  /// the drift at its initial draw; 0 makes every epoch independent.
  double stale_rss_rho = 0.9;
  /// Probability an otherwise-successful SIC (weaker) decode is lost to a
  /// cancellation failure.
  double cancellation_failure_prob = 0.0;
  /// Probability the ACK of a delivered data frame is lost on the way
  /// back, triggering a spurious retransmission.
  double ack_loss_prob = 0.0;
  /// Per-client deviation (dB) of the true channel from the nominal RSS
  /// the schedule was planned on, fixed at run start — how a caller that
  /// owns longer-lived estimates (the deployment engine's epoch-scale
  /// drift and interference bursts) expresses "the plan is stale" to one
  /// scheduled-upload run. Empty = no offsets; otherwise one finite entry
  /// per client. Re-estimation inside the run measures through the offset
  /// like any other channel fault, so the closed loop recovers from it.
  std::vector<Decibels> initial_drift;

  [[nodiscard]] bool channel_faults() const {
    if (stale_rss_sigma > Decibels{0.0}) return true;
    for (const Decibels d : initial_drift) {
      if (d != Decibels{0.0}) return true;
    }
    return false;
  }
  [[nodiscard]] bool any() const {
    return channel_faults() || cancellation_failure_prob > 0.0 ||
           ack_loss_prob > 0.0;
  }

  /// Throws FaultConfigError on NaN sigma/rho/probabilities, negative
  /// sigma, probabilities outside [0,1], or non-finite drift entries.
  /// \p n_clients pins the expected initial_drift size when >= 0 (pass -1
  /// to validate a config with no client context yet).
  void validate(int n_clients = -1) const;
};

/// Seeded source of the injected faults, plus the book-keeping the
/// recovery layer needs to attribute failures to causes.
class FaultModel {
 public:
  /// Validates \p config (FaultConfigError on malformed knobs) and seeds
  /// the per-client AR(1) tracks when channel faults are enabled.
  FaultModel(const FaultConfig& config, int n_clients, std::uint64_t seed);

  [[nodiscard]] const FaultConfig& config() const { return config_; }

  /// Current deviation (dB) of \p client's channel from the nominal RSS
  /// the schedule was planned on. Zero when channel faults are disabled.
  [[nodiscard]] Decibels drift(int client) const;

  /// Nominal RSS perturbed by the client's current drift.
  [[nodiscard]] Milliwatts true_rss(Milliwatts nominal, int client) const;

  /// Advances every client's channel one coherence interval — called at
  /// each re-estimation epoch, so a fresh measurement is again one AR(1)
  /// step stale by the time the re-matched slots fly.
  void advance_epoch();

  /// Medium decode-fault hook: decides whether to force-fail an
  /// otherwise-successful decode of \p frame. \p sic_path is true when the
  /// decode went through cancellation (the weaker signal of a collision);
  /// only that path is vulnerable to cancellation failures. Injected frame
  /// ids are recorded for cause attribution until clear_injections().
  [[nodiscard]] bool should_fail_decode(const Frame& frame, bool sic_path);

  /// Whether \p frame_id 's failure this slot was injected by the model
  /// (as opposed to a genuine rate miss).
  [[nodiscard]] bool was_injected(std::uint64_t frame_id) const;

  /// Forgets the per-slot injection record.
  void clear_injections() { injected_.clear(); }

  /// Rolls ACK loss for one delivered frame.
  [[nodiscard]] bool ack_lost();

  [[nodiscard]] std::uint64_t injected_count() const { return injected_count_; }

 private:
  FaultConfig config_;
  Rng rng_;
  std::vector<channel::Ar1ShadowingTrack> tracks_;
  std::unordered_set<std::uint64_t> injected_;
  std::uint64_t injected_count_ = 0;
};

}  // namespace sic::mac

#endif  // SICMAC_MAC_FAULT_MODEL_HPP
