// Unit tests for the CI bench-regression gate: flat-JSON parsing, --pin
// spec parsing, and the directional comparison model (drops vs rises,
// tolerances, missing keys, synthetic perturbation).

#include "gate.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <string>

namespace sic::bench_gate {
namespace {

TEST(ParseFlatJson, ExtractsTopLevelNumbersOnly) {
  const auto m = parse_flat_json(
      "{\"bench\":\"scheduler\",\"samples_per_sec\":12345.5,"
      "\"nested\":{\"x\":1},\"list\":[2,3],\"neg\":-0.25,\"ok\":true}");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.at("samples_per_sec"), 12345.5);
  EXPECT_DOUBLE_EQ(m.at("neg"), -0.25);
  EXPECT_EQ(m.count("bench"), 0u);
  EXPECT_EQ(m.count("nested"), 0u);
}

TEST(ParseFlatJson, ToleratesWhitespaceAndEmptyObject) {
  EXPECT_TRUE(parse_flat_json("  { }\n").empty());
  const auto m = parse_flat_json("\n{ \"a\" : 1 , \"b\" : 2e3 }\n");
  EXPECT_DOUBLE_EQ(m.at("a"), 1.0);
  EXPECT_DOUBLE_EQ(m.at("b"), 2000.0);
}

TEST(ParseFlatJson, ThrowsOnNonObjectAndTruncation) {
  EXPECT_THROW((void)parse_flat_json(""), std::runtime_error);
  EXPECT_THROW((void)parse_flat_json("[1,2]"), std::runtime_error);
  EXPECT_THROW((void)parse_flat_json("{\"a\":1"), std::runtime_error);
  EXPECT_THROW((void)parse_flat_json("{\"a\" 1}"), std::runtime_error);
}

TEST(ParsePin, DefaultsAndSuffixes) {
  const Pin plain = parse_pin("samples_per_sec", 0.10);
  EXPECT_EQ(plain.key, "samples_per_sec");
  EXPECT_DOUBLE_EQ(plain.tolerance_frac, 0.10);
  EXPECT_TRUE(plain.higher_is_better);

  const Pin tol = parse_pin("confirmed_frac:2%", 0.10);
  EXPECT_DOUBLE_EQ(tol.tolerance_frac, 0.02);
  EXPECT_TRUE(tol.higher_is_better);

  const Pin lower = parse_pin("recovery_epochs:25%:lower", 0.10);
  EXPECT_DOUBLE_EQ(lower.tolerance_frac, 0.25);
  EXPECT_FALSE(lower.higher_is_better);

  // Order of the suffix parts does not matter.
  const Pin swapped = parse_pin("wall_ms:lower:50%", 0.10);
  EXPECT_DOUBLE_EQ(swapped.tolerance_frac, 0.50);
  EXPECT_FALSE(swapped.higher_is_better);
}

TEST(ParsePin, RejectsMalformedSpecs) {
  EXPECT_THROW((void)parse_pin("", 0.1), std::runtime_error);
  EXPECT_THROW((void)parse_pin("k:banana", 0.1), std::runtime_error);
  EXPECT_THROW((void)parse_pin("k:-5%", 0.1), std::runtime_error);
}

TEST(RunGate, OnlyRegressingDirectionFails) {
  const std::map<std::string, double> baseline{{"thpt", 100.0},
                                               {"latency", 10.0}};
  // Throughput dropped 20% (fails at 10% tol); latency *improved* 20%
  // (lower-is-better, a drop passes no matter how large).
  const std::map<std::string, double> current{{"thpt", 80.0},
                                              {"latency", 8.0}};
  const auto report = run_gate(
      baseline, current,
      {parse_pin("thpt:10%", 0.1), parse_pin("latency:10%:lower", 0.1)});
  ASSERT_EQ(report.keys.size(), 2u);
  EXPECT_TRUE(report.keys[0].regressed);
  EXPECT_FALSE(report.keys[1].regressed);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.text().find("bench gate: REGRESSION"), std::string::npos);
}

TEST(RunGate, ImprovementsAndInToleranceDriftPass) {
  const std::map<std::string, double> baseline{{"thpt", 100.0}};
  EXPECT_TRUE(run_gate(baseline, {{"thpt", 150.0}},
                       {parse_pin("thpt:10%", 0.1)})
                  .ok());  // big improvement
  EXPECT_TRUE(run_gate(baseline, {{"thpt", 92.0}},
                       {parse_pin("thpt:10%", 0.1)})
                  .ok());  // -8% inside 10%
  EXPECT_FALSE(run_gate(baseline, {{"thpt", 89.0}},
                        {parse_pin("thpt:10%", 0.1)})
                   .ok());  // -11% outside
}

TEST(RunGate, MissingPinnedKeyIsARegression) {
  const std::map<std::string, double> both{{"a", 1.0}};
  const auto gone_current =
      run_gate(both, {}, {parse_pin("a", 0.1)});
  ASSERT_EQ(gone_current.keys.size(), 1u);
  EXPECT_TRUE(gone_current.keys[0].regressed);
  EXPECT_TRUE(gone_current.keys[0].missing_current);
  EXPECT_NE(gone_current.text().find("MISSING"), std::string::npos);

  const auto gone_baseline =
      run_gate({}, both, {parse_pin("a", 0.1)});
  EXPECT_TRUE(gone_baseline.keys[0].missing_baseline);
  EXPECT_FALSE(gone_baseline.ok());
}

TEST(RunGate, PerturbScalesCurrentBeforeComparing) {
  // The CI self-check: real artifacts pass, then the same comparison with
  // --perturb samples_per_sec=0.8 must fail.
  const std::map<std::string, double> baseline{{"samples_per_sec", 1000.0}};
  const std::map<std::string, double> current{{"samples_per_sec", 1010.0}};
  const std::vector<Pin> pins{parse_pin("samples_per_sec:10%", 0.1)};
  EXPECT_TRUE(run_gate(baseline, current, pins).ok());
  const auto perturbed =
      run_gate(baseline, current, pins, {{"samples_per_sec", 0.8}});
  EXPECT_FALSE(perturbed.ok());
  EXPECT_DOUBLE_EQ(perturbed.keys[0].current, 808.0);
}

TEST(RunGate, ZeroBaselineIsChangeOnlyWhenCurrentMoves) {
  const auto same = run_gate({{"k", 0.0}}, {{"k", 0.0}},
                             {parse_pin("k:10%:lower", 0.1)});
  EXPECT_TRUE(same.ok());
  const auto rose = run_gate({{"k", 0.0}}, {{"k", 5.0}},
                             {parse_pin("k:10%:lower", 0.1)});
  EXPECT_FALSE(rose.ok());
}

}  // namespace
}  // namespace sic::bench_gate
