#ifndef SICMAC_UTIL_THREAD_POOL_HPP
#define SICMAC_UTIL_THREAD_POOL_HPP

/// \file thread_pool.hpp
/// A small fixed-size worker pool for the parallel Monte Carlo sweeps
/// (analysis/parallel.hpp). One job runs at a time: parallel_for() hands
/// out [begin, end) index chunks from an atomic cursor, the calling thread
/// drains chunks alongside the workers, and the call returns only when the
/// whole range is done (rethrowing the first chunk exception, if any).
///
/// The pool makes no determinism promises by itself — which thread runs
/// which chunk is scheduler-dependent. Callers that need reproducible
/// results must make every index independent of execution order (see the
/// Rng::at counter-based substreams and DESIGN.md "Parallel sweeps").

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sic {

class ThreadPool {
 public:
  /// Chunk body: processes indices [begin, end).
  using ChunkFn = std::function<void(std::int64_t begin, std::int64_t end)>;

  /// \p threads is the total worker count including the calling thread
  /// (resolve() maps the CLI convention: 0 means "all hardware threads").
  /// A pool of 1 spawns no OS threads and runs everything inline.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency of parallel_for, including the calling thread.
  [[nodiscard]] int threads() const {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs \p body over [0, n) in chunks of \p chunk indices, blocking until
  /// every index is processed. Chunks are claimed dynamically, so the
  /// mapping of chunk -> thread varies run to run. If any chunk throws, the
  /// remaining range is abandoned and the first exception is rethrown here.
  void parallel_for(std::int64_t n, std::int64_t chunk, const ChunkFn& body);

  /// CLI convention: 0 -> hardware concurrency (at least 1), otherwise the
  /// requested count clamped to >= 1.
  [[nodiscard]] static int resolve(int requested);

 private:
  void worker_loop();
  /// Claims and runs chunks of the current job until the range is drained.
  void drain();

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals a new job (or shutdown)
  std::condition_variable done_cv_;   ///< signals workers leaving a job
  std::uint64_t job_id_ = 0;          ///< bumped per parallel_for call
  int workers_in_job_ = 0;
  bool stop_ = false;

  // Current job; valid while workers_in_job_ > 0 or the caller drains.
  const ChunkFn* body_ = nullptr;
  std::int64_t n_ = 0;
  std::int64_t chunk_ = 1;
  std::int64_t next_ = 0;             ///< guarded by mu_
  std::exception_ptr error_;          ///< first failure, guarded by mu_
};

}  // namespace sic

#endif  // SICMAC_UTIL_THREAD_POOL_HPP
