#ifndef SICMAC_CORE_WLAN_SCENARIOS_HPP
#define SICMAC_CORE_WLAN_SCENARIOS_HPP

/// \file wlan_scenarios.hpp
/// Section 4's architecture studies as an API over a positioned deployment
/// (topology::Deployment): the four enterprise-WLAN traffic cases of
/// Section 4.1 and the residential locked-AP case of Section 4.2. Each
/// returns the same realized-gain accounting the paper uses, so examples
/// and tests can interrogate "where is SIC worth pursuing?" on concrete
/// floor plans.

#include "core/cross_link.hpp"
#include "core/download.hpp"
#include "core/upload_pair.hpp"
#include "phy/rate_adapter.hpp"
#include "topology/scenarios.hpp"

namespace sic::core {

/// Analysis context: a deployment + rate policy + packet size.
class WlanStudy {
 public:
  /// \p deployment and \p adapter must outlive the study.
  WlanStudy(const topology::Deployment& deployment,
            const phy::RateAdapter& adapter, double packet_bits = 12000.0);

  /// Upload, two clients → one AP (Section 4.1 ¶1; same algebra as §3.1).
  /// Node arguments are deployment node ids.
  [[nodiscard]] UploadPairContext upload_pair(topology::NodeId client_a,
                                              topology::NodeId client_b,
                                              topology::NodeId ap) const;
  [[nodiscard]] double upload_gain(topology::NodeId client_a,
                                   topology::NodeId client_b,
                                   topology::NodeId ap) const;

  /// Download, two APs → one client over the wired backbone (Section 4.1
  /// ¶2, Fig. 8): serial baseline routes both packets via the better AP.
  [[nodiscard]] DownloadResult download_to(topology::NodeId client,
                                           topology::NodeId ap1,
                                           topology::NodeId ap2) const;

  /// Which of the two APs hears/serves this client better.
  [[nodiscard]] topology::NodeId better_ap(topology::NodeId client,
                                           topology::NodeId ap1,
                                           topology::NodeId ap2) const;

  /// Cross-cell concurrency (Section 4.1 ¶3-4): transmitter → receiver
  /// pairs (ta→ra) and (tb→rb) evaluated through the §3.2 case analysis.
  [[nodiscard]] CrossLinkResult concurrent_links(topology::NodeId ta,
                                                 topology::NodeId ra,
                                                 topology::NodeId tb,
                                                 topology::NodeId rb) const;

  /// The EWLAN argument in one call: with free AP choice each client
  /// associates with its better AP, and the function reports whether SIC
  /// is even *needed* (i.e. whether any receiver hears the foreign
  /// transmitter louder than its own) and the realized concurrency gain.
  struct FreeAssociationReport {
    topology::NodeId ap_for_a = 0;
    topology::NodeId ap_for_b = 0;
    bool sic_needed = false;   ///< false ⇒ the capture case (Fig. 5a)
    CrossLinkResult result;
  };
  [[nodiscard]] FreeAssociationReport upload_with_free_association(
      topology::NodeId client_a, topology::NodeId client_b,
      topology::NodeId ap1, topology::NodeId ap2) const;

  [[nodiscard]] const topology::Deployment& deployment() const {
    return *deployment_;
  }

 private:
  [[nodiscard]] const topology::Node& node(topology::NodeId id) const;

  const topology::Deployment* deployment_;
  const phy::RateAdapter* adapter_;
  double packet_bits_;
};

}  // namespace sic::core

#endif  // SICMAC_CORE_WLAN_SCENARIOS_HPP
