/// Large-deployment fast-path scaling sweep: association planning at
/// clients ∈ {1k, 10k, 100k} × APs ∈ {16, 256, 1024} for the spatial-grid
/// walk vs the brute-force all-AP scan, the batched rate_span lanes vs
/// the scalar per-element loop, and whole deployment-engine epochs at
/// 10k clients × 256 APs.
///
/// Like perf_matching this emits an *extended* one-line JSON summary so
/// the bench gate can pin the headline numbers from day one:
///
///   assoc_clients_per_sec       grid planning throughput, 100k × 1024
///   assoc_brute_clients_per_sec brute reference at the same scale
///   assoc_speedup_100kx1024     grid / brute (the ≥10× acceptance bar)
///   assoc_candidates_per_client mean APs actually scored by the walk
///   epoch_per_sec               engine epochs at 10k clients × 256 APs
///   rate_span_speedup_n256      batched vs scalar DiscreteRateAdapter
///
/// Both sides of every ratio run on the same thread count (a pool of 1),
/// so the speedups are algorithmic, not parallelism in disguise.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "channel/pathloss.hpp"
#include "mac/association.hpp"
#include "mac/deployment_engine.hpp"
#include "phy/rate_adapter.hpp"
#include "topology/geometry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace sic;

/// One association problem: a jittered AP lattice (pitch 50 m — realistic
/// enterprise density) with a few dead APs and snapshot loads, and
/// clients uniform over the fleet's extent, most with a live incumbent.
struct AssocInstance {
  std::vector<topology::Point> sites;
  std::vector<std::uint8_t> alive;
  std::vector<int> members;
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<std::uint8_t> eligible;
  std::vector<int> incumbent;
};

AssocInstance make_instance(int n_clients, int n_aps, std::uint64_t seed) {
  Rng rng{seed};
  AssocInstance ins;
  const int side =
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n_aps))));
  const double pitch = 50.0;
  for (int i = 0; i < n_aps; ++i) {
    const double x = static_cast<double>(i % side) * pitch;
    const double y = static_cast<double>(i / side) * pitch;
    ins.sites.push_back(topology::Point{x + rng.uniform(-10.0, 10.0),
                                        y + rng.uniform(-10.0, 10.0)});
    ins.alive.push_back(rng.uniform(0.0, 1.0) < 0.05 ? 0 : 1);
    ins.members.push_back(
        rng.uniform_int(0, std::max(1, 2 * n_clients / n_aps)));
  }
  const double extent = static_cast<double>(side) * pitch;
  for (int c = 0; c < n_clients; ++c) {
    ins.xs.push_back(rng.uniform(0.0, extent));
    ins.ys.push_back(rng.uniform(0.0, extent));
    ins.eligible.push_back(1);
    int inc = -1;
    if (rng.uniform(0.0, 1.0) < 0.8) {
      const int cand = rng.uniform_int(0, n_aps - 1);
      if (ins.alive[static_cast<std::size_t>(cand)] != 0) inc = cand;
    }
    ins.incumbent.push_back(inc);
  }
  return ins;
}

void run_plan(const mac::AssociationPlanner& planner, mac::AssociationMode mode,
              const AssocInstance& ins, ThreadPool& pool,
              std::vector<mac::AssociationProposal>& out) {
  planner.plan(mode, ins.xs, ins.ys, ins.eligible, ins.incumbent, ins.alive,
               ins.members, pool, out);
}

void BM_AssociationPlanGrid(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int aps = static_cast<int>(state.range(1));
  const AssocInstance ins = make_instance(clients, aps, 42);
  const channel::LogDistancePathLoss pathloss =
      channel::LogDistancePathLoss::for_carrier(3.0);
  const mac::AssociationPlanner planner{ins.sites, pathloss, Dbm{15.0},
                                        Decibels{0.5}};
  ThreadPool pool{1};
  std::vector<mac::AssociationProposal> out;
  for (auto _ : state) {
    run_plan(planner, mac::AssociationMode::kGrid, ins, pool, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * clients);
}
BENCHMARK(BM_AssociationPlanGrid)
    ->ArgNames({"clients", "aps"})
    ->Args({1000, 16})
    ->Args({1000, 256})
    ->Args({1000, 1024})
    ->Args({10000, 16})
    ->Args({10000, 256})
    ->Args({10000, 1024})
    ->Args({100000, 16})
    ->Args({100000, 256})
    ->Args({100000, 1024});

void BM_AssociationPlanBrute(benchmark::State& state) {
  // The O(clients × APs) reference. Registered only up to ~25M score
  // evaluations per iteration so the sweep stays affordable; the full
  // 100k × 1024 brute point is measured once for the summary ratio.
  const int clients = static_cast<int>(state.range(0));
  const int aps = static_cast<int>(state.range(1));
  const AssocInstance ins = make_instance(clients, aps, 42);
  const channel::LogDistancePathLoss pathloss =
      channel::LogDistancePathLoss::for_carrier(3.0);
  const mac::AssociationPlanner planner{ins.sites, pathloss, Dbm{15.0},
                                        Decibels{0.5}};
  ThreadPool pool{1};
  std::vector<mac::AssociationProposal> out;
  for (auto _ : state) {
    run_plan(planner, mac::AssociationMode::kBruteForce, ins, pool, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * clients);
}
BENCHMARK(BM_AssociationPlanBrute)
    ->ArgNames({"clients", "aps"})
    ->Args({1000, 16})
    ->Args({1000, 256})
    ->Args({1000, 1024})
    ->Args({10000, 16})
    ->Args({10000, 256})
    ->Args({100000, 16});

void BM_RateSpanDiscreteBatched(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const phy::DiscreteRateAdapter adapter{phy::RateTable::dot11n()};
  Rng rng{7};
  std::vector<double> sinrs;
  for (int i = 0; i < n; ++i) sinrs.push_back(rng.uniform(-1.0, 3000.0));
  std::vector<BitsPerSecond> out(sinrs.size());
  for (auto _ : state) {
    adapter.rate_span(sinrs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RateSpanDiscreteBatched)->Arg(16)->Arg(256)->Arg(4096);

void BM_RateSpanDiscreteScalar(benchmark::State& state) {
  // The pre-fast-path per-element loop: one log10 per lane.
  const int n = static_cast<int>(state.range(0));
  const phy::DiscreteRateAdapter adapter{phy::RateTable::dot11n()};
  Rng rng{7};
  std::vector<double> sinrs;
  for (int i = 0; i < n; ++i) sinrs.push_back(rng.uniform(-1.0, 3000.0));
  std::vector<BitsPerSecond> out(sinrs.size());
  for (auto _ : state) {
    for (std::size_t i = 0; i < sinrs.size(); ++i) {
      out[i] = adapter.rate(sinrs[i]);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RateSpanDiscreteScalar)->Arg(256);

void BM_RateSpanShannon(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const phy::ShannonRateAdapter adapter{megahertz(20.0)};
  Rng rng{7};
  std::vector<double> sinrs;
  for (int i = 0; i < n; ++i) sinrs.push_back(rng.uniform(-1.0, 3000.0));
  std::vector<BitsPerSecond> out(sinrs.size());
  for (auto _ : state) {
    adapter.rate_span(sinrs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RateSpanShannon)->Arg(256);

/// A steady-state deployment: clients pre-placed around a jittered AP
/// lattice, no chaos, epoch drift keeping channels (and therefore the
/// dirty-row updates) alive.
std::unique_ptr<mac::DeploymentEngine> make_engine(
    int n_clients, int n_aps, const phy::RateAdapter& adapter) {
  mac::DeploymentEngineConfig config;
  config.seed = 9;
  config.epoch_drift_sigma = Decibels{1.0};
  AssocInstance ins = make_instance(n_clients, n_aps, 9);
  auto engine = std::make_unique<mac::DeploymentEngine>(
      ins.sites, adapter, config, mac::FaultSchedule{});
  for (int c = 0; c < n_clients; ++c) {
    (void)engine->add_client(topology::Point{ins.xs[static_cast<std::size_t>(c)],
                                             ins.ys[static_cast<std::size_t>(c)]});
  }
  return engine;
}

void BM_DeploymentEpoch(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  const int aps = static_cast<int>(state.range(1));
  const phy::ShannonRateAdapter adapter{megahertz(20.0)};
  auto engine = make_engine(clients, aps, adapter);
  (void)engine->run_epoch();  // absorb the first-epoch association storm
  for (auto _ : state) {
    const mac::EpochStats stats = engine->run_epoch();
    benchmark::DoNotOptimize(stats.offered);
  }
  state.SetItemsProcessed(state.iterations() * clients);
}
BENCHMARK(BM_DeploymentEpoch)
    ->ArgNames({"clients", "aps"})
    ->Args({1000, 64})
    ->Args({10000, 256});

// ---------------------------------------------------------------------------
// Summary measurements behind the one-line JSON (bench-gate pins).
// ---------------------------------------------------------------------------

/// Iterations/second of \p run: one warm-up call, then at least
/// \p min_iters timed iterations and \p min_elapsed seconds of wall clock.
template <typename F>
double samples_per_sec(F&& run, int min_iters = 3,
                       double min_elapsed = 0.25) {
  using clock = std::chrono::steady_clock;
  run();
  const auto start = clock::now();
  int iters = 0;
  double elapsed = 0.0;
  do {
    run();
    ++iters;
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (iters < min_iters || elapsed < min_elapsed);
  return static_cast<double>(iters) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  // Accept (and drop) the repo-wide `--threads N` flag like the other perf
  // binaries (see perf_util.hpp); both sides of every speedup here run on
  // a pool of 1 so the ratios stay algorithmic.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 < argc && argv[i + 1][0] != '-') ++i;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n_run = benchmark::RunSpecifiedBenchmarks();

  // Headline A/B at 100k clients × 1024 APs — the acceptance scale.
  const AssocInstance ins = make_instance(100000, 1024, 42);
  const channel::LogDistancePathLoss pathloss =
      channel::LogDistancePathLoss::for_carrier(3.0);
  const mac::AssociationPlanner planner{ins.sites, pathloss, Dbm{15.0},
                                        Decibels{0.5}};
  ThreadPool pool{1};
  std::vector<mac::AssociationProposal> out;
  const double grid_pps = samples_per_sec([&] {
    run_plan(planner, mac::AssociationMode::kGrid, ins, pool, out);
    benchmark::DoNotOptimize(out.data());
  });
  std::uint64_t cand_sum = 0;
  for (const mac::AssociationProposal& p : out) cand_sum += p.candidates;
  const double cand_per_client =
      static_cast<double>(cand_sum) / static_cast<double>(out.size());
  // The brute reference costs ~100M score evaluations per pass; one
  // warm-up plus one timed pass keeps the binary's wall clock sane.
  const double brute_pps = samples_per_sec(
      [&] {
        run_plan(planner, mac::AssociationMode::kBruteForce, ins, pool, out);
        benchmark::DoNotOptimize(out.data());
      },
      /*min_iters=*/1, /*min_elapsed=*/0.0);

  // Engine epochs at 10k clients × 256 APs (steady state, drift only).
  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  auto engine = make_engine(10000, 256, shannon);
  const double epoch_pps = samples_per_sec([&] {
    benchmark::DoNotOptimize(engine->run_epoch().offered);
  });

  // Batched vs scalar discrete rate lanes at n = 256 (dot11n, the widest
  // ladder). Each sample is 1000 spans so the clock reads milliseconds.
  const phy::DiscreteRateAdapter dot11n{phy::RateTable::dot11n()};
  Rng rng{7};
  std::vector<double> sinrs;
  for (int i = 0; i < 256; ++i) sinrs.push_back(rng.uniform(-1.0, 3000.0));
  std::vector<BitsPerSecond> rates(sinrs.size());
  const double span_sps = samples_per_sec([&] {
    for (int rep = 0; rep < 1000; ++rep) {
      dot11n.rate_span(sinrs, rates);
      benchmark::DoNotOptimize(rates.data());
    }
  });
  const double scalar_sps = samples_per_sec([&] {
    for (int rep = 0; rep < 1000; ++rep) {
      for (std::size_t i = 0; i < sinrs.size(); ++i) {
        rates[i] = dot11n.rate(sinrs[i]);
      }
      benchmark::DoNotOptimize(rates.data());
    }
  });

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  const double throughput =
      wall_ms > 0.0 ? 1e3 * static_cast<double>(n_run) / wall_ms : 0.0;
  std::printf(
      "{\"bench\":\"perf_deployment\",\"wall_ms\":%.1f,\"throughput\":%.3f,"
      "\"assoc_clients_per_sec\":%.0f,"
      "\"assoc_brute_clients_per_sec\":%.0f,"
      "\"assoc_speedup_100kx1024\":%.2f,"
      "\"assoc_candidates_per_client\":%.2f,"
      "\"epoch_per_sec\":%.3f,"
      "\"rate_span_speedup_n256\":%.2f}\n",
      wall_ms, throughput, grid_pps * 100000.0, brute_pps * 100000.0,
      brute_pps > 0.0 ? grid_pps / brute_pps : 0.0, cand_per_client,
      epoch_pps, scalar_sps > 0.0 ? span_sps / scalar_sps : 0.0);
  benchmark::Shutdown();
  return 0;
}
