#ifndef SICMAC_OBS_OBS_HPP
#define SICMAC_OBS_OBS_HPP

/// \file obs.hpp
/// Umbrella header for the sic::obs observability layer: metrics registry,
/// Chrome-trace sink, leveled logger, and RAII timing helpers. See
/// DESIGN.md "Observability layer" for the zero-overhead-when-disabled
/// contract all of them share.

#include "obs/build_info.hpp"       // IWYU pragma: export
#include "obs/flight_recorder.hpp"  // IWYU pragma: export
#include "obs/logger.hpp"           // IWYU pragma: export
#include "obs/metrics.hpp"          // IWYU pragma: export
#include "obs/scoped_timer.hpp"     // IWYU pragma: export
#include "obs/timeseries.hpp"       // IWYU pragma: export
#include "obs/trace_sink.hpp"       // IWYU pragma: export

#endif  // SICMAC_OBS_OBS_HPP
