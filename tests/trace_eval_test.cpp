#include "analysis/trace_eval.hpp"

#include <gtest/gtest.h>

#include "analysis/stats.hpp"
#include "trace/generator.hpp"

namespace sic::analysis {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

trace::RssiTrace small_trace() {
  trace::BuildingConfig config;
  config.duration_s = 6 * 3600;
  config.diurnal = false;  // stationary occupancy keeps the cells dense
  return generate_building_trace(config, 31);
}

TEST(UploadTraceEval, GainsAtLeastOneAndOrdered) {
  const auto gains = evaluate_upload_trace(small_trace(), kShannon);
  ASSERT_GT(gains.cells_evaluated, 10);
  ASSERT_EQ(gains.pairing.size(), gains.power_control.size());
  ASSERT_EQ(gains.pairing.size(), gains.multirate.size());
  for (std::size_t i = 0; i < gains.pairing.size(); ++i) {
    EXPECT_GE(gains.pairing[i], 1.0 - 1e-12);
    // Techniques dominate plain pairing per cell.
    EXPECT_GE(gains.power_control[i] + 1e-9, gains.pairing[i]);
    EXPECT_GE(gains.multirate[i] + 1e-9, gains.pairing[i]);
    // Blossom dominates greedy per cell.
    EXPECT_GE(gains.pairing[i] + 1e-9, gains.greedy_pairing[i]);
  }
}

TEST(UploadTraceEval, RespectsMinClients) {
  UploadTraceEvalConfig config;
  config.min_clients = 3;
  const auto strict = evaluate_upload_trace(small_trace(), kShannon, config);
  const auto loose = evaluate_upload_trace(small_trace(), kShannon);
  EXPECT_LT(strict.cells_evaluated, loose.cells_evaluated);
}

TEST(DownloadTraceEval, ShapeAndBounds) {
  trace::LinkTraceConfig config;
  const auto link_trace = trace::generate_link_trace(config, 17);
  DownloadTraceEvalConfig eval;
  eval.pair_samples = 500;
  const auto gains = evaluate_download_trace(link_trace, kShannon, eval);
  ASSERT_EQ(gains.plain.size(), 500u);
  ASSERT_EQ(gains.packing.size(), 500u);
  for (std::size_t i = 0; i < gains.plain.size(); ++i) {
    EXPECT_GE(gains.plain[i], 1.0);
    EXPECT_GE(gains.packing[i] + 1e-12, gains.plain[i]);
  }
}

TEST(DownloadTraceEval, DiscreteRatesBeatContinuous) {
  // Fig. 14's point: quantization slack gives SIC more room under the
  // discrete 802.11g ladder than under ideal Shannon adaptation.
  trace::LinkTraceConfig config;
  const auto link_trace = trace::generate_link_trace(config, 17);
  DownloadTraceEvalConfig eval;
  eval.pair_samples = 2000;
  const phy::DiscreteRateAdapter g{phy::RateTable::dot11g()};
  const auto cont = evaluate_download_trace(link_trace, kShannon, eval);
  const auto disc = evaluate_download_trace(link_trace, g, eval);
  const double cont_frac =
      EmpiricalCdf{cont.packing}.fraction_above(1.2);
  const double disc_frac =
      EmpiricalCdf{disc.packing}.fraction_above(1.2);
  EXPECT_GE(disc_frac, cont_frac);
}

TEST(DownloadTraceEval, DeterministicPerSeed) {
  trace::LinkTraceConfig config;
  const auto link_trace = trace::generate_link_trace(config, 23);
  DownloadTraceEvalConfig eval;
  eval.pair_samples = 100;
  const auto a = evaluate_download_trace(link_trace, kShannon, eval);
  const auto b = evaluate_download_trace(link_trace, kShannon, eval);
  for (std::size_t i = 0; i < a.plain.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.plain[i], b.plain[i]);
  }
}

}  // namespace
}  // namespace sic::analysis
