#include <gtest/gtest.h>

#include <cmath>

#include "analysis/stats.hpp"
#include "core/upload_pair.hpp"
#include "topology/samplers.hpp"
#include "util/rng.hpp"

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};
constexpr Milliwatts kN0{1.0};

UploadPairContext ctx_db(double s1_db, double s2_db) {
  return UploadPairContext::make(Milliwatts{Decibels{s1_db}.linear()},
                                 Milliwatts{Decibels{s2_db}.linear()}, kN0,
                                 kShannon);
}

TEST(Impairments, ZeroImpairmentsMatchIdealAlgebra) {
  const SicImpairments none;
  for (double s1 = 6.0; s1 <= 40.0; s1 += 4.0) {
    for (double s2 = 3.0; s2 <= s1; s2 += 4.0) {
      const auto ctx = ctx_db(s1, s2);
      const auto ideal = sic_rates(ctx);
      const auto impaired = sic_rates(ctx, none);
      EXPECT_DOUBLE_EQ(ideal.stronger.value(), impaired.stronger.value());
      EXPECT_DOUBLE_EQ(ideal.weaker.value(), impaired.weaker.value());
      EXPECT_DOUBLE_EQ(sic_airtime(ctx), sic_airtime(ctx, none));
    }
  }
}

TEST(Impairments, ResidualMonotonicallyDegradesWeakerRate) {
  const auto ctx = ctx_db(26.0, 13.0);
  double prev = sic_rates(ctx, SicImpairments{}).weaker.value();
  for (const double residual : {0.001, 0.01, 0.05, 0.2, 1.0}) {
    SicImpairments impairments;
    impairments.cancellation_residual = residual;
    const double rate = sic_rates(ctx, impairments).weaker.value();
    EXPECT_LT(rate, prev) << "residual " << residual;
    prev = rate;
  }
}

TEST(Impairments, ResidualDoesNotTouchStrongerRate) {
  const auto ctx = ctx_db(26.0, 13.0);
  SicImpairments impairments;
  impairments.cancellation_residual = 0.1;
  EXPECT_DOUBLE_EQ(sic_rates(ctx, impairments).stronger.value(),
                   sic_rates(ctx).stronger.value());
}

TEST(Impairments, FullResidualEqualsNoCancellation) {
  // residual = 1: the weaker signal is decoded against the full stronger
  // signal, i.e. as if no SIC happened.
  const auto ctx = ctx_db(24.0, 15.0);
  SicImpairments impairments;
  impairments.cancellation_residual = 1.0;
  const double expect =
      kShannon
          .rate(ctx.arrival.weaker /
                (ctx.arrival.stronger + ctx.arrival.noise))
          .value();
  EXPECT_DOUBLE_EQ(sic_rates(ctx, impairments).weaker.value(), expect);
}

TEST(Impairments, AdcLimitIsAHardCliff) {
  SicImpairments impairments;
  impairments.max_decodable_disparity = Decibels{20.0};
  // 18 dB apart: fine. 22 dB apart: weaker gone.
  const auto near = ctx_db(30.0, 12.0);
  EXPECT_GT(sic_rates(near, impairments).weaker.value(), 0.0);
  const auto far = ctx_db(34.0, 12.0);
  EXPECT_DOUBLE_EQ(sic_rates(far, impairments).weaker.value(), 0.0);
  EXPECT_TRUE(std::isinf(sic_airtime(far, impairments)));
  EXPECT_DOUBLE_EQ(realized_gain(far, impairments), 1.0);
}

TEST(Impairments, RealizedGainAlwaysAtLeastOne) {
  Rng rng{17};
  topology::SamplerConfig config;
  for (int i = 0; i < 300; ++i) {
    const auto sample = topology::sample_two_to_one(rng, config);
    const auto ctx = core::UploadPairContext::make(sample.s1, sample.s2,
                                                   sample.noise, kShannon);
    SicImpairments impairments;
    impairments.cancellation_residual = rng.uniform(0.0, 0.2);
    impairments.max_decodable_disparity = Decibels{rng.uniform(10.0, 50.0)};
    EXPECT_GE(realized_gain(ctx, impairments), 1.0);
    // Impairments never *help*.
    EXPECT_LE(realized_gain(ctx, impairments), realized_gain(ctx) + 1e-12);
  }
}

TEST(Impairments, PercentResidualKillsTheFig11aGains) {
  // The [13] claim as a measured property: at 1% residual the fraction of
  // pairs gaining over 20% collapses to ~zero.
  Rng rng{23};
  topology::SamplerConfig config;
  std::vector<double> ideal;
  std::vector<double> impaired;
  SicImpairments one_percent;
  one_percent.cancellation_residual = 0.01;
  for (int i = 0; i < 2000; ++i) {
    const auto sample = topology::sample_two_to_one(rng, config);
    const auto ctx = core::UploadPairContext::make(sample.s1, sample.s2,
                                                   sample.noise, kShannon);
    ideal.push_back(realized_gain(ctx));
    impaired.push_back(realized_gain(ctx, one_percent));
  }
  const double ideal_frac =
      analysis::EmpiricalCdf{ideal}.fraction_above(1.2);
  const double impaired_frac =
      analysis::EmpiricalCdf{impaired}.fraction_above(1.2);
  EXPECT_GT(ideal_frac, 0.1);
  EXPECT_LT(impaired_frac, 0.02);
}

TEST(Impairments, BadResidualRejected) {
  const auto ctx = ctx_db(20.0, 10.0);
  SicImpairments impairments;
  impairments.cancellation_residual = 1.5;
  EXPECT_THROW((void)sic_rates(ctx, impairments), std::logic_error);
}

}  // namespace
}  // namespace sic::core
