#include "matching/greedy.hpp"

#include <algorithm>
#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/check.hpp"

namespace sic::matching {

Matching greedy_min_weight_perfect_matching(const CostMatrix& costs) {
  const int n = costs.size();
  SIC_CHECK_MSG(n % 2 == 0, "perfect matching requires an even vertex count");
  obs::MetricsRegistry* reg = obs::metrics();
  obs::ScopedTimer timer{
      reg != nullptr ? &reg->histogram("matching.greedy.wall_s") : nullptr,
      reg != nullptr ? &reg->counter("matching.greedy.calls") : nullptr};
  auto edges = costs.edges();
  // Heap selection instead of a full sort: the greedy scan stops once every
  // vertex is matched, which on a complete graph happens long before the
  // expensive tail of the edge list would ever be looked at — so most of an
  // O(E log E) sort is wasted. Heapify is O(E) and each accepted or skipped
  // edge costs one O(log E) pop. Ties (exactly equal weights) break in
  // (u, v) row-major order, the order edges() generates them in.
  const auto later = [](const WeightedEdge& a, const WeightedEdge& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    if (a.u != b.u) return a.u > b.u;
    return a.v > b.v;
  };
  std::make_heap(edges.begin(), edges.end(), later);
  auto heap_end = edges.end();
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  Matching out;
  out.pairs.reserve(static_cast<std::size_t>(n) / 2);
  std::uint64_t edge_visits = 0;
  int matched = 0;
  while (matched < n && heap_end != edges.begin()) {
    std::pop_heap(edges.begin(), heap_end, later);
    const WeightedEdge& e = *--heap_end;
    ++edge_visits;
    if (used[static_cast<std::size_t>(e.u)] ||
        used[static_cast<std::size_t>(e.v)]) {
      continue;
    }
    used[static_cast<std::size_t>(e.u)] = true;
    used[static_cast<std::size_t>(e.v)] = true;
    out.pairs.emplace_back(e.u, e.v);
    out.total_cost += e.weight;
    matched += 2;
  }
  SIC_CHECK(static_cast<int>(out.pairs.size()) * 2 == n);
  if (reg != nullptr) {
    reg->counter("matching.greedy.edge_visits").inc(edge_visits);
    reg->counter("matching.greedy.vertices").inc(
        static_cast<std::uint64_t>(n));
  }
  return out;
}

}  // namespace sic::matching
