#ifndef SICMAC_CORE_ENTERPRISE_HPP
#define SICMAC_CORE_ENTERPRISE_HPP

/// \file enterprise.hpp
/// Multi-AP upload coordination — Section 4.1's enterprise WLAN taken to
/// its operational conclusion. The paper observes that with a wired
/// backbone "a client has the choice of passing the packet to any of the
/// APs"; this module gives the controller that choice *jointly* with the
/// per-AP SIC pairing of Section 6:
///
///   - shared channel (co-channel APs): cells serialize, the objective is
///     the SUM of per-AP schedule times — strongest-AP association is
///     provably optimal and the module reduces to per-cell scheduling;
///   - orthogonal channels: cells run in parallel, the objective is the
///     MAKESPAN (max over APs) — association now trades link rate against
///     load balance, solved by deterministic local search over client
///     moves with exact per-cell rescheduling.

#include <span>
#include <vector>

#include "channel/link.hpp"
#include "core/scheduler.hpp"
#include "phy/rate_adapter.hpp"

namespace sic::core {

/// One client's uplink RSS at every candidate AP (common noise floor).
struct EnterpriseClient {
  std::vector<Milliwatts> rss_at_ap;
};

enum class ChannelModel {
  kShared,      ///< co-channel APs: total time = sum of cell times
  kOrthogonal,  ///< per-AP channels: total time = max of cell times
};

struct EnterpriseOptions {
  SchedulerOptions cell;  ///< per-cell SIC scheduling options
  ChannelModel channel_model = ChannelModel::kOrthogonal;
  /// Local-search budget: full passes over all (client, AP) moves.
  int max_passes = 16;
  Milliwatts noise{1.0};
};

struct EnterpriseAssignment {
  std::vector<int> ap_for_client;       ///< AP index per client
  std::vector<Schedule> cell_schedules; ///< per AP
  double objective = 0.0;               ///< sum or makespan, by model
};

/// Coordinated association + pairing. Starts from strongest-AP association
/// and improves by single-client moves until a local optimum.
[[nodiscard]] EnterpriseAssignment schedule_enterprise_upload(
    std::span<const EnterpriseClient> clients, int n_aps,
    const phy::RateAdapter& adapter, const EnterpriseOptions& options = {});

/// Baseline: strongest-AP association with per-cell scheduling (no moves).
[[nodiscard]] EnterpriseAssignment strongest_ap_assignment(
    std::span<const EnterpriseClient> clients, int n_aps,
    const phy::RateAdapter& adapter, const EnterpriseOptions& options = {});

}  // namespace sic::core

#endif  // SICMAC_CORE_ENTERPRISE_HPP
