#include "matching/oracle.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace sic::matching {
namespace {

TEST(Oracle, TwoVertices) {
  CostMatrix costs{2};
  costs.set(0, 1, 3.5);
  const auto m = min_weight_perfect_matching_oracle(costs);
  ASSERT_EQ(m.pairs.size(), 1u);
  EXPECT_EQ(m.pairs[0], (std::pair<int, int>{0, 1}));
  EXPECT_DOUBLE_EQ(m.total_cost, 3.5);
}

TEST(Oracle, FourVerticesPicksCheapestPairing) {
  // Pairings: {01,23}=1+1=2, {02,13}=10+10=20, {03,12}=10+10=20.
  CostMatrix costs{4, 10.0};
  costs.set(0, 1, 1.0);
  costs.set(2, 3, 1.0);
  const auto m = min_weight_perfect_matching_oracle(costs);
  EXPECT_DOUBLE_EQ(m.total_cost, 2.0);
}

TEST(Oracle, AntiGreedyInstance) {
  // Greedy takes (0,1)=1 then is forced into (2,3)=100 → 101;
  // optimal is (0,2)+(1,3) = 2+2 = 4.
  CostMatrix costs{4};
  costs.set(0, 1, 1.0);
  costs.set(2, 3, 100.0);
  costs.set(0, 2, 2.0);
  costs.set(1, 3, 2.0);
  costs.set(0, 3, 50.0);
  costs.set(1, 2, 50.0);
  const auto m = min_weight_perfect_matching_oracle(costs);
  EXPECT_DOUBLE_EQ(m.total_cost, 4.0);
}

TEST(Oracle, OddCountRejected) {
  CostMatrix costs{3};
  EXPECT_THROW((void)min_weight_perfect_matching_oracle(costs),
               std::logic_error);
}

TEST(Oracle, PairsCoverEveryVertexOnce) {
  Rng rng{17};
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 * rng.uniform_int(1, 6);
    CostMatrix costs{n};
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) costs.set(i, j, rng.uniform(0.0, 10.0));
    }
    const auto m = min_weight_perfect_matching_oracle(costs);
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    double sum = 0.0;
    for (const auto& [a, b] : m.pairs) {
      EXPECT_FALSE(seen[a]);
      EXPECT_FALSE(seen[b]);
      seen[a] = seen[b] = true;
      sum += costs.at(a, b);
    }
    EXPECT_NEAR(sum, m.total_cost, 1e-9);
    for (const bool s : seen) EXPECT_TRUE(s);
  }
}

TEST(MaxWeightOracle, SkipsNegativeEdgesWithoutMaxCardinality) {
  const WeightedEdge edges[] = {{0, 1, -5.0}, {2, 3, 4.0}};
  const auto m = max_weight_matching_oracle(4, edges, false);
  EXPECT_EQ(m.mate[0], -1);
  EXPECT_EQ(m.mate[1], -1);
  EXPECT_EQ(m.mate[2], 3);
  EXPECT_DOUBLE_EQ(m.total_weight, 4.0);
}

TEST(MaxWeightOracle, MaxCardinalityForcesNegativeEdge) {
  const WeightedEdge edges[] = {{0, 1, -5.0}, {2, 3, 4.0}};
  const auto m = max_weight_matching_oracle(4, edges, true);
  EXPECT_EQ(m.mate[0], 1);
  EXPECT_EQ(m.mate[2], 3);
  EXPECT_DOUBLE_EQ(m.total_weight, -1.0);
}

TEST(MaxWeightOracle, PrefersHeavierAlternative) {
  // Path 0-1-2-3 with weights 2, 5, 2: best is the middle edge alone (5)
  // vs both outer edges (4) — max weight picks 5, max cardinality picks 4.
  const WeightedEdge edges[] = {{0, 1, 2.0}, {1, 2, 5.0}, {2, 3, 2.0}};
  const auto by_weight = max_weight_matching_oracle(4, edges, false);
  EXPECT_DOUBLE_EQ(by_weight.total_weight, 5.0);
  const auto by_card = max_weight_matching_oracle(4, edges, true);
  EXPECT_DOUBLE_EQ(by_card.total_weight, 4.0);
}

TEST(ValidateMate, CatchesCorruption) {
  const int good[] = {1, 0, -1};
  EXPECT_TRUE(is_valid_mate_vector(good));
  const int self[] = {0, -1};
  EXPECT_FALSE(is_valid_mate_vector(self));
  const int dangling[] = {1, 2, 0};
  EXPECT_FALSE(is_valid_mate_vector(dangling));
  const int out_of_range[] = {5, -1};
  EXPECT_FALSE(is_valid_mate_vector(out_of_range));
}

}  // namespace
}  // namespace sic::matching
