#ifndef SICMAC_PHY_RATE_ADAPTER_HPP
#define SICMAC_PHY_RATE_ADAPTER_HPP

/// \file rate_adapter.hpp
/// The SINR→bitrate policy, abstracted so every completion-time formula in
/// the core library can be evaluated both under the paper's main assumption
/// ("each packet is transmitted at the best feasible rate supported by the
/// channel", i.e. Shannon) and under discrete standard rate sets
/// (Section 7, Fig. 14b). This is the axis along which the paper's headline
/// claim — finer rate ladders squeeze SIC's slack — is reproduced.

#include <memory>
#include <span>
#include <string>

#include "phy/rate_table.hpp"
#include "util/units.hpp"

namespace sic::phy {

/// Maps an SINR to the best feasible transmission bitrate.
class RateAdapter {
 public:
  virtual ~RateAdapter() = default;

  /// Best feasible rate at the given linear SINR. Must be monotone
  /// non-decreasing in SINR and 0 for non-positive SINR.
  [[nodiscard]] virtual BitsPerSecond rate(double sinr_linear) const = 0;

  /// Batched lookup: out[i] = rate(sinr_linear[i]) for every element, with
  /// spans of equal length. The base implementation loops the virtual
  /// rate(); the concrete adapters override with a devirtualized loop so
  /// batch callers (the pair-cost engine's row kernel) pay one virtual
  /// dispatch per row instead of per pair. Overrides must stay
  /// element-wise bit-identical to rate() — the engine's bit-identity
  /// contract rides on it.
  virtual void rate_span(std::span<const double> sinr_linear,
                         std::span<BitsPerSecond> out) const;

  [[nodiscard]] virtual std::string name() const = 0;

  /// True when transmitting at \p r is feasible at \p sinr_linear under this
  /// policy. By monotonicity this is exactly rate(sinr) >= r.
  [[nodiscard]] bool feasible(BitsPerSecond r, double sinr_linear) const {
    return rate(sinr_linear) >= r;
  }
};

/// Ideal continuous (Shannon) rate adaptation: rate = B log₂(1 + SINR).
class ShannonRateAdapter final : public RateAdapter {
 public:
  explicit ShannonRateAdapter(Hertz bandwidth) : bandwidth_(bandwidth) {}

  [[nodiscard]] BitsPerSecond rate(double sinr_linear) const override;
  void rate_span(std::span<const double> sinr_linear,
                 std::span<BitsPerSecond> out) const override;
  [[nodiscard]] std::string name() const override { return "shannon"; }
  [[nodiscard]] Hertz bandwidth() const { return bandwidth_; }

 private:
  Hertz bandwidth_;
};

/// Discrete standard-rate adaptation via a RateTable step function.
/// Models a practical adapter that always picks the highest sustainable
/// standard rate (the "recent advances in bitrate adaptation" of [9-11]).
class DiscreteRateAdapter final : public RateAdapter {
 public:
  /// \p table must outlive the adapter (the canonical tables are static).
  explicit DiscreteRateAdapter(const RateTable& table) : table_(&table) {}

  [[nodiscard]] BitsPerSecond rate(double sinr_linear) const override;
  void rate_span(std::span<const double> sinr_linear,
                 std::span<BitsPerSecond> out) const override;
  [[nodiscard]] std::string name() const override { return table_->name(); }
  [[nodiscard]] const RateTable& table() const { return *table_; }

 private:
  const RateTable* table_;
};

}  // namespace sic::phy

#endif  // SICMAC_PHY_RATE_ADAPTER_HPP
