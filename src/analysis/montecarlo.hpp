#ifndef SICMAC_ANALYSIS_MONTECARLO_HPP
#define SICMAC_ANALYSIS_MONTECARLO_HPP

/// \file montecarlo.hpp
/// The paper's Monte Carlo experiments, shared between the bench binaries
/// and the integration tests:
///
///  - Fig. 6:  gain CDF for two transmitters → two receivers over random
///             topologies (10,000 draws, α = 4, several ranges).
///  - Fig. 11a: gain CDFs for SIC / +power control / +multirate / +packing
///             in the two-transmitters → one-receiver geometry.
///  - Fig. 11b: same techniques in the two-receiver geometry (SIC, power
///             control and packing; multirate is not applicable there —
///             Section 5.5).
///  - Random-deployment scheduler sweep: whole-cell gain of the SIC-aware
///             upload schedule over random client placements.
///
/// Every sweep runs on the deterministic parallel engine
/// (analysis/parallel.hpp): trial t draws from the counter-based substream
/// `Rng::at(seed, t)`, so for a fixed (trials, seed) the returned samples
/// are bit-identical for any thread count or chunk schedule. Thread count
/// 1 is the default; 0 means all hardware threads.

#include <cstdint>
#include <vector>

#include "core/upload_pair.hpp"
#include "phy/rate_adapter.hpp"
#include "topology/samplers.hpp"

namespace sic::analysis {

/// Realized (≥ 1) gains of each Section 5 technique for one upload pair.
struct TechniqueGains {
  double sic = 1.0;
  double power_control = 1.0;
  double multirate = 1.0;
  double packing = 1.0;
};

[[nodiscard]] TechniqueGains evaluate_upload_pair_techniques(
    const core::UploadPairContext& ctx);

/// Fig. 6: realized SIC gains over random two-link topologies.
[[nodiscard]] std::vector<double> run_two_link_gains(
    const topology::SamplerConfig& config, const phy::RateAdapter& adapter,
    int trials, std::uint64_t seed, double packet_bits = 12000.0,
    int threads = 1);

/// Per-technique gain samples (one entry per trial in each vector).
struct TechniqueSamples {
  std::vector<double> sic;
  std::vector<double> power_control;
  /// Per-trial multirate gains in the one-receiver experiment. In the
  /// two-receiver experiment (run_two_link_techniques) multirate is not
  /// applicable (Section 5.5) and this vector is *intentionally empty* —
  /// not reserved, not populated — so consumers can distinguish "no gain"
  /// from "not applicable".
  std::vector<double> multirate;
  std::vector<double> packing;
};

/// Fig. 11a: two transmitters → one receiver.
[[nodiscard]] TechniqueSamples run_two_to_one_techniques(
    const topology::SamplerConfig& config, const phy::RateAdapter& adapter,
    int trials, std::uint64_t seed, double packet_bits = 12000.0,
    int threads = 1);

/// Fig. 11b: two transmitters → two receivers. Power control here scales a
/// whole transmitter (affecting its RSS at both receivers) and searches
/// both choices of transmitter.
[[nodiscard]] TechniqueSamples run_two_link_techniques(
    const topology::SamplerConfig& config, const phy::RateAdapter& adapter,
    int trials, std::uint64_t seed, double packet_bits = 12000.0,
    int threads = 1);

/// Random-deployment scheduler sweep: each trial places \p n_clients
/// uniformly in one AP's cell, runs the full SIC-aware upload scheduler
/// (blossom pairing + optional techniques via core::SchedulerOptions
/// defaults), and reports serial/scheduled airtime as a whole-cell gain
/// sample. Exercises the matching + scheduler stack per trial, unlike the
/// closed-form pair sweeps above.
[[nodiscard]] std::vector<double> run_upload_deployment_gains(
    const topology::SamplerConfig& config, const phy::RateAdapter& adapter,
    int trials, int n_clients, std::uint64_t seed,
    double packet_bits = 12000.0, int threads = 1);

}  // namespace sic::analysis

#endif  // SICMAC_ANALYSIS_MONTECARLO_HPP
