#include "phy/rate_adapter.hpp"

#include <gtest/gtest.h>

#include "phy/capacity.hpp"

namespace sic::phy {
namespace {

TEST(ShannonRateAdapter, MatchesShannonRate) {
  const ShannonRateAdapter adapter{megahertz(20.0)};
  for (const double sinr : {0.1, 1.0, 10.0, 1000.0}) {
    EXPECT_DOUBLE_EQ(adapter.rate(sinr).value(),
                     shannon_rate(megahertz(20.0), sinr).value());
  }
  EXPECT_EQ(adapter.name(), "shannon");
}

TEST(DiscreteRateAdapter, QuantizesToTable) {
  const DiscreteRateAdapter adapter{RateTable::dot11g()};
  EXPECT_DOUBLE_EQ(adapter.rate(Decibels{10.0}.linear()).megabits(), 12.0);
  EXPECT_DOUBLE_EQ(adapter.rate(Decibels{2.0}.linear()).value(), 0.0);
  EXPECT_DOUBLE_EQ(adapter.rate(0.0).value(), 0.0);
  EXPECT_EQ(adapter.name(), "802.11g");
}

TEST(RateAdapter, FeasibleIsRateAtLeast) {
  const DiscreteRateAdapter adapter{RateTable::dot11g()};
  const double sinr = Decibels{12.0}.linear();  // supports up to 18 Mbps
  EXPECT_TRUE(adapter.feasible(megabits_per_second(18.0), sinr));
  EXPECT_TRUE(adapter.feasible(megabits_per_second(6.0), sinr));
  EXPECT_FALSE(adapter.feasible(megabits_per_second(24.0), sinr));
}

TEST(RateAdapter, DiscreteNeverExceedsShannonAtRealisticSnr) {
  // The discrete table is a *practical* ladder: it must sit at or below the
  // information-theoretic ceiling wherever the ladder is defined.
  const ShannonRateAdapter shannon{megahertz(20.0)};
  const DiscreteRateAdapter discrete{RateTable::dot11g()};
  for (double db = 0.0; db <= 40.0; db += 0.5) {
    const double sinr = Decibels{db}.linear();
    EXPECT_LE(discrete.rate(sinr).value(), shannon.rate(sinr).value())
        << "at " << db << " dB";
  }
}

TEST(RateAdapter, FinerTablesCaptureMoreOfShannon) {
  // The paper's core trend: more rates ⇒ less slack left for SIC.
  const ShannonRateAdapter shannon{megahertz(20.0)};
  const DiscreteRateAdapter b{RateTable::dot11b()};
  const DiscreteRateAdapter g{RateTable::dot11g()};
  double slack_b = 0.0;
  double slack_g = 0.0;
  int samples = 0;
  for (double db = 6.0; db <= 30.0; db += 0.5) {
    const double sinr = Decibels{db}.linear();
    const double cap = shannon.rate(sinr).value();
    slack_b += (cap - b.rate(sinr).value()) / cap;
    slack_g += (cap - g.rate(sinr).value()) / cap;
    ++samples;
  }
  EXPECT_GT(slack_b / samples, slack_g / samples);
}

}  // namespace
}  // namespace sic::phy
