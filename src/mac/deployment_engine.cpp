#include "mac/deployment_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_sink.hpp"
#include "util/check.hpp"

namespace sic::mac {

namespace {

/// Stream salt separating the engine's per-epoch draws (drift, chaos,
/// arrival placement) from every inner-run seed.
constexpr std::uint64_t kEngineStream = 0xC1A05E19E57ULL;

/// Appends a flight-recorder event when a recorder is attached. Only ever
/// called from the engine's sequential phases (never from pool workers),
/// so the event stream — and therefore the post-mortem bytes — is
/// identical at any thread count.
void flight_event(int epoch, int ap, int client, const char* kind,
                  std::string detail = {}) {
  if (obs::FlightRecorder* fr = obs::flight()) {
    fr->record(obs::FlightEvent{static_cast<std::uint64_t>(epoch), ap, client,
                                kind, std::move(detail)});
  }
}

/// Name of an AP's health series, zero-padded so the registry's
/// lexicographic name order matches numeric AP order (fleets beyond 999
/// APs widen past the padding and would interleave; today's scales fit).
std::string ap_health_series(int ap) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "deploy.ap%03d.health", ap);
  return buf;
}

/// Removes \p client from an always-sorted member list. The list is kept
/// ascending by every insert (upper_bound), so removal is a binary search
/// + single erase, not a full std::remove scan.
void erase_member(std::vector<int>& members, int client) {
  const auto it = std::lower_bound(members.begin(), members.end(), client);
  SIC_CHECK(it != members.end() && *it == client);
  members.erase(it);
}

/// Ladder level 3: serial solo slots in member order, no matching.
core::Schedule serial_schedule(std::span<const channel::LinkBudget> budgets,
                               const phy::RateAdapter& adapter,
                               const core::SchedulerOptions& options) {
  core::Schedule s;
  s.admission_margin_db = options.admission_margin_db;
  for (int i = 0; i < static_cast<int>(budgets.size()); ++i) {
    core::ScheduledSlot slot;
    slot.first = i;
    slot.second = -1;
    slot.plan.mode = core::PairMode::kSolo;
    slot.plan.airtime = core::solo_airtime(
        budgets[static_cast<std::size_t>(i)], adapter, options.packet_bits);
    s.total_airtime += slot.plan.airtime;
    s.slots.push_back(slot);
  }
  return s;
}

}  // namespace

// ---------------------------------------------------------------------------
// InvariantAuditor
// ---------------------------------------------------------------------------

void InvariantAuditor::check(const EpochInvariants& inv) {
  ++epochs_checked_;
  const auto fail = [&](std::string what) {
    violations_.push_back(Violation{inv.epoch, std::move(what)});
  };
  if (inv.confirmed + inv.unrecovered != inv.offered) {
    fail("conservation: confirmed (" + std::to_string(inv.confirmed) +
         ") + unrecovered (" + std::to_string(inv.unrecovered) +
         ") != offered (" + std::to_string(inv.offered) + ")");
  }
  const std::size_t n = inv.active.size();
  SIC_CHECK(inv.quarantined.size() == n && inv.assignment.size() == n &&
            inv.served_by.size() == n);
  std::uint64_t served = 0;
  std::uint64_t unassigned = 0;
  for (std::size_t c = 0; c < n; ++c) {
    const int ap = inv.assignment[c];
    const int by = inv.served_by[c];
    const bool active = inv.active[c] != 0;
    const bool quarantined = inv.quarantined[c] != 0;
    const auto alive = [&](int a) {
      return a >= 0 && a < static_cast<int>(inv.ap_alive.size()) &&
             inv.ap_alive[static_cast<std::size_t>(a)] != 0;
    };
    if (!active && (ap >= 0 || by >= 0)) {
      fail("inactive client " + std::to_string(c) + " assigned or served");
      continue;
    }
    if (ap >= 0 && !alive(ap)) {
      fail("client " + std::to_string(c) + " assigned to dead AP " +
           std::to_string(ap));
    }
    if (by >= 0 && !alive(by)) {
      fail("client " + std::to_string(c) + " served by dead AP " +
           std::to_string(by));
    }
    if (quarantined && (ap >= 0 || by >= 0)) {
      fail("quarantined client " + std::to_string(c) +
           " appears in an active matching");
    }
    if (by >= 0 && ap != by) {
      fail("client " + std::to_string(c) + " served by AP " +
           std::to_string(by) + " but assigned to " + std::to_string(ap));
    }
    if (by >= 0) ++served;
    if (active && !quarantined && ap < 0) ++unassigned;
  }
  if (served != inv.offered) {
    fail("accounting: " + std::to_string(served) +
         " clients served but offered = " + std::to_string(inv.offered));
  }
  if (unassigned != inv.deferred) {
    fail("accounting: " + std::to_string(unassigned) +
         " unassigned active clients but deferred = " +
         std::to_string(inv.deferred));
  }
}

// ---------------------------------------------------------------------------
// DeploymentEngine
// ---------------------------------------------------------------------------

struct DeploymentEngine::ClientState {
  topology::Point position;
  bool active = true;
  int ap = -1;              ///< serving AP id, -1 = unassigned
  Decibels drift{0.0};      ///< truth deviation from nominal (epoch AR(1))
  Decibels est_drift{0.0};  ///< drift captured at the last re-estimation
  int fail_streak = 0;      ///< consecutive epochs with abandoned frames
  bool quarantined = false;
  int quarantine_until = 0;
  int quarantine_times = 0;
  /// AP the client was exiled from (-1 when unattributed) — attributes
  /// quarantine occupancy to the cell that was failing the client.
  int quarantined_from = -1;
};

struct DeploymentEngine::ApState {
  int id = 0;
  topology::Point site;
  bool alive = true;
  int down_until = 0;
  Decibels burst{0.0};  ///< active interference-burst depth
  int burst_until = 0;
  int ladder = 0;  ///< 0 = full options .. 3 = serial-only
  int healthy_streak = 0;
  int allfail_streak = 0;
  bool dirty = true;  ///< re-estimate + re-match before next service
  bool rematched_this_epoch = false;
  std::vector<int> members;  ///< ascending client ids
  /// Membership/ladder the persistent pair-cost engine was built over —
  /// a mismatch forces a rebuild instead of per-row updates.
  std::vector<int> pce_members;
  int pce_ladder = -1;
  std::unique_ptr<core::PairCostEngine> pce;
  core::Schedule schedule;
  std::vector<int> sched_members;  ///< members the schedule indexes
  /// Matching tier the last rematch resolved to (-1 = never matched /
  /// serial ladder); flight-recorded on change from the sequential
  /// aggregate phase, so a kAuto fleet's per-AP tier crossings land in the
  /// post-mortem thread-invariantly.
  int last_tier = -1;
  UploadSimResult last;
  // Health bookkeeping (pure observation: nothing below feeds a decision).
  double last_health = 1.0;
  std::uint64_t epochs_served = 0;
  double health_sum = 0.0;
  double health_min = 1.0;
  double conf_sum = 0.0;
};

DeploymentEngine::DeploymentEngine(std::vector<topology::Point> ap_sites,
                                   const phy::RateAdapter& adapter,
                                   const DeploymentEngineConfig& config,
                                   FaultSchedule chaos)
    : adapter_(&adapter),
      config_(config),
      chaos_(std::move(chaos)),
      pathloss_(channel::LogDistancePathLoss::for_carrier(
          config.pathloss_exponent)),
      noise_mw_(config.noise_floor.to_milliwatts()),
      pool_(std::make_unique<ThreadPool>(ThreadPool::resolve(config.threads))) {
  SIC_CHECK_MSG(!ap_sites.empty(), "deployment needs at least one AP");
  SIC_CHECK_MSG(config_.upload.faults.initial_drift.empty(),
                "upload.faults.initial_drift is engine-owned; leave it empty");
  config_.upload.faults.validate();
  chaos_.profile().validate();
  config_.scheduler.packet_bits = config_.upload.packet_bits;
  config_.upload.recovery.enabled = config_.closed_loop;
  aps_.reserve(ap_sites.size());
  for (std::size_t i = 0; i < ap_sites.size(); ++i) {
    ApState ap;
    ap.id = static_cast<int>(i);
    ap.site = ap_sites[i];
    aps_.push_back(std::move(ap));
  }
  assoc_planner_ = std::make_unique<AssociationPlanner>(
      std::span<const topology::Point>(ap_sites), pathloss_,
      config_.client_tx_power, config_.load_penalty_per_client);
}

DeploymentEngine::~DeploymentEngine() = default;

int DeploymentEngine::n_aps() const { return static_cast<int>(aps_.size()); }

bool DeploymentEngine::ap_alive(int ap) const {
  SIC_CHECK(ap >= 0 && ap < n_aps());
  return aps_[static_cast<std::size_t>(ap)].alive;
}

int DeploymentEngine::ladder_level(int ap) const {
  SIC_CHECK(ap >= 0 && ap < n_aps());
  return aps_[static_cast<std::size_t>(ap)].ladder;
}

int DeploymentEngine::active_clients() const {
  int n = 0;
  for (const ClientState& c : clients_) n += c.active ? 1 : 0;
  return n;
}

bool DeploymentEngine::client_active(int client) const {
  SIC_CHECK(client >= 0 && client < static_cast<int>(clients_.size()));
  return clients_[static_cast<std::size_t>(client)].active;
}

bool DeploymentEngine::quarantined(int client) const {
  SIC_CHECK(client >= 0 && client < static_cast<int>(clients_.size()));
  return clients_[static_cast<std::size_t>(client)].quarantined;
}

int DeploymentEngine::assignment(int client) const {
  SIC_CHECK(client >= 0 && client < static_cast<int>(clients_.size()));
  return clients_[static_cast<std::size_t>(client)].ap;
}

const UploadSimResult& DeploymentEngine::last_ap_result(int ap) const {
  SIC_CHECK(ap >= 0 && ap < n_aps());
  return aps_[static_cast<std::size_t>(ap)].last;
}

std::vector<ApHealthSummary> DeploymentEngine::health_summary() const {
  std::vector<ApHealthSummary> out;
  out.reserve(aps_.size());
  for (const ApState& ap : aps_) {
    ApHealthSummary s;
    s.ap = ap.id;
    s.epochs_served = ap.epochs_served;
    if (ap.epochs_served > 0) {
      s.mean_health =
          ap.health_sum / static_cast<double>(ap.epochs_served);
      s.min_health = ap.health_min;
      s.mean_confirmation =
          ap.conf_sum / static_cast<double>(ap.epochs_served);
    }
    out.push_back(s);
  }
  return out;
}

channel::LinkBudget DeploymentEngine::nominal_budget(int client,
                                                     int ap) const {
  SIC_CHECK(client >= 0 && client < static_cast<int>(clients_.size()));
  SIC_CHECK(ap >= 0 && ap < n_aps());
  const ClientState& c = clients_[static_cast<std::size_t>(client)];
  const ApState& a = aps_[static_cast<std::size_t>(ap)];
  const double d = topology::distance(c.position, a.site);
  return channel::LinkBudget{
      pathloss_.received_power(config_.client_tx_power, d).to_milliwatts(),
      noise_mw_};
}

std::uint64_t DeploymentEngine::epoch_seed(std::uint64_t seed, int ap,
                                           int epoch) {
  const std::uint64_t stream =
      static_cast<std::uint64_t>(ap) * 0x9e3779b97f4a7c15ULL +
      static_cast<std::uint64_t>(epoch) * 0xbf58476d1ce4e5b9ULL + 1;
  return SplitMix64{seed ^ stream}.next();
}

Rng DeploymentEngine::epoch_rng() const {
  return Rng::at(config_.seed ^ kEngineStream,
                 static_cast<std::uint64_t>(epoch_));
}

int DeploymentEngine::add_client(topology::Point position) {
  ClientState c;
  c.position = position;
  clients_.push_back(c);
  client_x_.push_back(position.x);
  client_y_.push_back(position.y);
  return static_cast<int>(clients_.size()) - 1;
}

void DeploymentEngine::remove_client(int client) {
  SIC_CHECK(client >= 0 && client < static_cast<int>(clients_.size()));
  ClientState& c = clients_[static_cast<std::size_t>(client)];
  if (!c.active) return;
  c.active = false;
  c.quarantined = false;
  c.quarantined_from = -1;
  if (c.ap >= 0) {
    ApState& ap = aps_[static_cast<std::size_t>(c.ap)];
    erase_member(ap.members, client);
    ap.dirty = true;
    c.ap = -1;
  }
}

const std::vector<int>& DeploymentEngine::ap_members(int ap) const {
  SIC_CHECK(ap >= 0 && ap < n_aps());
  return aps_[static_cast<std::size_t>(ap)].members;
}

core::SchedulerOptions DeploymentEngine::ladder_options(int level) const {
  core::SchedulerOptions o = config_.scheduler;
  if (level >= 1) o.enable_multirate = false;
  if (level >= 2) o.enable_power_control = false;
  return o;
}

void DeploymentEngine::apply_chaos(const EpochChaos& chaos,
                                   EpochStats& stats) {
  for (const EpochChaos::Outage& o : chaos.outages) {
    if (o.ap < 0 || o.ap >= n_aps()) continue;
    ApState& ap = aps_[static_cast<std::size_t>(o.ap)];
    if (o.epochs <= 0) {  // scripted restart
      if (!ap.alive) {
        ap.alive = true;
        ap.down_until = epoch_;
        ap.dirty = true;
        flight_event(epoch_, o.ap, -1, "chaos.restart");
      }
      continue;
    }
    if (!ap.alive) {  // already down: extend the outage
      ap.down_until = std::max(ap.down_until, epoch_ + o.epochs);
      flight_event(epoch_, o.ap, -1, "chaos.outage_extend",
                   "down_until=" + std::to_string(ap.down_until));
      continue;
    }
    ap.alive = false;
    ap.down_until = epoch_ + o.epochs;
    ap.pce.reset();
    ap.pce_ladder = -1;
    ap.pce_members.clear();
    ap.schedule = core::Schedule{};
    ap.sched_members.clear();
    ap.dirty = true;
    for (const int m : ap.members) {
      clients_[static_cast<std::size_t>(m)].ap = -1;
    }
    ap.members.clear();
    ++stats.outages_started;
    flight_event(epoch_, o.ap, -1, "chaos.outage",
                 "down_for=" + std::to_string(o.epochs));
  }
  for (const EpochChaos::Burst& b : chaos.bursts) {
    if (b.ap < 0 || b.ap >= n_aps()) continue;
    ApState& ap = aps_[static_cast<std::size_t>(b.ap)];
    ap.burst = std::max(ap.burst, b.depth);
    ap.burst_until = std::max(ap.burst_until, epoch_ + b.epochs);
    ++stats.bursts_started;
    flight_event(epoch_, b.ap, -1, "chaos.burst",
                 "depth_db=" + std::to_string(b.depth.value()) +
                     " epochs=" + std::to_string(b.epochs));
  }
  if (chaos.storm_epochs > 0) {
    storm_until_ = std::max(storm_until_, epoch_ + chaos.storm_epochs);
    flight_event(epoch_, -1, -1, "chaos.storm",
                 "epochs=" + std::to_string(chaos.storm_epochs));
  }
  for (const int c : chaos.departures) {
    remove_client(c);
    ++stats.departures;
    flight_event(epoch_, -1, c, "chaos.departure");
  }
  stats.arrivals += chaos.arrivals;
}

void DeploymentEngine::associate_clients(EpochStats& stats,
                                         std::vector<int>& handoff_flux) {
  const std::size_t n = clients_.size();
  // Phase 1 (parallel): score every eligible client against a snapshot
  // of the epoch-start AP state. Positions are append-only SoA mirrors
  // (add_client); eligibility/incumbents are rebuilt in one O(clients)
  // pass. Snapshot scoring makes every client's proposal independent of
  // commit order — all clients compare the same AP loads this epoch —
  // which is what lets the score phase fan out across threads while
  // staying bit-identical.
  assoc_eligible_.resize(n);
  assoc_incumbent_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ClientState& c = clients_[i];
    assoc_eligible_[i] = (c.active && !c.quarantined) ? 1 : 0;
    assoc_incumbent_[i] = c.ap;
  }
  ap_alive_scratch_.clear();
  ap_members_scratch_.clear();
  for (const ApState& ap : aps_) {
    ap_alive_scratch_.push_back(ap.alive ? 1 : 0);
    ap_members_scratch_.push_back(static_cast<int>(ap.members.size()));
  }
  assoc_planner_->plan(config_.association_mode, client_x_, client_y_,
                       assoc_eligible_, assoc_incumbent_, ap_alive_scratch_,
                       ap_members_scratch_, *pool_, proposals_);

  // Phase 2 (sequential, client-id order): hysteresis against the
  // incumbent score computed once in phase 1 — never re-derived — then
  // the member-list edits and flight events, exactly as before.
  std::uint64_t candidates = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (assoc_eligible_[i] == 0) continue;
    const AssociationProposal& p = proposals_[i];
    candidates += p.candidates;
    ClientState& c = clients_[i];
    const int best = p.best_ap;
    if (best < 0 || best == c.ap) continue;
    if (c.ap >= 0) {
      // Hysteresis: leave a live AP only for a clearly better one.
      if (p.best_score <= p.incumbent_score + config_.handoff_hysteresis) {
        continue;
      }
      ApState& old = aps_[static_cast<std::size_t>(c.ap)];
      erase_member(old.members, static_cast<int>(i));
      old.dirty = true;
      ++stats.handoffs;
      ++handoff_flux[static_cast<std::size_t>(c.ap)];
      ++handoff_flux[static_cast<std::size_t>(best)];
      flight_event(epoch_, best, static_cast<int>(i), "handoff",
                   "from_ap=" + std::to_string(c.ap));
    } else {
      ++handoff_flux[static_cast<std::size_t>(best)];
      flight_event(epoch_, best, static_cast<int>(i), "associate");
    }
    ApState& ap = aps_[static_cast<std::size_t>(best)];
    ap.members.insert(
        std::upper_bound(ap.members.begin(), ap.members.end(),
                         static_cast<int>(i)),
        static_cast<int>(i));
    ap.dirty = true;
    c.ap = best;
  }
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("deploy.assoc.candidates").inc(candidates);
  }
}

void DeploymentEngine::serve_ap(ApState& ap) {
  const bool rebuild = ap.pce == nullptr || ap.pce_ladder != ap.ladder ||
                       ap.pce_members != ap.members;
  if (ap.dirty) {
    // Re-estimation: the AP measures every member's channel fresh.
    for (const int m : ap.members) {
      ClientState& c = clients_[static_cast<std::size_t>(m)];
      c.est_drift = c.drift;
    }
  }
  // Planning estimates (member order).
  std::vector<channel::LinkBudget> budgets;
  budgets.reserve(ap.members.size());
  for (const int m : ap.members) {
    const channel::LinkBudget nominal = nominal_budget(m, ap.id);
    const Decibels est = clients_[static_cast<std::size_t>(m)].est_drift;
    budgets.push_back(
        channel::LinkBudget{nominal.rss * est.linear(), noise_mw_});
  }
  if (ap.dirty || rebuild) {
    if (ap.ladder >= 3) {
      ap.pce.reset();
      ap.pce_ladder = ap.ladder;
      ap.pce_members = ap.members;
      ap.schedule = serial_schedule(budgets, *adapter_, ladder_options(2));
    } else if (rebuild) {
      ap.pce = std::make_unique<core::PairCostEngine>(
          *adapter_, ladder_options(ap.ladder));
      ap.pce->set_clients(budgets);
      ap.pce_ladder = ap.ladder;
      ap.pce_members = ap.members;
      ap.schedule = ap.pce->schedule();
    } else {
      // Same members, same options: re-estimation only — dirty rows
      // recompute, clean rows serve from cache.
      for (std::size_t i = 0; i < budgets.size(); ++i) {
        ap.pce->update_client(static_cast<int>(i), budgets[i].rss);
      }
      ap.schedule = ap.pce->schedule();
    }
    ap.sched_members = ap.members;
    ap.rematched_this_epoch = true;
    ap.dirty = false;
  }

  // Execution: the truth the packets fly through deviates from the
  // planning estimate by accumulated drift plus any active burst,
  // expressed through the fault model's initial_drift conduit.
  UploadSimConfig run = config_.upload;
  run.seed = epoch_seed(config_.seed, ap.id, epoch_);
  run.recovery.enabled = config_.closed_loop;
  run.recovery.rematch_options = ladder_options(std::min(ap.ladder, 2));
  std::vector<Decibels> offsets(ap.members.size(), Decibels{0.0});
  bool any_offset = false;
  for (std::size_t i = 0; i < ap.members.size(); ++i) {
    const ClientState& c =
        clients_[static_cast<std::size_t>(ap.members[i])];
    const Decibels off = c.drift - c.est_drift - ap.burst;
    offsets[i] = off;
    any_offset = any_offset || off != Decibels{0.0};
  }
  if (any_offset) run.faults.initial_drift = std::move(offsets);
  ap.last = run_scheduled_upload(budgets, *adapter_, ap.schedule, run);
}

void DeploymentEngine::score_health(const std::vector<int>& serving,
                                    const std::vector<int>& handoff_flux,
                                    EpochStats& stats) {
  // Quarantine occupancy attributes each exiled client to the AP it was
  // exiled from; the AP's "population" is its current members plus those
  // exiles, so occupancy is the fraction of its flock it is failing.
  std::vector<int> exiled(aps_.size(), 0);
  for (const ClientState& c : clients_) {
    if (c.active && c.quarantined && c.quarantined_from >= 0) {
      ++exiled[static_cast<std::size_t>(c.quarantined_from)];
    }
  }
  double health_sum = 0.0;
  int scored = 0;
  for (const int id : serving) {
    ApState& ap = aps_[static_cast<std::size_t>(id)];
    const std::uint64_t offered = ap.last.offered;
    const std::uint64_t confirmed = offered - ap.last.failures.unrecovered;
    const double conf =
        offered == 0 ? 1.0
                     : static_cast<double>(confirmed) /
                           static_cast<double>(offered);
    const double retry_pressure =
        offered == 0 ? 0.0
                     : static_cast<double>(ap.last.failures.retransmissions) /
                           static_cast<double>(offered);
    const double population = static_cast<double>(
        ap.members.size() +
        static_cast<std::size_t>(exiled[static_cast<std::size_t>(id)]));
    const double occupancy =
        population == 0.0
            ? 0.0
            : static_cast<double>(exiled[static_cast<std::size_t>(id)]) /
                  population;
    const double flux =
        static_cast<double>(handoff_flux[static_cast<std::size_t>(id)]) /
        static_cast<double>(std::max<std::size_t>(1, ap.members.size()));
    const double health = conf * (1.0 / (1.0 + retry_pressure)) *
                          (1.0 - occupancy) * (1.0 / (1.0 + flux));
    ap.last_health = health;
    ++ap.epochs_served;
    ap.health_sum += health;
    ap.health_min =
        ap.epochs_served == 1 ? health : std::min(ap.health_min, health);
    ap.conf_sum += conf;
    health_sum += health;
    ++scored;
  }
  stats.mean_health =
      scored == 0 ? 1.0 : health_sum / static_cast<double>(scored);
}

EpochStats DeploymentEngine::run_epoch() {
  EpochStats stats;
  stats.epoch = epoch_;
  Rng rng = epoch_rng();

  // 1. Epoch-scale channel drift, client-id order (sequential: one
  //    deterministic draw stream regardless of thread count).
  if (config_.epoch_drift_sigma > Decibels{0.0}) {
    const double rho = config_.epoch_drift_rho;
    const double innovation = std::sqrt(std::max(0.0, 1.0 - rho * rho));
    for (ClientState& c : clients_) {
      if (!c.active) continue;
      c.drift = Decibels{
          rho * c.drift.value() +
          rng.normal(0.0, innovation * config_.epoch_drift_sigma.value())};
    }
  }

  // 2. Scheduled restarts and burst expiry.
  for (ApState& ap : aps_) {
    if (!ap.alive && epoch_ >= ap.down_until) {
      ap.alive = true;
      ap.dirty = true;
    }
    if (epoch_ >= ap.burst_until) ap.burst = Decibels{0.0};
  }

  // 3. Chaos resolution + application.
  if (!chaos_.empty()) {
    std::vector<std::uint8_t> alive;
    alive.reserve(aps_.size());
    for (const ApState& ap : aps_) alive.push_back(ap.alive ? 1 : 0);
    std::vector<int> active_ids;
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      if (clients_[i].active) active_ids.push_back(static_cast<int>(i));
    }
    const double mult =
        epoch_ < storm_until_ ? chaos_.profile().storm_multiplier : 1.0;
    const EpochChaos resolved =
        chaos_.resolve(epoch_, alive, active_ids, mult, rng);
    apply_chaos(resolved, stats);
    // Arrival placement draws stay on the engine's epoch stream.
    for (int k = 0; k < resolved.arrivals; ++k) {
      const int site = rng.uniform_int(0, n_aps() - 1);
      (void)add_client(topology::random_in_disc(
          rng, aps_[static_cast<std::size_t>(site)].site,
          config_.arrival_radius_m));
    }
  }

  // 4. Quarantine re-admission probes (before association so a released
  //    client is served this epoch).
  if (config_.closed_loop && config_.enable_quarantine) {
    for (ClientState& c : clients_) {
      if (c.active && c.quarantined && epoch_ >= c.quarantine_until) {
        c.quarantined = false;
        // Probation, not a clean slate: one failed probe epoch re-exiles
        // the client (a confirmed epoch clears the streak as usual), so a
        // still-hopeless link costs one epoch per probe instead of
        // another full quarantine_after streak.
        c.fail_streak = config_.quarantine_after - 1;
        c.quarantined_from = -1;
        ++stats.readmissions;
        flight_event(epoch_, -1, static_cast<int>(&c - clients_.data()),
                     "quarantine.probe");
      }
    }
  }

  // 5. Association / handoff with hysteresis. The per-AP flux count
  //    feeds the health score's churn factor.
  std::vector<int> handoff_flux(aps_.size(), 0);
  associate_clients(stats, handoff_flux);
  for (const ClientState& c : clients_) {
    if (c.active && !c.quarantined && c.ap < 0) ++stats.deferred;
  }
  for (const ApState& ap : aps_) stats.live_aps += ap.alive ? 1 : 0;
  for (const ClientState& c : clients_) {
    stats.active_clients += c.active ? 1 : 0;
    stats.quarantined_clients += (c.active && c.quarantined) ? 1 : 0;
  }

  // 6. Serve every live AP with members — in parallel over APs, each
  //    with a scratch metrics registry merged back in AP order so counter
  //    maps are identical at any thread count.
  std::vector<int> serving;
  for (const ApState& ap : aps_) {
    if (ap.alive && !ap.members.empty()) serving.push_back(ap.id);
  }
  obs::MetricsRegistry* caller = obs::metrics();
  std::vector<std::unique_ptr<obs::MetricsRegistry>> scratch(aps_.size());
  pool_->parallel_for(
      static_cast<std::int64_t>(serving.size()), 1,
      [&](std::int64_t begin, std::int64_t end) {
        for (std::int64_t k = begin; k < end; ++k) {
          ApState& ap =
              aps_[static_cast<std::size_t>(serving[static_cast<std::size_t>(k)])];
          obs::MetricsRegistry* prev = nullptr;
          if (caller != nullptr) {
            scratch[static_cast<std::size_t>(ap.id)] =
                std::make_unique<obs::MetricsRegistry>();
            prev = obs::set_metrics(
                scratch[static_cast<std::size_t>(ap.id)].get());
          }
          serve_ap(ap);
          if (caller != nullptr) (void)obs::set_metrics(prev);
        }
      });
  if (caller != nullptr) {
    for (const int id : serving) {
      if (scratch[static_cast<std::size_t>(id)] != nullptr) {
        caller->merge_from(*scratch[static_cast<std::size_t>(id)]);
      }
    }
  }

  // 7. Aggregate, then audit the epoch exactly as executed.
  std::vector<int> served_by;
  if (auditor_ != nullptr) served_by.assign(clients_.size(), -1);
  for (const int id : serving) {
    ApState& ap = aps_[static_cast<std::size_t>(id)];
    stats.offered += ap.last.offered;
    stats.unrecovered += ap.last.failures.unrecovered;
    stats.decisions += ap.schedule.slots.size();
    if (ap.rematched_this_epoch) {
      ++stats.rematched_aps;
      ap.rematched_this_epoch = false;
      // Tier telemetry: record which matcher the rematch resolved to, once
      // per change (sequential phase — thread-invariant event stream).
      if (ap.pce != nullptr && ap.pce->size() >= 2) {
        const int tier = static_cast<int>(ap.pce->last_matching_tier());
        if (tier != ap.last_tier) {
          ap.last_tier = tier;
          flight_event(epoch_, id, -1, "matching.tier",
                       core::to_string(ap.pce->last_matching_tier()));
        }
      }
    }
    for (std::size_t i = 0; i < ap.sched_members.size(); ++i) {
      const int m = ap.sched_members[i];
      ClientState& c = clients_[static_cast<std::size_t>(m)];
      const std::uint64_t lost = i < ap.last.unrecovered_per_client.size()
                                     ? ap.last.unrecovered_per_client[i]
                                     : 0;
      if (lost > 0) {
        ++c.fail_streak;
      } else {
        c.fail_streak = 0;
      }
      if (auditor_ != nullptr) served_by[static_cast<std::size_t>(m)] = id;
    }
  }
  stats.confirmed = stats.offered - stats.unrecovered;
  if (auditor_ != nullptr) audit_epoch(stats, served_by);

  // 8. Quarantine decisions for next epoch (closed loop only).
  if (config_.closed_loop && config_.enable_quarantine) {
    for (std::size_t i = 0; i < clients_.size(); ++i) {
      ClientState& c = clients_[i];
      if (!c.active || c.quarantined ||
          c.fail_streak < config_.quarantine_after) {
        continue;
      }
      c.quarantined = true;
      const int shift = std::min(c.quarantine_times, 10);
      c.quarantine_until =
          epoch_ + 1 + (config_.quarantine_base_epochs << shift);
      ++c.quarantine_times;
      c.fail_streak = 0;
      c.quarantined_from = c.ap;
      if (c.ap >= 0) {
        ApState& ap = aps_[static_cast<std::size_t>(c.ap)];
        erase_member(ap.members, static_cast<int>(i));
        ap.dirty = true;
        c.ap = -1;
      }
      ++stats.quarantines;
      flight_event(epoch_, c.quarantined_from, static_cast<int>(i),
                   "quarantine.enter",
                   "until_epoch=" + std::to_string(c.quarantine_until) +
                       " times=" + std::to_string(c.quarantine_times));
    }
  }

  // 9. Per-AP health score — pure observation folded from this epoch's
  //    confirmation, retries, quarantine occupancy, and handoff flux;
  //    nothing downstream reads it (the ladder keys on raw confirmation).
  score_health(serving, handoff_flux, stats);

  // 10. Per-AP recovery: degradation ladder + stuck-AP watchdog.
  if (config_.closed_loop) {
    for (const int id : serving) {
      ApState& ap = aps_[static_cast<std::size_t>(id)];
      const std::uint64_t offered = ap.last.offered;
      if (offered == 0) continue;
      const std::uint64_t confirmed =
          offered - ap.last.failures.unrecovered;
      if (confirmed == 0) {
        ++ap.allfail_streak;
        if (ap.allfail_streak < config_.watchdog_epochs) {
          flight_event(epoch_, id, -1, "watchdog.warn",
                       "allfail_streak=" + std::to_string(ap.allfail_streak));
        }
      } else {
        ap.allfail_streak = 0;
      }
      if (ap.allfail_streak >= config_.watchdog_epochs) {
        // Stuck AP: nothing confirmed for K epochs. Force fresh
        // estimates and a full from-scratch re-match.
        ++stats.watchdog_fires;
        ap.allfail_streak = 0;
        ap.pce.reset();
        ap.pce_ladder = -1;
        ap.pce_members.clear();
        ap.dirty = true;
        if (obs::FlightRecorder* fr = obs::flight()) {
          fr->record(obs::FlightEvent{static_cast<std::uint64_t>(epoch_), id,
                                      -1, "watchdog.fire",
                                      "epochs=" +
                                          std::to_string(
                                              config_.watchdog_epochs)});
          // Latch the trip; whoever owns the recorder dumps the
          // post-mortem. The return value is deliberately dropped — the
          // engine must never branch on observer state.
          (void)fr->trip("watchdog fire: ap " + std::to_string(id),
                         static_cast<std::uint64_t>(epoch_));
        }
      }
      const double frac =
          static_cast<double>(confirmed) / static_cast<double>(offered);
      if (frac < config_.unhealthy_below) {
        ap.healthy_streak = 0;
        if (ap.ladder < 3) {
          ++ap.ladder;
          ++stats.ladder_steps;
          ap.dirty = true;
          flight_event(epoch_, id, -1, "ladder.down",
                       "level=" + std::to_string(ap.ladder));
        }
      } else {
        ++ap.healthy_streak;
        if (ap.ladder > 0 &&
            ap.healthy_streak >= config_.ladder_recover_epochs) {
          --ap.ladder;
          ++stats.ladder_steps;
          ap.dirty = true;
          ap.healthy_streak = 0;
          flight_event(epoch_, id, -1, "ladder.up",
                       "level=" + std::to_string(ap.ladder));
        }
      }
    }
  }

  // 11. Publish the epoch to obs (counters per fault cause, epoch-stamped
  //     health gauge, time-series samples, one trace span).
  if (obs::MetricsRegistry* reg = obs::metrics()) {
    reg->counter("deploy.epochs").inc();
    reg->counter("deploy.offered").inc(stats.offered);
    reg->counter("deploy.confirmed").inc(stats.confirmed);
    reg->counter("deploy.unrecovered").inc(stats.unrecovered);
    reg->counter("deploy.deferred").inc(stats.deferred);
    reg->counter("deploy.decisions").inc(stats.decisions);
    reg->counter("deploy.handoffs").inc(
        static_cast<std::uint64_t>(stats.handoffs));
    reg->counter("deploy.rematched_aps").inc(
        static_cast<std::uint64_t>(stats.rematched_aps));
    reg->counter("deploy.fault.outages").inc(
        static_cast<std::uint64_t>(stats.outages_started));
    reg->counter("deploy.fault.bursts").inc(
        static_cast<std::uint64_t>(stats.bursts_started));
    reg->counter("deploy.fault.departures").inc(
        static_cast<std::uint64_t>(stats.departures));
    reg->counter("deploy.fault.arrivals").inc(
        static_cast<std::uint64_t>(stats.arrivals));
    reg->counter("deploy.quarantines").inc(
        static_cast<std::uint64_t>(stats.quarantines));
    reg->counter("deploy.readmissions").inc(
        static_cast<std::uint64_t>(stats.readmissions));
    reg->counter("deploy.ladder_steps").inc(
        static_cast<std::uint64_t>(stats.ladder_steps));
    reg->counter("deploy.watchdog_fires").inc(
        static_cast<std::uint64_t>(stats.watchdog_fires));
    // Stamped with the epoch so parallel-chunk merges keep the newest
    // epoch's value regardless of merge order (see Gauge::merge_from).
    reg->gauge("deploy.mean_health")
        .set(stats.mean_health, static_cast<std::uint64_t>(epoch_) + 1);
  }
  if (obs::TimeSeriesRegistry* ts = obs::timeseries()) {
    const auto e = static_cast<std::uint64_t>(epoch_);
    ts->series("deploy.confirmation_rate").record(e, stats.confirmation_rate());
    ts->series("deploy.mean_health").record(e, stats.mean_health);
    ts->series("deploy.offered")
        .record(e, static_cast<double>(stats.offered));
    ts->series("deploy.unrecovered")
        .record(e, static_cast<double>(stats.unrecovered));
    ts->series("deploy.deferred")
        .record(e, static_cast<double>(stats.deferred));
    ts->series("deploy.live_aps").record(e, stats.live_aps);
    ts->series("deploy.active_clients").record(e, stats.active_clients);
    ts->series("deploy.quarantined_clients")
        .record(e, stats.quarantined_clients);
    ts->series("deploy.handoffs").record(e, stats.handoffs);
    // Per-AP health only for APs that served: a dead AP's column goes
    // blank in the CSV, which is exactly how an outage should read.
    for (const int id : serving) {
      ts->series(ap_health_series(id))
          .record(e, aps_[static_cast<std::size_t>(id)].last_health);
    }
  }
  if (obs::TraceSink* sink = obs::trace()) {
    // Epochs have no shared sim clock; one synthetic second per epoch
    // keeps the timeline ordered and readable.
    sink->complete(
        "epoch", static_cast<double>(epoch_) * 1e6, 1e6, /*tid=*/0,
        {{"offered", std::to_string(stats.offered)},
         {"confirmed", std::to_string(stats.confirmed)},
         {"live_aps", std::to_string(stats.live_aps)},
         {"quarantined", std::to_string(stats.quarantined_clients)}});
  }

  result_.epochs.push_back(stats);
  result_.offered += stats.offered;
  result_.confirmed += stats.confirmed;
  result_.unrecovered += stats.unrecovered;
  result_.deferred += stats.deferred;
  result_.decisions += stats.decisions;
  result_.handoffs += static_cast<std::uint64_t>(stats.handoffs);
  result_.quarantines += static_cast<std::uint64_t>(stats.quarantines);
  result_.readmissions += static_cast<std::uint64_t>(stats.readmissions);
  result_.watchdog_fires += static_cast<std::uint64_t>(stats.watchdog_fires);
  ++epoch_;
  return stats;
}

void DeploymentEngine::audit_epoch(const EpochStats& stats,
                                   const std::vector<int>& served_by) const {
  EpochInvariants inv;
  inv.epoch = epoch_;
  inv.offered = stats.offered;
  inv.confirmed = stats.confirmed;
  inv.unrecovered = stats.unrecovered;
  inv.deferred = stats.deferred;
  inv.ap_alive.reserve(aps_.size());
  for (const ApState& ap : aps_) inv.ap_alive.push_back(ap.alive ? 1 : 0);
  inv.active.reserve(clients_.size());
  inv.quarantined.reserve(clients_.size());
  inv.assignment.reserve(clients_.size());
  for (const ClientState& c : clients_) {
    inv.active.push_back(c.active ? 1 : 0);
    inv.quarantined.push_back((c.active && c.quarantined) ? 1 : 0);
    inv.assignment.push_back(c.ap);
  }
  inv.served_by = served_by;
  auditor_->check(inv);
}

DeploymentResult DeploymentEngine::run_epochs(int n) {
  SIC_CHECK(n >= 0);
  for (int i = 0; i < n; ++i) (void)run_epoch();
  return result_;
}

}  // namespace sic::mac
