/// sic_lint engine tests: every seeded fixture violation is caught by its
/// rule at the expected file:line, clean code stays clean, suppressions and
/// the R2 baseline behave as documented.

#include "lint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace sic::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string{SIC_LINT_FIXTURE_DIR} + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in{fixture_path(name), std::ios::binary};
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Finding> lint_fixture(const std::string& name) {
  return lint_file(fixture_path(name), read_fixture(name));
}

bool has_finding(const std::vector<Finding>& findings,
                 const std::string& rule, int line) {
  for (const Finding& f : findings) {
    if (f.rule == rule && f.line == line) return true;
  }
  return false;
}

TEST(SicLint, R1CatchesPowAndLog10AtSeededLines) {
  const auto findings = lint_fixture("r1_pow10.cpp");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(has_finding(findings, "R1", 6));   // pow(10, db/10)
  EXPECT_TRUE(has_finding(findings, "R1", 10));  // 10*log10(ratio)
  EXPECT_EQ(findings[0].path, fixture_path("r1_pow10.cpp"));
}

TEST(SicLint, R2CatchesSuffixedDoubleInHeader) {
  const auto findings = lint_fixture("r2_raw_double.hpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R2");
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_EQ(findings[0].symbol, "tx_power_dbm");
}

TEST(SicLint, R3CatchesRandClockAndUnorderedIteration) {
  const auto findings = lint_fixture("r3_determinism.cpp");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_TRUE(has_finding(findings, "R3", 7));   // std::rand
  EXPECT_TRUE(has_finding(findings, "R3", 11));  // system_clock
  EXPECT_TRUE(has_finding(findings, "R3", 17));  // range-for over unordered
}

TEST(SicLint, R4CatchesMutatorsInValuePositions) {
  const auto findings = lint_fixture("r4_impure_observer.cpp");
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_TRUE(has_finding(findings, "R4", 17));  // return ...inc()
  EXPECT_TRUE(has_finding(findings, "R4", 21));  // n = ...inc()
  EXPECT_TRUE(has_finding(findings, "R4", 26));  // consume(...inc())
  EXPECT_TRUE(has_finding(findings, "R4", 30));  // acc += ...inc()
}

TEST(SicLint, R4CatchesTimeSeriesRecordInValuePositions) {
  const auto findings = lint_fixture("r4_impure_timeseries.cpp");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_TRUE(has_finding(findings, "R4", 17));  // return ...record()
  EXPECT_TRUE(has_finding(findings, "R4", 21));  // e = ...record()
  EXPECT_TRUE(has_finding(findings, "R4", 26));  // consume(...record())
}

TEST(SicLint, R3StaysHotOnNaiveSpatialIndex) {
  // The shipped SpatialGridIndex is deterministic by construction (flat CSR
  // arrays, canonical order) and lints clean; this fixture pins that the
  // hash-bucketed alternative would NOT get past R3.
  const auto findings = lint_fixture("r3_spatial_index.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(has_finding(findings, "R3", 18));  // range-for over cells
  // The membership lookup (find != end) and the CSR struct stay clean.
}

TEST(SicLint, R3ExemptsEndInMembershipComparisons) {
  const std::string src =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "bool has(int k) { return m.find(k) != m.end(); }\n"
      "bool has2(int k) {\n"
      "  const auto it = m.find(k);\n"
      "  return it != m.end() && it->second > 0;\n"
      "}\n"
      "bool has3(int k) { return m.end() == m.find(k); }\n"
      "auto first() { return m.begin(); }\n";
  const auto findings = lint_file("src/core/foo.cpp", src);
  ASSERT_EQ(findings.size(), 1u);  // only the begin() on line 9
  EXPECT_EQ(findings[0].rule, "R3");
  EXPECT_EQ(findings[0].line, 9);
}

TEST(SicLint, CleanFixtureHasNoFindings) {
  EXPECT_TRUE(lint_fixture("clean.cpp").empty());
}

TEST(SicLint, SuppressionsCoverSameLinePrecedingLineAndLists) {
  const auto findings = lint_fixture("suppressed.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R1");
  EXPECT_EQ(findings[0].line, 18);  // allow(R2) does not silence R1
}

TEST(SicLint, SanitizePreservesLinesAndBlanksLiterals) {
  const std::string src =
      "int a; // pow(10, x/10)\n"
      "const char* s = \"log10(\";\n"
      "/* system_clock */ int b;\n";
  const std::string out = sanitize(src);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_EQ(out.size(), src.size());
  EXPECT_EQ(out.find("pow"), std::string::npos);
  EXPECT_EQ(out.find("log10"), std::string::npos);
  EXPECT_EQ(out.find("system_clock"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(SicLint, SanitizeHandlesDigitSeparatorsAndRawStrings) {
  const std::string src =
      "constexpr double c = 299'792'458.0;\n"
      "const char* re = R\"(\\blog10\\s*\\()\";\n";
  const std::string out = sanitize(src);
  EXPECT_NE(out.find("299'792'458.0"), std::string::npos);
  EXPECT_EQ(out.find("log10"), std::string::npos);
}

TEST(SicLint, SanitizeHandlesEncodingPrefixedRawStrings) {
  // An unescaped quote + backslash inside the raw string would desync an
  // ordinary-string scanner; the u8/u/U/L prefixes must enter raw mode.
  const std::string src =
      "const char8_t* a = u8R\"(log10( \" \\)\";\n"
      "const char16_t* b = uR\"(pow(10, \" )\";\n"
      "const wchar_t* w = LR\"(system_clock \" )\";\n"
      "int after = 1;\n";
  const std::string out = sanitize(src);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_EQ(out.find("log10"), std::string::npos);
  EXPECT_EQ(out.find("pow"), std::string::npos);
  EXPECT_EQ(out.find("system_clock"), std::string::npos);
  EXPECT_NE(out.find("int after = 1;"), std::string::npos);
}

TEST(SicLint, CommentsOnlyKeepsCommentsAndBlanksCodeAndLiterals) {
  const std::string src =
      "int x = 1; // trailing note\n"
      "const char* s = \"sic-lint: allow(R1)\";\n"
      "/* block */ int y = 2;\n";
  const std::string out = comments_only(src);
  EXPECT_EQ(out.size(), src.size());
  EXPECT_NE(out.find("// trailing note"), std::string::npos);
  EXPECT_NE(out.find("/* block */"), std::string::npos);
  EXPECT_EQ(out.find("int x"), std::string::npos);
  EXPECT_EQ(out.find("allow"), std::string::npos);
}

TEST(SicLint, SuppressionInsideStringLiteralDoesNotSuppress) {
  // The marker in a string literal on the violating line (line 2) and on a
  // literal-only line above a violation (lines 3-4) must both stay inert;
  // a real trailing comment (line 5) still suppresses.
  const std::string src =
      "#include <cmath>\n"
      "double f(double db) { const char* m = \"sic-lint: allow(R1)\"; "
      "return std::pow(10.0, db / 10.0); }\n"
      "const char* only = \"// sic-lint: allow(R1)\";\n"
      "double g(double db) { return std::pow(10.0, db / 10.0); }\n"
      "double h(double db) { return std::pow(10.0, db / 10.0); }  "
      "// sic-lint: allow(R1)\n";
  const auto findings = lint_file("src/core/foo.cpp", src);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(has_finding(findings, "R1", 2));
  EXPECT_TRUE(has_finding(findings, "R1", 4));
}

TEST(SicLint, UnitsHeaderIsExemptFromR1) {
  const std::string src = "inline double f(double x) { return log10(x); }\n";
  EXPECT_TRUE(lint_file("src/util/units.hpp", src).empty());
  EXPECT_FALSE(lint_file("src/core/foo.cpp", src).empty());
}

TEST(SicLint, ObsAndBenchArePathExemptFromR3) {
  const std::string src = "auto t = std::chrono::system_clock::now();\n";
  EXPECT_TRUE(lint_file("src/obs/scoped_timer.cpp", src).empty());
  EXPECT_TRUE(lint_file("bench/bench_util.hpp", src).empty());
  EXPECT_FALSE(lint_file("src/mac/upload_sim.cpp", src).empty());
}

TEST(SicLint, BaselineSuppressesListedR2AndFlagsStaleEntries) {
  std::vector<Finding> findings;
  findings.push_back(Finding{"R2", "src/a.hpp", 3, "tx_dbm", "msg"});
  findings.push_back(Finding{"R2", "src/b.hpp", 9, "loss_db", "msg"});

  const auto baseline = parse_baseline(
      "# comment\n"
      "src/a.hpp:tx_dbm\n"
      "\n"
      "src/gone.hpp:old_mw  # trailing comment\n");
  ASSERT_EQ(baseline.size(), 2u);

  const auto out = apply_baseline(findings, baseline);
  ASSERT_EQ(out.size(), 2u);
  // The unbaselined finding survives; the stale entry becomes an error.
  EXPECT_EQ(out[0].rule, "R2");
  EXPECT_EQ(out[0].symbol, "loss_db");
  EXPECT_EQ(out[1].rule, "baseline");
  EXPECT_EQ(out[1].path, "src/gone.hpp:old_mw");
}

TEST(SicLint, FormatFindingIsPathLineRuleMessage) {
  const Finding f{"R1", "src/x.cpp", 42, "", "boom"};
  EXPECT_EQ(format_finding(f), "src/x.cpp:42: [R1] boom");
}

}  // namespace
}  // namespace sic::lint
