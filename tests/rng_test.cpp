#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace sic {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng{7};
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const int v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (const int count : seen) EXPECT_GT(count, 700);  // roughly uniform
}

TEST(Rng, NormalMoments) {
  Rng rng{11};
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kN;
  const double var = sum2 / kN - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, ChanceProbability) {
  Rng rng{13};
  int hits = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{99};
  Rng child = parent.fork();
  // The child stream is deterministic given the parent seed...
  Rng parent2{99};
  Rng child2 = parent2.fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(child.uniform(0.0, 1.0), child2.uniform(0.0, 1.0));
  }
}

TEST(Rng, ForkDependsOnDrawOrder) {
  // Documented hazard: fork() advances the parent engine, so the child
  // stream depends on how many draws preceded it. This is why parallel
  // sweeps must use Rng::at() instead.
  Rng parent1{99};
  Rng child1 = parent1.fork();
  Rng parent2{99};
  (void)parent2.uniform(0.0, 1.0);
  Rng child2 = parent2.fork();
  EXPECT_NE(child1.uniform(0.0, 1.0), child2.uniform(0.0, 1.0));
}

TEST(Rng, AtIsDeterministicPerIndex) {
  for (const std::uint64_t index : {0ull, 1ull, 17ull, 1'000'000ull}) {
    Rng a = Rng::at(42, index);
    Rng b = Rng::at(42, index);
    for (int i = 0; i < 50; ++i) {
      EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
    }
  }
}

TEST(Rng, AtIsIndependentOfConstructionOrder) {
  // Unlike fork(), at() is a pure function of (seed, index): deriving
  // substreams in any order, from any thread, yields the same streams.
  Rng forward_first = Rng::at(7, 3);
  Rng backward_second = Rng::at(7, 9);
  Rng backward_first = Rng::at(7, 9);
  Rng forward_second = Rng::at(7, 3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(forward_first.uniform(0.0, 1.0),
                     forward_second.uniform(0.0, 1.0));
    EXPECT_DOUBLE_EQ(backward_first.uniform(0.0, 1.0),
                     backward_second.uniform(0.0, 1.0));
  }
}

TEST(Rng, AtDistinctIndicesDiffer) {
  Rng a = Rng::at(5, 0);
  Rng b = Rng::at(5, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm{0};
  const std::uint64_t a = sm.next();
  const std::uint64_t b = sm.next();
  EXPECT_NE(a, b);
  SplitMix64 sm2{0};
  EXPECT_EQ(sm2.next(), a);
  EXPECT_EQ(sm2.next(), b);
}

}  // namespace
}  // namespace sic
