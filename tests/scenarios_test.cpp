#include "topology/scenarios.hpp"

#include <gtest/gtest.h>

namespace sic::topology {
namespace {

TEST(Scenarios, EwlanShape) {
  const Deployment d = make_ewlan();
  ASSERT_EQ(d.nodes.size(), 6u);
  EXPECT_EQ(d.nodes[0].role, NodeRole::kAccessPoint);
  EXPECT_EQ(d.nodes[1].role, NodeRole::kAccessPoint);
  for (std::size_t i = 2; i < 6; ++i) {
    EXPECT_EQ(d.nodes[i].role, NodeRole::kClient);
  }
  // Each AP's clients are within its cell.
  const auto& ap1 = d.by_role(NodeRole::kAccessPoint, 0);
  const auto& ap2 = d.by_role(NodeRole::kAccessPoint, 1);
  EXPECT_LE(distance(d.by_role(NodeRole::kClient, 0).position, ap1.position),
            15.0 + 1e-9);
  EXPECT_LE(distance(d.by_role(NodeRole::kClient, 2).position, ap2.position),
            15.0 + 1e-9);
}

TEST(Scenarios, EwlanClientsHearOwnApBetter) {
  const Deployment d = make_ewlan(/*ap_separation_m=*/40.0,
                                  /*cell_radius_m=*/12.0, /*seed=*/3);
  const auto& ap1 = d.by_role(NodeRole::kAccessPoint, 0);
  const auto& ap2 = d.by_role(NodeRole::kAccessPoint, 1);
  const auto& c1 = d.by_role(NodeRole::kClient, 0);
  EXPECT_GT(d.rss(c1, ap1).value(), d.rss(c1, ap2).value());
}

TEST(Scenarios, ResidentialC2ClosestToNeighborAp) {
  // The Section 4.2 configuration: C2 hears AP2 louder than its own AP1.
  const Deployment d = make_residential();
  const auto& ap1 = d.by_role(NodeRole::kAccessPoint, 0);
  const auto& ap2 = d.by_role(NodeRole::kAccessPoint, 1);
  const auto& c2 = d.by_role(NodeRole::kClient, 1);
  EXPECT_GT(d.rss(ap2, c2).value(), d.rss(ap1, c2).value());
}

TEST(Scenarios, MeshChainHopPattern) {
  const Deployment d = make_mesh_chain(35.0, 10.0);
  ASSERT_EQ(d.nodes.size(), 4u);
  const auto& a = d.nodes[0];
  const auto& c = d.nodes[1];
  const auto& dd = d.nodes[2];
  const auto& e = d.nodes[3];
  EXPECT_DOUBLE_EQ(distance(a.position, c.position), 35.0);
  EXPECT_DOUBLE_EQ(distance(c.position, dd.position), 10.0);
  EXPECT_DOUBLE_EQ(distance(dd.position, e.position), 35.0);
  // Long-short-long: C hears D much louder than it hears A.
  EXPECT_GT(d.rss(dd, c).value(), d.rss(a, c).value());
}

TEST(Scenarios, RssSymmetricAndPositive) {
  const Deployment d = make_ewlan();
  for (const auto& from : d.nodes) {
    for (const auto& to : d.nodes) {
      if (from.id == to.id) continue;
      EXPECT_GT(d.rss(from, to).value(), 0.0);
      EXPECT_DOUBLE_EQ(d.rss(from, to).value(), d.rss(to, from).value());
    }
  }
  EXPECT_GT(d.noise().value(), 0.0);
}

TEST(Scenarios, ByRoleThrowsWhenMissing) {
  const Deployment d = make_mesh_chain();
  EXPECT_THROW((void)d.by_role(NodeRole::kAccessPoint, 0), std::logic_error);
}

}  // namespace
}  // namespace sic::topology
