#ifndef SICMAC_TRACE_IO_HPP
#define SICMAC_TRACE_IO_HPP

/// \file io.hpp
/// CSV serialization of RSSI traces. Format (header included):
///
///   timestamp_s,ap_id,client_id,rssi_dbm
///
/// A real building trace post-processed to the paper's snapshot form would
/// be loaded through the same reader, which is the point of the exercise —
/// the evaluation pipeline is byte-for-byte agnostic to whether the trace
/// is synthetic.

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "trace/snapshot.hpp"

namespace sic::trace {

/// The trace file could not be opened / accessed (environment problem, not
/// content). Derives from std::runtime_error so existing catch sites and
/// tests keep working; the CLI maps it to its own exit code.
class TraceIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The trace file opened fine but its content is not a valid trace CSV.
/// The message always carries the 1-based line number and the offending
/// line verbatim.
class TraceFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void write_csv(const RssiTrace& trace, std::ostream& os);
void write_csv_file(const RssiTrace& trace, const std::string& path);

/// Parses a trace. Tolerates CRLF line endings, trailing spaces/tabs, and
/// blank or whitespace-only lines; anything else malformed throws
/// TraceFormatError naming the line. Snapshots are keyed by timestamp;
/// rows may arrive in any order.
[[nodiscard]] RssiTrace read_csv(std::istream& is);
[[nodiscard]] RssiTrace read_csv_file(const std::string& path);

}  // namespace sic::trace

#endif  // SICMAC_TRACE_IO_HPP
