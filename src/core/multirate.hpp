#ifndef SICMAC_CORE_MULTIRATE_HPP
#define SICMAC_CORE_MULTIRATE_HPP

/// \file multirate.hpp
/// Section 5.3: multirate packetization [15]. Under SIC the stronger
/// client is interference-limited only while the weaker client is still
/// on air; once the weaker packet ends, the stronger client can switch the
/// *rest of its packet* to its clean-channel best rate (Fig. 10f).
///
///   t₂ = L/r₂ (weaker finishes first in the interesting regime)
///   Z_mr = t₂ + max(0, L − r₁·t₂) / r₁'     with r₁' = r(S¹/N₀)
///
/// When the stronger client would anyway finish first (extreme disparity),
/// the weaker clean-rate transmission is the bottleneck and multirate
/// cannot help — Z_mr = Z₊SIC.

#include "core/upload_pair.hpp"

namespace sic::core {

struct MultirateResult {
  double airtime = 0.0;
  /// Bits of the stronger packet sent at the interference-limited rate
  /// before the switch point (== L when multirate never engaged).
  double overlap_bits = 0.0;
  bool boosted = false;  ///< whether a rate switch actually happened
};

/// Completion time for the pair with multirate packetization on the
/// stronger client. Never worse than plain SIC (and never better than the
/// weaker packet's own airtime, which lower-bounds the pair).
[[nodiscard]] MultirateResult multirate_airtime_detailed(
    const UploadPairContext& ctx);

[[nodiscard]] double multirate_airtime(const UploadPairContext& ctx);

}  // namespace sic::core

#endif  // SICMAC_CORE_MULTIRATE_HPP
