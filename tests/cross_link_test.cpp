#include "core/cross_link.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

channel::TwoLinkRss rss_db(double s11, double s12, double s21, double s22) {
  return channel::TwoLinkRss{
      Milliwatts{Decibels{s11}.linear()}, Milliwatts{Decibels{s12}.linear()},
      Milliwatts{Decibels{s21}.linear()}, Milliwatts{Decibels{s22}.linear()},
      Milliwatts{1.0}};
}

TEST(CrossLink, ClassificationCoversFigFiveCases) {
  EXPECT_EQ(classify_cross_link(rss_db(30, 10, 10, 30)),
            CrossLinkCase::kCaptureBoth);  // (a)
  EXPECT_EQ(classify_cross_link(rss_db(30, 10, 35, 20)),
            CrossLinkCase::kSicAtR2);  // (b): R2 hears T1 louder
  EXPECT_EQ(classify_cross_link(rss_db(10, 30, 10, 30)),
            CrossLinkCase::kSicAtR1);  // (c)
  EXPECT_EQ(classify_cross_link(rss_db(10, 30, 35, 20)),
            CrossLinkCase::kSicAtBoth);  // (d)
}

TEST(CrossLink, CaptureCaseHasNoSicGain) {
  const auto r = evaluate_cross_link(rss_db(30, 10, 10, 30), kShannon);
  EXPECT_EQ(r.kase, CrossLinkCase::kCaptureBoth);
  EXPECT_FALSE(r.sic_feasible);
  EXPECT_DOUBLE_EQ(r.gain, 1.0);
  EXPECT_TRUE(std::isinf(r.concurrent_airtime));
}

TEST(CrossLink, CaseBFeasibilityCondition) {
  // Paper: SIC feasible at R2 iff S₂¹/(S₂²+N₀) > S₁¹/(S₁²+N₀).
  // Feasible example: T1 strong at R1 (30 vs 10) and very strong at R2.
  const auto feasible = evaluate_cross_link(rss_db(30, 10, 45, 25), kShannon);
  EXPECT_EQ(feasible.kase, CrossLinkCase::kSicAtR2);
  EXPECT_TRUE(feasible.sic_feasible);
  // Infeasible: T1 barely louder than T2 at R2.
  const auto infeasible =
      evaluate_cross_link(rss_db(30, 10, 26, 25), kShannon);
  EXPECT_EQ(infeasible.kase, CrossLinkCase::kSicAtR2);
  EXPECT_FALSE(infeasible.sic_feasible);
  EXPECT_DOUBLE_EQ(infeasible.gain, 1.0);
}

TEST(CrossLink, CaseCMirrorsCaseB) {
  const auto rss = rss_db(30, 10, 45, 25);
  const auto b = evaluate_cross_link(rss, kShannon);
  const auto c = evaluate_cross_link(rss.mirrored(), kShannon);
  EXPECT_EQ(c.kase, CrossLinkCase::kSicAtR1);
  EXPECT_EQ(b.sic_feasible, c.sic_feasible);
  EXPECT_NEAR(b.gain, c.gain, 1e-12);
  EXPECT_NEAR(b.concurrent_airtime, c.concurrent_airtime, 1e-15);
}

TEST(CrossLink, CaseDNeedsBothConditions) {
  // Fig. 5d: each receiver closer to the foreign transmitter. Make the
  // cross gains huge so both conditions hold: S₂¹/(S₂²+1) > S₁¹ and
  // S₁²/(S₁¹+1) > S₂² (linear, noise-normalized).
  // s11=6dB (4x), s22=6dB; cross RSS 40 dB (1e4).
  const auto feasible = evaluate_cross_link(rss_db(6, 40, 40, 6), kShannon);
  EXPECT_EQ(feasible.kase, CrossLinkCase::kSicAtBoth);
  EXPECT_TRUE(feasible.sic_feasible);
  EXPECT_GT(feasible.gain, 1.0);
  // Weaken one cross link: the asymmetric condition fails.
  const auto infeasible = evaluate_cross_link(rss_db(6, 40, 8, 6), kShannon);
  EXPECT_EQ(infeasible.kase, CrossLinkCase::kSicAtBoth);
  EXPECT_FALSE(infeasible.sic_feasible);
}

TEST(CrossLink, CaseDConcurrentIsEquation9) {
  const auto rss = rss_db(6, 40, 40, 6);
  const auto r = evaluate_cross_link(rss, kShannon, 12000.0);
  const double r1 = kShannon.rate(rss.s11 / rss.noise).value();
  const double r2 = kShannon.rate(rss.s22 / rss.noise).value();
  EXPECT_NEAR(r.concurrent_airtime,
              std::max(12000.0 / r1, 12000.0 / r2), 1e-12);
  // And Z₋ is the sum of the same two terms.
  EXPECT_NEAR(r.serial_airtime, 12000.0 / r1 + 12000.0 / r2, 1e-12);
}

TEST(CrossLink, GainAlwaysAtLeastOne) {
  Rng rng{12};
  for (int i = 0; i < 2000; ++i) {
    const auto rss = rss_db(rng.uniform(0.0, 45.0), rng.uniform(0.0, 45.0),
                            rng.uniform(0.0, 45.0), rng.uniform(0.0, 45.0));
    const auto r = evaluate_cross_link(rss, kShannon);
    EXPECT_GE(r.gain, 1.0);
    if (!r.sic_feasible) {
      EXPECT_DOUBLE_EQ(r.gain, 1.0);
    }
  }
}

TEST(CrossLink, SerialAirtimeUsesCleanRates) {
  const auto rss = rss_db(20, 5, 5, 25);
  const auto r = evaluate_cross_link(rss, kShannon, 6000.0);
  const double expect =
      6000.0 / kShannon.rate(Decibels{20.0}.linear()).value() +
      6000.0 / kShannon.rate(Decibels{25.0}.linear()).value();
  EXPECT_NEAR(r.serial_airtime, expect, 1e-12);
}

TEST(CrossLink, PackingGainDominatesPlainGain) {
  Rng rng{13};
  for (int i = 0; i < 500; ++i) {
    const auto rss = rss_db(rng.uniform(0.0, 45.0), rng.uniform(0.0, 45.0),
                            rng.uniform(0.0, 45.0), rng.uniform(0.0, 45.0));
    const double plain = evaluate_cross_link(rss, kShannon).gain;
    const double packed = cross_link_packing_gain(rss, kShannon);
    EXPECT_GE(packed + 1e-12, plain);
  }
}

TEST(CrossLink, SectionThreeTwoWorkedExample) {
  // The 40/50/30 dB example of Section 3.2 (case c: interference stronger
  // at R1): T2→R2 at the rate of a 30 dB link is NOT decodable at R1
  // (SINR 10 dB), so concurrent SIC for the pair is infeasible.
  const auto rss = rss_db(40, 50, /*s21: T1 at R2, weak*/ 5, 30);
  const auto r = evaluate_cross_link(rss, kShannon);
  EXPECT_EQ(r.kase, CrossLinkCase::kSicAtR1);
  EXPECT_FALSE(r.sic_feasible);
}

}  // namespace
}  // namespace sic::core
