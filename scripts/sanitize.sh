#!/usr/bin/env bash
# Builds the tree under a sanitizer preset and runs tier-1 tests under it.
# Any heap error, leak, UB, or data race aborts (-fno-sanitize-recover=all).
#
#   scripts/sanitize.sh [asan|tsan] [extra ctest args...]
#
# asan (default): ASan + UBSan over the full ctest suite.
# tsan: ThreadSanitizer over the concurrency surface — the thread pool and
#       the parallel sweep engine (everything else is single-threaded and
#       already covered by the asan run).
set -euo pipefail
cd "$(dirname "$0")/.."

mode="asan"
if [[ $# -gt 0 && ( "$1" == "asan" || "$1" == "tsan" ) ]]; then
  mode="$1"
  shift
fi

if [[ "$mode" == "tsan" ]]; then
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --preset tsan -j "$(nproc)" \
      -R 'ThreadPool|ParallelSweep' "$@"
else
  cmake --preset sanitize
  cmake --build --preset sanitize -j "$(nproc)"
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    ctest --preset sanitize -j "$(nproc)" "$@"
fi
