#include "phy/rate_adapter.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "phy/capacity.hpp"
#include "util/rng.hpp"

namespace sic::phy {
namespace {

TEST(ShannonRateAdapter, MatchesShannonRate) {
  const ShannonRateAdapter adapter{megahertz(20.0)};
  for (const double sinr : {0.1, 1.0, 10.0, 1000.0}) {
    EXPECT_DOUBLE_EQ(adapter.rate(sinr).value(),
                     shannon_rate(megahertz(20.0), sinr).value());
  }
  EXPECT_EQ(adapter.name(), "shannon");
}

TEST(DiscreteRateAdapter, QuantizesToTable) {
  const DiscreteRateAdapter adapter{RateTable::dot11g()};
  EXPECT_DOUBLE_EQ(adapter.rate(Decibels{10.0}.linear()).megabits(), 12.0);
  EXPECT_DOUBLE_EQ(adapter.rate(Decibels{2.0}.linear()).value(), 0.0);
  EXPECT_DOUBLE_EQ(adapter.rate(0.0).value(), 0.0);
  EXPECT_EQ(adapter.name(), "802.11g");
}

TEST(RateAdapter, FeasibleIsRateAtLeast) {
  const DiscreteRateAdapter adapter{RateTable::dot11g()};
  const double sinr = Decibels{12.0}.linear();  // supports up to 18 Mbps
  EXPECT_TRUE(adapter.feasible(megabits_per_second(18.0), sinr));
  EXPECT_TRUE(adapter.feasible(megabits_per_second(6.0), sinr));
  EXPECT_FALSE(adapter.feasible(megabits_per_second(24.0), sinr));
}

TEST(RateAdapter, DiscreteNeverExceedsShannonAtRealisticSnr) {
  // The discrete table is a *practical* ladder: it must sit at or below the
  // information-theoretic ceiling wherever the ladder is defined.
  const ShannonRateAdapter shannon{megahertz(20.0)};
  const DiscreteRateAdapter discrete{RateTable::dot11g()};
  for (double db = 0.0; db <= 40.0; db += 0.5) {
    const double sinr = Decibels{db}.linear();
    EXPECT_LE(discrete.rate(sinr).value(), shannon.rate(sinr).value())
        << "at " << db << " dB";
  }
}

TEST(RateAdapter, FinerTablesCaptureMoreOfShannon) {
  // The paper's core trend: more rates ⇒ less slack left for SIC.
  const ShannonRateAdapter shannon{megahertz(20.0)};
  const DiscreteRateAdapter b{RateTable::dot11b()};
  const DiscreteRateAdapter g{RateTable::dot11g()};
  double slack_b = 0.0;
  double slack_g = 0.0;
  int samples = 0;
  for (double db = 6.0; db <= 30.0; db += 0.5) {
    const double sinr = Decibels{db}.linear();
    const double cap = shannon.rate(sinr).value();
    slack_b += (cap - b.rate(sinr).value()) / cap;
    slack_g += (cap - g.rate(sinr).value()) / cap;
    ++samples;
  }
  EXPECT_GT(slack_b / samples, slack_g / samples);
}

/// SINR inputs that stress the batched paths: dense dB grids, non-positive
/// and non-finite values, every table cutover exactly and ±1 ulp — the
/// inputs where a linear-domain shortcut that is merely *approximately*
/// equivalent to the dB comparison would diverge from the scalar path.
std::vector<double> adversarial_sinrs(const RateAdapter& adapter) {
  std::vector<double> sinrs = {0.0,
                               -1.0,
                               -1e300,
                               std::numeric_limits<double>::quiet_NaN(),
                               std::numeric_limits<double>::infinity(),
                               std::numeric_limits<double>::denorm_min(),
                               std::numeric_limits<double>::min(),
                               std::numeric_limits<double>::max(),
                               1e-300,
                               1e300};
  for (double db = -20.0; db <= 60.0; db += 0.03125) {
    sinrs.push_back(Decibels{db}.linear());
  }
  if (const auto* discrete = dynamic_cast<const DiscreteRateAdapter*>(&adapter)) {
    for (const double cut : discrete->table().linear_cutovers()) {
      sinrs.push_back(std::nextafter(cut, 0.0));
      sinrs.push_back(cut);
      sinrs.push_back(
          std::nextafter(cut, std::numeric_limits<double>::infinity()));
      // The exact dB threshold's analytic linear image, which may differ
      // from the cutover by an ulp or two — the historical scalar input.
      // Deliberately the raw conversion, not Decibels::linear(): the point
      // is to probe inputs an independent computation would produce.
      const double analytic =
          std::pow(10.0, Decibels::from_linear(cut).value() / 10.0);
      sinrs.push_back(std::nextafter(analytic, 0.0));
      sinrs.push_back(analytic);
      sinrs.push_back(
          std::nextafter(analytic, std::numeric_limits<double>::infinity()));
    }
  }
  Rng rng{317};
  for (int i = 0; i < 500; ++i) {
    sinrs.push_back(rng.uniform(-2.0, 1e4));
  }
  return sinrs;
}

TEST(RateSpan, BitIdenticalToScalarRateAcrossAdapters) {
  const ShannonRateAdapter shannon{megahertz(20.0)};
  const DiscreteRateAdapter b{RateTable::dot11b()};
  const DiscreteRateAdapter g{RateTable::dot11g()};
  const DiscreteRateAdapter n{RateTable::dot11n()};
  for (const RateAdapter* adapter :
       {static_cast<const RateAdapter*>(&shannon),
        static_cast<const RateAdapter*>(&b),
        static_cast<const RateAdapter*>(&g),
        static_cast<const RateAdapter*>(&n)}) {
    const std::vector<double> sinrs = adversarial_sinrs(*adapter);
    std::vector<BitsPerSecond> batched(sinrs.size());
    adapter->rate_span(sinrs, batched);
    for (std::size_t i = 0; i < sinrs.size(); ++i) {
      const BitsPerSecond scalar = adapter->rate(sinrs[i]);
      // Bit-pattern equality so NaN-propagating inputs (Shannon of NaN)
      // still count as identical.
      EXPECT_EQ(std::bit_cast<std::uint64_t>(batched[i].value()),
                std::bit_cast<std::uint64_t>(scalar.value()))
          << adapter->name() << " at sinr " << sinrs[i] << " (index " << i
          << "): " << batched[i].value() << " vs " << scalar.value();
    }
  }
}

TEST(RateSpan, OddLengthsExerciseUnrollRemainder) {
  // Lengths around the 4-lane unroll boundary, including 0.
  const ShannonRateAdapter shannon{megahertz(20.0)};
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 255u}) {
    std::vector<double> sinrs;
    Rng rng{n + 1};
    for (std::size_t i = 0; i < n; ++i) sinrs.push_back(rng.uniform(0.0, 50.0));
    std::vector<BitsPerSecond> batched(n);
    shannon.rate_span(sinrs, batched);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batched[i].value(), shannon.rate(sinrs[i]).value());
    }
  }
}

TEST(RateTableCutovers, AreExactDecisionBoundaries) {
  // Each cutover is the *smallest* double meeting its dB threshold: the
  // value itself meets it, one ulp below does not.
  for (const RateTable* table :
       {&RateTable::dot11b(), &RateTable::dot11g(), &RateTable::dot11n()}) {
    const auto entries = table->entries();
    const auto cuts = table->linear_cutovers();
    ASSERT_EQ(cuts.size(), entries.size());
    for (std::size_t i = 0; i < cuts.size(); ++i) {
      EXPECT_GE(Decibels::from_linear(cuts[i]), entries[i].min_sinr)
          << table->name() << " entry " << i;
      EXPECT_LT(Decibels::from_linear(std::nextafter(cuts[i], 0.0)),
                entries[i].min_sinr)
          << table->name() << " entry " << i;
    }
    // Steps: 0 bps, then the table's rates in order.
    const auto steps = table->rate_steps();
    ASSERT_EQ(steps.size(), entries.size() + 1);
    EXPECT_EQ(steps[0].value(), 0.0);
    for (std::size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(steps[i + 1].value(), entries[i].rate.value());
    }
  }
}

}  // namespace
}  // namespace sic::phy
