#include "mac/fault_model.hpp"

#include <cmath>
#include <string>

#include "util/check.hpp"

namespace sic::mac {

namespace {

/// NaN-proof range check: a plain `x >= lo && x <= hi` is false for NaN
/// only because *every* comparison is, so the two failure classes need
/// separate, explicit messages to be diagnosable.
void require_probability(double value, const char* name) {
  if (std::isnan(value)) {
    throw FaultConfigError(std::string(name) + " is NaN");
  }
  if (value < 0.0 || value > 1.0) {
    throw FaultConfigError(std::string(name) + " must be in [0,1], got " +
                           std::to_string(value));
  }
}

}  // namespace

void FaultConfig::validate(int n_clients) const {
  if (std::isnan(stale_rss_sigma.value())) {
    throw FaultConfigError("stale_rss_sigma is NaN");
  }
  if (stale_rss_sigma.value() < 0.0) {
    throw FaultConfigError("stale_rss_sigma must be >= 0 dB, got " +
                           std::to_string(stale_rss_sigma.value()));
  }
  require_probability(stale_rss_rho, "stale_rss_rho");
  require_probability(cancellation_failure_prob, "cancellation_failure_prob");
  require_probability(ack_loss_prob, "ack_loss_prob");
  for (const Decibels d : initial_drift) {
    if (!std::isfinite(d.value())) {
      throw FaultConfigError("initial_drift entries must be finite dB");
    }
  }
  if (n_clients >= 0 && !initial_drift.empty() &&
      static_cast<int>(initial_drift.size()) != n_clients) {
    throw FaultConfigError("initial_drift has " +
                           std::to_string(initial_drift.size()) +
                           " entries for " + std::to_string(n_clients) +
                           " clients");
  }
}

FaultModel::FaultModel(const FaultConfig& config, int n_clients,
                       std::uint64_t seed)
    : config_(config), rng_(seed) {
  config.validate(n_clients);
  if (config_.stale_rss_sigma > Decibels{0.0}) {
    tracks_.reserve(static_cast<std::size_t>(n_clients));
    for (int i = 0; i < n_clients; ++i) {
      tracks_.emplace_back(config_.stale_rss_rho, config_.stale_rss_sigma,
                           rng_);
    }
  }
}

Decibels FaultModel::drift(int client) const {
  if (tracks_.empty() && config_.initial_drift.empty()) return Decibels{0.0};
  Decibels d{0.0};
  if (!config_.initial_drift.empty()) {
    SIC_CHECK(client >= 0 &&
              client < static_cast<int>(config_.initial_drift.size()));
    d = d + config_.initial_drift[static_cast<std::size_t>(client)];
  }
  if (!tracks_.empty()) {
    SIC_CHECK(client >= 0 && client < static_cast<int>(tracks_.size()));
    d = d + tracks_[static_cast<std::size_t>(client)].current();
  }
  return d;
}

Milliwatts FaultModel::true_rss(Milliwatts nominal, int client) const {
  if (tracks_.empty() && config_.initial_drift.empty()) return nominal;
  return nominal * drift(client).linear();
}

void FaultModel::advance_epoch() {
  for (auto& track : tracks_) (void)track.step(rng_);
}

bool FaultModel::should_fail_decode(const Frame& frame, bool sic_path) {
  if (!sic_path || frame.type != FrameType::kData) return false;
  if (config_.cancellation_failure_prob <= 0.0) return false;
  if (!rng_.chance(config_.cancellation_failure_prob)) return false;
  injected_.insert(frame.id);
  ++injected_count_;
  return true;
}

bool FaultModel::was_injected(std::uint64_t frame_id) const {
  return injected_.contains(frame_id);
}

bool FaultModel::ack_lost() {
  if (config_.ack_loss_prob <= 0.0) return false;
  return rng_.chance(config_.ack_loss_prob);
}

}  // namespace sic::mac
