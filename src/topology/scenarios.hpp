#ifndef SICMAC_TOPOLOGY_SCENARIOS_HPP
#define SICMAC_TOPOLOGY_SCENARIOS_HPP

/// \file scenarios.hpp
/// Named wireless-architecture builders mirroring Section 4 / Fig. 7:
/// enterprise WLAN, residential WLAN, and a multihop mesh chain. Examples
/// and integration tests build these instead of ad-hoc node lists.

#include <vector>

#include "channel/pathloss.hpp"
#include "topology/node.hpp"

namespace sic::topology {

/// A set of positioned nodes plus the propagation model tying them together.
struct Deployment {
  std::vector<Node> nodes;
  channel::LogDistancePathLoss pathloss =
      channel::LogDistancePathLoss::for_carrier(/*exponent=*/3.0);
  Dbm noise_floor{-94.0};

  /// RSS (linear) of \p from as heard at \p to under the deployment's
  /// path-loss model.
  [[nodiscard]] Milliwatts rss(const Node& from, const Node& to) const;

  [[nodiscard]] Milliwatts noise() const { return noise_floor.to_milliwatts(); }

  /// First node with the given role+index among that role, ordered by id.
  [[nodiscard]] const Node& by_role(NodeRole role, int index) const;
};

/// Enterprise WLAN (Fig. 7a): two APs \p ap_separation_m apart on a wired
/// backbone, each with two associated clients placed within \p cell_radius_m.
/// Node order: AP1, AP2, C1, C2 (AP1's), C3, C4 (AP2's).
[[nodiscard]] Deployment make_ewlan(double ap_separation_m = 30.0,
                                    double cell_radius_m = 15.0,
                                    std::uint64_t seed = 1);

/// Residential WLAN (Fig. 7b): two apartments side by side; each AP serves
/// its own clients only (WPA-locked). C2 is deliberately placed closer to
/// the *neighbor's* AP, the configuration Section 4.2 identifies as the SIC
/// opportunity. Node order: AP1, AP2, C1, C2 (home 1), C3, C4 (home 2).
[[nodiscard]] Deployment make_residential(double apartment_width_m = 12.0,
                                          std::uint64_t seed = 1);

/// Multihop mesh chain (Section 4.3): A → C → D → E with a long hop, a short
/// hop, and a long hop — the "perfect recipe for SIC at C", where A→C and
/// D→E can run concurrently. Node order: A, C, D, E.
[[nodiscard]] Deployment make_mesh_chain(double long_hop_m = 35.0,
                                         double short_hop_m = 10.0);

}  // namespace sic::topology

#endif  // SICMAC_TOPOLOGY_SCENARIOS_HPP
