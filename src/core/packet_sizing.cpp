#include "core/packet_sizing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace sic::core {

double serial_airtime_unequal(const UploadPairContext& ctx,
                              double bits_stronger, double bits_weaker) {
  SIC_CHECK(ctx.adapter != nullptr);
  SIC_CHECK(bits_stronger >= 0.0 && bits_weaker >= 0.0);
  const auto& a = ctx.arrival;
  return airtime_seconds(bits_stronger, ctx.adapter->rate(a.stronger / a.noise)) +
         airtime_seconds(bits_weaker, ctx.adapter->rate(a.weaker / a.noise));
}

double sic_airtime_unequal(const UploadPairContext& ctx, double bits_stronger,
                           double bits_weaker) {
  SIC_CHECK(bits_stronger >= 0.0 && bits_weaker >= 0.0);
  const auto rates = sic_rates(ctx);
  return std::max(airtime_seconds(bits_stronger, rates.stronger),
                  airtime_seconds(bits_weaker, rates.weaker));
}

PacketSizingPlan fill_gap_with_packet_size(const UploadPairContext& ctx,
                                           double mtu_bits) {
  SIC_CHECK(mtu_bits >= ctx.packet_bits);
  const auto rates = sic_rates(ctx);
  PacketSizingPlan plan;
  const double t_strong = airtime_seconds(ctx.packet_bits, rates.stronger);
  const double t_weak = airtime_seconds(ctx.packet_bits, rates.weaker);
  if (!std::isfinite(t_strong) || !std::isfinite(t_weak)) {
    // SIC infeasible: no sized exchange; serial is the only option.
    plan.fast_link_bits = ctx.packet_bits;
    plan.airtime = serial_airtime(ctx);
    plan.gain = 1.0;
    return plan;
  }

  const bool strong_is_slow = t_strong >= t_weak;
  const double t_slow = std::max(t_strong, t_weak);
  const double fast_rate =
      (strong_is_slow ? rates.weaker : rates.stronger).value();
  // Equalize: the fast link carries fast_rate * t_slow bits.
  const double ideal_bits = fast_rate * t_slow;
  plan.fast_link_bits = std::min(ideal_bits, mtu_bits);
  plan.mtu_limited = ideal_bits > mtu_bits;
  const double bits_stronger =
      strong_is_slow ? ctx.packet_bits : plan.fast_link_bits;
  const double bits_weaker =
      strong_is_slow ? plan.fast_link_bits : ctx.packet_bits;
  plan.airtime = sic_airtime_unequal(ctx, bits_stronger, bits_weaker);

  // Throughput-normalized: time per bit vs the serial exchange of the same
  // payloads at clean rates.
  const double serial =
      serial_airtime_unequal(ctx, bits_stronger, bits_weaker);
  plan.gain = std::isfinite(serial) && plan.airtime > 0.0
                  ? std::max(1.0, serial / plan.airtime)
                  : 1.0;
  return plan;
}

}  // namespace sic::core
