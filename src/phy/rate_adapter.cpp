#include "phy/rate_adapter.hpp"

#include "phy/capacity.hpp"
#include "util/check.hpp"

namespace sic::phy {

void RateAdapter::rate_span(std::span<const double> sinr_linear,
                            std::span<BitsPerSecond> out) const {
  SIC_CHECK(sinr_linear.size() == out.size());
  for (std::size_t i = 0; i < sinr_linear.size(); ++i) {
    out[i] = rate(sinr_linear[i]);
  }
}

BitsPerSecond ShannonRateAdapter::rate(double sinr_linear) const {
  return shannon_rate(bandwidth_, sinr_linear);
}

void ShannonRateAdapter::rate_span(std::span<const double> sinr_linear,
                                   std::span<BitsPerSecond> out) const {
  SIC_CHECK(sinr_linear.size() == out.size());
  const std::size_t n = sinr_linear.size();
  std::size_t i = 0;
  // Four independent lanes per trip: shannon_rate is a pure log2 chain,
  // so breaking the loop-carried store/load dependence lets the compiler
  // pipeline the transcendentals across lanes.
  for (; i + 4 <= n; i += 4) {
    const BitsPerSecond r0 = shannon_rate(bandwidth_, sinr_linear[i]);
    const BitsPerSecond r1 = shannon_rate(bandwidth_, sinr_linear[i + 1]);
    const BitsPerSecond r2 = shannon_rate(bandwidth_, sinr_linear[i + 2]);
    const BitsPerSecond r3 = shannon_rate(bandwidth_, sinr_linear[i + 3]);
    out[i] = r0;
    out[i + 1] = r1;
    out[i + 2] = r2;
    out[i + 3] = r3;
  }
  for (; i < n; ++i) {
    out[i] = shannon_rate(bandwidth_, sinr_linear[i]);
  }
}

BitsPerSecond DiscreteRateAdapter::rate(double sinr_linear) const {
  if (sinr_linear <= 0.0) return BitsPerSecond{0.0};
  return table_->best_rate(Decibels::from_linear(sinr_linear));
}

void DiscreteRateAdapter::rate_span(std::span<const double> sinr_linear,
                                    std::span<BitsPerSecond> out) const {
  SIC_CHECK(sinr_linear.size() == out.size());
  // Threshold lookup in the linear domain: the table's cutovers are the
  // exact linear images of the dB thresholds (see RateTable ctor), so
  // x >= cut decides identically to from_linear(x) >= min_sinr — no
  // log10 per lane. Thresholds increase, so the met set is a prefix and
  // a branchless count indexes the step table; x <= 0 and NaN meet no
  // cutover and land on steps[0] == 0 bps, exactly like rate().
  const std::span<const double> cuts = table_->linear_cutovers();
  const std::span<const BitsPerSecond> steps = table_->rate_steps();
  const std::size_t m = cuts.size();
  for (std::size_t i = 0; i < sinr_linear.size(); ++i) {
    const double x = sinr_linear[i];
    std::size_t idx = 0;
    for (std::size_t j = 0; j < m; ++j) {
      idx += static_cast<std::size_t>(x >= cuts[j]);
    }
    out[i] = steps[idx];
  }
}

}  // namespace sic::phy
