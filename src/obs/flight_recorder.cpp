#include "obs/flight_recorder.hpp"

#include <cstdlib>
#include <sstream>
#include <utility>

#include "obs/build_info.hpp"
#include "obs/json_util.hpp"
#include "obs/timeseries.hpp"
#include "util/check.hpp"

namespace sic::obs {

namespace {

thread_local FlightRecorder* g_flight = nullptr;

/// True when \p text is already a self-contained JSON number, so config
/// values like "7" or "0.05" stay numeric in the document (same rule as
/// the trace sink's arg emitter).
bool is_json_number(std::string_view text) {
  if (text.empty()) return false;
  for (const char c : text) {
    const bool plain = (c >= '0' && c <= '9') || c == '+' || c == '-' ||
                       c == '.' || c == 'e' || c == 'E';
    if (!plain) return false;
  }
  char* end = nullptr;
  const std::string owned{text};
  std::strtod(owned.c_str(), &end);
  return end == owned.c_str() + owned.size();
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) {
  SIC_CHECK(capacity >= 1);
  ring_.resize(capacity);
}

void FlightRecorder::record(FlightEvent event) {
  if (size_ < ring_.size()) {
    ring_[(head_ + size_) % ring_.size()] = std::move(event);
    ++size_;
  } else {
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  }
}

void FlightRecorder::set_config(std::string_view key, std::string_view value) {
  const auto it = config_.find(key);
  if (it != config_.end()) {
    it->second = std::string{value};
  } else {
    config_.emplace(std::string{key}, std::string{value});
  }
}

bool FlightRecorder::trip(std::string_view reason, std::uint64_t epoch) {
  if (tripped_) return false;
  tripped_ = true;
  reason_ = std::string{reason};
  trip_epoch_ = epoch;
  return true;
}

const FlightEvent& FlightRecorder::event(std::size_t i) const {
  SIC_CHECK(i < size_);
  return ring_[(head_ + i) % ring_.size()];
}

std::string FlightRecorder::postmortem_json(
    const TimeSeriesRegistry* series, std::uint64_t window_epochs) const {
  // Anchor the replay window at the trip epoch when tripped; otherwise at
  // the newest event we still hold (an explicit --postmortem-out request
  // on a healthy run wants the end of the run).
  std::uint64_t anchor = trip_epoch_;
  if (!tripped_) {
    anchor = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      const std::uint64_t e = event(i).epoch;
      if (e > anchor) anchor = e;
    }
  }
  const std::uint64_t window_start =
      window_epochs == 0 ? 0
      : anchor >= window_epochs - 1 ? anchor - (window_epochs - 1)
                                    : 0;

  std::ostringstream os;
  os << "{\"postmortem\":{\"version\":1,\"build\":";
  detail::append_json_string(os, git_describe());
  os << ",\"reason\":";
  detail::append_json_string(os, tripped_ ? reason_ : "requested");
  os << ",\"trip_epoch\":" << anchor
     << ",\"window_epochs\":" << window_epochs << ",\"config\":{";
  bool first = true;
  for (const auto& [key, value] : config_) {
    if (!first) os << ',';
    first = false;
    detail::append_json_string(os, key);
    os << ':';
    if (is_json_number(value)) {
      os << value;
    } else {
      detail::append_json_string(os, value);
    }
  }
  os << "},\"events_dropped\":" << dropped_ << ",\"events\":[";
  first = true;
  for (std::size_t i = 0; i < size_; ++i) {
    const FlightEvent& ev = event(i);
    if (ev.epoch < window_start || ev.epoch > anchor) continue;
    if (!first) os << ',';
    first = false;
    os << "{\"epoch\":" << ev.epoch << ",\"ap\":" << ev.ap
       << ",\"client\":" << ev.client << ",\"kind\":";
    detail::append_json_string(os, ev.kind);
    os << ",\"detail\":";
    detail::append_json_string(os, ev.detail);
    os << '}';
  }
  os << "],\"timeseries\":";
  os << (series != nullptr ? series->json_object() : std::string{"{}"});
  os << "}}";
  return os.str();
}

FlightRecorder* flight() { return g_flight; }

FlightRecorder* set_flight(FlightRecorder* recorder) {
  FlightRecorder* previous = g_flight;
  g_flight = recorder;
  return previous;
}

}  // namespace sic::obs
