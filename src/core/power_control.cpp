#include "core/power_control.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sic::core {

namespace {

/// Evaluates the pair at a given weaker-power scale.
PowerControlResult evaluate_at_scale(const UploadPairContext& ctx,
                                     double scale) {
  UploadPairContext scaled = ctx;
  scaled.arrival.weaker = ctx.arrival.weaker * scale;
  // Reducing the weaker client's power can never flip the strength order.
  PowerControlResult out;
  out.scale = scale;
  out.rates = sic_rates(scaled);
  out.airtime = sic_airtime(scaled);
  out.applied = scale < 1.0;
  return out;
}

/// Shannon-policy closed form: the βS² at which the two rates are equal.
double equal_rate_weaker_rss(const phy::TwoSignalArrival& a) {
  const double n0 = a.noise.value();
  const double s1 = a.stronger.value();
  return (-n0 + std::sqrt(n0 * n0 + 4.0 * s1 * n0)) / 2.0;
}

}  // namespace

PowerControlResult optimize_weaker_power(const UploadPairContext& ctx) {
  SIC_CHECK(ctx.adapter != nullptr);
  PowerControlResult best = evaluate_at_scale(ctx, 1.0);
  best.applied = false;
  if (ctx.arrival.weaker.value() <= 0.0) return best;

  if (dynamic_cast<const phy::ShannonRateAdapter*>(ctx.adapter) != nullptr) {
    const double target = equal_rate_weaker_rss(ctx.arrival);
    const double scale = target / ctx.arrival.weaker.value();
    if (scale < 1.0) {
      PowerControlResult cand = evaluate_at_scale(ctx, scale);
      if (cand.airtime < best.airtime) return cand;
    }
    return best;
  }

  // Generic (discrete) policy: coarse dB grid over [-40 dB, 0 dB] with one
  // local refinement pass around the best coarse point.
  constexpr double kMinDb = -40.0;
  constexpr int kCoarse = 201;           // 0.2 dB steps
  double best_db = 0.0;
  for (int i = 0; i < kCoarse; ++i) {
    const double db = kMinDb + (0.0 - kMinDb) * i / (kCoarse - 1);
    const PowerControlResult cand =
        evaluate_at_scale(ctx, std::pow(10.0, db / 10.0));
    if (cand.airtime < best.airtime) {
      best = cand;
      best_db = db;
    }
  }
  constexpr int kFine = 81;              // ±0.2 dB at 0.005 dB steps
  for (int i = 0; i < kFine; ++i) {
    const double db =
        std::min(0.0, best_db - 0.2 + 0.4 * i / (kFine - 1));
    const PowerControlResult cand =
        evaluate_at_scale(ctx, std::pow(10.0, db / 10.0));
    if (cand.airtime < best.airtime) best = cand;
  }
  return best;
}

double power_controlled_airtime(const UploadPairContext& ctx) {
  return optimize_weaker_power(ctx).airtime;
}

}  // namespace sic::core
