#include "analysis/grid.hpp"

#include <gtest/gtest.h>

namespace sic::analysis {
namespace {

TEST(Grid, AxisValuesSpanRange) {
  const Grid2D::Axis ax{"x", 0.0, 10.0, 11};
  EXPECT_DOUBLE_EQ(ax.value(0), 0.0);
  EXPECT_DOUBLE_EQ(ax.value(5), 5.0);
  EXPECT_DOUBLE_EQ(ax.value(10), 10.0);
}

TEST(Grid, FillEvaluatesFunction) {
  Grid2D grid{{"x", 0.0, 2.0, 3}, {"y", 0.0, 1.0, 2}};
  grid.fill([](double x, double y) { return x + 10.0 * y; });
  EXPECT_DOUBLE_EQ(grid.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grid.at(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(grid.at(1, 1), 11.0);
  EXPECT_DOUBLE_EQ(grid.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(grid.max_value(), 12.0);
}

TEST(Grid, NearestLookup) {
  Grid2D grid{{"x", 0.0, 10.0, 11}, {"y", 0.0, 10.0, 11}};
  grid.fill([](double x, double y) { return x * 100.0 + y; });
  EXPECT_DOUBLE_EQ(grid.nearest(3.2, 7.9), 308.0);
  EXPECT_DOUBLE_EQ(grid.nearest(-5.0, 50.0), 10.0);  // clamped to corners
}

TEST(Grid, AsciiRenderShape) {
  Grid2D grid{{"x", 0.0, 1.0, 8}, {"y", 0.0, 1.0, 4}};
  grid.fill([](double x, double) { return x; });
  const std::string art = grid.render_ascii();
  // 4 rows of 8 chars + newline each + trailing metadata line.
  int rows = 0;
  for (const char c : art) {
    if (c == '\n') ++rows;
  }
  EXPECT_EQ(rows, 5);
}

TEST(Grid, CsvHasHeaderAndAllCells) {
  Grid2D grid{{"snr1", 0.0, 1.0, 2}, {"snr2", 0.0, 1.0, 3}};
  grid.fill([](double, double) { return 1.0; });
  const std::string csv = grid.to_csv();
  EXPECT_NE(csv.find("snr1,snr2,value"), std::string::npos);
  int lines = 0;
  for (const char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 1 + 2 * 3);
}

TEST(Grid, ConstantGridRendersWithoutDivideByZero) {
  Grid2D grid{{"x", 0.0, 1.0, 4}, {"y", 0.0, 1.0, 4}};
  grid.fill([](double, double) { return 5.0; });
  EXPECT_NO_THROW((void)grid.render_ascii());
}

}  // namespace
}  // namespace sic::analysis
