#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/multirate.hpp"
#include "core/pair_cost_engine.hpp"
#include "core/power_control.hpp"
#include "util/check.hpp"

namespace sic::core {

double solo_airtime(const channel::LinkBudget& client,
                    const phy::RateAdapter& adapter, double packet_bits) {
  return airtime_seconds(packet_bits, adapter.rate(client.snr()));
}

PairPlan best_pair_plan_from_context(const UploadPairContext& ctx,
                                     double serial_airtime,
                                     const SchedulerOptions& options) {
  PairPlan best;
  best.mode = PairMode::kSerial;
  best.airtime = serial_airtime;

  const double t_sic = sic_airtime(ctx);
  if (t_sic < best.airtime) {
    best = PairPlan{PairMode::kSic, t_sic, 1.0};
  }
  if (options.enable_power_control) {
    const auto pc = optimize_weaker_power(ctx);
    if (pc.applied && pc.airtime < best.airtime) {
      best = PairPlan{PairMode::kSicPowerControl, pc.airtime, pc.scale};
    }
  }
  if (options.enable_multirate) {
    const auto mr = multirate_airtime_detailed(ctx);
    if (mr.boosted && mr.airtime < best.airtime) {
      best = PairPlan{PairMode::kSicMultirate, mr.airtime, 1.0};
    }
  }
  return best;
}

PairPlan best_pair_plan(const channel::LinkBudget& a,
                        const channel::LinkBudget& b,
                        const phy::RateAdapter& adapter,
                        const SchedulerOptions& options) {
  SIC_CHECK_MSG(a.noise == b.noise,
                "pair plan assumes a common receiver noise floor");
  SIC_CHECK_MSG(options.admission_margin_db.value() >= 0.0,
                "admission margin must be >= 0 dB");
  // Concurrent candidates are evaluated on a derated view of the channel
  // (both RSS backed off by the admission margin); the serial baseline
  // keeps the clean rates. A margined pair is therefore only admitted when
  // it beats serial *with headroom to spare*, and its recorded airtime is
  // the conservative one the executor realizes.
  const double derate = Decibels{-options.admission_margin_db.value()}.linear();
  const auto ctx = UploadPairContext::make(a.rss * derate, b.rss * derate,
                                           a.noise, adapter,
                                           options.packet_bits);
  return best_pair_plan_from_context(
      ctx,
      solo_airtime(a, adapter, options.packet_bits) +
          solo_airtime(b, adapter, options.packet_bits),
      options);
}

double serial_upload_airtime(std::span<const channel::LinkBudget> clients,
                             const phy::RateAdapter& adapter,
                             double packet_bits) {
  double total = 0.0;
  for (const auto& c : clients) total += solo_airtime(c, adapter, packet_bits);
  return total;
}

Schedule schedule_upload(std::span<const channel::LinkBudget> clients,
                         const phy::RateAdapter& adapter,
                         const SchedulerOptions& options) {
  // One-shot use of the incremental engine: a full build with every row
  // dirty reproduces the historical from-scratch construction exactly (the
  // engine's cache only ever short-circuits identical recomputations).
  PairCostEngine engine{adapter, options};
  engine.set_clients(clients);
  return engine.schedule();
}

}  // namespace sic::core
