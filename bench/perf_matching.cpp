/// Performance of the matching engines: the O(n³) blossom matcher (the
/// paper quotes O(n²m) for Edmonds; our dense implementation is O(n³)),
/// the greedy heuristic, and the exponential oracle. Also reports the
/// blossom-vs-greedy quality gap as a counter (schedule cost ratio).

#include <benchmark/benchmark.h>

#include "perf_util.hpp"

#include "matching/blossom.hpp"
#include "matching/greedy.hpp"
#include "matching/oracle.hpp"
#include "util/rng.hpp"

namespace {

using namespace sic;
using namespace sic::matching;

CostMatrix random_costs(int n, std::uint64_t seed) {
  Rng rng{seed};
  CostMatrix costs{n};
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) costs.set(i, j, rng.uniform(1.0, 100.0));
  }
  return costs;
}

void BM_BlossomPerfectMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto costs = random_costs(n, 42);
  for (auto _ : state) {
    const auto m = min_weight_perfect_matching(costs);
    benchmark::DoNotOptimize(m.total_cost);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_BlossomPerfectMatching)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity(benchmark::oNCubed);

void BM_GreedyPerfectMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto costs = random_costs(n, 42);
  for (auto _ : state) {
    const auto m = greedy_min_weight_perfect_matching(costs);
    benchmark::DoNotOptimize(m.total_cost);
  }
}
BENCHMARK(BM_GreedyPerfectMatching)->RangeMultiplier(2)->Range(8, 128);

void BM_OraclePerfectMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto costs = random_costs(n, 42);
  for (auto _ : state) {
    const auto m = min_weight_perfect_matching_oracle(costs);
    benchmark::DoNotOptimize(m.total_cost);
  }
}
BENCHMARK(BM_OraclePerfectMatching)->DenseRange(8, 16, 4);

void BM_GreedyQualityGap(benchmark::State& state) {
  // Not a speed benchmark: reports how much schedule cost greedy leaves on
  // the table vs the exact matcher, averaged over instances.
  const int n = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  double ratio_sum = 0.0;
  int count = 0;
  for (auto _ : state) {
    const auto costs = random_costs(n, seed++);
    const double exact = min_weight_perfect_matching(costs).total_cost;
    const double greedy = greedy_min_weight_perfect_matching(costs).total_cost;
    ratio_sum += greedy / exact;
    ++count;
    benchmark::DoNotOptimize(greedy);
  }
  state.counters["greedy/optimal"] = ratio_sum / count;
}
BENCHMARK(BM_GreedyQualityGap)->Arg(16)->Arg(64);

}  // namespace

SIC_PERF_MAIN("perf_matching")
