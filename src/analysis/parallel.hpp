#ifndef SICMAC_ANALYSIS_PARALLEL_HPP
#define SICMAC_ANALYSIS_PARALLEL_HPP

/// \file parallel.hpp
/// The deterministic parallel Monte Carlo engine behind every sweep in
/// this library (Fig. 6 / 11 gain CDFs, the random-deployment scheduler
/// sweep, the Section 7 trace cross products).
///
/// Determinism contract (tested in tests/parallel_sweep_test.cpp):
///
///  1. *One substream per trial index.* Each trial draws from
///     `Rng::at(seed, trial)` — a counter-based SplitMix64 substream that
///     depends only on (seed, trial), never on which thread runs the trial
///     or how many trials ran before it.
///  2. *Index-addressed results.* Trial t writes results[t]; the output
///     vector is identical for any thread count or chunk schedule.
///  3. *Deterministic obs counters.* Worker threads see a per-chunk
///     scratch MetricsRegistry (the attach point is thread-local), merged
///     into the caller's registry at chunk boundaries. Counter values are
///     additive over trials, hence schedule-independent; histogram bucket
///     counts likewise (their floating-point `sum` and wall-time values
///     are not, as with any timing metric). Trace-sink spans are not
///     forwarded from workers.
///
/// When the caller has no registry attached the scratch registries are
/// skipped entirely, preserving the obs layer's zero-cost-when-detached
/// contract on the sweep hot path.

#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace sic::analysis {

struct ParallelOptions {
  /// Worker count including the calling thread; 0 means all hardware
  /// threads. 1 (the default) runs inline with no pool threads.
  int threads = 1;
  /// Trials handed to a worker per claim. Large enough to amortize the
  /// claim lock, small enough to load-balance trials of uneven cost.
  int chunk_trials = 64;
};

/// Collects per-chunk scratch registries and folds them into the registry
/// that was attached on the sweep's calling thread. Inactive (and free)
/// when the caller runs detached.
class SweepObsMerger {
 public:
  SweepObsMerger();                      ///< captures obs::metrics()
  ~SweepObsMerger();                     ///< folds into the caller registry

  SweepObsMerger(const SweepObsMerger&) = delete;
  SweepObsMerger& operator=(const SweepObsMerger&) = delete;

  [[nodiscard]] bool active() const { return caller_ != nullptr; }

  /// Attaches a chunk-local registry on the current thread (worker or
  /// caller) for the duration of one chunk, then merges it into the shared
  /// accumulator. Constructed only when active().
  class ChunkScope {
   public:
    explicit ChunkScope(SweepObsMerger& merger);
    ~ChunkScope();
    ChunkScope(const ChunkScope&) = delete;
    ChunkScope& operator=(const ChunkScope&) = delete;

   private:
    SweepObsMerger& merger_;
    obs::MetricsRegistry registry_;
    obs::MetricsRegistry* previous_;
  };

 private:
  obs::MetricsRegistry* caller_;
  obs::MetricsRegistry merged_;
  std::mutex mu_;
};

/// Reusable thread-pool sweep engine. Construct once (threads spawn here),
/// then run any number of sweeps through map_trials()/map_indices().
class ParallelRunner {
 public:
  explicit ParallelRunner(const ParallelOptions& options = {});

  [[nodiscard]] int threads() const { return pool_.threads(); }

  /// results[t] = body(rng_t, t) with rng_t = Rng::at(seed, t). T must be
  /// default-constructible; body must be callable concurrently (pure
  /// functions of rng + inputs — the obs attach points are thread-local,
  /// so instrumented callees are safe).
  template <typename T, typename Body>
  std::vector<T> map_trials(std::int64_t trials, std::uint64_t seed,
                            const Body& body) {
    return map_indices<T>(trials, [&](std::int64_t t) {
      Rng rng = Rng::at(seed, static_cast<std::uint64_t>(t));
      return body(rng, t);
    });
  }

  /// results[i] = body(i) — the RNG-free variant for deterministic cross
  /// products (e.g. trace-eval cells). Same scheduling and obs-merge
  /// machinery as map_trials().
  template <typename T, typename Body>
  std::vector<T> map_indices(std::int64_t n, const Body& body) {
    SIC_CHECK(n >= 0);
    std::vector<T> results(static_cast<std::size_t>(n));
    SweepObsMerger merger;
    pool_.parallel_for(n, chunk_, [&](std::int64_t begin, std::int64_t end) {
      if (!merger.active()) {
        // Detached: no scratch registry, no merge — zero obs cost.
        for (std::int64_t i = begin; i < end; ++i) {
          results[static_cast<std::size_t>(i)] = body(i);
        }
        return;
      }
      // Chunk boundary = obs batch boundary: instrumented callees publish
      // into a chunk-local registry (threads == 1 included, so counters
      // are identical across thread counts), folded into the shared
      // accumulator once per chunk.
      SweepObsMerger::ChunkScope scope{merger};
      for (std::int64_t i = begin; i < end; ++i) {
        results[static_cast<std::size_t>(i)] = body(i);
      }
    });
    return results;
  }

 private:
  ThreadPool pool_;
  std::int64_t chunk_;
};

}  // namespace sic::analysis

#endif  // SICMAC_ANALYSIS_PARALLEL_HPP
