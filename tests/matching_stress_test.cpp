/// Structured stress tests for the weighted blossom matcher: graph shapes
/// (paths, cycles, stars, bipartite, metric-plane instances) that exercise
/// specific blossom behaviors, all cross-checked against the exponential
/// oracle.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "matching/blossom.hpp"
#include "matching/oracle.hpp"
#include "util/rng.hpp"

namespace sic::matching {
namespace {

double matching_weight(const std::vector<int>& mate,
                       std::span<const WeightedEdge> edges) {
  double total = 0.0;
  for (int v = 0; v < static_cast<int>(mate.size()); ++v) {
    if (mate[v] <= v) continue;
    double best = -1e18;
    for (const auto& e : edges) {
      if ((e.u == v && e.v == mate[v]) || (e.v == v && e.u == mate[v])) {
        best = std::max(best, e.weight);
      }
    }
    total += best;
  }
  return total;
}

void expect_matches_oracle(int n, const std::vector<WeightedEdge>& edges,
                           bool max_cardinality, const char* label) {
  const auto mate = max_weight_matching(n, edges, max_cardinality);
  ASSERT_TRUE(is_valid_mate_vector(mate)) << label;
  const auto oracle = max_weight_matching_oracle(n, edges, max_cardinality);
  EXPECT_NEAR(matching_weight(mate, edges), oracle.total_weight, 1e-6)
      << label;
}

TEST(BlossomStress, PathsAllLengths) {
  Rng rng{1};
  for (int n = 2; n <= 14; ++n) {
    std::vector<WeightedEdge> edges;
    for (int i = 0; i + 1 < n; ++i) {
      edges.push_back(WeightedEdge{i, i + 1, rng.uniform(1.0, 10.0)});
    }
    expect_matches_oracle(n, edges, false, "path/maxweight");
    expect_matches_oracle(n, edges, true, "path/maxcard");
  }
}

TEST(BlossomStress, OddCyclesForceBlossoms) {
  Rng rng{2};
  for (int n = 3; n <= 13; n += 2) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<WeightedEdge> edges;
      for (int i = 0; i < n; ++i) {
        edges.push_back(WeightedEdge{i, (i + 1) % n, rng.uniform(1.0, 10.0)});
      }
      expect_matches_oracle(n, edges, false, "odd cycle");
      expect_matches_oracle(n, edges, true, "odd cycle/maxcard");
    }
  }
}

TEST(BlossomStress, StarsHaveSingleEdgeMatchings) {
  Rng rng{3};
  for (int leaves = 1; leaves <= 12; ++leaves) {
    std::vector<WeightedEdge> edges;
    double best = 0.0;
    for (int i = 1; i <= leaves; ++i) {
      const double w = rng.uniform(1.0, 10.0);
      best = std::max(best, w);
      edges.push_back(WeightedEdge{0, i, w});
    }
    const auto mate = max_weight_matching(leaves + 1, edges, false);
    EXPECT_NEAR(matching_weight(mate, edges), best, 1e-9);
  }
}

TEST(BlossomStress, BipartiteMatchesOracle) {
  Rng rng{4};
  for (int trial = 0; trial < 40; ++trial) {
    const int left = rng.uniform_int(1, 5);
    const int right = rng.uniform_int(1, 5);
    std::vector<WeightedEdge> edges;
    for (int i = 0; i < left; ++i) {
      for (int j = 0; j < right; ++j) {
        if (rng.chance(0.8)) {
          edges.push_back(
              WeightedEdge{i, left + j, rng.uniform(0.0, 20.0)});
        }
      }
    }
    if (edges.empty()) continue;
    expect_matches_oracle(left + right, edges, false, "bipartite");
    expect_matches_oracle(left + right, edges, true, "bipartite/maxcard");
  }
}

TEST(BlossomStress, MetricPlaneInstances) {
  // Euclidean min-weight perfect matching of random points — the classic
  // application; verify against the oracle at n = 12.
  Rng rng{5};
  for (int trial = 0; trial < 20; ++trial) {
    constexpr int n = 12;
    std::vector<std::pair<double, double>> pts;
    for (int i = 0; i < n; ++i) {
      pts.emplace_back(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0));
    }
    CostMatrix costs{n};
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        costs.set(i, j, std::hypot(pts[i].first - pts[j].first,
                                   pts[i].second - pts[j].second));
      }
    }
    const auto blossom = min_weight_perfect_matching(costs);
    const auto oracle = min_weight_perfect_matching_oracle(costs);
    EXPECT_NEAR(blossom.total_cost, oracle.total_cost, 1e-5)
        << "trial " << trial;
  }
}

TEST(BlossomStress, NearTiesEverywhere) {
  // All weights within epsilon of each other: dual updates are tiny and
  // tie-breaking dominates — a classic numerical trap, handled by the
  // integer quantization.
  Rng rng{6};
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 * rng.uniform_int(2, 6);
    CostMatrix costs{n};
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        costs.set(i, j, 5.0 + rng.uniform(-1e-7, 1e-7));
      }
    }
    const auto blossom = min_weight_perfect_matching(costs);
    const auto oracle = min_weight_perfect_matching_oracle(costs);
    EXPECT_NEAR(blossom.total_cost, oracle.total_cost, 1e-5);
  }
}

TEST(BlossomStress, HugeWeightMagnitudes) {
  // Quantization must survive weights spanning many orders of magnitude.
  CostMatrix costs{4};
  costs.set(0, 1, 1e-6);
  costs.set(2, 3, 1e6);
  costs.set(0, 2, 2e5);
  costs.set(1, 3, 2e5);
  costs.set(0, 3, 9e5);
  costs.set(1, 2, 9e5);
  const auto blossom = min_weight_perfect_matching(costs);
  const auto oracle = min_weight_perfect_matching_oracle(costs);
  EXPECT_NEAR(blossom.total_cost, oracle.total_cost,
              oracle.total_cost * 1e-6);
}

TEST(BlossomStress, RepeatedSolvesAreIndependent) {
  // The matcher must be stateless across calls (fresh instance per solve).
  Rng rng{7};
  CostMatrix costs{10};
  for (int i = 0; i < 10; ++i) {
    for (int j = i + 1; j < 10; ++j) costs.set(i, j, rng.uniform(1.0, 9.0));
  }
  const auto first = min_weight_perfect_matching(costs);
  for (int k = 0; k < 5; ++k) {
    const auto again = min_weight_perfect_matching(costs);
    EXPECT_DOUBLE_EQ(again.total_cost, first.total_cost);
    EXPECT_EQ(again.pairs, first.pairs);
  }
}

}  // namespace
}  // namespace sic::matching
