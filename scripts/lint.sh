#!/usr/bin/env bash
# Static-analysis gate (see DESIGN.md "Static analysis").
#
#   scripts/lint.sh [BUILD_DIR]
#
# 1. Builds and runs tools/sic_lint over every tracked .cpp/.hpp under
#    src/ tools/ bench/ tests/ examples/ (minus the seeded-violation
#    fixtures) with the checked-in R2 baseline. Any finding — including a
#    stale baseline entry — fails the run. The deterministic JSON findings
#    report is always written to $BUILD_DIR/lint-findings.json (CI uploads
#    it as an artifact, pass or fail).
# 2. Perturb-style self-check: a temp tree seeded with an R5 layer
#    back-edge (src/util including mac/) MUST fail the linter — proving the
#    gate can fail at all.
# 3. If clang-tidy is installed, runs it over src/ with the repo .clang-tidy
#    (warnings are errors) against the exported compile database. When
#    clang-tidy is absent the step is skipped with a notice so the domain
#    lint still gates environments without LLVM.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi
cmake --build "$BUILD_DIR" --target sic_lint -j "$(nproc)"

mapfile -t files < <(git ls-files '*.cpp' '*.hpp' ':!tests/lint_fixtures')
echo "sic_lint: checking ${#files[@]} files"
"$BUILD_DIR"/tools/sic_lint --baseline tools/sic_lint/r2_baseline.txt \
  --json "$BUILD_DIR"/lint-findings.json "${files[@]}"
echo "sic_lint: clean (findings report: $BUILD_DIR/lint-findings.json)"

# Self-check: a seeded R5 back-edge (util reaching up into mac) must fail.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
mkdir -p "$tmpdir/src/util"
cat > "$tmpdir/src/util/self_check.hpp" <<'EOF'
#pragma once
#include "mac/frame.hpp"
EOF
if "$BUILD_DIR"/tools/sic_lint --only R5 "$tmpdir/src/util/self_check.hpp" \
    > "$tmpdir/self_check.out" 2>&1; then
  echo "sic_lint: SELF-CHECK FAILED — seeded R5 back-edge not detected" >&2
  cat "$tmpdir/self_check.out" >&2
  exit 1
fi
grep -q '\[R5\]' "$tmpdir/self_check.out"
echo "sic_lint: self-check ok (seeded R5 back-edge detected)"

if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  mapfile -t tidy_files < <(git ls-files 'src/*.cpp' 'src/**/*.cpp')
  echo "clang-tidy: checking ${#tidy_files[@]} files"
  clang-tidy -p "$BUILD_DIR" --quiet --warnings-as-errors='*' \
    "${tidy_files[@]}"
  echo "clang-tidy: clean"
else
  echo "clang-tidy: not installed, skipping (sic_lint gate still applies)"
fi
