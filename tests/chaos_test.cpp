/// FaultConfig validation (typed FaultConfigError), ChaosProfile
/// validation, FaultSchedule determinism + scripted-event composition,
/// and the named presets.

#include "mac/chaos.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "mac/fault_model.hpp"

namespace sic::mac {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

TEST(FaultConfigValidation, AcceptsDefaultAndTypicalConfigs) {
  EXPECT_NO_THROW(FaultConfig{}.validate());
  FaultConfig typical;
  typical.stale_rss_sigma = Decibels{4.0};
  typical.stale_rss_rho = 0.9;
  typical.cancellation_failure_prob = 0.01;
  typical.ack_loss_prob = 0.01;
  EXPECT_NO_THROW(typical.validate());
}

TEST(FaultConfigValidation, RejectsNanSigmaWithTypedError) {
  // The motivating bug class: NaN passes a `>= 0` check and poisons every
  // AR(1) draw downstream. It must be a typed, catchable error instead.
  FaultConfig config;
  config.stale_rss_sigma = Decibels{kNan};
  EXPECT_THROW(config.validate(), FaultConfigError);
  EXPECT_THROW((FaultModel{config, 4, 1}), FaultConfigError);
}

TEST(FaultConfigValidation, RejectsNegativeSigma) {
  FaultConfig config;
  config.stale_rss_sigma = Decibels{-1.0};
  EXPECT_THROW(config.validate(), FaultConfigError);
}

TEST(FaultConfigValidation, RejectsOutOfRangeAndNanProbabilities) {
  FaultConfig config;
  config.cancellation_failure_prob = 1.5;
  EXPECT_THROW(config.validate(), FaultConfigError);
  config.cancellation_failure_prob = 0.0;
  config.ack_loss_prob = -0.1;
  EXPECT_THROW(config.validate(), FaultConfigError);
  config.ack_loss_prob = kNan;
  EXPECT_THROW(config.validate(), FaultConfigError);
  config.ack_loss_prob = 0.0;
  config.stale_rss_rho = kNan;
  EXPECT_THROW(config.validate(), FaultConfigError);
}

TEST(FaultConfigValidation, RejectsNonFiniteInitialDrift) {
  FaultConfig config;
  config.initial_drift = {Decibels{1.0}, Decibels{kNan}};
  EXPECT_THROW(config.validate(), FaultConfigError);
  config.initial_drift = {Decibels{std::numeric_limits<double>::infinity()}};
  EXPECT_THROW(config.validate(), FaultConfigError);
}

TEST(FaultConfigValidation, RejectsDriftSizeMismatchAgainstClientCount) {
  FaultConfig config;
  config.initial_drift = {Decibels{1.0}, Decibels{-2.0}};
  EXPECT_NO_THROW(config.validate(2));
  EXPECT_NO_THROW(config.validate());  // no client context: size unchecked
  EXPECT_THROW(config.validate(3), FaultConfigError);
  EXPECT_THROW((FaultModel{config, 3, 1}), FaultConfigError);
}

TEST(FaultConfigValidation, ErrorIsAlsoAnInvalidArgument) {
  // Callers that don't know the domain type can still catch the std one.
  FaultConfig config;
  config.ack_loss_prob = 2.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(FaultModelDrift, InitialDriftOffsetsTrueRssWithoutRngDraws) {
  FaultConfig config;
  config.initial_drift = {Decibels{10.0}, Decibels{0.0}};
  FaultModel model{config, 2, 42};
  EXPECT_EQ(model.drift(0), Decibels{10.0});
  EXPECT_EQ(model.drift(1), Decibels{0.0});
  const Milliwatts nominal{1.0};
  EXPECT_NEAR(model.true_rss(nominal, 0).value(), 10.0, 1e-12);
  EXPECT_EQ(model.true_rss(nominal, 1).value(), 1.0);
  // advance_epoch with no AR(1) tracks must keep the offsets frozen.
  model.advance_epoch();
  EXPECT_EQ(model.drift(0), Decibels{10.0});
}

TEST(ChaosProfileValidation, RejectsBadKnobs) {
  ChaosProfile p;
  p.ap_outage_prob = 1.2;
  EXPECT_THROW(p.validate(), FaultConfigError);
  p.ap_outage_prob = 0.0;
  p.burst_prob = kNan;
  EXPECT_THROW(p.validate(), FaultConfigError);
  p.burst_prob = 0.0;
  p.arrival_rate = -1.0;
  EXPECT_THROW(p.validate(), FaultConfigError);
  p.arrival_rate = 0.0;
  p.outage_epochs = 0;
  EXPECT_THROW(p.validate(), FaultConfigError);
  p.outage_epochs = 1;
  EXPECT_NO_THROW(p.validate());
  // The validating constructor uses the same checks.
  p.storm_prob = -0.5;
  EXPECT_THROW((FaultSchedule{p}), FaultConfigError);
}

TEST(FaultSchedule, DefaultScheduleIsInertAndConsumesNoEntropy) {
  FaultSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  std::vector<std::uint8_t> alive{1, 1};
  std::vector<int> clients{0, 1, 2};
  Rng rng{123};
  const Rng untouched = rng;
  const EpochChaos chaos = schedule.resolve(0, alive, clients, 1.0, rng);
  EXPECT_TRUE(chaos.outages.empty());
  EXPECT_TRUE(chaos.bursts.empty());
  EXPECT_TRUE(chaos.departures.empty());
  EXPECT_EQ(chaos.arrivals, 0);
  EXPECT_EQ(chaos.storm_epochs, 0);
  // No draws were taken: the next double from both streams agrees.
  Rng a = rng;
  Rng b = untouched;
  EXPECT_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(FaultSchedule, SameSeedResolvesIdentically) {
  const FaultSchedule schedule = FaultSchedule::preset("default", 16);
  std::vector<std::uint8_t> alive{1, 1, 1, 0};
  std::vector<int> clients;
  for (int c = 0; c < 16; ++c) clients.push_back(c);
  for (int epoch = 0; epoch < 5; ++epoch) {
    Rng r1 = Rng::at(99, static_cast<std::uint64_t>(epoch));
    Rng r2 = Rng::at(99, static_cast<std::uint64_t>(epoch));
    const EpochChaos a = schedule.resolve(epoch, alive, clients, 1.0, r1);
    const EpochChaos b = schedule.resolve(epoch, alive, clients, 1.0, r2);
    ASSERT_EQ(a.outages.size(), b.outages.size());
    for (std::size_t i = 0; i < a.outages.size(); ++i) {
      EXPECT_EQ(a.outages[i].ap, b.outages[i].ap);
      EXPECT_EQ(a.outages[i].epochs, b.outages[i].epochs);
    }
    ASSERT_EQ(a.bursts.size(), b.bursts.size());
    EXPECT_EQ(a.departures, b.departures);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.storm_epochs, b.storm_epochs);
  }
}

TEST(FaultSchedule, TimedEventsComposeAndTargetApRanges) {
  FaultSchedule schedule;
  schedule.add({.epoch = 2, .kind = ChaosEventKind::kApOutage, .ap = 1,
                .duration_epochs = 4})
      .add({.epoch = 2, .kind = ChaosEventKind::kBurst, .ap = -1,
            .duration_epochs = 2, .depth = Decibels{25.0}})
      .add({.epoch = 3, .kind = ChaosEventKind::kApRestart, .ap = 1})
      .add({.epoch = 2, .kind = ChaosEventKind::kArrivals, .count = 3})
      .add({.epoch = 2, .kind = ChaosEventKind::kStorm, .duration_epochs = 5});
  EXPECT_FALSE(schedule.empty());
  std::vector<std::uint8_t> alive{1, 1, 1};
  std::vector<int> clients{0};
  Rng rng{1};

  const EpochChaos quiet = schedule.resolve(0, alive, clients, 1.0, rng);
  EXPECT_TRUE(quiet.outages.empty());
  EXPECT_TRUE(quiet.bursts.empty());

  const EpochChaos storm = schedule.resolve(2, alive, clients, 1.0, rng);
  ASSERT_EQ(storm.outages.size(), 1u);
  EXPECT_EQ(storm.outages[0].ap, 1);
  EXPECT_EQ(storm.outages[0].epochs, 4);
  ASSERT_EQ(storm.bursts.size(), 3u);  // ap = -1 fans out to every AP
  EXPECT_EQ(storm.bursts[2].ap, 2);
  EXPECT_EQ(storm.bursts[0].depth, Decibels{25.0});
  EXPECT_EQ(storm.arrivals, 3);
  EXPECT_EQ(storm.storm_epochs, 5);

  const EpochChaos restart = schedule.resolve(3, alive, clients, 1.0, rng);
  ASSERT_EQ(restart.outages.size(), 1u);
  EXPECT_EQ(restart.outages[0].ap, 1);
  EXPECT_EQ(restart.outages[0].epochs, 0);  // 0 = back up now
}

TEST(FaultSchedule, RejectsMalformedTimedEvents) {
  FaultSchedule schedule;
  EXPECT_THROW(schedule.add({.epoch = -1}), FaultConfigError);
  EXPECT_THROW(
      schedule.add({.epoch = 0, .kind = ChaosEventKind::kBurst, .ap = -2}),
      FaultConfigError);
}

TEST(FaultSchedule, PresetsExistAndUnknownNameThrows) {
  EXPECT_TRUE(FaultSchedule::preset("none", 10).empty());
  EXPECT_FALSE(FaultSchedule::preset("default", 10).empty());
  EXPECT_FALSE(FaultSchedule::preset("outage", 10).empty());
  EXPECT_FALSE(FaultSchedule::preset("burst", 10).empty());
  EXPECT_FALSE(FaultSchedule::preset("churn", 10).empty());
  // The acceptance profile's headline rates stay pinned.
  const ChaosProfile p = FaultSchedule::preset("default", 50).profile();
  EXPECT_DOUBLE_EQ(p.ap_outage_prob, 0.01);
  EXPECT_DOUBLE_EQ(p.departure_prob, 0.02);
  EXPECT_DOUBLE_EQ(p.arrival_rate, 1.0);  // 2% of 50 clients per epoch
  EXPECT_GT(p.burst_prob, 0.0);
  EXPECT_THROW(FaultSchedule::preset("earthquake", 10), FaultConfigError);
}

}  // namespace
}  // namespace sic::mac
