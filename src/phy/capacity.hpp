#ifndef SICMAC_PHY_CAPACITY_HPP
#define SICMAC_PHY_CAPACITY_HPP

/// \file capacity.hpp
/// Shannon-capacity arithmetic underlying the whole paper (Section 2):
///
///   eq (1)  r̂¹₁ = B log₂(1 + S¹₁ / (S²₁ + N₀))   — stronger signal, decoded
///                                                  first, interference-limited
///   eq (2)  r̂²₁ = B log₂(1 + S²₁ / N₀)           — weaker signal after perfect
///                                                  cancellation
///   eq (3)  C₋SIC = max of the two clean single-link capacities
///   eq (4)  C₊SIC = B log₂(1 + (S¹₁ + S²₁) / N₀)
///
/// All power arguments are linear (Milliwatts); use the unit types to convert
/// from dBm. Rates are bits/s.

#include "util/units.hpp"

namespace sic::phy {

/// Shannon rate B·log₂(1 + SINR) for signal power \p signal against combined
/// interference-plus-noise \p interference_plus_noise.
///
/// This is the "best feasible bitrate supported by the channel" the paper
/// assumes every transmitter uses (Section 1). A non-positive signal yields
/// rate 0.
[[nodiscard]] BitsPerSecond shannon_rate(Hertz bandwidth, Milliwatts signal,
                                         Milliwatts interference_plus_noise);

/// Convenience overload taking an SINR expressed as a linear ratio.
[[nodiscard]] BitsPerSecond shannon_rate(Hertz bandwidth, double sinr_linear);

/// SINR of a signal of power \p signal against \p interference and \p noise.
[[nodiscard]] double sinr(Milliwatts signal, Milliwatts interference,
                          Milliwatts noise);

/// Two concurrent arrivals at one receiver, with the stronger decoded first.
/// Inputs are the two received signal strengths and the noise floor; the
/// struct normalizes so that `stronger >= weaker`.
struct TwoSignalArrival {
  Milliwatts stronger;
  Milliwatts weaker;
  Milliwatts noise;

  /// Builds an arrival, swapping so stronger >= weaker.
  static TwoSignalArrival make(Milliwatts a, Milliwatts b, Milliwatts noise);
};

/// Highest feasible bitrate for the *stronger* signal when decoded against
/// the weaker one as interference — equation (1).
[[nodiscard]] BitsPerSecond sic_rate_stronger(Hertz bandwidth,
                                              const TwoSignalArrival& arrival);

/// Highest feasible bitrate for the *weaker* signal after perfect
/// cancellation of the stronger — equation (2).
[[nodiscard]] BitsPerSecond sic_rate_weaker(Hertz bandwidth,
                                            const TwoSignalArrival& arrival);

/// Like sic_rate_weaker but with an imperfect-cancellation residual: a
/// fraction \p residual of the stronger signal's power remains as
/// interference after subtraction (Section 9 caveat; [13] shows
/// imperfections sharply cut SIC's usefulness). residual = 0 reproduces
/// equation (2).
[[nodiscard]] BitsPerSecond sic_rate_weaker_residual(
    Hertz bandwidth, const TwoSignalArrival& arrival, double residual);

/// Channel capacity *without* SIC for the Fig. 1 topology — equation (3):
/// only one of the two transmitters talks at a time, so the capacity is the
/// better of the two clean links.
[[nodiscard]] BitsPerSecond capacity_without_sic(Hertz bandwidth,
                                                 const TwoSignalArrival& arrival);

/// Channel capacity *with* SIC — equation (4). Identically equals the sum of
/// equations (1) and (2); the closed form B log₂(1 + (S¹+S²)/N₀) is used and
/// the identity is enforced by tests.
[[nodiscard]] BitsPerSecond capacity_with_sic(Hertz bandwidth,
                                              const TwoSignalArrival& arrival);

/// Relative capacity gain C₊SIC / C₋SIC plotted in Fig. 3. Always ≥ 1 and
/// < 2 for positive SNRs; approaches 2 as both RSSs become small and equal.
[[nodiscard]] double capacity_gain(Hertz bandwidth,
                                   const TwoSignalArrival& arrival);

}  // namespace sic::phy

#endif  // SICMAC_PHY_CAPACITY_HPP
