#include "phy/capacity_region.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace sic::phy {
namespace {

constexpr Hertz kB = megahertz(20.0);
constexpr Milliwatts kN0{1.0};

CapacityRegion region_db(double s1_db, double s2_db) {
  return CapacityRegion{kB, Milliwatts{Decibels{s1_db}.linear()},
                        Milliwatts{Decibels{s2_db}.linear()}, kN0};
}

TEST(CapacityRegion, CornersSitOnSumFace) {
  const auto region = region_db(20.0, 12.0);
  for (const RatePair& corner : {region.corner_user1_decoded_first(),
                                 region.corner_user2_decoded_first()}) {
    EXPECT_NEAR(corner.r1.value() + corner.r2.value(),
                region.sum_capacity().value(),
                region.sum_capacity().value() * 1e-12);
    EXPECT_TRUE(region.contains(corner));
  }
}

TEST(CapacityRegion, CornersMatchSicRateEquations) {
  const auto region = region_db(20.0, 12.0);
  const auto arrival = TwoSignalArrival::make(
      Milliwatts{Decibels{20.0}.linear()}, Milliwatts{Decibels{12.0}.linear()},
      kN0);
  // "User 1 decoded first" with user 1 the stronger signal = the paper's
  // SIC corner: eq (1) for the stronger, eq (2) for the weaker.
  const auto corner = region.corner_user1_decoded_first();
  EXPECT_DOUBLE_EQ(corner.r1.value(), sic_rate_stronger(kB, arrival).value());
  EXPECT_DOUBLE_EQ(corner.r2.value(), sic_rate_weaker(kB, arrival).value());
}

TEST(CapacityRegion, DominantFaceInterpolatesCorners) {
  const auto region = region_db(25.0, 10.0);
  const auto a = region.corner_user1_decoded_first();
  const auto b = region.corner_user2_decoded_first();
  const auto mid = region.dominant_face_point(0.5);
  EXPECT_NEAR(mid.r1.value(), 0.5 * (a.r1.value() + b.r1.value()),
              mid.r1.value() * 1e-12);
  EXPECT_NEAR(mid.r1.value() + mid.r2.value(),
              region.sum_capacity().value(),
              region.sum_capacity().value() * 1e-12);
  EXPECT_TRUE(region.contains(mid));
  EXPECT_DOUBLE_EQ(region.dominant_face_point(0.0).r1.value(), a.r1.value());
  EXPECT_NEAR(region.dominant_face_point(1.0).r2.value(), b.r2.value(),
              b.r2.value() * 1e-12);
}

TEST(CapacityRegion, ContainsRejectsOutside) {
  const auto region = region_db(20.0, 12.0);
  EXPECT_FALSE(region.contains(
      RatePair{BitsPerSecond{region.max_r1().value() * 1.01},
               BitsPerSecond{0.0}}));
  EXPECT_FALSE(region.contains(
      RatePair{region.max_r1(), region.max_r2()}));  // violates sum face
  EXPECT_FALSE(region.contains(RatePair{BitsPerSecond{-1.0},
                                        BitsPerSecond{0.0}}));
  EXPECT_TRUE(region.contains(RatePair{BitsPerSecond{0.0}, BitsPerSecond{0.0}}));
}

TEST(CapacityRegion, SicBeatsTimeSharingStrictlyInside) {
  // The whole point of Section 2: the SIC corners lie strictly outside the
  // TDMA (time-sharing) region whenever both signals are live.
  Rng rng{5};
  for (int i = 0; i < 200; ++i) {
    const auto region =
        region_db(rng.uniform(3.0, 40.0), rng.uniform(3.0, 40.0));
    const auto corner = region.corner_user1_decoded_first();
    EXPECT_TRUE(region.contains(corner));
    EXPECT_FALSE(region.achievable_by_time_sharing(corner))
        << "SIC corner should beat TDMA";
  }
}

TEST(CapacityRegion, TimeSharingRegionIsInsideRegion) {
  Rng rng{6};
  const auto region = region_db(22.0, 14.0);
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 1.0);
    const RatePair tdma{
        BitsPerSecond{t * region.max_r1().value()},
        BitsPerSecond{(1.0 - t) * region.max_r2().value()}};
    EXPECT_TRUE(region.achievable_by_time_sharing(tdma));
    EXPECT_TRUE(region.contains(tdma));
  }
}

TEST(CapacityRegion, DegenerateSilentUser) {
  const auto region = region_db(20.0, -300.0);  // user 2 effectively silent
  EXPECT_NEAR(region.sum_capacity().value(), region.max_r1().value(),
              region.max_r1().value() * 1e-9);
  const auto corner = region.corner_user2_decoded_first();
  EXPECT_DOUBLE_EQ(corner.r1.value(), region.max_r1().value());
}

}  // namespace
}  // namespace sic::phy
