#include "phy/rate_table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sic::phy {
namespace {

TEST(RateTable, DotElevenBHasFourRates) {
  EXPECT_EQ(RateTable::dot11b().entries().size(), 4u);
  EXPECT_DOUBLE_EQ(RateTable::dot11b().top_rate().megabits(), 11.0);
}

TEST(RateTable, DotElevenGHasEightRates) {
  EXPECT_EQ(RateTable::dot11g().entries().size(), 8u);
  EXPECT_DOUBLE_EQ(RateTable::dot11g().base_rate().megabits(), 6.0);
  EXPECT_DOUBLE_EQ(RateTable::dot11g().top_rate().megabits(), 54.0);
}

TEST(RateTable, DotElevenNIsFinerThanG) {
  // The paper's granularity argument: 4 (b) vs 8 (g) vs 32 nominal MCS in
  // n. On the SINR frontier many of the 32 MCS are redundant (a lower
  // stream count reaches the same rate more cheaply), so the usable ladder
  // is ~14-18 rungs — still much finer than g's 8.
  EXPECT_GT(RateTable::dot11n().entries().size(),
            RateTable::dot11g().entries().size());
  EXPECT_GE(RateTable::dot11n().entries().size(), 12u);
  EXPECT_DOUBLE_EQ(RateTable::dot11n().top_rate().megabits(), 260.0);
}

TEST(RateTable, BestRateIsStepFunction) {
  const auto& g = RateTable::dot11g();
  EXPECT_DOUBLE_EQ(g.best_rate(Decibels{5.0}).value(), 0.0);  // below base
  EXPECT_DOUBLE_EQ(g.best_rate(Decibels{6.0}).megabits(), 6.0);
  EXPECT_DOUBLE_EQ(g.best_rate(Decibels{9.5}).megabits(), 12.0);
  EXPECT_DOUBLE_EQ(g.best_rate(Decibels{24.6}).megabits(), 54.0);
  EXPECT_DOUBLE_EQ(g.best_rate(Decibels{60.0}).megabits(), 54.0);
}

TEST(RateTable, BestRateMonotone) {
  for (const RateTable* table :
       {&RateTable::dot11b(), &RateTable::dot11g(), &RateTable::dot11n()}) {
    double prev = -1.0;
    for (double db = -5.0; db <= 50.0; db += 0.25) {
      const double r = table->best_rate(Decibels{db}).value();
      EXPECT_GE(r, prev) << table->name() << " at " << db << " dB";
      prev = r;
    }
  }
}

TEST(RateTable, MinSinrForInvertsBestRate) {
  const auto& g = RateTable::dot11g();
  for (const auto& e : g.entries()) {
    EXPECT_DOUBLE_EQ(g.min_sinr_for(e.rate).value(), e.min_sinr.value());
    EXPECT_TRUE(g.supports(e.rate, e.min_sinr));
    EXPECT_FALSE(g.supports(e.rate, e.min_sinr - Decibels{0.1}));
  }
}

TEST(RateTable, MinSinrForUnknownRateThrows) {
  EXPECT_THROW((void)RateTable::dot11g().min_sinr_for(megabits_per_second(7.0)),
               std::logic_error);
}

TEST(RateTable, ConstructorRejectsNonMonotone) {
  EXPECT_THROW(RateTable("bad", {{megabits_per_second(6.0), Decibels{6.0}},
                                 {megabits_per_second(5.0), Decibels{7.0}}}),
               std::logic_error);
  EXPECT_THROW(RateTable("bad", {{megabits_per_second(6.0), Decibels{6.0}},
                                 {megabits_per_second(9.0), Decibels{6.0}}}),
               std::logic_error);
  EXPECT_THROW(RateTable("empty", {}), std::logic_error);
}

TEST(RateTable, ThresholdsStrictlyIncreasingInAllCanonicalTables) {
  for (const RateTable* table :
       {&RateTable::dot11b(), &RateTable::dot11g(), &RateTable::dot11n()}) {
    const auto entries = table->entries();
    for (std::size_t i = 1; i < entries.size(); ++i) {
      EXPECT_GT(entries[i].rate.value(), entries[i - 1].rate.value());
      EXPECT_GT(entries[i].min_sinr.value(), entries[i - 1].min_sinr.value());
    }
  }
}

}  // namespace
}  // namespace sic::phy
