#ifndef SICMAC_MAC_SIM_TIME_HPP
#define SICMAC_MAC_SIM_TIME_HPP

/// \file sim_time.hpp
/// Simulation time as integer nanoseconds — exact comparisons and no drift
/// across the event queue.

#include <cstdint>

namespace sic::mac {

using SimTime = std::int64_t;  ///< nanoseconds since simulation start

inline constexpr SimTime kNever = INT64_MAX;

[[nodiscard]] constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9);
}

[[nodiscard]] constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) * 1e-9;
}

[[nodiscard]] constexpr SimTime from_micros(double us) {
  return static_cast<SimTime>(us * 1e3);
}

}  // namespace sic::mac

#endif  // SICMAC_MAC_SIM_TIME_HPP
