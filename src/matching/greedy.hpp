#ifndef SICMAC_MATCHING_GREEDY_HPP
#define SICMAC_MATCHING_GREEDY_HPP

/// \file greedy.hpp
/// Greedy minimum-weight perfect matching: repeatedly take the globally
/// cheapest pair among unmatched vertices. Used as the ablation baseline
/// against the exact blossom matcher (DESIGN.md perf benches) — it is a
/// 2-approximation-ish heuristic that a naive AP implementation might ship.

#include "matching/graph.hpp"

namespace sic::matching {

/// Requires even n. O(n² log n).
[[nodiscard]] Matching greedy_min_weight_perfect_matching(const CostMatrix& costs);

}  // namespace sic::matching

#endif  // SICMAC_MATCHING_GREEDY_HPP
