/// Ablation — practical-receiver imperfections (Section 9; [13]): sweeps
/// the cancellation residual and the ADC dynamic-range limit over the
/// Fig. 11a Monte Carlo and reports how the SIC gain CDF collapses. The
/// paper: "imperfections in interference cancellation will sharply cut
/// down SIC's usefulness" and "if the stronger signal is significantly
/// stronger ... due to ADC saturation issues, recovering the weaker signal
/// becomes difficult."

#include <cstdio>
#include <vector>

#include "analysis/stats.hpp"
#include "bench_util.hpp"
#include "core/upload_pair.hpp"
#include "topology/samplers.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sic;
  bench::header("Ablation — imperfect cancellation and ADC saturation",
                "Section 9: imperfections sharply cut down SIC's usefulness");

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  topology::SamplerConfig config;
  constexpr int kTrials = 8000;
  constexpr std::uint64_t kSeed = 99;

  const auto run = [&](const core::SicImpairments& impairments) {
    Rng rng{kSeed};
    std::vector<double> gains;
    gains.reserve(kTrials);
    for (int i = 0; i < kTrials; ++i) {
      const auto sample = topology::sample_two_to_one(rng, config);
      const auto ctx = core::UploadPairContext::make(sample.s1, sample.s2,
                                                     sample.noise, shannon);
      gains.push_back(core::realized_gain(ctx, impairments));
    }
    return analysis::EmpiricalCdf{std::move(gains)};
  };

  std::printf("cancellation residual sweep (no ADC limit):\n");
  for (const double residual : {0.0, 0.001, 0.003, 0.01, 0.03, 0.1}) {
    core::SicImpairments impairments;
    impairments.cancellation_residual = residual;
    const auto cdf = run(impairments);
    char label[64];
    std::snprintf(label, sizeof(label), "residual %.3f", residual);
    bench::print_fractions(label, cdf);
  }

  std::printf("\nADC dynamic-range sweep (perfect cancellation):\n");
  for (const double limit_db : {40.0, 30.0, 25.0, 20.0, 15.0, 10.0}) {
    core::SicImpairments impairments;
    impairments.max_decodable_disparity = Decibels{limit_db};
    const auto cdf = run(impairments);
    char label[64];
    std::snprintf(label, sizeof(label), "ADC limit %.0f dB", limit_db);
    bench::print_fractions(label, cdf);
  }
  return 0;
}
