#include "topology/geometry.hpp"

#include <gtest/gtest.h>

namespace sic::topology {
namespace {

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance(Point{0, 0}, Point{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance(Point{1, 1}, Point{1, 1}), 0.0);
}

TEST(Geometry, RandomInRectStaysInside) {
  Rng rng{3};
  for (int i = 0; i < 1000; ++i) {
    const Point p = random_in_rect(rng, -2.0, 1.0, 5.0, 4.0);
    EXPECT_GE(p.x, -2.0);
    EXPECT_LT(p.x, 5.0);
    EXPECT_GE(p.y, 1.0);
    EXPECT_LT(p.y, 4.0);
  }
}

TEST(Geometry, RandomInDiscStaysInside) {
  Rng rng{4};
  const Point c{10.0, -5.0};
  for (int i = 0; i < 1000; ++i) {
    const Point p = random_in_disc(rng, c, 7.0);
    EXPECT_LE(distance(p, c), 7.0 + 1e-12);
  }
}

TEST(Geometry, RandomInDiscIsAreaUniform) {
  // Half the points should land beyond r/sqrt(2) (equal-area split).
  Rng rng{5};
  const Point c{0.0, 0.0};
  int outer = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    if (distance(random_in_disc(rng, c, 1.0), c) > 1.0 / std::sqrt(2.0)) {
      ++outer;
    }
  }
  EXPECT_NEAR(static_cast<double>(outer) / kN, 0.5, 0.02);
}

TEST(Geometry, AnnulusRespectsRadii) {
  Rng rng{6};
  const Point c{0.0, 0.0};
  for (int i = 0; i < 1000; ++i) {
    const double d = distance(random_in_annulus(rng, c, 2.0, 3.0), c);
    EXPECT_GE(d, 2.0 - 1e-12);
    EXPECT_LE(d, 3.0 + 1e-12);
  }
}

TEST(Geometry, AnnulusRejectsBadRadii) {
  Rng rng{6};
  EXPECT_THROW((void)random_in_annulus(rng, Point{}, 3.0, 2.0),
               std::logic_error);
}

}  // namespace
}  // namespace sic::topology
