#ifndef SICMAC_UTIL_MATHX_HPP
#define SICMAC_UTIL_MATHX_HPP

/// \file mathx.hpp
/// Small math helpers shared across modules.

#include <algorithm>
#include <cmath>

namespace sic {

/// Relative/absolute tolerance comparison used by tests and by the
/// completion-time algebra when deciding "equal bitrates".
[[nodiscard]] inline bool approx_equal(double a, double b, double rel = 1e-9,
                                       double abs = 1e-12) {
  return std::fabs(a - b) <= std::max(abs, rel * std::max(std::fabs(a), std::fabs(b)));
}

/// log2(1 + x) that is well conditioned for small x.
[[nodiscard]] inline double log2_1p(double x) {
  return std::log1p(x) / std::log(2.0);
}

/// Linear interpolation.
[[nodiscard]] inline double lerp(double a, double b, double t) {
  return a + (b - a) * t;
}

/// Intentional bit-exact double comparison. The engine's determinism
/// contract is *bitwise* reproducibility, so a handful of sites genuinely
/// want `a == b` (cache-hit tests, stable-sort tie detection, "value
/// unchanged" fast paths) rather than a tolerance. Routing them through
/// this helper states that intent and is the sanctioned exemption to
/// sic_lint R7's ban on raw ==/!= between computed doubles.
[[nodiscard]] inline bool bitwise_equal(double a, double b) {
  return a == b;
}

}  // namespace sic

#endif  // SICMAC_UTIL_MATHX_HPP
