#include "channel/fading.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace sic::channel {
namespace {

TEST(Fading, StationaryMoments) {
  Rng rng{3};
  Ar1ShadowingTrack track{0.9, Decibels{5.0}, rng};
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kN = 60000;
  for (int i = 0; i < kN; ++i) {
    const double x = track.step(rng).value();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.25);
  EXPECT_NEAR(std::sqrt(sum2 / kN), 5.0, 0.3);
}

TEST(Fading, RhoOneIsFrozenChannel) {
  Rng rng{5};
  Ar1ShadowingTrack track{1.0, Decibels{6.0}, rng};
  const double start = track.current().value();
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(track.step(rng).value(), start);
  }
}

TEST(Fading, RhoZeroIsIidShadowing) {
  Rng rng{7};
  Ar1ShadowingTrack track{0.0, Decibels{6.0}, rng};
  // Lag-1 autocorrelation of successive steps should vanish.
  std::vector<double> xs;
  for (int i = 0; i < 40000; ++i) xs.push_back(track.step(rng).value());
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    num += xs[i] * xs[i - 1];
    den += xs[i] * xs[i];
  }
  EXPECT_NEAR(num / den, 0.0, 0.03);
}

TEST(Fading, HigherRhoMeansStickierTrack) {
  const auto lag1 = [](double rho) {
    Rng rng{11};
    Ar1ShadowingTrack track{rho, Decibels{6.0}, rng};
    std::vector<double> xs;
    for (int i = 0; i < 40000; ++i) xs.push_back(track.step(rng).value());
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 1; i < xs.size(); ++i) {
      num += xs[i] * xs[i - 1];
      den += xs[i] * xs[i];
    }
    return num / den;
  };
  const double r03 = lag1(0.3);
  const double r09 = lag1(0.9);
  EXPECT_NEAR(r03, 0.3, 0.05);
  EXPECT_NEAR(r09, 0.9, 0.05);
  EXPECT_GT(r09, r03);
}

TEST(Fading, BadParametersRejected) {
  Rng rng{13};
  EXPECT_THROW((Ar1ShadowingTrack{1.5, Decibels{3.0}, rng}),
               std::logic_error);
  EXPECT_THROW((Ar1ShadowingTrack{0.5, Decibels{-1.0}, rng}),
               std::logic_error);
}

}  // namespace
}  // namespace sic::channel
