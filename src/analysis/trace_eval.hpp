#ifndef SICMAC_ANALYSIS_TRACE_EVAL_HPP
#define SICMAC_ANALYSIS_TRACE_EVAL_HPP

/// \file trace_eval.hpp
/// The Section 7 trace-driven evaluations.
///
/// Upload (Fig. 13): for every (snapshot, AP) with at least two backlogged
/// clients, compare the serial upload time against the SIC-aware schedule
/// (link pairing), pairing + power control, and pairing + multirate
/// packetization; report the per-cell gain samples.
///
/// Download (Fig. 14): for pairs of AP→client links drawn from a
/// measurement campaign, report the SIC gain with and without packet
/// packing, under (a) arbitrary Shannon bitrates and (b) the discrete
/// 802.11g rate set.

#include <cstdint>
#include <vector>

#include "core/scheduler.hpp"
#include "phy/rate_adapter.hpp"
#include "trace/link_trace.hpp"
#include "trace/snapshot.hpp"
#include "util/units.hpp"

namespace sic::analysis {

struct UploadTraceGains {
  std::vector<double> pairing;        ///< SIC-aware pairing alone
  std::vector<double> power_control;  ///< pairing + Section 5.2
  std::vector<double> multirate;      ///< pairing + Section 5.3
  std::vector<double> greedy_pairing; ///< ablation: greedy instead of blossom
  int cells_evaluated = 0;            ///< (snapshot, AP) cells with >= 2 clients
};

struct UploadTraceEvalConfig {
  double packet_bits = 12000.0;
  Dbm noise_floor{-94.0};
  int min_clients = 2;
  int max_clients = 30;  ///< safety cap per cell (O(n²) pair costs)
  /// Worker threads for the (snapshot, AP) cell cross product (0 = all
  /// hardware threads). Results are bit-identical for any value — cells
  /// are evaluated index-addressed on the parallel engine.
  int threads = 1;
};

[[nodiscard]] UploadTraceGains evaluate_upload_trace(
    const trace::RssiTrace& trace, const phy::RateAdapter& adapter,
    const UploadTraceEvalConfig& config = {});

struct DownloadTraceGains {
  std::vector<double> plain;    ///< SIC without packing
  std::vector<double> packing;  ///< SIC with packet packing
};

struct DownloadTraceEvalConfig {
  double packet_bits = 12000.0;
  /// Number of random link-pair scenarios to draw; the full cross product
  /// is ~10⁵ for the default campaign, so sampling keeps benches snappy
  /// without changing the CDF.
  int pair_samples = 5000;
  /// Scenarios pair arbitrary AP→client links, as in the paper's campaign
  /// ("we compute the relative throughput gain with SIC for each scenario
  /// of two transmitter-receiver (AP-client) pairs"), but a scenario is
  /// only valid if both serving links actually work: the measured best-
  /// bitrate methodology presupposes a link sustaining the base rate. This
  /// floor (just above 802.11g's 6 Mbps threshold) encodes that.
  Decibels min_link_snr{6.5};
  std::uint64_t seed = 7;
  /// Worker threads for the scenario sweep (0 = all hardware threads).
  /// Each scenario draws from the counter-based substream
  /// Rng::at(seed, scenario), so results are bit-identical for any value.
  int threads = 1;
};

[[nodiscard]] DownloadTraceGains evaluate_download_trace(
    const trace::LinkTrace& trace, const phy::RateAdapter& adapter,
    const DownloadTraceEvalConfig& config = {});

}  // namespace sic::analysis

#endif  // SICMAC_ANALYSIS_TRACE_EVAL_HPP
