#include <gtest/gtest.h>

#include <cmath>

#include "channel/link.hpp"
#include "channel/noise.hpp"
#include "channel/pathloss.hpp"
#include "channel/shadowing.hpp"
#include "channel/two_link_rss.hpp"

namespace sic::channel {
namespace {

TEST(Noise, ThermalFloorAt20MhzIsAboutMinus94Dbm) {
  const Dbm floor = thermal_noise_floor(megahertz(20.0));
  EXPECT_NEAR(floor.value(), -94.0, 0.2);
}

TEST(Noise, ScalesWithBandwidth) {
  const double f20 = thermal_noise_floor(megahertz(20.0)).value();
  const double f40 = thermal_noise_floor(megahertz(40.0)).value();
  EXPECT_NEAR(f40 - f20, 3.0103, 0.01);  // doubling bandwidth = +3 dB
}

TEST(Noise, DefaultFloorMatchesThermal) {
  EXPECT_NEAR(Dbm::from_milliwatts(default_noise_floor()).value(), -94.0, 0.2);
}

TEST(LogDistancePathLoss, FreeSpaceReferenceAt24Ghz) {
  const auto model = LogDistancePathLoss::for_carrier(2.0);
  EXPECT_NEAR(model.loss(1.0).value(), 40.05, 0.1);  // classic 40 dB @ 1 m
}

TEST(LogDistancePathLoss, TenXDistanceCostsTenAlphaDb) {
  const auto model = LogDistancePathLoss::for_carrier(3.5);
  const double l10 = model.loss(10.0).value();
  const double l100 = model.loss(100.0).value();
  EXPECT_NEAR(l100 - l10, 35.0, 1e-9);
}

TEST(LogDistancePathLoss, ClampsBelowReferenceDistance) {
  const auto model = LogDistancePathLoss::for_carrier(3.0);
  EXPECT_DOUBLE_EQ(model.loss(0.01).value(), model.loss(1.0).value());
}

TEST(LogDistancePathLoss, ReceivedPower) {
  const auto model = LogDistancePathLoss::for_carrier(3.0);
  const Dbm rx = model.received_power(Dbm{20.0}, 10.0);
  EXPECT_NEAR(rx.value(), 20.0 - model.loss(10.0).value(), 1e-9);
}

TEST(LogDistancePathLoss, RejectsBadParameters) {
  EXPECT_THROW(LogDistancePathLoss(-1.0, Decibels{40.0}), std::logic_error);
  EXPECT_THROW(LogDistancePathLoss(3.0, Decibels{40.0}, 0.0),
               std::logic_error);
}

TEST(NormalizedPathLoss, PowerLaw) {
  const NormalizedPathLoss model{4.0};
  EXPECT_DOUBLE_EQ(model.received_power(1.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(model.received_power(2.0).value(), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(model.received_power(10.0).value(), 1e-4);
}

TEST(NormalizedPathLoss, ClampsInsideOneMeter) {
  const NormalizedPathLoss model{4.0};
  EXPECT_DOUBLE_EQ(model.received_power(0.1).value(), 1.0);
}

TEST(Shadowing, ZeroMeanAndConfiguredSigma) {
  const LogNormalShadowing shadow{Decibels{6.0}};
  Rng rng{5};
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = shadow.sample(rng).value();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.15);
  EXPECT_NEAR(std::sqrt(sum2 / kN), 6.0, 0.15);
}

TEST(LinkBudget, SnrAndSinr) {
  const LinkBudget link{Milliwatts{100.0}, Milliwatts{1.0}};
  EXPECT_DOUBLE_EQ(link.snr(), 100.0);
  EXPECT_DOUBLE_EQ(link.sinr_against(Milliwatts{9.0}), 10.0);
}

TEST(LinkBudget, FromDbConstructors) {
  const LinkBudget a = LinkBudget::from_db(Dbm{-60.0}, Dbm{-90.0});
  EXPECT_NEAR(Decibels::from_linear(a.snr()).value(), 30.0, 1e-9);
  const LinkBudget b = LinkBudget::from_snr_db(Decibels{25.0});
  EXPECT_NEAR(Decibels::from_linear(b.snr()).value(), 25.0, 1e-9);
  EXPECT_DOUBLE_EQ(b.noise.value(), 1.0);
}

TEST(TwoLinkRss, MirrorSwapsRoles) {
  const TwoLinkRss rss{Milliwatts{1.0}, Milliwatts{2.0}, Milliwatts{3.0},
                       Milliwatts{4.0}, Milliwatts{0.5}};
  const TwoLinkRss m = rss.mirrored();
  EXPECT_DOUBLE_EQ(m.s11.value(), 4.0);
  EXPECT_DOUBLE_EQ(m.s12.value(), 3.0);
  EXPECT_DOUBLE_EQ(m.s21.value(), 2.0);
  EXPECT_DOUBLE_EQ(m.s22.value(), 1.0);
  EXPECT_DOUBLE_EQ(m.noise.value(), 0.5);
  // Mirroring twice is the identity.
  const TwoLinkRss mm = m.mirrored();
  EXPECT_DOUBLE_EQ(mm.s11.value(), rss.s11.value());
  EXPECT_DOUBLE_EQ(mm.s12.value(), rss.s12.value());
}

}  // namespace
}  // namespace sic::channel
