#include "mac/station.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sic::mac {

DcfStation::DcfStation(EventQueue& queue, Medium& medium, MacNodeId id,
                       MacNodeId ap, BitsPerSecond data_rate, Rng rng)
    : queue_(&queue),
      medium_(&medium),
      id_(id),
      ap_(ap),
      data_rate_(data_rate),
      rng_(std::move(rng)),
      cw_(medium.phy().cw_min),
      next_frame_id_(static_cast<std::uint64_t>(id) << 32) {
  SIC_CHECK(id != ap);
  medium_->attach(id_, this);
}

void DcfStation::enqueue(int count, double bits) {
  SIC_CHECK(count >= 0 && bits > 0.0);
  for (int i = 0; i < count; ++i) {
    Frame f;
    f.id = next_frame_id_++;
    f.type = FrameType::kData;
    f.src = id_;
    f.dst = ap_;
    f.payload_bits = bits;
    pending_.push_back(f);
  }
}

void DcfStation::start() {
  if (pending_.empty() || state_ != State::kIdle) return;
  state_ = State::kWaitIdle;
  try_begin_contention();
}

bool DcfStation::medium_busy() const {
  if (queue_->now() < nav_until_) return true;  // virtual carrier sense
  return medium_->carrier_busy(id_);
}

SimTime DcfStation::data_duration() const {
  SIC_DCHECK(!pending_.empty());
  return medium_->frame_duration(pending_.front(), data_rate_);
}

void DcfStation::try_begin_contention() {
  if (state_ == State::kWaitIdle && !medium_busy()) begin_difs();
}

void DcfStation::begin_difs() {
  state_ = State::kDifs;
  const std::uint64_t epoch = ++timer_epoch_;
  queue_->schedule_after(medium_->phy().difs, [this, epoch] {
    if (epoch != timer_epoch_ || state_ != State::kDifs) return;
    if (medium_busy()) {
      state_ = State::kWaitIdle;
      return;
    }
    begin_backoff();
  });
}

void DcfStation::begin_backoff() {
  state_ = State::kBackoff;
  if (backoff_slots_ < 0) backoff_slots_ = rng_.uniform_int(0, cw_);
  if (backoff_slots_ == 0) {
    transmit_head();
    return;
  }
  backoff_started_ = queue_->now();
  const std::uint64_t epoch = ++timer_epoch_;
  const int slots = backoff_slots_;
  queue_->schedule_after(slots * medium_->phy().slot, [this, epoch] {
    if (epoch != timer_epoch_ || state_ != State::kBackoff) return;
    if (medium_busy()) {  // same-timestamp race with a foreign tx start
      pause_backoff();
      return;
    }
    backoff_slots_ = 0;
    transmit_head();
  });
}

void DcfStation::pause_backoff() {
  const SimTime elapsed = queue_->now() - backoff_started_;
  const int consumed = static_cast<int>(elapsed / medium_->phy().slot);
  backoff_slots_ = std::max(0, backoff_slots_ - consumed);
  ++timer_epoch_;  // kill the pending backoff timer
  state_ = State::kWaitIdle;
}

void DcfStation::transmit_head() {
  SIC_CHECK(!pending_.empty());
  const PhyParams& phy = medium_->phy();
  if (use_rts_cts_) {
    // RTS first; its NAV covers CTS + data + ACK.
    state_ = State::kTx;
    in_flight_ = true;
    ++stats_.attempts;
    Frame rts;
    rts.id = (pending_.front().id << 2) | 1;
    rts.type = FrameType::kRts;
    rts.src = id_;
    rts.dst = ap_;
    rts.payload_bits = phy.rts_bits;
    rts.nav_duration_ns = phy.sifs + phy.cts_duration() + phy.sifs +
                          data_duration() + phy.sifs + phy.ack_duration();
    medium_->transmit(rts, phy.ack_rate);
    const SimTime timeout = medium_->frame_duration(rts, phy.ack_rate) +
                            phy.sifs + phy.cts_duration() + phy.slot;
    const std::uint64_t epoch = ++timer_epoch_;
    state_ = State::kAwaitCts;
    queue_->schedule_after(timeout, [this, epoch] { on_ack_timeout(epoch); });
    return;
  }
  send_data_frame();
  ++stats_.attempts;
}

void DcfStation::send_data_frame() {
  SIC_CHECK(!pending_.empty());
  state_ = State::kTx;
  in_flight_ = true;
  const Frame& frame = pending_.front();
  medium_->transmit(frame, data_rate_);
  const SimTime air = medium_->frame_duration(frame, data_rate_);
  // Generous ACK window: the AP may serialize two ACKs after a SIC decode,
  // and an SIC AP defers its ACK while still receiving a partner frame.
  const PhyParams& phy = medium_->phy();
  const SimTime timeout =
      air + phy.sifs + 2 * (phy.ack_duration() + phy.sifs) + phy.slot;
  const std::uint64_t epoch = ++timer_epoch_;
  state_ = State::kAwaitAck;
  queue_->schedule_after(timeout, [this, epoch] { on_ack_timeout(epoch); });
}

void DcfStation::on_ack_timeout(std::uint64_t epoch) {
  if (epoch != timer_epoch_) return;
  if (state_ != State::kAwaitAck && state_ != State::kAwaitCts) return;
  frame_failed();
}

void DcfStation::frame_succeeded() {
  ++timer_epoch_;
  ++stats_.delivered;
  in_flight_ = false;
  pending_.pop_front();
  retry_count_ = 0;
  cw_ = medium_->phy().cw_min;
  backoff_slots_ = -1;
  stats_.completion_time = queue_->now();
  if (pending_.empty()) {
    state_ = State::kIdle;
  } else {
    state_ = State::kWaitIdle;
    try_begin_contention();
  }
}

void DcfStation::frame_failed() {
  ++timer_epoch_;
  in_flight_ = false;
  ++retry_count_;
  ++stats_.retries;
  const PhyParams& phy = medium_->phy();
  if (retry_count_ > phy.max_retries) {
    ++stats_.drops;
    pending_.pop_front();
    retry_count_ = 0;
    cw_ = phy.cw_min;
  } else {
    cw_ = std::min(2 * (cw_ + 1) - 1, phy.cw_max);
  }
  backoff_slots_ = -1;
  if (pending_.empty()) {
    state_ = State::kIdle;
    stats_.completion_time = queue_->now();
  } else {
    state_ = State::kWaitIdle;
    try_begin_contention();
  }
}

void DcfStation::on_channel_update() {
  switch (state_) {
    case State::kWaitIdle:
      try_begin_contention();
      break;
    case State::kDifs:
      if (medium_busy()) {
        ++timer_epoch_;
        state_ = State::kWaitIdle;
      }
      break;
    case State::kBackoff:
      if (medium_busy()) pause_backoff();
      break;
    case State::kIdle:
    case State::kTx:
    case State::kAwaitCts:
    case State::kAwaitAck:
      break;
  }
}

void DcfStation::on_frame_received(const Frame& frame, bool decoded) {
  if (!decoded || pending_.empty()) return;
  if (frame.type == FrameType::kCts) {
    if (state_ != State::kAwaitCts) return;
    if (frame.acked_frame_id != ((pending_.front().id << 2) | 1)) return;
    // Channel reserved; data goes out after SIFS.
    ++timer_epoch_;
    state_ = State::kTx;
    const std::uint64_t epoch = timer_epoch_;
    queue_->schedule_after(medium_->phy().sifs, [this, epoch] {
      if (epoch != timer_epoch_ || state_ != State::kTx) return;
      send_data_frame();
    });
    return;
  }
  if (frame.type != FrameType::kAck) return;
  if (state_ != State::kAwaitAck) return;
  if (frame.acked_frame_id != pending_.front().id) return;
  frame_succeeded();
}

void DcfStation::on_frame_overheard(const Frame& frame) {
  // Virtual carrier sense: honor NAV reservations in frames meant for
  // others (the frame has just *ended*, so the reservation runs from now).
  if (frame.nav_duration_ns > 0) {
    nav_until_ = std::max(nav_until_, queue_->now() + frame.nav_duration_ns);
    // The reservation may have started mid-backoff.
    if (state_ == State::kBackoff) pause_backoff();
    if (state_ == State::kDifs) {
      ++timer_epoch_;
      state_ = State::kWaitIdle;
    }
    // Re-evaluate contention when the reservation lapses (no other event
    // is guaranteed to fire then).
    queue_->schedule_at(nav_until_, [this] {
      if (state_ == State::kWaitIdle) try_begin_contention();
    });
  }
}

}  // namespace sic::mac
