#ifndef SICMAC_BENCH_PERF_UTIL_HPP
#define SICMAC_BENCH_PERF_UTIL_HPP

/// \file perf_util.hpp
/// Shared main() for the google-benchmark perf binaries. Runs the
/// registered benchmarks as BENCHMARK_MAIN() would, then emits a one-line
/// JSON summary ({"bench":...,"wall_ms":...,"throughput":...}, throughput
/// in benchmarks completed per second) so CI can trend the total perf cost
/// of a binary without parsing the full benchmark table.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

namespace sic::bench {

inline int run_perf_main(const char* name, int argc, char** argv) {
  // Accept (and drop) the repo-wide `--threads N` flag so perf binaries can
  // be invoked uniformly with the figure benches; google-benchmark would
  // otherwise reject it as unrecognized. The google-benchmark perf loops
  // are single-threaded microbenches — thread scaling is perf_montecarlo's
  // job.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 < argc && argv[i + 1][0] != '-') ++i;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const auto start = std::chrono::steady_clock::now();
  const std::size_t n_run = benchmark::RunSpecifiedBenchmarks();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  const double throughput =
      wall_ms > 0.0 ? 1e3 * static_cast<double>(n_run) / wall_ms : 0.0;
  std::printf("{\"bench\":\"%s\",\"wall_ms\":%.1f,\"throughput\":%.3f}\n",
              name, wall_ms, throughput);
  benchmark::Shutdown();
  return 0;
}

}  // namespace sic::bench

#define SIC_PERF_MAIN(name)                               \
  int main(int argc, char** argv) {                       \
    return ::sic::bench::run_perf_main(name, argc, argv); \
  }

#endif  // SICMAC_BENCH_PERF_UTIL_HPP
