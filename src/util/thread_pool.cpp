#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace sic {

ThreadPool::ThreadPool(int threads) {
  SIC_CHECK(threads >= 1);
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock{mu_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

int ThreadPool::resolve(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

void ThreadPool::worker_loop() {
  std::uint64_t last_job = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock{mu_};
      work_cv_.wait(lock, [&] { return stop_ || job_id_ != last_job; });
      if (stop_) return;
      last_job = job_id_;
      ++workers_in_job_;
    }
    drain();
    {
      std::lock_guard<std::mutex> lock{mu_};
      --workers_in_job_;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::drain() {
  for (;;) {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    {
      std::lock_guard<std::mutex> lock{mu_};
      if (next_ >= n_) return;
      begin = next_;
      end = std::min(n_, begin + chunk_);
      next_ = end;
    }
    try {
      (*body_)(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock{mu_};
      if (!error_) error_ = std::current_exception();
      next_ = n_;  // abandon the remaining range
      return;
    }
  }
}

void ThreadPool::parallel_for(std::int64_t n, std::int64_t chunk,
                              const ChunkFn& body) {
  SIC_CHECK(n >= 0 && chunk >= 1);
  if (n == 0) return;
  {
    std::lock_guard<std::mutex> lock{mu_};
    body_ = &body;
    n_ = n;
    chunk_ = chunk;
    next_ = 0;
    error_ = nullptr;
    ++job_id_;
  }
  work_cv_.notify_all();
  drain();  // the calling thread works too
  std::unique_lock<std::mutex> lock{mu_};
  done_cv_.wait(lock, [&] { return workers_in_job_ == 0; });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace sic
