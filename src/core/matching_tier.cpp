#include "core/matching_tier.hpp"

#include "matching/approx.hpp"
#include "matching/blossom.hpp"
#include "matching/greedy.hpp"

namespace sic::core {

MatchingTier resolve_matching_tier(SchedulerOptions::Pairing pairing,
                                   int num_clients, int auto_tier_threshold) {
  switch (pairing) {
    case SchedulerOptions::Pairing::kBlossom:
      return MatchingTier::kBlossom;
    case SchedulerOptions::Pairing::kGreedy:
      return MatchingTier::kGreedy;
    case SchedulerOptions::Pairing::kApprox:
      return MatchingTier::kApprox;
    case SchedulerOptions::Pairing::kAuto:
      return num_clients >= auto_tier_threshold ? MatchingTier::kApprox
                                                : MatchingTier::kBlossom;
  }
  return MatchingTier::kBlossom;
}

matching::Matching run_matching_tier(
    const matching::CostMatrix& costs, MatchingTier tier,
    std::span<const double> vertex_serial_cost, Decibels sparsify_margin,
    std::vector<matching::WeightedEdge>& edge_scratch) {
  switch (tier) {
    case MatchingTier::kBlossom:
      return matching::min_weight_perfect_matching(costs);
    case MatchingTier::kGreedy:
      return matching::greedy_min_weight_perfect_matching(costs, edge_scratch);
    case MatchingTier::kApprox:
      return matching::approx_min_weight_perfect_matching(
          costs, vertex_serial_cost, sparsify_margin, edge_scratch);
  }
  return matching::min_weight_perfect_matching(costs);
}

}  // namespace sic::core
