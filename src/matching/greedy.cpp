#include "matching/greedy.hpp"

#include <algorithm>
#include <cstdint>
#include <string>

#include "matching/error.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/mathx.hpp"

namespace sic::matching {

Matching greedy_min_weight_perfect_matching(const CostMatrix& costs) {
  std::vector<WeightedEdge> edges;
  return greedy_min_weight_perfect_matching(costs, edges);
}

Matching greedy_min_weight_perfect_matching(
    const CostMatrix& costs, std::vector<WeightedEdge>& edge_scratch) {
  const int n = costs.size();
  if (n % 2 != 0) {
    throw MatchingError(
        "greedy perfect matching requires an even vertex count, got n = " +
        std::to_string(n));
  }
  obs::MetricsRegistry* reg = obs::metrics();
  obs::ScopedTimer timer{
      reg != nullptr ? &reg->histogram("matching.greedy.wall_s") : nullptr,
      reg != nullptr ? &reg->counter("matching.greedy.calls") : nullptr};
  costs.edges(edge_scratch);
  auto& edges = edge_scratch;
  // Heap selection instead of a full sort: the greedy scan stops once every
  // vertex is matched, which on a complete graph happens long before the
  // expensive tail of the edge list would ever be looked at — so most of an
  // O(E log E) sort is wasted. Heapify is O(E) and each accepted or skipped
  // edge costs one O(log E) pop. Ties (exactly equal weights) break in
  // (u, v) row-major order, the order edges() generates them in.
  const auto later = [](const WeightedEdge& a, const WeightedEdge& b) {
    if (!bitwise_equal(a.weight, b.weight)) return a.weight > b.weight;
    if (a.u != b.u) return a.u > b.u;
    return a.v > b.v;
  };
  std::make_heap(edges.begin(), edges.end(), later);
  auto heap_end = edges.end();
  std::vector<bool> used(static_cast<std::size_t>(n), false);
  Matching out;
  out.pairs.reserve(static_cast<std::size_t>(n) / 2);
  std::uint64_t edge_visits = 0;
  int matched = 0;
  while (matched < n && heap_end != edges.begin()) {
    std::pop_heap(edges.begin(), heap_end, later);
    const WeightedEdge& e = *--heap_end;
    ++edge_visits;
    if (used[static_cast<std::size_t>(e.u)] ||
        used[static_cast<std::size_t>(e.v)]) {
      continue;
    }
    used[static_cast<std::size_t>(e.u)] = true;
    used[static_cast<std::size_t>(e.v)] = true;
    out.pairs.emplace_back(e.u, e.v);
    out.total_cost += e.weight;
    matched += 2;
  }
  if (matched != n) {
    // Unreachable on a complete cost matrix, but the sparse edge lists of
    // the approximate tier make "no perfect matching in this graph" a real
    // input condition rather than a programmer error.
    throw MatchingError("greedy matching left " + std::to_string(n - matched) +
                        " of " + std::to_string(n) +
                        " vertices unmatched (input graph admits no perfect "
                        "matching)");
  }
  if (reg != nullptr) {
    reg->counter("matching.greedy.edge_visits").inc(edge_visits);
    reg->counter("matching.greedy.vertices").inc(
        static_cast<std::uint64_t>(n));
  }
  return out;
}

}  // namespace sic::matching
