#include "analysis/montecarlo.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <string>

#include "core/cross_link.hpp"
#include "core/multirate.hpp"
#include "core/packing.hpp"
#include "core/power_control.hpp"
#include "obs/logger.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/check.hpp"

namespace sic::analysis {

namespace {

/// Batch boundary for one Monte-Carlo sweep: on destruction, wall time and
/// samples/sec go into the registry and one progress line is logged at
/// info level. The clock is only read when someone is listening (registry
/// attached or info logging on) — the sweep loops themselves stay clean.
class SweepTimer {
 public:
  SweepTimer(const char* sweep, int trials)
      : sweep_(sweep),
        trials_(trials),
        active_(obs::metrics() != nullptr ||
                obs::log_enabled(obs::LogLevel::kInfo)) {
    if (active_) start_ = std::chrono::steady_clock::now();
  }

  SweepTimer(const SweepTimer&) = delete;
  SweepTimer& operator=(const SweepTimer&) = delete;

  ~SweepTimer() {
    if (!active_) return;
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    const double rate = elapsed_s > 0.0 ? trials_ / elapsed_s : 0.0;
    if (obs::MetricsRegistry* reg = obs::metrics()) {
      const std::string prefix = std::string("analysis.montecarlo.") + sweep_;
      reg->counter(prefix + ".trials")
          .inc(static_cast<std::uint64_t>(trials_));
      reg->histogram(prefix + ".wall_s").observe(elapsed_s);
      reg->gauge(prefix + ".samples_per_sec").set(rate);
    }
    SIC_LOG_INFO("montecarlo %s: %d trials in %.3f s (%.0f samples/sec)",
                 sweep_, trials_, elapsed_s, rate);
  }

 private:
  const char* sweep_;
  int trials_;
  bool active_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace

TechniqueGains evaluate_upload_pair_techniques(
    const core::UploadPairContext& ctx) {
  TechniqueGains out;
  const double serial = core::serial_airtime(ctx);
  out.sic = core::realized_gain(ctx);
  if (std::isfinite(serial)) {
    const double pc = core::power_controlled_airtime(ctx);
    if (pc > 0.0) out.power_control = std::max(1.0, serial / pc);
    const double mr = core::multirate_airtime(ctx);
    if (mr > 0.0 && std::isfinite(mr)) {
      out.multirate = std::max(1.0, serial / mr);
    }
  }
  out.packing = core::packing_two_to_one(ctx).gain;
  return out;
}

std::vector<double> run_two_link_gains(const topology::SamplerConfig& config,
                                       const phy::RateAdapter& adapter,
                                       int trials, std::uint64_t seed,
                                       double packet_bits) {
  SIC_CHECK(trials > 0);
  SweepTimer sweep{"two_link_gains", trials};
  SIC_SPAN("montecarlo.two_link_gains");
  Rng rng{seed};
  std::vector<double> gains;
  gains.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const auto sample = topology::sample_two_link(rng, config);
    gains.push_back(
        core::evaluate_cross_link(sample.rss, adapter, packet_bits).gain);
  }
  return gains;
}

TechniqueSamples run_two_to_one_techniques(
    const topology::SamplerConfig& config, const phy::RateAdapter& adapter,
    int trials, std::uint64_t seed, double packet_bits) {
  SIC_CHECK(trials > 0);
  SweepTimer sweep{"two_to_one_techniques", trials};
  SIC_SPAN("montecarlo.two_to_one_techniques");
  Rng rng{seed};
  TechniqueSamples out;
  out.sic.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const auto sample = topology::sample_two_to_one(rng, config);
    const auto ctx = core::UploadPairContext::make(
        sample.s1, sample.s2, sample.noise, adapter, packet_bits);
    const auto gains = evaluate_upload_pair_techniques(ctx);
    out.sic.push_back(gains.sic);
    out.power_control.push_back(gains.power_control);
    out.multirate.push_back(gains.multirate);
    out.packing.push_back(gains.packing);
  }
  return out;
}

namespace {

/// Scales transmitter T1's power by `scale` (both of its RSS entries).
channel::TwoLinkRss scale_t1(const channel::TwoLinkRss& rss, double scale) {
  channel::TwoLinkRss out = rss;
  out.s11 = rss.s11 * scale;
  out.s21 = rss.s21 * scale;
  return out;
}

/// Best realized cross-link gain over power reductions of either
/// transmitter (coarse dB grid; reductions only, per Section 5.4's caveat
/// against boosting).
double cross_link_power_control_gain(const channel::TwoLinkRss& rss,
                                     const phy::RateAdapter& adapter,
                                     double packet_bits) {
  // The no-SIC serial baseline always uses full power.
  const double serial =
      core::evaluate_cross_link(rss, adapter, packet_bits).serial_airtime;
  double best = core::evaluate_cross_link(rss, adapter, packet_bits).gain;
  if (!std::isfinite(serial)) return best;
  constexpr int kSteps = 81;  // 0 .. -20 dB in 0.25 dB steps
  for (int tx = 0; tx < 2; ++tx) {
    for (int i = 1; i < kSteps; ++i) {
      const double db = -20.0 * i / (kSteps - 1);
      const double scale = std::pow(10.0, db / 10.0);
      const channel::TwoLinkRss scaled =
          tx == 0 ? scale_t1(rss, scale) : scale_t1(rss.mirrored(), scale).mirrored();
      const auto res = core::evaluate_cross_link(scaled, adapter, packet_bits);
      if (std::isfinite(res.concurrent_airtime) && res.concurrent_airtime > 0.0) {
        best = std::max(best, std::max(1.0, serial / res.concurrent_airtime));
      }
    }
  }
  return best;
}

}  // namespace

TechniqueSamples run_two_link_techniques(const topology::SamplerConfig& config,
                                         const phy::RateAdapter& adapter,
                                         int trials, std::uint64_t seed,
                                         double packet_bits) {
  SIC_CHECK(trials > 0);
  SweepTimer sweep{"two_link_techniques", trials};
  SIC_SPAN("montecarlo.two_link_techniques");
  Rng rng{seed};
  TechniqueSamples out;
  out.sic.reserve(static_cast<std::size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const auto sample = topology::sample_two_link(rng, config);
    out.sic.push_back(
        core::evaluate_cross_link(sample.rss, adapter, packet_bits).gain);
    out.power_control.push_back(
        cross_link_power_control_gain(sample.rss, adapter, packet_bits));
    out.packing.push_back(
        core::cross_link_packing_gain(sample.rss, adapter, packet_bits));
  }
  return out;
}

}  // namespace sic::analysis
