/// Large-deployment association fast path: the spatial-index candidate
/// walk must be *decision-identical* to the brute-force all-AP scan —
/// same best AP, bit-identical scores, same incumbent score — across
/// random layouts, dead APs, load imbalance, and engineered hysteresis
/// ties; and whole engine runs in kGrid mode must reproduce kBruteForce
/// runs byte for byte. Also pins the sorted-membership invariant the
/// lower_bound-based removal relies on.

#include "mac/association.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "mac/deployment_engine.hpp"
#include "util/rng.hpp"

namespace sic::mac {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

struct Fleet {
  std::vector<topology::Point> sites;
  std::vector<std::uint8_t> alive;
  std::vector<int> members;
};

Fleet random_fleet(Rng& rng, int n_aps, double extent) {
  Fleet f;
  for (int i = 0; i < n_aps; ++i) {
    f.sites.push_back(
        topology::Point{rng.uniform(0.0, extent), rng.uniform(0.0, extent)});
    // Some APs dead, loads wildly imbalanced: the cutoff's load bound has
    // to hold even when a distant AP is nearly empty.
    f.alive.push_back(rng.uniform(0.0, 1.0) < 0.2 ? 0 : 1);
    f.members.push_back(rng.uniform_int(0, 60));
  }
  return f;
}

void expect_same_proposals(const std::vector<AssociationProposal>& grid,
                           const std::vector<AssociationProposal>& brute,
                           std::uint64_t seed) {
  ASSERT_EQ(grid.size(), brute.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].best_ap, brute[i].best_ap)
        << "seed " << seed << " client " << i;
    // Bit-identical, not approximately equal: both paths must evaluate
    // the same winning expression.
    EXPECT_EQ(grid[i].best_score.value(), brute[i].best_score.value())
        << "seed " << seed << " client " << i;
    EXPECT_EQ(grid[i].incumbent_score.value(), brute[i].incumbent_score.value())
        << "seed " << seed << " client " << i;
  }
}

TEST(AssociationPlanner, GridDecisionIdenticalToBruteForceAcrossLayouts) {
  const channel::LogDistancePathLoss pathloss =
      channel::LogDistancePathLoss::for_carrier(3.0);
  ThreadPool pool{1};
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng{seed * 6151};
    const int n_aps = rng.uniform_int(1, 64);
    const int n_clients = rng.uniform_int(1, 512);
    const double extent = rng.uniform(30.0, 400.0);
    const Fleet fleet = random_fleet(rng, n_aps, extent);
    const AssociationPlanner planner{fleet.sites, pathloss, Dbm{15.0},
                                     Decibels{0.5}};

    std::vector<double> xs;
    std::vector<double> ys;
    std::vector<std::uint8_t> eligible;
    std::vector<int> incumbent;
    for (int c = 0; c < n_clients; ++c) {
      // Clients inside and well outside the AP bounding box.
      xs.push_back(rng.uniform(-0.3 * extent, 1.3 * extent));
      ys.push_back(rng.uniform(-0.3 * extent, 1.3 * extent));
      eligible.push_back(rng.uniform(0.0, 1.0) < 0.9 ? 1 : 0);
      // Incumbents only point at live APs, as in the engine.
      int inc = -1;
      if (rng.uniform(0.0, 1.0) < 0.7) {
        const int cand = rng.uniform_int(0, n_aps - 1);
        if (fleet.alive[static_cast<std::size_t>(cand)] != 0) inc = cand;
      }
      incumbent.push_back(inc);
    }

    std::vector<AssociationProposal> grid;
    std::vector<AssociationProposal> brute;
    planner.plan(AssociationMode::kGrid, xs, ys, eligible, incumbent,
                 fleet.alive, fleet.members, pool, grid);
    planner.plan(AssociationMode::kBruteForce, xs, ys, eligible, incumbent,
                 fleet.alive, fleet.members, pool, brute);
    expect_same_proposals(grid, brute, seed);
  }
}

TEST(AssociationPlanner, ProposalsBitIdenticalAcrossThreadCounts) {
  const channel::LogDistancePathLoss pathloss =
      channel::LogDistancePathLoss::for_carrier(3.0);
  Rng rng{2024};
  const Fleet fleet = random_fleet(rng, 32, 250.0);
  const AssociationPlanner planner{fleet.sites, pathloss, Dbm{15.0},
                                   Decibels{0.5}};
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<std::uint8_t> eligible;
  std::vector<int> incumbent;
  for (int c = 0; c < 700; ++c) {
    xs.push_back(rng.uniform(0.0, 250.0));
    ys.push_back(rng.uniform(0.0, 250.0));
    eligible.push_back(1);
    incumbent.push_back(-1);
  }
  ThreadPool one{1};
  std::vector<AssociationProposal> base;
  planner.plan(AssociationMode::kGrid, xs, ys, eligible, incumbent,
               fleet.alive, fleet.members, one, base);
  for (const int threads : {4, 7}) {
    ThreadPool pool{threads};
    std::vector<AssociationProposal> got;
    planner.plan(AssociationMode::kGrid, xs, ys, eligible, incumbent,
                 fleet.alive, fleet.members, pool, got);
    expect_same_proposals(got, base, static_cast<std::uint64_t>(threads));
  }
}

TEST(AssociationPlanner, EquidistantTieBreaksToLowerApIdInBothModes) {
  const channel::LogDistancePathLoss pathloss =
      channel::LogDistancePathLoss::for_carrier(3.0);
  ThreadPool pool{1};
  // Two APs mirror-symmetric about x = 0; a client on the axis scores
  // them bit-identically (same distance, same load), so the winner is
  // decided purely by the tie rule — and id 1 sits in a *different* grid
  // cell walked earlier or later than id 0's, which is exactly the case
  // where a naive ring walk would pick whichever it sees first.
  const std::vector<topology::Point> sites = {topology::Point{-30.0, 0.0},
                                              topology::Point{30.0, 0.0}};
  const AssociationPlanner planner{sites, pathloss, Dbm{15.0},
                                   Decibels{0.5}};
  const std::vector<double> xs = {0.0};
  const std::vector<double> ys = {7.0};
  const std::vector<std::uint8_t> eligible = {1};
  const std::vector<int> incumbent = {-1};
  const std::vector<std::uint8_t> alive = {1, 1};
  const std::vector<int> members = {5, 5};
  for (const AssociationMode mode :
       {AssociationMode::kGrid, AssociationMode::kBruteForce}) {
    std::vector<AssociationProposal> out;
    planner.plan(mode, xs, ys, eligible, incumbent, alive, members, pool,
                 out);
    EXPECT_EQ(out[0].best_ap, 0);
  }
}

TEST(AssociationPlanner, HysteresisEdgeTiesMatchBruteForce) {
  // Engineer near-tie scores: a dense AP cluster where load differences
  // of exactly one member (0.5 dB) decide winners — the regime where a
  // sloppy cutoff bound would prune the true winner.
  const channel::LogDistancePathLoss pathloss =
      channel::LogDistancePathLoss::for_carrier(3.0);
  ThreadPool pool{1};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng{seed * 31};
    std::vector<topology::Point> sites;
    std::vector<std::uint8_t> alive;
    std::vector<int> members;
    const int n_aps = rng.uniform_int(8, 24);
    for (int i = 0; i < n_aps; ++i) {
      sites.push_back(
          topology::Point{rng.uniform(0.0, 40.0), rng.uniform(0.0, 40.0)});
      alive.push_back(1);
      members.push_back(10 + rng.uniform_int(0, 2));
    }
    const AssociationPlanner planner{sites, pathloss, Dbm{15.0},
                                     Decibels{0.5}};
    std::vector<double> xs;
    std::vector<double> ys;
    std::vector<std::uint8_t> eligible;
    std::vector<int> incumbent;
    for (int c = 0; c < 200; ++c) {
      xs.push_back(rng.uniform(0.0, 40.0));
      ys.push_back(rng.uniform(0.0, 40.0));
      eligible.push_back(1);
      incumbent.push_back(rng.uniform_int(0, n_aps - 1));
    }
    std::vector<AssociationProposal> grid;
    std::vector<AssociationProposal> brute;
    planner.plan(AssociationMode::kGrid, xs, ys, eligible, incumbent, alive,
                 members, pool, grid);
    planner.plan(AssociationMode::kBruteForce, xs, ys, eligible, incumbent,
                 alive, members, pool, brute);
    expect_same_proposals(grid, brute, seed);
  }
}

// ---------------------------------------------------------------------------
// Engine-level pins
// ---------------------------------------------------------------------------

DeploymentEngineConfig chaotic_config(AssociationMode mode) {
  DeploymentEngineConfig config;
  config.scheduler.enable_multirate = true;
  config.upload.faults.stale_rss_sigma = Decibels{2.0};
  config.epoch_drift_sigma = Decibels{1.5};
  config.association_mode = mode;
  config.seed = 71;
  return config;
}

FaultSchedule churny_chaos() {
  ChaosProfile p;
  p.ap_outage_prob = 0.04;
  p.outage_epochs = 2;
  p.departure_prob = 0.02;
  p.arrival_rate = 0.8;
  return FaultSchedule{p};
}

std::vector<topology::Point> grid_sites(int side, double pitch) {
  std::vector<topology::Point> sites;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      sites.push_back(topology::Point{x * pitch, y * pitch});
    }
  }
  return sites;
}

TEST(DeploymentEngineAssociation, GridEngineBitIdenticalToBruteForceEngine) {
  DeploymentEngine grid{grid_sites(3, 60.0), kShannon,
                        chaotic_config(AssociationMode::kGrid),
                        churny_chaos()};
  DeploymentEngine brute{grid_sites(3, 60.0), kShannon,
                         chaotic_config(AssociationMode::kBruteForce),
                         churny_chaos()};
  Rng rng{5};
  for (int c = 0; c < 48; ++c) {
    const topology::Point p{rng.uniform(-20.0, 140.0),
                            rng.uniform(-20.0, 140.0)};
    (void)grid.add_client(p);
    (void)brute.add_client(p);
  }
  for (int e = 0; e < 40; ++e) {
    const EpochStats a = grid.run_epoch();
    const EpochStats b = brute.run_epoch();
    EXPECT_EQ(a.offered, b.offered) << "epoch " << e;
    EXPECT_EQ(a.confirmed, b.confirmed) << "epoch " << e;
    EXPECT_EQ(a.handoffs, b.handoffs) << "epoch " << e;
    EXPECT_EQ(a.deferred, b.deferred) << "epoch " << e;
    EXPECT_EQ(a.quarantines, b.quarantines) << "epoch " << e;
    EXPECT_EQ(a.arrivals, b.arrivals) << "epoch " << e;
    EXPECT_EQ(a.departures, b.departures) << "epoch " << e;
    EXPECT_EQ(a.mean_health, b.mean_health) << "epoch " << e;
  }
  ASSERT_EQ(grid.active_clients(), brute.active_clients());
  for (int c = 0; c < grid.active_clients(); ++c) {
    EXPECT_EQ(grid.assignment(c), brute.assignment(c)) << "client " << c;
  }
}

TEST(DeploymentEngineAssociation, MembershipStaysSortedUnderChurn) {
  // The lower_bound+erase removal and upper_bound insert both rely on the
  // member lists staying sorted through every mutation path: handoff,
  // departure, quarantine exile, outage flush.
  DeploymentEngineConfig config = chaotic_config(AssociationMode::kGrid);
  config.quarantine_after = 1;  // make exile churn actually happen
  DeploymentEngine engine{grid_sites(2, 50.0), kShannon, config,
                          churny_chaos()};
  Rng rng{11};
  for (int c = 0; c < 32; ++c) {
    (void)engine.add_client(topology::Point{rng.uniform(0.0, 50.0),
                                            rng.uniform(0.0, 50.0)});
  }
  for (int e = 0; e < 30; ++e) {
    (void)engine.run_epoch();
    for (int ap = 0; ap < engine.n_aps(); ++ap) {
      const std::vector<int>& members = engine.ap_members(ap);
      EXPECT_TRUE(std::is_sorted(members.begin(), members.end()))
          << "epoch " << e << " ap " << ap;
      EXPECT_EQ(std::adjacent_find(members.begin(), members.end()),
                members.end())
          << "duplicate member, epoch " << e << " ap " << ap;
    }
  }
}

}  // namespace
}  // namespace sic::mac
