#include "core/pair_cost_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include <stdexcept>

#include "core/matching_tier.hpp"
#include "core/scheduler.hpp"
#include "matching/blossom.hpp"
#include "matching/greedy.hpp"
#include "phy/rate_table.hpp"
#include "util/rng.hpp"

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};
const phy::DiscreteRateAdapter kDot11g{phy::RateTable::dot11g()};
const phy::DiscreteRateAdapter kDot11b{phy::RateTable::dot11b()};
constexpr Milliwatts kN0{1.0};

// SNRs stay above the discrete tables' base sensitivity (6 dB for 802.11g)
// so every solo airtime — and hence every pair cost, via the serial
// fallback — is finite and the matching input is well defined.
std::vector<channel::LinkBudget> random_clients(Rng& rng, int n) {
  std::vector<channel::LinkBudget> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(channel::LinkBudget{
        Milliwatts{Decibels{rng.uniform(6.5, 40.0)}.linear()}, kN0});
  }
  return out;
}

/// The pre-engine schedule_upload, kept verbatim as the bit-identity
/// reference: from-scratch cost matrix via the public best_pair_plan, then
/// matching and the identical slot reconstruction / presentation sort.
Schedule reference_schedule(std::span<const channel::LinkBudget> clients,
                            const phy::RateAdapter& adapter,
                            const SchedulerOptions& options) {
  Schedule schedule;
  schedule.admission_margin_db = options.admission_margin_db;
  const int n = static_cast<int>(clients.size());
  if (n == 0) return schedule;
  if (n == 1) {
    const double t = solo_airtime(clients[0], adapter, options.packet_bits);
    schedule.slots.push_back(
        ScheduledSlot{0, -1, PairPlan{PairMode::kSolo, t, 1.0}});
    schedule.total_airtime = t;
    return schedule;
  }
  const bool odd = (n % 2) != 0;
  const int m = odd ? n + 1 : n;
  const int dummy = odd ? n : -1;
  std::vector<PairPlan> plans(static_cast<std::size_t>(m) * m);
  matching::CostMatrix costs{m};
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const PairPlan plan =
          best_pair_plan(clients[i], clients[j], adapter, options);
      costs.set(i, j, plan.airtime);
      plans[static_cast<std::size_t>(i) * m + j] = plan;
    }
    if (odd) {
      const double t = solo_airtime(clients[i], adapter, options.packet_bits);
      costs.set(i, dummy, t);
      plans[static_cast<std::size_t>(i) * m + dummy] =
          PairPlan{PairMode::kSolo, t, 1.0};
    }
  }
  // Per-vertex serial costs for the approximate tier's sparsification (0
  // for the dummy), then the same tier resolution the engine uses — this
  // keeps the reference valid for all four Pairing policies.
  std::vector<double> serial(static_cast<std::size_t>(m), 0.0);
  for (int i = 0; i < n; ++i) {
    serial[static_cast<std::size_t>(i)] =
        solo_airtime(clients[static_cast<std::size_t>(i)], adapter,
                     options.packet_bits);
  }
  std::vector<matching::WeightedEdge> edge_scratch;
  const matching::Matching matching = run_matching_tier(
      costs,
      resolve_matching_tier(options.pairing, n, options.auto_tier_threshold),
      serial, options.admission_margin_db, edge_scratch);
  for (const auto& [u, v] : matching.pairs) {
    const int i = std::min(u, v);
    const int j = std::max(u, v);
    const PairPlan& plan = plans[static_cast<std::size_t>(i) * m + j];
    ScheduledSlot slot;
    slot.first = i;
    slot.second = (j == dummy) ? -1 : j;
    slot.plan = plan;
    schedule.slots.push_back(slot);
    schedule.total_airtime += plan.airtime;
  }
  std::sort(schedule.slots.begin(), schedule.slots.end(),
            [](const ScheduledSlot& a, const ScheduledSlot& b) {
              if (a.plan.airtime != b.plan.airtime) {
                return a.plan.airtime > b.plan.airtime;
              }
              return a.first < b.first;
            });
  return schedule;
}

/// Exact (bit-level) schedule equality: doubles compared with ==.
void expect_identical(const Schedule& got, const Schedule& want,
                      const std::string& what) {
  EXPECT_EQ(got.admission_margin_db.value(), want.admission_margin_db.value())
      << what;
  EXPECT_EQ(got.total_airtime, want.total_airtime) << what;
  ASSERT_EQ(got.slots.size(), want.slots.size()) << what;
  for (std::size_t s = 0; s < got.slots.size(); ++s) {
    EXPECT_EQ(got.slots[s].first, want.slots[s].first) << what << " slot " << s;
    EXPECT_EQ(got.slots[s].second, want.slots[s].second)
        << what << " slot " << s;
    EXPECT_EQ(got.slots[s].plan.mode, want.slots[s].plan.mode)
        << what << " slot " << s;
    EXPECT_EQ(got.slots[s].plan.airtime, want.slots[s].plan.airtime)
        << what << " slot " << s;
    EXPECT_EQ(got.slots[s].plan.weaker_power_scale,
              want.slots[s].plan.weaker_power_scale)
        << what << " slot " << s;
  }
}

struct TechniqueCombo {
  const char* name;
  bool power_control;
  bool multirate;
};

constexpr TechniqueCombo kCombos[] = {
    {"none", false, false},
    {"pc", true, false},
    {"mr", false, true},
    {"pc+mr", true, true},
};

TEST(PairCostEngine, ScheduleUploadBitIdenticalToReference) {
  struct AdapterCase {
    const char* name;
    const phy::RateAdapter* adapter;
  };
  const AdapterCase adapters[] = {
      {"shannon", &kShannon}, {"dot11g", &kDot11g}, {"dot11b", &kDot11b}};
  Rng rng{2024};
  for (int n = 2; n <= 9; ++n) {
    const auto clients = random_clients(rng, n);
    for (const auto& ad : adapters) {
      for (const auto& combo : kCombos) {
        for (const auto pairing : {SchedulerOptions::Pairing::kBlossom,
                                   SchedulerOptions::Pairing::kGreedy}) {
          for (const double margin : {0.0, 3.0}) {
            SchedulerOptions options;
            options.enable_power_control = combo.power_control;
            options.enable_multirate = combo.multirate;
            options.pairing = pairing;
            options.admission_margin_db = Decibels{margin};
            const std::string what =
                std::string("n=") + std::to_string(n) + " " + ad.name + " " +
                combo.name +
                (pairing == SchedulerOptions::Pairing::kGreedy ? " greedy"
                                                               : " blossom") +
                " margin=" + std::to_string(margin);
            expect_identical(
                schedule_upload(clients, *ad.adapter, options),
                reference_schedule(clients, *ad.adapter, options), what);
          }
        }
      }
    }
  }
}

TEST(PairCostEngine, EmptyAndSingleClientMatchScheduleUpload) {
  SchedulerOptions options;
  options.admission_margin_db = Decibels{3.0};
  PairCostEngine engine{kShannon, options};
  engine.set_clients({});
  expect_identical(engine.schedule(), schedule_upload({}, kShannon, options),
                   "empty");
  const std::vector<channel::LinkBudget> one{
      channel::LinkBudget{Milliwatts{Decibels{20.0}.linear()}, kN0}};
  engine.set_clients(one);
  expect_identical(engine.schedule(), schedule_upload(one, kShannon, options),
                   "single");
}

TEST(PairCostEngine, DirtyRowRecomputesOnlyTheDriftedClient) {
  Rng rng{7};
  const int n = 10;
  auto clients = random_clients(rng, n);
  SchedulerOptions options;
  options.enable_power_control = true;
  PairCostEngine engine{kShannon, options};
  engine.set_clients(clients);
  (void)engine.schedule();
  EXPECT_EQ(engine.stats().pair_evals,
            static_cast<std::uint64_t>(n * (n - 1) / 2));
  EXPECT_EQ(engine.stats().pair_cache_hits, 0u);
  EXPECT_EQ(engine.stats().row_invalidations, 0u);

  // One client drifts: exactly its n-1 pairs recompute, the other pairs are
  // cache reads, and the schedule equals a from-scratch build on the new
  // topology.
  const int moved = 4;
  clients[moved].rss = clients[moved].rss * 1.25;
  const auto before = engine.stats();
  engine.update_client(moved, clients[moved].rss);
  const auto warm = engine.schedule();
  expect_identical(warm, schedule_upload(clients, kShannon, options),
                   "after drift");
  EXPECT_EQ(engine.stats().row_invalidations - before.row_invalidations, 1u);
  EXPECT_EQ(engine.stats().pair_evals - before.pair_evals,
            static_cast<std::uint64_t>(n - 1));
  EXPECT_EQ(engine.stats().pair_cache_hits - before.pair_cache_hits,
            static_cast<std::uint64_t>((n - 1) * (n - 2) / 2));
}

TEST(PairCostEngine, UnchangedEstimateIsAFullCacheHit) {
  Rng rng{8};
  const auto clients = random_clients(rng, 8);
  PairCostEngine engine{kShannon, SchedulerOptions{}};
  engine.set_clients(clients);
  const auto cold = engine.schedule();
  const auto before = engine.stats();
  for (int c = 0; c < engine.size(); ++c) {
    engine.update_client(c, clients[static_cast<std::size_t>(c)].rss);
  }
  const auto warm = engine.schedule();
  expect_identical(warm, cold, "warm rebuild");
  EXPECT_EQ(engine.stats().row_invalidations, before.row_invalidations);
  EXPECT_EQ(engine.stats().pair_evals, before.pair_evals);
  EXPECT_EQ(engine.stats().pair_cache_hits - before.pair_cache_hits, 28u);
}

TEST(PairCostEngine, EpsilonKeepsRowsWithinToleranceStale) {
  Rng rng{9};
  const auto clients = random_clients(rng, 6);
  PairCostEngine engine{kShannon, SchedulerOptions{}, Decibels{1.0}};
  engine.set_clients(clients);
  const auto cold = engine.schedule();

  // 0.5 dB of drift sits inside the 1 dB fingerprint tolerance: the row
  // keeps its cached plans (and its fingerprint), so the schedule is the
  // stale one, not a rebuild on the moved estimate.
  const Milliwatts nudged = clients[2].rss * Decibels{0.5}.linear();
  engine.update_client(2, nudged);
  EXPECT_EQ(engine.stats().row_invalidations, 0u);
  expect_identical(engine.schedule(), cold, "within epsilon");

  // 2 dB is beyond tolerance: the row recomputes and the schedule matches a
  // from-scratch build on the moved topology.
  auto moved = clients;
  moved[2].rss = clients[2].rss * Decibels{2.0}.linear();
  engine.update_client(2, moved[2].rss);
  EXPECT_EQ(engine.stats().row_invalidations, 1u);
  expect_identical(engine.schedule(), schedule_upload(moved, kShannon, {}),
                   "beyond epsilon");
}

TEST(PairCostEngine, SubsetScheduleMatchesScheduleUploadOnTheSubset) {
  Rng rng{11};
  const auto clients = random_clients(rng, 9);
  SchedulerOptions options;
  options.enable_power_control = true;
  options.enable_multirate = true;
  options.admission_margin_db = Decibels{2.0};
  PairCostEngine engine{kDot11g, options};
  engine.set_clients(clients);
  // Unsorted subsets, even and odd sized, exercising the mirrored triangle.
  const std::vector<std::vector<int>> subsets = {
      {7, 0, 3, 5}, {2, 8, 1, 6, 4}, {1, 0}, {5}};
  for (const auto& subset : subsets) {
    std::vector<channel::LinkBudget> budgets;
    for (const int c : subset) {
      budgets.push_back(clients[static_cast<std::size_t>(c)]);
    }
    expect_identical(engine.schedule_subset(subset),
                     schedule_upload(budgets, kDot11g, options),
                     "subset size " + std::to_string(subset.size()));
  }
}

TEST(PairCostEngine, WarmSingleDriftRematchMeetsEvalBudget) {
  Rng rng{13};
  const int n = 64;
  auto clients = random_clients(rng, n);
  PairCostEngine engine{kShannon, SchedulerOptions{}};
  engine.set_clients(clients);
  (void)engine.schedule();
  const std::uint64_t cold_evals = engine.stats().pair_evals;
  EXPECT_EQ(cold_evals, static_cast<std::uint64_t>(n * (n - 1) / 2));

  clients[17].rss = clients[17].rss * 1.1;
  engine.update_client(17, clients[17].rss);
  (void)engine.schedule();
  const std::uint64_t warm_evals = engine.stats().pair_evals - cold_evals;
  EXPECT_EQ(warm_evals, static_cast<std::uint64_t>(n - 1));
  // The acceptance bar: a one-client re-match must cost at least 5x fewer
  // kernel evaluations than the cold build.
  EXPECT_GE(cold_evals, 5 * warm_evals);
}

TEST(PairCostEngine, ApproxAndAutoTiersBitIdenticalToReference) {
  // The scaling tiers run through the same engine paths as the exact ones:
  // schedule_upload, the warm engine, and the from-scratch reference must
  // agree bit for bit for kApprox and for kAuto on both sides of the
  // crossover.
  Rng rng{31};
  for (int n = 2; n <= 9; ++n) {
    const auto clients = random_clients(rng, n);
    for (const int threshold : {2, 6, 64}) {
      for (const auto pairing : {SchedulerOptions::Pairing::kApprox,
                                 SchedulerOptions::Pairing::kAuto}) {
        SchedulerOptions options;
        options.enable_power_control = true;
        options.pairing = pairing;
        options.auto_tier_threshold = threshold;
        options.admission_margin_db = Decibels{2.0};
        const std::string what = std::string("n=") + std::to_string(n) +
                                 " pairing=" + to_string(pairing) +
                                 " n0=" + std::to_string(threshold);
        const Schedule want = reference_schedule(clients, kShannon, options);
        expect_identical(schedule_upload(clients, kShannon, options), want,
                         what + " (schedule_upload)");
        PairCostEngine engine{kShannon, options};
        engine.set_clients(clients);
        expect_identical(engine.schedule(), want, what + " (engine)");
        const MatchingTier expected_tier =
            pairing == SchedulerOptions::Pairing::kApprox
                ? MatchingTier::kApprox
                : (n >= threshold ? MatchingTier::kApprox
                                  : MatchingTier::kBlossom);
        EXPECT_EQ(engine.last_matching_tier(), expected_tier) << what;
      }
    }
  }
}

TEST(PairCostEngine, UpdateClientOutOfRangeThrowsTyped) {
  // Stale handoffs against a changed topology must surface as a typed
  // std::out_of_range naming the bad index, and must not corrupt the
  // engine: the schedule afterwards still matches a from-scratch build.
  Rng rng{33};
  const auto clients = random_clients(rng, 4);
  PairCostEngine engine{kShannon, SchedulerOptions{}};
  engine.set_clients(clients);
  const auto cold = engine.schedule();
  const Milliwatts rss = clients[0].rss;
  EXPECT_THROW(engine.update_client(-1, rss), std::out_of_range);
  EXPECT_THROW(engine.update_client(4, rss), std::out_of_range);
  try {
    engine.update_client(17, rss);
    FAIL() << "out-of-range index must throw";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string{e.what()}.find("17"), std::string::npos);
    EXPECT_NE(std::string{e.what()}.find("4"), std::string::npos);  // bound
  }
  expect_identical(engine.schedule(), cold, "after rejected updates");
}

TEST(PairCostEngine, SetClientsAlwaysRebuildsFromScratch) {
  Rng rng{15};
  const auto clients = random_clients(rng, 6);
  PairCostEngine engine{kShannon, SchedulerOptions{}};
  engine.set_clients(clients);
  (void)engine.schedule();
  engine.set_clients(clients);  // same topology, still a full rebuild
  (void)engine.schedule();
  EXPECT_EQ(engine.stats().pair_evals, 30u);
  EXPECT_EQ(engine.stats().pair_cache_hits, 0u);
}

}  // namespace
}  // namespace sic::core
