#include "core/pair_cost_engine.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "core/multirate.hpp"
#include "core/power_control.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/check.hpp"
#include "util/mathx.hpp"

namespace sic::core {

PairCostEngine::PairCostEngine(const phy::RateAdapter& adapter,
                               SchedulerOptions options,
                               Decibels invalidation_epsilon)
    : adapter_(&adapter),
      options_(options),
      derate_(Decibels{-options.admission_margin_db.value()}.linear()),
      epsilon_(invalidation_epsilon) {
  SIC_CHECK_MSG(epsilon_.value() >= 0.0,
                "invalidation epsilon must be >= 0 dB");
}

void PairCostEngine::refresh_derived(int client) {
  const std::size_t c = static_cast<std::size_t>(client);
  derated_rss_[c] = rss_[c] * derate_;
  solo_airtime_[c] = solo_airtime(channel::LinkBudget{rss_[c], noise_},
                                  *adapter_, options_.packet_bits);
}

void PairCostEngine::set_clients(
    std::span<const channel::LinkBudget> clients) {
  n_ = static_cast<int>(clients.size());
  const std::size_t n = clients.size();
  noise_ = clients.empty() ? Milliwatts{0.0} : clients.front().noise;
  if (n_ >= 2) {
    SIC_CHECK_MSG(options_.admission_margin_db.value() >= 0.0,
                  "admission margin must be >= 0 dB");
    for (const auto& c : clients) {
      SIC_CHECK_MSG(c.noise == noise_,
                    "pair plan assumes a common receiver noise floor");
    }
  }
  rss_.resize(n);
  derated_rss_.resize(n);
  solo_airtime_.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    rss_[c] = clients[c].rss;
    refresh_derived(static_cast<int>(c));
  }
  plans_.assign(n * n, PairPlan{});
  valid_.assign(n * n, 0);
  all_indices_.resize(n);
  std::iota(all_indices_.begin(), all_indices_.end(), 0);
}

void PairCostEngine::update_client(int client, Milliwatts rss) {
  if (client < 0 || client >= n_) {
    throw std::out_of_range(
        "PairCostEngine::update_client: client index " +
        std::to_string(client) + " outside [0, " + std::to_string(n_) +
        ") — stale handoff against a changed topology?");
  }
  const std::size_t c = static_cast<std::size_t>(client);
  const double old_mw = rss_[c].value();
  const double new_mw = rss.value();
  // Bit-exact fast path: an unchanged RSS must not touch the fingerprint.
  if (bitwise_equal(new_mw, old_mw)) return;
  if (epsilon_ > Decibels{0.0} && old_mw > 0.0 && new_mw > 0.0) {
    const Decibels drift = Decibels::from_linear(new_mw / old_mw);
    // Within tolerance: the row keeps serving plans of the fingerprinted
    // estimate, so the fingerprint itself must not move either.
    if (std::abs(drift.value()) <= epsilon_.value()) return;
  }
  rss_[c] = rss;
  refresh_derived(client);
  invalidate_row(client);
  ++stats_.row_invalidations;
}

void PairCostEngine::invalidate_row(int client) {
  const std::size_t n = static_cast<std::size_t>(n_);
  const std::size_t c = static_cast<std::size_t>(client);
  for (std::size_t j = 0; j < n; ++j) {
    valid_[c * n + j] = 0;
    valid_[j * n + c] = 0;
  }
}

void PairCostEngine::compute_row(int gi, std::span<const int> cols) {
  const std::size_t n = static_cast<std::size_t>(n_);
  const std::size_t count = cols.size();
  // Hoisted TwoSignalArrival::make preconditions: one noise check per row,
  // not one per pair.
  SIC_CHECK_MSG(noise_.value() > 0.0, "noise floor must be positive");
  const double noise_mw = noise_.value();

  // Pass 1 — stronger/weaker normalization and both SIC SINRs, streaming
  // the SoA arrays. Lane layout: [0, count) stronger, [count, 2·count)
  // weaker. The (s1 >= s2 → s1 is stronger) rule with s1 the lower client
  // index replicates TwoSignalArrival::make called on (min, max) exactly.
  row_sinr_.resize(2 * count);
  row_rates_.resize(2 * count);
  for (std::size_t t = 0; t < count; ++t) {
    const int gj = cols[t];
    const std::size_t a = static_cast<std::size_t>(std::min(gi, gj));
    const std::size_t b = static_cast<std::size_t>(std::max(gi, gj));
    const double s1 = derated_rss_[a].value();
    const double s2 = derated_rss_[b].value();
    SIC_CHECK_MSG(s1 >= 0.0 && s2 >= 0.0, "linear RSS must be non-negative");
    const double stronger = s1 >= s2 ? s1 : s2;
    const double weaker = s1 >= s2 ? s2 : s1;
    row_sinr_[t] = stronger / (weaker + noise_mw);
    row_sinr_[count + t] = weaker / noise_mw;
  }

  // Pass 2 — every rate lookup of the row in one batched call: a single
  // virtual dispatch instead of two per pair.
  adapter_->rate_span(row_sinr_, row_rates_);

  // Pass 3 — plan selection. This replicates best_pair_plan_from_context
  // decision-for-decision (same candidate order, same strict-< rules) so
  // the batched row is bit-identical to the scalar path; the engine's
  // bit-identity tests pin the two together.
  for (std::size_t t = 0; t < count; ++t) {
    const int gj = cols[t];
    const std::size_t a = static_cast<std::size_t>(std::min(gi, gj));
    const std::size_t b = static_cast<std::size_t>(std::max(gi, gj));
    PairPlan best;
    best.mode = PairMode::kSerial;
    best.airtime = solo_airtime_[a] + solo_airtime_[b];
    const double t_sic =
        std::max(airtime_seconds(options_.packet_bits, row_rates_[t]),
                 airtime_seconds(options_.packet_bits, row_rates_[count + t]));
    if (t_sic < best.airtime) {
      best = PairPlan{PairMode::kSic, t_sic, 1.0};
    }
    if (options_.enable_power_control || options_.enable_multirate) {
      const auto ctx =
          UploadPairContext::make(derated_rss_[a], derated_rss_[b], noise_,
                                  *adapter_, options_.packet_bits);
      if (options_.enable_power_control) {
        const auto pc = optimize_weaker_power(ctx);
        if (pc.applied && pc.airtime < best.airtime) {
          best = PairPlan{PairMode::kSicPowerControl, pc.airtime, pc.scale};
        }
      }
      if (options_.enable_multirate) {
        const auto mr = multirate_airtime_detailed(ctx);
        if (mr.boosted && mr.airtime < best.airtime) {
          best = PairPlan{PairMode::kSicMultirate, mr.airtime, 1.0};
        }
      }
    }
    plans_[a * n + b] = best;
    plans_[b * n + a] = best;
    valid_[a * n + b] = 1;
    valid_[b * n + a] = 1;
    ++stats_.pair_evals;
  }
}

Schedule PairCostEngine::schedule() { return schedule_indices(all_indices_); }

Schedule PairCostEngine::schedule_subset(std::span<const int> clients) {
  for (const int c : clients) SIC_CHECK(c >= 0 && c < n_);
  return schedule_indices(clients);
}

Schedule PairCostEngine::schedule_indices(std::span<const int> idx) {
  Schedule schedule;
  schedule.admission_margin_db = options_.admission_margin_db;
  const int k = static_cast<int>(idx.size());
  if (k == 0) return schedule;
  ++stats_.builds;
  if (k == 1) {
    const double t = solo_airtime_[static_cast<std::size_t>(idx[0])];
    schedule.slots.push_back(
        ScheduledSlot{0, -1, PairPlan{PairMode::kSolo, t, 1.0}});
    schedule.total_airtime = t;
    publish_stats();
    return schedule;
  }

  // Fig. 12 reduction: complete graph over the (sub)set, dummy vertex for
  // odd counts. Only dirty pairs reach the kernel — a row at a time, so
  // the batched passes amortize — everything else is a cache read.
  const bool odd = (k % 2) != 0;
  const int m = odd ? k + 1 : k;
  const int dummy = odd ? k : -1;
  const std::size_t n = static_cast<std::size_t>(n_);
  obs::MetricsRegistry* reg = obs::metrics();
  costs_.reset(m);
  {
    obs::ScopedTimer kernel_timer{
        reg != nullptr
            ? &reg->histogram("scheduler.pair_engine.kernel_wall_s")
            : nullptr};
    for (int u = 0; u < k; ++u) {
      const int gi = idx[static_cast<std::size_t>(u)];
      row_cols_.clear();
      for (int v = u + 1; v < k; ++v) {
        const int gj = idx[static_cast<std::size_t>(v)];
        const std::size_t a = static_cast<std::size_t>(std::min(gi, gj));
        const std::size_t b = static_cast<std::size_t>(std::max(gi, gj));
        if (valid_[a * n + b] != 0) {
          ++stats_.pair_cache_hits;
        } else {
          row_cols_.push_back(gj);
        }
      }
      if (!row_cols_.empty()) compute_row(gi, row_cols_);
      for (int v = u + 1; v < k; ++v) {
        const int gj = idx[static_cast<std::size_t>(v)];
        const std::size_t a = static_cast<std::size_t>(std::min(gi, gj));
        const std::size_t b = static_cast<std::size_t>(std::max(gi, gj));
        costs_.set(u, v, plans_[a * n + b].airtime);
      }
      if (odd) {
        costs_.set(u, dummy, solo_airtime_[static_cast<std::size_t>(gi)]);
      }
    }
  }

  // Per-vertex serial (solo) cost feeding the approximate tier's
  // sparsification; the dummy's is 0 so its edges are always dropped and
  // the fallback pairs it.
  serial_scratch_.resize(static_cast<std::size_t>(m));
  for (int u = 0; u < k; ++u) {
    serial_scratch_[static_cast<std::size_t>(u)] =
        solo_airtime_[static_cast<std::size_t>(idx[static_cast<std::size_t>(u)])];
  }
  if (odd) serial_scratch_[static_cast<std::size_t>(dummy)] = 0.0;

  const MatchingTier tier =
      resolve_matching_tier(options_.pairing, k, options_.auto_tier_threshold);
  last_tier_ = tier;
  const matching::Matching matching =
      run_matching_tier(costs_, tier, serial_scratch_,
                        options_.admission_margin_db, edge_scratch_);
  // kAuto below the threshold: also run the approximate matcher
  // observationally and publish the relative total-airtime gap — the
  // calibration signal for choosing the crossover. Observer-pure: the
  // schedule is built from the exact matching either way, and this branch
  // only runs with a registry attached.
  if (options_.pairing == SchedulerOptions::Pairing::kAuto &&
      tier == MatchingTier::kBlossom && reg != nullptr &&
      matching.total_cost > 0.0 && std::isfinite(matching.total_cost)) {
    const matching::Matching shadow =
        run_matching_tier(costs_, MatchingTier::kApprox, serial_scratch_,
                          options_.admission_margin_db, edge_scratch_);
    if (std::isfinite(shadow.total_cost)) {
      reg->histogram("scheduler.matching.gap")
          .observe((shadow.total_cost - matching.total_cost) /
                   matching.total_cost);
    }
  }

  for (const auto& [a, b] : matching.pairs) {
    const int u = std::min(a, b);
    const int v = std::max(a, b);
    ScheduledSlot slot;
    slot.first = u;
    slot.second = (v == dummy) ? -1 : v;
    if (v == dummy) {
      const std::size_t gu = static_cast<std::size_t>(idx[static_cast<std::size_t>(u)]);
      slot.plan = PairPlan{PairMode::kSolo, solo_airtime_[gu], 1.0};
    } else {
      const std::size_t gu = static_cast<std::size_t>(idx[static_cast<std::size_t>(u)]);
      const std::size_t gv = static_cast<std::size_t>(idx[static_cast<std::size_t>(v)]);
      slot.plan = plans_[gu * n + gv];
    }
    schedule.slots.push_back(slot);
    schedule.total_airtime += slot.plan.airtime;
  }
  // Deterministic presentation: longest slot first (the AP may use any
  // order; tests rely on a stable one).
  std::sort(schedule.slots.begin(), schedule.slots.end(),
            [](const ScheduledSlot& a, const ScheduledSlot& b) {
              // Bit-exact tie detection keeps the sort stable across
              // platforms; airtimes are computed identically on all paths.
              if (!bitwise_equal(a.plan.airtime, b.plan.airtime)) {
                return a.plan.airtime > b.plan.airtime;
              }
              return a.first < b.first;
            });
  publish_stats();
  return schedule;
}

void PairCostEngine::publish_stats() {
  obs::MetricsRegistry* reg = obs::metrics();
  if (reg == nullptr) return;
  reg->counter("scheduler.pair_engine.builds")
      .inc(stats_.builds - published_.builds);
  reg->counter("scheduler.pair_engine.row_invalidations")
      .inc(stats_.row_invalidations - published_.row_invalidations);
  reg->counter("scheduler.pair_engine.pair_evals")
      .inc(stats_.pair_evals - published_.pair_evals);
  reg->counter("scheduler.pair_engine.cache_hits")
      .inc(stats_.pair_cache_hits - published_.pair_cache_hits);
  published_ = stats_;
}

}  // namespace sic::core
