/// Compile-and-smoke test for the umbrella header: one include must expose
/// the whole public API, with every layer usable together.

#include "sicmac.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EveryLayerReachable) {
  using namespace sic;
  // util
  Rng rng{1};
  EXPECT_GE(rng.uniform(0.0, 1.0), 0.0);
  // phy
  const phy::ShannonRateAdapter adapter{megahertz(20.0)};
  EXPECT_GT(adapter.rate(10.0).value(), 0.0);
  // channel
  const auto link = channel::LinkBudget::from_snr_db(Decibels{20.0});
  EXPECT_GT(link.snr(), 0.0);
  // topology
  const auto mesh = topology::make_mesh_chain();
  EXPECT_EQ(mesh.nodes.size(), 4u);
  // matching
  matching::CostMatrix costs{2};
  costs.set(0, 1, 1.0);
  EXPECT_EQ(matching::min_weight_perfect_matching(costs).pairs.size(), 1u);
  // core
  const auto ctx = core::UploadPairContext::make(
      Milliwatts{100.0}, Milliwatts{10.0}, Milliwatts{1.0}, adapter);
  EXPECT_GE(core::realized_gain(ctx), 1.0);
  // mac
  mac::EventQueue queue;
  queue.schedule_at(5, [] {});
  queue.run();
  EXPECT_EQ(queue.now(), 5);
  // trace
  trace::BuildingConfig config;
  config.duration_s = 1800;
  EXPECT_FALSE(trace::generate_building_trace(config, 1).snapshots.empty());
  // analysis
  const analysis::EmpiricalCdf cdf{{1.0, 2.0}};
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 2.0);
}

}  // namespace
