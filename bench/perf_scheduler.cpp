/// Performance and quality of the SIC-aware scheduler (Section 6): end-to-
/// end schedule construction (pair costs + blossom matching) versus client
/// count, the greedy-pairing ablation, and the cost of enabling the
/// Section 5 techniques in the pair-cost model.

#include <benchmark/benchmark.h>

#include "perf_util.hpp"

#include <vector>

#include "core/scheduler.hpp"
#include "topology/samplers.hpp"
#include "util/rng.hpp"

namespace {

using namespace sic;

std::vector<channel::LinkBudget> random_clients(int n, std::uint64_t seed) {
  Rng rng{seed};
  topology::SamplerConfig config;
  return topology::sample_upload_clients(rng, config, n);
}

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

void BM_ScheduleUpload(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto clients = random_clients(n, 7);
  core::SchedulerOptions options;
  double gain = 0.0;
  for (auto _ : state) {
    const auto schedule = core::schedule_upload(clients, kShannon, options);
    gain = core::serial_upload_airtime(clients, kShannon,
                                       options.packet_bits) /
           schedule.total_airtime;
    benchmark::DoNotOptimize(schedule.total_airtime);
  }
  state.counters["gain_vs_serial"] = gain;
}
BENCHMARK(BM_ScheduleUpload)->RangeMultiplier(2)->Range(4, 64);

void BM_ScheduleUploadGreedy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto clients = random_clients(n, 7);
  core::SchedulerOptions options;
  options.pairing = core::SchedulerOptions::Pairing::kGreedy;
  for (auto _ : state) {
    const auto schedule = core::schedule_upload(clients, kShannon, options);
    benchmark::DoNotOptimize(schedule.total_airtime);
  }
}
BENCHMARK(BM_ScheduleUploadGreedy)->RangeMultiplier(2)->Range(4, 64);

void BM_ScheduleUploadWithTechniques(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto clients = random_clients(n, 7);
  core::SchedulerOptions options;
  options.enable_power_control = true;
  options.enable_multirate = true;
  double gain = 0.0;
  for (auto _ : state) {
    const auto schedule = core::schedule_upload(clients, kShannon, options);
    gain = core::serial_upload_airtime(clients, kShannon,
                                       options.packet_bits) /
           schedule.total_airtime;
    benchmark::DoNotOptimize(schedule.total_airtime);
  }
  state.counters["gain_vs_serial"] = gain;
}
BENCHMARK(BM_ScheduleUploadWithTechniques)->RangeMultiplier(2)->Range(4, 64);

void BM_PairPlan(benchmark::State& state) {
  const auto clients = random_clients(2, 11);
  core::SchedulerOptions options;
  options.enable_power_control = true;
  options.enable_multirate = true;
  for (auto _ : state) {
    const auto plan =
        core::best_pair_plan(clients[0], clients[1], kShannon, options);
    benchmark::DoNotOptimize(plan.airtime);
  }
}
BENCHMARK(BM_PairPlan);

}  // namespace

SIC_PERF_MAIN("perf_scheduler")
