/// sic_lint engine tests: every seeded fixture violation is caught by its
/// rule at the expected file:line, clean code stays clean, suppressions and
/// the R2 baseline behave as documented.

#include "lint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace sic::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string{SIC_LINT_FIXTURE_DIR} + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in{fixture_path(name), std::ios::binary};
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<Finding> lint_fixture(const std::string& name) {
  return lint_file(fixture_path(name), read_fixture(name));
}

bool has_finding(const std::vector<Finding>& findings,
                 const std::string& rule, int line) {
  for (const Finding& f : findings) {
    if (f.rule == rule && f.line == line) return true;
  }
  return false;
}

TEST(SicLint, R1CatchesPowAndLog10AtSeededLines) {
  const auto findings = lint_fixture("r1_pow10.cpp");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(has_finding(findings, "R1", 6));   // pow(10, db/10)
  EXPECT_TRUE(has_finding(findings, "R1", 10));  // 10*log10(ratio)
  EXPECT_EQ(findings[0].path, fixture_path("r1_pow10.cpp"));
}

TEST(SicLint, R2CatchesSuffixedDoubleInHeader) {
  const auto findings = lint_fixture("r2_raw_double.hpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R2");
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_EQ(findings[0].symbol, "tx_power_dbm");
}

TEST(SicLint, R3CatchesRandClockAndUnorderedIteration) {
  const auto findings = lint_fixture("r3_determinism.cpp");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_TRUE(has_finding(findings, "R3", 7));   // std::rand
  EXPECT_TRUE(has_finding(findings, "R3", 11));  // system_clock
  EXPECT_TRUE(has_finding(findings, "R3", 17));  // range-for over unordered
}

TEST(SicLint, R4CatchesMutatorsInValuePositions) {
  const auto findings = lint_fixture("r4_impure_observer.cpp");
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_TRUE(has_finding(findings, "R4", 17));  // return ...inc()
  EXPECT_TRUE(has_finding(findings, "R4", 21));  // n = ...inc()
  EXPECT_TRUE(has_finding(findings, "R4", 26));  // consume(...inc())
  EXPECT_TRUE(has_finding(findings, "R4", 30));  // acc += ...inc()
}

TEST(SicLint, R4CatchesTimeSeriesRecordInValuePositions) {
  const auto findings = lint_fixture("r4_impure_timeseries.cpp");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_TRUE(has_finding(findings, "R4", 17));  // return ...record()
  EXPECT_TRUE(has_finding(findings, "R4", 21));  // e = ...record()
  EXPECT_TRUE(has_finding(findings, "R4", 26));  // consume(...record())
}

TEST(SicLint, R3StaysHotOnNaiveSpatialIndex) {
  // The shipped SpatialGridIndex is deterministic by construction (flat CSR
  // arrays, canonical order) and lints clean; this fixture pins that the
  // hash-bucketed alternative would NOT get past R3.
  const auto findings = lint_fixture("r3_spatial_index.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(has_finding(findings, "R3", 18));  // range-for over cells
  // The membership lookup (find != end) and the CSR struct stay clean.
}

TEST(SicLint, R3ExemptsEndInMembershipComparisons) {
  const std::string src =
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "bool has(int k) { return m.find(k) != m.end(); }\n"
      "bool has2(int k) {\n"
      "  const auto it = m.find(k);\n"
      "  return it != m.end() && it->second > 0;\n"
      "}\n"
      "bool has3(int k) { return m.end() == m.find(k); }\n"
      "auto first() { return m.begin(); }\n";
  const auto findings = lint_file("src/core/foo.cpp", src);
  ASSERT_EQ(findings.size(), 1u);  // only the begin() on line 9
  EXPECT_EQ(findings[0].rule, "R3");
  EXPECT_EQ(findings[0].line, 9);
}

TEST(SicLint, CleanFixtureHasNoFindings) {
  EXPECT_TRUE(lint_fixture("clean.cpp").empty());
}

TEST(SicLint, SuppressionsCoverSameLinePrecedingLineAndLists) {
  const auto findings = lint_fixture("suppressed.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R1");
  EXPECT_EQ(findings[0].line, 18);  // allow(R2) does not silence R1
}

TEST(SicLint, SanitizePreservesLinesAndBlanksLiterals) {
  const std::string src =
      "int a; // pow(10, x/10)\n"
      "const char* s = \"log10(\";\n"
      "/* system_clock */ int b;\n";
  const std::string out = sanitize(src);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_EQ(out.size(), src.size());
  EXPECT_EQ(out.find("pow"), std::string::npos);
  EXPECT_EQ(out.find("log10"), std::string::npos);
  EXPECT_EQ(out.find("system_clock"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(SicLint, SanitizeHandlesDigitSeparatorsAndRawStrings) {
  const std::string src =
      "constexpr double c = 299'792'458.0;\n"
      "const char* re = R\"(\\blog10\\s*\\()\";\n";
  const std::string out = sanitize(src);
  EXPECT_NE(out.find("299'792'458.0"), std::string::npos);
  EXPECT_EQ(out.find("log10"), std::string::npos);
}

TEST(SicLint, SanitizeHandlesEncodingPrefixedRawStrings) {
  // An unescaped quote + backslash inside the raw string would desync an
  // ordinary-string scanner; the u8/u/U/L prefixes must enter raw mode.
  const std::string src =
      "const char8_t* a = u8R\"(log10( \" \\)\";\n"
      "const char16_t* b = uR\"(pow(10, \" )\";\n"
      "const wchar_t* w = LR\"(system_clock \" )\";\n"
      "int after = 1;\n";
  const std::string out = sanitize(src);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_EQ(out.find("log10"), std::string::npos);
  EXPECT_EQ(out.find("pow"), std::string::npos);
  EXPECT_EQ(out.find("system_clock"), std::string::npos);
  EXPECT_NE(out.find("int after = 1;"), std::string::npos);
}

TEST(SicLint, CommentsOnlyKeepsCommentsAndBlanksCodeAndLiterals) {
  const std::string src =
      "int x = 1; // trailing note\n"
      "const char* s = \"sic-lint: allow(R1)\";\n"
      "/* block */ int y = 2;\n";
  const std::string out = comments_only(src);
  EXPECT_EQ(out.size(), src.size());
  EXPECT_NE(out.find("// trailing note"), std::string::npos);
  EXPECT_NE(out.find("/* block */"), std::string::npos);
  EXPECT_EQ(out.find("int x"), std::string::npos);
  EXPECT_EQ(out.find("allow"), std::string::npos);
}

TEST(SicLint, SuppressionInsideStringLiteralDoesNotSuppress) {
  // The marker in a string literal on the violating line (line 2) and on a
  // literal-only line above a violation (lines 3-4) must both stay inert;
  // a real trailing comment (line 5) still suppresses.
  const std::string src =
      "#include <cmath>\n"
      "double f(double db) { const char* m = \"sic-lint: allow(R1)\"; "
      "return std::pow(10.0, db / 10.0); }\n"
      "const char* only = \"// sic-lint: allow(R1)\";\n"
      "double g(double db) { return std::pow(10.0, db / 10.0); }\n"
      "double h(double db) { return std::pow(10.0, db / 10.0); }  "
      "// sic-lint: allow(R1)\n";
  const auto findings = lint_file("src/core/foo.cpp", src);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(has_finding(findings, "R1", 2));
  EXPECT_TRUE(has_finding(findings, "R1", 4));
}

TEST(SicLint, UnitsHeaderIsExemptFromR1) {
  const std::string src = "inline double f(double x) { return log10(x); }\n";
  EXPECT_TRUE(lint_file("src/util/units.hpp", src).empty());
  EXPECT_FALSE(lint_file("src/core/foo.cpp", src).empty());
}

TEST(SicLint, ObsAndBenchArePathExemptFromR3) {
  const std::string src = "auto t = std::chrono::system_clock::now();\n";
  EXPECT_TRUE(lint_file("src/obs/scoped_timer.cpp", src).empty());
  EXPECT_TRUE(lint_file("bench/bench_util.hpp", src).empty());
  EXPECT_FALSE(lint_file("src/mac/upload_sim.cpp", src).empty());
}

TEST(SicLint, BaselineSuppressesListedR2AndFlagsStaleEntries) {
  std::vector<Finding> findings;
  findings.push_back(Finding{"R2", "src/a.hpp", 3, 1, "tx_dbm", "msg"});
  findings.push_back(Finding{"R2", "src/b.hpp", 9, 1, "loss_db", "msg"});

  const auto baseline = parse_baseline(
      "# comment\n"
      "src/a.hpp:tx_dbm\n"
      "\n"
      "src/gone.hpp:old_mw  # trailing comment\n");
  ASSERT_EQ(baseline.size(), 2u);

  const auto out =
      apply_baseline(findings, baseline, "tools/sic_lint/r2_baseline.txt");
  ASSERT_EQ(out.size(), 2u);
  // The unbaselined finding survives; the stale entry becomes an error
  // that names the baseline file and the regeneration command.
  EXPECT_EQ(out[0].rule, "R2");
  EXPECT_EQ(out[0].symbol, "loss_db");
  EXPECT_EQ(out[1].rule, "baseline");
  EXPECT_EQ(out[1].path, "src/gone.hpp:old_mw");
  EXPECT_NE(out[1].message.find("tools/sic_lint/r2_baseline.txt"),
            std::string::npos);
  EXPECT_NE(out[1].message.find("--print-baseline"), std::string::npos);
}

TEST(SicLint, FormatFindingIsPathLineColRuleMessage) {
  const Finding f{"R1", "src/x.cpp", 42, 7, "", "boom"};
  EXPECT_EQ(format_finding(f), "src/x.cpp:42:7: [R1] boom");
}

// ---------------------------------------------------------------------------
// Lexer regressions (satellite 1)
// ---------------------------------------------------------------------------

TEST(SicLint, LineContinuationKeepsNextLineInsideComment) {
  // The backslash-newline splice keeps the pow() on the continued line
  // inside the // comment; only the real call on line 11 fires.
  const auto findings = lint_fixture("lexer_line_continuation.cpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R1");
  EXPECT_EQ(findings[0].line, 11);
}

TEST(SicLint, DigitSeparatorsDoNotOpenCharLiterals) {
  // 1'000'000 must lex as one number: a desynced scanner would leak the
  // log10( inside the string literal into the code channel.
  EXPECT_TRUE(lint_fixture("lexer_digit_separators.cpp").empty());
}

// ---------------------------------------------------------------------------
// R5 — include-layer DAG
// ---------------------------------------------------------------------------

TEST(SicLint, R5CatchesLayerBackEdgeAtSeededLine) {
  const auto findings = lint_fixture("r5/src/channel/bad_layer.hpp");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R5");
  EXPECT_EQ(findings[0].line, 6);  // channel -> mac back-edge
  EXPECT_NE(findings[0].message.find("mac/frame.hpp"), std::string::npos);
  EXPECT_NE(findings[0].message.find("back-edge"), std::string::npos);
}

TEST(SicLint, R5AllowsDownwardAndSameLayerIncludes) {
  const std::string src =
      "#include \"util/units.hpp\"\n"
      "#include \"mac/frame.hpp\"\n"
      "#include <vector>\n";
  EXPECT_TRUE(lint_file("src/mac/association.cpp", src).empty());
  // Consumers outside src/ may include any layer.
  EXPECT_TRUE(lint_file("tests/some_test.cpp", src).empty());
  EXPECT_TRUE(lint_file("bench/bench_pairing.cpp", src).empty());
}

TEST(SicLint, R5CycleDetectionPrintsFullPath) {
  // The cycle spans three same-layer headers, so no back-edge fires — only
  // the cross-file cycle analysis can reject it.
  std::vector<FileInput> files;
  files.push_back({"src/core/a.hpp", "#include \"core/b.hpp\"\n"});
  files.push_back({"src/core/b.hpp", "#include \"core/c.hpp\"\n"});
  files.push_back({"src/core/c.hpp", "#include \"core/a.hpp\"\n"});
  const auto findings = lint_tree(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R5");
  EXPECT_NE(findings[0].message.find("include cycle"), std::string::npos);
  EXPECT_NE(findings[0].message.find(
                "core/a.hpp -> core/b.hpp -> core/c.hpp -> core/a.hpp"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// R6 — RNG substream discipline
// ---------------------------------------------------------------------------

TEST(SicLint, R6CatchesLoopRngConstructionAndForkInParallelTu) {
  const auto findings = lint_fixture("r6_rng_loop.cpp");
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(has_finding(findings, "R6", 18));  // Rng rng(seed + i) in loop
  EXPECT_TRUE(has_finding(findings, "R6", 23));  // outer.fork() in loop
  // Rng::at(seed, i) in the third loop and the top-of-function Rng stay
  // clean.
}

TEST(SicLint, R6IgnoresSerialTranslationUnits) {
  // Same loop-local construction, but no ParallelRunner/parallel_for in
  // the TU: iteration order is the program order, so fork() is fine.
  const std::string src =
      "struct Rng { explicit Rng(unsigned long); Rng fork(); };\n"
      "void run(unsigned long seed, int n) {\n"
      "  for (int i = 0; i < n; ++i) { Rng rng(seed); (void)rng; }\n"
      "}\n";
  EXPECT_TRUE(lint_file("src/analysis/serial.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// R7 — FP determinism
// ---------------------------------------------------------------------------

TEST(SicLint, R7CatchesFloatReductionAndDoubleCompare) {
  const auto findings = lint_fixture("r7_fp_determinism.cpp");
  std::vector<Finding> r7;
  for (const Finding& f : findings) {
    if (f.rule == "R7") r7.push_back(f);
  }
  ASSERT_EQ(r7.size(), 4u);
  EXPECT_TRUE(has_finding(r7, "R7", 4));   // float (return type + param)
  EXPECT_TRUE(has_finding(r7, "R7", 9));   // double += over unordered
  EXPECT_TRUE(has_finding(r7, "R7", 15));  // prev_mw == next_mw
  // The iteration itself is R3's finding, not R7's.
  EXPECT_TRUE(has_finding(findings, "R3", 8));
  // prev_mw == 0.0 on line 19 is a literal sentinel: clean.
  EXPECT_FALSE(has_finding(r7, "R7", 19));
}

TEST(SicLint, R7IntegerReductionOverUnorderedIsNotFlagged) {
  // Integer accumulation is associative; only R3 objects to the iteration.
  const std::string src =
      "#include <unordered_map>\n"
      "int f(const std::unordered_map<int, int>& m) {\n"
      "  int total = 0;\n"
      "  for (const auto& kv : m) total += kv.second;\n"
      "  return total;\n"
      "}\n";
  const auto findings = lint_file("src/core/foo.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R3");
}

TEST(SicLint, R7DoubleCompareUsesTreeWideSymbolTable) {
  // The doubles are declared in one file and compared in another: the
  // symbol table must span the whole lint_tree() input.
  std::vector<FileInput> files;
  files.push_back({"src/core/decl.hpp",
                   "struct Plan { double airtime_share = 0.0; };\n"});
  files.push_back({"src/core/use.cpp",
                   "#include \"core/decl.hpp\"\n"
                   "bool same(const Plan& a, const Plan& b) {\n"
                   "  return a.airtime_share == b.airtime_share;\n"
                   "}\n"});
  const auto findings = lint_tree(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "R7");
  EXPECT_EQ(findings[0].path, "src/core/use.cpp");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(SicLint, R7AmbiguouslyTypedNamesAreNotFlagged) {
  // `score` is double in one declaration and int in another: the rule
  // must drop it rather than guess.
  const std::string src =
      "double score = 0.0;\n"
      "int score2(int score) { return score; }\n"
      "bool f(int a_score, int b_score) { return a_score == b_score; }\n"
      "bool g(double x) { double score = x; int other = 1; (void)score;\n"
      "  return other == other; }\n";
  const std::string src2 = "int score = 1;\n";
  std::vector<FileInput> files;
  files.push_back({"src/core/one.cpp", src});
  files.push_back({"src/core/two.cpp", src2});
  EXPECT_TRUE(lint_tree(files).empty());
}

// ---------------------------------------------------------------------------
// R8 — typed-error policy
// ---------------------------------------------------------------------------

TEST(SicLint, R8CatchesBareStandardExceptionsAndStringThrows) {
  const auto findings = lint_fixture("r8_bare_throw.cpp");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_TRUE(has_finding(findings, "R8", 10));  // std::runtime_error
  EXPECT_TRUE(has_finding(findings, "R8", 14));  // std::logic_error
  EXPECT_TRUE(has_finding(findings, "R8", 18));  // throw "boom"
  // throw TraceIoError(...) on line 22 is the sanctioned form.
}

TEST(SicLint, R8OnlyGovernsSrc) {
  const std::string src =
      "#include <stdexcept>\n"
      "void f() { throw std::runtime_error(\"cli usage\"); }\n";
  EXPECT_FALSE(lint_file("src/trace/io.cpp", src).empty());
  EXPECT_TRUE(lint_file("tools/bench_gate/main.cpp", src).empty());
  EXPECT_TRUE(lint_file("tests/foo_test.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// Options + JSON (satellite 2)
// ---------------------------------------------------------------------------

TEST(SicLint, OnlyAndExcludeFilterRules) {
  LintOptions only_r1;
  only_r1.only = {"R1"};
  LintOptions no_r1;
  no_r1.exclude = {"R1"};

  std::vector<FileInput> files;
  files.push_back(
      {fixture_path("r1_pow10.cpp"), read_fixture("r1_pow10.cpp")});
  files.push_back(
      {fixture_path("r8_bare_throw.cpp"), read_fixture("r8_bare_throw.cpp")});

  const auto only_findings = lint_tree(files, only_r1);
  ASSERT_EQ(only_findings.size(), 2u);
  EXPECT_EQ(only_findings[0].rule, "R1");
  EXPECT_EQ(only_findings[1].rule, "R1");

  const auto excl_findings = lint_tree(files, no_r1);
  ASSERT_EQ(excl_findings.size(), 3u);
  for (const Finding& f : excl_findings) EXPECT_EQ(f.rule, "R8");
}

TEST(SicLint, JsonOutputIsDeterministicAndSorted) {
  std::vector<Finding> findings;
  findings.push_back(Finding{"R3", "src/b.cpp", 2, 5, "", "later file"});
  findings.push_back(Finding{"R1", "src/a.cpp", 9, 1, "", "later line"});
  findings.push_back(Finding{"R7", "src/a.cpp", 3, 8, "", "later col"});
  findings.push_back(Finding{"R3", "src/a.cpp", 3, 2, "x", "first \"q\""});

  const std::string json = to_json(findings, 4);
  // Sorted by (path, line, col, rule) regardless of input order.
  const auto p1 = json.find("first");
  const auto p2 = json.find("later col");
  const auto p3 = json.find("later line");
  const auto p4 = json.find("later file");
  ASSERT_NE(p1, std::string::npos);
  EXPECT_LT(p1, p2);
  EXPECT_LT(p2, p3);
  EXPECT_LT(p3, p4);
  EXPECT_NE(json.find("\"files_scanned\":4"), std::string::npos);
  EXPECT_NE(json.find("\"R1\":1"), std::string::npos);
  EXPECT_NE(json.find("\"R3\":2"), std::string::npos);
  EXPECT_NE(json.find("\\\"q\\\""), std::string::npos);  // escaping

  // Byte-identical across runs and input orders.
  std::reverse(findings.begin(), findings.end());
  EXPECT_EQ(json, to_json(findings, 4));
}

}  // namespace
}  // namespace sic::lint
