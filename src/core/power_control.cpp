#include "core/power_control.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <span>

#include "util/check.hpp"

namespace sic::core {

namespace {

/// Evaluates the pair at a given weaker-power scale.
PowerControlResult evaluate_at_scale(const UploadPairContext& ctx,
                                     double scale) {
  UploadPairContext scaled = ctx;
  scaled.arrival.weaker = ctx.arrival.weaker * scale;
  // Reducing the weaker client's power can never flip the strength order.
  PowerControlResult out;
  out.scale = scale;
  out.rates = sic_rates(scaled);
  out.airtime = sic_airtime(scaled);
  out.applied = scale < 1.0;
  return out;
}

/// Shannon-policy closed form: the βS² at which the two rates are equal.
double equal_rate_weaker_rss(const phy::TwoSignalArrival& a) {
  const double n0 = a.noise.value();
  const double s1 = a.stronger.value();
  return (-n0 + std::sqrt(n0 * n0 + 4.0 * s1 * n0)) / 2.0;
}

constexpr double kMinDb = -40.0;
constexpr int kCoarse = 201;  // 0.2 dB steps over [-40 dB, 0 dB]
constexpr int kFine = 81;     // ±0.2 dB at 0.005 dB steps

/// The dB grids of the generic search and their linear scales, shared by
/// every pair. The search used to pay kCoarse + kFine std::pow calls per
/// pair; precomputing the grids once per process removes all of them while
/// keeping the evaluated scales bit-identical (same pow, same arguments).
struct ScaleTables {
  std::array<double, kCoarse> coarse_scale;
  /// fine_scale[c][i]: fine point i of the refinement window around coarse
  /// point c, including the original loop's min(0 dB, ·) clamp.
  std::array<std::array<double, kFine>, kCoarse> fine_scale;
};

const ScaleTables& scale_tables() {
  static const ScaleTables tables = [] {
    ScaleTables t;
    for (int c = 0; c < kCoarse; ++c) {
      const double db = kMinDb + (0.0 - kMinDb) * c / (kCoarse - 1);
      t.coarse_scale[static_cast<std::size_t>(c)] = Decibels{db}.linear();
      for (int i = 0; i < kFine; ++i) {
        const double fine_db =
            std::min(0.0, db - 0.2 + 0.4 * i / (kFine - 1));
        t.fine_scale[static_cast<std::size_t>(c)][static_cast<std::size_t>(
            i)] = Decibels{fine_db}.linear();
      }
    }
    return t;
  }();
  return tables;
}

/// The two SIC-constrained rates at a given weaker-power scale — exactly
/// the rates evaluate_at_scale() realizes, without the airtime math.
SicRatePair rates_at_scale(const UploadPairContext& ctx, double scale) {
  UploadPairContext scaled = ctx;
  scaled.arrival.weaker = ctx.arrival.weaker * scale;
  return sic_rates(scaled);
}

bool same_rates(const SicRatePair& a, const SicRatePair& b) {
  return a.stronger.value() == b.stronger.value() &&
         a.weaker.value() == b.weaker.value();
}

/// Minimizes the objective over an ascending scale grid by plateau
/// skipping instead of point-by-point evaluation. Both SIC rates are
/// monotone in the scale (the weaker's SINR rises with it, the stronger's
/// falls, and RateAdapter is monotone in SINR), so equal rate pairs at two
/// grid points pin every point in between to the same rates — and hence
/// the same airtime. For a discrete rate table the plateau boundaries are
/// its SINR thresholds, so one pass costs O(table · log grid) rate lookups
/// instead of evaluating all `grid` points; probing the actual adapter at
/// grid points (rather than inverting thresholds algebraically) keeps the
/// boundary placement bit-exact.
///
/// Only the first point of each plateau is fully evaluated, which is the
/// point the exhaustive loop would have recorded: its strict `<` keeps the
/// first point of the winning plateau. Points at scale exactly 1.0 (the
/// 0 dB grid end and the refinement window's clamped duplicates) are
/// skipped outright — they re-evaluate the β = 1 starting point, which the
/// strict `<` can never replace.
void refine_over_grid(const UploadPairContext& ctx,
                      std::span<const double> scales,
                      PowerControlResult& best, int* best_index) {
  std::size_t seg = 0;
  while (seg < scales.size()) {
    if (scales[seg] == 1.0) {
      ++seg;
      continue;
    }
    const SicRatePair seg_rates = rates_at_scale(ctx, scales[seg]);
    // Bisect for the last grid index sharing this plateau's rates.
    std::size_t lo = seg;
    std::size_t hi = scales.size() - 1;
    if (same_rates(seg_rates, rates_at_scale(ctx, scales[hi]))) {
      lo = hi;
    } else {
      while (lo + 1 < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (same_rates(seg_rates, rates_at_scale(ctx, scales[mid]))) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
    }
    const PowerControlResult cand = evaluate_at_scale(ctx, scales[seg]);
    if (cand.airtime < best.airtime) {
      best = cand;
      if (best_index != nullptr) *best_index = static_cast<int>(seg);
    }
    seg = lo + 1;
  }
}

}  // namespace

PowerControlResult optimize_weaker_power(const UploadPairContext& ctx) {
  SIC_CHECK(ctx.adapter != nullptr);
  PowerControlResult best = evaluate_at_scale(ctx, 1.0);
  best.applied = false;
  if (ctx.arrival.weaker.value() <= 0.0) return best;

  if (dynamic_cast<const phy::ShannonRateAdapter*>(ctx.adapter) != nullptr) {
    const double target = equal_rate_weaker_rss(ctx.arrival);
    const double scale = target / ctx.arrival.weaker.value();
    if (scale < 1.0) {
      PowerControlResult cand = evaluate_at_scale(ctx, scale);
      if (cand.airtime < best.airtime) return cand;
    }
    return best;
  }

  // Generic (discrete) policy: coarse dB grid over [-40 dB, 0 dB] with one
  // local refinement pass around the best coarse point. Equivalent to
  // evaluating every grid point (pinned by test against the exhaustive
  // loop), but via precomputed scales and plateau skipping.
  const ScaleTables& tables = scale_tables();
  int best_coarse = kCoarse - 1;  // 0 dB — the refinement window when no
                                  // coarse point beats β = 1.
  refine_over_grid(ctx, tables.coarse_scale, best, &best_coarse);
  refine_over_grid(
      ctx, tables.fine_scale[static_cast<std::size_t>(best_coarse)], best,
      nullptr);
  return best;
}

double power_controlled_airtime(const UploadPairContext& ctx) {
  return optimize_weaker_power(ctx).airtime;
}

}  // namespace sic::core
