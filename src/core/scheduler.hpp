#ifndef SICMAC_CORE_SCHEDULER_HPP
#define SICMAC_CORE_SCHEDULER_HPP

/// \file scheduler.hpp
/// Section 6, the paper's algorithmic contribution:
///
///   "SIC-Aware Scheduling: Given a set of backlogged clients C, and their
///    respective maximum bitrates to the AP, find all pairs of clients and
///    their associated transmit powers, such that the total time to upload
///    all the backlogged traffic is minimum."
///
/// Reduction (Fig. 12): build a complete graph over the clients; the edge
/// cost t_ij is the minimum joint completion time for the pair — the best
/// of serialized transmission and concurrent SIC transmission (optionally
/// with power control / multirate packetization). A dummy client D with
/// edge cost = the solo airtime absorbs odd client counts. A minimum-weight
/// perfect matching (Edmonds' blossom algorithm, src/matching) is then the
/// optimal pairing, and the AP serves the pairs in any order.

#include <span>
#include <vector>

#include "channel/link.hpp"
#include "core/upload_pair.hpp"
#include "phy/rate_adapter.hpp"

namespace sic::core {

/// How a scheduled slot transmits.
enum class PairMode {
  kSolo,             ///< single client, clean best rate
  kSerial,           ///< pair transmits back-to-back (SIC loses)
  kSic,              ///< concurrent SIC transmission
  kSicPowerControl,  ///< concurrent with weaker-client power reduction
  kSicMultirate,     ///< concurrent with multirate packetization
};

[[nodiscard]] constexpr const char* to_string(PairMode m) {
  switch (m) {
    case PairMode::kSolo: return "solo";
    case PairMode::kSerial: return "serial";
    case PairMode::kSic: return "sic";
    case PairMode::kSicPowerControl: return "sic+power";
    case PairMode::kSicMultirate: return "sic+multirate";
  }
  return "?";
}

struct SchedulerOptions {
  double packet_bits = 12000.0;
  bool enable_power_control = false;  ///< Section 5.2
  bool enable_multirate = false;      ///< Section 5.3
  enum class Pairing {
    kBlossom,  ///< exact minimum-weight perfect matching (the paper)
    kGreedy,   ///< cheapest-pair-first heuristic (ablation baseline)
    kApprox,   ///< sparsified greedy + 2-opt postpass (scaling tier)
    kAuto,     ///< blossom below auto_tier_threshold clients, approx above
  } pairing = Pairing::kBlossom;
  /// kAuto crossover: backlogs of auto_tier_threshold or more clients use
  /// the approximate tier, smaller ones exact blossom. At sizes just below
  /// the threshold kAuto also runs the approximate matcher observationally
  /// and publishes the relative total-airtime gap as the
  /// scheduler.matching.gap histogram (observer purity: the schedule
  /// itself always comes from the exact tier there).
  int auto_tier_threshold = 64;
  /// Margin-aware pair admission: concurrent candidates (SIC, power
  /// control, multirate) are planned as if every RSS were this many dB
  /// lower, so an admitted pair carries that much SINR headroom against
  /// stale estimates and still has to beat the (unmargined) serial
  /// baseline. The executable version of the slack argument
  /// bench/ablation_stale_rates measures open-loop. 0 dB reproduces the
  /// paper's perfect-knowledge plan exactly.
  Decibels admission_margin_db{0.0};
};

[[nodiscard]] constexpr const char* to_string(SchedulerOptions::Pairing p) {
  switch (p) {
    case SchedulerOptions::Pairing::kBlossom: return "blossom";
    case SchedulerOptions::Pairing::kGreedy: return "greedy";
    case SchedulerOptions::Pairing::kApprox: return "approx";
    case SchedulerOptions::Pairing::kAuto: return "auto";
  }
  return "?";
}

/// The chosen transmission plan for one pair (or solo client).
struct PairPlan {
  PairMode mode = PairMode::kSolo;
  double airtime = 0.0;
  /// Power scale applied to the weaker client (1.0 unless mode is
  /// kSicPowerControl).
  double weaker_power_scale = 1.0;
};

/// Airtime of a lone client at its clean best rate.
[[nodiscard]] double solo_airtime(const channel::LinkBudget& client,
                                  const phy::RateAdapter& adapter,
                                  double packet_bits);

/// The t_ij of Fig. 12: minimum joint completion time for a client pair
/// under the enabled techniques, with the winning mode recorded.
[[nodiscard]] PairPlan best_pair_plan(const channel::LinkBudget& a,
                                      const channel::LinkBudget& b,
                                      const phy::RateAdapter& adapter,
                                      const SchedulerOptions& options);

/// The mode-selection core of best_pair_plan, split out so callers holding
/// precomputed per-client state (the PairCostEngine) share one kernel with
/// the from-scratch path: \p ctx is the pair's margin-derated context and
/// \p serial_airtime the unmargined solo-airtime sum of the two clients.
[[nodiscard]] PairPlan best_pair_plan_from_context(
    const UploadPairContext& ctx, double serial_airtime,
    const SchedulerOptions& options);

/// One slot of the final schedule. Client indices refer to the input span;
/// second == -1 marks the odd client transmitting alone.
struct ScheduledSlot {
  int first = 0;
  int second = -1;
  PairPlan plan;
};

struct Schedule {
  std::vector<ScheduledSlot> slots;
  double total_airtime = 0.0;
  /// The admission margin the slots were planned with; the executor must
  /// derate its concurrent-rate choices identically or the plan's headroom
  /// evaporates.
  Decibels admission_margin_db{0.0};
};

/// Baseline: every client transmits alone, serially (the no-SIC MAC).
[[nodiscard]] double serial_upload_airtime(
    std::span<const channel::LinkBudget> clients,
    const phy::RateAdapter& adapter, double packet_bits);

/// The SIC-aware schedule for one backlogged packet per client.
/// Guaranteed never worse than serial_upload_airtime under the same policy.
[[nodiscard]] Schedule schedule_upload(
    std::span<const channel::LinkBudget> clients,
    const phy::RateAdapter& adapter, const SchedulerOptions& options = {});

}  // namespace sic::core

#endif  // SICMAC_CORE_SCHEDULER_HPP
