/// Reproduces Fig. 13: trace-based evaluation of SIC-aware link pairing on
/// upload traffic. The paper collected two weeks of 802.11g RSSI traces in
/// a Duke building and evaluated per-snapshot pairing gains; we run the
/// identical pipeline on the synthetic building trace (DESIGN.md,
/// substitution 1). Paper: "relative gains from SIC are enhanced when used
/// in conjunction with power control or multi-rate packetization; trends
/// are similar to Fig. 11a."

#include <cstdio>

#include "analysis/trace_eval.hpp"
#include "bench_util.hpp"
#include "trace/generator.hpp"

int main(int argc, char** argv) {
  using namespace sic;
  const bench::RunTimer timer;
  bench::header("Fig. 13 — trace-driven upload pairing",
                "pairing gains real; power control / multirate enhance them; "
                "ordering mirrors Fig. 11a");

  trace::BuildingConfig config;  // two weeks, 15-minute snapshots
  constexpr std::uint64_t kSeed = 2026;
  const auto trace = generate_building_trace(config, kSeed);
  std::printf("synthetic building: %dx%d APs, %d clients, %zu snapshots, "
              "%zu observations, seed=%llu\n",
              config.ap_grid_x, config.ap_grid_y, config.client_population,
              trace.snapshots.size(), trace.total_observations(),
              static_cast<unsigned long long>(kSeed));

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  analysis::UploadTraceEvalConfig eval;
  eval.threads = bench::threads(argc, argv);
  const auto gains = analysis::evaluate_upload_trace(trace, shannon, eval);
  std::printf("(snapshot, AP) cells with >= 2 backlogged clients: %d\n\n",
              gains.cells_evaluated);

  const analysis::EmpiricalCdf pairing{gains.pairing};
  const analysis::EmpiricalCdf pc{gains.power_control};
  const analysis::EmpiricalCdf mr{gains.multirate};
  const analysis::EmpiricalCdf greedy{gains.greedy_pairing};
  bench::print_fractions("pairing (blossom)", pairing);
  bench::print_fractions("pairing + power ctl", pc);
  bench::print_fractions("pairing + multirate", mr);
  bench::print_fractions("greedy pairing", greedy);
  bench::print_cdf("pairing (blossom)", pairing);
  bench::print_cdf("pairing + power ctl", pc);
  bench::print_cdf("pairing + multirate", mr);
  bench::print_cdf("greedy pairing", greedy);
  if (const auto prefix = bench::csv_prefix(argc, argv)) {
    const std::string man = bench::manifest(
        kSeed, timer, static_cast<std::uint64_t>(gains.cells_evaluated));
    bench::write_text_file(*prefix + "fig13_pairing.csv",
                           man + bench::cdf_csv(pairing));
    bench::write_text_file(*prefix + "fig13_power.csv",
                           man + bench::cdf_csv(pc));
    bench::write_text_file(*prefix + "fig13_multirate.csv",
                           man + bench::cdf_csv(mr));
    bench::write_text_file(*prefix + "fig13_greedy.csv",
                           man + bench::cdf_csv(greedy));
  }
  return 0;
}
