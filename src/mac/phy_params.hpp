#ifndef SICMAC_MAC_PHY_PARAMS_HPP
#define SICMAC_MAC_PHY_PARAMS_HPP

/// \file phy_params.hpp
/// 802.11 (OFDM / ERP) MAC-PHY timing parameters used by the DCF model.

#include "mac/sim_time.hpp"
#include "util/units.hpp"

namespace sic::mac {

struct PhyParams {
  SimTime slot = from_micros(9.0);
  SimTime sifs = from_micros(16.0);
  SimTime difs = from_micros(34.0);  ///< SIFS + 2*slot
  SimTime preamble = from_micros(20.0);
  int cw_min = 15;
  int cw_max = 1023;
  int max_retries = 7;
  double ack_bits = 112.0;            ///< 14-byte ACK
  BitsPerSecond ack_rate{6e6};        ///< control rate
  /// Carrier-sense threshold, relative to the noise floor: a foreign
  /// transmission arriving at least this far above noise marks the medium
  /// busy (preamble detection sits ~12 dB over a −94 dBm floor).
  Decibels cs_above_noise{12.0};

  double rts_bits = 160.0;            ///< 20-byte RTS
  double cts_bits = 112.0;            ///< 14-byte CTS

  [[nodiscard]] SimTime ack_duration() const {
    return preamble + from_seconds(ack_bits / ack_rate.value());
  }
  [[nodiscard]] SimTime ack_timeout() const {
    return sifs + ack_duration() + slot;
  }
  [[nodiscard]] SimTime rts_duration() const {
    return preamble + from_seconds(rts_bits / ack_rate.value());
  }
  [[nodiscard]] SimTime cts_duration() const {
    return preamble + from_seconds(cts_bits / ack_rate.value());
  }
};

}  // namespace sic::mac

#endif  // SICMAC_MAC_PHY_PARAMS_HPP
