#include "core/multirate.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};
constexpr Milliwatts kN0{1.0};

UploadPairContext ctx_db(double s1_db, double s2_db) {
  return UploadPairContext::make(Milliwatts{Decibels{s1_db}.linear()},
                                 Milliwatts{Decibels{s2_db}.linear()}, kN0,
                                 kShannon);
}

TEST(Multirate, NeverWorseThanPlainSic) {
  for (double s1 = 4.0; s1 <= 42.0; s1 += 2.0) {
    for (double s2 = 2.0; s2 <= s1; s2 += 2.0) {
      const auto ctx = ctx_db(s1, s2);
      EXPECT_LE(multirate_airtime(ctx), sic_airtime(ctx) + 1e-12)
          << "s1=" << s1 << " s2=" << s2;
    }
  }
}

TEST(Multirate, BoostsWhenStrongerLags) {
  // Similar RSS: the stronger client's SIC rate is tiny; after the weaker
  // finishes, the remainder goes out at the clean rate (Fig. 10f).
  const auto ctx = ctx_db(21.0, 20.0);
  const auto result = multirate_airtime_detailed(ctx);
  EXPECT_TRUE(result.boosted);
  EXPECT_LT(result.airtime, sic_airtime(ctx));
  EXPECT_LT(result.overlap_bits, ctx.packet_bits);
}

TEST(Multirate, LowerBoundedByWeakerAirtime) {
  // The overlap segment always spans the weaker packet, so Z_mr >= t₂.
  for (double s1 = 10.0; s1 <= 40.0; s1 += 5.0) {
    for (double s2 = 5.0; s2 <= s1; s2 += 5.0) {
      const auto ctx = ctx_db(s1, s2);
      const double t2 = airtime_seconds(
          ctx.packet_bits, kShannon.rate(ctx.arrival.weaker / ctx.arrival.noise));
      EXPECT_GE(multirate_airtime(ctx), t2 - 1e-15);
    }
  }
}

TEST(Multirate, NoOpWhenWeakerIsBottleneck) {
  // Past the square point the weaker clean-rate packet dominates; nothing
  // to boost.
  const auto ctx = ctx_db(40.0, 10.0);
  const auto result = multirate_airtime_detailed(ctx);
  EXPECT_FALSE(result.boosted);
  EXPECT_NEAR(result.airtime, sic_airtime(ctx), 1e-15);
  EXPECT_DOUBLE_EQ(result.overlap_bits, ctx.packet_bits);
}

TEST(Multirate, TimeAccountingIsExact) {
  const auto ctx = ctx_db(18.0, 17.0);
  const auto result = multirate_airtime_detailed(ctx);
  ASSERT_TRUE(result.boosted);
  const auto rates = sic_rates(ctx);
  const double t2 = airtime_seconds(ctx.packet_bits, rates.weaker);
  const double clean =
      kShannon.rate(ctx.arrival.stronger / ctx.arrival.noise).value();
  const double expected =
      t2 + (ctx.packet_bits - rates.stronger.value() * t2) / clean;
  EXPECT_NEAR(result.airtime, expected, expected * 1e-12);
}

TEST(Multirate, InfeasibleWeakLinkPropagates) {
  const auto ctx = UploadPairContext::make(Milliwatts{100.0}, Milliwatts{0.0},
                                           kN0, kShannon);
  EXPECT_TRUE(std::isinf(multirate_airtime(ctx)));
}

TEST(Multirate, GainBetweenSicAndSerial) {
  // Multirate fixes the stronger link's tail, so its completion sits
  // between the SIC time and the weaker link's clean airtime.
  const auto ctx = ctx_db(25.0, 23.0);
  const double mr = multirate_airtime(ctx);
  EXPECT_LT(mr, sic_airtime(ctx));
  EXPECT_LT(mr, serial_airtime(ctx));
}

}  // namespace
}  // namespace sic::core
