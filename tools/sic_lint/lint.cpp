#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "lexer.hpp"

namespace sic::lint {

namespace {

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// True if `path` has a directory component named `dir` (e.g. "obs",
/// "bench"). Works for absolute and repo-relative paths alike.
bool has_dir_component(std::string_view path, std::string_view dir) {
  std::size_t pos = 0;
  while ((pos = path.find(dir, pos)) != std::string_view::npos) {
    const bool starts_segment = pos == 0 || path[pos - 1] == '/';
    const std::size_t end = pos + dir.size();
    const bool ends_segment = end < path.size() && path[end] == '/';
    if (starts_segment && ends_segment) return true;
    pos = end;
  }
  return false;
}

/// Fixture files exercise the rules in tests: never exempt them.
bool is_fixture(std::string_view path) {
  return has_dir_component(path, "lint_fixtures");
}

bool is_header(std::string_view path) { return ends_with(path, ".hpp"); }

bool r1_applies(std::string_view path) {
  if (is_fixture(path)) return true;
  // util/units.hpp is the one blessed home of dB↔linear math, and
  // channel/pathloss.cpp the blessed home of the textbook log-distance law
  // (its operand grouping is pinned by the figure outputs). Tests probe raw
  // conversions against units.hpp on purpose.
  return !ends_with(path, "util/units.hpp") &&
         !ends_with(path, "channel/pathloss.cpp") &&
         !has_dir_component(path, "tests");
}

bool r2_applies(std::string_view path) {
  return is_header(path) && !ends_with(path, "util/units.hpp");
}

bool r3_applies(std::string_view path) {
  if (is_fixture(path)) return true;
  // Observability reads clocks by design; bench code times itself.
  return !has_dir_component(path, "obs") && !has_dir_component(path, "bench");
}

bool r4_applies(std::string_view path) {
  if (is_fixture(path)) return true;
  // The registry implementation calls its own mutators; tests assert on
  // mutator behavior inside EXPECT macros. Both are out of scope.
  return !has_dir_component(path, "obs") && !has_dir_component(path, "tests");
}

bool r7_applies(std::string_view path) {
  if (is_fixture(path)) return true;
  // Tests compare computed doubles on purpose (golden values, EXPECT_EQ);
  // util/mathx.hpp is the blessed home of bitwise_equal()/approx_equal().
  return !has_dir_component(path, "tests") &&
         !ends_with(path, "util/mathx.hpp");
}

bool r8_applies(std::string_view path) {
  // The typed-error policy governs the library; tools and bench harnesses
  // may throw whatever their mini-CLIs need.
  return is_fixture(path) || has_dir_component(path, "src");
}

// ---------------------------------------------------------------------------
// Layer DAG (R5)
// ---------------------------------------------------------------------------

/// Declared layer order, lowest first. A file in layer i may include layers
/// j <= i only. The order is the *verified* dependency structure of the
/// tree: obs sits just above util because observability is wired into every
/// subsystem by design (PR 2), and channel sits below topology because the
/// placement samplers precompute link RSS through the channel models.
constexpr std::array<std::string_view, 10> kLayers = {
    "util", "obs",  "channel", "topology", "phy",
    "matching", "trace", "core", "mac", "analysis"};

constexpr std::string_view kLayerOrderText =
    "util -> obs -> channel -> topology -> phy -> matching -> trace -> "
    "core -> mac -> analysis";

int layer_index(std::string_view name) {
  for (std::size_t i = 0; i < kLayers.size(); ++i) {
    if (kLayers[i] == name) return static_cast<int>(i);
  }
  return -1;
}

/// Layer of a source file: the directory component immediately following a
/// `src` component, when it names a layer. Files outside src/ (tools,
/// bench, tests, examples) and src/ files outside a layer directory
/// (sicmac.hpp) are consumers: they may include anything.
int layer_of_path(std::string_view path) {
  std::size_t pos = 0;
  while ((pos = path.find("src/", pos)) != std::string_view::npos) {
    if (pos != 0 && path[pos - 1] != '/') {
      pos += 4;
      continue;
    }
    const std::size_t start = pos + 4;
    const std::size_t slash = path.find('/', start);
    if (slash != std::string_view::npos) {
      const int idx = layer_index(path.substr(start, slash - start));
      if (idx >= 0) return idx;
    }
    pos += 4;
  }
  return -1;
}

/// Layer of an include target ("channel/link.hpp" -> channel); -1 when the
/// first component is not a layer (relative includes like "lint.hpp").
int layer_of_include(std::string_view target) {
  const std::size_t slash = target.find('/');
  if (slash == std::string_view::npos) return -1;
  return layer_index(target.substr(0, slash));
}

/// Key under which a file is includable (`#include "channel/link.hpp"`):
/// the path after its last `src/` component. Empty for non-src files.
std::string include_key(std::string_view path) {
  const std::size_t pos = path.rfind("src/");
  if (pos == std::string_view::npos) return {};
  if (pos != 0 && path[pos - 1] != '/') return {};
  return std::string{path.substr(pos + 4)};
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Per-line sets of rule names allowed via `// sic-lint: allow(R1,R3)`.
/// A suppression on a comment-only line also covers the next line.
///
/// Parsed from the lexer's comment channel, so the allow marker occurring
/// inside a string literal — e.g. in a fixture or in sic_lint's own
/// messages — can never suppress findings.
class Suppressions {
 public:
  explicit Suppressions(const LexedFile& lx) {
    std::set<int> code_lines;
    for (const Token& t : lx.tokens) {
      int line = t.line;
      code_lines.insert(line);
      for (const char c : t.text) {
        if (c == '\n') code_lines.insert(++line);
      }
    }
    static const std::regex allow_re(
        R"(sic-lint:\s*allow\(\s*([A-Za-z0-9_,\s]+?)\s*\))");
    for (const Token& t : lx.comments) {
      int line = t.line;
      std::size_t start = 0;
      while (start <= t.text.size()) {
        std::size_t nl = t.text.find('\n', start);
        if (nl == std::string::npos) nl = t.text.size();
        const std::string sub = t.text.substr(start, nl - start);
        std::smatch m;
        if (std::regex_search(sub, m, allow_re)) {
          std::set<std::string> rules;
          std::stringstream list{m[1].str()};
          std::string rule;
          while (std::getline(list, rule, ',')) {
            rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                       rule.end());
            if (!rule.empty()) rules.insert(rule);
          }
          add(line, rules);
          if (code_lines.count(line) == 0) add(line + 1, rules);
        }
        ++line;
        start = nl + 1;
      }
    }
  }

  [[nodiscard]] bool allowed(int line, const std::string& rule) const {
    const auto it = by_line_.find(line);
    return it != by_line_.end() && it->second.count(rule) > 0;
  }

 private:
  void add(int line, const std::set<std::string>& rules) {
    by_line_[line].insert(rules.begin(), rules.end());
  }

  std::unordered_map<int, std::set<std::string>> by_line_;
};

// ---------------------------------------------------------------------------
// Analysis context
// ---------------------------------------------------------------------------

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// Names declared as `double` vs any other arithmetic/class type, across
/// the whole lint_tree() input. A name declared both ways is ambiguous and
/// drops out — the R7 comparison rule only fires on names that are doubles
/// everywhere they are declared.
struct SymbolTable {
  std::set<std::string> dbl;
  std::set<std::string> ambiguous;

  [[nodiscard]] bool is_double(const std::string& name) const {
    return dbl.count(name) > 0 && ambiguous.count(name) == 0;
  }
};

bool other_type_token(const Token& t) {
  static const std::set<std::string> kOther = {
      "int",      "long",     "short",   "unsigned", "bool",    "char",
      "auto",     "float",    "size_t",  "uint64_t", "int64_t", "uint32_t",
      "int32_t",  "uint16_t", "int16_t", "uint8_t",  "int8_t",  "ptrdiff_t"};
  if (kOther.count(t.text) > 0) return true;
  // Class-typed declarations: `Decibels drift`, `Dbm s`, ...
  return !t.text.empty() && std::isupper(static_cast<unsigned char>(t.text[0]));
}

void collect_symbols(const LexedFile& lx, SymbolTable& table) {
  const auto& toks = lx.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].pp || toks[i + 1].pp) continue;
    if (toks[i].kind != TokKind::kIdent ||
        toks[i + 1].kind != TokKind::kIdent) {
      continue;
    }
    const std::string& name = toks[i + 1].text;
    if (toks[i].text == "double") {
      if (table.dbl.insert(name).second == false) continue;
      continue;
    }
    if (other_type_token(toks[i])) {
      if (table.dbl.count(name) > 0) table.ambiguous.insert(name);
      // Remember non-double declarations so a later `double name` is also
      // recognized as ambiguous.
      table.ambiguous.insert("\x01" + name);  // shadow marker, see below
    }
  }
}

/// Second pass over the shadow markers: a name with both a double and a
/// non-double declaration is ambiguous regardless of scan order.
void finalize_symbols(SymbolTable& table) {
  for (const std::string& marked : table.ambiguous) {
    if (!marked.empty() && marked[0] == '\x01') {
      const std::string name = marked.substr(1);
      if (table.dbl.count(name) > 0) table.ambiguous.insert(name);
    }
  }
}

/// Everything the per-file rules need, computed once per file.
struct FileCtx {
  const std::string* path = nullptr;
  LexedFile lx;
  ScopeInfo scopes;
  std::set<std::string> unordered;  ///< names declared std::unordered_*
  bool parallel_tu = false;         ///< mentions ParallelRunner/parallel_for
  Suppressions suppress;

  FileCtx(const std::string& p, std::string_view source)
      : path(&p), lx(lex(source)), suppress(lx) {
    scopes = analyze_scopes(lx.tokens);
    const auto& toks = lx.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdent) continue;
      if (t.text == "parallel_for" || t.text == "ParallelRunner") {
        parallel_tu = true;
      }
      static const std::set<std::string> kUnordered = {
          "unordered_map", "unordered_set", "unordered_multimap",
          "unordered_multiset"};
      if (kUnordered.count(t.text) > 0 && i + 1 < toks.size() &&
          is_punct(toks[i + 1], "<")) {
        // Balance the template angle brackets at token level ('<<'/'>>'
        // lex as two tokens, so plain counting works).
        std::size_t j = i + 1;
        int depth = 0;
        for (; j < toks.size(); ++j) {
          if (toks[j].pp) continue;
          if (is_punct(toks[j], "<")) ++depth;
          if (is_punct(toks[j], ">")) {
            --depth;
            if (depth == 0) break;
          }
        }
        if (j >= toks.size()) continue;
        ++j;
        while (j < toks.size() &&
               (is_punct(toks[j], "&") || is_punct(toks[j], "*") ||
                is_ident(toks[j], "const"))) {
          ++j;
        }
        if (j < toks.size() && toks[j].kind == TokKind::kIdent) {
          unordered.insert(toks[j].text);
        }
      }
    }
  }
};

void emit(std::vector<Finding>& out, const FileCtx& ctx,
          const LintOptions& opts, const std::string& rule, const Token& at,
          std::string symbol, std::string message) {
  if (!opts.rule_enabled(rule)) return;
  if (ctx.suppress.allowed(at.line, rule)) return;
  out.push_back(Finding{rule, *ctx.path, at.line, at.col, std::move(symbol),
                        std::move(message)});
}

// ---------------------------------------------------------------------------
// R1 — hand-rolled dB↔linear conversions
// ---------------------------------------------------------------------------

bool number_is_ten(std::string_view text) {
  if (text.substr(0, 2) != "10") return false;
  for (std::size_t i = 2; i < text.size(); ++i) {
    if (text[i] != '.' && text[i] != '0') return false;
  }
  return true;
}

void check_r1(const FileCtx& ctx, const LintOptions& opts,
              std::vector<Finding>& out) {
  const auto& toks = ctx.lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdent || t.pp) continue;
    const bool member = i > 0 && is_punct(toks[i - 1], ".");
    if (member) continue;
    if (t.text == "pow" && i + 3 < toks.size() &&
        is_punct(toks[i + 1], "(") && toks[i + 2].kind == TokKind::kNumber &&
        number_is_ten(toks[i + 2].text) && is_punct(toks[i + 3], ",")) {
      emit(out, ctx, opts, "R1", t, "",
           "hand-rolled pow(10, x/10) dB->linear conversion; use "
           "sic::Decibels{x}.linear() from util/units.hpp");
    }
    if (t.text == "log10" && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(")) {
      emit(out, ctx, opts, "R1", t, "",
           "hand-rolled log10 linear->dB conversion; use "
           "sic::Decibels::from_linear() from util/units.hpp");
    }
  }
}

// ---------------------------------------------------------------------------
// R2 — raw doubles with unit suffixes in headers
// ---------------------------------------------------------------------------

bool has_unit_suffix(std::string_view name) {
  static const std::regex suffix_re(R"(^[A-Za-z_]\w*_(?:db|dbm|mw)_?$)");
  return std::regex_match(name.begin(), name.end(), suffix_re);
}

void check_r2(const FileCtx& ctx, const LintOptions& opts,
              std::vector<Finding>& out) {
  const auto& toks = ctx.lx.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i], "double") || toks[i].pp) continue;
    const Token& name = toks[i + 1];
    if (name.kind != TokKind::kIdent || !has_unit_suffix(name.text)) continue;
    emit(out, ctx, opts, "R2", toks[i], name.text,
         "raw double '" + name.text +
             "' carries a unit suffix in a header; use sic::Decibels / "
             "sic::Dbm / sic::Milliwatts");
  }
}

// ---------------------------------------------------------------------------
// R3 — nondeterminism sources
// ---------------------------------------------------------------------------

/// The range-for container name for the `for` keyword at `i`, or empty.
/// Matches `for (decl : expr)` where expr is an identifier/member chain —
/// the last identifier directly before the closing paren names it.
std::string range_for_container(const std::vector<Token>& toks,
                                std::size_t i) {
  if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) return {};
  const std::size_t close = match_forward(toks, i + 1);
  if (close >= toks.size()) return {};
  bool has_colon = false;
  for (std::size_t j = i + 2; j < close; ++j) {
    if (is_punct(toks[j], ":") &&
        toks[j].paren_depth == toks[i + 1].paren_depth + 1) {
      has_colon = true;
      break;
    }
  }
  if (!has_colon) return {};
  std::size_t last = close;
  while (last > i + 1 && is_punct(toks[last - 1], ")")) {
    // `: obj.items())` — a trailing call does not name a container we can
    // track; bail like the regex version did.
    return {};
  }
  if (toks[close - 1].kind == TokKind::kIdent) return toks[close - 1].text;
  return {};
}

void check_r3(const FileCtx& ctx, const LintOptions& opts,
              std::vector<Finding>& out) {
  const auto& toks = ctx.lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.pp || t.kind != TokKind::kIdent) continue;
    if (t.text == "rand" && i >= 2 && is_punct(toks[i - 1], "::") &&
        is_ident(toks[i - 2], "std")) {
      emit(out, ctx, opts, "R3", toks[i - 2], "",
           "std::rand is not seedable per-stream; use sic::Rng "
           "(util/rng.hpp)");
    }
    if (t.text == "srand" && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(")) {
      emit(out, ctx, opts, "R3", t, "",
           "srand mutates global state; use sic::Rng (util/rng.hpp)");
    }
    if (t.text == "system_clock") {
      emit(out, ctx, opts, "R3", t, "",
           "wall-clock time breaks reproducibility; use steady_clock (and "
           "only in obs/bench code)");
    }
    if (t.text == "high_resolution_clock") {
      emit(out, ctx, opts, "R3", t, "",
           "high_resolution_clock may alias system_clock; use steady_clock "
           "(and only in obs/bench code)");
    }
  }

  if (ctx.unordered.empty()) return;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].pp) continue;
    if (is_ident(toks[i], "for")) {
      const std::string name = range_for_container(toks, i);
      if (!name.empty() && ctx.unordered.count(name) > 0) {
        emit(out, ctx, opts, "R3", toks[i], "",
             "iteration over unordered container '" + name +
                 "' has unspecified order; iterate a sorted copy or an "
                 "ordered container");
      }
      continue;
    }
    // `name.begin()` / `name.end()` iterator access.
    if (toks[i].kind == TokKind::kIdent && ctx.unordered.count(toks[i].text) &&
        i + 3 < toks.size() && is_punct(toks[i + 1], ".") &&
        toks[i + 2].kind == TokKind::kIdent && is_punct(toks[i + 3], "(")) {
      const std::string& method = toks[i + 2].text;
      if (method != "begin" && method != "end" && method != "cbegin" &&
          method != "cend") {
        continue;
      }
      if (method == "end" || method == "cend") {
        // `it != m.end()` / `m.end() == m.find(k)` are deterministic
        // validity tests.
        const bool cmp_before =
            i > 0 && (is_punct(toks[i - 1], "==") || is_punct(toks[i - 1], "!="));
        const std::size_t close = match_forward(toks, i + 3);
        const bool cmp_after =
            close + 1 < toks.size() && (is_punct(toks[close + 1], "==") ||
                                        is_punct(toks[close + 1], "!="));
        if (cmp_before || cmp_after) continue;
      }
      emit(out, ctx, opts, "R3", toks[i], "",
           "iterator over unordered container '" + toks[i].text +
               "' has unspecified order; iterate a sorted copy or an "
               "ordered container");
    }
  }
}

// ---------------------------------------------------------------------------
// R4 — metrics mutators used as values
// ---------------------------------------------------------------------------

void check_r4(const FileCtx& ctx, const LintOptions& opts,
              std::vector<Finding>& out) {
  static const std::set<std::string> kMakers = {"counter", "gauge",
                                                "histogram", "series"};
  static const std::set<std::string> kMutators = {"inc", "set", "observe",
                                                  "record"};
  static const std::set<std::string> kAssignOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="};
  const auto& toks = ctx.lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.pp || t.kind != TokKind::kIdent || kMakers.count(t.text) == 0) {
      continue;
    }
    if (i + 1 >= toks.size() || !is_punct(toks[i + 1], "(")) continue;
    const std::size_t close = match_forward(toks, i + 1);
    if (close >= toks.size()) continue;
    // Require a chained `.inc(` / `.set(` / `.observe(` — a bound reference
    // (`auto& h = reg.histogram(...)`) is not itself a mutation.
    if (close + 3 >= toks.size() || !is_punct(toks[close + 1], ".")) continue;
    if (toks[close + 2].kind != TokKind::kIdent ||
        kMutators.count(toks[close + 2].text) == 0 ||
        !is_punct(toks[close + 3], "(")) {
      continue;
    }
    // Statement prefix: walk back to the nearest ; { or } and look for a
    // value consumer (`return`, an assignment) or call nesting (the maker
    // sits deeper in parens than the statement start).
    bool impure = false;
    std::size_t b = i;
    while (b > 0) {
      const Token& p = toks[b - 1];
      if (p.pp) {
        --b;
        continue;
      }
      if (is_punct(p, ";") || is_punct(p, "{") || is_punct(p, "}")) break;
      if (is_ident(p, "return")) impure = true;
      if (p.kind == TokKind::kPunct && kAssignOps.count(p.text) > 0 &&
          p.paren_depth <= t.paren_depth) {
        impure = true;
      }
      --b;
    }
    if (!impure && b < i) {
      // First token of the statement: if the maker is nested deeper, the
      // chain's value is consumed by an enclosing call.
      std::size_t first = b;
      while (first < i && toks[first].pp) ++first;
      if (first < i && t.paren_depth > toks[first].paren_depth) impure = true;
    }
    if (!impure) continue;
    emit(out, ctx, opts, "R4", t, "",
         "metrics mutator used inside a value-producing expression; "
         "observers must be pure side-channel statements");
  }
}

// ---------------------------------------------------------------------------
// R5 — include-layer DAG (per-file back-edges)
// ---------------------------------------------------------------------------

void check_r5_back_edges(const FileCtx& ctx, const LintOptions& opts,
                         std::vector<Finding>& out) {
  const int file_layer = layer_of_path(*ctx.path);
  if (file_layer < 0) return;  // consumers may include anything
  for (const IncludeDirective& inc : ctx.lx.includes) {
    if (!inc.quoted) continue;
    const int inc_layer = layer_of_include(inc.target);
    if (inc_layer < 0 || inc_layer <= file_layer) continue;
    Token at;
    at.line = inc.line;
    at.col = 1;
    emit(out, ctx, opts, "R5", at, inc.target,
         "include back-edge: src/" + std::string{kLayers[static_cast<std::size_t>(file_layer)]} +
             " (layer " + std::to_string(file_layer) + ") must not include \"" +
             inc.target + "\" (" +
             std::string{kLayers[static_cast<std::size_t>(inc_layer)]} +
             ", layer " + std::to_string(inc_layer) +
             "); declared order: " + std::string{kLayerOrderText});
  }
}

// ---------------------------------------------------------------------------
// R6 — RNG substream discipline in parallel translation units
// ---------------------------------------------------------------------------

void check_r6(const FileCtx& ctx, const LintOptions& opts,
              std::vector<Finding>& out) {
  if (!ctx.parallel_tu) return;
  const auto& toks = ctx.lx.tokens;
  for (const TokenSpan& body : ctx.scopes.loop_bodies) {
    for (std::size_t i = body.begin; i <= body.end && i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.pp || t.kind != TokKind::kIdent) continue;
      if (t.text == "fork" && i > body.begin && is_punct(toks[i - 1], ".") &&
          i + 1 <= body.end && is_punct(toks[i + 1], "(")) {
        emit(out, ctx, opts, "R6", t, "",
             "Rng::fork() inside a loop body of a parallel translation "
             "unit: fork order depends on scheduling; derive substreams "
             "with the counter-based Rng::at(seed, index)");
        continue;
      }
      if (t.text != "Rng") continue;
      if (i + 1 > body.end || i + 1 >= toks.size()) continue;
      const Token& next = toks[i + 1];
      // `Rng::at(...)` is the required form; `Rng&` / `Rng*` / `<Rng>` are
      // type mentions, not constructions.
      if (is_punct(next, "::")) continue;
      if (next.kind == TokKind::kPunct && next.text != "(" &&
          next.text != "{") {
        continue;
      }
      bool blessed = false;
      if (next.kind == TokKind::kIdent) {
        // Declaration `Rng r = ...;` — blessed when the initializer goes
        // through `::at(...)`. An initializer via `.fork()` is flagged by
        // the fork check above; skip here so the line reports once.
        for (std::size_t j = i + 1; j <= body.end && j < toks.size(); ++j) {
          if (is_punct(toks[j], ";")) break;
          const bool scoped_at = is_ident(toks[j], "at") && j > 0 &&
                                 is_punct(toks[j - 1], "::");
          const bool via_fork = is_ident(toks[j], "fork") && j > 0 &&
                                is_punct(toks[j - 1], ".");
          if (scoped_at || via_fork) {
            blessed = true;
            break;
          }
        }
      }
      if (blessed) continue;
      emit(out, ctx, opts, "R6", t, "",
           "Rng constructed inside a loop body of a parallel translation "
           "unit: per-iteration streams must be the counter-based "
           "Rng::at(seed, index), independent of scheduling order");
    }
  }
}

// ---------------------------------------------------------------------------
// R7 — FP determinism
// ---------------------------------------------------------------------------

void check_r7_unordered_reduction(const FileCtx& ctx,
                                  const SymbolTable& symbols,
                                  const LintOptions& opts,
                                  std::vector<Finding>& out) {
  static const std::set<std::string> kReduceOps = {"+=", "-=", "*=", "/="};
  if (ctx.unordered.empty()) return;
  const auto& toks = ctx.lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].pp || !is_ident(toks[i], "for")) continue;
    const std::string name = range_for_container(toks, i);
    if (name.empty() || ctx.unordered.count(name) == 0) continue;
    const std::size_t close = match_forward(toks, i + 1);
    if (close >= toks.size()) continue;
    std::size_t body = close + 1;
    if (body >= toks.size()) continue;
    std::size_t body_end;
    if (is_punct(toks[body], "{")) {
      body_end = match_forward(toks, body);
      ++body;
    } else {
      body_end = body;
      while (body_end < toks.size() && !is_punct(toks[body_end], ";")) {
        ++body_end;
      }
    }
    for (std::size_t j = body; j < body_end && j < toks.size(); ++j) {
      if (toks[j].kind != TokKind::kPunct ||
          kReduceOps.count(toks[j].text) == 0) {
        continue;
      }
      // Integer accumulation is associative — unspecified order changes
      // only FP results, so require a double-typed accumulator on the lhs.
      if (j == 0 || toks[j - 1].kind != TokKind::kIdent ||
          !symbols.is_double(toks[j - 1].text)) {
        continue;
      }
      emit(out, ctx, opts, "R7", toks[j], "",
           "reduction of double '" + toks[j - 1].text +
               "' over unordered container '" + name +
               "' accumulates in unspecified order, which changes the "
               "floating-point result; reduce over a sorted copy");
    }
  }
}

void check_r7_float(const FileCtx& ctx, const LintOptions& opts,
                    std::vector<Finding>& out) {
  const bool core_or_phy = has_dir_component(*ctx.path, "core") ||
                           has_dir_component(*ctx.path, "phy");
  if (!is_fixture(*ctx.path) && !core_or_phy) return;
  for (const Token& t : ctx.lx.tokens) {
    if (t.pp || !is_ident(t, "float")) continue;
    emit(out, ctx, opts, "R7", t, "",
         "float in core/phy numeric code: the completion-time algebra and "
         "feasibility predicates are double-only so results stay "
         "bit-identical across builds; use double");
  }
}

/// One side of a `==`/`!=`: walk outward collecting tokens until the
/// expression boundary at relative depth 0.
struct Operand {
  bool empty = true;
  bool has_literal = false;
  bool has_string = false;
  std::string double_ident;  ///< first identifier known to be double-typed
};

bool boundary_punct(const Token& t) {
  static const std::set<std::string> kBoundary = {
      ",", ";", "{", "}",  "?",  ":",  "&&", "||", "==", "!=",
      "<", ">", "<=", ">=", "=",  "+=", "-=", "*=", "/=", "%=",
      "&=", "|=", "^=", "<<=", ">>=", "[", "]"};
  return t.kind == TokKind::kPunct && kBoundary.count(t.text) > 0;
}

void classify(const Token& t, const SymbolTable& symbols, Operand& op) {
  op.empty = false;
  if (t.kind == TokKind::kNumber) op.has_literal = true;
  if (t.kind == TokKind::kString || t.kind == TokKind::kChar) {
    op.has_string = true;
  }
  if (t.kind == TokKind::kIdent && op.double_ident.empty() &&
      symbols.is_double(t.text)) {
    op.double_ident = t.text;
  }
}

Operand left_operand(const std::vector<Token>& toks, std::size_t cmp,
                     const SymbolTable& symbols) {
  Operand op;
  int depth = 0;
  for (std::size_t j = cmp; j > 0; --j) {
    const Token& t = toks[j - 1];
    if (t.pp) continue;
    if (t.kind == TokKind::kPunct) {
      if (t.text == ")") ++depth;
      if (t.text == "(") {
        if (depth == 0) break;
        --depth;
        continue;
      }
      if (depth == 0 && boundary_punct(t)) break;
    }
    if (depth == 0 && (is_ident(t, "return") || is_ident(t, "if") ||
                       is_ident(t, "while"))) {
      break;
    }
    classify(t, symbols, op);
  }
  return op;
}

Operand right_operand(const std::vector<Token>& toks, std::size_t cmp,
                      const SymbolTable& symbols) {
  Operand op;
  int depth = 0;
  for (std::size_t j = cmp + 1; j < toks.size(); ++j) {
    const Token& t = toks[j];
    if (t.pp) continue;
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") ++depth;
      if (t.text == ")") {
        if (depth == 0) break;
        --depth;
        continue;
      }
      if (depth == 0 && boundary_punct(t)) break;
    }
    classify(t, symbols, op);
  }
  return op;
}

void check_r7_double_compare(const FileCtx& ctx, const SymbolTable& symbols,
                             const LintOptions& opts,
                             std::vector<Finding>& out) {
  const auto& toks = ctx.lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.pp || t.kind != TokKind::kPunct ||
        (t.text != "==" && t.text != "!=")) {
      continue;
    }
    if (i > 0 && is_ident(toks[i - 1], "operator")) continue;
    const Operand lhs = left_operand(toks, i, symbols);
    const Operand rhs = right_operand(toks, i, symbols);
    if (lhs.empty || rhs.empty) continue;
    // Comparisons against literals are deliberate sentinels (`x == 0.0`)
    // and stay exempt; string/char comparisons are not FP at all.
    if (lhs.has_literal || rhs.has_literal) continue;
    if (lhs.has_string || rhs.has_string) continue;
    if (lhs.double_ident.empty() || rhs.double_ident.empty()) continue;
    emit(out, ctx, opts, "R7", t, "",
         "exact " + t.text + " between computed double expressions ('" +
             lhs.double_ident + "' vs '" + rhs.double_ident +
             "') is FP-fragile; use sic::bitwise_equal (util/mathx.hpp) "
             "for an intentional bit-exact test or approx_equal for a "
             "tolerance");
  }
}

// ---------------------------------------------------------------------------
// R8 — typed-error policy
// ---------------------------------------------------------------------------

void check_r8(const FileCtx& ctx, const LintOptions& opts,
              std::vector<Finding>& out) {
  const auto& toks = ctx.lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].pp || !is_ident(toks[i], "throw")) continue;
    if (i + 1 >= toks.size()) continue;
    const Token& next = toks[i + 1];
    if (next.kind == TokKind::kString || next.kind == TokKind::kChar) {
      emit(out, ctx, opts, "R8", toks[i], "",
           "throw of a bare string literal; construct a project error type "
           "(TraceIoError, FaultConfigError, MatchingError, CheckError, "
           "UsageError, ...) so callers can catch by category");
      continue;
    }
    std::size_t j = i + 1;
    if (is_ident(toks[j], "std") && j + 2 < toks.size() &&
        is_punct(toks[j + 1], "::")) {
      j += 2;
    }
    if (toks[j].kind == TokKind::kIdent &&
        (toks[j].text == "runtime_error" || toks[j].text == "logic_error")) {
      emit(out, ctx, opts, "R8", toks[i], "",
           "bare std::" + toks[j].text +
               " thrown in src/; construct a project error type "
               "(TraceIoError, FaultConfigError, MatchingError, CheckError, "
               "UsageError, std::out_of_range, ...) so callers can catch by "
               "category");
    }
  }
}

// ---------------------------------------------------------------------------
// R5 — include cycles (cross-file)
// ---------------------------------------------------------------------------

void check_r5_cycles(const std::vector<FileCtx>& files,
                     const LintOptions& opts, std::vector<Finding>& out) {
  if (!opts.rule_enabled("R5")) return;
  // Graph over src-includable keys ("channel/link.hpp"); edges follow the
  // quoted include directives that resolve to another scanned file.
  std::map<std::string, const FileCtx*> by_key;
  for (const FileCtx& f : files) {
    const std::string key = include_key(*f.path);
    if (!key.empty()) by_key.emplace(key, &f);
  }
  std::map<std::string, std::vector<std::pair<std::string, int>>> adj;
  for (const auto& [key, ctx] : by_key) {
    for (const IncludeDirective& inc : ctx->lx.includes) {
      if (!inc.quoted || by_key.count(inc.target) == 0) continue;
      adj[key].push_back({inc.target, inc.line});
    }
  }
  // Iterative DFS, keys in sorted order for deterministic reports.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> chain;
  std::set<std::string> reported;

  struct Frame {
    std::string key;
    std::size_t next = 0;
  };
  for (const auto& [start, unused] : by_key) {
    (void)unused;
    if (color[start] != 0) continue;
    std::vector<Frame> stack;
    stack.push_back(Frame{start, 0});
    color[start] = 1;
    chain.push_back(start);
    while (!stack.empty()) {
      Frame& fr = stack.back();
      const auto& edges = adj[fr.key];
      if (fr.next >= edges.size()) {
        color[fr.key] = 2;
        chain.pop_back();
        stack.pop_back();
        continue;
      }
      const auto [target, line] = edges[fr.next++];
      if (color[target] == 1) {
        // Found a cycle: chain from `target` onward, closed by this edge.
        const auto it = std::find(chain.begin(), chain.end(), target);
        std::string path_text;
        for (auto c = it; c != chain.end(); ++c) {
          path_text += *c + " -> ";
        }
        path_text += target;
        if (reported.insert(path_text).second) {
          const FileCtx* ctx = by_key.at(fr.key);
          Token at;
          at.line = line;
          at.col = 1;
          emit(out, *ctx, opts, "R5", at, target,
               "include cycle: " + path_text +
                   " (header guards hide it from the compiler; break the "
                   "cycle or invert the dependency)");
        }
        continue;
      }
      if (color[target] == 0) {
        color[target] = 1;
        chain.push_back(target);
        stack.push_back(Frame{target, 0});
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

bool LintOptions::rule_enabled(std::string_view rule) const {
  // "baseline" findings are R2 bookkeeping and follow R2's selection.
  const std::string_view effective = rule == "baseline" ? "R2" : rule;
  if (!only.empty() &&
      std::find(only.begin(), only.end(), effective) == only.end()) {
    return false;
  }
  return std::find(exclude.begin(), exclude.end(), effective) == exclude.end();
}

namespace {

/// Shared renderer behind sanitize()/comments_only(): paints one channel
/// of the lexed source into a same-size blank buffer, preserving newlines
/// and column positions. String/char literal contents are blanked down to
/// their delimiters in the code channel.
std::string render(std::string_view source, bool keep_code) {
  std::string out(source.size(), ' ');
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '\n') out[i] = '\n';
  }
  const LexedFile lx = lex(source);
  if (keep_code) {
    for (const Token& t : lx.tokens) {
      if (t.kind == TokKind::kString || t.kind == TokKind::kChar) {
        out[t.offset] = source[t.offset];
        if (t.text.size() > 1) {
          const std::size_t last = t.offset + t.text.size() - 1;
          if (last < out.size()) out[last] = source[last];
        }
        continue;
      }
      for (std::size_t k = 0; k < t.text.size(); ++k) {
        if (t.offset + k < out.size()) out[t.offset + k] = source[t.offset + k];
      }
    }
  } else {
    for (const Token& t : lx.comments) {
      for (std::size_t k = 0; k < t.text.size(); ++k) {
        if (t.offset + k < out.size()) out[t.offset + k] = source[t.offset + k];
      }
    }
  }
  return out;
}

}  // namespace

std::string sanitize(std::string_view source) { return render(source, true); }

std::string comments_only(std::string_view source) {
  return render(source, false);
}

std::vector<Finding> lint_tree(const std::vector<FileInput>& files,
                               const LintOptions& options) {
  std::vector<FileCtx> ctxs;
  ctxs.reserve(files.size());
  for (const FileInput& f : files) ctxs.emplace_back(f.path, f.source);

  SymbolTable symbols;
  for (const FileCtx& ctx : ctxs) collect_symbols(ctx.lx, symbols);
  finalize_symbols(symbols);

  std::vector<Finding> out;
  for (const FileCtx& ctx : ctxs) {
    const std::string& path = *ctx.path;
    if (r1_applies(path)) check_r1(ctx, options, out);
    if (r2_applies(path)) check_r2(ctx, options, out);
    if (r3_applies(path)) check_r3(ctx, options, out);
    if (r4_applies(path)) check_r4(ctx, options, out);
    check_r5_back_edges(ctx, options, out);
    check_r6(ctx, options, out);
    if (r7_applies(path)) {
      check_r7_unordered_reduction(ctx, symbols, options, out);
      check_r7_float(ctx, options, out);
      check_r7_double_compare(ctx, symbols, options, out);
    }
    if (r8_applies(path)) check_r8(ctx, options, out);
  }
  check_r5_cycles(ctxs, options, out);

  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.path != b.path) return a.path < b.path;
                     if (a.line != b.line) return a.line < b.line;
                     if (a.col != b.col) return a.col < b.col;
                     return a.rule < b.rule;
                   });
  return out;
}

std::vector<Finding> lint_file(const std::string& path,
                               std::string_view source) {
  return lint_tree({FileInput{path, std::string{source}}}, LintOptions{});
}

std::vector<std::string> parse_baseline(std::string_view text) {
  std::vector<std::string> entries;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    std::string line{text.substr(start, nl - start)};
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first != std::string::npos) {
      const std::size_t last = line.find_last_not_of(" \t\r");
      entries.push_back(line.substr(first, last - first + 1));
    }
    start = nl + 1;
  }
  return entries;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::vector<std::string>& baseline,
                                    const std::string& baseline_path) {
  std::unordered_set<std::string> entries(baseline.begin(), baseline.end());
  std::vector<Finding> out;
  out.reserve(findings.size());
  std::unordered_set<std::string> used;
  for (Finding& f : findings) {
    const std::string key = f.path + ":" + f.symbol;
    if (f.rule == "R2" && entries.count(key) > 0) {
      used.insert(key);
      continue;  // accepted debt
    }
    out.push_back(std::move(f));
  }
  for (const std::string& entry : baseline) {
    if (used.count(entry) > 0) continue;
    out.push_back(Finding{
        "baseline", entry, 0, 1, "",
        "stale baseline entry '" + entry + "' in " + baseline_path +
            " (no matching R2 finding); delete that line, or regenerate "
            "with: build/tools/sic_lint --print-baseline $(git ls-files "
            "'src/**/*.hpp')"});
  }
  return out;
}

std::string format_finding(const Finding& finding) {
  std::ostringstream os;
  os << finding.path << ":" << finding.line << ":" << finding.col << ": ["
     << finding.rule << "] " << finding.message;
  return os.str();
}

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_json(const std::vector<Finding>& findings,
                    std::size_t files_scanned) {
  std::vector<const Finding*> sorted;
  sorted.reserve(findings.size());
  for (const Finding& f : findings) sorted.push_back(&f);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Finding* a, const Finding* b) {
                     if (a->path != b->path) return a->path < b->path;
                     if (a->line != b->line) return a->line < b->line;
                     if (a->col != b->col) return a->col < b->col;
                     return a->rule < b->rule;
                   });
  std::map<std::string, int> counts;
  for (const Finding& f : findings) ++counts[f.rule];

  std::ostringstream os;
  os << "{\"files_scanned\":" << files_scanned << ",\"counts\":{";
  bool first = true;
  for (const auto& [rule, n] : counts) {
    if (!first) os << ",";
    first = false;
    os << "\"" << json_escape(rule) << "\":" << n;
  }
  os << "},\"findings\":[";
  first = true;
  for (const Finding* f : sorted) {
    if (!first) os << ",";
    first = false;
    os << "{\"rule\":\"" << json_escape(f->rule) << "\",\"path\":\""
       << json_escape(f->path) << "\",\"line\":" << f->line
       << ",\"col\":" << f->col << ",\"symbol\":\"" << json_escape(f->symbol)
       << "\",\"message\":\"" << json_escape(f->message) << "\"}";
  }
  os << "]}\n";
  return os.str();
}

}  // namespace sic::lint
