// Lint fixture: R2 — raw doubles with unit suffixes in a header.
#pragma once

struct FixtureConfig {
  double tx_power_dbm = 18.0;  // line 5: R2 violation (symbol tx_power_dbm)
  double margin = 3.0;         // no suffix: clean
  int fade_db_steps = 4;       // not a double: clean
};
