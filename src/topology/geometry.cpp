#include "topology/geometry.hpp"

#include <numbers>

#include "util/check.hpp"

namespace sic::topology {

Point random_in_rect(Rng& rng, double x0, double y0, double x1, double y1) {
  SIC_CHECK(x1 >= x0 && y1 >= y0);
  return Point{rng.uniform(x0, x1), rng.uniform(y0, y1)};
}

Point random_in_disc(Rng& rng, Point center, double radius) {
  return random_in_annulus(rng, center, 0.0, radius);
}

Point random_in_annulus(Rng& rng, Point center, double r_min, double r_max) {
  SIC_CHECK(0.0 <= r_min && r_min <= r_max);
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  // Area-uniform radius: r = sqrt(U·(r_max²−r_min²) + r_min²).
  const double r = std::sqrt(rng.uniform(r_min * r_min, r_max * r_max));
  return Point{center.x + r * std::cos(theta), center.y + r * std::sin(theta)};
}

}  // namespace sic::topology
