/// Reproduces Fig. 2: "Aggregate capacity of two transmitters with SIC is
/// higher than the individual capacities." Prints capacity-vs-SNR series
/// for each single link and for the SIC aggregate, which must coincide
/// with the capacity of a single transmitter at the combined RSS.

#include <cstdio>

#include "bench_util.hpp"
#include "phy/capacity.hpp"

int main() {
  using namespace sic;
  bench::header("Fig. 2 — capacity curves with and without SIC",
                "C(+SIC) = B log2(1 + (S1+S2)/N0) exceeds both individual "
                "capacities at every SNR");

  const Hertz b = megahertz(20.0);
  const Milliwatts n0{1.0};
  std::printf("%-12s %-14s %-14s %-14s %-16s\n", "SNR2 (dB)", "C1 (Mbps)",
              "C2 (Mbps)", "C(+SIC) Mbps", "C(+SIC)/max(C1,C2)");
  // Fix the stronger link at 20 dB and sweep the weaker one, as the figure
  // sweeps the second transmitter's power.
  const Milliwatts s1{Decibels{20.0}.linear()};
  for (double s2_db = 0.0; s2_db <= 30.0; s2_db += 2.5) {
    const Milliwatts s2{Decibels{s2_db}.linear()};
    const auto arrival = phy::TwoSignalArrival::make(s1, s2, n0);
    const double c1 = phy::shannon_rate(b, s1, n0).megabits();
    const double c2 = phy::shannon_rate(b, s2, n0).megabits();
    const double csic = phy::capacity_with_sic(b, arrival).megabits();
    std::printf("%-12.1f %-14.2f %-14.2f %-14.2f %-16.4f\n", s2_db, c1, c2,
                csic, csic / std::max(c1, c2));
  }
  std::printf("\nrate split at the SIC corner (eq 1 + eq 2 = eq 4):\n");
  for (double s2_db : {5.0, 10.0, 15.0, 20.0}) {
    const Milliwatts s2{Decibels{s2_db}.linear()};
    const auto arrival = phy::TwoSignalArrival::make(s1, s2, n0);
    std::printf("  S2=%4.1f dB: r_strong=%7.2f Mbps  r_weak=%7.2f Mbps  "
                "sum=%7.2f  closed-form=%7.2f\n",
                s2_db, phy::sic_rate_stronger(b, arrival).megabits(),
                phy::sic_rate_weaker(b, arrival).megabits(),
                phy::sic_rate_stronger(b, arrival).megabits() +
                    phy::sic_rate_weaker(b, arrival).megabits(),
                phy::capacity_with_sic(b, arrival).megabits());
  }
  return 0;
}
