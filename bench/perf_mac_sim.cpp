/// Performance of the discrete-event MAC simulator, and the headline
/// end-to-end ablation: backlogged upload under plain DCF (with and
/// without an SIC-capable AP) versus the Section 6 scheduled upload, on
/// the same medium model.

#include <benchmark/benchmark.h>

#include <vector>

#include "mac/upload_sim.hpp"
#include "perf_util.hpp"
#include "topology/samplers.hpp"
#include "util/rng.hpp"

namespace {

using namespace sic;

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

std::vector<channel::LinkBudget> ridge_clients(int pairs) {
  // Clients placed pairwise on the Fig. 4 ridge so SIC has real work.
  std::vector<channel::LinkBudget> out;
  for (int i = 0; i < pairs; ++i) {
    const double weak_db = 11.0 + i;
    out.push_back(channel::LinkBudget{
        Milliwatts{Decibels{2 * weak_db}.linear()}, Milliwatts{1.0}});
    out.push_back(channel::LinkBudget{Milliwatts{Decibels{weak_db}.linear()},
                                      Milliwatts{1.0}});
  }
  return out;
}

void BM_DcfUpload(benchmark::State& state) {
  const auto clients = ridge_clients(static_cast<int>(state.range(0)));
  mac::UploadSimConfig config;
  config.frames_per_client = 4;
  double completion = 0.0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    config.seed++;
    const auto result = mac::run_dcf_upload(clients, kShannon, config);
    completion = result.completion_s;
    delivered = result.delivered;
    benchmark::DoNotOptimize(result.delivered);
  }
  state.counters["completion_s"] = completion;
  state.counters["delivered"] = static_cast<double>(delivered);
}
BENCHMARK(BM_DcfUpload)->Arg(2)->Arg(4)->Arg(8);

void BM_ScheduledUpload(benchmark::State& state) {
  const auto clients = ridge_clients(static_cast<int>(state.range(0)));
  core::SchedulerOptions options;
  const auto schedule = core::schedule_upload(clients, kShannon, options);
  mac::UploadSimConfig config;
  double completion = 0.0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    const auto result =
        mac::run_scheduled_upload(clients, kShannon, schedule, config);
    completion = result.completion_s;
    delivered = result.delivered;
    benchmark::DoNotOptimize(result.delivered);
  }
  state.counters["completion_s"] = completion;
  state.counters["delivered"] = static_cast<double>(delivered);
}
BENCHMARK(BM_ScheduledUpload)->Arg(2)->Arg(4)->Arg(8);

void BM_SicVsPlainApAblation(benchmark::State& state) {
  // The paper's thesis as an executable ablation: with stations at their
  // ideal rates (margin 100%), collisions are never SIC-decodable and the
  // SIC-capable AP salvages nothing; as the rate margin grows (practical
  // adapters leave slack), SIC starts recovering collided frames. The arg
  // is the rate margin in percent.
  const auto clients = ridge_clients(4);
  mac::UploadSimConfig with_sic;
  with_sic.frames_per_client = 4;
  with_sic.rate_margin = static_cast<double>(state.range(0)) / 100.0;
  double sic_recovered = 0.0;
  double captures = 0.0;
  std::uint64_t trials = 0;
  for (auto _ : state) {
    with_sic.seed++;
    const auto a = mac::run_dcf_upload(clients, kShannon, with_sic);
    sic_recovered += static_cast<double>(a.medium.sic_decodes);
    captures += static_cast<double>(a.medium.capture_decodes);
    ++trials;
    benchmark::DoNotOptimize(a.delivered);
  }
  state.counters["sic_decodes_per_run"] =
      sic_recovered / static_cast<double>(trials);
  state.counters["captures_per_run"] =
      captures / static_cast<double>(trials);
}
BENCHMARK(BM_SicVsPlainApAblation)->Arg(100)->Arg(80)->Arg(60)->Arg(40);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    mac::EventQueue queue;
    int fired = 0;
    for (int i = 0; i < 10000; ++i) {
      queue.schedule_at(i, [&fired] { ++fired; });
    }
    queue.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

}  // namespace

SIC_PERF_MAIN("perf_mac_sim")
