#ifndef SICMAC_UTIL_CLI_ARGS_HPP
#define SICMAC_UTIL_CLI_ARGS_HPP

/// \file cli_args.hpp
/// Minimal command-line flag parser for the sicmac CLI and the bench
/// binaries: `--flag value` pairs and boolean `--flag` switches, plus one
/// optional leading positional (the subcommand).

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace sic {

/// The command line itself is wrong (stray token, malformed number,
/// missing required flag). Front ends map this to their usage exit code;
/// it stays a std::runtime_error for legacy catch sites.
class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ArgParser {
 public:
  /// Parses argv[1..): a leading non-flag token becomes the command();
  /// the rest are `--name [value]` pairs (a flag followed by another flag
  /// or nothing is boolean).
  ArgParser(int argc, const char* const* argv);

  [[nodiscard]] const std::string& command() const { return command_; }

  [[nodiscard]] bool has(const std::string& flag) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& flag) const;
  [[nodiscard]] std::string get_string(const std::string& flag,
                                       const std::string& fallback) const;
  /// Throws UsageError on malformed numbers.
  [[nodiscard]] double get_double(const std::string& flag,
                                  double fallback) const;
  [[nodiscard]] int get_int(const std::string& flag, int fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& flag,
                                      std::uint64_t fallback) const;
  /// Comma-separated list of doubles, e.g. --clients 24,12,18.5.
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& flag) const;

  /// The global `--threads` convention shared by the CLI and the bench
  /// binaries: 0 means "all hardware threads", otherwise the total worker
  /// count including the calling thread. Throws UsageError on negative
  /// values. Parallel sweeps are bit-identical for any setting.
  [[nodiscard]] int get_threads(int fallback = 1) const;

  /// Flags present on the command line but never queried — typo detection.
  [[nodiscard]] std::vector<std::string> unknown_flags() const;

 private:
  struct Entry {
    std::string name;
    std::optional<std::string> value;
    mutable bool queried = false;
  };
  [[nodiscard]] const Entry* find(const std::string& flag) const;

  std::string command_;
  std::vector<Entry> entries_;
};

}  // namespace sic

#endif  // SICMAC_UTIL_CLI_ARGS_HPP
