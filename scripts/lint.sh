#!/usr/bin/env bash
# Static-analysis gate (see DESIGN.md "Static analysis").
#
#   scripts/lint.sh [BUILD_DIR]
#
# 1. Builds and runs tools/sic_lint over every tracked .cpp/.hpp (minus the
#    seeded-violation fixtures) with the checked-in R2 baseline. Any finding
#    — including a stale baseline entry — fails the run.
# 2. If clang-tidy is installed, runs it over src/ with the repo .clang-tidy
#    (warnings are errors) against the exported compile database. When
#    clang-tidy is absent the step is skipped with a notice so the domain
#    lint still gates environments without LLVM.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
fi
cmake --build "$BUILD_DIR" --target sic_lint -j "$(nproc)"

mapfile -t files < <(git ls-files '*.cpp' '*.hpp' ':!tests/lint_fixtures')
echo "sic_lint: checking ${#files[@]} files"
"$BUILD_DIR"/tools/sic_lint --baseline tools/sic_lint/r2_baseline.txt \
  "${files[@]}"
echo "sic_lint: clean"

if command -v clang-tidy >/dev/null 2>&1; then
  if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  mapfile -t tidy_files < <(git ls-files 'src/*.cpp' 'src/**/*.cpp')
  echo "clang-tidy: checking ${#tidy_files[@]} files"
  clang-tidy -p "$BUILD_DIR" --quiet --warnings-as-errors='*' \
    "${tidy_files[@]}"
  echo "clang-tidy: clean"
else
  echo "clang-tidy: not installed, skipping (sic_lint gate still applies)"
fi
