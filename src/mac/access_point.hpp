#ifndef SICMAC_MAC_ACCESS_POINT_HPP
#define SICMAC_MAC_ACCESS_POINT_HPP

/// \file access_point.hpp
/// The upload-side AP: receives data frames (possibly two at once via the
/// medium's SIC receiver model) and returns ACKs after SIFS, serializing
/// back-to-back ACKs when a collision yielded two decodes.

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "mac/event_queue.hpp"
#include "mac/medium.hpp"

namespace sic::mac {

struct ApStats {
  std::uint64_t data_received = 0;
  std::uint64_t acks_sent = 0;
  /// Receptions of a (src, frame id) pair the AP had already decoded — a
  /// retransmission whose original delivery succeeded but whose ACK never
  /// made it back (the ACK-vs-latency tension the upload_sim note cites).
  std::uint64_t duplicate_data = 0;
};

class AccessPoint : public MediumListener {
 public:
  AccessPoint(EventQueue& queue, Medium& medium, MacNodeId id);

  AccessPoint(const AccessPoint&) = delete;
  AccessPoint& operator=(const AccessPoint&) = delete;

  [[nodiscard]] const ApStats& stats() const { return stats_; }
  [[nodiscard]] MacNodeId id() const { return id_; }

  /// Frames received per source station.
  [[nodiscard]] std::uint64_t received_from(MacNodeId src) const;

  void on_frame_received(const Frame& frame, bool decoded) override;

 private:
  void pump_acks();

  EventQueue* queue_;
  Medium* medium_;
  MacNodeId id_;
  std::deque<Frame> ack_backlog_;
  SimTime next_ack_ready_ = 0;
  bool ack_scheduled_ = false;
  ApStats stats_;
  std::vector<std::uint64_t> per_source_;
  /// Frame ids already received, per source (retransmissions keep the
  /// original id, as 802.11 retries keep their sequence number).
  std::vector<std::unordered_set<std::uint64_t>> seen_ids_;
};

}  // namespace sic::mac

#endif  // SICMAC_MAC_ACCESS_POINT_HPP
