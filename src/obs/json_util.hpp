#ifndef SICMAC_OBS_JSON_UTIL_HPP
#define SICMAC_OBS_JSON_UTIL_HPP

/// \file json_util.hpp
/// Internal JSON-emission helpers shared by the obs snapshot writers
/// (metrics, time-series, flight recorder). Every emitter in sic::obs
/// must produce byte-identical output for identical inputs; keeping the
/// number and string formatting in one place is what makes that a single
/// property instead of three.

#include <iosfwd>
#include <string>
#include <string_view>

namespace sic::obs::detail {

/// Shortest round-trip double representation — deterministic for a given
/// value, locale-independent (printf "C" numeric formatting of %.17g is
/// stable for the values we emit; we normalize -0 and non-finites).
/// NaN renders as "null", infinities as "1e999"/"-1e999" so the output
/// stays parseable by permissive JSON readers.
[[nodiscard]] std::string format_double(double v);

/// Appends \p text as a quoted JSON string, escaping quotes, backslashes,
/// and control characters. Instrument/event names are our own dotted
/// identifiers; escaping anyway means a stray name cannot corrupt the
/// document.
void append_json_string(std::ostream& os, std::string_view text);

}  // namespace sic::obs::detail

#endif  // SICMAC_OBS_JSON_UTIL_HPP
