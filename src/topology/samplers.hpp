#ifndef SICMAC_TOPOLOGY_SAMPLERS_HPP
#define SICMAC_TOPOLOGY_SAMPLERS_HPP

/// \file samplers.hpp
/// Random topology samplers behind the paper's Monte Carlo experiments.
///
/// Fig. 6 / Fig. 11b ("two transmitters to different receivers"): the two
/// transmitters are fixed, separated by `range`; each receiver is placed
/// uniformly at random within its transmitter's range; RSS follows a
/// normalized d^−α law (α = 4 by default).
///
/// Fig. 11a / the upload study ("two transmitters to one receiver"): the
/// receiver (AP) is at the origin and both transmitters are placed uniformly
/// within its range.

#include <vector>

#include "channel/link.hpp"
#include "channel/pathloss.hpp"
#include "channel/two_link_rss.hpp"
#include "topology/node.hpp"
#include "util/rng.hpp"

namespace sic::topology {

/// Parameters shared by the Monte Carlo samplers.
struct SamplerConfig {
  double range_m = 40.0;          ///< transmitter range / separation
  double pathloss_exponent = 4.0; ///< the paper's α
  /// Normalized N₀ for unit transmit power. 1e-8 puts the SNR at the range
  /// edge near 16 dB, which calibrates the Monte Carlo to the paper's
  /// reported fractions (Fig. 6 ≈ 90 % no-gain; Fig. 11a ≈ 20 % of pairs
  /// above 1.2× for SIC alone and ≈ 40 % with power control/multirate).
  double noise = 1e-8;
};

/// One draw of the two-transmitters/one-receiver geometry. Returns the two
/// RSS values at the common receiver plus noise.
struct TwoToOneSample {
  Milliwatts s1;  ///< RSS of the first transmitter at the receiver
  Milliwatts s2;  ///< RSS of the second transmitter at the receiver
  Milliwatts noise;
  double d1_m = 0.0;  ///< distances, kept for diagnostics
  double d2_m = 0.0;
};

[[nodiscard]] TwoToOneSample sample_two_to_one(Rng& rng,
                                               const SamplerConfig& config);

/// One draw of the two-transmitters/two-receivers geometry of Section 3.2.
struct TwoLinkSample {
  channel::TwoLinkRss rss;
  Point t1, t2, r1, r2;
};

[[nodiscard]] TwoLinkSample sample_two_link(Rng& rng,
                                            const SamplerConfig& config);

/// WLAN upload topology: one AP at the origin, \p n_clients placed uniformly
/// in its disc; returns each client's clean link budget at the AP, sorted by
/// descending RSS (the scheduler does not require the order but tests and
/// examples read better with it).
[[nodiscard]] std::vector<channel::LinkBudget> sample_upload_clients(
    Rng& rng, const SamplerConfig& config, int n_clients);

}  // namespace sic::topology

#endif  // SICMAC_TOPOLOGY_SAMPLERS_HPP
