#include "util/cli_args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace sic {
namespace {

ArgParser parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"sicmac"};
  argv.insert(argv.end(), args.begin(), args.end());
  return ArgParser{static_cast<int>(argv.size()), argv.data()};
}

TEST(ArgParser, CommandAndFlags) {
  const auto p = parse({"pair", "--s1", "24", "--s2", "12", "--verbose"});
  EXPECT_EQ(p.command(), "pair");
  EXPECT_DOUBLE_EQ(p.get_double("s1", 0.0), 24.0);
  EXPECT_DOUBLE_EQ(p.get_double("s2", 0.0), 12.0);
  EXPECT_TRUE(p.has("verbose"));
  EXPECT_FALSE(p.has("quiet"));
}

TEST(ArgParser, NoCommand) {
  const auto p = parse({"--trials", "100"});
  EXPECT_TRUE(p.command().empty());
  EXPECT_EQ(p.get_int("trials", 0), 100);
}

TEST(ArgParser, Defaults) {
  const auto p = parse({"run"});
  EXPECT_DOUBLE_EQ(p.get_double("missing", 3.5), 3.5);
  EXPECT_EQ(p.get_int("missing", 7), 7);
  EXPECT_EQ(p.get_string("missing", "x"), "x");
  EXPECT_EQ(p.get_u64("missing", 42u), 42u);
  EXPECT_TRUE(p.get_double_list("missing").empty());
}

TEST(ArgParser, DoubleList) {
  const auto p = parse({"schedule", "--clients", "24,12,18.5"});
  const auto xs = p.get_double_list("clients");
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[0], 24.0);
  EXPECT_DOUBLE_EQ(xs[2], 18.5);
}

TEST(ArgParser, BooleanFlagFollowedByFlag) {
  const auto p = parse({"x", "--fast", "--seed", "9"});
  EXPECT_TRUE(p.has("fast"));
  EXPECT_FALSE(p.get("fast").has_value());
  EXPECT_EQ(p.get_u64("seed", 0), 9u);
}

TEST(ArgParser, NegativeNumbersAreValues) {
  // "-5" is not a --flag, so it binds as a value.
  const auto p = parse({"x", "--snr", "-5"});
  EXPECT_DOUBLE_EQ(p.get_double("snr", 0.0), -5.0);
}

TEST(ArgParser, MalformedNumberThrows) {
  const auto p = parse({"x", "--snr", "abc"});
  EXPECT_THROW((void)p.get_double("snr", 0.0), std::runtime_error);
}

TEST(ArgParser, StrayPositionalRejected) {
  std::vector<const char*> argv{"sicmac", "cmd", "oops"};
  EXPECT_THROW(ArgParser(static_cast<int>(argv.size()), argv.data()),
               std::runtime_error);
}

TEST(ArgParser, UsageErrorsAreTyped) {
  // The CLI maps UsageError to its usage exit code; both failure shapes
  // must throw the typed error (still a runtime_error for legacy sites).
  const auto p = parse({"x", "--snr", "abc"});
  EXPECT_THROW((void)p.get_double("snr", 0.0), UsageError);
  std::vector<const char*> argv{"sicmac", "cmd", "oops"};
  EXPECT_THROW(ArgParser(static_cast<int>(argv.size()), argv.data()),
               UsageError);
  static_assert(std::is_base_of_v<std::runtime_error, UsageError>);
}

TEST(ArgParser, UnknownFlagDetection) {
  const auto p = parse({"x", "--used", "1", "--typo", "2"});
  (void)p.get_double("used", 0.0);
  const auto unknown = p.unknown_flags();
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

}  // namespace
}  // namespace sic
