#ifndef SICMAC_OBS_SCOPED_TIMER_HPP
#define SICMAC_OBS_SCOPED_TIMER_HPP

/// \file scoped_timer.hpp
/// Wall-clock RAII instrumentation:
///
///  - ScopedTimer records its lifetime (in seconds) into a Histogram and
///    optionally bumps a call counter. Constructed with nullptr it never
///    touches the clock — the zero-cost-when-detached idiom is
///    `ScopedTimer t{obs::metrics() ? &reg->histogram("x.wall_s") : nullptr}`.
///  - SIC_SPAN(name) emits a complete-event span to the global TraceSink
///    (no-op when detached), timestamped in microseconds since the first
///    span of the process so wall-clock traces start near zero.
///
/// Both are pure observers: they read the clock and write to obs sinks,
/// never into simulation state.

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace_sink.hpp"

namespace sic::obs {

/// Microseconds since the first call (process-wide wall-clock timebase for
/// SIC_SPAN events).
[[nodiscard]] inline double wall_epoch_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double, std::micro>(clock::now() - epoch)
      .count();
}

class ScopedTimer {
 public:
  /// \p histogram null disables the timer entirely (no clock read).
  /// \p calls, when given with a live histogram, is incremented once on
  /// destruction.
  explicit ScopedTimer(Histogram* histogram, Counter* calls = nullptr)
      : histogram_(histogram), calls_(calls) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    histogram_->observe(elapsed_s());
    if (calls_ != nullptr) calls_->inc();
  }

  [[nodiscard]] double elapsed_s() const {
    if (histogram_ == nullptr) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  Histogram* histogram_;
  Counter* calls_;
  std::chrono::steady_clock::time_point start_{};
};

/// RAII wall-clock span against the *global* trace sink. Captures the sink
/// at construction so an attach/detach mid-span cannot tear the event.
class WallSpan {
 public:
  explicit WallSpan(const char* name, int tid = 0)
      : sink_(trace()), name_(name), tid_(tid) {
    if (sink_ != nullptr) start_us_ = wall_epoch_us();
  }

  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

  ~WallSpan() {
    if (sink_ != nullptr) {
      sink_->complete(name_, start_us_, wall_epoch_us() - start_us_, tid_);
    }
  }

 private:
  TraceSink* sink_;
  const char* name_;
  int tid_;
  double start_us_ = 0.0;
};

}  // namespace sic::obs

#define SIC_OBS_CONCAT_INNER(a, b) a##b
#define SIC_OBS_CONCAT(a, b) SIC_OBS_CONCAT_INNER(a, b)
/// Spans the enclosing scope on the global trace sink's wall clock.
#define SIC_SPAN(name) \
  ::sic::obs::WallSpan SIC_OBS_CONCAT(sic_span_, __LINE__) { name }

#endif  // SICMAC_OBS_SCOPED_TIMER_HPP
