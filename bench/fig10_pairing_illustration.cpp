/// Reproduces Fig. 10: the client pairing / power control / multirate /
/// packing illustration. Four clients whose solo airtimes are 1, 2, 4 and
/// 8 time units upload one packet each; the bench prints the serial
/// schedule, all three SIC pairings, and what each Section 5 technique
/// buys — the paper's 15 / {11.5, 12, 13} / 11 / ~10.4 story (values
/// differ since the paper's illustration is stylized, but the ordering
/// must reproduce).

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/multirate.hpp"
#include "core/packing.hpp"
#include "core/power_control.hpp"
#include "core/scheduler.hpp"

int main() {
  using namespace sic;
  bench::header("Fig. 10 — pairing / power control / multirate illustration",
                "serial 15 units; pairings ~{11.5, 12, 13}; power control "
                "and multirate improve the best pairing further");

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  const Milliwatts n0{1.0};
  const double bits = 12000.0;
  // Solo airtimes 1:2:4:8  ⇔  clean rates 8:4:2:1 (Shannon exponents).
  const double base_bits_per_hz = 3.46;  // C4's spectral efficiency
  std::vector<channel::LinkBudget> clients;
  for (const double mult : {8.0, 4.0, 2.0, 1.0}) {
    const double snr = std::pow(2.0, base_bits_per_hz * mult) - 1.0;
    clients.push_back(channel::LinkBudget{Milliwatts{snr}, n0});
  }
  // Normalize so C1's solo airtime is 1 unit.
  const double unit = core::solo_airtime(clients[0], shannon, bits);
  const auto units = [&](double seconds) { return seconds / unit; };

  std::printf("solo airtimes (units):");
  double serial_total = 0.0;
  for (const auto& c : clients) {
    const double t = core::solo_airtime(c, shannon, bits);
    serial_total += t;
    std::printf(" %.2f", units(t));
  }
  std::printf("   serial total = %.2f\n\n", units(serial_total));

  core::SchedulerOptions plain;
  plain.packet_bits = bits;
  const int pairings[3][4] = {{0, 1, 2, 3}, {0, 2, 1, 3}, {0, 3, 1, 2}};
  const char* names[3] = {"(C1|C2, C3|C4)", "(C1|C3, C2|C4)",
                          "(C1|C4, C2|C3)"};
  double best_static = 1e300;
  for (int p = 0; p < 3; ++p) {
    double total = 0.0;
    for (int k = 0; k < 2; ++k) {
      const auto plan =
          core::best_pair_plan(clients[pairings[p][2 * k]],
                               clients[pairings[p][2 * k + 1]], shannon, plain);
      total += plan.airtime;
    }
    best_static = std::min(best_static, total);
    std::printf("pairing %-18s total = %.2f units\n", names[p], units(total));
  }

  core::SchedulerOptions with_pc = plain;
  with_pc.enable_power_control = true;
  core::SchedulerOptions with_mr = plain;
  with_mr.enable_multirate = true;
  const double t_sched =
      core::schedule_upload(clients, shannon, plain).total_airtime;
  const double t_pc =
      core::schedule_upload(clients, shannon, with_pc).total_airtime;
  const double t_mr =
      core::schedule_upload(clients, shannon, with_mr).total_airtime;
  std::printf("\nblossom schedule (plain SIC)      = %.2f units\n",
              units(t_sched));
  std::printf("blossom schedule + power control  = %.2f units\n",
              units(t_pc));
  std::printf("blossom schedule + multirate      = %.2f units\n",
              units(t_mr));
  std::printf("(matches the best static pairing: %.2f)\n", units(best_static));

  // Packet packing on the most disparate pair (C1 strong, C4 weak).
  const auto ctx = core::UploadPairContext::make(clients[0].rss,
                                                 clients[3].rss, n0, shannon,
                                                 bits);
  const auto packing = core::packing_two_to_one(ctx);
  std::printf("\npacket packing on C1|C4: %d fast packets in %.2f units, "
              "per-packet gain %.3f\n",
              packing.fast_packets, units(packing.span), packing.gain);

  // Second panel: an *off-ridge* cell (similar RSSs) where plain SIC pairs
  // badly and the Section 5 techniques do the heavy lifting — the Fig. 10e
  // and 10f story.
  std::printf("\noff-ridge cell (clients at 22/21/19/18 dB):\n");
  std::vector<channel::LinkBudget> close_cell;
  for (const double db : {22.0, 21.0, 19.0, 18.0}) {
    close_cell.push_back(
        channel::LinkBudget{Milliwatts{Decibels{db}.linear()}, n0});
  }
  const double unit2 = core::solo_airtime(close_cell[3], shannon, bits);
  const double serial2 =
      core::serial_upload_airtime(close_cell, shannon, bits);
  const double plain2 =
      core::schedule_upload(close_cell, shannon, plain).total_airtime;
  const double pc2 =
      core::schedule_upload(close_cell, shannon, with_pc).total_airtime;
  const double mr2 =
      core::schedule_upload(close_cell, shannon, with_mr).total_airtime;
  std::printf("  serial                  = %.2f units\n", serial2 / unit2);
  std::printf("  best pairing, plain SIC = %.2f units\n", plain2 / unit2);
  std::printf("  pairing + power control = %.2f units (Fig. 10e)\n",
              pc2 / unit2);
  std::printf("  pairing + multirate     = %.2f units (Fig. 10f)\n",
              mr2 / unit2);
  return 0;
}
