#ifndef SICMAC_MATCHING_GRAPH_HPP
#define SICMAC_MATCHING_GRAPH_HPP

/// \file graph.hpp
/// Graph types for the matching algorithms: a weighted edge list (the
/// blossom algorithm's natural input) and a dense symmetric cost matrix
/// (the scheduler's natural output of its pair-cost computation, Fig. 12).

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace sic::matching {

/// An undirected weighted edge.
struct WeightedEdge {
  int u = 0;
  int v = 0;
  double weight = 0.0;
};

/// Dense symmetric cost matrix over n vertices. Missing edges are modeled
/// by callers as very large costs; the scheduler's graphs are complete.
class CostMatrix {
 public:
  explicit CostMatrix(int n, double fill = 0.0)
      : n_(n), data_(static_cast<std::size_t>(n) * n, fill) {
    SIC_CHECK(n >= 0);
  }

  [[nodiscard]] int size() const { return n_; }

  /// Re-dimensions the matrix in place, reusing the existing allocation
  /// when it is large enough. Lets callers that rebuild cost matrices every
  /// round (the pair-cost engine's re-matching path) avoid a fresh
  /// allocation per rebuild.
  void reset(int n, double fill = 0.0) {
    SIC_CHECK(n >= 0);
    n_ = n;
    data_.assign(static_cast<std::size_t>(n) * n, fill);
  }

  [[nodiscard]] double at(int i, int j) const {
    SIC_DCHECK(in_range(i) && in_range(j));
    return data_[static_cast<std::size_t>(i) * n_ + j];
  }

  /// Sets the symmetric cost of the pair {i, j}.
  void set(int i, int j, double cost) {
    SIC_DCHECK(in_range(i) && in_range(j));
    data_[static_cast<std::size_t>(i) * n_ + j] = cost;
    data_[static_cast<std::size_t>(j) * n_ + i] = cost;
  }

  /// All edges {i < j} as a weighted edge list.
  [[nodiscard]] std::vector<WeightedEdge> edges() const {
    std::vector<WeightedEdge> out;
    edges(out);
    return out;
  }

  /// Out-parameter variant of edges() that reuses \p out's allocation
  /// (mirroring reset): callers that rebuild the edge list every re-match
  /// round — the matchers inside the deployment engine's epoch loop — pay
  /// one allocation for the lifetime of their scratch vector instead of
  /// one per round. Emits the identical row-major (i, j) order.
  void edges(std::vector<WeightedEdge>& out) const {
    out.clear();
    out.reserve(static_cast<std::size_t>(n_) * (n_ - 1) / 2);
    for (int i = 0; i < n_; ++i) {
      for (int j = i + 1; j < n_; ++j) {
        out.push_back(WeightedEdge{i, j, at(i, j)});
      }
    }
  }

 private:
  [[nodiscard]] bool in_range(int i) const { return i >= 0 && i < n_; }

  int n_;
  std::vector<double> data_;
};

/// A perfect matching: vertex pairs plus the summed cost.
struct Matching {
  std::vector<std::pair<int, int>> pairs;
  double total_cost = 0.0;
};

/// Validates that \p mate (mate[v] = partner or -1) is an involution without
/// fixed points among matched vertices.
[[nodiscard]] bool is_valid_mate_vector(std::span<const int> mate);

}  // namespace sic::matching

#endif  // SICMAC_MATCHING_GRAPH_HPP
