#ifndef SICMAC_CORE_BACKLOG_HPP
#define SICMAC_CORE_BACKLOG_HPP

/// \file backlog.hpp
/// Multi-packet backlogs. The Section 6 scheduler drains one packet per
/// client; this extension handles clients with *queues*, where Section 5.4
/// packet packing becomes a real scheduling strategy: "another alternative
/// to power control is to send a single large packet or multiple packets
/// serially at higher bitrate before the packet at the lower bitrate
/// finishes … [it] will depend heavily on the traffic patterns."
///
/// For a pair of backlogged clients, three drain disciplines are costed:
///
///  - serial:       both queues at clean rates, one packet at a time;
///  - SIC rounds:   one packet from each client per concurrent round
///                  (eq (6) per round), leftovers serial;
///  - packed trains: the faster concurrent link stuffs multiple packets
///                  into each of the slower link's packets (Fig. 10g),
///                  leftovers serial.
///
/// The pairing layer then runs the same minimum-weight-perfect-matching
/// reduction as the single-packet scheduler, with pair costs equal to the
/// best drain time.

#include <span>
#include <vector>

#include "channel/link.hpp"
#include "core/scheduler.hpp"
#include "phy/rate_adapter.hpp"

namespace sic::core {

struct BacklogClient {
  channel::LinkBudget link;
  int packets = 1;
};

enum class DrainMode {
  kSerial,
  kSicRounds,
  kPackedTrains,
};

[[nodiscard]] constexpr const char* to_string(DrainMode m) {
  switch (m) {
    case DrainMode::kSerial: return "serial";
    case DrainMode::kSicRounds: return "sic-rounds";
    case DrainMode::kPackedTrains: return "packed-trains";
  }
  return "?";
}

struct BacklogOptions {
  double packet_bits = 12000.0;
  bool enable_packing = true;     ///< allow the packed-trains discipline
  SchedulerOptions::Pairing pairing = SchedulerOptions::Pairing::kBlossom;
  /// kAuto crossover (same convention as SchedulerOptions): backlogs of
  /// this many clients or more pair with the approximate tier.
  int auto_tier_threshold = 64;
};

struct DrainPlan {
  DrainMode mode = DrainMode::kSerial;
  double airtime = 0.0;
  /// Concurrent rounds (SIC rounds) or trains (packed) executed.
  int rounds = 0;
};

/// Time to drain one client's queue alone at its clean best rate.
[[nodiscard]] double solo_drain_airtime(const BacklogClient& client,
                                        const phy::RateAdapter& adapter,
                                        double packet_bits);

/// Minimum time to drain both queues of a pair; picks the best discipline.
[[nodiscard]] DrainPlan best_drain_plan(const BacklogClient& a,
                                        const BacklogClient& b,
                                        const phy::RateAdapter& adapter,
                                        const BacklogOptions& options);

struct BacklogSlot {
  int first = 0;
  int second = -1;  ///< -1 = solo drain
  DrainPlan plan;
};

struct BacklogSchedule {
  std::vector<BacklogSlot> slots;
  double total_airtime = 0.0;
};

/// Baseline: all queues drained one client at a time.
[[nodiscard]] double serial_backlog_airtime(
    std::span<const BacklogClient> clients, const phy::RateAdapter& adapter,
    double packet_bits);

/// SIC-aware backlog schedule (pairing by minimum-weight perfect matching
/// over drain costs). Never worse than serial_backlog_airtime.
[[nodiscard]] BacklogSchedule schedule_backlog_upload(
    std::span<const BacklogClient> clients, const phy::RateAdapter& adapter,
    const BacklogOptions& options = {});

}  // namespace sic::core

#endif  // SICMAC_CORE_BACKLOG_HPP
