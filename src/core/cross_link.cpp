#include "core/cross_link.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/units.hpp"

namespace sic::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Concurrent rate pair (T1→R1, T2→R2) and joint feasibility for one case.
struct ConcurrentRates {
  double r1 = 0.0;
  double r2 = 0.0;
  bool feasible = false;
};

/// Case (a): both receivers capture; concurrency (when allowed) runs each
/// link at its interference-limited rate with no cancellation step.
ConcurrentRates rates_case_a(const channel::TwoLinkRss& rss,
                             const phy::RateAdapter& adapter) {
  ConcurrentRates out;
  const auto n = rss.noise;
  out.r1 = adapter.rate(rss.s11 / (rss.s12 + n)).value();
  out.r2 = adapter.rate(rss.s22 / (rss.s21 + n)).value();
  out.feasible = out.r1 > 0.0 && out.r2 > 0.0;
  return out;
}

/// Case (b): SIC at R2 only. T1 uses its own concurrent-optimal rate; R2
/// must be able to decode it before cancelling.
ConcurrentRates rates_case_b(const channel::TwoLinkRss& rss,
                             const phy::RateAdapter& adapter) {
  ConcurrentRates out;
  const auto n = rss.noise;
  const auto r1 = adapter.rate(rss.s11 / (rss.s12 + n));
  const auto r2 = adapter.rate(rss.s22 / n);
  out.r1 = r1.value();
  out.r2 = r2.value();
  const double sinr_t1_at_r2 = rss.s21 / (rss.s22 + n);
  out.feasible = out.r1 > 0.0 && out.r2 > 0.0 &&
                 adapter.feasible(r1, sinr_t1_at_r2);
  return out;
}

/// Case (d): SIC at both receivers; both transmitters run clean rates.
ConcurrentRates rates_case_d(const channel::TwoLinkRss& rss,
                             const phy::RateAdapter& adapter) {
  ConcurrentRates out;
  const auto n = rss.noise;
  const auto r1 = adapter.rate(rss.s11 / n);
  const auto r2 = adapter.rate(rss.s22 / n);
  out.r1 = r1.value();
  out.r2 = r2.value();
  const bool ok_at_r2 = adapter.feasible(r1, rss.s21 / (rss.s22 + n));
  const bool ok_at_r1 = adapter.feasible(r2, rss.s12 / (rss.s11 + n));
  out.feasible = out.r1 > 0.0 && out.r2 > 0.0 && ok_at_r2 && ok_at_r1;
  return out;
}

ConcurrentRates concurrent_rates(const channel::TwoLinkRss& rss,
                                 const phy::RateAdapter& adapter,
                                 CrossLinkCase kase,
                                 bool include_capture_concurrency) {
  switch (kase) {
    case CrossLinkCase::kCaptureBoth:
      if (include_capture_concurrency) return rates_case_a(rss, adapter);
      return ConcurrentRates{};  // SIC not needed; no SIC rates to speak of
    case CrossLinkCase::kSicAtR2:
      return rates_case_b(rss, adapter);
    case CrossLinkCase::kSicAtR1: {
      // Mirror of case (b): swap link roles, solve, swap back.
      ConcurrentRates m = rates_case_b(rss.mirrored(), adapter);
      std::swap(m.r1, m.r2);
      return m;
    }
    case CrossLinkCase::kSicAtBoth:
      return rates_case_d(rss, adapter);
  }
  return ConcurrentRates{};
}

}  // namespace

CrossLinkCase classify_cross_link(const channel::TwoLinkRss& rss) {
  const bool r1_captures = rss.s11 >= rss.s12;
  const bool r2_captures = rss.s22 >= rss.s21;
  if (r1_captures && r2_captures) return CrossLinkCase::kCaptureBoth;
  if (r1_captures) return CrossLinkCase::kSicAtR2;
  if (r2_captures) return CrossLinkCase::kSicAtR1;
  return CrossLinkCase::kSicAtBoth;
}

CrossLinkResult evaluate_cross_link(const channel::TwoLinkRss& rss,
                                    const phy::RateAdapter& adapter,
                                    double packet_bits) {
  CrossLinkOptions options;
  options.packet_bits = packet_bits;
  return evaluate_cross_link(rss, adapter, options);
}

CrossLinkResult evaluate_cross_link(const channel::TwoLinkRss& rss,
                                    const phy::RateAdapter& adapter,
                                    const CrossLinkOptions& options) {
  const double packet_bits = options.packet_bits;
  SIC_CHECK(packet_bits > 0.0);
  CrossLinkResult out;
  out.kase = classify_cross_link(rss);
  const auto n = rss.noise;
  out.serial_airtime =
      airtime_seconds(packet_bits, adapter.rate(rss.s11 / n)) +
      airtime_seconds(packet_bits, adapter.rate(rss.s22 / n));

  const ConcurrentRates rates = concurrent_rates(
      rss, adapter, out.kase, options.include_capture_concurrency);
  out.sic_feasible = rates.feasible;
  if (!rates.feasible) {
    out.concurrent_airtime = kInf;
    out.gain = 1.0;
    return out;
  }
  out.concurrent_airtime =
      std::max(airtime_seconds(packet_bits, BitsPerSecond{rates.r1}),
               airtime_seconds(packet_bits, BitsPerSecond{rates.r2}));
  out.gain = std::isfinite(out.serial_airtime)
                 ? std::max(1.0, out.serial_airtime / out.concurrent_airtime)
                 : 1.0;
  return out;
}

double cross_link_packing_gain(const channel::TwoLinkRss& rss,
                               const phy::RateAdapter& adapter,
                               double packet_bits) {
  CrossLinkOptions options;
  options.packet_bits = packet_bits;
  return cross_link_packing_gain(rss, adapter, options);
}

double cross_link_packing_gain(const channel::TwoLinkRss& rss,
                               const phy::RateAdapter& adapter,
                               const CrossLinkOptions& options) {
  const double packet_bits = options.packet_bits;
  const auto base = evaluate_cross_link(rss, adapter, options);
  if (!base.sic_feasible || !std::isfinite(base.serial_airtime)) {
    return base.gain;
  }
  const ConcurrentRates rates = concurrent_rates(
      rss, adapter, base.kase, options.include_capture_concurrency);
  const double t1 = airtime_seconds(packet_bits, BitsPerSecond{rates.r1});
  const double t2 = airtime_seconds(packet_bits, BitsPerSecond{rates.r2});
  const double t_fast = std::min(t1, t2);
  const double t_slow = std::max(t1, t2);
  const int k = std::max(1, static_cast<int>(std::floor(t_slow / t_fast)));

  const auto n = rss.noise;
  const double t1_clean =
      airtime_seconds(packet_bits, adapter.rate(rss.s11 / n));
  const double t2_clean =
      airtime_seconds(packet_bits, adapter.rate(rss.s22 / n));
  const bool link1_is_slow = t1 >= t2;
  const double t_fast_clean = link1_is_slow ? t2_clean : t1_clean;
  const double t_slow_clean = link1_is_slow ? t1_clean : t2_clean;

  const double span = std::max(t_slow, k * t_fast);
  const double packed_per_packet = span / (k + 1);
  const double serial_per_packet = (k * t_fast_clean + t_slow_clean) / (k + 1);
  return std::max(base.gain, serial_per_packet / packed_per_packet);
}

}  // namespace sic::core
