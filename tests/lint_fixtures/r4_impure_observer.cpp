// Lint fixture: R4 — metrics mutators in value-producing expressions.
#include <cstdint>

struct Counter {
  std::uint64_t inc(std::uint64_t n = 1) { return total += n; }
  std::uint64_t total = 0;
};

struct Registry {
  Counter& counter(const char*) { return c; }
  Counter c;
};

void consume(std::uint64_t);

std::uint64_t bad_return(Registry& reg) {
  return reg.counter("x").inc();  // line 17: R4 violation (return)
}

void bad_assign(Registry& reg) {
  const auto n = reg.counter("x").inc();  // line 21: R4 violation (=)
  (void)n;
}

void bad_nested(Registry& reg) {
  consume(reg.counter("x").inc());  // line 26: R4 violation (nested call)
}

void bad_compound(Registry& reg, std::uint64_t& acc) {
  acc += reg.counter("x").inc();  // line 30: R4 violation (compound assign)
}

void good_statement(Registry& reg) {
  reg.counter("x").inc();  // clean: pure side-channel statement
}
