#include "core/multirate.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace sic::core {

MultirateResult multirate_airtime_detailed(const UploadPairContext& ctx) {
  SIC_CHECK(ctx.adapter != nullptr);
  const auto rates = sic_rates(ctx);
  const double l = ctx.packet_bits;
  const double t_strong = airtime_seconds(l, rates.stronger);
  const double t_weak = airtime_seconds(l, rates.weaker);

  MultirateResult out;
  if (!std::isfinite(t_weak)) {
    // Weaker link dead even after cancellation: SIC (and multirate) is
    // infeasible for the pair.
    out.airtime = std::numeric_limits<double>::infinity();
    out.overlap_bits = 0.0;
    return out;
  }
  if (t_strong <= t_weak) {
    // The weaker clean-rate packet is the bottleneck; nothing to boost.
    out.airtime = t_weak;
    out.overlap_bits = l;
    return out;
  }
  // Stronger client lags: send r₁·t₂ bits under interference, then boost
  // the remainder to the clean rate.
  const double clean_rate =
      ctx.adapter->rate(ctx.arrival.stronger / ctx.arrival.noise).value();
  out.overlap_bits = rates.stronger.value() * t_weak;
  const double remaining = std::max(0.0, l - out.overlap_bits);
  if (clean_rate <= 0.0) {
    out.airtime = t_strong;  // cannot boost; fall back to plain SIC
    return out;
  }
  out.airtime = t_weak + remaining / clean_rate;
  out.boosted = remaining > 0.0;
  return out;
}

double multirate_airtime(const UploadPairContext& ctx) {
  return multirate_airtime_detailed(ctx).airtime;
}

}  // namespace sic::core
