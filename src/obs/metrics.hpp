#ifndef SICMAC_OBS_METRICS_HPP
#define SICMAC_OBS_METRICS_HPP

/// \file metrics.hpp
/// The metrics half of the sic::obs observability layer: a registry of
/// named counters, gauges, and log-bucketed histograms with deterministic
/// text and JSON snapshot emitters.
///
/// Contract (see DESIGN.md "Observability layer"):
///  - *Zero-cost when detached.* Nothing in the library holds a registry;
///    instrumented code accumulates plain local integers on its hot path
///    and publishes them in one batch at a natural boundary (end of a
///    matching call, end of a simulated run) only if `obs::metrics()` is
///    non-null. A detached build pays one pointer load per boundary.
///  - *Observers are pure.* A registry only ever receives values; no
///    simulation decision may read one back. tests/consistency_test.cpp
///    asserts bit-identical results with and without a registry attached.
///  - *Deterministic snapshots.* Iteration is name-ordered and numbers are
///    printed with fixed formats, so two identical runs emit byte-identical
///    JSON (tested in tests/obs_metrics_test.cpp).
///
/// Threading model: a registry itself is single-threaded, and the attach
/// point below is *thread-local*, so a worker thread never observes (or
/// races on) the registry a caller attached. The parallel sweep engine
/// (analysis/parallel.hpp) gives each chunk its own scratch registry on the
/// worker thread and folds them back with merge_from() — counter merges are
/// additive and therefore deterministic regardless of chunk schedule.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sic::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous value (e.g. samples/sec of a sweep). Each set carries an
/// optional monotone stamp (the deployment engine uses the epoch); the
/// stamp never appears in snapshots but drives merge_from's tie-breaking:
/// merged gauges keep the lexicographically largest (stamp, value) pair,
/// which is commutative and associative — so parallel chunk registries
/// fold to the same gauge no matter the merge schedule. Unstamped setters
/// (stamp 0) therefore merge by plain max value. Note the *values* a
/// gauge holds may still be wall-clock-derived (samples/sec); those stay
/// outside the thread-invariance contract like histogram sums.
class Gauge {
 public:
  void set(double value, std::uint64_t stamp = 0) {
    value_ = value;
    stamp_ = stamp;
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] std::uint64_t stamp() const { return stamp_; }

  /// Adopts \p other's (stamp, value) when it is lexicographically larger.
  void merge_from(const Gauge& other);

 private:
  double value_ = 0.0;
  std::uint64_t stamp_ = 0;
};

/// Log-bucketed histogram over positive doubles. Bucket k covers
/// [min_value * 2^k, min_value * 2^(k+1)); values below min_value land in
/// bucket 0, values at or above the top boundary in the last bucket. The
/// default (1e-9, 64 buckets) spans 1 ns .. ~18 s when observations are
/// seconds — wide enough for every timer in the simulator.
class Histogram {
 public:
  explicit Histogram(double min_value = 1e-9, int n_buckets = 64);

  void observe(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return min_; }  ///< 0 when empty
  [[nodiscard]] double max() const { return max_; }  ///< 0 when empty

  /// Bucket index that observe(value) would increment.
  [[nodiscard]] int bucket_index(double value) const;
  /// Inclusive lower bound of bucket k (min_value * 2^k).
  [[nodiscard]] double bucket_lower_bound(int k) const;
  [[nodiscard]] int n_buckets() const {
    return static_cast<int>(buckets_.size());
  }
  [[nodiscard]] std::uint64_t bucket_count(int k) const {
    return buckets_[static_cast<std::size_t>(k)];
  }

  /// Quantile estimate: the lower bound of the bucket holding the q-th
  /// sample (0 <= q <= 1), i.e. accurate to one bucket width (a factor of
  /// 2). Returns 0 when empty. Exact min/max are tracked separately.
  [[nodiscard]] double quantile(double q) const;

  /// Folds \p other into this histogram (bucket-wise addition; min/max and
  /// count merge exactly). Both histograms must share min_value and bucket
  /// count. The floating-point `sum` is added in call order, so merge in a
  /// fixed order when byte-identical snapshots matter.
  void merge_from(const Histogram& other);

 private:
  double min_value_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Name -> instrument map. Instruments are created on first use and have
/// stable addresses for the registry's lifetime (node-based storage), so
/// call sites may cache the returned references.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, double min_value = 1e-9,
                       int n_buckets = 64);

  /// Human-oriented aligned text dump, name-sorted.
  [[nodiscard]] std::string text_snapshot() const;

  /// Machine-oriented snapshot:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  /// Keys sorted, numbers in fixed formats — byte-identical across
  /// identical runs.
  [[nodiscard]] std::string json_snapshot() const;

  /// Folds \p other into this registry: counters add, histograms merge
  /// bucket-wise, gauges keep the largest (stamp, value) pair — all three
  /// are commutative+associative, so the merged registry is independent
  /// of the chunk schedule. Counter results (and gauge choice) are
  /// schedule-independent; histogram sums and wall-clock-derived gauge
  /// values still inherit whatever nondeterminism the observed values
  /// carry.
  void merge_from(const MetricsRegistry& other);

  /// Name-sorted (name, value) view of every counter — the deterministic
  /// slice of a snapshot, used by the thread-count-invariance tests.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counter_values() const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Thread-local attach point. Null (the default on every thread) means
/// observability is off; instrumented code must treat null as "skip
/// publishing". Being thread-local, a registry attached on the main thread
/// is invisible to pool workers — they run fully detached unless the
/// parallel sweep engine attaches a per-chunk scratch registry for them.
[[nodiscard]] MetricsRegistry* metrics();
/// Installs \p registry as the calling thread's target and returns the
/// previous one (so scoped attachment can restore it). Pass nullptr to
/// detach.
MetricsRegistry* set_metrics(MetricsRegistry* registry);

}  // namespace sic::obs

#endif  // SICMAC_OBS_METRICS_HPP
