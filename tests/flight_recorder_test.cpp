// Unit tests for the deployment flight recorder: event ring behavior,
// latching trip semantics, post-mortem windowing, config emission (numeric
// vs quoted), and byte-determinism of the document.

#include "obs/flight_recorder.hpp"

#include <string>

#include <gtest/gtest.h>

#include "obs/timeseries.hpp"

namespace sic::obs {
namespace {

FlightEvent ev(std::uint64_t epoch, const char* kind, int ap = -1,
               int client = -1, std::string detail = {}) {
  FlightEvent e;
  e.epoch = epoch;
  e.ap = ap;
  e.client = client;
  e.kind = kind;
  e.detail = std::move(detail);
  return e;
}

TEST(FlightRecorder, RingEvictsOldestAndCountsDrops) {
  FlightRecorder fr{3};
  for (std::uint64_t e = 0; e < 5; ++e) {
    fr.record(ev(e, "chaos.outage"));
  }
  ASSERT_EQ(fr.size(), 3u);
  EXPECT_EQ(fr.capacity(), 3u);
  EXPECT_EQ(fr.events_dropped(), 2u);
  EXPECT_EQ(fr.event(0).epoch, 2u);
  EXPECT_EQ(fr.event(2).epoch, 4u);
}

TEST(FlightRecorder, TripLatchesAndReturnsTrueExactlyOnce) {
  FlightRecorder fr;
  EXPECT_FALSE(fr.tripped());
  EXPECT_TRUE(fr.trip("watchdog fire: ap 1", 7));
  // A cascading second fault must not win the latch: one trip, one
  // post-mortem, and the original reason survives.
  EXPECT_FALSE(fr.trip("invariant violation", 9));
  EXPECT_TRUE(fr.tripped());
  EXPECT_EQ(fr.trip_reason(), "watchdog fire: ap 1");
  EXPECT_EQ(fr.trip_epoch(), 7u);
}

TEST(FlightRecorder, PostmortemWindowsEventsAroundTripEpoch) {
  FlightRecorder fr;
  for (std::uint64_t e = 0; e < 30; ++e) {
    fr.record(ev(e, "handoff", /*ap=*/1, /*client=*/2, "from_ap=0"));
  }
  EXPECT_TRUE(fr.trip("watchdog fire: ap 1", 20));
  // window 4 anchored at 20 keeps epochs 17..20 only.
  const std::string pm = fr.postmortem_json(nullptr, /*window_epochs=*/4);
  EXPECT_EQ(pm.find("\"epoch\":16,"), std::string::npos);
  EXPECT_NE(pm.find("\"epoch\":17,"), std::string::npos);
  EXPECT_NE(pm.find("\"epoch\":20,"), std::string::npos);
  EXPECT_EQ(pm.find("\"epoch\":21,"), std::string::npos);
  EXPECT_NE(pm.find("\"reason\":\"watchdog fire: ap 1\""),
            std::string::npos);
  EXPECT_NE(pm.find("\"trip_epoch\":20"), std::string::npos);
}

TEST(FlightRecorder, UntrippedPostmortemAnchorsAtNewestEvent) {
  FlightRecorder fr;
  fr.record(ev(3, "associate", 0, 1));
  fr.record(ev(9, "ladder.down", 0, -1, "level=1"));
  const std::string pm = fr.postmortem_json(nullptr, 4);
  EXPECT_NE(pm.find("\"reason\":\"requested\""), std::string::npos);
  EXPECT_NE(pm.find("\"trip_epoch\":9"), std::string::npos);
  // Epoch 3 is outside the 4-epoch window [6, 9].
  EXPECT_EQ(pm.find("\"kind\":\"associate\""), std::string::npos);
  EXPECT_NE(pm.find("\"kind\":\"ladder.down\""), std::string::npos);
}

TEST(FlightRecorder, ConfigEmitsNumbersUnquotedAndStringsQuoted) {
  FlightRecorder fr;
  fr.set_config("seed", "42");
  fr.set_config("drift_sigma_db", "2.5");
  fr.set_config("chaos_profile", "outage");
  fr.set_config("seed", "7");  // last write per key wins
  const std::string pm = fr.postmortem_json(nullptr);
  EXPECT_NE(pm.find("\"chaos_profile\":\"outage\""), std::string::npos);
  EXPECT_NE(pm.find("\"drift_sigma_db\":2.5"), std::string::npos);
  EXPECT_NE(pm.find("\"seed\":7"), std::string::npos);
  EXPECT_EQ(pm.find("\"seed\":42"), std::string::npos);
}

TEST(FlightRecorder, PostmortemEmbedsTimeSeries) {
  FlightRecorder fr;
  fr.record(ev(0, "associate", 0, 0));
  TimeSeriesRegistry series;
  series.series("deploy.mean_health").record(0, 0.75);
  const std::string pm = fr.postmortem_json(&series);
  EXPECT_NE(pm.find("\"timeseries\":{\"deploy.mean_health\":[[0,0.75]]}"),
            std::string::npos);
  // Null registry degrades to an empty object, not a crash.
  EXPECT_NE(fr.postmortem_json(nullptr).find("\"timeseries\":{}"),
            std::string::npos);
}

TEST(FlightRecorder, PostmortemIsByteDeterministic) {
  const auto build = [] {
    FlightRecorder fr;
    fr.set_config("aps", "3");
    fr.record(ev(0, "chaos.outage", 2, -1, "down_for=3"));
    fr.record(ev(1, "handoff", 1, 4, "from_ap=2"));
    EXPECT_TRUE(fr.trip("watchdog fire: ap 2", 1));
    TimeSeriesRegistry series;
    series.series("deploy.confirmation_rate").record(0, 1.0 / 3.0);
    return fr.postmortem_json(&series);
  };
  EXPECT_EQ(build(), build());
}

TEST(FlightGlobalAttachPoint, SetReturnsPrevious) {
  ASSERT_EQ(flight(), nullptr);
  FlightRecorder fr;
  EXPECT_EQ(set_flight(&fr), nullptr);
  EXPECT_EQ(flight(), &fr);
  EXPECT_EQ(set_flight(nullptr), &fr);
  EXPECT_EQ(flight(), nullptr);
}

}  // namespace
}  // namespace sic::obs
