#ifndef SICMAC_PHY_RATE_TABLE_HPP
#define SICMAC_PHY_RATE_TABLE_HPP

/// \file rate_table.hpp
/// Discrete bitrate sets of the 802.11 family, with per-rate minimum SINR
/// thresholds. The paper's core argument is that the slack SIC can harness
/// shrinks as rate sets get finer — "4 in 802.11b vs 8 in 802.11g vs 32 in
/// 802.11n" (Section 1) — and Section 7 re-evaluates the gains under the
/// discrete 802.11g set. These tables are the discrete-rate oracle standing
/// in for the paper's empirical 90 %-delivery rate scans (see DESIGN.md,
/// substitution 2): the scan produces exactly a monotone step function from
/// SINR to the best sustainable standard rate.

#include <span>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace sic::phy {

/// One standard rate and the minimum SINR at which it sustains ~90 % packet
/// delivery. Thresholds follow the commonly used OFDM receiver sensitivity
/// deltas (e.g. Halperin et al., and vendor datasheets) — the *shape*
/// (monotone steps ~2-4 dB apart) is what matters for the reproduction.
struct RateEntry {
  BitsPerSecond rate;
  Decibels min_sinr;
};

/// A monotone SINR→rate step function.
class RateTable {
 public:
  /// \p entries must be strictly increasing in both rate and threshold.
  explicit RateTable(std::string name, std::vector<RateEntry> entries);

  /// Highest rate whose threshold the given SINR meets; 0 bps when even the
  /// base rate is infeasible.
  [[nodiscard]] BitsPerSecond best_rate(Decibels sinr) const;

  /// Lowest SINR that sustains the given rate; used to invert measurements.
  /// Requires \p rate to be one of the table's rates.
  [[nodiscard]] Decibels min_sinr_for(BitsPerSecond rate) const;

  /// True when \p rate is feasible at \p sinr (rate must be in the table).
  [[nodiscard]] bool supports(BitsPerSecond rate, Decibels sinr) const;

  [[nodiscard]] std::span<const RateEntry> entries() const { return entries_; }

  /// The thresholds translated into the *linear* SINR domain for the
  /// batched rate_span fast path: linear_cutovers()[i] is the smallest
  /// positive double whose dB image meets entries()[i].min_sinr, found by
  /// ulp walk against the exact scalar predicate at construction. So
  /// (sinr_linear >= linear_cutovers()[i]) is exactly equivalent to
  /// (Decibels::from_linear(sinr_linear) >= entries()[i].min_sinr) for
  /// every double — bit-identical decisions with no log10 per lane
  /// (pinned in tests/rate_adapter_test.cpp).
  [[nodiscard]] std::span<const double> linear_cutovers() const {
    return linear_cutovers_;
  }
  /// rate_steps()[k] is the rate earned by meeting the first k cutovers
  /// (the met set is always a prefix — thresholds increase); rate_steps()[0]
  /// is 0 bps, "even the base rate is infeasible".
  [[nodiscard]] std::span<const BitsPerSecond> rate_steps() const {
    return rate_steps_;
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] BitsPerSecond top_rate() const { return entries_.back().rate; }
  [[nodiscard]] BitsPerSecond base_rate() const { return entries_.front().rate; }

  /// 802.11b: 4 rates (1, 2, 5.5, 11 Mbps).
  [[nodiscard]] static const RateTable& dot11b();
  /// 802.11g: 8 OFDM rates (6..54 Mbps).
  [[nodiscard]] static const RateTable& dot11g();
  /// 802.11n, 20 MHz, long GI, MCS 0-31 (1-4 spatial streams): 32 rates.
  [[nodiscard]] static const RateTable& dot11n();

 private:
  std::string name_;
  std::vector<RateEntry> entries_;
  std::vector<double> linear_cutovers_;     ///< size entries_.size()
  std::vector<BitsPerSecond> rate_steps_;   ///< size entries_.size() + 1
};

}  // namespace sic::phy

#endif  // SICMAC_PHY_RATE_TABLE_HPP
