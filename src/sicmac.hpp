#ifndef SICMAC_SICMAC_HPP
#define SICMAC_SICMAC_HPP

/// \file sicmac.hpp
/// Umbrella header: the full public API of the sicmac library. Individual
/// headers are preferred in library code; this is the convenient include
/// for applications and exploratory tools.
///
/// Layering (each layer only depends on those above it):
///   util      — units, RNG, checks
///   phy       — capacity math (eqs 1-4), rate tables/adapters, SIC decoder
///   channel   — noise, path loss, shadowing, link budgets
///   topology  — geometry, samplers, named deployments
///   matching  — weighted blossom / oracle / greedy matchers
///   core      — the paper: completion-time algebra, techniques, scheduler
///   mac       — discrete-event CSMA/CA + scheduled-upload simulator
///   trace     — synthetic building & link-measurement traces, CSV I/O
///   analysis  — statistics, Monte Carlo engines, trace evaluations

#include "util/check.hpp"       // IWYU pragma: export
#include "util/mathx.hpp"       // IWYU pragma: export
#include "util/rng.hpp"         // IWYU pragma: export
#include "util/units.hpp"       // IWYU pragma: export

#include "phy/capacity.hpp"         // IWYU pragma: export
#include "phy/capacity_region.hpp"  // IWYU pragma: export
#include "phy/error_model.hpp"      // IWYU pragma: export
#include "phy/rate_adapter.hpp"     // IWYU pragma: export
#include "phy/rate_table.hpp"       // IWYU pragma: export
#include "phy/sic_decoder.hpp"      // IWYU pragma: export

#include "channel/fading.hpp"        // IWYU pragma: export
#include "channel/link.hpp"          // IWYU pragma: export
#include "channel/noise.hpp"         // IWYU pragma: export
#include "channel/pathloss.hpp"      // IWYU pragma: export
#include "channel/shadowing.hpp"     // IWYU pragma: export
#include "channel/two_link_rss.hpp"  // IWYU pragma: export

#include "topology/geometry.hpp"   // IWYU pragma: export
#include "topology/node.hpp"       // IWYU pragma: export
#include "topology/samplers.hpp"   // IWYU pragma: export
#include "topology/scenarios.hpp"  // IWYU pragma: export

#include "matching/blossom.hpp"  // IWYU pragma: export
#include "matching/graph.hpp"    // IWYU pragma: export
#include "matching/greedy.hpp"   // IWYU pragma: export
#include "matching/oracle.hpp"   // IWYU pragma: export

#include "core/backlog.hpp"         // IWYU pragma: export
#include "core/cross_link.hpp"      // IWYU pragma: export
#include "core/download.hpp"        // IWYU pragma: export
#include "core/enterprise.hpp"      // IWYU pragma: export
#include "core/mesh.hpp"            // IWYU pragma: export
#include "core/multirate.hpp"       // IWYU pragma: export
#include "core/packet_sizing.hpp"   // IWYU pragma: export
#include "core/packing.hpp"         // IWYU pragma: export
#include "core/power_control.hpp"   // IWYU pragma: export
#include "core/scheduler.hpp"       // IWYU pragma: export
#include "core/upload_pair.hpp"     // IWYU pragma: export
#include "core/wlan_scenarios.hpp"  // IWYU pragma: export

#include "mac/access_point.hpp"        // IWYU pragma: export
#include "mac/chaos.hpp"               // IWYU pragma: export
#include "mac/deployment_engine.hpp"   // IWYU pragma: export
#include "mac/deployment_medium.hpp"   // IWYU pragma: export
#include "mac/event_queue.hpp"   // IWYU pragma: export
#include "mac/medium.hpp"        // IWYU pragma: export
#include "mac/station.hpp"       // IWYU pragma: export
#include "mac/upload_sim.hpp"    // IWYU pragma: export

#include "trace/generator.hpp"   // IWYU pragma: export
#include "trace/io.hpp"          // IWYU pragma: export
#include "trace/link_trace.hpp"  // IWYU pragma: export
#include "trace/snapshot.hpp"    // IWYU pragma: export
#include "trace/stats.hpp"       // IWYU pragma: export

#include "analysis/grid.hpp"        // IWYU pragma: export
#include "analysis/montecarlo.hpp"  // IWYU pragma: export
#include "analysis/stats.hpp"       // IWYU pragma: export
#include "analysis/trace_eval.hpp"  // IWYU pragma: export

#endif  // SICMAC_SICMAC_HPP
