// Lint fixture: lexer regression — digit separators. A naive scanner takes
// the ' in 1'000'000 as opening a char literal and desyncs: everything up
// to the next apostrophe is swallowed, so the string literal below leaks
// into the code channel and its log10( text would be flagged.
constexpr long kIterations = 1'000'000;
constexpr double kSpeedOfLight = 299'792'458.0;
const char* kNote = "log10( and pow(10, x/10) live in a string here";
constexpr unsigned kMask = 0xFF'FF;

int still_in_sync() { return 1; }
