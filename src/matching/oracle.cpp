#include "matching/oracle.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <optional>

#include "util/check.hpp"

namespace sic::matching {

Matching min_weight_perfect_matching_oracle(const CostMatrix& costs) {
  const int n = costs.size();
  SIC_CHECK_MSG(n % 2 == 0, "perfect matching requires an even vertex count");
  SIC_CHECK_MSG(n <= 22, "oracle is exponential; use the blossom matcher");
  const std::size_t nmask = std::size_t{1} << n;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dp(nmask, kInf);
  std::vector<int> choice(nmask, -1);  // j paired with lowest set bit
  dp[0] = 0.0;
  for (std::size_t mask = 1; mask < nmask; ++mask) {
    if (std::popcount(mask) % 2 != 0) continue;
    const int i = std::countr_zero(mask);
    const std::size_t rest = mask ^ (std::size_t{1} << i);
    for (std::size_t m = rest; m != 0; m &= m - 1) {
      const int j = std::countr_zero(m);
      const std::size_t prev = rest ^ (std::size_t{1} << j);
      if (dp[prev] == kInf) continue;
      const double cand = dp[prev] + costs.at(i, j);
      if (cand < dp[mask]) {
        dp[mask] = cand;
        choice[mask] = j;
      }
    }
  }
  Matching result;
  result.total_cost = dp[nmask - 1];
  SIC_CHECK_MSG(result.total_cost < kInf, "no perfect matching exists");
  std::size_t mask = nmask - 1;
  while (mask != 0) {
    const int i = std::countr_zero(mask);
    const int j = choice[mask];
    result.pairs.emplace_back(i, j);
    mask ^= (std::size_t{1} << i) | (std::size_t{1} << j);
  }
  std::reverse(result.pairs.begin(), result.pairs.end());
  return result;
}

OracleMatching max_weight_matching_oracle(int n,
                                          std::span<const WeightedEdge> edges,
                                          bool max_cardinality) {
  SIC_CHECK_MSG(n <= 20, "oracle is exponential; use the blossom matcher");
  // Adjacency with best (max) weight per pair; absent pairs are unmatched.
  std::vector<std::optional<double>> adj(static_cast<std::size_t>(n) * n);
  for (const auto& e : edges) {
    SIC_CHECK(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n && e.u != e.v);
    auto& slot = adj[static_cast<std::size_t>(e.u) * n + e.v];
    if (!slot || *slot < e.weight) {
      slot = e.weight;
      adj[static_cast<std::size_t>(e.v) * n + e.u] = e.weight;
    }
  }

  struct Value {
    int cardinality = 0;
    double weight = 0.0;
  };
  const auto better = [max_cardinality](const Value& a, const Value& b) {
    if (max_cardinality && a.cardinality != b.cardinality) {
      return a.cardinality > b.cardinality;
    }
    return a.weight > b.weight;
  };

  const std::size_t nmask = std::size_t{1} << n;
  std::vector<Value> dp(nmask);
  std::vector<int> choice(nmask, -1);  // partner of lowest bit, or -1 = single
  for (std::size_t mask = 1; mask < nmask; ++mask) {
    const int i = std::countr_zero(mask);
    const std::size_t rest = mask ^ (std::size_t{1} << i);
    // Option 1: leave i single.
    dp[mask] = dp[rest];
    choice[mask] = -1;
    // Option 2: pair i with any j in rest along an existing edge.
    for (std::size_t m = rest; m != 0; m &= m - 1) {
      const int j = std::countr_zero(m);
      const auto& w = adj[static_cast<std::size_t>(i) * n + j];
      if (!w) continue;
      const std::size_t prev = rest ^ (std::size_t{1} << j);
      Value cand{dp[prev].cardinality + 1, dp[prev].weight + *w};
      if (better(cand, dp[mask])) {
        dp[mask] = cand;
        choice[mask] = j;
      }
    }
  }

  OracleMatching out;
  out.mate.assign(n, -1);
  out.total_weight = dp[nmask - 1].weight;
  std::size_t mask = nmask - 1;
  while (mask != 0) {
    const int i = std::countr_zero(mask);
    const int j = choice[mask];
    if (j == -1) {
      mask ^= std::size_t{1} << i;
    } else {
      out.mate[i] = j;
      out.mate[j] = i;
      mask ^= (std::size_t{1} << i) | (std::size_t{1} << j);
    }
  }
  return out;
}

}  // namespace sic::matching
