#include "core/packet_sizing.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};
constexpr Milliwatts kN0{1.0};

UploadPairContext ctx_db(double s1_db, double s2_db) {
  return UploadPairContext::make(Milliwatts{Decibels{s1_db}.linear()},
                                 Milliwatts{Decibels{s2_db}.linear()}, kN0,
                                 kShannon);
}

TEST(PacketSizing, UnequalAlgebraReducesToEqualCase) {
  const auto ctx = ctx_db(24.0, 12.0);
  EXPECT_NEAR(serial_airtime_unequal(ctx, ctx.packet_bits, ctx.packet_bits),
              serial_airtime(ctx), 1e-15);
  EXPECT_NEAR(sic_airtime_unequal(ctx, ctx.packet_bits, ctx.packet_bits),
              sic_airtime(ctx), 1e-15);
}

TEST(PacketSizing, AirtimesScaleLinearlyInBits) {
  const auto ctx = ctx_db(20.0, 14.0);
  EXPECT_NEAR(serial_airtime_unequal(ctx, 24000.0, 6000.0),
              2.0 * serial_airtime_unequal(ctx, 12000.0, 3000.0), 1e-15);
}

TEST(PacketSizing, UnlimitedMtuEqualizesAirtimes) {
  // Similar RSS: the weaker (fast) link gets a big packet so both end
  // together, and the exchange beats plain SIC throughput-wise.
  const auto ctx = ctx_db(21.0, 20.0);
  const auto plan = fill_gap_with_packet_size(ctx, /*mtu_bits=*/1e9);
  EXPECT_FALSE(plan.mtu_limited);
  const auto rates = sic_rates(ctx);
  const double t_slow = ctx.packet_bits / rates.stronger.value();
  EXPECT_NEAR(plan.airtime, t_slow, t_slow * 1e-9);
  EXPECT_NEAR(plan.fast_link_bits, rates.weaker.value() * t_slow,
              plan.fast_link_bits * 1e-9);
  EXPECT_GT(plan.gain, 1.1);
}

TEST(PacketSizing, DefaultMtuUsuallyBinds) {
  // The paper's pessimism: with similar RSSs the equalizing packet is far
  // larger than any 802.11 frame, so the MTU clamps it and the slack
  // survives.
  const auto ctx = ctx_db(20.5, 20.0);
  const auto plan = fill_gap_with_packet_size(ctx);
  EXPECT_TRUE(plan.mtu_limited);
  EXPECT_DOUBLE_EQ(plan.fast_link_bits, 2304.0 * 8.0);
  // MTU-limited sizing yields less gain than the unlimited ideal.
  const auto ideal = fill_gap_with_packet_size(ctx, 1e9);
  EXPECT_LT(plan.gain, ideal.gain);
}

TEST(PacketSizing, GainAtLeastOneEverywhere) {
  for (double s1 = 4.0; s1 <= 40.0; s1 += 4.0) {
    for (double s2 = 2.0; s2 <= s1; s2 += 4.0) {
      const auto plan = fill_gap_with_packet_size(ctx_db(s1, s2));
      EXPECT_GE(plan.gain, 1.0) << s1 << "/" << s2;
      EXPECT_GT(plan.fast_link_bits, 0.0);
    }
  }
}

TEST(PacketSizing, RidgePairNeedsNoResizing) {
  // On the Fig. 4 ridge both rates are equal: the "fast" link's ideal size
  // equals the standard packet and nothing changes.
  const Milliwatts weaker{Decibels{12.0}.linear()};
  const Milliwatts stronger = equal_rate_stronger_rss(weaker, kN0);
  const auto ctx = UploadPairContext::make(stronger, weaker, kN0, kShannon);
  const auto plan = fill_gap_with_packet_size(ctx);
  EXPECT_NEAR(plan.fast_link_bits, ctx.packet_bits, ctx.packet_bits * 1e-6);
  EXPECT_FALSE(plan.mtu_limited);
}

TEST(PacketSizing, InfeasiblePairFallsBackToSerial) {
  const auto ctx = UploadPairContext::make(Milliwatts{100.0}, Milliwatts{0.0},
                                           kN0, kShannon);
  const auto plan = fill_gap_with_packet_size(ctx);
  EXPECT_DOUBLE_EQ(plan.gain, 1.0);
  EXPECT_TRUE(std::isinf(plan.airtime));
}

TEST(PacketSizing, MtuSmallerThanPacketRejected) {
  const auto ctx = ctx_db(20.0, 10.0);
  EXPECT_THROW((void)fill_gap_with_packet_size(ctx, 100.0), std::logic_error);
}

}  // namespace
}  // namespace sic::core
