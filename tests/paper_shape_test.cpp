/// \file paper_shape_test.cpp
/// Integration tests asserting the *shapes* of the paper's headline results
/// (EXPERIMENTS.md records the exact numbers these tests bound):
///
///  - Fig. 3: capacity gain ≤ 2, maximized at low similar RSS.
///  - Fig. 4: completion-time gain peaks on the SNR₁ ≈ 2·SNR₂ (dB) ridge.
///  - Fig. 6: ~90 % of random two-receiver topologies see no SIC gain.
///  - Fig. 8: download (2 APs → 1 client) gains are small.
///  - Fig. 11a: SIC alone >20 % gain in ~20 % of one-receiver cases;
///    power control / multirate lift that substantially.
///  - Fig. 11b: two-receiver cases gain almost nothing, even with help.
///  - Fig. 13: trace-driven pairing shows the Fig. 11a ordering.
///  - Fig. 14: discrete bitrates leave more room for SIC than ideal ones.

#include <gtest/gtest.h>

#include "analysis/montecarlo.hpp"
#include "analysis/stats.hpp"
#include "analysis/trace_eval.hpp"
#include "core/download.hpp"
#include "phy/capacity.hpp"
#include "trace/generator.hpp"
#include "trace/link_trace.hpp"

namespace sic {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};
constexpr Milliwatts kN0{1.0};

TEST(PaperShape, Fig3CapacityGainStructure) {
  double max_gain = 0.0;
  double argmax_s1 = 0.0;
  double argmax_s2 = 0.0;
  for (double s1 = 0.0; s1 <= 40.0; s1 += 1.0) {
    for (double s2 = 0.0; s2 <= 40.0; s2 += 1.0) {
      const auto arrival = phy::TwoSignalArrival::make(
          Milliwatts{Decibels{s1}.linear()}, Milliwatts{Decibels{s2}.linear()},
          kN0);
      const double g = phy::capacity_gain(megahertz(20.0), arrival);
      EXPECT_LT(g, 2.0);
      EXPECT_GT(g, 1.0);
      if (g > max_gain) {
        max_gain = g;
        argmax_s1 = s1;
        argmax_s2 = s2;
      }
    }
  }
  // Maximum sits at the low-SNR equal-RSS corner of the sweep.
  EXPECT_DOUBLE_EQ(argmax_s1, 0.0);
  EXPECT_DOUBLE_EQ(argmax_s2, 0.0);
  EXPECT_GT(max_gain, 1.4);
}

TEST(PaperShape, Fig4RidgeFollowsSquareLaw) {
  // For each weaker SNR, locate the stronger SNR maximizing the gain; it
  // must track 2× (in dB) within grid resolution.
  for (double s2 = 8.0; s2 <= 18.0; s2 += 2.0) {
    double best_gain = 0.0;
    double best_s1 = 0.0;
    for (double s1 = s2; s1 <= 45.0; s1 += 0.1) {
      const auto ctx = core::UploadPairContext::make(
          Milliwatts{Decibels{s1}.linear()}, Milliwatts{Decibels{s2}.linear()},
          kN0, kShannon);
      const double g = core::sic_gain(ctx);
      if (g > best_gain) {
        best_gain = g;
        best_s1 = s1;
      }
    }
    EXPECT_NEAR(best_s1, 2.0 * s2, 1.0) << "s2=" << s2;
    EXPECT_GT(best_gain, 1.3) << "s2=" << s2;
    EXPECT_LT(best_gain, 2.0) << "s2=" << s2;
  }
}

TEST(PaperShape, Fig6NinetyPercentNoGain) {
  topology::SamplerConfig config;
  config.range_m = 40.0;
  const auto gains =
      analysis::run_two_link_gains(config, kShannon, 10000, 1234);
  const analysis::EmpiricalCdf cdf{gains};
  const double no_gain_fraction = cdf.at(1.0 + 1e-9);
  EXPECT_GT(no_gain_fraction, 0.85);  // "no gain from SIC in 90% of cases"
  EXPECT_LT(no_gain_fraction, 1.0);   // but SIC is not *never* useful
}

TEST(PaperShape, Fig6RobustAcrossRanges) {
  for (const double range : {30.0, 50.0}) {
    topology::SamplerConfig config;
    config.range_m = range;
    const auto gains =
        analysis::run_two_link_gains(config, kShannon, 4000, 99);
    const analysis::EmpiricalCdf cdf{gains};
    EXPECT_GT(cdf.at(1.0 + 1e-9), 0.8) << "range=" << range;
  }
}

TEST(PaperShape, Fig8DownloadGainsSmall) {
  // Sweep the Fig. 8 grid; the download gain must stay far below the
  // upload gain envelope and rarely exceed ~1.3.
  double worst = 0.0;
  for (double s1 = 5.0; s1 <= 40.0; s1 += 0.5) {
    for (double s2 = 5.0; s2 <= 40.0; s2 += 0.5) {
      const auto ctx = core::UploadPairContext::make(
          Milliwatts{Decibels{s1}.linear()}, Milliwatts{Decibels{s2}.linear()},
          kN0, kShannon);
      worst = std::max(worst, core::evaluate_download(ctx).gain);
    }
  }
  EXPECT_GT(worst, 1.0);   // some benefit exists (Fig. 8's faint ridge)
  EXPECT_LT(worst, 1.45);  // but it is modest everywhere
}

TEST(PaperShape, Fig11aTechniquesUnlockUploadGains) {
  topology::SamplerConfig config;
  const auto samples =
      analysis::run_two_to_one_techniques(config, kShannon, 10000, 42);
  const analysis::EmpiricalCdf sic{samples.sic};
  const analysis::EmpiricalCdf pc{samples.power_control};
  const analysis::EmpiricalCdf mr{samples.multirate};
  const double sic_frac = sic.fraction_above(1.2);
  const double pc_frac = pc.fraction_above(1.2);
  const double mr_frac = mr.fraction_above(1.2);
  // "gains with SIC alone are modest (20% of the cases gain over 20%)".
  EXPECT_GT(sic_frac, 0.08);
  EXPECT_LT(sic_frac, 0.30);
  // "significant gains (over 20% in 40% of the topologies) by using one of
  // the above mechanisms".
  EXPECT_GT(std::max(pc_frac, mr_frac), 0.3);
  EXPECT_GT(pc_frac, sic_frac);
  EXPECT_GT(mr_frac, sic_frac);
}

TEST(PaperShape, Fig11bTwoReceiverCasesStayBarren) {
  topology::SamplerConfig config;
  const auto samples =
      analysis::run_two_link_techniques(config, kShannon, 4000, 43);
  const analysis::EmpiricalCdf sic{samples.sic};
  const analysis::EmpiricalCdf pc{samples.power_control};
  const analysis::EmpiricalCdf packing{samples.packing};
  EXPECT_LT(sic.fraction_above(1.2), 0.08);
  EXPECT_LT(pc.fraction_above(1.2), 0.18);
  EXPECT_LT(packing.fraction_above(1.2), 0.12);
}

TEST(PaperShape, Fig11UploadBeatsCrossLinkEverywhereOnTheCdf) {
  topology::SamplerConfig config;
  const auto upload =
      analysis::run_two_to_one_techniques(config, kShannon, 5000, 44);
  const auto cross = analysis::run_two_link_gains(config, kShannon, 5000, 44);
  const analysis::EmpiricalCdf up{upload.sic};
  const analysis::EmpiricalCdf cl{cross};
  for (const double g : {1.05, 1.1, 1.2, 1.4}) {
    EXPECT_GE(up.fraction_above(g) + 1e-12, cl.fraction_above(g))
        << "threshold " << g;
  }
}

TEST(PaperShape, Fig13TraceOrderingMatchesFig11a) {
  trace::BuildingConfig config;
  config.duration_s = 24 * 3600;  // one day is plenty for the ordering
  config.diurnal = false;         // stationary occupancy: denser cells
  const auto trace = generate_building_trace(config, 2026);
  const auto gains = analysis::evaluate_upload_trace(trace, kShannon);
  ASSERT_GT(gains.cells_evaluated, 50);
  const double pairing_mean = analysis::summarize(gains.pairing).mean;
  const double pc_mean = analysis::summarize(gains.power_control).mean;
  const double mr_mean = analysis::summarize(gains.multirate).mean;
  const double greedy_mean = analysis::summarize(gains.greedy_pairing).mean;
  EXPECT_GE(pairing_mean, 1.0);
  EXPECT_GE(pc_mean, pairing_mean);
  EXPECT_GE(mr_mean, pairing_mean);
  EXPECT_GE(pairing_mean + 1e-12, greedy_mean);
  // The paper reports real prospective gains on traces.
  EXPECT_GT(std::max(pc_mean, mr_mean), 1.05);
}

TEST(PaperShape, Fig14DiscreteBitratesFavorSic) {
  trace::LinkTraceConfig config;
  const auto link_trace = trace::generate_link_trace(config, 777);
  analysis::DownloadTraceEvalConfig eval;
  eval.pair_samples = 4000;
  const phy::DiscreteRateAdapter g{phy::RateTable::dot11g()};
  const auto arbitrary =
      analysis::evaluate_download_trace(link_trace, kShannon, eval);
  const auto discrete = analysis::evaluate_download_trace(link_trace, g, eval);
  const analysis::EmpiricalCdf arb_pack{arbitrary.packing};
  const analysis::EmpiricalCdf disc_pack{discrete.packing};
  const analysis::EmpiricalCdf arb_plain{arbitrary.plain};
  const analysis::EmpiricalCdf disc_plain{discrete.plain};
  // (a) arbitrary bitrates: even with packing, gains stay limited.
  EXPECT_LT(arb_plain.fraction_above(1.2), 0.15);
  // (b) discrete bitrates do at least as well as continuous at every
  // reported threshold, and packing helps.
  EXPECT_GE(disc_plain.fraction_above(1.2) + 1e-12,
            arb_plain.fraction_above(1.2));
  EXPECT_GE(disc_pack.fraction_above(1.2) + 1e-12,
            disc_plain.fraction_above(1.2));
}

}  // namespace
}  // namespace sic
