#ifndef SICMAC_MAC_EVENT_QUEUE_HPP
#define SICMAC_MAC_EVENT_QUEUE_HPP

/// \file event_queue.hpp
/// The discrete-event engine: a time-ordered queue of callbacks with
/// deterministic FIFO tie-breaking (events scheduled earlier run first at
/// equal timestamps), which keeps simulations reproducible.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "mac/sim_time.hpp"
#include "util/check.hpp"

namespace sic::mac {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules \p fn at absolute time \p at (must be >= now()).
  void schedule_at(SimTime at, Callback fn) {
    SIC_CHECK_MSG(at >= now_, "cannot schedule into the past");
    heap_.push(Event{at, next_seq_++, std::move(fn)});
  }

  /// Schedules \p fn after \p delay from now.
  void schedule_after(SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Runs the next event; returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.at;
    ev.fn();
    return true;
  }

  /// Runs until the queue drains or \p horizon is reached (events at or
  /// after the horizon remain queued). now() stays at the last executed
  /// event so callers can read the true completion time of a finite run.
  void run_until(SimTime horizon) {
    while (!heap_.empty() && heap_.top().at < horizon) step();
  }

  /// Runs until the queue drains.
  void run() {
    while (step()) {
    }
  }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sic::mac

#endif  // SICMAC_MAC_EVENT_QUEUE_HPP
