#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/multirate.hpp"
#include "core/power_control.hpp"
#include "matching/blossom.hpp"
#include "matching/greedy.hpp"
#include "util/check.hpp"

namespace sic::core {

double solo_airtime(const channel::LinkBudget& client,
                    const phy::RateAdapter& adapter, double packet_bits) {
  return airtime_seconds(packet_bits, adapter.rate(client.snr()));
}

PairPlan best_pair_plan(const channel::LinkBudget& a,
                        const channel::LinkBudget& b,
                        const phy::RateAdapter& adapter,
                        const SchedulerOptions& options) {
  SIC_CHECK_MSG(a.noise == b.noise,
                "pair plan assumes a common receiver noise floor");
  SIC_CHECK_MSG(options.admission_margin_db.value() >= 0.0,
                "admission margin must be >= 0 dB");
  // Concurrent candidates are evaluated on a derated view of the channel
  // (both RSS backed off by the admission margin); the serial baseline
  // keeps the clean rates. A margined pair is therefore only admitted when
  // it beats serial *with headroom to spare*, and its recorded airtime is
  // the conservative one the executor realizes.
  const double derate = Decibels{-options.admission_margin_db.value()}.linear();
  const auto ctx = UploadPairContext::make(a.rss * derate, b.rss * derate,
                                           a.noise, adapter,
                                           options.packet_bits);
  PairPlan best;
  best.mode = PairMode::kSerial;
  best.airtime = solo_airtime(a, adapter, options.packet_bits) +
                 solo_airtime(b, adapter, options.packet_bits);

  const double t_sic = sic_airtime(ctx);
  if (t_sic < best.airtime) {
    best = PairPlan{PairMode::kSic, t_sic, 1.0};
  }
  if (options.enable_power_control) {
    const auto pc = optimize_weaker_power(ctx);
    if (pc.applied && pc.airtime < best.airtime) {
      best = PairPlan{PairMode::kSicPowerControl, pc.airtime, pc.scale};
    }
  }
  if (options.enable_multirate) {
    const auto mr = multirate_airtime_detailed(ctx);
    if (mr.boosted && mr.airtime < best.airtime) {
      best = PairPlan{PairMode::kSicMultirate, mr.airtime, 1.0};
    }
  }
  return best;
}

double serial_upload_airtime(std::span<const channel::LinkBudget> clients,
                             const phy::RateAdapter& adapter,
                             double packet_bits) {
  double total = 0.0;
  for (const auto& c : clients) total += solo_airtime(c, adapter, packet_bits);
  return total;
}

Schedule schedule_upload(std::span<const channel::LinkBudget> clients,
                         const phy::RateAdapter& adapter,
                         const SchedulerOptions& options) {
  Schedule schedule;
  schedule.admission_margin_db = options.admission_margin_db;
  const int n = static_cast<int>(clients.size());
  if (n == 0) return schedule;
  if (n == 1) {
    const double t = solo_airtime(clients[0], adapter, options.packet_bits);
    schedule.slots.push_back(
        ScheduledSlot{0, -1, PairPlan{PairMode::kSolo, t, 1.0}});
    schedule.total_airtime = t;
    return schedule;
  }

  // Fig. 12 reduction: complete graph over clients, dummy vertex for odd n.
  const bool odd = (n % 2) != 0;
  const int m = odd ? n + 1 : n;
  const int dummy = odd ? n : -1;
  // Cache plans so slot reconstruction matches the matrix exactly.
  std::vector<PairPlan> plans(static_cast<std::size_t>(m) * m);
  matching::CostMatrix costs{m};
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const PairPlan plan = best_pair_plan(clients[i], clients[j], adapter, options);
      costs.set(i, j, plan.airtime);
      plans[static_cast<std::size_t>(i) * m + j] = plan;
    }
    if (odd) {
      const double t = solo_airtime(clients[i], adapter, options.packet_bits);
      costs.set(i, dummy, t);
      plans[static_cast<std::size_t>(i) * m + dummy] =
          PairPlan{PairMode::kSolo, t, 1.0};
    }
  }

  const matching::Matching matching =
      options.pairing == SchedulerOptions::Pairing::kBlossom
          ? matching::min_weight_perfect_matching(costs)
          : matching::greedy_min_weight_perfect_matching(costs);

  for (const auto& [u, v] : matching.pairs) {
    const int i = std::min(u, v);
    const int j = std::max(u, v);
    const PairPlan& plan = plans[static_cast<std::size_t>(i) * m + j];
    ScheduledSlot slot;
    slot.first = i;
    slot.second = (j == dummy) ? -1 : j;
    slot.plan = plan;
    schedule.slots.push_back(slot);
    schedule.total_airtime += plan.airtime;
  }
  // Deterministic presentation: longest slot first (the AP may use any
  // order; tests rely on a stable one).
  std::sort(schedule.slots.begin(), schedule.slots.end(),
            [](const ScheduledSlot& a, const ScheduledSlot& b) {
              if (a.plan.airtime != b.plan.airtime) {
                return a.plan.airtime > b.plan.airtime;
              }
              return a.first < b.first;
            });
  return schedule;
}

}  // namespace sic::core
