#include "analysis/trace_eval.hpp"

#include <algorithm>
#include <cmath>

#include "core/cross_link.hpp"
#include "obs/logger.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sic::analysis {

UploadTraceGains evaluate_upload_trace(const trace::RssiTrace& trace,
                                       const phy::RateAdapter& adapter,
                                       const UploadTraceEvalConfig& config) {
  SIC_CHECK(config.min_clients >= 2);
  obs::MetricsRegistry* reg = obs::metrics();
  obs::ScopedTimer timer{
      reg != nullptr ? &reg->histogram("analysis.trace_eval.upload_wall_s")
                     : nullptr};
  SIC_SPAN("trace_eval.upload");
  const Milliwatts noise = Dbm{config.noise_floor_dbm}.to_milliwatts();
  UploadTraceGains out;

  const auto gain_for = [&](std::span<const channel::LinkBudget> budgets,
                            const core::SchedulerOptions& options,
                            double serial) {
    const auto schedule = core::schedule_upload(budgets, adapter, options);
    return schedule.total_airtime > 0.0 ? serial / schedule.total_airtime
                                        : 1.0;
  };

  for (const auto& snap : trace.snapshots) {
    for (const auto& ap : snap.aps) {
      const int n = static_cast<int>(ap.clients.size());
      if (n < config.min_clients || n > config.max_clients) continue;
      std::vector<channel::LinkBudget> budgets;
      budgets.reserve(ap.clients.size());
      for (const auto& obs : ap.clients) {
        budgets.push_back(channel::LinkBudget{
            Dbm{obs.rssi_dbm}.to_milliwatts(), noise});
      }
      const double serial =
          core::serial_upload_airtime(budgets, adapter, config.packet_bits);
      if (!std::isfinite(serial) || serial <= 0.0) continue;

      core::SchedulerOptions base;
      base.packet_bits = config.packet_bits;
      out.pairing.push_back(gain_for(budgets, base, serial));

      core::SchedulerOptions pc = base;
      pc.enable_power_control = true;
      out.power_control.push_back(gain_for(budgets, pc, serial));

      core::SchedulerOptions mr = base;
      mr.enable_multirate = true;
      out.multirate.push_back(gain_for(budgets, mr, serial));

      core::SchedulerOptions greedy = base;
      greedy.pairing = core::SchedulerOptions::Pairing::kGreedy;
      out.greedy_pairing.push_back(gain_for(budgets, greedy, serial));

      ++out.cells_evaluated;
    }
  }
  if (reg != nullptr) {
    reg->counter("analysis.trace_eval.upload_cells").inc(out.cells_evaluated);
    reg->counter("analysis.trace_eval.upload_snapshots")
        .inc(trace.snapshots.size());
  }
  SIC_LOG_INFO("trace eval upload: %llu cells across %zu snapshots",
               static_cast<unsigned long long>(out.cells_evaluated),
               trace.snapshots.size());
  return out;
}

DownloadTraceGains evaluate_download_trace(
    const trace::LinkTrace& trace, const phy::RateAdapter& adapter,
    const DownloadTraceEvalConfig& config) {
  SIC_CHECK(config.pair_samples > 0);
  SIC_CHECK(trace.n_aps() >= 2 && trace.n_locations() >= 2);
  obs::MetricsRegistry* reg = obs::metrics();
  obs::ScopedTimer timer{
      reg != nullptr ? &reg->histogram("analysis.trace_eval.download_wall_s")
                     : nullptr};
  SIC_SPAN("trace_eval.download");
  Rng rng{config.seed};
  DownloadTraceGains out;
  out.plain.reserve(static_cast<std::size_t>(config.pair_samples));
  const Decibels floor{config.min_link_snr_db};
  std::uint64_t rejected = 0;
  for (int i = 0; i < config.pair_samples; ++i) {
    // Draw a scenario of two AP→client links with distinct APs and
    // clients; reject scenarios whose serving links are below the
    // measurement floor (no 90 %-delivery rate exists for them).
    int ap1 = 0, ap2 = 0, loc1 = 0, loc2 = 0;
    bool viable = false;
    for (int attempt = 0; attempt < 256 && !viable; ++attempt) {
      ap1 = rng.uniform_int(0, trace.n_aps() - 1);
      ap2 = rng.uniform_int(0, trace.n_aps() - 2);
      if (ap2 >= ap1) ++ap2;
      loc1 = rng.uniform_int(0, trace.n_locations() - 1);
      loc2 = rng.uniform_int(0, trace.n_locations() - 2);
      if (loc2 >= loc1) ++loc2;
      viable = trace.snr(ap1, loc1) >= floor && trace.snr(ap2, loc2) >= floor;
    }
    if (!viable) {
      ++rejected;
      continue;  // degenerate campaign
    }
    const auto rss = trace.two_link_rss(ap1, loc1, ap2, loc2);
    // The measured campaign counts any concurrency the SIC-capable MAC can
    // schedule, including capture-mode concurrency in the Fig. 5a case.
    core::CrossLinkOptions options;
    options.packet_bits = config.packet_bits;
    options.include_capture_concurrency = true;
    out.plain.push_back(core::evaluate_cross_link(rss, adapter, options).gain);
    out.packing.push_back(
        core::cross_link_packing_gain(rss, adapter, options));
  }
  if (reg != nullptr) {
    reg->counter("analysis.trace_eval.download_pairs").inc(out.plain.size());
    reg->counter("analysis.trace_eval.download_rejected").inc(rejected);
  }
  SIC_LOG_INFO(
      "trace eval download: %zu viable pair scenarios, %llu rejected",
      out.plain.size(), static_cast<unsigned long long>(rejected));
  return out;
}

}  // namespace sic::analysis
