#include "matching/greedy.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "matching/blossom.hpp"
#include "matching/error.hpp"
#include "matching/oracle.hpp"
#include "util/rng.hpp"

namespace sic::matching {
namespace {

TEST(Greedy, TakesCheapestEdgeFirst) {
  CostMatrix costs{4};
  costs.set(0, 1, 1.0);
  costs.set(2, 3, 100.0);
  costs.set(0, 2, 2.0);
  costs.set(1, 3, 2.0);
  costs.set(0, 3, 50.0);
  costs.set(1, 2, 50.0);
  const auto m = greedy_min_weight_perfect_matching(costs);
  EXPECT_DOUBLE_EQ(m.total_cost, 101.0);  // the greedy trap
}

TEST(Greedy, NeverBeatsBlossom) {
  Rng rng{21};
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 2 * rng.uniform_int(1, 8);
    CostMatrix costs{n};
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) costs.set(i, j, rng.uniform(0.0, 10.0));
    }
    const auto greedy = greedy_min_weight_perfect_matching(costs);
    const auto exact = min_weight_perfect_matching(costs);
    EXPECT_GE(greedy.total_cost + 1e-9, exact.total_cost)
        << "n=" << n << " trial=" << trial;
  }
}

TEST(Greedy, ProducesPerfectMatching) {
  Rng rng{22};
  constexpr int n = 12;
  CostMatrix costs{n};
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) costs.set(i, j, rng.uniform(0.0, 10.0));
  }
  const auto m = greedy_min_weight_perfect_matching(costs);
  std::vector<bool> seen(n, false);
  for (const auto& [a, b] : m.pairs) {
    EXPECT_FALSE(seen[a]);
    EXPECT_FALSE(seen[b]);
    seen[a] = seen[b] = true;
  }
  EXPECT_EQ(m.pairs.size(), static_cast<std::size_t>(n / 2));
}

TEST(Greedy, OddCountRejected) {
  CostMatrix costs{3};
  // Typed error (not the SIC_CHECK logic_error): the CLI maps it to its
  // own exit code, and the message names the offending count.
  try {
    (void)greedy_min_weight_perfect_matching(costs);
    FAIL() << "odd vertex count must throw MatchingError";
  } catch (const MatchingError& e) {
    EXPECT_NE(std::string{e.what()}.find("3"), std::string::npos);
  }
}

}  // namespace
}  // namespace sic::matching
