#ifndef SICMAC_CORE_UPLOAD_PAIR_HPP
#define SICMAC_CORE_UPLOAD_PAIR_HPP

/// \file upload_pair.hpp
/// Section 3.1: two transmitters, one packet each, one common receiver —
/// the WLAN-upload building block the paper identifies as SIC's sweet spot.
///
///   eq (5)  Z₋SIC = L/r(S¹/N₀) + L/r(S²/N₀)            (serial)
///   eq (6)  Z₊SIC = max( L/r(S¹/(S²+N₀)), L/r(S²/N₀) ) (concurrent)
///
/// where r(·) is the SINR→rate policy. With the Shannon adapter these are
/// literally equations (5) and (6); with a discrete adapter they are the
/// Section 7 "discrete bitrates" variants. The gain Z₋/Z₊ peaks when both
/// concurrent rates are equal, i.e. S¹ ≈ (S²)²/N₀ — "twice in terms of SNR
/// in dB" (Fig. 4).

#include "phy/capacity.hpp"
#include "phy/rate_adapter.hpp"
#include "util/units.hpp"

namespace sic::core {

/// Everything needed to evaluate one upload pair.
struct UploadPairContext {
  phy::TwoSignalArrival arrival;  ///< RSS of both clients at the AP + noise
  double packet_bits = 12000.0;   ///< L (1500-byte frame by default)
  const phy::RateAdapter* adapter = nullptr;

  [[nodiscard]] static UploadPairContext make(Milliwatts s1, Milliwatts s2,
                                              Milliwatts noise,
                                              const phy::RateAdapter& adapter,
                                              double packet_bits = 12000.0);
};

/// The two concurrent SIC-constrained rates (stronger first).
struct SicRatePair {
  BitsPerSecond stronger;  ///< eq (1): interference-limited
  BitsPerSecond weaker;    ///< eq (2): clean after cancellation
};

/// Practical-receiver impairments (the Section 9 caveats; [13] shows they
/// "sharply cut down SIC's usefulness"). Defaults reproduce the paper's
/// idealized analysis.
struct SicImpairments {
  /// Fraction of the cancelled signal's power left behind by imperfect
  /// channel estimation / reconstruction; interferes with the weaker
  /// signal's decode.
  double cancellation_residual = 0.0;
  /// ADC dynamic-range limit: when the stronger arrival exceeds the weaker
  /// by more than this, the weaker is unrecoverable even after perfect
  /// cancellation.
  Decibels max_decodable_disparity{1e9};
};

[[nodiscard]] SicRatePair sic_rates(const UploadPairContext& ctx);

/// Impairment-aware variant: the weaker rate is computed against the
/// cancellation residual and zeroed past the ADC disparity limit.
[[nodiscard]] SicRatePair sic_rates(const UploadPairContext& ctx,
                                    const SicImpairments& impairments);

/// eq (5): serial transmission of both packets at their clean best rates.
/// +inf when either link cannot sustain any rate.
[[nodiscard]] double serial_airtime(const UploadPairContext& ctx);

/// eq (6): concurrent SIC transmission; +inf when either SIC-constrained
/// rate is zero (SIC infeasible under this rate policy).
[[nodiscard]] double sic_airtime(const UploadPairContext& ctx);

/// Impairment-aware eq (6).
[[nodiscard]] double sic_airtime(const UploadPairContext& ctx,
                                 const SicImpairments& impairments);

/// Impairment-aware realized gain (>= 1; serial fallback).
[[nodiscard]] double realized_gain(const UploadPairContext& ctx,
                                   const SicImpairments& impairments);

/// Raw ratio Z₋SIC/Z₊SIC (Fig. 4's color value). May be < 1: concurrency
/// can lose to serial when the RSS disparity is extreme. Returns 0 when
/// both are infinite.
[[nodiscard]] double sic_gain(const UploadPairContext& ctx);

/// The gain a rational MAC actually realizes: it falls back to serial when
/// SIC loses, so the realized gain is max(1, sic_gain).
[[nodiscard]] double realized_gain(const UploadPairContext& ctx);

/// The RSS (linear) of the *stronger* client at which the two concurrent
/// rates are exactly equal for a given weaker RSS — the Fig. 4 ridge:
/// S¹* = S²·(S² + N₀)/N₀, i.e. SNR₁ = SNR₂·(SNR₂+1) ≈ SNR₂² (square law,
/// "twice in dB"). Shannon-policy closed form.
[[nodiscard]] Milliwatts equal_rate_stronger_rss(Milliwatts weaker,
                                                 Milliwatts noise);

}  // namespace sic::core

#endif  // SICMAC_CORE_UPLOAD_PAIR_HPP
