// Lint fixture: R3 — nondeterminism sources.
#include <chrono>
#include <cstdlib>
#include <unordered_map>

int roll() {
  return std::rand();  // line 7: R3 violation (std::rand)
}

double wall_now() {
  const auto t = std::chrono::system_clock::now();  // line 11: R3 (clock)
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

int sum_values(const std::unordered_map<int, int>& scores) {
  int total = 0;
  for (const auto& kv : scores) {  // line 17: R3 (unordered iteration)
    total += kv.second;
  }
  return total;
}

bool has_score(const std::unordered_map<int, int>& scores, int id) {
  return scores.find(id) != scores.end();  // clean: membership test, not order
}
