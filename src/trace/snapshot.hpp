#ifndef SICMAC_TRACE_SNAPSHOT_HPP
#define SICMAC_TRACE_SNAPSHOT_HPP

/// \file snapshot.hpp
/// The data model of the Section 7 upload traces: "topology snapshots
/// (every 15 minutes) that provide sets of wireless clients associated to
/// each AP", with per-client RSSI at the AP.

#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace sic::trace {

struct ClientObservation {
  std::uint32_t client_id = 0;
  Dbm rssi{0.0};  ///< client's RSSI as heard by the AP
};

struct ApSnapshot {
  std::uint32_t ap_id = 0;
  std::vector<ClientObservation> clients;
};

struct Snapshot {
  std::int64_t timestamp_s = 0;  ///< seconds since trace start
  std::vector<ApSnapshot> aps;
};

struct RssiTrace {
  std::vector<Snapshot> snapshots;

  [[nodiscard]] std::size_t total_observations() const {
    std::size_t n = 0;
    for (const auto& s : snapshots) {
      for (const auto& ap : s.aps) n += ap.clients.size();
    }
    return n;
  }
};

}  // namespace sic::trace

#endif  // SICMAC_TRACE_SNAPSHOT_HPP
