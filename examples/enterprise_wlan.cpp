/// Enterprise WLAN (Section 4.1, Fig. 7a): two backbone-connected APs and
/// four clients. The example walks the paper's four traffic cases and
/// shows where SIC is worth pursuing:
///
///   upload, 2 clients → 1 AP   — the sweet spot (same algebra as §3.1)
///   download, 2 APs → 1 client — weak: the backbone lets both packets ride
///                                the better AP (Fig. 8)
///   upload, 2 clients → 2 APs  — unneeded: free association puts every
///                                client on its louder AP (capture case)
///   download, 2 APs → 2 clients— same story in reverse

#include <cstdio>
#include <tuple>

#include "core/wlan_scenarios.hpp"

int main() {
  using namespace sic;
  const auto ewlan = topology::make_ewlan(/*ap_separation_m=*/40.0,
                                          /*cell_radius_m=*/12.0, /*seed=*/3);
  const phy::ShannonRateAdapter adapter{megahertz(20.0)};
  const core::WlanStudy study{ewlan, adapter};

  std::printf("EWLAN: AP0 and AP1 40 m apart; clients 2,3 in cell 0 and "
              "4,5 in cell 1\n\n");

  std::printf("1) upload, two clients -> one AP\n");
  for (const auto& [a, b, ap] :
       {std::tuple{2, 3, 0}, std::tuple{4, 5, 1}, std::tuple{2, 4, 0}}) {
    std::printf("   C%d + C%d -> AP%d : gain %.2fx\n", a, b, ap,
                study.upload_gain(static_cast<topology::NodeId>(a),
                                  static_cast<topology::NodeId>(b),
                                  static_cast<topology::NodeId>(ap)));
  }

  std::printf("\n2) download, two APs -> one client (wired backbone)\n");
  for (const int client : {2, 3, 4, 5}) {
    const auto result =
        study.download_to(static_cast<topology::NodeId>(client), 0, 1);
    std::printf("   AP0+AP1 -> C%d : gain %.2fx (raw %.2f)\n", client,
                result.gain, result.raw_gain);
  }

  std::printf("\n3) upload, two clients -> two APs, free association\n");
  const auto up = study.upload_with_free_association(2, 4, 0, 1);
  std::printf("   C2 -> AP%u, C4 -> AP%u: case %s, SIC needed: %s, "
              "gain %.2fx\n",
              up.ap_for_a, up.ap_for_b, to_string(up.result.kase),
              up.sic_needed ? "yes" : "NO", up.result.gain);

  std::printf("\n4) download, two APs -> two clients (each via its own AP)\n");
  const auto down = study.concurrent_links(0, 2, 1, 4);
  std::printf("   AP0 -> C2 with AP1 -> C4: case %s, gain %.2fx\n",
              to_string(down.kase), down.gain);

  std::printf("\nconclusion (paper): in EWLANs only the upload-to-one-AP "
              "case rewards SIC; everything else is served better by "
              "association choice and the wired backbone.\n");
  return 0;
}
