#ifndef SICMAC_OBS_BUILD_INFO_HPP
#define SICMAC_OBS_BUILD_INFO_HPP

/// \file build_info.hpp
/// Build provenance for run manifests: the `git describe` of the tree the
/// binary was built from (baked in at configure time; "unknown" when the
/// build happened outside a git checkout).

namespace sic::obs {

[[nodiscard]] const char* git_describe();

}  // namespace sic::obs

#endif  // SICMAC_OBS_BUILD_INFO_HPP
