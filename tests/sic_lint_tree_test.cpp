/// Self-lint: the real tree passes every sic_lint rule with an empty
/// suppression surface. This is the teeth behind DESIGN.md's "Static
/// analysis" section — the layer DAG, the RNG substream discipline and the
/// FP/error policies are machine-checked on every test run, not just in CI.

#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace sic::lint {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// All .cpp/.hpp files under the scanned roots, paths repo-relative with
/// forward slashes, sorted. Fixture files are the linter's test inputs,
/// not part of the tree contract.
std::vector<std::string> tree_paths() {
  const fs::path root{SIC_REPO_ROOT};
  std::vector<std::string> out;
  for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp") continue;
      std::string rel = fs::relative(entry.path(), root).generic_string();
      if (rel.rfind("tests/lint_fixtures/", 0) == 0) continue;
      out.push_back(std::move(rel));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<FileInput> tree_inputs() {
  const fs::path root{SIC_REPO_ROOT};
  std::vector<FileInput> files;
  for (const std::string& rel : tree_paths()) {
    files.push_back(FileInput{rel, slurp(root / rel)});
  }
  return files;
}

TEST(SicLintTree, ScansANontrivialTree) {
  const auto paths = tree_paths();
  // Sanity: the scan actually found the tree (all five roots contribute).
  EXPECT_GT(paths.size(), 150u);
  const auto has_prefix = [&](const std::string& p) {
    return std::any_of(paths.begin(), paths.end(), [&](const std::string& f) {
      return f.rfind(p, 0) == 0;
    });
  };
  EXPECT_TRUE(has_prefix("src/"));
  EXPECT_TRUE(has_prefix("tools/"));
  EXPECT_TRUE(has_prefix("bench/"));
  EXPECT_TRUE(has_prefix("tests/"));
  EXPECT_TRUE(has_prefix("examples/"));
}

TEST(SicLintTree, RealTreeIsLintCleanUnderAllRules) {
  const auto files = tree_inputs();
  auto findings = lint_tree(files);

  const std::string baseline_path = "tools/sic_lint/r2_baseline.txt";
  const fs::path root{SIC_REPO_ROOT};
  const auto baseline = parse_baseline(slurp(root / baseline_path));
  findings = apply_baseline(std::move(findings), baseline, baseline_path);

  for (const Finding& f : findings) {
    ADD_FAILURE() << format_finding(f);
  }
  EXPECT_TRUE(findings.empty());
}

TEST(SicLintTree, SuppressionSurfaceIsEmpty) {
  // PR 10's lexer rewrite deleted every inline allow() in the tree; keep
  // it that way. The marker is only legitimate inside the linter's own
  // sources and docs (tools/sic_lint) and the fixture corpus (excluded
  // above). Only real comments count — comments_only() blanks string
  // literals, so the linter's tests can mention the marker in test data.
  const std::string needle = std::string{"sic-lint: "} + "allow(";
  const fs::path root{SIC_REPO_ROOT};
  std::vector<std::string> offenders;
  for (const std::string& rel : tree_paths()) {
    if (rel.rfind("tools/sic_lint/", 0) == 0) continue;
    const std::string comments = comments_only(slurp(root / rel));
    if (comments.find(needle) != std::string::npos) {
      offenders.push_back(rel);
    }
  }
  EXPECT_TRUE(offenders.empty())
      << "new sic-lint suppressions introduced in: " << [&] {
           std::string joined;
           for (const auto& p : offenders) joined += p + " ";
           return joined;
         }();
}

}  // namespace
}  // namespace sic::lint
