#include "lexer.hpp"

#include <array>
#include <cctype>

namespace sic::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Multi-character punctuators the rules care about, longest first so the
/// scan is maximal-munch. Everything else lexes as a single character.
constexpr std::array<std::string_view, 22> kPuncts = {
    "<<=", ">>=", "...", "->*", "::", "==", "!=", "<=", ">=", "+=", "-=",
    "*=", "/=",  "%=",  "&&", "||", "->", "&=", "|=", "^=", "++", "--"};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  LexedFile run() {
    while (i_ < src_.size()) step();
    return std::move(out_);
  }

 private:
  char at(std::size_t k = 0) const {
    return i_ + k < src_.size() ? src_[i_ + k] : '\0';
  }

  /// True if a backslash-newline splice starts at absolute position `p`;
  /// sets `len` to its length (handles \r\n).
  bool splice_at(std::size_t p, std::size_t& len) const {
    if (p >= src_.size() || src_[p] != '\\') return false;
    if (p + 1 < src_.size() && src_[p + 1] == '\n') {
      len = 2;
      return true;
    }
    if (p + 2 < src_.size() && src_[p + 1] == '\r' && src_[p + 2] == '\n') {
      len = 3;
      return true;
    }
    return false;
  }

  void advance(std::size_t n) {
    for (std::size_t k = 0; k < n && i_ < src_.size(); ++k, ++i_) {
      if (src_[i_] == '\n') {
        ++line_;
        col_ = 1;
      } else {
        ++col_;
      }
    }
  }

  Token make(TokKind kind, std::size_t start, int line, int col) const {
    Token t;
    t.kind = kind;
    t.text = std::string{src_.substr(start, i_ - start)};
    t.offset = start;
    t.line = line;
    t.col = col;
    t.brace_depth = brace_;
    t.paren_depth = paren_;
    t.pp = pp_;
    return t;
  }

  void emit(Token t) {
    if (t.kind == TokKind::kComment) {
      out_.comments.push_back(std::move(t));
      return;
    }
    // #include target extraction: the string (or <...> header-name) right
    // after the `include` directive identifier.
    if (pp_ && pending_include_ && t.kind == TokKind::kString &&
        t.text.size() >= 2) {
      IncludeDirective inc;
      inc.target = t.text.substr(1, t.text.size() - 2);
      inc.quoted = t.text.front() == '"';
      inc.line = t.line;
      out_.includes.push_back(std::move(inc));
      pending_include_ = false;
    }
    if (pp_ && pp_hash_ && t.kind == TokKind::kIdent) {
      pending_include_ = t.text == "include";
      pp_hash_ = false;
    }
    out_.tokens.push_back(std::move(t));
  }

  void step() {
    const char c = at();
    if (c == '\n') {
      if (pp_) {
        pp_ = false;
        pp_hash_ = false;
        pending_include_ = false;
      }
      line_start_ = true;
      advance(1);
      return;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      advance(1);
      return;
    }
    std::size_t splice_len = 0;
    if (splice_at(i_, splice_len)) {
      // A splice glues the next physical line onto this logical line: a
      // preprocessor directive continues, ordinary code just flows on.
      advance(splice_len);
      return;
    }
    if (c == '/' && at(1) == '/') {
      line_comment();
      return;
    }
    if (c == '/' && at(1) == '*') {
      block_comment();
      return;
    }
    if (c == '#' && line_start_ && !pp_) {
      pp_ = true;
      pp_hash_ = true;
      const std::size_t start = i_;
      const int line = line_, col = col_;
      advance(1);
      emit(make(TokKind::kPunct, start, line, col));
      line_start_ = false;
      return;
    }
    line_start_ = false;
    if (pp_ && pending_include_ && c == '<') {
      header_name();
      return;
    }
    if (ident_start(c)) {
      identifier_or_prefixed_literal();
      return;
    }
    if (digit(c) || (c == '.' && digit(at(1)))) {
      number();
      return;
    }
    if (c == '"') {
      string_literal(0);
      return;
    }
    if (c == '\'') {
      char_literal(0);
      return;
    }
    punct();
  }

  void line_comment() {
    const std::size_t start = i_;
    const int line = line_, col = col_;
    advance(2);
    while (i_ < src_.size()) {
      std::size_t len = 0;
      if (splice_at(i_, len)) {
        // Backslash-newline continues the comment onto the next physical
        // line (C++ phase 2 runs before comment removal).
        advance(len);
        continue;
      }
      if (at() == '\n') break;
      advance(1);
    }
    emit(make(TokKind::kComment, start, line, col));
  }

  void block_comment() {
    const std::size_t start = i_;
    const int line = line_, col = col_;
    advance(2);
    while (i_ < src_.size() && !(at() == '*' && at(1) == '/')) advance(1);
    advance(2);
    emit(make(TokKind::kComment, start, line, col));
  }

  void header_name() {
    const std::size_t start = i_;
    const int line = line_, col = col_;
    advance(1);
    while (i_ < src_.size() && at() != '>' && at() != '\n') advance(1);
    if (at() == '>') advance(1);
    emit(make(TokKind::kString, start, line, col));
  }

  void identifier_or_prefixed_literal() {
    const std::size_t start = i_;
    const int line = line_, col = col_;
    while (i_ < src_.size() && ident_char(at())) advance(1);
    const std::string_view text = src_.substr(start, i_ - start);
    const bool raw_prefix =
        text == "R" || text == "u8R" || text == "uR" || text == "UR" ||
        text == "LR";
    const bool enc_prefix =
        text == "u8" || text == "u" || text == "U" || text == "L";
    if (raw_prefix && at() == '"') {
      raw_string(start, line, col);
      return;
    }
    if (enc_prefix && at() == '"') {
      string_body();
      emit(make(TokKind::kString, start, line, col));
      return;
    }
    if (enc_prefix && at() == '\'') {
      char_body();
      emit(make(TokKind::kChar, start, line, col));
      return;
    }
    emit(make(TokKind::kIdent, start, line, col));
  }

  /// Consumes `"..."` starting at the opening quote (escapes honored).
  void string_body() {
    advance(1);
    while (i_ < src_.size() && at() != '"') {
      advance(at() == '\\' ? 2 : 1);
    }
    advance(1);
  }

  void char_body() {
    advance(1);
    while (i_ < src_.size() && at() != '\'') {
      advance(at() == '\\' ? 2 : 1);
    }
    advance(1);
  }

  void string_literal(std::size_t) {
    const std::size_t start = i_;
    const int line = line_, col = col_;
    string_body();
    emit(make(TokKind::kString, start, line, col));
  }

  void char_literal(std::size_t) {
    const std::size_t start = i_;
    const int line = line_, col = col_;
    char_body();
    emit(make(TokKind::kChar, start, line, col));
  }

  void raw_string(std::size_t start, int line, int col) {
    // at() == '"' here; delimiter runs to the '('.
    advance(1);
    std::string delim = ")";
    while (i_ < src_.size() && at() != '(') {
      delim.push_back(at());
      advance(1);
    }
    advance(1);  // '('
    delim.push_back('"');
    while (i_ < src_.size() && src_.compare(i_, delim.size(), delim) != 0) {
      advance(1);
    }
    advance(delim.size());
    emit(make(TokKind::kString, start, line, col));
  }

  void number() {
    const std::size_t start = i_;
    const int line = line_, col = col_;
    // pp-number: digits, letters (hex/bin/suffix), '.', digit separators,
    // and exponent signs after e/E/p/P.
    while (i_ < src_.size()) {
      const char c = at();
      if (ident_char(c) || c == '.') {
        advance(1);
        continue;
      }
      if (c == '\'' && ident_char(at(1)) && i_ > start &&
          ident_char(src_[i_ - 1])) {
        advance(1);  // digit separator
        continue;
      }
      if ((c == '+' || c == '-') && i_ > start) {
        const char prev = src_[i_ - 1];
        if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
          advance(1);
          continue;
        }
      }
      break;
    }
    emit(make(TokKind::kNumber, start, line, col));
  }

  void punct() {
    const std::size_t start = i_;
    const int line = line_, col = col_;
    const char c = at();
    std::size_t len = 1;
    for (const std::string_view p : kPuncts) {
      if (src_.compare(i_, p.size(), p) == 0) {
        len = p.size();
        break;
      }
    }
    // Depth bookkeeping ignores preprocessor lines: a macro body may be
    // deliberately unbalanced and must not corrupt scope tracking.
    if (!pp_) {
      if (c == '}') brace_ = brace_ > 0 ? brace_ - 1 : 0;
      if (c == ')') paren_ = paren_ > 0 ? paren_ - 1 : 0;
    }
    advance(len);
    emit(make(TokKind::kPunct, start, line, col));
    if (!pp_) {
      if (c == '{') ++brace_;
      if (c == '(') ++paren_;
    }
  }

  std::string_view src_;
  LexedFile out_;
  std::size_t i_ = 0;
  int line_ = 1;
  int col_ = 1;
  int brace_ = 0;
  int paren_ = 0;
  bool pp_ = false;
  bool pp_hash_ = false;          ///< just emitted the directive '#'
  bool pending_include_ = false;  ///< directive is #include, target pending
  bool line_start_ = true;        ///< nothing but whitespace since newline
};

bool is_kw(const Token& t, std::string_view text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

}  // namespace

LexedFile lex(std::string_view source) { return Lexer{source}.run(); }

std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open) {
  if (open >= tokens.size() || tokens[open].kind != TokKind::kPunct ||
      tokens[open].text.size() != 1) {
    return tokens.size();
  }
  const char o = tokens[open].text[0];
  const char c = o == '(' ? ')' : o == '{' ? '}' : o == '[' ? ']' : '\0';
  if (c == '\0') return tokens.size();
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.pp || t.kind != TokKind::kPunct || t.text.size() != 1) continue;
    if (t.text[0] == o) ++depth;
    if (t.text[0] == c) {
      --depth;
      if (depth == 0) return i;
    }
  }
  return tokens.size();
}

namespace {

/// Best-effort function name for the body opened by the `{` at `open`:
/// walk back over cv/ref/noexcept qualifiers to a `)`, match its `(`, and
/// take the identifier in front — unless it is a control-flow keyword.
std::string function_name_before(const std::vector<Token>& tokens,
                                 std::size_t open) {
  std::size_t i = open;
  while (i > 0) {
    const Token& t = tokens[i - 1];
    if (t.pp) {
      --i;
      continue;
    }
    if (is_kw(t, "const") || is_kw(t, "noexcept") || is_kw(t, "override") ||
        is_kw(t, "final") || is_kw(t, "mutable")) {
      --i;
      continue;
    }
    break;
  }
  if (i == 0 || !is_punct(tokens[i - 1], ")")) return {};
  // Match the ')' backwards to its '('.
  int depth = 0;
  std::size_t j = i - 1;
  while (true) {
    const Token& t = tokens[j];
    if (!t.pp && t.kind == TokKind::kPunct) {
      if (t.text == ")") ++depth;
      if (t.text == "(") {
        --depth;
        if (depth == 0) break;
      }
    }
    if (j == 0) return {};
    --j;
  }
  if (j == 0) return {};
  const Token& name = tokens[j - 1];
  if (name.kind != TokKind::kIdent) return {};
  if (name.text == "if" || name.text == "for" || name.text == "while" ||
      name.text == "switch" || name.text == "catch" || name.text == "return") {
    return {};
  }
  return name.text;
}

}  // namespace

ScopeInfo analyze_scopes(const std::vector<Token>& tokens) {
  ScopeInfo info;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.pp) continue;
    if (is_punct(t, "{")) {
      std::string name = function_name_before(tokens, i);
      if (!name.empty()) {
        const std::size_t close = match_forward(tokens, i);
        if (close < tokens.size() && close > i + 1) {
          info.functions.push_back(FunctionSpan{
              std::move(name), TokenSpan{i + 1, close - 1}});
        }
      }
      continue;
    }
    const bool is_for = is_kw(t, "for");
    const bool is_while = is_kw(t, "while");
    const bool is_do = is_kw(t, "do");
    if (!is_for && !is_while && !is_do) continue;
    // `.for` / `::while` member-ish uses can't occur; keywords are safe.
    std::size_t body = tokens.size();
    if (is_do) {
      body = i + 1;
    } else {
      // Skip the parenthesized header.
      std::size_t p = i + 1;
      while (p < tokens.size() && tokens[p].pp) ++p;
      if (p >= tokens.size() || !is_punct(tokens[p], "(")) continue;
      const std::size_t close = match_forward(tokens, p);
      if (close >= tokens.size()) continue;
      body = close + 1;
    }
    while (body < tokens.size() && tokens[body].pp) ++body;
    if (body >= tokens.size()) continue;
    if (is_punct(tokens[body], "{")) {
      const std::size_t close = match_forward(tokens, body);
      if (close < tokens.size() && close > body + 1) {
        info.loop_bodies.push_back(TokenSpan{body + 1, close - 1});
      }
    } else {
      // Single-statement body: up to the ';' at the same depth.
      std::size_t e = body;
      while (e < tokens.size() &&
             !(is_punct(tokens[e], ";") &&
               tokens[e].brace_depth == tokens[body].brace_depth &&
               tokens[e].paren_depth == tokens[body].paren_depth)) {
        ++e;
      }
      if (e > body) info.loop_bodies.push_back(TokenSpan{body, e});
    }
  }
  return info;
}

}  // namespace sic::lint
