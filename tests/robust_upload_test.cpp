/// Failure-path tests of the closed-loop scheduled executor: injected
/// cancellation failures, ACK loss, stale-RSS re-matching, and the
/// zero-fault bit-identity guarantee.

#include "mac/upload_sim.hpp"

#include <gtest/gtest.h>

#include <initializer_list>
#include <vector>

#include "core/scheduler.hpp"

namespace sic::mac {
namespace {

constexpr Milliwatts kN0{1.0};
const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

std::vector<channel::LinkBudget> clients_db(
    std::initializer_list<double> snrs) {
  std::vector<channel::LinkBudget> out;
  for (const double db : snrs) {
    out.push_back(channel::LinkBudget{Milliwatts{Decibels{db}.linear()}, kN0});
  }
  return out;
}

TEST(RobustUpload, CancellationFailureFallsBackToSerialAndCompletes) {
  // Every SIC-path decode is force-failed: the weaker frame of the pair
  // can never ride the collision. The closed loop must recover it on a
  // clean solo retry (immune to cancellation faults) and lose nothing.
  const auto clients = clients_db({24.0, 12.0});
  const auto schedule = core::schedule_upload(clients, kShannon, {});
  ASSERT_EQ(schedule.slots.size(), 1u);
  ASSERT_NE(schedule.slots[0].plan.mode, core::PairMode::kSerial);

  UploadSimConfig config;
  config.faults.cancellation_failure_prob = 1.0;
  const auto result = run_scheduled_upload(clients, kShannon, schedule, config);
  EXPECT_EQ(result.offered, 2u);
  EXPECT_EQ(result.failures.unrecovered, 0u);
  EXPECT_GE(result.failures.cancellation_failures, 1u);
  EXPECT_GE(result.failures.recovered, 1u);
  EXPECT_GE(result.failures.mode_demotions, 1u);
  EXPECT_GE(result.retries, 1u);
}

TEST(RobustUpload, OpenLoopDropsWhatClosedLoopRecovers) {
  const auto clients = clients_db({24.0, 12.0});
  const auto schedule = core::schedule_upload(clients, kShannon, {});
  UploadSimConfig config;
  config.faults.cancellation_failure_prob = 1.0;
  config.recovery.enabled = false;
  const auto result = run_scheduled_upload(clients, kShannon, schedule, config);
  EXPECT_GE(result.failures.unrecovered, 1u);
  EXPECT_EQ(result.retries, 0u);
  EXPECT_LT(result.delivered, result.offered);
  // The abandoned frame died of an injected cancellation failure, and the
  // terminal-cause split always accounts for every unrecovered frame.
  EXPECT_GE(result.failures.gave_up_cancellation, 1u);
  EXPECT_EQ(result.failures.gave_up_rate_miss +
                result.failures.gave_up_cancellation +
                result.failures.gave_up_ack_loss +
                result.failures.gave_up_unattempted,
            result.failures.unrecovered);
  std::uint64_t per_client_sum = 0;
  for (const std::uint64_t lost : result.unrecovered_per_client) {
    per_client_sum += lost;
  }
  EXPECT_EQ(per_client_sum, result.failures.unrecovered);
}

TEST(RobustUpload, CertainAckLossAccountsDuplicatesExactly) {
  // p = 1: the station never hears an ACK, retransmits until its attempt
  // budget runs out, and every retransmission is a duplicate at the AP.
  const auto clients = clients_db({20.0});
  const auto schedule = core::schedule_upload(clients, kShannon, {});
  UploadSimConfig config;
  config.faults.ack_loss_prob = 1.0;
  const auto result = run_scheduled_upload(clients, kShannon, schedule, config);
  const auto attempts =
      static_cast<std::uint64_t>(config.recovery.max_attempts_per_frame);
  EXPECT_EQ(result.offered, 1u);
  EXPECT_EQ(result.delivered, attempts);  // AP decoded every transmission
  EXPECT_EQ(result.failures.duplicate_deliveries, attempts - 1);
  EXPECT_EQ(result.failures.ack_losses, attempts);
  EXPECT_EQ(result.failures.unrecovered, 1u);  // never confirmed
  EXPECT_EQ(result.failures.recovered, 0u);
  // Terminal-cause attribution: the budget ran out on ACK loss, and the
  // per-client split points at the only client.
  EXPECT_EQ(result.failures.gave_up_ack_loss, 1u);
  EXPECT_EQ(result.failures.gave_up_rate_miss, 0u);
  EXPECT_EQ(result.failures.gave_up_cancellation, 0u);
  EXPECT_EQ(result.failures.gave_up_unattempted, 0u);
  ASSERT_EQ(result.unrecovered_per_client.size(), 1u);
  EXPECT_EQ(result.unrecovered_per_client[0], 1u);
}

TEST(RobustUpload, OccasionalAckLossRecoversViaDuplicate) {
  const auto clients = clients_db({22.0, 18.0, 14.0, 10.0});
  const auto schedule = core::schedule_upload(clients, kShannon, {});
  UploadSimConfig config;
  config.faults.ack_loss_prob = 0.5;
  bool saw_duplicate = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    config.seed = seed;
    const auto result =
        run_scheduled_upload(clients, kShannon, schedule, config);
    EXPECT_EQ(result.failures.unrecovered, 0u) << "seed " << seed;
    EXPECT_EQ(result.failures.duplicate_deliveries, result.failures.ack_losses)
        << "seed " << seed;
    saw_duplicate |= result.failures.duplicate_deliveries > 0;
  }
  EXPECT_TRUE(saw_duplicate);
}

TEST(RobustUpload, OddClientCountSurvivesRematching) {
  // Five clients under heavy drift: re-matching repeatedly runs the
  // blossom reduction on odd residual backlogs (dummy-vertex path) and
  // must still confirm every frame.
  const auto clients = clients_db({26.0, 21.0, 17.0, 12.0, 8.0});
  const auto schedule = core::schedule_upload(clients, kShannon, {});
  UploadSimConfig config;
  config.faults.stale_rss_sigma = Decibels{6.0};
  config.faults.stale_rss_rho = 0.9;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    config.seed = seed;
    const auto result =
        run_scheduled_upload(clients, kShannon, schedule, config);
    EXPECT_EQ(result.failures.unrecovered, 0u) << "seed " << seed;
  }
}

TEST(RobustUpload, AcceptanceCombinedFaultsClosedLoopLosesNothing) {
  // The headline criterion: 1% cancellation failures + 4 dB stale RSS +
  // 1% ACK loss. Closed loop: zero unrecovered drops on every seed.
  // Open loop: losses on at least some seeds.
  const auto clients =
      clients_db({27.0, 24.0, 21.0, 18.0, 15.0, 12.0, 9.0, 6.0});
  const auto schedule = core::schedule_upload(clients, kShannon, {});
  UploadSimConfig config;
  config.faults.stale_rss_sigma = Decibels{4.0};
  config.faults.stale_rss_rho = 0.9;
  config.faults.cancellation_failure_prob = 0.01;
  config.faults.ack_loss_prob = 0.01;

  std::uint64_t open_loop_drops = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    config.seed = seed;
    config.recovery.enabled = true;
    const auto closed =
        run_scheduled_upload(clients, kShannon, schedule, config);
    EXPECT_EQ(closed.failures.unrecovered, 0u) << "seed " << seed;
    EXPECT_EQ(closed.drops, 0u) << "seed " << seed;
    config.recovery.enabled = false;
    const auto open = run_scheduled_upload(clients, kShannon, schedule, config);
    open_loop_drops += open.failures.unrecovered;
  }
  EXPECT_GT(open_loop_drops, 0u);
}

TEST(RobustUpload, ZeroFaultsMatchesOpenLoopBitForBit) {
  // With every fault knob at zero the recovery layer must never engage:
  // identical results (including the event-driven completion time) with
  // recovery on or off, and an all-zero telemetry block.
  const auto clients = clients_db({30.0, 24.0, 15.0, 12.0, 20.0, 10.0});
  core::SchedulerOptions options;
  options.enable_power_control = true;
  options.enable_multirate = true;
  const auto schedule = core::schedule_upload(clients, kShannon, options);

  UploadSimConfig config;
  config.recovery.enabled = true;
  const auto closed = run_scheduled_upload(clients, kShannon, schedule, config);
  config.recovery.enabled = false;
  const auto open = run_scheduled_upload(clients, kShannon, schedule, config);

  EXPECT_EQ(closed.completion_s, open.completion_s);  // exact, not near
  EXPECT_EQ(closed.delivered, open.delivered);
  EXPECT_EQ(closed.delivered, closed.offered);
  EXPECT_EQ(closed.retries, 0u);
  EXPECT_EQ(closed.drops, 0u);
  EXPECT_EQ(closed.failures.rate_misses, 0u);
  EXPECT_EQ(closed.failures.cancellation_failures, 0u);
  EXPECT_EQ(closed.failures.ack_losses, 0u);
  EXPECT_EQ(closed.failures.duplicate_deliveries, 0u);
  EXPECT_EQ(closed.failures.mode_demotions, 0u);
  EXPECT_EQ(closed.failures.client_demotions, 0u);
  EXPECT_EQ(closed.failures.rematch_rounds, 0u);
  EXPECT_EQ(closed.failures.recovered, 0u);
  EXPECT_EQ(closed.failures.unrecovered, 0u);
  EXPECT_EQ(closed.failures.gave_up_rate_miss, 0u);
  EXPECT_EQ(closed.failures.gave_up_cancellation, 0u);
  EXPECT_EQ(closed.failures.gave_up_ack_loss, 0u);
  EXPECT_EQ(closed.failures.gave_up_unattempted, 0u);
  for (const std::uint64_t lost : closed.unrecovered_per_client) {
    EXPECT_EQ(lost, 0u);
  }
}

TEST(RobustUpload, StaleRssDemotesChronicFailures) {
  // A fully decorrelated channel (rho = 0) makes every re-estimate stale
  // again by flight time, so some client fails repeatedly; after
  // demote_after_failures it must drain solo and the run must still
  // confirm everything.
  const auto clients = clients_db({25.0, 23.0, 21.0, 19.0});
  const auto schedule = core::schedule_upload(clients, kShannon, {});
  UploadSimConfig config;
  config.faults.stale_rss_sigma = Decibels{8.0};
  config.faults.stale_rss_rho = 0.0;
  bool saw_demotion = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    config.seed = seed;
    const auto result =
        run_scheduled_upload(clients, kShannon, schedule, config);
    EXPECT_EQ(result.failures.unrecovered, 0u) << "seed " << seed;
    saw_demotion |= result.failures.client_demotions > 0;
  }
  EXPECT_TRUE(saw_demotion);
}

}  // namespace
}  // namespace sic::mac
