#include "core/wlan_scenarios.hpp"

#include "util/check.hpp"

namespace sic::core {

WlanStudy::WlanStudy(const topology::Deployment& deployment,
                     const phy::RateAdapter& adapter, double packet_bits)
    : deployment_(&deployment),
      adapter_(&adapter),
      packet_bits_(packet_bits) {
  SIC_CHECK(packet_bits > 0.0);
}

const topology::Node& WlanStudy::node(topology::NodeId id) const {
  for (const auto& n : deployment_->nodes) {
    if (n.id == id) return n;
  }
  SIC_CHECK_MSG(false, "no such node id in deployment");
  return deployment_->nodes.front();  // unreachable
}

UploadPairContext WlanStudy::upload_pair(topology::NodeId client_a,
                                         topology::NodeId client_b,
                                         topology::NodeId ap) const {
  const auto& a = node(client_a);
  const auto& b = node(client_b);
  const auto& receiver = node(ap);
  return UploadPairContext::make(deployment_->rss(a, receiver),
                                 deployment_->rss(b, receiver),
                                 deployment_->noise(), *adapter_,
                                 packet_bits_);
}

double WlanStudy::upload_gain(topology::NodeId client_a,
                              topology::NodeId client_b,
                              topology::NodeId ap) const {
  return realized_gain(upload_pair(client_a, client_b, ap));
}

DownloadResult WlanStudy::download_to(topology::NodeId client,
                                      topology::NodeId ap1,
                                      topology::NodeId ap2) const {
  const auto& c = node(client);
  const auto ctx = UploadPairContext::make(
      deployment_->rss(node(ap1), c), deployment_->rss(node(ap2), c),
      deployment_->noise(), *adapter_, packet_bits_);
  return evaluate_download(ctx);
}

topology::NodeId WlanStudy::better_ap(topology::NodeId client,
                                      topology::NodeId ap1,
                                      topology::NodeId ap2) const {
  const auto& c = node(client);
  return deployment_->rss(node(ap1), c) >= deployment_->rss(node(ap2), c)
             ? ap1
             : ap2;
}

CrossLinkResult WlanStudy::concurrent_links(topology::NodeId ta,
                                            topology::NodeId ra,
                                            topology::NodeId tb,
                                            topology::NodeId rb) const {
  channel::TwoLinkRss rss;
  rss.s11 = deployment_->rss(node(ta), node(ra));
  rss.s12 = deployment_->rss(node(tb), node(ra));
  rss.s21 = deployment_->rss(node(ta), node(rb));
  rss.s22 = deployment_->rss(node(tb), node(rb));
  rss.noise = deployment_->noise();
  return evaluate_cross_link(rss, *adapter_, packet_bits_);
}

WlanStudy::FreeAssociationReport WlanStudy::upload_with_free_association(
    topology::NodeId client_a, topology::NodeId client_b,
    topology::NodeId ap1, topology::NodeId ap2) const {
  FreeAssociationReport report;
  report.ap_for_a = better_ap(client_a, ap1, ap2);
  report.ap_for_b = better_ap(client_b, ap1, ap2);
  report.result =
      concurrent_links(client_a, report.ap_for_a, client_b, report.ap_for_b);
  report.sic_needed = report.result.kase != CrossLinkCase::kCaptureBoth;
  return report;
}

}  // namespace sic::core
