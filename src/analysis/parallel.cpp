#include "analysis/parallel.hpp"

namespace sic::analysis {

SweepObsMerger::SweepObsMerger() : caller_(obs::metrics()) {}

SweepObsMerger::~SweepObsMerger() {
  // Runs on the sweep's calling thread after parallel_for returned, so the
  // fold into the caller's registry needs no lock.
  if (caller_ != nullptr) caller_->merge_from(merged_);
}

SweepObsMerger::ChunkScope::ChunkScope(SweepObsMerger& merger)
    : merger_(merger), previous_(obs::set_metrics(&registry_)) {}

SweepObsMerger::ChunkScope::~ChunkScope() {
  obs::set_metrics(previous_);
  std::lock_guard<std::mutex> lock{merger_.mu_};
  merger_.merged_.merge_from(registry_);
}

ParallelRunner::ParallelRunner(const ParallelOptions& options)
    : pool_(ThreadPool::resolve(options.threads)),
      chunk_(options.chunk_trials) {
  SIC_CHECK(options.chunk_trials >= 1);
}

}  // namespace sic::analysis
