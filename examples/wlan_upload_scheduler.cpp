/// WLAN upload scheduling end to end (Sections 5-6): a random cell of
/// backlogged clients is paired by the blossom-matching scheduler, the
/// schedule is printed, and then *executed* on the discrete-event MAC
/// simulator to confirm every planned concurrent pair actually decodes at
/// the AP — and to compare against plain CSMA/CA contention.

#include <cstdio>

#include "core/scheduler.hpp"
#include "mac/upload_sim.hpp"
#include "topology/samplers.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sic;

  // A cell of 10 clients uniformly placed around the AP.
  Rng rng{2024};
  topology::SamplerConfig cell;
  const auto clients = topology::sample_upload_clients(rng, cell, 10);
  const phy::ShannonRateAdapter adapter{megahertz(20.0)};

  std::printf("clients (sorted by RSS at AP):\n");
  for (std::size_t i = 0; i < clients.size(); ++i) {
    std::printf("  C%-2zu SNR %.1f dB, solo airtime %.0f us\n", i,
                Decibels::from_linear(clients[i].snr()).value(),
                1e6 * core::solo_airtime(clients[i], adapter, 12000.0));
  }

  core::SchedulerOptions options;
  options.enable_power_control = true;
  const auto schedule = core::schedule_upload(clients, adapter, options);
  const double serial = core::serial_upload_airtime(clients, adapter, 12000.0);

  std::printf("\nSIC-aware schedule (blossom pairing + power control):\n");
  for (const auto& slot : schedule.slots) {
    if (slot.second < 0) {
      std::printf("  C%-2d solo              %8.0f us\n", slot.first,
                  1e6 * slot.plan.airtime);
    } else {
      std::printf("  C%-2d + C%-2d %-12s %8.0f us", slot.first, slot.second,
                  to_string(slot.plan.mode), 1e6 * slot.plan.airtime);
      if (slot.plan.mode == core::PairMode::kSicPowerControl) {
        std::printf("  (weaker scaled %.2f)", slot.plan.weaker_power_scale);
      }
      std::printf("\n");
    }
  }
  std::printf("total: %.0f us vs serial %.0f us  -> gain %.2fx\n",
              1e6 * schedule.total_airtime, 1e6 * serial,
              serial / schedule.total_airtime);

  // Execute the schedule on the simulator: every planned pair must decode.
  mac::UploadSimConfig sim;
  const auto run = mac::run_scheduled_upload(clients, adapter, schedule, sim);
  std::printf("\nsimulator: %llu/%llu frames decoded at the AP, "
              "%llu via SIC, completion %.1f ms\n",
              static_cast<unsigned long long>(run.delivered),
              static_cast<unsigned long long>(run.offered),
              static_cast<unsigned long long>(run.medium.sic_decodes),
              1e3 * run.completion_s);

  // Baseline: the same backlog under plain CSMA/CA contention.
  mac::UploadSimConfig dcf;
  dcf.frames_per_client = 1;
  const auto contention = mac::run_dcf_upload(clients, adapter, dcf);
  std::printf("plain DCF: %llu/%llu delivered, %llu retries, "
              "completion %.1f ms\n",
              static_cast<unsigned long long>(contention.delivered),
              static_cast<unsigned long long>(contention.offered),
              static_cast<unsigned long long>(contention.retries),
              1e3 * contention.completion_s);
  return 0;
}
