/// Reproduces Fig. 3: relative capacity gain C(+SIC)/C(−SIC) over the
/// (S1, S2) plane. "SIC capacity gains are not high in general but are
/// larger when RSSs are smaller and similar."

#include <cstdio>

#include "analysis/grid.hpp"
#include "bench_util.hpp"
#include "phy/capacity.hpp"

int main(int argc, char** argv) {
  using namespace sic;
  const bench::RunTimer timer;
  bench::header("Fig. 3 — capacity gain heatmap",
                "gain in (1,2); peaks where RSSs are small and similar");

  const Hertz b = megahertz(20.0);
  analysis::Grid2D grid{{"S1 (dB)", 0.0, 40.0, 41}, {"S2 (dB)", 0.0, 40.0, 41}};
  grid.fill([&](double s1_db, double s2_db) {
    const auto arrival = phy::TwoSignalArrival::make(
        Milliwatts{Decibels{s1_db}.linear()},
        Milliwatts{Decibels{s2_db}.linear()}, Milliwatts{1.0});
    return phy::capacity_gain(b, arrival);
  });

  std::printf("%s\n", grid.render_ascii().c_str());
  std::printf("max gain %.4f (at the low-SNR equal-RSS corner)\n",
              grid.max_value());
  std::printf("min gain %.4f (high disparate SNRs)\n", grid.min_value());
  std::printf("gain on the diagonal: ");
  for (double s : {0.0, 10.0, 20.0, 30.0, 40.0}) {
    std::printf(" S=%g:%.3f", s, grid.nearest(s, s));
  }
  std::printf("\ngain off-diagonal (S2 = S1 - 20 dB): ");
  for (double s : {20.0, 30.0, 40.0}) {
    std::printf(" S1=%g:%.3f", s, grid.nearest(s, s - 20.0));
  }
  std::printf("\n");
  if (const auto prefix = bench::csv_prefix(argc, argv)) {
    bench::write_text_file(
        *prefix + "fig03_gain_grid.csv",
        bench::manifest(/*seed=*/0, timer, 41 * 41) + grid.to_csv());
  }
  return 0;
}
