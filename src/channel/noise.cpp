#include "channel/noise.hpp"

#include <cmath>

#include "util/check.hpp"

namespace sic::channel {

Dbm thermal_noise_floor(Hertz bandwidth, Decibels noise_figure) {
  SIC_CHECK(bandwidth.value() > 0.0);
  // 10·log10(B/1 Hz) via the strong-type conversion (bit-identical to the
  // former hand-rolled form: from_linear is exactly 10·log10).
  const double dbm = -174.0 + Decibels::from_linear(bandwidth.value()).value() +
                     noise_figure.value();
  return Dbm{dbm};
}

Milliwatts default_noise_floor() {
  static const Milliwatts floor =
      thermal_noise_floor(megahertz(20.0)).to_milliwatts();
  return floor;
}

}  // namespace sic::channel
