#include "obs/logger.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace sic::obs {

namespace {

LogLevel initial_level() {
  const char* env = std::getenv("SICMAC_LOG_LEVEL");
  if (env != nullptr) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
    std::fprintf(stderr, "[sic warn] SICMAC_LOG_LEVEL=%s not recognized "
                         "(use off|error|warn|info|debug)\n", env);
  }
  return LogLevel::kOff;
}

LogLevel& level_ref() {
  static LogLevel level = initial_level();
  return level;
}

std::ostream* g_sink = nullptr;

}  // namespace

LogLevel log_level() { return level_ref(); }

void set_log_level(LogLevel level) { level_ref() = level; }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "off") return LogLevel::kOff;
  if (name == "error") return LogLevel::kError;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "info") return LogLevel::kInfo;
  if (name == "debug") return LogLevel::kDebug;
  return std::nullopt;
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kOff: return "off";
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

void logf(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  char body[1024];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof(body), fmt, ap);
  va_end(ap);
  if (g_sink != nullptr) {
    *g_sink << "[sic " << to_string(level) << "] " << body << '\n';
  } else {
    std::fprintf(stderr, "[sic %s] %s\n", to_string(level), body);
  }
}

std::ostream* set_log_sink(std::ostream* sink) {
  std::ostream* previous = g_sink;
  g_sink = sink;
  return previous;
}

}  // namespace sic::obs
