#include "obs/json_util.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>

namespace sic::obs::detail {

std::string format_double(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  if (v == 0.0) return "0";
  char buf[32];
  // Try increasing precision until the value round-trips.
  for (int prec = 6; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void append_json_string(std::ostream& os, std::string_view text) {
  os << '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
  os << '"';
}

}  // namespace sic::obs::detail
