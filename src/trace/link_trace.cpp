#include "trace/link_trace.hpp"

#include "channel/pathloss.hpp"
#include "channel/shadowing.hpp"
#include "topology/geometry.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sic::trace {

LinkTrace::LinkTrace(int n_aps, int n_locations)
    : n_aps_(n_aps),
      n_locations_(n_locations),
      snr_(static_cast<std::size_t>(n_aps) * n_locations, Decibels{0.0}) {
  SIC_CHECK(n_aps >= 1 && n_locations >= 1);
}

Decibels LinkTrace::snr(int ap, int location) const {
  SIC_DCHECK(ap >= 0 && ap < n_aps_ && location >= 0 &&
             location < n_locations_);
  return snr_[static_cast<std::size_t>(ap) * n_locations_ + location];
}

void LinkTrace::set_snr(int ap, int location, Decibels snr) {
  SIC_DCHECK(ap >= 0 && ap < n_aps_ && location >= 0 &&
             location < n_locations_);
  snr_[static_cast<std::size_t>(ap) * n_locations_ + location] = snr;
}

BitsPerSecond LinkTrace::clean_rate(int ap, int location,
                                    const phy::RateTable& table) const {
  return table.best_rate(snr(ap, location));
}

BitsPerSecond LinkTrace::rate_under_interference(
    int ap, int interferer, int location, const phy::RateTable& table) const {
  SIC_CHECK(ap != interferer);
  // SINR in linear domain: S / (I + 1) with unit-normalized noise.
  const double s = snr(ap, location).linear();
  const double i = snr(interferer, location).linear();
  const double sinr = s / (i + 1.0);
  if (sinr <= 0.0) return BitsPerSecond{0.0};
  return table.best_rate(Decibels::from_linear(sinr));
}

channel::TwoLinkRss LinkTrace::two_link_rss(int ap1, int loc1, int ap2,
                                            int loc2) const {
  SIC_CHECK(ap1 != ap2 && loc1 != loc2);
  channel::TwoLinkRss rss;
  rss.s11 = Milliwatts{snr(ap1, loc1).linear()};
  rss.s12 = Milliwatts{snr(ap2, loc1).linear()};
  rss.s21 = Milliwatts{snr(ap1, loc2).linear()};
  rss.s22 = Milliwatts{snr(ap2, loc2).linear()};
  rss.noise = Milliwatts{1.0};
  return rss;
}

LinkTrace generate_link_trace(const LinkTraceConfig& config,
                              std::uint64_t seed) {
  SIC_CHECK(config.n_aps >= 2 && config.n_client_locations >= 2);
  Rng rng{seed};
  LinkTrace trace{config.n_aps, config.n_client_locations};

  // APs along a corridor at y = 0; client locations in rooms on both sides.
  std::vector<topology::Point> aps;
  for (int a = 0; a < config.n_aps; ++a) {
    aps.push_back(topology::Point{a * config.ap_spacing_m, 0.0});
  }
  const double x_max = (config.n_aps - 1) * config.ap_spacing_m;

  const auto pathloss =
      channel::LogDistancePathLoss::for_carrier(config.pathloss_exponent);
  const channel::LogNormalShadowing shadowing{config.shadowing_sigma};
  const Dbm tx = config.ap_tx_power;
  const Dbm noise = config.noise_floor;

  for (int loc = 0; loc < config.n_client_locations; ++loc) {
    const topology::Point p = topology::random_in_rect(
        rng, -5.0, -config.room_depth_m, x_max + 5.0, config.room_depth_m);
    for (int a = 0; a < config.n_aps; ++a) {
      const double d = topology::distance(p, aps[static_cast<std::size_t>(a)]);
      const Dbm rssi = pathloss.received_power(tx, d) + shadowing.sample(rng);
      trace.set_snr(a, loc, rssi - noise);
    }
  }
  return trace;
}

}  // namespace sic::trace
