#ifndef SICMAC_ANALYSIS_GRID_HPP
#define SICMAC_ANALYSIS_GRID_HPP

/// \file grid.hpp
/// 2-D parameter sweeps for the heatmap figures (Figs. 3, 4, 8): evaluate a
/// function over an (x, y) grid, keep the values, and render them as an
/// ASCII shade map or CSV for the bench binaries.

#include <functional>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace sic::analysis {

/// A dense grid of doubles with axis metadata.
class Grid2D {
 public:
  struct Axis {
    std::string label;
    double lo = 0.0;
    double hi = 1.0;
    int steps = 0;

    [[nodiscard]] double value(int i) const {
      SIC_DCHECK(i >= 0 && i < steps);
      return steps > 1 ? lo + (hi - lo) * i / (steps - 1) : lo;
    }
  };

  Grid2D(Axis x, Axis y);

  /// Fills every cell with f(x_value, y_value).
  void fill(const std::function<double(double, double)>& f);

  [[nodiscard]] double at(int ix, int iy) const;
  void set(int ix, int iy, double v);

  [[nodiscard]] const Axis& x() const { return x_; }
  [[nodiscard]] const Axis& y() const { return y_; }

  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;

  /// Value at the grid cell whose (x, y) is nearest the query.
  [[nodiscard]] double nearest(double x, double y) const;

  /// ASCII shade map, y increasing upward, using the ramp " .:-=+*#%@"
  /// normalized to [min, max]. Matches the paper's "lighter shade = higher
  /// gain" reading when viewed on a dark terminal.
  [[nodiscard]] std::string render_ascii() const;

  /// CSV: header "x,y,value", one row per cell.
  [[nodiscard]] std::string to_csv() const;

 private:
  Axis x_;
  Axis y_;
  std::vector<double> values_;
};

}  // namespace sic::analysis

#endif  // SICMAC_ANALYSIS_GRID_HPP
