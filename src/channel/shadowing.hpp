#ifndef SICMAC_CHANNEL_SHADOWING_HPP
#define SICMAC_CHANNEL_SHADOWING_HPP

/// \file shadowing.hpp
/// Log-normal shadowing: a zero-mean Gaussian perturbation in the dB domain
/// layered on top of a deterministic path-loss model. The synthetic trace
/// generator uses it to reproduce the RSS dispersion a real building trace
/// exhibits (DESIGN.md, substitution 1).

#include "util/rng.hpp"
#include "util/units.hpp"

namespace sic::channel {

/// Draws i.i.d. shadowing samples; σ ≈ 4-8 dB is typical indoors.
class LogNormalShadowing {
 public:
  explicit LogNormalShadowing(Decibels sigma) : sigma_(sigma) {}

  /// One shadowing realization (may be positive or negative).
  [[nodiscard]] Decibels sample(Rng& rng) const {
    return Decibels{rng.normal(0.0, sigma_.value())};
  }

  [[nodiscard]] Decibels sigma() const { return sigma_; }

 private:
  Decibels sigma_;
};

}  // namespace sic::channel

#endif  // SICMAC_CHANNEL_SHADOWING_HPP
