#ifndef SICMAC_OBS_TRACE_SINK_HPP
#define SICMAC_OBS_TRACE_SINK_HPP

/// \file trace_sink.hpp
/// Chrome-trace-format event sink: one JSON event object per line, inside
/// the JSON-array framing whose closing bracket the format spec makes
/// optional precisely so writers can append and crash safely. The output
/// opens directly in Perfetto (ui.perfetto.dev) or chrome://tracing and
/// shows an upload-sim run as a timeline: rounds and slots as spans,
/// retries / mode degradations / decode failures as instant events, one
/// track (tid) per client.
///
/// Timestamps are microseconds (the format's unit). Simulator code passes
/// *sim time*; wall-clock instrumentation (SIC_SPAN) passes time since
/// process start. The two are never mixed in one file: a sink records
/// whatever timebase its writers use.
///
/// Like the metrics registry, a sink is a pure observer: it must never
/// influence simulation behavior, and all instrumented call sites treat a
/// null `obs::trace()` as "emit nothing".

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sic::obs {

class TraceSink {
 public:
  /// Key/value annotations attached to an event's "args" object. Values
  /// are emitted verbatim when they parse as plain JSON numbers and as
  /// escaped strings otherwise, so call sites can pass either.
  using Args = std::vector<std::pair<std::string, std::string>>;

  /// Events are written to \p os as they are recorded; the stream must
  /// outlive the sink. The array-open bracket is written immediately.
  explicit TraceSink(std::ostream& os);
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Complete span ("ph":"X"): [ts_us, ts_us + dur_us) on track \p tid.
  void complete(std::string_view name, double ts_us, double dur_us,
                int tid = 0, const Args& args = {});

  /// Begin/end span pair ("ph":"B"/"E"); must nest properly per track.
  void begin(std::string_view name, double ts_us, int tid = 0,
             const Args& args = {});
  void end(std::string_view name, double ts_us, int tid = 0);

  /// Instant event ("ph":"i", thread scope).
  void instant(std::string_view name, double ts_us, int tid = 0,
               const Args& args = {});

  /// Names a track so the viewer shows e.g. "client 3" instead of a bare
  /// tid (metadata event "thread_name").
  void name_track(int tid, std::string_view name);

  void flush();

  [[nodiscard]] std::uint64_t events_written() const { return events_; }

 private:
  void event(char ph, std::string_view name, double ts_us, double dur_us,
             int tid, const Args& args, bool metadata = false);

  std::ostream* os_;
  std::uint64_t events_ = 0;
};

/// Thread-local attach point, same contract as obs::metrics(): a sink
/// attached on one thread is invisible to others, so pool workers never
/// race on it (their spans are simply dropped — see DESIGN.md "Parallel
/// sweeps").
[[nodiscard]] TraceSink* trace();
TraceSink* set_trace(TraceSink* sink);

}  // namespace sic::obs

#endif  // SICMAC_OBS_TRACE_SINK_HPP
