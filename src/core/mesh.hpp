#ifndef SICMAC_CORE_MESH_HPP
#define SICMAC_CORE_MESH_HPP

/// \file mesh.hpp
/// Section 4.3: multihop mesh self-interference. For a relay chain
/// A → C → D → E (long, short, long hops — Fig. 7c), the A→C and D→E
/// transmissions can run concurrently *if* C can decode D's strong
/// interfering signal and cancel it ("a perfect recipe for SIC at C").
/// The module evaluates the steady-state relay pipeline: without SIC the
/// three hops serialize; with SIC the two long hops overlap and the cycle
/// shrinks — until the hops get short enough that D's rate to E exceeds
/// what C can decode, and SIC switches off.

#include "core/cross_link.hpp"
#include "phy/rate_adapter.hpp"
#include "topology/scenarios.hpp"

namespace sic::core {

struct MeshChainReport {
  /// Whether C can decode-and-cancel D→E while receiving A→C.
  bool sic_feasible_at_relay = false;
  /// The underlying §3.2 analysis of the concurrent pair (A→C, D→E).
  CrossLinkResult cross;
  /// One relay cycle (one packet advanced end-to-end), seconds.
  double serial_cycle_s = 0.0;     ///< A→C, then C→D, then D→E
  double pipelined_cycle_s = 0.0;  ///< max(A→C, D→E) concurrent, then C→D
  /// End-to-end throughput for a saturated pipeline, bits/s.
  double serial_throughput_bps = 0.0;
  double pipelined_throughput_bps = 0.0;
  /// pipelined/serial throughput; 1.0 when SIC is infeasible.
  double gain = 1.0;
};

/// Analyzes a 4-node chain deployment (node order A, C, D, E, as built by
/// topology::make_mesh_chain).
[[nodiscard]] MeshChainReport analyze_mesh_chain(
    const topology::Deployment& chain, const phy::RateAdapter& adapter,
    double packet_bits = 12000.0);

}  // namespace sic::core

#endif  // SICMAC_CORE_MESH_HPP
