/// sic_lint CLI — lints the given files and exits non-zero on findings.
///
///   sic_lint [--baseline FILE] [--print-baseline] FILE...
///
///   --baseline FILE    R2 findings listed in FILE (path:identifier lines)
///                      are accepted debt; stale entries fail the run.
///   --print-baseline   Instead of failing, print the R2 findings in
///                      baseline format (to regenerate the baseline file).
///
/// Output format: path:line: [rule] message

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  bool print_baseline = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      if (i + 1 >= argc) {
        std::cerr << "sic_lint: --baseline needs a file argument\n";
        return 2;
      }
      baseline_path = argv[++i];
    } else if (arg == "--print-baseline") {
      print_baseline = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sic_lint [--baseline FILE] [--print-baseline] "
                   "FILE...\n";
      return 0;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "sic_lint: no input files\n";
    return 2;
  }

  std::vector<std::string> baseline;
  if (!baseline_path.empty()) {
    std::string text;
    if (!read_file(baseline_path, text)) {
      std::cerr << "sic_lint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    baseline = sic::lint::parse_baseline(text);
  }

  std::vector<sic::lint::Finding> findings;
  for (const std::string& file : files) {
    std::string source;
    if (!read_file(file, source)) {
      std::cerr << "sic_lint: cannot read " << file << "\n";
      return 2;
    }
    auto file_findings = sic::lint::lint_file(file, source);
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }

  if (print_baseline) {
    std::cout << "# sic_lint R2 baseline — accepted raw-double unit-suffix "
                 "debt.\n# One path:identifier per line; regenerate with "
                 "`sic_lint --print-baseline`.\n";
    for (const auto& f : findings) {
      if (f.rule == "R2") std::cout << f.path << ":" << f.symbol << "\n";
    }
    return 0;
  }

  findings = sic::lint::apply_baseline(std::move(findings), baseline);
  for (const auto& f : findings) {
    std::cout << sic::lint::format_finding(f) << "\n";
  }
  if (!findings.empty()) {
    std::cerr << "sic_lint: " << findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
