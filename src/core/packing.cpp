#include "core/packing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace sic::core {

PackingResult packing_two_to_one(const UploadPairContext& ctx) {
  SIC_CHECK(ctx.adapter != nullptr);
  const auto rates = sic_rates(ctx);
  const double l = ctx.packet_bits;
  const double t_strong = airtime_seconds(l, rates.stronger);
  const double t_weak = airtime_seconds(l, rates.weaker);

  PackingResult out;
  const double serial_pair = serial_airtime(ctx);
  if (!std::isfinite(t_strong) || !std::isfinite(t_weak)) {
    // SIC infeasible for the pair: packing cannot engage; the serial
    // exchange defines both sides of the ratio.
    out.span = serial_pair;
    out.time_per_packet = serial_pair / 2.0;
    out.serial_time_per_packet = out.time_per_packet;
    out.gain = 1.0;
    return out;
  }

  const double t_fast = std::min(t_strong, t_weak);
  const double t_slow = std::max(t_strong, t_weak);
  const bool strong_is_slow = t_strong >= t_weak;
  const int k = std::max(1, static_cast<int>(std::floor(t_slow / t_fast)));

  // Clean per-packet serial times for each side.
  const auto& a = ctx.arrival;
  const double t_strong_clean =
      airtime_seconds(l, ctx.adapter->rate(a.stronger / a.noise));
  const double t_weak_clean =
      airtime_seconds(l, ctx.adapter->rate(a.weaker / a.noise));
  const double t_fast_clean = strong_is_slow ? t_weak_clean : t_strong_clean;
  const double t_slow_clean = strong_is_slow ? t_strong_clean : t_weak_clean;

  out.fast_packets = k;
  out.span = std::max(t_slow, k * t_fast);
  out.time_per_packet = out.span / (k + 1);
  out.serial_time_per_packet = (k * t_fast_clean + t_slow_clean) / (k + 1);
  out.gain = out.serial_time_per_packet / out.time_per_packet;
  if (out.gain < 1.0) {
    // A rational MAC falls back to serial exchange.
    out.fast_packets = 1;
    out.span = serial_pair;
    out.time_per_packet = serial_pair / 2.0;
    out.serial_time_per_packet = out.time_per_packet;
    out.gain = 1.0;
  }
  return out;
}

double packing_fluid_gain(const UploadPairContext& ctx) {
  SIC_CHECK(ctx.adapter != nullptr);
  const auto rates = sic_rates(ctx);
  const double sum_rate = rates.stronger.value() + rates.weaker.value();
  if (sum_rate <= 0.0) return 1.0;
  const double packed_per_packet = 2.0 * ctx.packet_bits / sum_rate / 2.0;
  const double serial_per_packet = serial_airtime(ctx) / 2.0;
  if (!std::isfinite(serial_per_packet)) return 1.0;
  return std::max(1.0, serial_per_packet / packed_per_packet);
}

}  // namespace sic::core
