/// Multi-AP deployment engine: single-AP bit-identity with the existing
/// closed-loop executor, thread-count invariance (results and obs counter
/// maps), handoff hysteresis, quarantine/readmission, the stuck-AP
/// watchdog, and the epoch invariant auditor.

#include "mac/deployment_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/scheduler.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace sic::mac {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

void expect_same_run(const UploadSimResult& a, const UploadSimResult& b,
                     int epoch) {
  EXPECT_EQ(a.completion_s, b.completion_s) << "epoch " << epoch;
  EXPECT_EQ(a.offered, b.offered) << "epoch " << epoch;
  EXPECT_EQ(a.delivered, b.delivered) << "epoch " << epoch;
  EXPECT_EQ(a.retries, b.retries) << "epoch " << epoch;
  EXPECT_EQ(a.drops, b.drops) << "epoch " << epoch;
  EXPECT_EQ(a.medium.transmissions, b.medium.transmissions) << epoch;
  EXPECT_EQ(a.medium.delivered, b.medium.delivered) << epoch;
  EXPECT_EQ(a.medium.sic_decodes, b.medium.sic_decodes) << epoch;
  EXPECT_EQ(a.failures.rate_misses, b.failures.rate_misses) << epoch;
  EXPECT_EQ(a.failures.cancellation_failures, b.failures.cancellation_failures)
      << epoch;
  EXPECT_EQ(a.failures.ack_losses, b.failures.ack_losses) << epoch;
  EXPECT_EQ(a.failures.retransmissions, b.failures.retransmissions) << epoch;
  EXPECT_EQ(a.failures.recovered, b.failures.recovered) << epoch;
  EXPECT_EQ(a.failures.unrecovered, b.failures.unrecovered) << epoch;
  EXPECT_EQ(a.unrecovered_per_client, b.unrecovered_per_client) << epoch;
}

void expect_same_epoch(const EpochStats& a, const EpochStats& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.offered, b.offered) << "epoch " << a.epoch;
  EXPECT_EQ(a.confirmed, b.confirmed) << "epoch " << a.epoch;
  EXPECT_EQ(a.unrecovered, b.unrecovered) << "epoch " << a.epoch;
  EXPECT_EQ(a.deferred, b.deferred) << "epoch " << a.epoch;
  EXPECT_EQ(a.decisions, b.decisions) << "epoch " << a.epoch;
  EXPECT_EQ(a.handoffs, b.handoffs) << "epoch " << a.epoch;
  EXPECT_EQ(a.rematched_aps, b.rematched_aps) << "epoch " << a.epoch;
  EXPECT_EQ(a.outages_started, b.outages_started) << "epoch " << a.epoch;
  EXPECT_EQ(a.bursts_started, b.bursts_started) << "epoch " << a.epoch;
  EXPECT_EQ(a.arrivals, b.arrivals) << "epoch " << a.epoch;
  EXPECT_EQ(a.departures, b.departures) << "epoch " << a.epoch;
  EXPECT_EQ(a.quarantines, b.quarantines) << "epoch " << a.epoch;
  EXPECT_EQ(a.readmissions, b.readmissions) << "epoch " << a.epoch;
  EXPECT_EQ(a.ladder_steps, b.ladder_steps) << "epoch " << a.epoch;
  EXPECT_EQ(a.watchdog_fires, b.watchdog_fires) << "epoch " << a.epoch;
}

/// A line of clients at varied distances from one AP at the origin.
std::vector<topology::Point> line_clients(int n, double start_m,
                                          double step_m) {
  std::vector<topology::Point> out;
  for (int i = 0; i < n; ++i) {
    out.push_back({start_m + step_m * i, 0.0});
  }
  return out;
}

TEST(DeploymentEngine, SingleApNoChaosBitIdenticalToClosedLoopExecutor) {
  // The acceptance pin: one AP, no chaos schedule — every epoch of the
  // engine must reproduce plan-with-schedule_upload +
  // run-with-run_scheduled_upload exactly, including under the inner
  // fault model.
  DeploymentEngineConfig config;
  config.scheduler.enable_power_control = true;
  config.scheduler.enable_multirate = true;
  config.upload.faults.stale_rss_sigma = Decibels{3.0};
  config.upload.faults.ack_loss_prob = 0.02;
  config.seed = 7;

  DeploymentEngine engine{{topology::Point{0.0, 0.0}}, kShannon, config};
  for (const auto& p : line_clients(6, 8.0, 7.0)) {
    (void)engine.add_client(p);
  }

  // The reference path: identical budgets, plan once, run per epoch with
  // the engine's per-(AP, epoch) seed.
  std::vector<channel::LinkBudget> budgets;
  for (int c = 0; c < 6; ++c) budgets.push_back(engine.nominal_budget(c, 0));
  core::SchedulerOptions options = config.scheduler;
  options.packet_bits = config.upload.packet_bits;
  const auto schedule = core::schedule_upload(budgets, kShannon, options);

  for (int epoch = 0; epoch < 4; ++epoch) {
    const EpochStats stats = engine.run_epoch();
    UploadSimConfig inner = config.upload;
    inner.seed = DeploymentEngine::epoch_seed(config.seed, 0, epoch);
    inner.recovery.enabled = true;
    inner.recovery.rematch_options = options;
    const auto expected =
        run_scheduled_upload(budgets, kShannon, schedule, inner);
    expect_same_run(engine.last_ap_result(0), expected, epoch);
    EXPECT_EQ(stats.offered, expected.offered);
    EXPECT_EQ(stats.unrecovered, expected.failures.unrecovered);
    EXPECT_EQ(stats.deferred, 0u);
  }
}

TEST(DeploymentEngine, BitIdenticalAcrossThreadCounts) {
  // Same seed, same chaos, threads 1 / 4 / 7: every epoch stat and the
  // full obs counter map must match bit for bit.
  const auto run = [](int threads) {
    obs::MetricsRegistry registry;
    obs::MetricsRegistry* prev = obs::set_metrics(&registry);
    DeploymentEngineConfig config;
    config.scheduler.enable_power_control = true;
    config.epoch_drift_sigma = Decibels{2.0};
    config.threads = threads;
    config.seed = 11;
    std::vector<topology::Point> sites{{0.0, 0.0}, {60.0, 0.0}, {120.0, 0.0},
                                       {180.0, 0.0}};
    DeploymentEngine engine{sites, kShannon,config,
                            FaultSchedule::preset("default", 24)};
    for (int c = 0; c < 24; ++c) {
      (void)engine.add_client({7.0 * (c % 8) + 45.0 * (c / 8), 5.0});
    }
    InvariantAuditor auditor;
    engine.set_auditor(&auditor);
    const DeploymentResult result = engine.run_epochs(12);
    EXPECT_TRUE(auditor.ok());
    (void)obs::set_metrics(prev);
    return std::pair{result, registry.counter_values()};
  };

  const auto [r1, c1] = run(1);
  const auto [r4, c4] = run(4);
  const auto [r7, c7] = run(7);
  ASSERT_EQ(r1.epochs.size(), r4.epochs.size());
  ASSERT_EQ(r1.epochs.size(), r7.epochs.size());
  for (std::size_t e = 0; e < r1.epochs.size(); ++e) {
    expect_same_epoch(r1.epochs[e], r4.epochs[e]);
    expect_same_epoch(r1.epochs[e], r7.epochs[e]);
  }
  EXPECT_EQ(c1, c4);
  EXPECT_EQ(c1, c7);
}

TEST(DeploymentEngine, AutoTierCrossingDeterministicAcrossThreadCounts) {
  // kAuto with a small crossover (n0 = 6): AP 0 starts below it (4 clients,
  // exact blossom) and AP 1 at it (6 clients, approximate tier). A scripted
  // outage of AP 1 hands its clients to AP 0, pushing AP 0 across the
  // threshold mid-run; the restart hands them back. The epoch stats, the
  // obs counter map, and the matching.tier flight-event stream must all be
  // identical at threads 1 / 4 / 7.
  const auto run = [](int threads) {
    obs::MetricsRegistry registry;
    obs::FlightRecorder recorder;
    obs::MetricsRegistry* prev_m = obs::set_metrics(&registry);
    obs::FlightRecorder* prev_f = obs::set_flight(&recorder);
    DeploymentEngineConfig config;
    config.scheduler.pairing = core::SchedulerOptions::Pairing::kAuto;
    config.scheduler.auto_tier_threshold = 6;
    config.threads = threads;
    config.seed = 5;
    std::vector<topology::Point> sites{{0.0, 0.0}, {60.0, 0.0}};
    FaultSchedule chaos;
    chaos.add({.epoch = 3, .kind = ChaosEventKind::kApOutage, .ap = 1,
               .duration_epochs = 3});
    DeploymentEngine engine{sites, kShannon, config, std::move(chaos)};
    for (int c = 0; c < 4; ++c) (void)engine.add_client({3.0 * c, 5.0});
    for (int c = 0; c < 6; ++c) {
      (void)engine.add_client({60.0 + 3.0 * c, 5.0});
    }
    const DeploymentResult result = engine.run_epochs(10);
    (void)obs::set_metrics(prev_m);
    (void)obs::set_flight(prev_f);
    std::vector<std::string> tiers;
    for (std::size_t i = 0; i < recorder.size(); ++i) {
      const obs::FlightEvent& e = recorder.event(i);
      if (e.kind == "matching.tier") {
        tiers.push_back(std::to_string(e.epoch) + ":ap" +
                        std::to_string(e.ap) + ":" + e.detail);
      }
    }
    return std::tuple{result, registry.counter_values(), tiers};
  };

  const auto [r1, c1, t1] = run(1);
  const auto [r4, c4, t4] = run(4);
  const auto [r7, c7, t7] = run(7);
  ASSERT_EQ(r1.epochs.size(), r4.epochs.size());
  ASSERT_EQ(r1.epochs.size(), r7.epochs.size());
  for (std::size_t e = 0; e < r1.epochs.size(); ++e) {
    expect_same_epoch(r1.epochs[e], r4.epochs[e]);
    expect_same_epoch(r1.epochs[e], r7.epochs[e]);
  }
  EXPECT_EQ(c1, c4);
  EXPECT_EQ(c1, c7);
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t1, t7);
  // The crossing actually happened: AP 0 was recorded on both sides of the
  // threshold, and AP 1's backlog resolved to the approximate tier.
  const auto has = [&t1 = t1](const std::string& needle) {
    return std::any_of(t1.begin(), t1.end(), [&](const std::string& s) {
      return s.find(needle) != std::string::npos;
    });
  };
  EXPECT_TRUE(has("ap0:blossom")) << "AP 0 should start on the exact tier";
  EXPECT_TRUE(has("ap0:approx"))
      << "the outage should push AP 0 across the auto-tier threshold";
  EXPECT_TRUE(has("ap1:approx")) << "AP 1 starts at the threshold";
}

TEST(DeploymentEngine, EquidistantClientTieBreaksToLowerApId) {
  DeploymentEngineConfig config;
  std::vector<topology::Point> sites{{0.0, 0.0}, {40.0, 0.0}};
  DeploymentEngine engine{sites, kShannon, config};
  const int mid = engine.add_client({20.0, 0.0});
  (void)engine.run_epoch();
  EXPECT_EQ(engine.assignment(mid), 0);
}

TEST(DeploymentEngine, HandoffOnOutageAndHysteresisPreventsFlapBack) {
  // The equidistant client starts on AP 0 (tie-break). AP 0 dies: the
  // client must move to AP 1 without a hysteresis test (its AP is gone).
  // When AP 0 restarts the scores tie again, which is NOT better by the
  // hysteresis margin — the client stays on AP 1. No flapping.
  DeploymentEngineConfig config;
  std::vector<topology::Point> sites{{0.0, 0.0}, {40.0, 0.0}};
  FaultSchedule chaos;
  chaos.add({.epoch = 1, .kind = ChaosEventKind::kApOutage, .ap = 0,
             .duration_epochs = 2});
  DeploymentEngine engine{sites, kShannon, config, chaos};
  const int mid = engine.add_client({20.0, 0.0});
  InvariantAuditor auditor;
  engine.set_auditor(&auditor);

  (void)engine.run_epoch();  // epoch 0: associates with AP 0
  EXPECT_EQ(engine.assignment(mid), 0);
  const EpochStats during = engine.run_epoch();  // epoch 1: AP 0 down
  EXPECT_FALSE(engine.ap_alive(0));
  EXPECT_EQ(engine.assignment(mid), 1);
  EXPECT_EQ(during.outages_started, 1);
  (void)engine.run_epoch();               // epoch 2: still down
  const auto after = engine.run_epoch();  // epoch 3: AP 0 back up
  EXPECT_TRUE(engine.ap_alive(0));
  EXPECT_EQ(engine.assignment(mid), 1);  // hysteresis holds it on AP 1
  EXPECT_EQ(after.handoffs, 0);
  EXPECT_TRUE(auditor.ok()) << auditor.violations().size() << " violations";
}

TEST(DeploymentEngine, DeadApClientsAreDeferredWhenNoAlternative) {
  DeploymentEngineConfig config;
  FaultSchedule chaos;
  chaos.add({.epoch = 1, .kind = ChaosEventKind::kApOutage, .ap = 0,
             .duration_epochs = 1});
  DeploymentEngine engine{{topology::Point{0.0, 0.0}}, kShannon, config,
                          chaos};
  (void)engine.add_client({10.0, 0.0});
  (void)engine.add_client({15.0, 0.0});
  InvariantAuditor auditor;
  engine.set_auditor(&auditor);

  const auto normal = engine.run_epoch();
  EXPECT_EQ(normal.offered, 2u);
  EXPECT_EQ(normal.deferred, 0u);
  const auto outage = engine.run_epoch();
  EXPECT_EQ(outage.offered, 0u);
  EXPECT_EQ(outage.deferred, 2u);
  const auto recovered = engine.run_epoch();
  EXPECT_EQ(recovered.offered, 2u);
  EXPECT_EQ(recovered.confirmed, 2u);
  EXPECT_TRUE(auditor.ok());
}

TEST(DeploymentEngine, ZeroMemberApIsSkippedGracefully) {
  DeploymentEngineConfig config;
  std::vector<topology::Point> sites{{0.0, 0.0}, {500.0, 0.0}};
  DeploymentEngine engine{sites, kShannon, config};
  // Every client hugs AP 0; AP 1 serves nobody.
  (void)engine.add_client({5.0, 0.0});
  (void)engine.add_client({9.0, 0.0});
  InvariantAuditor auditor;
  engine.set_auditor(&auditor);
  const auto stats = engine.run_epoch();
  EXPECT_EQ(stats.offered, 2u);
  EXPECT_EQ(stats.confirmed, 2u);
  EXPECT_EQ(stats.live_aps, 2);
  EXPECT_TRUE(auditor.ok());
}

TEST(DeploymentEngine, MidStreamDepartureRematchesItsAp) {
  DeploymentEngineConfig config;
  DeploymentEngine engine{{topology::Point{0.0, 0.0}}, kShannon, config};
  (void)engine.add_client({8.0, 0.0});
  const int leaver = engine.add_client({12.0, 0.0});
  (void)engine.add_client({16.0, 0.0});
  InvariantAuditor auditor;
  engine.set_auditor(&auditor);

  const auto before = engine.run_epoch();
  EXPECT_EQ(before.offered, 3u);
  engine.remove_client(leaver);
  EXPECT_FALSE(engine.client_active(leaver));
  const auto after = engine.run_epoch();
  EXPECT_EQ(after.offered, 2u);
  EXPECT_EQ(after.active_clients, 2);
  EXPECT_EQ(after.rematched_aps, 1);  // departure dirtied the AP
  EXPECT_TRUE(auditor.ok());
}

TEST(DeploymentEngine, QuarantineExilesPersistentFailureAndProbesBack) {
  // One client is far outside coverage (zero rate at the true channel):
  // it fails every epoch. After quarantine_after epochs it must be
  // quarantined, confirmation goes to 100% for the others, and the
  // backoff re-admission probe fails and re-exiles it with a longer
  // backoff.
  DeploymentEngineConfig config;
  config.quarantine_after = 2;
  config.quarantine_base_epochs = 2;
  // Tight per-epoch budget: near clients confirm in microseconds, the
  // out-of-coverage client's ~kbps link cannot finish a frame in time.
  config.upload.horizon = from_seconds(0.05);
  DeploymentEngine engine{{topology::Point{0.0, 0.0}}, kShannon, config};
  (void)engine.add_client({8.0, 0.0});
  (void)engine.add_client({12.0, 0.0});
  const int hopeless = engine.add_client({5000.0, 0.0});
  InvariantAuditor auditor;
  engine.set_auditor(&auditor);

  const DeploymentResult result = engine.run_epochs(14);
  EXPECT_TRUE(engine.quarantined(hopeless) ||
              engine.assignment(hopeless) == -1);
  EXPECT_GE(result.quarantines, 2u);   // exiled, probed, re-exiled
  EXPECT_GE(result.readmissions, 1u);  // at least one probe happened
  // Steady state after the first quarantine: the two viable clients
  // confirm everything.
  const EpochStats& last = result.epochs.back();
  EXPECT_EQ(last.confirmed, last.offered);
  EXPECT_TRUE(auditor.ok());

  // The open-loop engine never quarantines: the hopeless client keeps
  // dragging the confirmation rate every epoch.
  DeploymentEngineConfig open = config;
  open.closed_loop = false;
  DeploymentEngine baseline{{topology::Point{0.0, 0.0}}, kShannon, open};
  (void)baseline.add_client({8.0, 0.0});
  (void)baseline.add_client({12.0, 0.0});
  (void)baseline.add_client({5000.0, 0.0});
  const DeploymentResult open_result = baseline.run_epochs(14);
  EXPECT_EQ(open_result.quarantines, 0u);
  EXPECT_LT(open_result.confirmation_rate(), result.confirmation_rate());
}

TEST(DeploymentEngine, WatchdogFreesStuckApAfterDeepBurst) {
  // An 80 dB scripted burst buries the cell: zero rate, zero
  // confirmations, epoch after epoch. The watchdog must fire after
  // watchdog_epochs all-fail epochs, and once the burst lifts the AP
  // recovers to full confirmation.
  DeploymentEngineConfig config;
  config.watchdog_epochs = 2;
  config.enable_quarantine = false;  // isolate the watchdog path
  // Tight per-epoch budget so the 80 dB burst really zeroes the epoch:
  // re-estimation finds the true (buried) rate, but a frame at that rate
  // cannot finish inside the epoch.
  config.upload.horizon = from_seconds(0.05);
  FaultSchedule chaos;
  chaos.add({.epoch = 1, .kind = ChaosEventKind::kBurst, .ap = 0,
             .duration_epochs = 4, .depth = Decibels{80.0}});
  DeploymentEngine engine{{topology::Point{0.0, 0.0}}, kShannon, config,
                          chaos};
  (void)engine.add_client({8.0, 0.0});
  (void)engine.add_client({12.0, 0.0});
  InvariantAuditor auditor;
  engine.set_auditor(&auditor);

  const DeploymentResult result = engine.run_epochs(8);
  EXPECT_GE(result.watchdog_fires, 1u);
  const EpochStats& last = result.epochs.back();
  EXPECT_EQ(last.confirmed, last.offered);
  EXPECT_GT(last.offered, 0u);
  EXPECT_TRUE(auditor.ok());
}

TEST(DeploymentEngine, LadderStepsDownWhenEpochsAreUnhealthy) {
  // Inner recovery is hobbled (one attempt, no re-match rounds) so a
  // moderate persistent burst makes epochs unhealthy: the ladder must
  // walk down toward serial, and step back up after the burst lifts.
  DeploymentEngineConfig config;
  config.upload.recovery.max_attempts_per_frame = 1;
  config.upload.recovery.max_rematch_rounds = 0;
  config.enable_quarantine = false;
  config.watchdog_epochs = 100;  // keep the watchdog out of the picture
  config.ladder_recover_epochs = 2;
  FaultSchedule chaos;
  chaos.add({.epoch = 1, .kind = ChaosEventKind::kBurst, .ap = 0,
             .duration_epochs = 3, .depth = Decibels{30.0}});
  DeploymentEngine engine{{topology::Point{0.0, 0.0}}, kShannon, config,
                          chaos};
  for (const auto& p : line_clients(6, 8.0, 4.0)) (void)engine.add_client(p);
  InvariantAuditor auditor;
  engine.set_auditor(&auditor);

  int max_ladder = 0;
  std::uint64_t ladder_steps = 0;
  for (int e = 0; e < 12; ++e) {
    const EpochStats stats = engine.run_epoch();
    ladder_steps += static_cast<std::uint64_t>(stats.ladder_steps);
    max_ladder = std::max(max_ladder, engine.ladder_level(0));
  }
  EXPECT_GE(max_ladder, 1);
  EXPECT_GE(ladder_steps, 2u);           // down and back up
  EXPECT_EQ(engine.ladder_level(0), 0);  // healthy again at the end
  EXPECT_TRUE(auditor.ok());
}

TEST(DeploymentEngine, DefaultChaosProfileStaysAuditClean) {
  // A longer run under the full default chaos profile: the auditor must
  // pass every single epoch.
  DeploymentEngineConfig config;
  config.epoch_drift_sigma = Decibels{2.0};
  config.seed = 3;
  std::vector<topology::Point> sites{{0.0, 0.0}, {60.0, 0.0}, {120.0, 0.0}};
  DeploymentEngine engine{sites, kShannon, config,
                          FaultSchedule::preset("default", 18)};
  for (int c = 0; c < 18; ++c) {
    (void)engine.add_client({6.0 * (c % 6) + 55.0 * (c / 6), 8.0});
  }
  InvariantAuditor auditor;
  engine.set_auditor(&auditor);
  const DeploymentResult result = engine.run_epochs(30);
  EXPECT_TRUE(auditor.ok()) << (auditor.violations().empty()
                                    ? ""
                                    : auditor.violations().front().what);
  EXPECT_EQ(auditor.epochs_checked(), 30u);
  EXPECT_GT(result.offered, 0u);
  EXPECT_GT(result.confirmation_rate(), 0.9);
}

TEST(DeploymentEngine, PostmortemByteIdenticalAcrossThreadCounts) {
  // The PR's acceptance pin: a seeded AP-outage run under the default
  // chaos profile must produce a byte-identical post-mortem document —
  // events, time-series, and all — at threads 1 / 4 / 7, because flight
  // events and series samples are only recorded on the engine's
  // sequential phases.
  const auto run = [](int threads) {
    obs::FlightRecorder recorder;
    obs::TimeSeriesRegistry series;
    obs::FlightRecorder* prev_fr = obs::set_flight(&recorder);
    obs::TimeSeriesRegistry* prev_ts = obs::set_timeseries(&series);
    DeploymentEngineConfig config;
    config.scheduler.enable_power_control = true;
    config.epoch_drift_sigma = Decibels{2.0};
    config.threads = threads;
    config.seed = 11;
    std::vector<topology::Point> sites{{0.0, 0.0}, {60.0, 0.0}, {120.0, 0.0},
                                       {180.0, 0.0}};
    FaultSchedule chaos = FaultSchedule::preset("default", 24);
    chaos.add({.epoch = 4, .kind = ChaosEventKind::kApOutage, .ap = 1,
               .duration_epochs = 3});
    DeploymentEngine engine{sites, kShannon, config, std::move(chaos)};
    for (int c = 0; c < 24; ++c) {
      (void)engine.add_client({7.0 * (c % 8) + 45.0 * (c / 8), 5.0});
    }
    (void)engine.run_epochs(12);
    (void)obs::set_flight(prev_fr);
    (void)obs::set_timeseries(prev_ts);
    return recorder.postmortem_json(&series, /*window_epochs=*/12);
  };

  const std::string pm1 = run(1);
  // The scripted outage and its telemetry must actually be in there.
  EXPECT_NE(pm1.find("\"kind\":\"chaos.outage\""), std::string::npos);
  EXPECT_NE(pm1.find("\"deploy.mean_health\""), std::string::npos);
  EXPECT_EQ(pm1, run(4));
  EXPECT_EQ(pm1, run(7));
}

TEST(DeploymentEngine, WatchdogTripLatchesFlightRecorderExactlyOnce) {
  // Same scripted 80 dB burst as WatchdogFreesStuckApAfterDeepBurst, with
  // the flight recorder attached: the watchdog's first fire must trip the
  // recorder, and later fires (the burst outlives the first watchdog
  // window) must not re-trip or overwrite the reason.
  obs::FlightRecorder recorder;
  obs::FlightRecorder* prev = obs::set_flight(&recorder);
  DeploymentEngineConfig config;
  config.watchdog_epochs = 2;
  config.enable_quarantine = false;
  config.upload.horizon = from_seconds(0.05);
  FaultSchedule chaos;
  chaos.add({.epoch = 1, .kind = ChaosEventKind::kBurst, .ap = 0,
             .duration_epochs = 4, .depth = Decibels{80.0}});
  DeploymentEngine engine{{topology::Point{0.0, 0.0}}, kShannon, config,
                          chaos};
  (void)engine.add_client({8.0, 0.0});
  (void)engine.add_client({12.0, 0.0});

  const DeploymentResult result = engine.run_epochs(8);
  (void)obs::set_flight(prev);
  ASSERT_GE(result.watchdog_fires, 1u);
  EXPECT_TRUE(recorder.tripped());
  EXPECT_EQ(recorder.trip_reason(), "watchdog fire: ap 0");

  // The trip anchors at the FIRST watchdog.fire event even if the
  // watchdog fired again later in the run.
  std::uint64_t first_fire = 0;
  std::size_t fires = 0;
  for (std::size_t i = 0; i < recorder.size(); ++i) {
    if (recorder.event(i).kind == "watchdog.fire") {
      if (fires == 0) first_fire = recorder.event(i).epoch;
      ++fires;
    }
  }
  EXPECT_EQ(fires, result.watchdog_fires);
  EXPECT_EQ(recorder.trip_epoch(), first_fire);
}

TEST(DeploymentEngine, HealthScoreBoundedAndPerfectWhenCalm) {
  // No chaos, no drift, near clients: after the associations of epoch 0
  // settle (initial association counts as handoff flux, so epoch 0 is
  // legitimately below 1), every epoch must score a perfect 1.0, and the
  // per-AP summary must agree.
  DeploymentEngineConfig config;
  DeploymentEngine engine{{topology::Point{0.0, 0.0}}, kShannon, config};
  (void)engine.add_client({8.0, 0.0});
  (void)engine.add_client({12.0, 0.0});

  const DeploymentResult result = engine.run_epochs(6);
  for (const EpochStats& e : result.epochs) {
    EXPECT_GE(e.mean_health, 0.0) << "epoch " << e.epoch;
    EXPECT_LE(e.mean_health, 1.0) << "epoch " << e.epoch;
  }
  for (std::size_t e = 1; e < result.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(result.epochs[e].mean_health, 1.0) << "epoch " << e;
  }

  const std::vector<ApHealthSummary> summary = engine.health_summary();
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary[0].ap, 0);
  EXPECT_EQ(summary[0].epochs_served, 6u);
  EXPECT_GT(summary[0].mean_health, 0.9);   // epoch 0 flux dilutes slightly
  EXPECT_GT(summary[0].min_health, 0.0);
  EXPECT_LE(summary[0].min_health, 1.0);
  EXPECT_DOUBLE_EQ(summary[0].mean_confirmation, 1.0);
}

TEST(DeploymentEngine, HealthDropsUnderBurstAndTimeSeriesRecordsIt) {
  // The WatchdogFreesStuckApAfterDeepBurst scenario again, now asserting
  // the health channel: buried epochs must score well below calm ones,
  // and the attached time-series must carry the same per-epoch values.
  obs::TimeSeriesRegistry series;
  obs::TimeSeriesRegistry* prev = obs::set_timeseries(&series);
  DeploymentEngineConfig config;
  config.watchdog_epochs = 2;
  config.enable_quarantine = false;
  config.upload.horizon = from_seconds(0.05);
  FaultSchedule chaos;
  chaos.add({.epoch = 1, .kind = ChaosEventKind::kBurst, .ap = 0,
             .duration_epochs = 4, .depth = Decibels{80.0}});
  DeploymentEngine engine{{topology::Point{0.0, 0.0}}, kShannon, config,
                          chaos};
  (void)engine.add_client({8.0, 0.0});
  (void)engine.add_client({12.0, 0.0});

  const DeploymentResult result = engine.run_epochs(8);
  (void)obs::set_timeseries(prev);

  double min_health = 1.0;
  for (const EpochStats& e : result.epochs) {
    min_health = std::min(min_health, e.mean_health);
  }
  EXPECT_LT(min_health, 0.5);  // buried epochs confirm nothing
  const std::vector<ApHealthSummary> summary = engine.health_summary();
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_DOUBLE_EQ(summary[0].min_health, min_health);
  EXPECT_LT(summary[0].mean_health, 1.0);

  // The engine published one mean-health sample per epoch, matching the
  // per-epoch stats bit for bit.
  const obs::TimeSeries& health = series.series("deploy.mean_health");
  ASSERT_EQ(health.size(), result.epochs.size());
  for (std::size_t e = 0; e < result.epochs.size(); ++e) {
    EXPECT_EQ(health.point(e).epoch, e);
    EXPECT_EQ(health.point(e).value, result.epochs[e].mean_health);
  }
}

TEST(InvariantAuditor, SeededViolationsActuallyFire) {
  // A deliberately inconsistent snapshot must trip every law: broken
  // conservation, a client served by a dead AP, and a quarantined client
  // inside an active matching.
  InvariantAuditor auditor;
  EpochInvariants inv;
  inv.epoch = 5;
  inv.offered = 2;
  inv.confirmed = 1;
  inv.unrecovered = 0;  // 1 + 0 != 2 → conservation violation
  inv.ap_alive = {1, 0};
  inv.active = {1, 1, 1};
  inv.quarantined = {0, 0, 1};
  inv.assignment = {1, 0, 0};  // client 0 assigned to dead AP 1
  inv.served_by = {1, 0, 0};   // client 0 served by dead AP 1; client 2
                               // (quarantined) served by AP 0
  auditor.check(inv);
  EXPECT_FALSE(auditor.ok());
  EXPECT_GE(auditor.violations().size(), 4u);
  for (const auto& v : auditor.violations()) {
    EXPECT_EQ(v.epoch, 5);
  }

  // And a consistent snapshot stays clean.
  InvariantAuditor clean;
  EpochInvariants good;
  good.epoch = 1;
  good.offered = 2;
  good.confirmed = 2;
  good.unrecovered = 0;
  good.ap_alive = {1};
  good.active = {1, 1, 0};
  good.quarantined = {0, 0, 0};
  good.assignment = {0, 0, -1};
  good.served_by = {0, 0, -1};
  clean.check(good);
  EXPECT_TRUE(clean.ok());
}

}  // namespace
}  // namespace sic::mac
