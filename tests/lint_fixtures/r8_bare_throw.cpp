// Lint fixture: R8 — bare standard exceptions instead of project errors.
#include <stdexcept>
#include <string>

struct TraceIoError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void bad_runtime(const std::string& path) {
  throw std::runtime_error("cannot open " + path);  // line 10: R8 violation
}

void bad_logic() {
  throw std::logic_error("unreachable");  // line 14: R8 violation
}

void bad_string_literal() {
  throw "boom";  // line 18: R8 violation (string literal)
}

void good_typed(const std::string& path) {
  throw TraceIoError("cannot open " + path);  // clean: project error type
}
