#ifndef SICMAC_MAC_DEPLOYMENT_MEDIUM_HPP
#define SICMAC_MAC_DEPLOYMENT_MEDIUM_HPP

/// \file deployment_medium.hpp
/// Bridges the topology layer to the simulator: builds a Medium whose gain
/// matrix comes from a positioned Deployment (path-loss model + node
/// positions + per-node transmit powers). This is what lets the named
/// Section 4 scenarios — EWLAN floors, residential walls, mesh chains —
/// run as live discrete-event simulations rather than closed-form studies.

#include <memory>

#include "mac/medium.hpp"
#include "topology/scenarios.hpp"

namespace sic::mac {

/// Builds a medium with one MAC node per deployment node. Requires node
/// ids to be exactly 0..n-1 (the scenario builders guarantee this). Gains
/// use each *transmitter's* power, so asymmetric powers yield asymmetric
/// RSS, matching Deployment::rss.
[[nodiscard]] std::unique_ptr<Medium> make_medium_from_deployment(
    EventQueue& queue, const topology::Deployment& deployment,
    const phy::RateAdapter& adapter, phy::SicDecoderConfig decoder = {});

}  // namespace sic::mac

#endif  // SICMAC_MAC_DEPLOYMENT_MEDIUM_HPP
