#include "core/download.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sic::core {

DownloadResult evaluate_download(const UploadPairContext& ctx) {
  SIC_CHECK(ctx.adapter != nullptr);
  DownloadResult out;
  const auto& a = ctx.arrival;
  // Both packets through the stronger AP (the stronger RSS by construction).
  const auto best_clean = ctx.adapter->rate(a.stronger / a.noise);
  out.serial_airtime = 2.0 * airtime_seconds(ctx.packet_bits, best_clean);
  out.concurrent_airtime = sic_airtime(ctx);
  out.raw_gain = std::isfinite(out.concurrent_airtime)
                     ? out.serial_airtime / out.concurrent_airtime
                     : 0.0;
  out.gain = std::max(1.0, out.raw_gain);
  return out;
}

}  // namespace sic::core
