#include "core/enterprise.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

EnterpriseClient client_db(std::initializer_list<double> snr_per_ap) {
  EnterpriseClient c;
  for (const double db : snr_per_ap) {
    c.rss_at_ap.push_back(Milliwatts{Decibels{db}.linear()});
  }
  return c;
}

TEST(Enterprise, StrongestApBaselinePicksLouderAp) {
  const std::vector<EnterpriseClient> clients{
      client_db({30.0, 10.0}), client_db({12.0, 28.0})};
  const auto result = strongest_ap_assignment(clients, 2, kShannon);
  EXPECT_EQ(result.ap_for_client, (std::vector<int>{0, 1}));
  EXPECT_GT(result.objective, 0.0);
}

TEST(Enterprise, LocalSearchNeverWorseThanBaseline) {
  Rng rng{3};
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<EnterpriseClient> clients;
    const int n = rng.uniform_int(2, 10);
    for (int i = 0; i < n; ++i) {
      clients.push_back(
          client_db({rng.uniform(8.0, 35.0), rng.uniform(8.0, 35.0)}));
    }
    for (const auto model :
         {ChannelModel::kShared, ChannelModel::kOrthogonal}) {
      EnterpriseOptions options;
      options.channel_model = model;
      const auto base = strongest_ap_assignment(clients, 2, kShannon, options);
      const auto tuned =
          schedule_enterprise_upload(clients, 2, kShannon, options);
      EXPECT_LE(tuned.objective, base.objective + base.objective * 1e-9)
          << "trial " << trial;
    }
  }
}

TEST(Enterprise, OrthogonalChannelsRewardLoadBalancing) {
  // Six clients all slightly closer to AP0: strongest-AP piles everyone on
  // one channel; the coordinator should move some to AP1 and cut the
  // makespan.
  std::vector<EnterpriseClient> clients;
  for (int i = 0; i < 6; ++i) {
    const double snr = 20.0 + i;
    clients.push_back(client_db({snr + 2.0, snr}));
  }
  EnterpriseOptions options;
  options.channel_model = ChannelModel::kOrthogonal;
  const auto base = strongest_ap_assignment(clients, 2, kShannon, options);
  const auto tuned = schedule_enterprise_upload(clients, 2, kShannon, options);
  EXPECT_LT(tuned.objective, base.objective * 0.75);
  // Both APs used.
  bool uses0 = false;
  bool uses1 = false;
  for (const int a : tuned.ap_for_client) {
    uses0 |= (a == 0);
    uses1 |= (a == 1);
  }
  EXPECT_TRUE(uses0);
  EXPECT_TRUE(uses1);
}

TEST(Enterprise, SharedChannelStillBenefitsFromPairingAwareMoves) {
  // Even co-channel (sum objective), strongest-AP association is not
  // always optimal: moving a client to a slightly weaker AP can land it on
  // a much better SIC pairing (the Fig. 4 ridge), cutting the *sum*. The
  // local search may therefore beat the baseline, and must never lose.
  std::vector<EnterpriseClient> clients;
  Rng rng{11};
  for (int i = 0; i < 6; ++i) {
    clients.push_back(
        client_db({rng.uniform(15.0, 30.0), rng.uniform(15.0, 30.0)}));
  }
  EnterpriseOptions options;
  options.channel_model = ChannelModel::kShared;
  const auto base = strongest_ap_assignment(clients, 2, kShannon, options);
  const auto tuned = schedule_enterprise_upload(clients, 2, kShannon, options);
  EXPECT_LE(tuned.objective, base.objective * (1.0 + 1e-9));
}

TEST(Enterprise, EveryClientScheduledExactlyOnce) {
  std::vector<EnterpriseClient> clients;
  Rng rng{13};
  for (int i = 0; i < 9; ++i) {
    clients.push_back(client_db({rng.uniform(10.0, 34.0),
                                 rng.uniform(10.0, 34.0),
                                 rng.uniform(10.0, 34.0)}));
  }
  const auto result = schedule_enterprise_upload(clients, 3, kShannon);
  std::vector<int> seen(clients.size(), 0);
  for (const auto& cell : result.cell_schedules) {
    for (const auto& slot : cell.slots) {
      ++seen[static_cast<std::size_t>(slot.first)];
      if (slot.second >= 0) ++seen[static_cast<std::size_t>(slot.second)];
    }
  }
  for (const int s : seen) EXPECT_EQ(s, 1);
  // Slot client ids belong to the cell's AP.
  for (std::size_t a = 0; a < result.cell_schedules.size(); ++a) {
    for (const auto& slot : result.cell_schedules[a].slots) {
      EXPECT_EQ(result.ap_for_client[static_cast<std::size_t>(slot.first)],
                static_cast<int>(a));
    }
  }
}

TEST(Enterprise, MismatchedRssVectorRejected) {
  const std::vector<EnterpriseClient> clients{client_db({20.0})};
  EXPECT_THROW((void)schedule_enterprise_upload(clients, 2, kShannon),
               std::logic_error);
}

TEST(Enterprise, SingleApDegeneratesToCellScheduler) {
  std::vector<EnterpriseClient> clients{client_db({24.0}),
                                        client_db({12.0})};
  const auto result = schedule_enterprise_upload(clients, 1, kShannon);
  ASSERT_EQ(result.cell_schedules.size(), 1u);
  EXPECT_EQ(result.cell_schedules[0].slots.size(), 1u);
}

}  // namespace
}  // namespace sic::core
