/// sicmac — command-line front end to the library. One binary, the whole
/// paper:
///
///   sicmac pair --s1 24 --s2 12 [--table shannon|11b|11g|11n]
///   sicmac crosslink --s11 30 --s12 10 --s21 45 --s22 25
///   sicmac schedule --clients 24,18,12,9 [--power-control] [--multirate]
///   sicmac backlog --clients 24,18,12 --queues 4,2,8 [--no-packing]
///   sicmac montecarlo --scenario upload|crosslink|deployment [--trials N]
///   sicmac trace-gen --out trace.csv [--days 14] [--seed S]
///   sicmac trace-eval --in trace.csv
///   sicmac mesh --long 40 --short 10 [--exponent 4]
///   sicmac capacity --s1 20 --s2 12
///   sicmac simulate --clients 24,18,12,9 [--stale-sigma dB] [--cancel-prob p]
///   sicmac deploy --aps 4 --clients 24 --chaos-profile default [--threads N]
///   sicmac report [--trials N] [--seed S]      # markdown repro summary
///
/// All SNRs in dB over a unit noise floor; rates on a 20 MHz channel.
///
/// Global observability flags (every command, deploy included):
///   --metrics-out <file>   JSON metrics snapshot of the run
///   --trace-out <file>     Chrome-trace JSONL (open in ui.perfetto.dev)
///   --log-level <level>    off|error|warn|info|debug (default off)
///
/// Deploy-only forensics (see README "Reading a post-mortem"):
///   --timeseries-out <csv> per-epoch time-series (wide CSV)
///   --postmortem-out <json> flight-recorder post-mortem; also dumped
///                          automatically on watchdog trip / invariant
///                          violation (the latter exits 5)
///   --postmortem-window N  epochs of events replayed in the dump (16)
///   --health-summary       per-AP lifetime health table
///
/// Global performance flag (montecarlo, trace-eval, report):
///   --threads <n>          sweep worker threads; 0 = all hardware threads
///                          (default 1). Results are bit-identical for any
///                          value — see DESIGN.md "Parallel sweeps".
///
/// Exit codes: 0 success; 1 internal error; 2 usage error; 3 file I/O
/// error; 4 trace format error; 5 deployment invariant violated;
/// 6 matching infeasible (odd vertex count / no perfect matching).

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "matching/error.hpp"
#include "obs/obs.hpp"
#include "sicmac.hpp"
#include "util/cli_args.hpp"

namespace {

using namespace sic;

constexpr double kBits = 12000.0;

std::unique_ptr<phy::RateAdapter> make_adapter(const std::string& name) {
  if (name == "shannon") {
    return std::make_unique<phy::ShannonRateAdapter>(megahertz(20.0));
  }
  if (name == "11b") {
    return std::make_unique<phy::DiscreteRateAdapter>(phy::RateTable::dot11b());
  }
  if (name == "11g") {
    return std::make_unique<phy::DiscreteRateAdapter>(phy::RateTable::dot11g());
  }
  if (name == "11n") {
    return std::make_unique<phy::DiscreteRateAdapter>(phy::RateTable::dot11n());
  }
  throw UsageError("unknown --table (use shannon|11b|11g|11n): " + name);
}

Milliwatts from_db(double snr_db) {
  return Milliwatts{Decibels{snr_db}.linear()};
}

/// Shared --pairing / --auto-tier-n0 parsing for every command that runs
/// the Fig. 12 matching reduction.
core::SchedulerOptions::Pairing parse_pairing(const ArgParser& args) {
  const std::string name = args.get_string("pairing", "blossom");
  if (name == "blossom") return core::SchedulerOptions::Pairing::kBlossom;
  if (name == "greedy") return core::SchedulerOptions::Pairing::kGreedy;
  if (name == "approx") return core::SchedulerOptions::Pairing::kApprox;
  if (name == "auto") return core::SchedulerOptions::Pairing::kAuto;
  throw UsageError("unknown --pairing (use blossom|greedy|approx|auto): " +
                   name);
}

int parse_auto_tier_threshold(const ArgParser& args) {
  const int n0 = args.get_int("auto-tier-n0", 64);
  if (n0 < 2) {
    throw UsageError("--auto-tier-n0 must be >= 2, got " +
                     std::to_string(n0));
  }
  return n0;
}

int cmd_pair(const ArgParser& args) {
  const auto adapter = make_adapter(args.get_string("table", "shannon"));
  const double s1 = args.get_double("s1", 24.0);
  const double s2 = args.get_double("s2", 12.0);
  const auto ctx = core::UploadPairContext::make(
      from_db(s1), from_db(s2), Milliwatts{1.0}, *adapter,
      args.get_double("bits", kBits));
  const auto rates = core::sic_rates(ctx);
  std::printf("pair: S1=%.1f dB, S2=%.1f dB, policy=%s\n", s1, s2,
              adapter->name().c_str());
  std::printf("  concurrent rates : %.2f / %.2f Mbps\n",
              rates.stronger.megabits(), rates.weaker.megabits());
  std::printf("  serial   (eq 5)  : %.1f us\n",
              1e6 * core::serial_airtime(ctx));
  std::printf("  SIC      (eq 6)  : %.1f us  (gain %.3fx)\n",
              1e6 * core::sic_airtime(ctx), core::sic_gain(ctx));
  const auto pc = core::optimize_weaker_power(ctx);
  std::printf("  + power control  : %.1f us  (scale %.2f%s)\n",
              1e6 * pc.airtime, pc.scale, pc.applied ? "" : ", no-op");
  std::printf("  + multirate      : %.1f us\n",
              1e6 * core::multirate_airtime(ctx));
  const auto packing = core::packing_two_to_one(ctx);
  std::printf("  + packing        : %d fast packets, per-packet gain %.3fx\n",
              packing.fast_packets, packing.gain);
  return 0;
}

int cmd_capacity(const ArgParser& args) {
  const double s1 = args.get_double("s1", 20.0);
  const double s2 = args.get_double("s2", 12.0);
  const phy::CapacityRegion region{megahertz(20.0), from_db(s1), from_db(s2),
                                   Milliwatts{1.0}};
  std::printf("two-user MAC capacity region (S1=%.1f dB, S2=%.1f dB):\n", s1,
              s2);
  std::printf("  max r1        : %.2f Mbps\n", region.max_r1().megabits());
  std::printf("  max r2        : %.2f Mbps\n", region.max_r2().megabits());
  std::printf("  sum (eq 4)    : %.2f Mbps\n",
              region.sum_capacity().megabits());
  const auto a = region.corner_user1_decoded_first();
  const auto b = region.corner_user2_decoded_first();
  std::printf("  SIC corner A  : (%.2f, %.2f) Mbps  [user1 decoded first]\n",
              a.r1.megabits(), a.r2.megabits());
  std::printf("  SIC corner B  : (%.2f, %.2f) Mbps\n", b.r1.megabits(),
              b.r2.megabits());
  const auto arrival =
      phy::TwoSignalArrival::make(from_db(s1), from_db(s2), Milliwatts{1.0});
  std::printf("  gain vs TDMA  : %.4fx (Fig. 3 value)\n",
              phy::capacity_gain(megahertz(20.0), arrival));
  return 0;
}

int cmd_crosslink(const ArgParser& args) {
  const auto adapter = make_adapter(args.get_string("table", "shannon"));
  channel::TwoLinkRss rss;
  rss.s11 = from_db(args.get_double("s11", 30.0));
  rss.s12 = from_db(args.get_double("s12", 10.0));
  rss.s21 = from_db(args.get_double("s21", 45.0));
  rss.s22 = from_db(args.get_double("s22", 25.0));
  rss.noise = Milliwatts{1.0};
  const auto result = core::evaluate_cross_link(rss, *adapter, kBits);
  std::printf("cross-link case: %s\n", to_string(result.kase));
  std::printf("  SIC feasible     : %s\n", result.sic_feasible ? "yes" : "no");
  std::printf("  serial  (Z-SIC)  : %.1f us\n", 1e6 * result.serial_airtime);
  if (result.sic_feasible) {
    std::printf("  concurrent (Z+)  : %.1f us\n",
                1e6 * result.concurrent_airtime);
  }
  std::printf("  realized gain    : %.3fx\n", result.gain);
  std::printf("  with packing     : %.3fx\n",
              core::cross_link_packing_gain(rss, *adapter, kBits));
  return 0;
}

int cmd_schedule(const ArgParser& args) {
  const auto adapter = make_adapter(args.get_string("table", "shannon"));
  const auto snrs = args.get_double_list("clients");
  if (snrs.empty()) {
    throw UsageError("schedule needs --clients s1,s2,... (dB)");
  }
  std::vector<channel::LinkBudget> clients;
  for (const double db : snrs) {
    clients.push_back(channel::LinkBudget{from_db(db), Milliwatts{1.0}});
  }
  core::SchedulerOptions options;
  options.enable_power_control = args.has("power-control");
  options.enable_multirate = args.has("multirate");
  options.pairing = parse_pairing(args);
  options.auto_tier_threshold = parse_auto_tier_threshold(args);
  const auto schedule = core::schedule_upload(clients, *adapter, options);
  const double serial = core::serial_upload_airtime(clients, *adapter, kBits);
  std::printf("SIC-aware schedule (%zu clients, policy=%s):\n", clients.size(),
              adapter->name().c_str());
  for (const auto& slot : schedule.slots) {
    if (slot.second < 0) {
      std::printf("  C%-2d solo            %9.1f us\n", slot.first,
                  1e6 * slot.plan.airtime);
    } else {
      std::printf("  C%-2d + C%-2d %-11s %9.1f us\n", slot.first, slot.second,
                  to_string(slot.plan.mode), 1e6 * slot.plan.airtime);
    }
  }
  std::printf("total %.1f us vs serial %.1f us  ->  gain %.3fx\n",
              1e6 * schedule.total_airtime, 1e6 * serial,
              serial / schedule.total_airtime);
  return 0;
}

int cmd_backlog(const ArgParser& args) {
  const auto adapter = make_adapter(args.get_string("table", "shannon"));
  const auto snrs = args.get_double_list("clients");
  const auto queues = args.get_double_list("queues");
  if (snrs.empty() || queues.size() != snrs.size()) {
    throw UsageError(
        "backlog needs --clients s1,s2,... and matching --queues n1,n2,...");
  }
  std::vector<core::BacklogClient> clients;
  for (std::size_t i = 0; i < snrs.size(); ++i) {
    clients.push_back(core::BacklogClient{
        channel::LinkBudget{from_db(snrs[i]), Milliwatts{1.0}},
        static_cast<int>(queues[i])});
  }
  core::BacklogOptions options;
  options.enable_packing = !args.has("no-packing");
  options.pairing = parse_pairing(args);
  options.auto_tier_threshold = parse_auto_tier_threshold(args);
  const auto schedule =
      core::schedule_backlog_upload(clients, *adapter, options);
  const double serial =
      core::serial_backlog_airtime(clients, *adapter, kBits);
  std::printf("backlog schedule (%zu clients):\n", clients.size());
  for (const auto& slot : schedule.slots) {
    if (slot.second < 0) {
      std::printf("  C%-2d solo drain            %9.1f us\n", slot.first,
                  1e6 * slot.plan.airtime);
    } else {
      std::printf("  C%-2d + C%-2d %-14s %9.1f us (%d rounds)\n", slot.first,
                  slot.second, to_string(slot.plan.mode),
                  1e6 * slot.plan.airtime, slot.plan.rounds);
    }
  }
  std::printf("total %.1f us vs serial %.1f us  ->  gain %.3fx\n",
              1e6 * schedule.total_airtime, 1e6 * serial,
              serial / schedule.total_airtime);
  return 0;
}

int cmd_montecarlo(const ArgParser& args) {
  const auto adapter = make_adapter(args.get_string("table", "shannon"));
  const std::string scenario = args.get_string("scenario", "upload");
  const int trials = args.get_int("trials", 10000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const int threads = args.get_threads();
  topology::SamplerConfig config;
  config.range_m = args.get_double("range", config.range_m);
  const auto report = [](const char* name, const std::vector<double>& xs) {
    const analysis::EmpiricalCdf cdf{xs};
    std::printf("  %-16s no-gain %5.1f%%  >20%% %5.1f%%  median %.3f\n", name,
                100.0 * cdf.at(1.0 + 1e-9),
                100.0 * cdf.fraction_above(1.2), cdf.quantile(0.5));
  };
  if (scenario == "upload") {
    const auto s = analysis::run_two_to_one_techniques(config, *adapter,
                                                       trials, seed, kBits,
                                                       threads);
    std::printf("upload (two clients -> one AP), %d trials, seed %llu:\n",
                trials, static_cast<unsigned long long>(seed));
    report("SIC", s.sic);
    report("+power control", s.power_control);
    report("+multirate", s.multirate);
    report("+packing", s.packing);
  } else if (scenario == "crosslink") {
    const auto s = analysis::run_two_link_techniques(config, *adapter, trials,
                                                     seed, kBits, threads);
    std::printf("cross-link (two tx -> two rx), %d trials, seed %llu:\n",
                trials, static_cast<unsigned long long>(seed));
    report("SIC", s.sic);
    report("+power control", s.power_control);
    report("+packing", s.packing);
  } else if (scenario == "deployment") {
    const int clients = args.get_int("clients-per-cell", 8);
    const auto gains = analysis::run_upload_deployment_gains(
        config, *adapter, trials, clients, seed, kBits, threads);
    std::printf(
        "deployment (%d clients -> one AP, blossom schedule), %d trials, "
        "seed %llu:\n",
        clients, trials, static_cast<unsigned long long>(seed));
    report("SIC schedule", gains);
  } else {
    throw UsageError("unknown --scenario (upload|crosslink|deployment): " +
                     scenario);
  }
  return 0;
}

int cmd_trace_gen(const ArgParser& args) {
  const std::string out = args.get_string("out", "");
  if (out.empty()) throw UsageError("trace-gen needs --out <file>");
  // Open the output before the (potentially minutes-long) generation so an
  // unwritable path fails in milliseconds, not after the work is done.
  std::ofstream os{out};
  if (!os) {
    throw trace::TraceIoError("cannot open trace file for write: " + out);
  }
  trace::BuildingConfig config;
  config.duration_s = static_cast<int>(args.get_double("days", 14.0) * 86400);
  const auto trace =
      trace::generate_building_trace(config, args.get_u64("seed", 1));
  trace::write_csv(trace, os);
  std::printf("wrote %zu snapshots / %zu observations to %s\n",
              trace.snapshots.size(), trace.total_observations(), out.c_str());
  return 0;
}

int cmd_trace_eval(const ArgParser& args) {
  const std::string in = args.get_string("in", "");
  if (in.empty()) throw UsageError("trace-eval needs --in <file>");
  const auto adapter = make_adapter(args.get_string("table", "shannon"));
  const auto trace = trace::read_csv_file(in);
  analysis::UploadTraceEvalConfig eval;
  eval.threads = args.get_threads();
  const auto gains = analysis::evaluate_upload_trace(trace, *adapter, eval);
  std::printf("%s: %zu snapshots, %d cells with >= 2 clients\n", in.c_str(),
              trace.snapshots.size(), gains.cells_evaluated);
  const auto report = [](const char* name, const std::vector<double>& xs) {
    if (xs.empty()) return;
    const analysis::EmpiricalCdf cdf{xs};
    std::printf("  %-22s mean %.3f  >20%% gain %5.1f%%\n", name,
                analysis::summarize(xs).mean,
                100.0 * cdf.fraction_above(1.2));
  };
  report("pairing (blossom)", gains.pairing);
  report("pairing + power ctl", gains.power_control);
  report("pairing + multirate", gains.multirate);
  report("greedy pairing", gains.greedy_pairing);
  return 0;
}

int cmd_mesh(const ArgParser& args) {
  auto chain = topology::make_mesh_chain(args.get_double("long", 40.0),
                                         args.get_double("short", 10.0));
  chain.pathloss = channel::LogDistancePathLoss::for_carrier(
      args.get_double("exponent", 4.0));
  for (auto& node : chain.nodes) node.tx_power = Dbm{23.0};
  const phy::ShannonRateAdapter adapter{megahertz(20.0)};
  const auto report = core::analyze_mesh_chain(chain, adapter);
  std::printf("mesh chain A->C->D->E:\n");
  std::printf("  SIC feasible at relay C : %s (case %s)\n",
              report.sic_feasible_at_relay ? "yes" : "no",
              to_string(report.cross.kase));
  std::printf("  serial throughput       : %.1f Mbps\n",
              report.serial_throughput_bps / 1e6);
  std::printf("  pipelined throughput    : %.1f Mbps (gain %.3fx)\n",
              report.pipelined_throughput_bps / 1e6, report.gain);
  return 0;
}

double require_range(const ArgParser& args, const std::string& flag,
                     double fallback, double lo, double hi) {
  const double v = args.get_double(flag, fallback);
  if (v < lo || v > hi) {
    throw UsageError("flag --" + flag + ": " + std::to_string(v) +
                     " out of range [" + std::to_string(lo) + ", " +
                     std::to_string(hi) + "]");
  }
  return v;
}

int cmd_simulate(const ArgParser& args) {
  // End-to-end scheduled upload on the discrete-event simulator, with the
  // closed-loop executor's fault knobs and failure telemetry exposed.
  const auto adapter = make_adapter(args.get_string("table", "shannon"));
  const auto snrs = args.get_double_list("clients");
  if (snrs.empty()) {
    throw UsageError("simulate needs --clients s1,s2,... (dB)");
  }
  std::vector<channel::LinkBudget> clients;
  for (const double db : snrs) {
    clients.push_back(channel::LinkBudget{from_db(db), Milliwatts{1.0}});
  }
  core::SchedulerOptions options;
  options.enable_power_control = args.has("power-control");
  options.enable_multirate = args.has("multirate");
  options.pairing = parse_pairing(args);
  options.auto_tier_threshold = parse_auto_tier_threshold(args);
  options.admission_margin_db =
      Decibels{require_range(args, "margin", 0.0, 0.0, 60.0)};
  const auto schedule = core::schedule_upload(clients, *adapter, options);

  mac::UploadSimConfig config;
  config.faults.stale_rss_sigma =
      Decibels{require_range(args, "stale-sigma", 0.0, 0.0, 60.0)};
  config.faults.stale_rss_rho = require_range(args, "stale-rho", 0.9, 0.0, 1.0);
  config.faults.cancellation_failure_prob =
      require_range(args, "cancel-prob", 0.0, 0.0, 1.0);
  config.faults.ack_loss_prob = require_range(args, "ack-loss", 0.0, 0.0, 1.0);
  config.recovery.enabled = !args.has("open-loop");
  config.recovery.rematch_options = options;
  config.seed = args.get_u64("seed", 1);
  const auto r = mac::run_scheduled_upload(clients, *adapter, schedule, config);

  std::printf("scheduled upload (%zu clients, %s, %s):\n", clients.size(),
              adapter->name().c_str(),
              config.recovery.enabled ? "closed-loop" : "open-loop");
  std::printf("  offered / confirmed : %llu / %llu\n",
              static_cast<unsigned long long>(r.offered),
              static_cast<unsigned long long>(r.offered -
                                              r.failures.unrecovered));
  std::printf("  completion          : %.3f ms\n", 1e3 * r.completion_s);
  std::printf("  retransmissions     : %llu\n",
              static_cast<unsigned long long>(r.failures.retransmissions));
  std::printf("  unrecovered drops   : %llu\n",
              static_cast<unsigned long long>(r.failures.unrecovered));
  std::printf("  failure causes      : rate-miss %llu, cancellation %llu, "
              "ack-loss %llu\n",
              static_cast<unsigned long long>(r.failures.rate_misses),
              static_cast<unsigned long long>(r.failures.cancellation_failures),
              static_cast<unsigned long long>(r.failures.ack_losses));
  std::printf("  duplicates at AP    : %llu\n",
              static_cast<unsigned long long>(r.failures.duplicate_deliveries));
  std::printf("  demotions           : mode %llu, client %llu\n",
              static_cast<unsigned long long>(r.failures.mode_demotions),
              static_cast<unsigned long long>(r.failures.client_demotions));
  std::printf("  re-match rounds     : %llu\n",
              static_cast<unsigned long long>(r.failures.rematch_rounds));
  std::printf("  recovered frames    : %llu\n",
              static_cast<unsigned long long>(r.failures.recovered));
  return 0;
}

int cmd_deploy(const ArgParser& args) {
  // Multi-AP deployment under a chaos profile: APs on a line, clients
  // round-robin across cells, the invariant auditor attached to every
  // epoch. A violated invariant is its own exit code (5) so CI and
  // scripts can tell "the engine broke a conservation law" from an
  // ordinary failure.
  //
  // Flight-recorder forensics: with --postmortem-out (and/or
  // --timeseries-out) the run records structured per-(ap,epoch) events
  // and epoch time-series. A watchdog trip or an invariant violation
  // dumps the post-mortem immediately — frozen at the epoch that
  // tripped — and an untripped run writes it at the end ("requested").
  const auto adapter = make_adapter(args.get_string("table", "shannon"));
  const int n_aps = args.get_int("aps", 4);
  const int n_clients = args.get_int("clients", 24);
  const int n_epochs = args.get_int("epochs", 30);
  if (n_aps < 1) throw UsageError("deploy needs --aps >= 1");
  if (n_clients < 1) throw UsageError("deploy needs --clients >= 1");
  if (n_epochs < 1) throw UsageError("deploy needs --epochs >= 1");
  const std::string profile = args.get_string("chaos-profile", "default");
  const std::string timeseries_out = args.get_string("timeseries-out", "");
  const std::string postmortem_out = args.get_string("postmortem-out", "");
  const int window = args.get_int("postmortem-window", 16);
  if (window < 1) throw UsageError("deploy needs --postmortem-window >= 1");

  mac::DeploymentEngineConfig config;
  config.scheduler.enable_power_control = args.has("power-control");
  config.scheduler.enable_multirate = args.has("multirate");
  config.scheduler.pairing = parse_pairing(args);
  config.scheduler.auto_tier_threshold = parse_auto_tier_threshold(args);
  config.closed_loop = !args.has("open-loop");
  config.enable_quarantine = !args.has("no-quarantine");
  config.epoch_drift_sigma =
      Decibels{require_range(args, "drift-sigma", 2.0, 0.0, 60.0)};
  config.threads = args.get_threads();
  config.seed = args.get_u64("seed", 1);

  // Attach the flight recorder + time-series registry only when an output
  // asks for them — detached runs stay zero-cost.
  const bool record = !timeseries_out.empty() || !postmortem_out.empty();
  obs::TimeSeriesRegistry series;
  obs::FlightRecorder recorder;
  if (record) {
    recorder.set_config("command", "deploy");
    recorder.set_config("aps", std::to_string(n_aps));
    recorder.set_config("clients", std::to_string(n_clients));
    recorder.set_config("epochs", std::to_string(n_epochs));
    recorder.set_config("chaos_profile", profile);
    recorder.set_config("table", args.get_string("table", "shannon"));
    recorder.set_config("closed_loop", config.closed_loop ? "true" : "false");
    recorder.set_config("quarantine",
                        config.enable_quarantine ? "true" : "false");
    recorder.set_config("drift_sigma_db",
                        std::to_string(config.epoch_drift_sigma.value()));
    // No `threads` entry on purpose: the thread count is an execution
    // detail that never changes results, and recording it would break the
    // post-mortem's byte-identity-across-thread-counts contract.
    recorder.set_config("seed", std::to_string(config.seed));
    obs::set_timeseries(&series);
    obs::set_flight(&recorder);
  }

  std::vector<topology::Point> sites;
  for (int a = 0; a < n_aps; ++a) sites.push_back({60.0 * a, 0.0});
  mac::DeploymentEngine engine{sites, *adapter, config,
                               mac::FaultSchedule::preset(profile, n_clients)};
  for (int c = 0; c < n_clients; ++c) {
    const int ap = c % n_aps;
    engine.add_client({60.0 * ap + 4.0 + 1.5 * (c / n_aps),
                       (c % 2 == 0) ? 6.0 : -6.0});
  }
  mac::InvariantAuditor auditor;
  engine.set_auditor(&auditor);

  // One epoch at a time so a trip dumps the post-mortem *at* the broken
  // epoch — the ring is frozen before later epochs can evict its events.
  bool postmortem_written = false;
  const auto write_postmortem = [&] {
    if (postmortem_written) return;
    const std::string path =
        postmortem_out.empty() ? "sicmac-postmortem.json" : postmortem_out;
    std::ofstream os{path};
    if (!os) {
      throw trace::TraceIoError("cannot open post-mortem file for write: " +
                                path);
    }
    os << recorder.postmortem_json(&series,
                                   static_cast<std::uint64_t>(window))
       << '\n';
    std::fprintf(stderr, "wrote post-mortem (%s) to %s\n",
                 recorder.tripped() ? recorder.trip_reason().c_str()
                                    : "requested",
                 path.c_str());
    postmortem_written = true;
  };
  for (int e = 0; e < n_epochs; ++e) {
    (void)engine.run_epoch();
    if (!record) continue;
    if (!auditor.ok()) {
      (void)recorder.trip(
          "invariant violation: " + auditor.violations().front().what,
          static_cast<std::uint64_t>(auditor.violations().front().epoch));
    }
    if (recorder.tripped()) write_postmortem();
  }
  if (record) {
    obs::set_flight(nullptr);
    obs::set_timeseries(nullptr);
    if (!postmortem_out.empty()) write_postmortem();
    if (!timeseries_out.empty()) {
      std::ofstream os{timeseries_out};
      if (!os) {
        throw trace::TraceIoError("cannot open time-series file for write: " +
                                  timeseries_out);
      }
      os << series.csv();
      std::fprintf(stderr, "wrote %zu time-series to %s\n", series.n_series(),
                   timeseries_out.c_str());
    }
  }
  const mac::DeploymentResult& r = engine.result();
  std::printf("deployment (%d APs, %d clients, %s, chaos=%s, %s):\n", n_aps,
              n_clients, adapter->name().c_str(), profile.c_str(),
              config.closed_loop
                  ? (config.enable_quarantine ? "closed-loop+quarantine"
                                              : "closed-loop")
                  : "open-loop");
  std::printf("  epochs              : %zu\n", r.epochs.size());
  std::printf("  offered / confirmed : %llu / %llu (%.2f%%)\n",
              static_cast<unsigned long long>(r.offered),
              static_cast<unsigned long long>(r.confirmed),
              100.0 * r.confirmation_rate());
  std::printf("  unrecovered drops   : %llu\n",
              static_cast<unsigned long long>(r.unrecovered));
  std::printf("  deferred (no AP)    : %llu\n",
              static_cast<unsigned long long>(r.deferred));
  std::printf("  planning decisions  : %llu\n",
              static_cast<unsigned long long>(r.decisions));
  std::printf("  handoffs            : %llu\n",
              static_cast<unsigned long long>(r.handoffs));
  std::printf("  quarantines / back  : %llu / %llu\n",
              static_cast<unsigned long long>(r.quarantines),
              static_cast<unsigned long long>(r.readmissions));
  std::printf("  watchdog fires      : %llu\n",
              static_cast<unsigned long long>(r.watchdog_fires));
  {
    double mean_health = 0.0;
    for (const auto& es : r.epochs) mean_health += es.mean_health;
    if (!r.epochs.empty()) {
      mean_health /= static_cast<double>(r.epochs.size());
    }
    std::printf("  mean epoch health   : %.3f\n", mean_health);
  }
  std::printf("  invariant audit     : %s (%llu epochs)\n",
              auditor.ok() ? "ok" : "VIOLATED",
              static_cast<unsigned long long>(auditor.epochs_checked()));
  if (args.has("health-summary")) {
    std::printf("  per-AP health (health = conf x 1/(1+retry) x (1-quar) x "
                "1/(1+flux)):\n");
    std::printf("    %3s %8s %12s %12s %12s\n", "ap", "epochs", "mean_health",
                "min_health", "mean_conf");
    for (const mac::ApHealthSummary& s : engine.health_summary()) {
      std::printf("    %3d %8llu %12.4f %12.4f %12.4f\n", s.ap,
                  static_cast<unsigned long long>(s.epochs_served),
                  s.mean_health, s.min_health, s.mean_confirmation);
    }
  }
  if (!auditor.ok()) {
    for (const auto& v : auditor.violations()) {
      std::fprintf(stderr, "invariant violation (epoch %d): %s\n", v.epoch,
                   v.what.c_str());
    }
    return 5;
  }
  return 0;
}

int cmd_report(const ArgParser& args) {
  // A self-contained markdown reproduction summary with bootstrap 95% CIs
  // on every headline fraction — the quick-look version of EXPERIMENTS.md.
  const int trials = args.get_int("trials", 4000);
  const std::uint64_t seed = args.get_u64("seed", 42);
  const int threads = args.get_threads();
  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  topology::SamplerConfig config;

  const auto row = [&](const char* name, const std::vector<double>& xs,
                       const char* paper) {
    const auto ci = analysis::bootstrap_fraction_above(xs, 1.2, 0.95, 400, 9);
    std::printf("| %-28s | %5.1f%% [%4.1f, %4.1f] | %-18s |\n", name,
                100.0 * ci.point, 100.0 * ci.lo, 100.0 * ci.hi, paper);
  };
  const auto table_header = [] {
    std::printf("| series | >20%% gain | paper |\n|---|---|---|\n");
  };

  std::printf("# sicmac reproduction summary\n\n");
  std::printf(
      "trials per experiment: %d, seed %llu. Values are the fraction of\n"
      "cases gaining over 20%% (bootstrap 95%% CI in brackets).\n\n",
      trials, static_cast<unsigned long long>(seed));

  std::printf("## Fig. 11a — upload pair techniques\n\n");
  table_header();
  const auto up = analysis::run_two_to_one_techniques(config, shannon, trials,
                                                      seed, kBits, threads);
  row("SIC alone", up.sic, "~20%");
  row("SIC + power control", up.power_control, "~40%");
  row("SIC + multirate", up.multirate, "~40%");
  row("SIC + packing", up.packing, "(not quoted)");

  std::printf("\n## Fig. 6 / 11b — two receivers\n\n");
  table_header();
  const auto cross = analysis::run_two_link_techniques(config, shannon, trials,
                                                       seed, kBits, threads);
  row("SIC alone", cross.sic, "~0 (90% no gain)");
  row("SIC + power control", cross.power_control, "very little");
  row("SIC + packing", cross.packing, "very little");
  {
    const auto gains = analysis::run_two_link_gains(config, shannon, trials,
                                                    seed, kBits, threads);
    const analysis::EmpiricalCdf cdf{gains};
    std::printf("\nno-gain fraction (Fig. 6): %.1f%%  (paper: ~90%%)\n",
                100.0 * cdf.at(1.0 + 1e-9));
  }

  std::printf("\n## Fig. 13 — trace-driven upload (1-day synthetic trace)\n\n");
  trace::BuildingConfig building;
  building.duration_s = 24 * 3600;
  const auto building_trace = trace::generate_building_trace(building, seed);
  analysis::UploadTraceEvalConfig upload_eval;
  upload_eval.threads = threads;
  const auto tgains =
      analysis::evaluate_upload_trace(building_trace, shannon, upload_eval);
  table_header();
  row("pairing (blossom)", tgains.pairing, "prospective");
  row("pairing + power ctl", tgains.power_control, "enhanced");
  row("pairing + multirate", tgains.multirate, "enhanced");
  row("greedy pairing", tgains.greedy_pairing, "(ablation)");

  std::printf("\n## Fig. 14 — trace-driven download link pairs\n\n");
  trace::LinkTraceConfig campaign;
  const auto link_trace = trace::generate_link_trace(campaign, seed);
  analysis::DownloadTraceEvalConfig eval;
  eval.pair_samples = trials;
  eval.threads = threads;
  const phy::DiscreteRateAdapter g11{phy::RateTable::dot11g()};
  const auto arb = analysis::evaluate_download_trace(link_trace, shannon, eval);
  const auto disc = analysis::evaluate_download_trace(link_trace, g11, eval);
  table_header();
  row("arbitrary rates, SIC", arb.plain, "limited");
  row("arbitrary rates, +packing", arb.packing, "limited");
  row("802.11g rates, SIC", disc.plain, "not significant");
  row("802.11g rates, +packing", disc.packing, "~40%");
  return 0;
}

int usage() {
  std::printf(
      "sicmac — SIC MAC-layer analysis toolkit\n"
      "global flags: [--metrics-out m.json] [--trace-out t.jsonl]\n"
      "              [--log-level off|error|warn|info|debug]\n"
      "              [--threads N]  (sweeps; 0 = all cores, results\n"
      "                              identical for any thread count)\n"
      "commands:\n"
      "  pair        --s1 dB --s2 dB [--table shannon|11b|11g|11n]\n"
      "  capacity    --s1 dB --s2 dB\n"
      "  crosslink   --s11 dB --s12 dB --s21 dB --s22 dB [--table ...]\n"
      "  schedule    --clients dB,dB,... [--power-control] [--multirate]\n"
      "              [--pairing blossom|greedy|approx|auto]\n"
      "              [--auto-tier-n0 N]  (auto: approx at >= N clients, 64)\n"
      "  backlog     --clients dB,... --queues n,... [--no-packing]\n"
      "              [--pairing ...] [--auto-tier-n0 N]\n"
      "  montecarlo  --scenario upload|crosslink|deployment [--trials N]\n"
      "              [--seed S] [--clients-per-cell K]\n"
      "  trace-gen   --out file.csv [--days D] [--seed S]\n"
      "  trace-eval  --in file.csv [--table ...]\n"
      "  mesh        --long m --short m [--exponent a]\n"
      "  simulate    --clients dB,... [--stale-sigma dB] [--stale-rho r]\n"
      "              [--cancel-prob p] [--ack-loss p] [--margin dB]\n"
      "              [--pairing ...] [--auto-tier-n0 N]\n"
      "              [--open-loop] [--seed S]\n"
      "  deploy      [--aps N] [--clients N] [--epochs N]\n"
      "              [--pairing ...] [--auto-tier-n0 N]\n"
      "              [--chaos-profile none|default|outage|burst|churn]\n"
      "              [--open-loop] [--no-quarantine] [--drift-sigma dB]\n"
      "              [--timeseries-out ts.csv] [--postmortem-out pm.json]\n"
      "              [--postmortem-window N] [--health-summary]\n"
      "              [--threads N] [--seed S]\n"
      "              The global --metrics-out/--trace-out/--log-level flags\n"
      "              apply here too; a watchdog trip or invariant violation\n"
      "              dumps the flight-recorder post-mortem immediately, and\n"
      "              a violated invariant exits with code 5.\n"
      "  report      [--trials N] [--seed S]\n"
      "exit codes: 0 ok, 1 internal, 2 usage, 3 file I/O, 4 trace format,\n"
      "            5 deployment invariant violated, 6 matching infeasible\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args{argc, argv};
    const std::string& cmd = args.command();

    // Global observability flags — parsed before dispatch so every command
    // runs instrumented the same way.
    const std::string log_level = args.get_string("log-level", "");
    if (!log_level.empty()) {
      const auto parsed = obs::parse_log_level(log_level);
      if (!parsed) {
        throw UsageError("unknown --log-level (off|error|warn|info|debug): " +
                         log_level);
      }
      obs::set_log_level(*parsed);
    }
    const std::string metrics_out = args.get_string("metrics-out", "");
    const std::string trace_out = args.get_string("trace-out", "");
    obs::MetricsRegistry registry;
    if (!metrics_out.empty()) obs::set_metrics(&registry);
    std::ofstream trace_os;
    std::unique_ptr<obs::TraceSink> sink;
    if (!trace_out.empty()) {
      trace_os.open(trace_out);
      if (!trace_os) {
        throw trace::TraceIoError("cannot open trace file for write: " +
                                  trace_out);
      }
      sink = std::make_unique<obs::TraceSink>(trace_os);
      obs::set_trace(sink.get());
    }

    int rc = 0;
    if (cmd == "pair") {
      rc = cmd_pair(args);
    } else if (cmd == "capacity") {
      rc = cmd_capacity(args);
    } else if (cmd == "crosslink") {
      rc = cmd_crosslink(args);
    } else if (cmd == "schedule") {
      rc = cmd_schedule(args);
    } else if (cmd == "backlog") {
      rc = cmd_backlog(args);
    } else if (cmd == "montecarlo") {
      rc = cmd_montecarlo(args);
    } else if (cmd == "trace-gen") {
      rc = cmd_trace_gen(args);
    } else if (cmd == "trace-eval") {
      rc = cmd_trace_eval(args);
    } else if (cmd == "mesh") {
      rc = cmd_mesh(args);
    } else if (cmd == "simulate") {
      rc = cmd_simulate(args);
    } else if (cmd == "deploy") {
      rc = cmd_deploy(args);
    } else if (cmd == "report") {
      rc = cmd_report(args);
    } else {
      return usage();
    }
    if (sink) {
      obs::set_trace(nullptr);
      sink->flush();
      std::fprintf(stderr, "wrote %llu trace events to %s\n",
                   static_cast<unsigned long long>(sink->events_written()),
                   trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      obs::set_metrics(nullptr);
      std::ofstream ms{metrics_out};
      if (!ms) {
        throw trace::TraceIoError("cannot open metrics file for write: " +
                                  metrics_out);
      }
      ms << registry.json_snapshot() << '\n';
      std::fprintf(stderr, "wrote metrics snapshot to %s\n",
                   metrics_out.c_str());
    }
    for (const auto& flag : args.unknown_flags()) {
      std::fprintf(stderr, "warning: unused flag --%s\n", flag.c_str());
    }
    return rc;
  } catch (const UsageError& e) {
    std::fprintf(stderr, "usage error: %s\n", e.what());
    return 2;
  } catch (const mac::FaultConfigError& e) {
    // Malformed chaos profile / fault knobs — a usage problem, not an
    // internal failure.
    std::fprintf(stderr, "usage error: %s\n", e.what());
    return 2;
  } catch (const trace::TraceIoError& e) {
    std::fprintf(stderr, "io error: %s\n", e.what());
    return 3;
  } catch (const trace::TraceFormatError& e) {
    std::fprintf(stderr, "trace format error: %s\n", e.what());
    return 4;
  } catch (const matching::MatchingError& e) {
    // The matching layer rejected its input (odd vertex count, no perfect
    // matching) — distinct from an internal error so scripts sweeping
    // --pairing configurations can tell the two apart.
    std::fprintf(stderr, "matching error: %s\n", e.what());
    return 6;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
