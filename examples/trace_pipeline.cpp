/// The full Section 7 upload workflow, end to end, through the public API:
/// generate a two-day building trace, persist it to CSV (exactly the file
/// a real measurement campaign would produce), reload it, and evaluate the
/// SIC-aware pairing gains per technique. Point `read_csv_file` at your own
/// trace to run the identical analysis on real data.

#include <cstdio>
#include <string>

#include "analysis/stats.hpp"
#include "analysis/trace_eval.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"

int main(int argc, char** argv) {
  using namespace sic;

  const std::string path =
      argc > 1 ? argv[1] : "/tmp/sicmac_building_trace.csv";

  // 1) Generate (skip this step when you have a real trace).
  trace::BuildingConfig config;
  config.duration_s = 2 * 24 * 3600;  // two days incl. the diurnal swing
  const auto generated = trace::generate_building_trace(config, 7);
  trace::write_csv_file(generated, path);
  std::printf("wrote %zu snapshots / %zu observations to %s\n",
              generated.snapshots.size(), generated.total_observations(),
              path.c_str());

  // 2) Reload — the evaluation below only ever sees the CSV.
  const auto trace = trace::read_csv_file(path);
  std::printf("reloaded %zu snapshots (%zu observations)\n",
              trace.snapshots.size(), trace.total_observations());

  // 3) Evaluate the SIC-aware upload scheduler on every (snapshot, AP)
  //    cell with at least two backlogged clients.
  const phy::ShannonRateAdapter adapter{megahertz(20.0)};
  const auto gains = analysis::evaluate_upload_trace(trace, adapter);
  std::printf("\nevaluated %d cells with >= 2 clients\n",
              gains.cells_evaluated);

  const auto report = [](const char* name, const std::vector<double>& xs) {
    const analysis::EmpiricalCdf cdf{xs};
    std::printf("  %-22s mean %.3f   >20%% gain in %.1f%% of cells\n", name,
                analysis::summarize(xs).mean,
                100.0 * cdf.fraction_above(1.2));
  };
  report("pairing (blossom)", gains.pairing);
  report("pairing + power ctl", gains.power_control);
  report("pairing + multirate", gains.multirate);
  report("greedy pairing", gains.greedy_pairing);
  return 0;
}
