#include "analysis/grid.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sic::analysis {

Grid2D::Grid2D(Axis x, Axis y) : x_(std::move(x)), y_(std::move(y)) {
  SIC_CHECK(x_.steps >= 1 && y_.steps >= 1);
  values_.assign(static_cast<std::size_t>(x_.steps) * y_.steps, 0.0);
}

void Grid2D::fill(const std::function<double(double, double)>& f) {
  for (int iy = 0; iy < y_.steps; ++iy) {
    for (int ix = 0; ix < x_.steps; ++ix) {
      set(ix, iy, f(x_.value(ix), y_.value(iy)));
    }
  }
}

double Grid2D::at(int ix, int iy) const {
  SIC_DCHECK(ix >= 0 && ix < x_.steps && iy >= 0 && iy < y_.steps);
  return values_[static_cast<std::size_t>(iy) * x_.steps + ix];
}

void Grid2D::set(int ix, int iy, double v) {
  SIC_DCHECK(ix >= 0 && ix < x_.steps && iy >= 0 && iy < y_.steps);
  values_[static_cast<std::size_t>(iy) * x_.steps + ix] = v;
}

double Grid2D::min_value() const {
  return *std::min_element(values_.begin(), values_.end());
}

double Grid2D::max_value() const {
  return *std::max_element(values_.begin(), values_.end());
}

double Grid2D::nearest(double x, double y) const {
  const auto index = [](const Axis& a, double v) {
    if (a.steps == 1) return 0;
    const double t = (v - a.lo) / (a.hi - a.lo) * (a.steps - 1);
    return std::clamp(static_cast<int>(std::lround(t)), 0, a.steps - 1);
  };
  return at(index(x_, x), index(y_, y));
}

std::string Grid2D::render_ascii() const {
  static constexpr char kRamp[] = " .:-=+*#%@";
  constexpr int kLevels = static_cast<int>(sizeof(kRamp)) - 2;
  const double lo = min_value();
  const double hi = max_value();
  const double span = hi > lo ? hi - lo : 1.0;
  std::ostringstream os;
  for (int iy = y_.steps - 1; iy >= 0; --iy) {
    for (int ix = 0; ix < x_.steps; ++ix) {
      const double t = (at(ix, iy) - lo) / span;
      const int level =
          std::clamp(static_cast<int>(std::lround(t * kLevels)), 0, kLevels);
      os << kRamp[level];
    }
    os << '\n';
  }
  os << "(x: " << x_.label << " " << x_.lo << ".." << x_.hi
     << ", y: " << y_.label << " " << y_.lo << ".." << y_.hi
     << ", value range " << lo << ".." << hi << ")\n";
  return os.str();
}

std::string Grid2D::to_csv() const {
  std::ostringstream os;
  os << x_.label << ',' << y_.label << ",value\n";
  for (int iy = 0; iy < y_.steps; ++iy) {
    for (int ix = 0; ix < x_.steps; ++ix) {
      os << x_.value(ix) << ',' << y_.value(iy) << ',' << at(ix, iy) << '\n';
    }
  }
  return os.str();
}

}  // namespace sic::analysis
