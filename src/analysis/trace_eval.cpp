#include "analysis/trace_eval.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/parallel.hpp"
#include "core/cross_link.hpp"
#include "obs/logger.hpp"
#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace sic::analysis {

namespace {

/// Gains of one (snapshot, AP) cell under the four scheduler variants, or
/// valid == false when the cell has no finite serial baseline.
struct CellGains {
  double pairing = 1.0;
  double power_control = 1.0;
  double multirate = 1.0;
  double greedy_pairing = 1.0;
  bool valid = false;
};

/// One download link-pair scenario; valid == false when no viable pair was
/// found within the rejection budget.
struct PairGains {
  double plain = 1.0;
  double packing = 1.0;
  bool valid = false;
};

}  // namespace

UploadTraceGains evaluate_upload_trace(const trace::RssiTrace& trace,
                                       const phy::RateAdapter& adapter,
                                       const UploadTraceEvalConfig& config) {
  SIC_CHECK(config.min_clients >= 2);
  obs::MetricsRegistry* reg = obs::metrics();
  obs::ScopedTimer timer{
      reg != nullptr ? &reg->histogram("analysis.trace_eval.upload_wall_s")
                     : nullptr};
  SIC_SPAN("trace_eval.upload");
  const Milliwatts noise = config.noise_floor.to_milliwatts();

  // Materialize the (snapshot, AP) cross product first: collecting link
  // budgets is cheap and sequential, the O(n²)–O(n³) schedule evaluation
  // per cell is what the parallel engine fans out, index-addressed so the
  // per-cell sample order matches the sequential sweep exactly.
  std::vector<std::vector<channel::LinkBudget>> cells;
  for (const auto& snap : trace.snapshots) {
    for (const auto& ap : snap.aps) {
      const int n = static_cast<int>(ap.clients.size());
      if (n < config.min_clients || n > config.max_clients) continue;
      std::vector<channel::LinkBudget> budgets;
      budgets.reserve(ap.clients.size());
      for (const auto& obs : ap.clients) {
        budgets.push_back(channel::LinkBudget{obs.rssi.to_milliwatts(), noise});
      }
      cells.push_back(std::move(budgets));
    }
  }

  ParallelRunner runner{{.threads = config.threads}};
  const auto per_cell = runner.map_indices<CellGains>(
      static_cast<std::int64_t>(cells.size()), [&](std::int64_t i) {
        const auto& budgets = cells[static_cast<std::size_t>(i)];
        CellGains out;
        const double serial = core::serial_upload_airtime(
            budgets, adapter, config.packet_bits);
        if (!std::isfinite(serial) || serial <= 0.0) return out;
        out.valid = true;
        const auto gain_for = [&](const core::SchedulerOptions& options) {
          const auto schedule =
              core::schedule_upload(budgets, adapter, options);
          return schedule.total_airtime > 0.0
                     ? serial / schedule.total_airtime
                     : 1.0;
        };
        core::SchedulerOptions base;
        base.packet_bits = config.packet_bits;
        out.pairing = gain_for(base);

        core::SchedulerOptions pc = base;
        pc.enable_power_control = true;
        out.power_control = gain_for(pc);

        core::SchedulerOptions mr = base;
        mr.enable_multirate = true;
        out.multirate = gain_for(mr);

        core::SchedulerOptions greedy = base;
        greedy.pairing = core::SchedulerOptions::Pairing::kGreedy;
        out.greedy_pairing = gain_for(greedy);
        return out;
      });

  UploadTraceGains out;
  out.pairing.reserve(per_cell.size());
  out.power_control.reserve(per_cell.size());
  out.multirate.reserve(per_cell.size());
  out.greedy_pairing.reserve(per_cell.size());
  for (const auto& cell : per_cell) {
    if (!cell.valid) continue;
    out.pairing.push_back(cell.pairing);
    out.power_control.push_back(cell.power_control);
    out.multirate.push_back(cell.multirate);
    out.greedy_pairing.push_back(cell.greedy_pairing);
    ++out.cells_evaluated;
  }
  if (reg != nullptr) {
    reg->counter("analysis.trace_eval.upload_cells").inc(out.cells_evaluated);
    reg->counter("analysis.trace_eval.upload_snapshots")
        .inc(trace.snapshots.size());
  }
  SIC_LOG_INFO("trace eval upload: %llu cells across %zu snapshots",
               static_cast<unsigned long long>(out.cells_evaluated),
               trace.snapshots.size());
  return out;
}

DownloadTraceGains evaluate_download_trace(
    const trace::LinkTrace& trace, const phy::RateAdapter& adapter,
    const DownloadTraceEvalConfig& config) {
  SIC_CHECK(config.pair_samples > 0);
  SIC_CHECK(trace.n_aps() >= 2 && trace.n_locations() >= 2);
  obs::MetricsRegistry* reg = obs::metrics();
  obs::ScopedTimer timer{
      reg != nullptr ? &reg->histogram("analysis.trace_eval.download_wall_s")
                     : nullptr};
  SIC_SPAN("trace_eval.download");
  const Decibels floor = config.min_link_snr;

  ParallelRunner runner{{.threads = config.threads}};
  const auto scenarios = runner.map_trials<PairGains>(
      config.pair_samples, config.seed, [&](Rng& rng, std::int64_t) {
        // Draw a scenario of two AP→client links with distinct APs and
        // clients; reject scenarios whose serving links are below the
        // measurement floor (no 90 %-delivery rate exists for them).
        PairGains out;
        int ap1 = 0, ap2 = 0, loc1 = 0, loc2 = 0;
        bool viable = false;
        for (int attempt = 0; attempt < 256 && !viable; ++attempt) {
          ap1 = rng.uniform_int(0, trace.n_aps() - 1);
          ap2 = rng.uniform_int(0, trace.n_aps() - 2);
          if (ap2 >= ap1) ++ap2;
          loc1 = rng.uniform_int(0, trace.n_locations() - 1);
          loc2 = rng.uniform_int(0, trace.n_locations() - 2);
          if (loc2 >= loc1) ++loc2;
          viable =
              trace.snr(ap1, loc1) >= floor && trace.snr(ap2, loc2) >= floor;
        }
        if (!viable) return out;  // degenerate campaign
        const auto rss = trace.two_link_rss(ap1, loc1, ap2, loc2);
        // The measured campaign counts any concurrency the SIC-capable MAC
        // can schedule, including capture-mode concurrency in the Fig. 5a
        // case.
        core::CrossLinkOptions options;
        options.packet_bits = config.packet_bits;
        options.include_capture_concurrency = true;
        out.plain = core::evaluate_cross_link(rss, adapter, options).gain;
        out.packing = core::cross_link_packing_gain(rss, adapter, options);
        out.valid = true;
        return out;
      });

  DownloadTraceGains out;
  out.plain.reserve(scenarios.size());
  out.packing.reserve(scenarios.size());
  std::uint64_t rejected = 0;
  for (const auto& s : scenarios) {
    if (!s.valid) {
      ++rejected;
      continue;
    }
    out.plain.push_back(s.plain);
    out.packing.push_back(s.packing);
  }
  if (reg != nullptr) {
    reg->counter("analysis.trace_eval.download_pairs").inc(out.plain.size());
    reg->counter("analysis.trace_eval.download_rejected").inc(rejected);
  }
  SIC_LOG_INFO(
      "trace eval download: %zu viable pair scenarios, %llu rejected",
      out.plain.size(), static_cast<unsigned long long>(rejected));
  return out;
}

}  // namespace sic::analysis
