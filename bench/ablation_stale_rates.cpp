/// Ablation — practical rate adaptation: staleness and safety margin. The
/// paper assumes "each packet is transmitted at the best feasible rate";
/// Section 1 concedes a practical adapter leaves slack. A practical
/// adapter on a drifting channel (AR(1) shadowing) must back off by a
/// safety margin or it loses packets outright — and that margin is exactly
/// the slack SIC can harvest from collisions. This bench sweeps both knobs
/// and reports, for a two-client collision at the AP:
///
///   clean ok    — both packets would survive *without* a collision
///   capture     — the stronger packet survives the collision
///   full SIC    — both packets survive the collision
///
/// Findings (the paper's pessimism, quantified): without margin, staleness
/// just breaks links; moderate margins (3-6 dB) restore clean delivery but
/// still salvage almost nothing from collisions; only drastic margins
/// begin to make collisions fully decodable — "the slack is fast
/// disappearing" holds even for sloppy adapters.

#include <cstdio>

#include "bench_util.hpp"
#include "channel/fading.hpp"
#include "phy/sic_decoder.hpp"
#include "topology/samplers.hpp"
#include "util/rng.hpp"

int main() {
  using namespace sic;
  bench::header("Ablation — stale rates and safety margins",
                "the adapter's backoff margin is SIC's only food, and "
                "realistic margins are thin");

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  const phy::SicDecoder decoder{shannon};
  topology::SamplerConfig config;
  constexpr int kTrials = 20000;
  const Decibels sigma{4.0};

  std::printf("%-8s %-10s %-12s %-12s %-12s\n", "rho", "margin", "clean ok",
              "capture", "full SIC");
  for (const double rho : {1.0, 0.9, 0.6}) {
    for (const double margin_db : {0.0, 3.0, 6.0, 12.0}) {
      Rng rng{2718};
      int clean_ok = 0;
      int capture = 0;
      int full_sic = 0;
      for (int t = 0; t < kTrials; ++t) {
        const auto sample = topology::sample_two_to_one(rng, config);
        channel::Ar1ShadowingTrack track1{rho, sigma, rng};
        channel::Ar1ShadowingTrack track2{rho, sigma, rng};
        const double seen1 = track1.current().value();
        const double seen2 = track2.current().value();
        const double now1 = track1.step(rng).value();
        const double now2 = track2.step(rng).value();

        const Milliwatts s1_now = sample.s1 * Decibels{now1}.linear();
        const Milliwatts s2_now = sample.s2 * Decibels{now2}.linear();
        // Rates picked on the stale view, backed off by the margin.
        const auto r1 = shannon.rate(
            sample.s1.value() * Decibels{seen1 - margin_db}.linear() /
            sample.noise.value());
        const auto r2 = shannon.rate(
            sample.s2.value() * Decibels{seen2 - margin_db}.linear() /
            sample.noise.value());

        if (shannon.feasible(r1, s1_now / sample.noise) &&
            shannon.feasible(r2, s2_now / sample.noise)) {
          ++clean_ok;
        }
        const auto arrival =
            phy::TwoSignalArrival::make(s1_now, s2_now, sample.noise);
        const bool one_stronger = s1_now >= s2_now;
        const auto outcome = decoder.decode(
            arrival, one_stronger ? r1 : r2, one_stronger ? r2 : r1);
        if (outcome.stronger_decoded) ++capture;
        if (outcome.both()) ++full_sic;
      }
      std::printf("%-8.2f %-10.1f %-12.4f %-12.4f %-12.4f\n", rho, margin_db,
                  static_cast<double>(clean_ok) / kTrials,
                  static_cast<double>(capture) / kTrials,
                  static_cast<double>(full_sic) / kTrials);
    }
  }
  std::printf("\n(rho = channel correlation between rate choice and packet "
              "flight; margin = adapter SNR backoff. rho=1,margin=0 is the "
              "paper's ideal-rate world: collisions never decode. Clean "
              "delivery needs ~1.5-2 sigma of margin once the channel "
              "drifts; even 12 dB of margin mostly yields capture, not "
              "full SIC.)\n");
  return 0;
}
