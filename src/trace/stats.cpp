#include "trace/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sic::trace {

TraceStats compute_trace_stats(const RssiTrace& trace) {
  TraceStats stats;
  stats.snapshots = trace.snapshots.size();
  double rssi_sum = 0.0;
  double rssi_sum2 = 0.0;
  std::size_t cells = 0;
  std::size_t cell_clients = 0;
  for (const auto& snap : trace.snapshots) {
    for (const auto& ap : snap.aps) {
      const int n = static_cast<int>(ap.clients.size());
      if (n == 0) continue;
      ++cells;
      cell_clients += static_cast<std::size_t>(n);
      stats.max_clients_per_cell = std::max(stats.max_clients_per_cell, n);
      if (n >= 2) ++stats.cells_with_pairing_potential;
      for (const auto& obs : ap.clients) {
        rssi_sum += obs.rssi.value();
        rssi_sum2 += obs.rssi.value() * obs.rssi.value();
        ++stats.observations;
      }
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
          const double a = ap.clients[static_cast<std::size_t>(i)].rssi.value();
          const double b = ap.clients[static_cast<std::size_t>(j)].rssi.value();
          stats.pairwise_disparity.push_back(Decibels{std::fabs(a - b)});
          stats.pair_weak_rssi_and_disparity_.emplace_back(
              Dbm{std::min(a, b)}, Decibels{std::fabs(a - b)});
        }
      }
    }
  }
  if (cells > 0) {
    stats.mean_clients_per_cell =
        static_cast<double>(cell_clients) / static_cast<double>(cells);
  }
  if (stats.observations > 0) {
    const double n = static_cast<double>(stats.observations);
    const double mean = rssi_sum / n;
    stats.rssi_mean = Dbm{mean};
    const double var = std::max(0.0, rssi_sum2 / n - mean * mean);
    stats.rssi_stddev = Decibels{std::sqrt(var)};
  }
  return stats;
}

double TraceStats::ridge_fraction(Dbm noise_floor, Decibels band) const {
  if (pair_weak_rssi_and_disparity_.empty()) return 0.0;
  std::size_t on_ridge = 0;
  for (const auto& [weak_rssi, disparity] : pair_weak_rssi_and_disparity_) {
    // Ridge: stronger SNR = 2 * weaker SNR (dB) ⇔ disparity = weaker SNR.
    const Decibels weaker_snr = weak_rssi - noise_floor;
    if (std::fabs(disparity.value() - weaker_snr.value()) <= band.value()) {
      ++on_ridge;
    }
  }
  return static_cast<double>(on_ridge) /
         static_cast<double>(pair_weak_rssi_and_disparity_.size());
}

}  // namespace sic::trace
