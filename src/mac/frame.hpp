#ifndef SICMAC_MAC_FRAME_HPP
#define SICMAC_MAC_FRAME_HPP

/// \file frame.hpp
/// MAC frames carried by the simulated medium.

#include <cstdint>

namespace sic::mac {

using MacNodeId = int;

enum class FrameType : std::uint8_t {
  kData,
  kAck,
  kRts,
  kCts,
};

struct Frame {
  std::uint64_t id = 0;
  FrameType type = FrameType::kData;
  MacNodeId src = -1;
  MacNodeId dst = -1;
  double payload_bits = 0.0;
  /// For ACKs: the data frame being acknowledged.
  std::uint64_t acked_frame_id = 0;
  /// Multirate packetization (Section 5.3) splits one packet into
  /// fragments sent at different rates; only the final fragment completes
  /// the packet (and solicits the ACK).
  bool final_fragment = true;
  /// Virtual-carrier-sense reservation (RTS/CTS): overhearers defer this
  /// long past the frame's end. 0 = no reservation.
  std::int64_t nav_duration_ns = 0;
};

}  // namespace sic::mac

#endif  // SICMAC_MAC_FRAME_HPP
