#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sic::trace {
namespace {

BuildingConfig small_config() {
  BuildingConfig config;
  config.duration_s = 4 * 3600;  // 4 hours for test speed
  config.diurnal = false;        // stationary occupancy for exact checks
  return config;
}

TEST(TraceGenerator, SnapshotCadence) {
  const auto config = small_config();
  const RssiTrace trace = generate_building_trace(config, 1);
  EXPECT_EQ(trace.snapshots.size(),
            static_cast<std::size_t>(config.duration_s /
                                     config.snapshot_period_s));
  for (std::size_t i = 0; i < trace.snapshots.size(); ++i) {
    EXPECT_EQ(trace.snapshots[i].timestamp_s,
              static_cast<std::int64_t>(i) * config.snapshot_period_s);
  }
}

TEST(TraceGenerator, EveryApPresentInEverySnapshot) {
  const auto config = small_config();
  const RssiTrace trace = generate_building_trace(config, 2);
  const std::size_t n_aps =
      static_cast<std::size_t>(config.ap_grid_x * config.ap_grid_y);
  for (const auto& snap : trace.snapshots) {
    EXPECT_EQ(snap.aps.size(), n_aps);
  }
}

TEST(TraceGenerator, ClientAppearsAtMostOncePerSnapshot) {
  const RssiTrace trace = generate_building_trace(small_config(), 3);
  for (const auto& snap : trace.snapshots) {
    std::set<std::uint32_t> seen;
    for (const auto& ap : snap.aps) {
      for (const auto& obs : ap.clients) {
        EXPECT_TRUE(seen.insert(obs.client_id).second)
            << "client associated with two APs in one snapshot";
      }
    }
  }
}

TEST(TraceGenerator, RssiAboveAssociationFloor) {
  const auto config = small_config();
  const RssiTrace trace = generate_building_trace(config, 4);
  for (const auto& snap : trace.snapshots) {
    for (const auto& ap : snap.aps) {
      for (const auto& obs : ap.clients) {
        EXPECT_GE(obs.rssi.value(), config.association_floor.value());
        EXPECT_LT(obs.rssi.value(), config.client_tx_power.value());
      }
    }
  }
}

TEST(TraceGenerator, PresenceMatchesDutyCycle) {
  auto config = small_config();
  config.presence_probability = 0.5;
  const RssiTrace trace = generate_building_trace(config, 5);
  const double expected =
      trace.snapshots.size() * config.client_population * 0.5;
  const double actual = static_cast<double>(trace.total_observations());
  // Association floor drops a few observations; allow slack on both sides.
  EXPECT_GT(actual, expected * 0.6);
  EXPECT_LT(actual, expected * 1.1);
}

TEST(TraceGenerator, DeterministicPerSeed) {
  const auto a = generate_building_trace(small_config(), 9);
  const auto b = generate_building_trace(small_config(), 9);
  ASSERT_EQ(a.total_observations(), b.total_observations());
  ASSERT_EQ(a.snapshots.size(), b.snapshots.size());
  for (std::size_t i = 0; i < a.snapshots.size(); ++i) {
    ASSERT_EQ(a.snapshots[i].aps.size(), b.snapshots[i].aps.size());
  }
}

TEST(TraceGenerator, DiurnalFactorShape) {
  // Trace starts Monday 00:00. Weekday peak around 13:00 is ~1; 03:00 is
  // near the floor; Saturday noon sits between.
  const double monday_1pm = diurnal_presence_factor(13 * 3600);
  const double monday_3am = diurnal_presence_factor(3 * 3600);
  const double saturday_1pm = diurnal_presence_factor((5 * 24 + 13) * 3600);
  EXPECT_GT(monday_1pm, 0.9);
  EXPECT_LT(monday_3am, 0.15);
  EXPECT_GT(saturday_1pm, monday_3am);
  EXPECT_LT(saturday_1pm, 0.5 * monday_1pm);
}

TEST(TraceGenerator, DiurnalTraceIsBusierAtNoonThanAtNight) {
  BuildingConfig config;
  config.duration_s = 24 * 3600;
  config.diurnal = true;
  const RssiTrace trace = generate_building_trace(config, 8);
  std::size_t noon = 0;
  std::size_t night = 0;
  for (const auto& snap : trace.snapshots) {
    const int hour = static_cast<int>((snap.timestamp_s / 3600) % 24);
    std::size_t present = 0;
    for (const auto& ap : snap.aps) present += ap.clients.size();
    if (hour >= 11 && hour < 15) noon += present;
    if (hour >= 1 && hour < 5) night += present;
  }
  EXPECT_GT(noon, 5 * std::max<std::size_t>(night, 1));
}

TEST(TraceGenerator, MultipleClientsPerApOccur) {
  // Fig. 13 needs (snapshot, AP) cells with >= 2 clients; the default
  // building must produce plenty.
  const RssiTrace trace = generate_building_trace(small_config(), 6);
  int multi = 0;
  for (const auto& snap : trace.snapshots) {
    for (const auto& ap : snap.aps) {
      if (ap.clients.size() >= 2) ++multi;
    }
  }
  EXPECT_GT(multi, 20);
}

}  // namespace
}  // namespace sic::trace
