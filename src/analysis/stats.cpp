#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace sic::analysis {

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  double sum = 0.0;
  s.min = samples[0];
  s.max = samples[0];
  for (const double x : samples) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.count);
  double var = 0.0;
  for (const double x : samples) var += (x - s.mean) * (x - s.mean);
  s.stddev = s.count > 1
                 ? std::sqrt(var / static_cast<double>(s.count - 1))
                 : 0.0;
  return s;
}

double quantile_sorted(std::span<const double> sorted, double p) {
  SIC_CHECK(!sorted.empty());
  SIC_CHECK(p >= 0.0 && p <= 1.0);
  const std::size_t n = sorted.size();
  const double rank = p * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= n) return sorted[n - 1];
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  SIC_CHECK_MSG(!sorted_.empty(), "CDF over an empty sample set");
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  SIC_CHECK(p >= 0.0 && p <= 1.0);
  if (p <= 0.0) return sorted_.front();
  const auto idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_.size())) - 1);
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<EmpiricalCdf::Point> EmpiricalCdf::curve(int points) const {
  SIC_CHECK(points >= 2);
  std::vector<Point> out;
  out.reserve(static_cast<std::size_t>(points));
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  if (bitwise_equal(lo, hi)) {
    // Degenerate sample set (all values equal): the evenly-spaced grid
    // collapses to a single x, so return the step function explicitly
    // rather than `points` copies of the same coordinate.
    out.push_back(Point{lo, at(lo)});
    return out;
  }
  for (int i = 0; i < points; ++i) {
    const double x = lo + (hi - lo) * i / (points - 1);
    out.push_back(Point{x, at(x)});
  }
  return out;
}

ConfidenceInterval bootstrap_fraction_above(std::span<const double> samples,
                                            double threshold,
                                            double confidence, int resamples,
                                            std::uint64_t seed) {
  SIC_CHECK(!samples.empty());
  SIC_CHECK(confidence > 0.0 && confidence < 1.0);
  SIC_CHECK(resamples >= 10);
  const int n = static_cast<int>(samples.size());
  int above = 0;
  for (const double x : samples) {
    if (x > threshold) ++above;
  }
  ConfidenceInterval ci;
  ci.point = static_cast<double>(above) / n;

  Rng rng{seed};
  std::vector<double> stats;
  stats.reserve(static_cast<std::size_t>(resamples));
  for (int r = 0; r < resamples; ++r) {
    int hits = 0;
    for (int i = 0; i < n; ++i) {
      if (samples[static_cast<std::size_t>(rng.uniform_int(0, n - 1))] >
          threshold) {
        ++hits;
      }
    }
    stats.push_back(static_cast<double>(hits) / n);
  }
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - confidence) / 2.0;
  ci.lo = quantile_sorted(stats, alpha);
  ci.hi = quantile_sorted(stats, 1.0 - alpha);
  return ci;
}

}  // namespace sic::analysis
