#include "phy/rate_table.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/mathx.hpp"

namespace sic::phy {

namespace {

/// Smallest positive double x with Decibels::from_linear(x) >= threshold.
/// Starts from the analytic inverse (10^(t/10), correct to a few ulp) and
/// walks ulp by ulp against the *exact* scalar predicate until it sits on
/// the boundary, so a linear comparison against the result reproduces the
/// dB comparison's decision for every representable input — the fast
/// rate_span never disagrees with the scalar path by even one ulp.
double linear_cutover(Decibels threshold) {
  const auto meets = [&](double v) {
    return Decibels::from_linear(v) >= threshold;
  };
  double x = threshold.linear();
  SIC_CHECK(std::isfinite(x) && x > 0.0);
  if (meets(x)) {
    for (double below = std::nextafter(x, 0.0); meets(below);
         below = std::nextafter(x, 0.0)) {
      x = below;
    }
  } else {
    while (!meets(x)) {
      x = std::nextafter(x, std::numeric_limits<double>::infinity());
    }
  }
  return x;
}

}  // namespace

RateTable::RateTable(std::string name, std::vector<RateEntry> entries)
    : name_(std::move(name)), entries_(std::move(entries)) {
  SIC_CHECK_MSG(!entries_.empty(), "rate table must be non-empty");
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    SIC_CHECK_MSG(entries_[i].rate > entries_[i - 1].rate,
                  "rates must be strictly increasing");
    SIC_CHECK_MSG(entries_[i].min_sinr > entries_[i - 1].min_sinr,
                  "thresholds must be strictly increasing");
  }
  linear_cutovers_.reserve(entries_.size());
  rate_steps_.reserve(entries_.size() + 1);
  rate_steps_.push_back(BitsPerSecond{0.0});
  for (const RateEntry& e : entries_) {
    linear_cutovers_.push_back(linear_cutover(e.min_sinr));
    rate_steps_.push_back(e.rate);
  }
}

BitsPerSecond RateTable::best_rate(Decibels sinr) const {
  BitsPerSecond best{0.0};
  for (const auto& e : entries_) {
    if (sinr >= e.min_sinr) {
      best = e.rate;
    } else {
      break;
    }
  }
  return best;
}

Decibels RateTable::min_sinr_for(BitsPerSecond rate) const {
  for (const auto& e : entries_) {
    if (approx_equal(e.rate.value(), rate.value())) return e.min_sinr;
  }
  SIC_CHECK_MSG(false, "rate not present in table " + name_);
  return Decibels{0.0};  // unreachable
}

bool RateTable::supports(BitsPerSecond rate, Decibels sinr) const {
  return sinr >= min_sinr_for(rate);
}

namespace {

std::vector<RateEntry> mbps_table(
    std::initializer_list<std::pair<double, double>> rate_and_threshold) {
  std::vector<RateEntry> out;
  out.reserve(rate_and_threshold.size());
  for (const auto& [mbps, db] : rate_and_threshold) {
    out.push_back(RateEntry{megabits_per_second(mbps), Decibels{db}});
  }
  return out;
}

}  // namespace

const RateTable& RateTable::dot11b() {
  static const RateTable table{"802.11b", mbps_table({
                                              {1.0, 1.0},
                                              {2.0, 3.0},
                                              {5.5, 6.0},
                                              {11.0, 9.0},
                                          })};
  return table;
}

const RateTable& RateTable::dot11g() {
  // OFDM thresholds: BPSK1/2 .. 64QAM3/4, ~90% delivery.
  static const RateTable table{"802.11g", mbps_table({
                                              {6.0, 6.0},
                                              {9.0, 7.8},
                                              {12.0, 9.0},
                                              {18.0, 10.8},
                                              {24.0, 17.0},
                                              {36.0, 18.8},
                                              {48.0, 24.0},
                                              {54.0, 24.6},
                                          })};
  return table;
}

const RateTable& RateTable::dot11n() {
  // 20 MHz, 800 ns GI, MCS 0-31. Per-stream rates replicate the MCS 0-7
  // ladder; each extra spatial stream adds ~3 dB to the required SINR
  // (equal-power stream splitting) plus a small demux penalty. The table is
  // thinned to keep thresholds strictly monotone in rate, yielding the
  // paper's "32 rates" granularity.
  static const RateTable table = [] {
    const std::pair<double, double> mcs0_7[] = {
        {6.5, 5.0},  {13.0, 8.0},  {19.5, 11.0}, {26.0, 14.0},
        {39.0, 18.0}, {52.0, 22.0}, {58.5, 26.0}, {65.0, 28.0}};
    std::vector<RateEntry> all;
    for (int streams = 1; streams <= 4; ++streams) {
      const double stream_penalty_db = 3.2 * (streams - 1);
      for (const auto& [mbps, db] : mcs0_7) {
        all.push_back(RateEntry{megabits_per_second(mbps * streams),
                                Decibels{db + stream_penalty_db}});
      }
    }
    std::sort(all.begin(), all.end(),
              [](const RateEntry& a, const RateEntry& b) {
                return a.rate < b.rate ||
                       (a.rate == b.rate && a.min_sinr < b.min_sinr);
              });
    // Keep the Pareto frontier: drop entries whose threshold is not strictly
    // above the previous kept entry's (a slower rate never needs more SINR).
    std::vector<RateEntry> frontier;
    for (const auto& e : all) {
      while (!frontier.empty() && frontier.back().min_sinr >= e.min_sinr) {
        frontier.pop_back();
      }
      if (frontier.empty() || e.rate > frontier.back().rate) {
        frontier.push_back(e);
      }
    }
    return RateTable{"802.11n", std::move(frontier)};
  }();
  return table;
}

}  // namespace sic::phy
