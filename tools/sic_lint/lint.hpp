/// sic_lint — domain static analysis for the sicmac tree.
///
/// A deliberately small token/regex-level checker (no libclang) enforcing
/// the project's domain conventions:
///
///   R1  conversion-hygiene: no hand-rolled pow(10, x/10) / log10 dB↔linear
///       conversions outside util/units.hpp — use sic::Decibels / sic::Dbm.
///   R2  unit-suffix hygiene: no raw `double` declarations whose identifier
///       carries a unit suffix (_db, _dbm, _mw) in headers. Existing debt is
///       tracked in a checked-in baseline; new findings and stale baseline
///       entries both fail the lint.
///   R3  determinism: no std::rand/srand, no wall-clock time sources
///       (system_clock, high_resolution_clock), and no iteration over
///       unordered containers (iteration order is unspecified and would leak
///       into results). Iterator-validity comparisons (`it != c.end()`,
///       `c.find(k) == c.end()`) are deterministic membership tests and are
///       exempt. Observability and bench code is exempt by path.
///   R4  observer purity: metrics mutators (counter(...).inc, gauge(...).set,
///       histogram(...).observe, series(...).record) must be statements of
///       their own — never part of a value-producing expression (returned,
///       assigned — including compound forms like `+=` — or nested in
///       another call), so detaching the registry can never change behavior.
///
/// Findings can be locally suppressed with a trailing
/// `// sic-lint: allow(R1)` comment (or a comment-only line immediately
/// above the offending line); multiple rules separate with commas. Only
/// real comments count: the marker inside a string literal is inert.
///
/// The analysis is textual and line-oriented by design: it runs in
/// milliseconds over the whole tree, needs no compile database, and the
/// rules target idioms that are reliably visible at token level. Comments
/// and string/char literals are blanked first so prose never trips a rule.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sic::lint {

/// One rule violation (or baseline staleness error).
struct Finding {
  std::string rule;     ///< "R1".."R4", or "baseline" for stale entries.
  std::string path;     ///< File path as passed to lint_file().
  int line = 1;         ///< 1-indexed line of the violation.
  std::string symbol;   ///< Flagged identifier (R2 only; baseline key).
  std::string message;  ///< Human-readable explanation.
};

/// Replaces comments and string/char literal contents with spaces while
/// preserving the line structure and column positions of all remaining
/// tokens, so rule matches report accurate locations. Handles //, /*...*/,
/// escape sequences, and raw string literals.
[[nodiscard]] std::string sanitize(std::string_view source);

/// Inverse channel of sanitize(): keeps comment text (and newlines), blanks
/// code and literal contents. Suppression comments are parsed from this
/// view, so `sic-lint: allow(...)` inside a string literal never suppresses.
[[nodiscard]] std::string comments_only(std::string_view source);

/// Runs every rule applicable to `path` over `source` and returns findings
/// in line order. Suppression comments are honored. The R2 baseline is NOT
/// applied here — see apply_baseline().
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             std::string_view source);

/// Parses a baseline file: one `path:identifier` entry per line, `#`
/// comments and blank lines ignored.
[[nodiscard]] std::vector<std::string> parse_baseline(std::string_view text);

/// Removes R2 findings whose `path:symbol` key appears in `baseline`.
/// Baseline entries that match no finding are STALE: each produces a
/// Finding with rule "baseline" so the file cannot rot.
[[nodiscard]] std::vector<Finding> apply_baseline(
    std::vector<Finding> findings, const std::vector<std::string>& baseline);

/// `path:line: [rule] message` — the canonical one-line rendering.
[[nodiscard]] std::string format_finding(const Finding& finding);

}  // namespace sic::lint
