#include "channel/fading.hpp"

#include <cmath>

#include "util/check.hpp"

namespace sic::channel {

Ar1ShadowingTrack::Ar1ShadowingTrack(double rho, Decibels sigma, Rng& rng)
    : rho_(rho), sigma_(sigma) {
  SIC_CHECK_MSG(rho >= 0.0 && rho <= 1.0, "AR(1) rho must be in [0,1]");
  SIC_CHECK_MSG(sigma_.value() >= 0.0, "sigma must be non-negative");
  state_ = Decibels{rng.normal(0.0, sigma_.value())};  // stationary law
}

Decibels Ar1ShadowingTrack::step(Rng& rng) {
  const double innovation =
      std::sqrt(std::max(0.0, 1.0 - rho_ * rho_)) *
      rng.normal(0.0, sigma_.value());
  state_ = Decibels{rho_ * state_.value() + innovation};
  return state_;
}

}  // namespace sic::channel
