#include "core/backlog.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/upload_pair.hpp"
#include "util/rng.hpp"

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};
constexpr Milliwatts kN0{1.0};

BacklogClient client_db(double snr_db, int packets) {
  return BacklogClient{
      channel::LinkBudget{Milliwatts{Decibels{snr_db}.linear()}, kN0},
      packets};
}

TEST(BacklogDrain, SoloDrainScalesLinearly) {
  const auto c1 = client_db(20.0, 1);
  const auto c5 = client_db(20.0, 5);
  EXPECT_NEAR(solo_drain_airtime(c5, kShannon, 12000.0),
              5.0 * solo_drain_airtime(c1, kShannon, 12000.0), 1e-15);
  EXPECT_DOUBLE_EQ(solo_drain_airtime(client_db(20.0, 0), kShannon, 12000.0),
                   0.0);
}

TEST(BacklogDrain, SingleFrameEachMatchesPairPlan) {
  // With one packet per client the backlog machinery must agree with the
  // single-packet algebra.
  const auto a = client_db(24.0, 1);
  const auto b = client_db(12.0, 1);
  BacklogOptions options;
  options.enable_packing = false;
  const auto plan = best_drain_plan(a, b, kShannon, options);
  const auto ctx =
      UploadPairContext::make(a.link.rss, b.link.rss, kN0, kShannon, 12000.0);
  const double expect = std::min(serial_airtime(ctx), sic_airtime(ctx));
  EXPECT_NEAR(plan.airtime, expect, expect * 1e-12);
}

TEST(BacklogDrain, DisciplinesOrdered) {
  // Packed trains <= SIC rounds <= serial whenever SIC is feasible, since
  // each discipline generalizes the previous one's schedule space here.
  Rng rng{3};
  for (int trial = 0; trial < 200; ++trial) {
    const auto a = client_db(rng.uniform(8.0, 40.0), rng.uniform_int(1, 10));
    const auto b = client_db(rng.uniform(4.0, 35.0), rng.uniform_int(1, 10));
    BacklogOptions none;
    none.enable_packing = false;
    const auto without = best_drain_plan(a, b, kShannon, none);
    BacklogOptions with;
    const auto packed = best_drain_plan(a, b, kShannon, with);
    EXPECT_LE(packed.airtime, without.airtime + without.airtime * 1e-12)
        << "trial " << trial;
    const double serial = solo_drain_airtime(a, kShannon, 12000.0) +
                          solo_drain_airtime(b, kShannon, 12000.0);
    EXPECT_LE(without.airtime, serial + serial * 1e-12);
  }
}

TEST(BacklogDrain, PackingShinesWithAsymmetricQueues) {
  // A deep queue on the concurrent-fast client: trains ride the slow
  // client's long packets. Versus *lockstep* SIC rounds the saving is
  // large (the fast queue would otherwise drain serially); versus the best
  // non-packing discipline the saving is the slow client's clean airtime
  // per train.
  const auto slow = client_db(21.0, 2);    // similar RSS ⇒ slow under SIC
  const auto fast = client_db(20.0, 12);
  BacklogOptions options;
  const auto plan = best_drain_plan(slow, fast, kShannon, options);
  EXPECT_EQ(plan.mode, DrainMode::kPackedTrains);

  // Explicit lockstep-rounds time: min(q) concurrent rounds + leftovers.
  const auto ctx = UploadPairContext::make(slow.link.rss, fast.link.rss, kN0,
                                           kShannon, 12000.0);
  const double lockstep =
      2.0 * sic_airtime(ctx) +
      10.0 * solo_airtime(fast.link, kShannon, 12000.0);
  EXPECT_LT(plan.airtime, lockstep * 0.8);

  // And strictly better than the best non-packing discipline.
  BacklogOptions no_pack;
  no_pack.enable_packing = false;
  const auto without = best_drain_plan(slow, fast, kShannon, no_pack);
  EXPECT_LT(plan.airtime, without.airtime);
}

TEST(BacklogDrain, TrainAccountingExactOnSmallCase) {
  // slow client: 1 packet, fast: 6 packets, t_slow/t_fast just above 6: a
  // single full train carries everything and beats the serial drain by the
  // slow client's clean airtime.
  const auto a = client_db(20.5, 1);  // stronger, slow under SIC
  const auto b = client_db(20.0, 6);
  const auto ctx =
      UploadPairContext::make(a.link.rss, b.link.rss, kN0, kShannon, 12000.0);
  const auto rates = sic_rates(ctx);
  const double t_slow = 12000.0 / rates.stronger.value();
  const double t_fast = 12000.0 / rates.weaker.value();
  ASSERT_GT(t_slow / t_fast, 6.0);
  ASSERT_LT(t_slow / t_fast, 7.0);
  const auto plan = best_drain_plan(a, b, kShannon, BacklogOptions{});
  EXPECT_EQ(plan.mode, DrainMode::kPackedTrains);
  EXPECT_EQ(plan.rounds, 1);
  EXPECT_NEAR(plan.airtime, t_slow, t_slow * 1e-12);
}

TEST(BacklogDrain, ZeroQueuePairDegradesToSolo) {
  const auto a = client_db(20.0, 4);
  const auto b = client_db(15.0, 0);
  const auto plan = best_drain_plan(a, b, kShannon, BacklogOptions{});
  EXPECT_NEAR(plan.airtime, solo_drain_airtime(a, kShannon, 12000.0),
              1e-12);
}

TEST(BacklogSchedule, NeverWorseThanSerial) {
  Rng rng{9};
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<BacklogClient> clients;
    const int n = rng.uniform_int(2, 10);
    for (int i = 0; i < n; ++i) {
      clients.push_back(
          client_db(rng.uniform(8.0, 40.0), rng.uniform_int(1, 8)));
    }
    const auto schedule =
        schedule_backlog_upload(clients, kShannon, BacklogOptions{});
    const double serial =
        serial_backlog_airtime(clients, kShannon, 12000.0);
    EXPECT_LE(schedule.total_airtime, serial + serial * 1e-9)
        << "trial " << trial;
    // Every client appears exactly once.
    std::vector<int> seen(static_cast<std::size_t>(n), 0);
    for (const auto& slot : schedule.slots) {
      ++seen[static_cast<std::size_t>(slot.first)];
      if (slot.second >= 0) ++seen[static_cast<std::size_t>(slot.second)];
    }
    for (const int s : seen) EXPECT_EQ(s, 1);
  }
}

TEST(BacklogSchedule, DeeperQueuesRaiseThePackingPayoff) {
  // The paper: packing "will depend heavily on the traffic patterns" — its
  // payoff over lockstep SIC grows with queue depth.
  std::vector<BacklogClient> shallow;
  std::vector<BacklogClient> deep;
  Rng rng{12};
  for (int i = 0; i < 8; ++i) {
    const double snr = rng.uniform(15.0, 30.0);
    shallow.push_back(client_db(snr, 1));
    deep.push_back(client_db(snr, 10));
  }
  BacklogOptions with;
  BacklogOptions without;
  without.enable_packing = false;
  const double shallow_ratio =
      schedule_backlog_upload(shallow, kShannon, without).total_airtime /
      schedule_backlog_upload(shallow, kShannon, with).total_airtime;
  const double deep_ratio =
      schedule_backlog_upload(deep, kShannon, without).total_airtime /
      schedule_backlog_upload(deep, kShannon, with).total_airtime;
  EXPECT_GE(deep_ratio + 1e-9, shallow_ratio);
}

TEST(BacklogSchedule, EmptyAndSingle) {
  EXPECT_TRUE(
      schedule_backlog_upload({}, kShannon, BacklogOptions{}).slots.empty());
  const std::vector<BacklogClient> one{client_db(20.0, 3)};
  const auto schedule =
      schedule_backlog_upload(one, kShannon, BacklogOptions{});
  ASSERT_EQ(schedule.slots.size(), 1u);
  EXPECT_EQ(schedule.slots[0].second, -1);
  EXPECT_NEAR(schedule.total_airtime,
              solo_drain_airtime(one[0], kShannon, 12000.0), 1e-12);
}

TEST(BacklogSchedule, BlossomBeatsGreedyPairing) {
  Rng rng{21};
  std::vector<BacklogClient> clients;
  for (int i = 0; i < 10; ++i) {
    clients.push_back(client_db(rng.uniform(8.0, 40.0), rng.uniform_int(1, 6)));
  }
  BacklogOptions blossom;
  BacklogOptions greedy;
  greedy.pairing = SchedulerOptions::Pairing::kGreedy;
  EXPECT_LE(schedule_backlog_upload(clients, kShannon, blossom).total_airtime,
            schedule_backlog_upload(clients, kShannon, greedy).total_airtime +
                1e-9);
}

}  // namespace
}  // namespace sic::core
