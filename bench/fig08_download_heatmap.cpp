/// Reproduces Fig. 8: download traffic from two APs to one client in an
/// enterprise WLAN — eq (10) / eq (6). "Very little benefit from SIC."

#include <cstdio>

#include "analysis/grid.hpp"
#include "bench_util.hpp"
#include "core/download.hpp"

int main(int argc, char** argv) {
  using namespace sic;
  const bench::RunTimer timer;
  bench::header("Fig. 8 — two APs to one client (download)",
                "modest gain only where one RSS ~ square of the other; "
                "overall gains quite limited");

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  analysis::Grid2D grid{{"S1 (dB)", 0.0, 40.0, 41}, {"S2 (dB)", 0.0, 40.0, 41}};
  double max_gain = 0.0;
  double at_s1 = 0.0;
  double at_s2 = 0.0;
  grid.fill([&](double s1_db, double s2_db) {
    const auto ctx = core::UploadPairContext::make(
        Milliwatts{Decibels{s1_db}.linear()},
        Milliwatts{Decibels{s2_db}.linear()}, Milliwatts{1.0}, shannon);
    const double g = core::evaluate_download(ctx).gain;
    if (g > max_gain) {
      max_gain = g;
      at_s1 = s1_db;
      at_s2 = s2_db;
    }
    return g;
  });
  std::printf("%s\n", grid.render_ascii().c_str());
  std::printf("max gain %.4f at S1=%.0f dB, S2=%.0f dB "
              "(square relationship: S1 ~ 2*S2 in dB)\n",
              max_gain, std::max(at_s1, at_s2), std::min(at_s1, at_s2));
  std::printf("fraction of grid with gain > 1.1: ");
  int over = 0;
  int total = 0;
  for (int ix = 0; ix < 41; ++ix) {
    for (int iy = 0; iy < 41; ++iy) {
      ++total;
      if (grid.at(ix, iy) > 1.1) ++over;
    }
  }
  std::printf("%.1f%%\n", 100.0 * over / total);
  if (const auto prefix = bench::csv_prefix(argc, argv)) {
    bench::write_text_file(
        *prefix + "fig08_download_grid.csv",
        bench::manifest(/*seed=*/0, timer, 41 * 41) + grid.to_csv());
  }
  return 0;
}
