// Lint fixture: a file with nothing to report.
#include <map>
#include <unordered_set>

/* Comments may talk about pow(10, x/10), log10, std::rand and
   system_clock without tripping any rule. */

int lookup(const std::unordered_set<int>& seen, int id) {
  // Membership tests on unordered containers are order-free: clean.
  return seen.count(id) > 0 ? 1 : 0;
}

int ordered_sum(const std::map<int, int>& scores) {
  int total = 0;
  for (const auto& kv : scores) total += kv.second;
  return total;
}
