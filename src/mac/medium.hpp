#ifndef SICMAC_MAC_MEDIUM_HPP
#define SICMAC_MAC_MEDIUM_HPP

/// \file medium.hpp
/// The broadcast medium of the discrete-event simulator. It tracks ongoing
/// transmissions, answers carrier-sense queries, and — when a transmission
/// ends — decides what its destination decoded, using the same analytic
/// SIC receiver model (phy::SicDecoder) as the closed-form analysis. Up to
/// one interferer is cancellable (the paper's two-signal restriction); any
/// denser pile-up is a loss.

#include <cstdint>
#include <functional>
#include <vector>

#include "mac/event_queue.hpp"
#include "mac/frame.hpp"
#include "mac/phy_params.hpp"
#include "phy/rate_adapter.hpp"
#include "phy/sic_decoder.hpp"
#include "util/units.hpp"

namespace sic::mac {

/// Nodes observe the medium through this interface.
class MediumListener {
 public:
  virtual ~MediumListener() = default;

  /// Some transmission started or ended; carrier-sense state may have
  /// changed anywhere.
  virtual void on_channel_update() {}

  /// A frame addressed to this node finished. \p decoded reflects the SIC
  /// receiver model's verdict.
  virtual void on_frame_received(const Frame& frame, bool decoded) {
    (void)frame;
    (void)decoded;
  }

  /// A frame addressed to *someone else* finished and this node could
  /// decode it (same receiver model) — the overhearing path that feeds the
  /// RTS/CTS virtual carrier sense.
  virtual void on_frame_overheard(const Frame& frame) { (void)frame; }
};

struct MediumStats {
  std::uint64_t transmissions = 0;
  std::uint64_t delivered = 0;
  std::uint64_t failed_clean = 0;     ///< failed with no interference
  std::uint64_t failed_collision = 0; ///< failed with >= 1 interferer
  std::uint64_t sic_decodes = 0;      ///< weaker-signal successes via SIC
  std::uint64_t capture_decodes = 0;  ///< stronger-signal successes under
                                      ///< interference
  std::uint64_t injected_failures = 0;  ///< successes converted to failures
                                        ///< by the decode-fault hook
};

class Medium {
 public:
  /// \p adapter and \p queue must outlive the medium.
  Medium(EventQueue& queue, int n_nodes, Milliwatts noise,
         const phy::RateAdapter& adapter,
         phy::SicDecoderConfig decoder_config = {});

  /// Symmetric channel gain: RSS of \p tx at \p rx at full power (and vice
  /// versa).
  void set_gain(MacNodeId tx, MacNodeId rx, Milliwatts rss);

  /// One-directional gain, for nodes with asymmetric transmit powers.
  void set_directional_gain(MacNodeId tx, MacNodeId rx, Milliwatts rss);
  [[nodiscard]] Milliwatts gain(MacNodeId tx, MacNodeId rx) const;
  [[nodiscard]] Milliwatts noise() const { return noise_; }
  [[nodiscard]] int n_nodes() const { return n_nodes_; }

  /// Registers the listener for \p node (frames addressed to it + channel
  /// updates). Pass nullptr to detach.
  void attach(MacNodeId node, MediumListener* listener);

  /// Carrier sense at \p node: true when it is itself transmitting or any
  /// ongoing foreign transmission arrives at least phy().cs_above_noise
  /// over the noise floor.
  [[nodiscard]] bool carrier_busy(MacNodeId node) const;

  [[nodiscard]] bool is_transmitting(MacNodeId node) const;

  /// True while any ongoing transmission is addressed to \p node — the
  /// node's own demodulator state, which it knows regardless of whether
  /// the signal clears the energy-detect threshold.
  [[nodiscard]] bool is_receiving(MacNodeId node) const;

  /// Fault-injection hook (see mac/fault_model.hpp): consulted once per
  /// frame when the *destination's* decode would otherwise succeed.
  /// \p sic_path is true when the decode went through cancellation (the
  /// weaker signal of a collision). Returning true converts the success
  /// into a failure, counted under stats().injected_failures. Overhearing
  /// evaluations never consult the hook. Pass nullptr to detach.
  using DecodeFaultHook = std::function<bool(const Frame& frame, bool sic_path)>;
  void set_decode_fault_hook(DecodeFaultHook hook) {
    fault_hook_ = std::move(hook);
  }

  /// Starts a transmission; duration = preamble + bits/rate. The frame is
  /// evaluated for decoding at frame.dst when it ends. \p power_scale
  /// models Section 5.2 power reduction.
  void transmit(const Frame& frame, BitsPerSecond rate,
                double power_scale = 1.0);

  [[nodiscard]] SimTime frame_duration(const Frame& frame,
                                       BitsPerSecond rate) const;

  [[nodiscard]] const MediumStats& stats() const { return stats_; }
  [[nodiscard]] const PhyParams& phy() const { return phy_; }
  PhyParams& mutable_phy() { return phy_; }

 private:
  struct Transmission {
    std::uint64_t key;
    Frame frame;
    BitsPerSecond rate;
    double power_scale;
    SimTime start;
    SimTime end;
    /// Keys of transmissions that overlapped this one at any point.
    std::vector<std::uint64_t> interferers;
  };

  void finish(std::uint64_t key);
  [[nodiscard]] bool evaluate_decode(const Transmission& t) const;
  void notify_channel_update();

  EventQueue* queue_;
  int n_nodes_;
  Milliwatts noise_;
  const phy::RateAdapter* adapter_;
  phy::SicDecoder decoder_;
  PhyParams phy_;
  std::vector<Milliwatts> gains_;
  std::vector<MediumListener*> listeners_;
  std::vector<Transmission> active_;
  /// Ended transmissions kept while still referenced as interferers of
  /// active ones.
  std::vector<Transmission> recent_;
  MediumStats stats_;
  DecodeFaultHook fault_hook_;
  std::uint64_t next_key_ = 1;
};

}  // namespace sic::mac

#endif  // SICMAC_MAC_MEDIUM_HPP
