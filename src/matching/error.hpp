#ifndef SICMAC_MATCHING_ERROR_HPP
#define SICMAC_MATCHING_ERROR_HPP

/// \file error.hpp
/// Typed error for the matching layer. The matchers used to hard-abort via
/// SIC_CHECK (a std::logic_error) on malformed inputs; now that the
/// matching tier is reachable from CLI-configurable paths (--pairing) the
/// precondition failures are a distinct, catchable condition that the CLI
/// maps to its own exit code instead of "internal error".

#include <stdexcept>
#include <string>

namespace sic::matching {

/// A matching precondition or postcondition failed: odd vertex count for a
/// perfect matching, or an input graph admitting no perfect matching. The
/// message carries the offending vertex counts.
class MatchingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace sic::matching

#endif  // SICMAC_MATCHING_ERROR_HPP
