#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "core/multirate.hpp"
#include "core/power_control.hpp"
#include "util/rng.hpp"

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};
constexpr Milliwatts kN0{1.0};

channel::LinkBudget client_db(double snr_db) {
  return channel::LinkBudget{Milliwatts{Decibels{snr_db}.linear()}, kN0};
}

std::vector<channel::LinkBudget> random_clients(Rng& rng, int n) {
  std::vector<channel::LinkBudget> out;
  for (int i = 0; i < n; ++i) out.push_back(client_db(rng.uniform(6.0, 40.0)));
  return out;
}

TEST(Scheduler, EmptyAndSingleClient) {
  const SchedulerOptions options;
  EXPECT_TRUE(schedule_upload({}, kShannon, options).slots.empty());
  const std::vector<channel::LinkBudget> one{client_db(20.0)};
  const auto s = schedule_upload(one, kShannon, options);
  ASSERT_EQ(s.slots.size(), 1u);
  EXPECT_EQ(s.slots[0].first, 0);
  EXPECT_EQ(s.slots[0].second, -1);
  EXPECT_EQ(s.slots[0].plan.mode, PairMode::kSolo);
  EXPECT_NEAR(s.total_airtime, solo_airtime(one[0], kShannon, 12000.0),
              1e-15);
}

TEST(Scheduler, NeverWorseThanSerialBaseline) {
  Rng rng{42};
  for (int trial = 0; trial < 40; ++trial) {
    const auto clients = random_clients(rng, rng.uniform_int(2, 12));
    const SchedulerOptions options;
    const auto s = schedule_upload(clients, kShannon, options);
    const double serial = serial_upload_airtime(clients, kShannon, 12000.0);
    EXPECT_LE(s.total_airtime, serial + serial * 1e-12)
        << "trial=" << trial << " n=" << clients.size();
  }
}

TEST(Scheduler, EveryClientAppearsExactlyOnce) {
  Rng rng{43};
  for (int trial = 0; trial < 30; ++trial) {
    const int n = rng.uniform_int(2, 11);
    const auto clients = random_clients(rng, n);
    const auto s = schedule_upload(clients, kShannon, {});
    std::vector<int> count(static_cast<std::size_t>(n), 0);
    for (const auto& slot : s.slots) {
      ++count[static_cast<std::size_t>(slot.first)];
      if (slot.second >= 0) ++count[static_cast<std::size_t>(slot.second)];
    }
    for (const int c : count) EXPECT_EQ(c, 1);
  }
}

TEST(Scheduler, OddCountProducesExactlyOneSoloOrNone) {
  Rng rng{44};
  const auto clients = random_clients(rng, 7);
  const auto s = schedule_upload(clients, kShannon, {});
  int solos = 0;
  for (const auto& slot : s.slots) {
    if (slot.second < 0) ++solos;
  }
  EXPECT_EQ(solos, 1);
  EXPECT_EQ(s.slots.size(), 4u);
}

TEST(Scheduler, TotalAirtimeIsSumOfSlots) {
  Rng rng{45};
  const auto clients = random_clients(rng, 8);
  const auto s = schedule_upload(clients, kShannon, {});
  double sum = 0.0;
  for (const auto& slot : s.slots) sum += slot.plan.airtime;
  EXPECT_NEAR(sum, s.total_airtime, sum * 1e-12);
}

TEST(Scheduler, BlossomAtLeastAsGoodAsGreedy) {
  Rng rng{46};
  for (int trial = 0; trial < 30; ++trial) {
    const auto clients = random_clients(rng, 2 * rng.uniform_int(2, 7));
    SchedulerOptions blossom;
    SchedulerOptions greedy;
    greedy.pairing = SchedulerOptions::Pairing::kGreedy;
    const double tb = schedule_upload(clients, kShannon, blossom).total_airtime;
    const double tg = schedule_upload(clients, kShannon, greedy).total_airtime;
    EXPECT_LE(tb, tg + tg * 1e-12) << "trial=" << trial;
  }
}

TEST(Scheduler, TechniquesOnlyImproveTotal) {
  Rng rng{47};
  for (int trial = 0; trial < 25; ++trial) {
    const auto clients = random_clients(rng, rng.uniform_int(3, 10));
    SchedulerOptions base;
    SchedulerOptions pc = base;
    pc.enable_power_control = true;
    SchedulerOptions mr = base;
    mr.enable_multirate = true;
    const double t0 = schedule_upload(clients, kShannon, base).total_airtime;
    const double t1 = schedule_upload(clients, kShannon, pc).total_airtime;
    const double t2 = schedule_upload(clients, kShannon, mr).total_airtime;
    EXPECT_LE(t1, t0 + t0 * 1e-12);
    EXPECT_LE(t2, t0 + t0 * 1e-12);
  }
}

TEST(Scheduler, BestPairPlanPicksWinningMode) {
  // Similar RSS: power control should win when enabled.
  const auto a = client_db(21.0);
  const auto b = client_db(20.0);
  SchedulerOptions options;
  options.enable_power_control = true;
  const auto plan = best_pair_plan(a, b, kShannon, options);
  EXPECT_EQ(plan.mode, PairMode::kSicPowerControl);
  EXPECT_LT(plan.weaker_power_scale, 1.0);

  // Past the square-law ridge the weaker client is the bottleneck: power
  // reduction cannot help, so plain SIC wins.
  const auto plan2 =
      best_pair_plan(client_db(30.0), client_db(12.0), kShannon, options);
  EXPECT_EQ(plan2.mode, PairMode::kSic);
}

TEST(Scheduler, SerialModeChosenWhenSicLoses) {
  // Two nearly equal strong clients without any technique: concurrent SIC
  // is slower than serial, so the pair plan must fall back.
  const auto plan = best_pair_plan(client_db(35.0), client_db(34.5), kShannon,
                                   SchedulerOptions{});
  EXPECT_EQ(plan.mode, PairMode::kSerial);
}

TEST(Scheduler, PairPlanMatchesTechniqueAirtimes) {
  const auto a = client_db(26.0);
  const auto b = client_db(13.0);
  SchedulerOptions options;
  options.enable_multirate = true;
  const auto plan = best_pair_plan(a, b, kShannon, options);
  const auto ctx =
      UploadPairContext::make(a.rss, b.rss, kN0, kShannon, 12000.0);
  const double expected = std::min(
      {solo_airtime(a, kShannon, 12000.0) + solo_airtime(b, kShannon, 12000.0),
       sic_airtime(ctx), multirate_airtime(ctx)});
  EXPECT_NEAR(plan.airtime, expected, expected * 1e-12);
}

TEST(Scheduler, ZeroAdmissionMarginIsExactlyTheDefaultPlan) {
  // The margin derate multiplier is exactly 1.0 at 0 dB, so the plan must
  // be bit-identical to one computed without the option.
  const auto a = client_db(24.0);
  const auto b = client_db(12.0);
  SchedulerOptions margined;
  margined.admission_margin_db = Decibels{0.0};
  const auto base = best_pair_plan(a, b, kShannon, SchedulerOptions{});
  const auto with = best_pair_plan(a, b, kShannon, margined);
  EXPECT_EQ(base.mode, with.mode);
  EXPECT_EQ(base.airtime, with.airtime);  // exact, not near
}

TEST(Scheduler, AdmissionMarginDeratesConcurrentNotSerial) {
  // A margined concurrent plan is costed on the derated channel, so its
  // airtime can only grow with the margin; the serial baseline is
  // unmargined and caps the damage.
  const auto a = client_db(24.0);
  const auto b = client_db(12.0);
  SchedulerOptions options;
  const auto base = best_pair_plan(a, b, kShannon, options);
  ASSERT_EQ(base.mode, PairMode::kSic);
  options.admission_margin_db = Decibels{3.0};
  const auto margined = best_pair_plan(a, b, kShannon, options);
  EXPECT_GE(margined.airtime, base.airtime);
  const double serial = solo_airtime(a, kShannon, 12000.0) +
                        solo_airtime(b, kShannon, 12000.0);
  EXPECT_LE(margined.airtime, serial * (1.0 + 1e-12));
}

TEST(Scheduler, LargeAdmissionMarginFallsBackToSerial) {
  // A pair that wins under SIC at 0 dB margin stops being admitted as
  // concurrent once the required headroom is big enough.
  const auto a = client_db(24.0);
  const auto b = client_db(12.0);
  SchedulerOptions options;
  ASSERT_EQ(best_pair_plan(a, b, kShannon, options).mode, PairMode::kSic);
  options.admission_margin_db = Decibels{20.0};
  EXPECT_EQ(best_pair_plan(a, b, kShannon, options).mode, PairMode::kSerial);
}

TEST(Scheduler, AdmissionMarginRecordedOnSchedule) {
  const std::vector<channel::LinkBudget> clients{client_db(24.0),
                                                 client_db(12.0)};
  SchedulerOptions options;
  options.admission_margin_db = Decibels{3.0};
  const auto schedule = schedule_upload(clients, kShannon, options);
  EXPECT_EQ(schedule.admission_margin_db.value(), 3.0);
  EXPECT_EQ(schedule_upload({}, kShannon, options).admission_margin_db.value(),
            3.0);
}

TEST(Scheduler, NegativeAdmissionMarginRejected) {
  SchedulerOptions options;
  options.admission_margin_db = Decibels{-1.0};
  EXPECT_THROW(
      (void)best_pair_plan(client_db(24.0), client_db(12.0), kShannon, options),
      std::logic_error);
}

TEST(Scheduler, MismatchedNoiseFloorsRejected) {
  const channel::LinkBudget a{Milliwatts{10.0}, Milliwatts{1.0}};
  const channel::LinkBudget b{Milliwatts{10.0}, Milliwatts{2.0}};
  EXPECT_THROW((void)best_pair_plan(a, b, kShannon, {}), std::logic_error);
}

TEST(Scheduler, MatchesBruteForceOnSmallInstances) {
  // Exhaustive check of the full pipeline (pair costs + matching) against
  // enumerating all pairings of 4 and 6 clients.
  Rng rng{48};
  const auto all_pairings_cost = [&](const std::vector<channel::LinkBudget>&
                                         clients,
                                     const SchedulerOptions& options) {
    const int n = static_cast<int>(clients.size());
    std::vector<int> idx(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
    double best = 1e300;
    // Enumerate perfect matchings recursively.
    const std::function<void(std::vector<int>&, double)> rec =
        [&](std::vector<int>& rest, double acc) {
          if (rest.empty()) {
            best = std::min(best, acc);
            return;
          }
          const int a = rest.front();
          for (std::size_t k = 1; k < rest.size(); ++k) {
            const int b = rest[k];
            std::vector<int> next;
            for (std::size_t m = 1; m < rest.size(); ++m) {
              if (m != k) next.push_back(rest[m]);
            }
            const double cost =
                best_pair_plan(clients[static_cast<std::size_t>(a)],
                               clients[static_cast<std::size_t>(b)], kShannon,
                               options)
                    .airtime;
            rec(next, acc + cost);
          }
        };
    rec(idx, 0.0);
    return best;
  };

  for (const int n : {4, 6}) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto clients = random_clients(rng, n);
      SchedulerOptions options;
      options.enable_power_control = true;
      const auto s = schedule_upload(clients, kShannon, options);
      const double brute = all_pairings_cost(clients, options);
      EXPECT_NEAR(s.total_airtime, brute, brute * 1e-9)
          << "n=" << n << " trial=" << trial;
    }
  }
}

TEST(Scheduler, SlotsSortedLongestFirst) {
  Rng rng{49};
  const auto clients = random_clients(rng, 9);
  const auto s = schedule_upload(clients, kShannon, {});
  for (std::size_t i = 1; i < s.slots.size(); ++i) {
    EXPECT_GE(s.slots[i - 1].plan.airtime, s.slots[i].plan.airtime);
  }
}

}  // namespace
}  // namespace sic::core
