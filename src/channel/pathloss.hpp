#ifndef SICMAC_CHANNEL_PATHLOSS_HPP
#define SICMAC_CHANNEL_PATHLOSS_HPP

/// \file pathloss.hpp
/// Propagation models. Section 3.2's Monte Carlo computes "RSS based on the
/// transmitter-receiver distance, using path loss exponent α=4"; the trace
/// generator (Section 7 substitution) additionally applies log-normal
/// shadowing on top of a log-distance model.

#include "util/units.hpp"

namespace sic::channel {

/// Log-distance path loss:
///   PL(d) = PL(d₀) + 10·α·log10(d/d₀)   [dB]
/// with free-space loss at the reference distance d₀.
class LogDistancePathLoss {
 public:
  /// \p exponent is the path-loss exponent α (paper uses 4 indoors);
  /// \p reference_loss is PL(d₀) and \p reference_distance is d₀ in meters.
  LogDistancePathLoss(double exponent, Decibels reference_loss,
                      double reference_distance_m = 1.0);

  /// Free-space reference loss at 1 m for the given carrier frequency,
  /// 20·log10(4πd₀f/c) — ≈ 40 dB at 2.4 GHz.
  [[nodiscard]] static LogDistancePathLoss for_carrier(double exponent,
                                                       double carrier_hz = 2.4e9);

  /// Attenuation in dB at distance \p distance_m (clamped below d₀ to the
  /// reference loss, avoiding unphysical gains at tiny distances).
  [[nodiscard]] Decibels loss(double distance_m) const;

  /// Received power for a transmit power and distance.
  [[nodiscard]] Dbm received_power(Dbm tx_power, double distance_m) const;

  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  double exponent_;
  Decibels reference_loss_;
  double reference_distance_m_;
};

/// The paper's normalized Monte Carlo model: RSS = P·d^(−α) in abstract
/// linear units with unit transmit power, noise N₀ given in the same units.
/// Keeping this separate from the dBm-grounded model preserves the exact
/// setup of Fig. 6.
class NormalizedPathLoss {
 public:
  explicit NormalizedPathLoss(double exponent) : exponent_(exponent) {}

  /// Linear RSS for unit transmit power at the given distance (d clamped to
  /// ≥ 1 to keep RSS ≤ tx power).
  [[nodiscard]] Milliwatts received_power(double distance_m,
                                          double tx_power = 1.0) const;

  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  double exponent_;
};

}  // namespace sic::channel

#endif  // SICMAC_CHANNEL_PATHLOSS_HPP
