#ifndef SICMAC_TOPOLOGY_SPATIAL_INDEX_HPP
#define SICMAC_TOPOLOGY_SPATIAL_INDEX_HPP

/// \file spatial_index.hpp
/// Uniform-grid spatial index over a fixed point set (AP sites). The
/// deployment engine's association pass is the one remaining
/// O(clients × APs) scan at city scale; this index turns "which APs could
/// possibly win this client?" into a ring-by-ring walk around the
/// client's grid cell, so association visits O(candidates) APs instead of
/// all of them (see mac/association.hpp for the exact branch-and-bound
/// cutoff built on top).
///
/// Determinism is by construction, not by convention: the index stores
/// ids in flat CSR arrays (no unordered containers anywhere — sic_lint R3
/// stays hot on this file on purpose), cells are iterated in canonical
/// row-major order, every query output is sorted by a total order
/// ((distance, id) for k_nearest, ascending id for within_radius and
/// collect_ring), and ties always resolve toward the lower id. Two
/// queries with the same inputs return byte-identical answers on every
/// thread of every run.

#include <span>
#include <vector>

#include "topology/geometry.hpp"

namespace sic::topology {

/// Uniform grid over a fixed set of points. Points are addressed by their
/// index in the construction span ("id"); the point set cannot change
/// after construction (AP sites are fixed for an engine's lifetime —
/// liveness is the caller's per-query concern).
class SpatialGridIndex {
 public:
  /// Builds the index over \p points. \p cell_size_m <= 0 picks a cell
  /// size automatically (~1 point per cell for uniform layouts). Empty
  /// point sets are allowed; every query then returns nothing.
  explicit SpatialGridIndex(std::span<const Point> points,
                            double cell_size_m = 0.0);

  [[nodiscard]] int size() const { return static_cast<int>(points_.size()); }
  [[nodiscard]] double cell_size_m() const { return cell_m_; }
  [[nodiscard]] const Point& point(int id) const {
    return points_[static_cast<std::size_t>(id)];
  }

  /// Number of the outermost ring that still contains grid cells when
  /// walking outward from \p query 's (clamped) home cell. Rings beyond
  /// this are empty; a full walk of rings 0..max_ring visits every point.
  [[nodiscard]] int max_ring(Point query) const;

  /// Conservative lower bound on the distance from any query point to any
  /// point stored in ring \p ring of that query's walk: a point in ring r
  /// is at least (r - 1) cells away. Ring 0 and 1 bound to 0.
  [[nodiscard]] double ring_lower_bound_m(int ring) const {
    return ring <= 1 ? 0.0 : static_cast<double>(ring - 1) * cell_m_;
  }

  /// Appends the ids stored in the cells of ring \p ring around \p query
  /// (cells at Chebyshev cell-distance == ring from the query's clamped
  /// home cell), in ascending id order. Appends nothing when the ring
  /// holds no points.
  void collect_ring(Point query, int ring, std::vector<int>& out) const;

  /// The k nearest points to \p query, ordered by (distance, id) with
  /// ties toward the lower id. Returns all points when k >= size().
  void k_nearest(Point query, int k, std::vector<int>& out) const;

  /// All points within \p radius_m of \p query (inclusive boundary, same
  /// distance function as topology::distance), ascending id order.
  void within_radius(Point query, double radius_m,
                     std::vector<int>& out) const;

 private:
  [[nodiscard]] int cell_x(double x) const;
  [[nodiscard]] int cell_y(double y) const;

  std::vector<Point> points_;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  double cell_m_ = 1.0;
  int nx_ = 1;  ///< grid columns
  int ny_ = 1;  ///< grid rows
  /// CSR layout: ids of cell (cx, cy) are ids_[cell_start_[cy*nx_+cx] ..
  /// cell_start_[cy*nx_+cx+1]), ascending within each cell.
  std::vector<int> cell_start_;
  std::vector<int> ids_;
};

}  // namespace sic::topology

#endif  // SICMAC_TOPOLOGY_SPATIAL_INDEX_HPP
