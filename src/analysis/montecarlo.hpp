#ifndef SICMAC_ANALYSIS_MONTECARLO_HPP
#define SICMAC_ANALYSIS_MONTECARLO_HPP

/// \file montecarlo.hpp
/// The paper's Monte Carlo experiments, shared between the bench binaries
/// and the integration tests:
///
///  - Fig. 6:  gain CDF for two transmitters → two receivers over random
///             topologies (10,000 draws, α = 4, several ranges).
///  - Fig. 11a: gain CDFs for SIC / +power control / +multirate / +packing
///             in the two-transmitters → one-receiver geometry.
///  - Fig. 11b: same techniques in the two-receiver geometry (SIC, power
///             control and packing; multirate is not applicable there —
///             Section 5.5).

#include <cstdint>
#include <vector>

#include "core/upload_pair.hpp"
#include "phy/rate_adapter.hpp"
#include "topology/samplers.hpp"

namespace sic::analysis {

/// Realized (≥ 1) gains of each Section 5 technique for one upload pair.
struct TechniqueGains {
  double sic = 1.0;
  double power_control = 1.0;
  double multirate = 1.0;
  double packing = 1.0;
};

[[nodiscard]] TechniqueGains evaluate_upload_pair_techniques(
    const core::UploadPairContext& ctx);

/// Fig. 6: realized SIC gains over random two-link topologies.
[[nodiscard]] std::vector<double> run_two_link_gains(
    const topology::SamplerConfig& config, const phy::RateAdapter& adapter,
    int trials, std::uint64_t seed, double packet_bits = 12000.0);

/// Per-technique gain samples (one entry per trial in each vector).
struct TechniqueSamples {
  std::vector<double> sic;
  std::vector<double> power_control;
  std::vector<double> multirate;  ///< empty for the two-receiver experiment
  std::vector<double> packing;
};

/// Fig. 11a: two transmitters → one receiver.
[[nodiscard]] TechniqueSamples run_two_to_one_techniques(
    const topology::SamplerConfig& config, const phy::RateAdapter& adapter,
    int trials, std::uint64_t seed, double packet_bits = 12000.0);

/// Fig. 11b: two transmitters → two receivers. Power control here scales a
/// whole transmitter (affecting its RSS at both receivers) and searches
/// both choices of transmitter.
[[nodiscard]] TechniqueSamples run_two_link_techniques(
    const topology::SamplerConfig& config, const phy::RateAdapter& adapter,
    int trials, std::uint64_t seed, double packet_bits = 12000.0);

}  // namespace sic::analysis

#endif  // SICMAC_ANALYSIS_MONTECARLO_HPP
