// Lint fixture: R4 — time-series mutators in value-producing expressions.
#include <cstdint>

struct TimeSeries {
  std::uint64_t record(std::uint64_t e, double) { return last = e; }
  std::uint64_t last = 0;
};

struct Registry {
  TimeSeries& series(const char*) { return s; }
  TimeSeries s;
};

void consume(std::uint64_t);

std::uint64_t bad_return(Registry& reg) {
  return reg.series("x").record(1, 0.5);  // line 17: R4 violation (return)
}

void bad_assign(Registry& reg) {
  const auto e = reg.series("x").record(2, 0.5);  // line 21: R4 violation (=)
  (void)e;
}

void bad_nested(Registry& reg) {
  consume(reg.series("x").record(3, 0.5));  // line 26: R4 (nested call)
}

void good_statement(Registry& reg) {
  reg.series("x").record(4, 0.5);  // clean: pure side-channel statement
}
