#ifndef SICMAC_OBS_TIMESERIES_HPP
#define SICMAC_OBS_TIMESERIES_HPP

/// \file timeseries.hpp
/// Epoch-indexed time-series half of sic::obs v2: a registry of named
/// fixed-capacity ring buffers recording (epoch, value) samples, built for
/// the deployment engine's per-epoch telemetry.
///
/// Contract (same as MetricsRegistry, see DESIGN.md "Observability"):
///  - *Zero-cost when detached.* The attach point below is a thread-local
///    pointer, null by default; instrumented code records only when
///    `obs::timeseries()` is non-null. Recording is O(1) into a
///    pre-allocated ring — no allocation after the first `series()` call
///    for a name.
///  - *Observers are pure.* A series only receives values; nothing in the
///    simulation may read one back (sic_lint R4 covers
///    `series(...).record(...)` in value-producing positions).
///  - *Deterministic exports.* Series iterate name-ordered, epochs
///    ascending, numbers through the shared round-trip formatter — two
///    identical runs produce byte-identical CSV/JSONL.
///
/// Ring sizing: a series holds the *last* `capacity` samples; recording
/// past capacity evicts the oldest and increments `dropped()`. The default
/// (1024) covers every epoch of any run the current benches and tests
/// perform while bounding a million-epoch soak at a few KB per series —
/// post-mortems want the recent window anyway (see flight_recorder.hpp).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sic::obs {

/// One named series: a fixed-capacity ring of (epoch, value) points.
/// Epochs are recorded as given; callers are expected to record with
/// nondecreasing epochs (the deployment engine does), and exports emit in
/// insertion order.
class TimeSeries {
 public:
  struct Point {
    std::uint64_t epoch = 0;
    double value = 0.0;
  };

  explicit TimeSeries(std::size_t capacity);

  /// Appends a sample; evicts the oldest when full.
  void record(std::uint64_t epoch, double value);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Samples evicted because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// i-th retained point, oldest first (0 <= i < size()).
  [[nodiscard]] Point point(std::size_t i) const;

 private:
  std::vector<Point> ring_;
  std::size_t head_ = 0;  ///< index of the oldest retained point
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Name -> series map. Series are created on first use with the registry's
/// default capacity (or an explicit per-series one) and have stable
/// addresses for the registry's lifetime, so call sites may cache the
/// returned references.
class TimeSeriesRegistry {
 public:
  explicit TimeSeriesRegistry(std::size_t default_capacity = 1024);

  /// Returns the series for \p name, creating it with the default
  /// capacity on first use.
  TimeSeries& series(std::string_view name);
  /// Same, but a first use creates the series with \p capacity. An
  /// existing series keeps its original capacity.
  TimeSeries& series(std::string_view name, std::size_t capacity);

  [[nodiscard]] std::size_t n_series() const { return series_.size(); }

  /// Wide CSV: header `epoch,<name>,<name>,...` (names sorted), one row
  /// per distinct epoch across all series (ascending), blank cells where a
  /// series has no sample at that epoch. A series with several samples at
  /// one epoch contributes its last.
  [[nodiscard]] std::string csv() const;

  /// One JSON object per line, name-ordered:
  ///   {"series":"<name>","dropped":N,"points":[[epoch,value],...]}
  [[nodiscard]] std::string jsonl() const;

  /// JSON object mapping each name to its retained points — the
  /// "timeseries" section of a flight-recorder post-mortem:
  ///   {"<name>":[[epoch,value],...],...}
  [[nodiscard]] std::string json_object() const;

 private:
  std::size_t default_capacity_;
  std::map<std::string, TimeSeries, std::less<>> series_;
};

/// Thread-local attach point, same contract as obs::metrics(): null (the
/// default on every thread) means time-series recording is off and
/// instrumented code must skip it.
[[nodiscard]] TimeSeriesRegistry* timeseries();
/// Installs \p registry as the calling thread's target and returns the
/// previous one (so scoped attachment can restore it). Pass nullptr to
/// detach.
TimeSeriesRegistry* set_timeseries(TimeSeriesRegistry* registry);

}  // namespace sic::obs

#endif  // SICMAC_OBS_TIMESERIES_HPP
