/// Reproduces Fig. 4: Z(−SIC)/Z(+SIC) for two transmitters to the same
/// receiver. "SIC gains most when RSSs are such that the resulting
/// bitrates are the same for both transmissions" — the ridge at
/// SNR1 ≈ 2·SNR2 in dB.

#include <cstdio>

#include "analysis/grid.hpp"
#include "bench_util.hpp"
#include "core/upload_pair.hpp"

int main(int argc, char** argv) {
  using namespace sic;
  const bench::RunTimer timer;
  bench::header("Fig. 4 — same-receiver completion-time gain heatmap",
                "gain ridge follows SNR1 = 2*SNR2 (dB); peak gain ~2x");

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  analysis::Grid2D grid{{"S1 (dB)", 0.0, 40.0, 41}, {"S2 (dB)", 0.0, 40.0, 41}};
  grid.fill([&](double s1_db, double s2_db) {
    const auto ctx = core::UploadPairContext::make(
        Milliwatts{Decibels{s1_db}.linear()},
        Milliwatts{Decibels{s2_db}.linear()}, Milliwatts{1.0}, shannon);
    return core::sic_gain(ctx);
  });
  std::printf("%s\n", grid.render_ascii().c_str());

  std::printf("ridge location (argmax over S1 for each S2):\n");
  std::printf("%-10s %-12s %-10s %-14s\n", "S2 (dB)", "best S1 (dB)",
              "2*S2 (dB)", "gain at ridge");
  for (double s2 = 6.0; s2 <= 20.0; s2 += 2.0) {
    double best_gain = 0.0;
    double best_s1 = 0.0;
    for (double s1 = s2; s1 <= 45.0; s1 += 0.05) {
      const auto ctx = core::UploadPairContext::make(
          Milliwatts{Decibels{s1}.linear()}, Milliwatts{Decibels{s2}.linear()},
          Milliwatts{1.0}, shannon);
      const double g = core::sic_gain(ctx);
      if (g > best_gain) {
        best_gain = g;
        best_s1 = s1;
      }
    }
    std::printf("%-10.1f %-12.2f %-10.1f %-14.4f\n", s2, best_s1, 2.0 * s2,
                best_gain);
  }
  if (const auto prefix = bench::csv_prefix(argc, argv)) {
    bench::write_text_file(
        *prefix + "fig04_gain_grid.csv",
        bench::manifest(/*seed=*/0, timer, 41 * 41) + grid.to_csv());
  }
  return 0;
}
