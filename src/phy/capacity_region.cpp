#include "phy/capacity_region.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/mathx.hpp"

namespace sic::phy {

CapacityRegion::CapacityRegion(Hertz bandwidth, Milliwatts s1, Milliwatts s2,
                               Milliwatts noise)
    : bandwidth_(bandwidth), s1_(s1), s2_(s2), noise_(noise) {
  SIC_CHECK(noise.value() > 0.0);
  SIC_CHECK(s1.value() >= 0.0 && s2.value() >= 0.0);
  max_r1_ = shannon_rate(bandwidth_, s1_, noise_);
  max_r2_ = shannon_rate(bandwidth_, s2_, noise_);
  sum_ = shannon_rate(bandwidth_, s1_ + s2_, noise_);
}

RatePair CapacityRegion::corner_user1_decoded_first() const {
  // User 1 decoded against user 2's interference; user 2 clean after
  // cancellation.
  return RatePair{shannon_rate(bandwidth_, s1_, s2_ + noise_), max_r2_};
}

RatePair CapacityRegion::corner_user2_decoded_first() const {
  return RatePair{max_r1_, shannon_rate(bandwidth_, s2_, s1_ + noise_)};
}

bool CapacityRegion::contains(RatePair rates, double rel_tol) const {
  const double tol1 = rel_tol * std::max(1.0, max_r1_.value());
  const double tol2 = rel_tol * std::max(1.0, max_r2_.value());
  const double tols = rel_tol * std::max(1.0, sum_.value());
  if (rates.r1.value() < -tol1 || rates.r2.value() < -tol2) return false;
  return rates.r1.value() <= max_r1_.value() + tol1 &&
         rates.r2.value() <= max_r2_.value() + tol2 &&
         rates.r1.value() + rates.r2.value() <= sum_.value() + tols;
}

bool CapacityRegion::achievable_by_time_sharing(RatePair rates,
                                                double rel_tol) const {
  if (rates.r1.value() < 0.0 || rates.r2.value() < 0.0) return false;
  if (max_r1_.value() <= 0.0) return rates.r1.value() <= 0.0;
  if (max_r2_.value() <= 0.0) return rates.r2.value() <= 0.0;
  const double share =
      rates.r1.value() / max_r1_.value() + rates.r2.value() / max_r2_.value();
  return share <= 1.0 + rel_tol;
}

RatePair CapacityRegion::dominant_face_point(double t) const {
  SIC_CHECK(t >= 0.0 && t <= 1.0);
  const RatePair a = corner_user1_decoded_first();
  const RatePair b = corner_user2_decoded_first();
  return RatePair{BitsPerSecond{lerp(a.r1.value(), b.r1.value(), t)},
                  BitsPerSecond{lerp(a.r2.value(), b.r2.value(), t)}};
}

}  // namespace sic::phy
