#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/access_point.hpp"
#include "mac/station.hpp"

namespace sic::mac {
namespace {

constexpr Milliwatts kN0{1.0};
const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

struct Harness {
  explicit Harness(int n_clients, bool sic = true) {
    phy::SicDecoderConfig decoder;
    decoder.sic_capable = sic;
    medium = std::make_unique<Medium>(queue, n_clients + 1, kN0, kShannon,
                                      decoder);
    ap = std::make_unique<AccessPoint>(queue, *medium, 0);
  }

  void add_station(double snr_db, int frames, std::uint64_t seed) {
    const MacNodeId id = static_cast<MacNodeId>(stations.size()) + 1;
    medium->set_gain(0, id, Milliwatts{Decibels{snr_db}.linear()});
    for (const auto& other : stations) {
      medium->set_gain(other->id(), id,
                       Milliwatts{Decibels{25.0}.linear()});
    }
    const auto rate = kShannon.rate(Decibels{snr_db}.linear());
    auto st =
        std::make_unique<DcfStation>(queue, *medium, id, 0, rate, Rng{seed});
    st->enqueue(frames, 12000.0);
    stations.push_back(std::move(st));
  }

  void run(double seconds = 60.0) {
    for (auto& st : stations) st->start();
    queue.run_until(from_seconds(seconds));
  }

  EventQueue queue;
  std::unique_ptr<Medium> medium;
  std::unique_ptr<AccessPoint> ap;
  std::vector<std::unique_ptr<DcfStation>> stations;
};

TEST(Dcf, SingleStationDeliversAllFrames) {
  Harness h{1};
  h.add_station(25.0, 5, 1);
  h.run();
  EXPECT_TRUE(h.stations[0]->done());
  EXPECT_EQ(h.stations[0]->stats().delivered, 5u);
  EXPECT_EQ(h.stations[0]->stats().retries, 0u);
  EXPECT_EQ(h.ap->received_from(1), 5u);
  EXPECT_EQ(h.ap->stats().acks_sent, 5u);
}

TEST(Dcf, SingleStationTimingIsSane) {
  Harness h{1};
  h.add_station(25.0, 10, 2);
  h.run();
  // 10 frames of 12 kb at ~166 Mbps plus MAC overheads: well under 0.1 s,
  // but strictly more than the raw airtime.
  const double raw_airtime =
      10.0 * (12000.0 / kShannon.rate(Decibels{25.0}.linear()).value());
  EXPECT_GT(h.stations[0]->stats().completion_time,
            from_seconds(raw_airtime));
  EXPECT_LT(h.stations[0]->stats().completion_time, from_seconds(0.1));
}

TEST(Dcf, TwoStationsShareChannelCleanly) {
  Harness h{2};
  h.add_station(25.0, 10, 3);
  h.add_station(20.0, 10, 4);
  h.run();
  EXPECT_EQ(h.ap->received_from(1), 10u);
  EXPECT_EQ(h.ap->received_from(2), 10u);
  EXPECT_TRUE(h.stations[0]->done());
  EXPECT_TRUE(h.stations[1]->done());
}

TEST(Dcf, ManyStationsEventuallyDrain) {
  Harness h{6};
  for (int i = 0; i < 6; ++i) {
    h.add_station(15.0 + 3.0 * i, 4, 10 + static_cast<std::uint64_t>(i));
  }
  h.run(120.0);
  std::uint64_t delivered = 0;
  for (const auto& st : h.stations) {
    delivered += st->stats().delivered;
  }
  // Collisions may drop a few frames after max retries, but the channel
  // must not deadlock.
  EXPECT_GT(delivered, 18u);
  for (const auto& st : h.stations) {
    EXPECT_TRUE(st->done());
  }
}

TEST(Dcf, SicApRecoversMoreCollisionsThanPlainAp) {
  // Same traffic, same seeds; the SIC-capable AP should salvage at least
  // as many collision frames (via capture + cancellation) as the plain AP.
  auto run_once = [](bool sic) {
    Harness h{4, sic};
    // Rate pairs chosen so collided pairs are often SIC-decodable: stations
    // transmit at HALF their clean feasible rate (practical margin).
    for (int i = 0; i < 4; ++i) {
      const double snr_db = 14.0 + 6.0 * i;
      const MacNodeId id = i + 1;
      h.medium->set_gain(0, id, Milliwatts{Decibels{snr_db}.linear()});
      for (int j = 1; j < id; ++j) {
        h.medium->set_gain(j, id, Milliwatts{Decibels{25.0}.linear()});
      }
      const auto half_rate = BitsPerSecond{
          kShannon.rate(Decibels{snr_db}.linear()).value() * 0.5};
      auto st = std::make_unique<DcfStation>(h.queue, *h.medium, id, 0,
                                             half_rate, Rng{static_cast<std::uint64_t>(77 + i)});
      st->enqueue(8, 12000.0);
      h.stations.push_back(std::move(st));
    }
    h.run(120.0);
    return h.medium->stats();
  };
  const MediumStats with_sic = run_once(true);
  const MediumStats without = run_once(false);
  EXPECT_GE(with_sic.sic_decodes, 0u);
  EXPECT_EQ(without.sic_decodes, 0u);
  // SIC never reduces the delivered count under identical dynamics; the
  // dynamics differ slightly (earlier ACKs change timing), so compare the
  // collision-salvage ratios instead of raw counts.
  const double salvage_with =
      static_cast<double>(with_sic.capture_decodes + with_sic.sic_decodes);
  const double salvage_without = static_cast<double>(without.capture_decodes);
  EXPECT_GE(salvage_with, salvage_without);
}

TEST(Dcf, DropsAfterMaxRetries) {
  // A station whose rate is infeasible never gets an ACK and must drop
  // after max_retries, not hang.
  Harness h{1};
  const MacNodeId id = 1;
  h.medium->set_gain(0, id, Milliwatts{Decibels{10.0}.linear()});
  const auto too_fast = BitsPerSecond{
      kShannon.rate(Decibels{10.0}.linear()).value() * 2.0};
  auto st = std::make_unique<DcfStation>(h.queue, *h.medium, id, 0, too_fast,
                                         Rng{5});
  st->enqueue(2, 12000.0);
  h.stations.push_back(std::move(st));
  h.run(60.0);
  EXPECT_TRUE(h.stations[0]->done());
  EXPECT_EQ(h.stations[0]->stats().drops, 2u);
  EXPECT_EQ(h.stations[0]->stats().delivered, 0u);
}

}  // namespace
}  // namespace sic::mac
