#ifndef SICMAC_CORE_CROSS_LINK_HPP
#define SICMAC_CORE_CROSS_LINK_HPP

/// \file cross_link.hpp
/// Section 3.2: two transmitters to two *different* receivers — the
/// building block where the paper finds SIC almost never helps (Fig. 6:
/// "no gain from SIC in 90% of the cases").
///
/// With S_j^i = RSS of T_i at R_j and intended links T1→R1, T2→R2, the four
/// cases of Fig. 5 are classified by which receiver hears its own
/// transmitter stronger than the interferer:
///
///   (a) S₁¹ > S₁² and S₂² > S₂¹ — capture works at both; SIC not needed.
///   (b) S₁¹ > S₁² and S₂² < S₂¹ — SIC needed at R2 only. T1 transmits at
///       its own optimal concurrent rate r₁ = r(S₁¹/(S₁²+N₀)); R2 can
///       cancel T1 only if it can decode that rate: S₂¹/(S₂²+N₀) ≥ the SINR
///       r₁ requires. Then Z₊SIC = eq (7), Z₋SIC = eq (8).
///   (c) mirror of (b) with the roles swapped.
///   (d) both receivers need SIC. Each transmitter uses its clean rate
///       (interference vanishes after cancellation); feasibility needs
///       S₂¹/(S₂²+N₀) ≥ SINR(r₁clean) at R2 and S₁²/(S₁¹+N₀) ≥ SINR(r₂clean)
///       at R1. Then Z₊SIC = eq (9).
///
/// The reported gain is what a rational MAC realizes: serial transmission
/// is always available, so gain = max(1, Z₋SIC/Z₊SIC), and 1 whenever SIC
/// is unneeded or infeasible.

#include "channel/two_link_rss.hpp"
#include "phy/rate_adapter.hpp"

namespace sic::core {

enum class CrossLinkCase {
  kCaptureBoth,  ///< Fig. 5a — SIC not needed
  kSicAtR2,      ///< Fig. 5b
  kSicAtR1,      ///< Fig. 5c
  kSicAtBoth,    ///< Fig. 5d
};

[[nodiscard]] constexpr const char* to_string(CrossLinkCase c) {
  switch (c) {
    case CrossLinkCase::kCaptureBoth: return "capture-both";
    case CrossLinkCase::kSicAtR2: return "sic-at-r2";
    case CrossLinkCase::kSicAtR1: return "sic-at-r1";
    case CrossLinkCase::kSicAtBoth: return "sic-at-both";
  }
  return "?";
}

[[nodiscard]] CrossLinkCase classify_cross_link(const channel::TwoLinkRss& rss);

struct CrossLinkResult {
  CrossLinkCase kase = CrossLinkCase::kCaptureBoth;
  bool sic_feasible = false;    ///< topological conditions hold
  double serial_airtime = 0.0;  ///< Z₋SIC: both packets serially, clean rates
  double concurrent_airtime = 0.0;  ///< Z₊SIC; +inf when infeasible
  double gain = 1.0;            ///< realized gain, ≥ 1
};

struct CrossLinkOptions {
  double packet_bits = 12000.0;
  /// When true, case (a) — both receivers capture their own signal — is
  /// also allowed to run concurrently (each link at its interference-
  /// limited rate). That concurrency needs no cancellation, but it *is*
  /// unlocked by deploying SIC-capable scheduling instead of carrier-sense
  /// serialization, and the paper's trace evaluation (Fig. 14) counts it.
  /// The pure-SIC accounting of Fig. 6 keeps it off.
  bool include_capture_concurrency = false;
};

/// Evaluates the two-link building block for one packet of \p packet_bits
/// on each link under the given rate policy.
[[nodiscard]] CrossLinkResult evaluate_cross_link(
    const channel::TwoLinkRss& rss, const phy::RateAdapter& adapter,
    double packet_bits = 12000.0);

/// Options-taking overload.
[[nodiscard]] CrossLinkResult evaluate_cross_link(
    const channel::TwoLinkRss& rss, const phy::RateAdapter& adapter,
    const CrossLinkOptions& options);

/// Cross-link packet packing (Section 7 uses it for the download traces):
/// when concurrent SIC transmission is feasible and one link's packet ends
/// early, that link packs extra packets into the other's airtime. Returns
/// the realized throughput-normalized gain (≥ 1), falling back to
/// evaluate_cross_link's gain when packing cannot engage.
[[nodiscard]] double cross_link_packing_gain(const channel::TwoLinkRss& rss,
                                             const phy::RateAdapter& adapter,
                                             double packet_bits = 12000.0);

/// Options-taking overload.
[[nodiscard]] double cross_link_packing_gain(const channel::TwoLinkRss& rss,
                                             const phy::RateAdapter& adapter,
                                             const CrossLinkOptions& options);

}  // namespace sic::core

#endif  // SICMAC_CORE_CROSS_LINK_HPP
