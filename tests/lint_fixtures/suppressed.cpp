// Lint fixture: inline suppressions silence findings.
#include <cmath>

double trailing(double db) {
  return std::pow(10.0, db / 10.0);  // sic-lint: allow(R1)
}

double preceding(double ratio) {
  // sic-lint: allow(R1)
  return 10.0 * std::log10(ratio);
}

double multi(double db) {
  return std::pow(10.0, db / 10.0);  // sic-lint: allow(R1, R3)
}

double still_flagged(double db) {
  return std::pow(10.0, db / 10.0);  // line 18: allow(R2) does not cover R1
  // sic-lint: allow(R2)
}
