#include "phy/error_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace sic::phy {

namespace {

/// Gaussian tail Q(x) = 0.5·erfc(x/√2).
double q_function(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

/// Effective soft-decision convolutional coding gain (K = 7), dB.
double coding_gain_db(double code_rate) {
  if (code_rate <= 0.5) return 5.0;
  if (code_rate <= 2.0 / 3.0 + 1e-9) return 4.0;
  return 3.5;  // rate 3/4
}

/// Gray-mapped square M-QAM bit error rate approximation.
double qam_ber(int m, double sinr) {
  const double k = std::log2(static_cast<double>(m));
  return (4.0 / k) * (1.0 - 1.0 / std::sqrt(static_cast<double>(m))) *
         q_function(std::sqrt(3.0 * sinr / (m - 1)));
}

}  // namespace

double bit_error_rate(Modulation modulation, double sinr_linear) {
  if (sinr_linear <= 0.0) return 0.5;
  switch (modulation) {
    case Modulation::kBpsk:
      return q_function(std::sqrt(2.0 * sinr_linear));
    case Modulation::kQpsk:
      return q_function(std::sqrt(sinr_linear));
    case Modulation::kQam16:
      return qam_ber(16, sinr_linear);
    case Modulation::kQam64:
      return qam_ber(64, sinr_linear);
  }
  return 0.5;
}

const std::vector<OfdmMcs>& dot11g_mcs() {
  static const std::vector<OfdmMcs> mcs{
      {Modulation::kBpsk, 0.5, megabits_per_second(6.0)},
      {Modulation::kBpsk, 0.75, megabits_per_second(9.0)},
      {Modulation::kQpsk, 0.5, megabits_per_second(12.0)},
      {Modulation::kQpsk, 0.75, megabits_per_second(18.0)},
      {Modulation::kQam16, 0.5, megabits_per_second(24.0)},
      {Modulation::kQam16, 0.75, megabits_per_second(36.0)},
      {Modulation::kQam64, 2.0 / 3.0, megabits_per_second(48.0)},
      {Modulation::kQam64, 0.75, megabits_per_second(54.0)},
  };
  return mcs;
}

double packet_error_rate(const OfdmMcs& mcs, double sinr_linear, double bits) {
  SIC_CHECK(bits > 0.0);
  if (sinr_linear <= 0.0) return 1.0;
  const double gain = Decibels{coding_gain_db(mcs.code_rate)}.linear();
  const double ber = bit_error_rate(mcs.modulation, sinr_linear * gain);
  if (ber <= 0.0) return 0.0;
  // Independent-bit-error approximation over the payload.
  return 1.0 - std::pow(1.0 - ber, bits);
}

BitsPerSecond best_measured_rate(Decibels sinr, double target_delivery,
                                 double bits) {
  SIC_CHECK(target_delivery > 0.0 && target_delivery < 1.0);
  BitsPerSecond best{0.0};
  const double linear = sinr.linear();
  for (const auto& mcs : dot11g_mcs()) {
    if (1.0 - packet_error_rate(mcs, linear, bits) >= target_delivery) {
      best = std::max(best, mcs.phy_rate);
    }
  }
  return best;
}

Decibels delivery_threshold(const OfdmMcs& mcs, double target_delivery,
                            double bits) {
  SIC_CHECK(target_delivery > 0.0 && target_delivery < 1.0);
  double lo = -10.0;
  double hi = 60.0;
  SIC_CHECK_MSG(
      1.0 - packet_error_rate(mcs, Decibels{hi}.linear(), bits) >=
          target_delivery,
      "MCS never meets the delivery target");
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double delivery =
        1.0 - packet_error_rate(mcs, Decibels{mid}.linear(), bits);
    if (delivery >= target_delivery) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return Decibels{hi};
}

}  // namespace sic::phy
