/// Policy-independent invariants of the core algebra, swept over every
/// rate-adaptation policy the library ships (Shannon + the three discrete
/// ladders) with parameterized gtest. These are the properties that must
/// hold no matter how rates quantize.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/download.hpp"
#include "core/multirate.hpp"
#include "core/packing.hpp"
#include "core/power_control.hpp"
#include "core/scheduler.hpp"
#include "core/upload_pair.hpp"
#include "topology/samplers.hpp"
#include "util/rng.hpp"

namespace sic {
namespace {

constexpr Milliwatts kN0{1.0};

std::unique_ptr<phy::RateAdapter> make_adapter(const std::string& name) {
  if (name == "shannon") {
    return std::make_unique<phy::ShannonRateAdapter>(megahertz(20.0));
  }
  if (name == "11b") {
    return std::make_unique<phy::DiscreteRateAdapter>(phy::RateTable::dot11b());
  }
  if (name == "11g") {
    return std::make_unique<phy::DiscreteRateAdapter>(phy::RateTable::dot11g());
  }
  return std::make_unique<phy::DiscreteRateAdapter>(phy::RateTable::dot11n());
}

class PolicyInvariants : public ::testing::TestWithParam<std::string> {
 protected:
  PolicyInvariants() : adapter_(make_adapter(GetParam())) {}

  core::UploadPairContext ctx_db(double s1_db, double s2_db) const {
    return core::UploadPairContext::make(
        Milliwatts{Decibels{s1_db}.linear()},
        Milliwatts{Decibels{s2_db}.linear()}, kN0, *adapter_);
  }

  std::unique_ptr<phy::RateAdapter> adapter_;
};

TEST_P(PolicyInvariants, RateMonotoneInSinr) {
  double prev = -1.0;
  for (double db = -10.0; db <= 45.0; db += 0.25) {
    const double r = adapter_->rate(Decibels{db}.linear()).value();
    EXPECT_GE(r, prev) << GetParam() << " at " << db;
    prev = r;
  }
}

TEST_P(PolicyInvariants, SicAirtimeDominatesBothHalves) {
  // Z+ >= each packet's own SIC airtime; Z- >= each clean airtime.
  Rng rng{31};
  for (int i = 0; i < 200; ++i) {
    const auto ctx = ctx_db(rng.uniform(2.0, 42.0), rng.uniform(2.0, 42.0));
    const auto rates = core::sic_rates(ctx);
    const double z_plus = core::sic_airtime(ctx);
    EXPECT_GE(z_plus, airtime_seconds(ctx.packet_bits, rates.stronger) - 1e-15);
    EXPECT_GE(z_plus, airtime_seconds(ctx.packet_bits, rates.weaker) - 1e-15);
  }
}

TEST_P(PolicyInvariants, StrongerSicRateNeverExceedsItsCleanRate) {
  Rng rng{33};
  for (int i = 0; i < 200; ++i) {
    const auto ctx = ctx_db(rng.uniform(2.0, 42.0), rng.uniform(2.0, 42.0));
    const auto rates = core::sic_rates(ctx);
    const double clean =
        adapter_->rate(ctx.arrival.stronger / ctx.arrival.noise).value();
    EXPECT_LE(rates.stronger.value(), clean + 1e-9);
    // The weaker's SIC rate equals its clean rate (perfect cancellation).
    const double weak_clean =
        adapter_->rate(ctx.arrival.weaker / ctx.arrival.noise).value();
    EXPECT_DOUBLE_EQ(rates.weaker.value(), weak_clean);
  }
}

TEST_P(PolicyInvariants, TechniquesNeverHurt) {
  Rng rng{35};
  for (int i = 0; i < 100; ++i) {
    const auto ctx = ctx_db(rng.uniform(4.0, 40.0), rng.uniform(4.0, 40.0));
    const double z_sic = core::sic_airtime(ctx);
    EXPECT_LE(core::power_controlled_airtime(ctx), z_sic + 1e-15);
    EXPECT_LE(core::multirate_airtime(ctx), z_sic + 1e-15);
    EXPECT_GE(core::packing_two_to_one(ctx).gain, 1.0);
  }
}

TEST_P(PolicyInvariants, DownloadGainNeverExceedsUploadGain) {
  Rng rng{37};
  for (int i = 0; i < 100; ++i) {
    const auto ctx = ctx_db(rng.uniform(4.0, 40.0), rng.uniform(4.0, 40.0));
    EXPECT_LE(core::evaluate_download(ctx).gain,
              core::realized_gain(ctx) + 1e-12);
  }
}

TEST_P(PolicyInvariants, SchedulerNeverWorseThanSerial) {
  Rng rng{39};
  topology::SamplerConfig config;
  for (int trial = 0; trial < 10; ++trial) {
    const auto clients =
        topology::sample_upload_clients(rng, config, rng.uniform_int(2, 8));
    core::SchedulerOptions options;
    options.enable_power_control = true;
    const auto schedule = core::schedule_upload(clients, *adapter_, options);
    const double serial =
        core::serial_upload_airtime(clients, *adapter_, options.packet_bits);
    if (std::isfinite(serial)) {
      EXPECT_LE(schedule.total_airtime, serial * (1.0 + 1e-12))
          << GetParam() << " trial " << trial;
    }
  }
}

TEST_P(PolicyInvariants, RealizedGainsBounded) {
  // Completion-time gain for one packet each is bounded by 2 (perfect
  // overlap saves at most the shorter of two transmissions).
  Rng rng{41};
  for (int i = 0; i < 300; ++i) {
    const auto ctx = ctx_db(rng.uniform(2.0, 45.0), rng.uniform(2.0, 45.0));
    const double g = core::realized_gain(ctx);
    EXPECT_GE(g, 1.0);
    EXPECT_LE(g, 2.0 + 1e-9) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariants,
                         ::testing::Values("shannon", "11b", "11g", "11n"),
                         [](const auto& param_info) { return param_info.param; });

}  // namespace
}  // namespace sic
