#include "mac/fault_model.hpp"

#include "util/check.hpp"

namespace sic::mac {

FaultModel::FaultModel(const FaultConfig& config, int n_clients,
                       std::uint64_t seed)
    : config_(config), rng_(seed) {
  SIC_CHECK_MSG(config.stale_rss_sigma.value() >= 0.0, "sigma must be >= 0");
  SIC_CHECK_MSG(
      config.stale_rss_rho >= 0.0 && config.stale_rss_rho <= 1.0,
      "AR(1) rho must be in [0,1]");
  SIC_CHECK_MSG(config.cancellation_failure_prob >= 0.0 &&
                    config.cancellation_failure_prob <= 1.0,
                "cancellation failure probability must be in [0,1]");
  SIC_CHECK_MSG(config.ack_loss_prob >= 0.0 && config.ack_loss_prob <= 1.0,
                "ACK loss probability must be in [0,1]");
  if (config_.channel_faults()) {
    tracks_.reserve(static_cast<std::size_t>(n_clients));
    for (int i = 0; i < n_clients; ++i) {
      tracks_.emplace_back(config_.stale_rss_rho, config_.stale_rss_sigma,
                           rng_);
    }
  }
}

Decibels FaultModel::drift(int client) const {
  if (tracks_.empty()) return Decibels{0.0};
  SIC_CHECK(client >= 0 && client < static_cast<int>(tracks_.size()));
  return tracks_[static_cast<std::size_t>(client)].current();
}

Milliwatts FaultModel::true_rss(Milliwatts nominal, int client) const {
  if (tracks_.empty()) return nominal;
  return nominal * drift(client).linear();
}

void FaultModel::advance_epoch() {
  for (auto& track : tracks_) (void)track.step(rng_);
}

bool FaultModel::should_fail_decode(const Frame& frame, bool sic_path) {
  if (!sic_path || frame.type != FrameType::kData) return false;
  if (config_.cancellation_failure_prob <= 0.0) return false;
  if (!rng_.chance(config_.cancellation_failure_prob)) return false;
  injected_.insert(frame.id);
  ++injected_count_;
  return true;
}

bool FaultModel::was_injected(std::uint64_t frame_id) const {
  return injected_.contains(frame_id);
}

bool FaultModel::ack_lost() {
  if (config_.ack_loss_prob <= 0.0) return false;
  return rng_.chance(config_.ack_loss_prob);
}

}  // namespace sic::mac
