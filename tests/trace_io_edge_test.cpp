/// Edge cases of the trace CSV reader: real-world files arrive with CRLF
/// endings, stray whitespace, duplicated and out-of-order rows, and
/// truncated tails. The reader must tolerate the cosmetic ones and reject
/// the structural ones with the offending line named.

#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace sic::trace {
namespace {

constexpr const char* kHeader = "timestamp_s,ap_id,client_id,rssi_dbm";

TEST(TraceIoEdge, CrlfLineEndingsParse) {
  std::stringstream ss{std::string{kHeader} +
                       "\r\n0,0,1,-50.5\r\n900,0,1,-51\r\n"};
  const RssiTrace t = read_csv(ss);
  ASSERT_EQ(t.snapshots.size(), 2u);
  EXPECT_DOUBLE_EQ(t.snapshots[0].aps[0].clients[0].rssi.value(), -50.5);
}

TEST(TraceIoEdge, CrlfHeaderAloneParses) {
  std::stringstream ss{std::string{kHeader} + "\r\n"};
  EXPECT_EQ(read_csv(ss).snapshots.size(), 0u);
}

TEST(TraceIoEdge, TrailingWhitespaceTolerated) {
  std::stringstream ss{std::string{kHeader} +
                       "  \n0,0,1,-50 \n900,0,1,-51\t\t\n"};
  EXPECT_EQ(read_csv(ss).snapshots.size(), 2u);
}

TEST(TraceIoEdge, WhitespaceOnlyLinesSkipped) {
  std::stringstream ss{std::string{kHeader} +
                       "\n0,0,1,-50\n   \n\t\n900,0,1,-51\n"};
  EXPECT_EQ(read_csv(ss).snapshots.size(), 2u);
}

TEST(TraceIoEdge, DuplicateRowsBothKept) {
  // The reader does not deduplicate; both observations land in the same
  // (timestamp, ap) bucket for downstream code to resolve.
  std::stringstream ss{std::string{kHeader} + "\n0,0,1,-50\n0,0,1,-50\n"};
  const RssiTrace t = read_csv(ss);
  ASSERT_EQ(t.snapshots.size(), 1u);
  EXPECT_EQ(t.snapshots[0].aps[0].clients.size(), 2u);
}

TEST(TraceIoEdge, OutOfOrderTimestampsSorted) {
  std::stringstream ss{std::string{kHeader} +
                       "\n900,0,1,-51\n0,0,1,-50\n450,0,1,-52\n"};
  const RssiTrace t = read_csv(ss);
  ASSERT_EQ(t.snapshots.size(), 3u);
  EXPECT_EQ(t.snapshots[0].timestamp_s, 0);
  EXPECT_EQ(t.snapshots[1].timestamp_s, 450);
  EXPECT_EQ(t.snapshots[2].timestamp_s, 900);
}

TEST(TraceIoEdge, TruncatedFinalLineRejectedWithLineNumber) {
  std::stringstream ss{std::string{kHeader} + "\n0,0,1,-50\n900,0,1"};
  try {
    (void)read_csv(ss);
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string{e.what()}.find("900,0,1"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIoEdge, TrailingJunkRejected) {
  std::stringstream ss{std::string{kHeader} + "\n0,0,1,-50,extra\n"};
  EXPECT_THROW((void)read_csv(ss), TraceFormatError);
  std::stringstream ss2{std::string{kHeader} + "\n0,0,1,-50 junk\n"};
  EXPECT_THROW((void)read_csv(ss2), TraceFormatError);
}

TEST(TraceIoEdge, ErrorClassesDistinguishIoFromFormat) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/sicmac.csv"), TraceIoError);
  std::stringstream bad{"wrong,header\n"};
  EXPECT_THROW((void)read_csv(bad), TraceFormatError);
  // Both remain runtime_errors for legacy catch sites.
  static_assert(std::is_base_of_v<std::runtime_error, TraceIoError>);
  static_assert(std::is_base_of_v<std::runtime_error, TraceFormatError>);
}

}  // namespace
}  // namespace sic::trace
