#include "phy/rate_adapter.hpp"

#include "phy/capacity.hpp"
#include "util/check.hpp"

namespace sic::phy {

void RateAdapter::rate_span(std::span<const double> sinr_linear,
                            std::span<BitsPerSecond> out) const {
  SIC_CHECK(sinr_linear.size() == out.size());
  for (std::size_t i = 0; i < sinr_linear.size(); ++i) {
    out[i] = rate(sinr_linear[i]);
  }
}

BitsPerSecond ShannonRateAdapter::rate(double sinr_linear) const {
  return shannon_rate(bandwidth_, sinr_linear);
}

void ShannonRateAdapter::rate_span(std::span<const double> sinr_linear,
                                   std::span<BitsPerSecond> out) const {
  SIC_CHECK(sinr_linear.size() == out.size());
  for (std::size_t i = 0; i < sinr_linear.size(); ++i) {
    out[i] = shannon_rate(bandwidth_, sinr_linear[i]);
  }
}

BitsPerSecond DiscreteRateAdapter::rate(double sinr_linear) const {
  if (sinr_linear <= 0.0) return BitsPerSecond{0.0};
  return table_->best_rate(Decibels::from_linear(sinr_linear));
}

void DiscreteRateAdapter::rate_span(std::span<const double> sinr_linear,
                                    std::span<BitsPerSecond> out) const {
  SIC_CHECK(sinr_linear.size() == out.size());
  for (std::size_t i = 0; i < sinr_linear.size(); ++i) {
    out[i] = sinr_linear[i] <= 0.0
                 ? BitsPerSecond{0.0}
                 : table_->best_rate(Decibels::from_linear(sinr_linear[i]));
  }
}

}  // namespace sic::phy
