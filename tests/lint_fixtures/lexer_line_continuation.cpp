// Lint fixture: lexer regression — a backslash-newline splices the next
// physical line INTO a // comment (C++ translation phase 2 runs before
// comment removal). The pow() on line 7 is therefore comment text, not
// code; the old blanking scanner treated it as code and flagged it.
#include <cmath>

// dB conversion like this: \
   std::pow(10.0, x / 10.0) stays inside this comment

double real_violation(double db) {
  return std::pow(10.0, db / 10.0);  // line 11: R1 violation (real code)
}
