#ifndef SICMAC_CHANNEL_TWO_LINK_RSS_HPP
#define SICMAC_CHANNEL_TWO_LINK_RSS_HPP

/// \file two_link_rss.hpp
/// The 2×2 RSS matrix of the paper's two-transmitter/two-receiver building
/// block (Section 3.2, Fig. 5). Notation follows Table 1: S_j^i is the RSS
/// of transmitter T_i at receiver R_j; the intended links are T1→R1 and
/// T2→R2.

#include "util/units.hpp"

namespace sic::channel {

struct TwoLinkRss {
  Milliwatts s11;  ///< S₁¹ — T1 at R1 (signal of interest at R1)
  Milliwatts s12;  ///< S₁² — T2 at R1 (interference at R1)
  Milliwatts s21;  ///< S₂¹ — T1 at R2 (interference at R2)
  Milliwatts s22;  ///< S₂² — T2 at R2 (signal of interest at R2)
  Milliwatts noise;

  /// Swaps the roles of the two links (T1↔T2, R1↔R2); used to reduce the
  /// mirrored case (c) of Fig. 5 to case (b).
  [[nodiscard]] TwoLinkRss mirrored() const {
    return TwoLinkRss{s22, s21, s12, s11, noise};
  }
};

}  // namespace sic::channel

#endif  // SICMAC_CHANNEL_TWO_LINK_RSS_HPP
