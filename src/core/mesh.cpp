#include "core/mesh.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/units.hpp"

namespace sic::core {

MeshChainReport analyze_mesh_chain(const topology::Deployment& chain,
                                   const phy::RateAdapter& adapter,
                                   double packet_bits) {
  SIC_CHECK_MSG(chain.nodes.size() == 4, "mesh chain must be A, C, D, E");
  SIC_CHECK(packet_bits > 0.0);
  const auto& a = chain.nodes[0];
  const auto& c = chain.nodes[1];
  const auto& d = chain.nodes[2];
  const auto& e = chain.nodes[3];

  MeshChainReport report;
  // The concurrent pair: link 1 = A→C (interfered by D at C), link 2 = D→E
  // (interfered, weakly, by A at E).
  channel::TwoLinkRss rss;
  rss.s11 = chain.rss(a, c);
  rss.s12 = chain.rss(d, c);
  rss.s21 = chain.rss(a, e);
  rss.s22 = chain.rss(d, e);
  rss.noise = chain.noise();
  report.cross = evaluate_cross_link(rss, adapter, packet_bits);
  report.sic_feasible_at_relay = report.cross.sic_feasible;

  const double t_ac =
      airtime_seconds(packet_bits, adapter.rate(chain.rss(a, c) / chain.noise()));
  const double t_cd =
      airtime_seconds(packet_bits, adapter.rate(chain.rss(c, d) / chain.noise()));
  const double t_de =
      airtime_seconds(packet_bits, adapter.rate(chain.rss(d, e) / chain.noise()));
  report.serial_cycle_s = t_ac + t_cd + t_de;
  report.pipelined_cycle_s =
      report.sic_feasible_at_relay
          ? report.cross.concurrent_airtime + t_cd
          : report.serial_cycle_s;
  if (std::isfinite(report.serial_cycle_s) && report.serial_cycle_s > 0.0) {
    report.serial_throughput_bps = packet_bits / report.serial_cycle_s;
  }
  if (std::isfinite(report.pipelined_cycle_s) &&
      report.pipelined_cycle_s > 0.0) {
    report.pipelined_throughput_bps = packet_bits / report.pipelined_cycle_s;
  }
  // A rational relay never pipelines when it loses.
  if (report.pipelined_throughput_bps < report.serial_throughput_bps) {
    report.pipelined_cycle_s = report.serial_cycle_s;
    report.pipelined_throughput_bps = report.serial_throughput_bps;
  }
  report.gain = report.serial_throughput_bps > 0.0
                    ? report.pipelined_throughput_bps /
                          report.serial_throughput_bps
                    : 1.0;
  return report;
}

}  // namespace sic::core
