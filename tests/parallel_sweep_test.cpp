#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/montecarlo.hpp"
#include "analysis/parallel.hpp"
#include "analysis/trace_eval.hpp"
#include "obs/metrics.hpp"
#include "trace/generator.hpp"

/// \file parallel_sweep_test.cpp
/// The determinism contract of the parallel sweep engine: every ported
/// sweep returns bit-identical samples — and publishes identical metric
/// counters — at --threads 1, 4, and 7 (7 oversubscribes the pool relative
/// to the chunk count, exercising uneven schedules).

namespace sic::analysis {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};
constexpr int kThreadCounts[] = {1, 4, 7};

/// Runs \p sweep under a freshly attached registry and returns its samples
/// plus the name-sorted counter values it published.
template <typename Sweep>
auto with_counters(const Sweep& sweep) {
  obs::MetricsRegistry reg;
  obs::MetricsRegistry* previous = obs::set_metrics(&reg);
  auto samples = sweep();
  obs::set_metrics(previous);
  return std::make_pair(std::move(samples), reg.counter_values());
}

void expect_identical(const std::vector<double>& a,
                      const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "sample " << i;
  }
}

TEST(ParallelSweep, RunnerMapTrialsMatchesDirectSubstreams) {
  // The engine's output is definitionally results[t] = body(Rng::at(seed,
  // t), t), independent of pool size.
  ParallelRunner parallel{{.threads = 4, .chunk_trials = 8}};
  const auto got = parallel.map_trials<double>(
      100, 77, [](Rng& rng, std::int64_t) { return rng.uniform(0.0, 1.0); });
  for (std::int64_t t = 0; t < 100; ++t) {
    Rng rng = Rng::at(77, static_cast<std::uint64_t>(t));
    EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(t)],
                     rng.uniform(0.0, 1.0));
  }
}

TEST(ParallelSweep, TwoLinkGainsThreadCountInvariant) {
  topology::SamplerConfig config;
  const auto [base, base_counters] = with_counters(
      [&] { return run_two_link_gains(config, kShannon, 400, 5, 12000.0, 1); });
  ASSERT_EQ(base.size(), 400u);
  for (const int threads : kThreadCounts) {
    const auto [gains, counters] = with_counters([&] {
      return run_two_link_gains(config, kShannon, 400, 5, 12000.0, threads);
    });
    expect_identical(base, gains);
    EXPECT_EQ(base_counters, counters) << "threads=" << threads;
  }
}

TEST(ParallelSweep, TwoToOneTechniquesThreadCountInvariant) {
  topology::SamplerConfig config;
  const auto [base, base_counters] = with_counters([&] {
    return run_two_to_one_techniques(config, kShannon, 300, 11, 12000.0, 1);
  });
  for (const int threads : kThreadCounts) {
    const auto [samples, counters] = with_counters([&] {
      return run_two_to_one_techniques(config, kShannon, 300, 11, 12000.0,
                                       threads);
    });
    expect_identical(base.sic, samples.sic);
    expect_identical(base.power_control, samples.power_control);
    expect_identical(base.multirate, samples.multirate);
    expect_identical(base.packing, samples.packing);
    EXPECT_EQ(base_counters, counters) << "threads=" << threads;
  }
}

TEST(ParallelSweep, TwoLinkTechniquesThreadCountInvariant) {
  topology::SamplerConfig config;
  const auto [base, base_counters] = with_counters([&] {
    return run_two_link_techniques(config, kShannon, 200, 13, 12000.0, 1);
  });
  for (const int threads : kThreadCounts) {
    const auto [samples, counters] = with_counters([&] {
      return run_two_link_techniques(config, kShannon, 200, 13, 12000.0,
                                     threads);
    });
    expect_identical(base.sic, samples.sic);
    expect_identical(base.power_control, samples.power_control);
    expect_identical(base.packing, samples.packing);
    EXPECT_TRUE(samples.multirate.empty());
    EXPECT_EQ(base_counters, counters) << "threads=" << threads;
  }
}

TEST(ParallelSweep, UploadDeploymentGainsThreadCountInvariant) {
  // This sweep drives schedule_upload -> blossom matching, whose counters
  // are published from worker threads — the merge path under test.
  topology::SamplerConfig config;
  const auto [base, base_counters] = with_counters([&] {
    return run_upload_deployment_gains(config, kShannon, 60, 8, 17, 12000.0,
                                       1);
  });
  ASSERT_EQ(base.size(), 60u);
  bool saw_matching_counter = false;
  bool saw_engine_counter = false;
  for (const auto& [name, value] : base_counters) {
    if (name.find("matching.") == 0 && value > 0) saw_matching_counter = true;
    if (name.find("scheduler.pair_engine.") == 0 && value > 0) {
      saw_engine_counter = true;
    }
  }
  EXPECT_TRUE(saw_matching_counter)
      << "expected worker-side matching counters to reach the caller";
  EXPECT_TRUE(saw_engine_counter)
      << "expected pair-cost engine counters to reach the caller";
  for (const int threads : kThreadCounts) {
    const auto [gains, counters] = with_counters([&] {
      return run_upload_deployment_gains(config, kShannon, 60, 8, 17, 12000.0,
                                         threads);
    });
    expect_identical(base, gains);
    EXPECT_EQ(base_counters, counters) << "threads=" << threads;
  }
}

TEST(ParallelSweep, DownloadTraceThreadCountInvariant) {
  trace::LinkTraceConfig config;
  const auto link_trace = trace::generate_link_trace(config, 23);
  DownloadTraceEvalConfig eval;
  eval.pair_samples = 300;
  const auto [base, base_counters] = with_counters([&] {
    eval.threads = 1;
    return evaluate_download_trace(link_trace, kShannon, eval);
  });
  for (const int threads : kThreadCounts) {
    const auto [gains, counters] = with_counters([&] {
      eval.threads = threads;
      return evaluate_download_trace(link_trace, kShannon, eval);
    });
    expect_identical(base.plain, gains.plain);
    expect_identical(base.packing, gains.packing);
    EXPECT_EQ(base_counters, counters) << "threads=" << threads;
  }
}

TEST(ParallelSweep, UploadTraceThreadCountInvariant) {
  trace::BuildingConfig config;
  config.duration_s = 2 * 3600;
  config.diurnal = false;
  const auto rssi_trace = trace::generate_building_trace(config, 31);
  UploadTraceEvalConfig eval;
  const auto [base, base_counters] = with_counters([&] {
    eval.threads = 1;
    return evaluate_upload_trace(rssi_trace, kShannon, eval);
  });
  ASSERT_GT(base.cells_evaluated, 0);
  for (const int threads : kThreadCounts) {
    const auto [gains, counters] = with_counters([&] {
      eval.threads = threads;
      return evaluate_upload_trace(rssi_trace, kShannon, eval);
    });
    EXPECT_EQ(base.cells_evaluated, gains.cells_evaluated);
    expect_identical(base.pairing, gains.pairing);
    expect_identical(base.power_control, gains.power_control);
    expect_identical(base.multirate, gains.multirate);
    expect_identical(base.greedy_pairing, gains.greedy_pairing);
    EXPECT_EQ(base_counters, counters) << "threads=" << threads;
  }
}

TEST(ParallelSweep, DetachedRunMatchesAttachedRun) {
  // Observers stay pure on the parallel path too: samples are bit-identical
  // with and without a registry attached.
  topology::SamplerConfig config;
  const auto detached =
      run_two_link_gains(config, kShannon, 200, 5, 12000.0, 4);
  const auto [attached, counters] = with_counters(
      [&] { return run_two_link_gains(config, kShannon, 200, 5, 12000.0, 4); });
  expect_identical(detached, attached);
  EXPECT_FALSE(counters.empty());
}

TEST(ParallelSweep, ZeroMeansAllHardwareThreads) {
  topology::SamplerConfig config;
  const auto base = run_two_link_gains(config, kShannon, 100, 5, 12000.0, 1);
  const auto all = run_two_link_gains(config, kShannon, 100, 5, 12000.0, 0);
  expect_identical(base, all);
}

}  // namespace
}  // namespace sic::analysis
