#include "trace/link_trace.hpp"

#include <gtest/gtest.h>

namespace sic::trace {
namespace {

TEST(LinkTrace, DimensionsAndDeterminism) {
  LinkTraceConfig config;
  const LinkTrace a = generate_link_trace(config, 7);
  EXPECT_EQ(a.n_aps(), 5);
  EXPECT_EQ(a.n_locations(), 100);
  const LinkTrace b = generate_link_trace(config, 7);
  for (int ap = 0; ap < a.n_aps(); ++ap) {
    for (int loc = 0; loc < a.n_locations(); ++loc) {
      EXPECT_DOUBLE_EQ(a.snr(ap, loc).value(), b.snr(ap, loc).value());
    }
  }
}

TEST(LinkTrace, NearestApUsuallyStrongest) {
  // Locations near AP k's corridor position should mostly prefer AP k.
  LinkTraceConfig config;
  config.shadowing_sigma = Decibels{0.0 + 1e-9};  // almost deterministic
  const LinkTrace t = generate_link_trace(config, 11);
  int sane = 0;
  for (int loc = 0; loc < t.n_locations(); ++loc) {
    double best = -1e9;
    for (int ap = 0; ap < t.n_aps(); ++ap) {
      best = std::max(best, t.snr(ap, loc).value());
    }
    if (best > 10.0) ++sane;  // most locations have a usable AP
  }
  EXPECT_GT(sane, t.n_locations() / 2);
}

TEST(LinkTrace, CleanRateFollowsTable) {
  LinkTrace t{2, 2};
  t.set_snr(0, 0, Decibels{25.0});
  t.set_snr(0, 1, Decibels{3.0});
  const auto& g = phy::RateTable::dot11g();
  EXPECT_DOUBLE_EQ(t.clean_rate(0, 0, g).megabits(), 54.0);
  EXPECT_DOUBLE_EQ(t.clean_rate(0, 1, g).value(), 0.0);
}

TEST(LinkTrace, InterferenceRateBelowCleanRate) {
  LinkTrace t{2, 1};
  t.set_snr(0, 0, Decibels{30.0});
  t.set_snr(1, 0, Decibels{20.0});
  const auto& g = phy::RateTable::dot11g();
  EXPECT_LT(t.rate_under_interference(0, 1, 0, g).value(),
            t.clean_rate(0, 0, g).value());
  // SINR = 30 dB signal vs 20 dB interferer ≈ 10 dB → 12 Mbps.
  EXPECT_DOUBLE_EQ(t.rate_under_interference(0, 1, 0, g).megabits(), 12.0);
}

TEST(LinkTrace, TwoLinkRssMatrixMatchesSnrs) {
  LinkTrace t{2, 2};
  t.set_snr(0, 0, Decibels{20.0});
  t.set_snr(1, 0, Decibels{10.0});
  t.set_snr(0, 1, Decibels{5.0});
  t.set_snr(1, 1, Decibels{25.0});
  const auto rss = t.two_link_rss(0, 0, 1, 1);
  EXPECT_NEAR(rss.s11.value(), Decibels{20.0}.linear(), 1e-9);
  EXPECT_NEAR(rss.s12.value(), Decibels{10.0}.linear(), 1e-9);
  EXPECT_NEAR(rss.s21.value(), Decibels{5.0}.linear(), 1e-9);
  EXPECT_NEAR(rss.s22.value(), Decibels{25.0}.linear(), 1e-9);
  EXPECT_DOUBLE_EQ(rss.noise.value(), 1.0);
}

TEST(LinkTrace, RejectsDegeneratePairs) {
  LinkTrace t{2, 2};
  EXPECT_THROW((void)t.two_link_rss(0, 0, 0, 1), std::logic_error);
  EXPECT_THROW((void)t.two_link_rss(0, 0, 1, 0), std::logic_error);
  EXPECT_THROW((void)t.rate_under_interference(1, 1, 0,
                                               phy::RateTable::dot11g()),
               std::logic_error);
}

}  // namespace
}  // namespace sic::trace
