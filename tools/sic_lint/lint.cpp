#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace sic::lint {

namespace {

// ---------------------------------------------------------------------------
// Path classification
// ---------------------------------------------------------------------------

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// True if `path` has a directory component named `dir` (e.g. "obs",
/// "bench"). Works for absolute and repo-relative paths alike.
bool has_dir_component(std::string_view path, std::string_view dir) {
  std::size_t pos = 0;
  while ((pos = path.find(dir, pos)) != std::string_view::npos) {
    const bool starts_segment = pos == 0 || path[pos - 1] == '/';
    const std::size_t end = pos + dir.size();
    const bool ends_segment = end < path.size() && path[end] == '/';
    if (starts_segment && ends_segment) return true;
    pos = end;
  }
  return false;
}

/// Fixture files exercise the rules in tests: never exempt them.
bool is_fixture(std::string_view path) {
  return has_dir_component(path, "lint_fixtures");
}

bool is_header(std::string_view path) { return ends_with(path, ".hpp"); }

bool r1_applies(std::string_view path) {
  // util/units.hpp is the one blessed home of dB↔linear math.
  return !ends_with(path, "util/units.hpp");
}

bool r2_applies(std::string_view path) {
  return is_header(path) && !ends_with(path, "util/units.hpp");
}

bool r3_applies(std::string_view path) {
  if (is_fixture(path)) return true;
  // Observability reads clocks by design; bench code times itself.
  return !has_dir_component(path, "obs") && !has_dir_component(path, "bench");
}

bool r4_applies(std::string_view path) {
  if (is_fixture(path)) return true;
  // The registry implementation calls its own mutators; tests assert on
  // mutator behavior inside EXPECT macros. Both are out of scope.
  return !has_dir_component(path, "obs") && !has_dir_component(path, "tests");
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Per-line sets of rule names allowed via `// sic-lint: allow(R1,R3)`.
/// A suppression on a comment-only line also covers the next line.
///
/// Parsed from the comments-only view (not the raw source), so the allow
/// marker occurring inside a string literal — e.g. in a fixture or in
/// sic_lint's own messages — can never suppress findings. The sanitized
/// code view decides whether a line is comment-only.
class Suppressions {
 public:
  Suppressions(std::string_view comments, std::string_view code) {
    static const std::regex allow_re(
        R"(sic-lint:\s*allow\(\s*([A-Za-z0-9_,\s]+?)\s*\))");
    int line_no = 1;
    std::size_t start = 0;
    while (start <= comments.size()) {
      std::size_t nl = comments.find('\n', start);
      if (nl == std::string_view::npos) nl = comments.size();
      const std::string line{comments.substr(start, nl - start)};
      std::smatch m;
      if (std::regex_search(line, m, allow_re)) {
        std::set<std::string> rules;
        std::stringstream list{m[1].str()};
        std::string rule;
        while (std::getline(list, rule, ',')) {
          rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                     rule.end());
          if (!rule.empty()) rules.insert(rule);
        }
        add(line_no, rules);
        const std::string_view code_line =
            code.substr(start, std::min(nl, code.size()) - start);
        const bool comment_only =
            code_line.find_first_not_of(" \t\r") == std::string_view::npos;
        if (comment_only) add(line_no + 1, rules);
      }
      ++line_no;
      start = nl + 1;
    }
  }

  [[nodiscard]] bool allowed(int line, const std::string& rule) const {
    const auto it = by_line_.find(line);
    return it != by_line_.end() && it->second.count(rule) > 0;
  }

 private:
  void add(int line, const std::set<std::string>& rules) {
    by_line_[line].insert(rules.begin(), rules.end());
  }

  std::unordered_map<int, std::set<std::string>> by_line_;
};

// ---------------------------------------------------------------------------
// Rule helpers
// ---------------------------------------------------------------------------

int line_of(std::string_view text, std::size_t pos) {
  return 1 + static_cast<int>(
                 std::count(text.begin(), text.begin() + pos, '\n'));
}

void emit(std::vector<Finding>& out, const Suppressions& suppress,
          const std::string& rule, const std::string& path, int line,
          std::string symbol, std::string message) {
  if (suppress.allowed(line, rule)) return;
  out.push_back(Finding{rule, path, line, std::move(symbol),
                        std::move(message)});
}

/// R1 — hand-rolled dB↔linear conversions.
void check_r1(const std::string& path, const std::string& text,
              const Suppressions& suppress, std::vector<Finding>& out) {
  static const std::regex pow10_re(R"(\bpow\s*\(\s*10(?:\.0*)?\s*,)");
  static const std::regex log10_re(R"(\blog10\s*\()");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), pow10_re);
       it != std::sregex_iterator(); ++it) {
    emit(out, suppress, "R1", path,
         line_of(text, static_cast<std::size_t>(it->position())), "",
         "hand-rolled pow(10, x/10) dB->linear conversion; use "
         "sic::Decibels{x}.linear() from util/units.hpp");
  }
  for (auto it = std::sregex_iterator(text.begin(), text.end(), log10_re);
       it != std::sregex_iterator(); ++it) {
    emit(out, suppress, "R1", path,
         line_of(text, static_cast<std::size_t>(it->position())), "",
         "hand-rolled log10 linear->dB conversion; use "
         "sic::Decibels::from_linear() from util/units.hpp");
  }
}

/// R2 — raw doubles with unit suffixes in headers.
void check_r2(const std::string& path, const std::string& text,
              const Suppressions& suppress, std::vector<Finding>& out) {
  static const std::regex decl_re(
      R"(\bdouble\s+([A-Za-z_]\w*_(?:db|dbm|mw)_?)\b)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), decl_re);
       it != std::sregex_iterator(); ++it) {
    const std::string symbol = (*it)[1].str();
    emit(out, suppress, "R2", path,
         line_of(text, static_cast<std::size_t>(it->position())), symbol,
         "raw double '" + symbol +
             "' carries a unit suffix in a header; use sic::Decibels / "
             "sic::Dbm / sic::Milliwatts");
  }
}

/// Collects identifiers declared with std::unordered_* types (variables,
/// fields, parameters) so R3 can flag iteration over them.
std::set<std::string> unordered_names(const std::string& text) {
  std::set<std::string> names;
  static const std::regex type_re(
      R"(std::unordered_(?:map|set|multimap|multiset)\s*<)");
  static const std::regex name_re(R"(^[\s&*]*(?:const\s+)?([A-Za-z_]\w*))");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), type_re);
       it != std::sregex_iterator(); ++it) {
    // Balance the template angle brackets starting just after '<'.
    std::size_t pos =
        static_cast<std::size_t>(it->position() + it->length());
    int depth = 1;
    while (pos < text.size() && depth > 0) {
      if (text[pos] == '<') ++depth;
      if (text[pos] == '>') --depth;
      ++pos;
    }
    if (depth != 0) continue;
    std::smatch m;
    const std::string rest = text.substr(pos, 160);
    if (std::regex_search(rest, m, name_re)) names.insert(m[1].str());
  }
  return names;
}

/// True if the `name.end()` call whose identifier starts at `name_pos` (with
/// the argument list opening just before `after_open`) is an operand of an
/// `==`/`!=` comparison. `it != m.end()` and `m.find(k) == m.end()` are
/// deterministic membership/validity tests, not order-dependent iteration.
bool is_validity_comparison(const std::string& text, std::size_t name_pos,
                            std::size_t after_open) {
  std::size_t b = name_pos;
  while (b > 0 && std::isspace(static_cast<unsigned char>(text[b - 1]))) --b;
  if (b >= 2 && text[b - 1] == '=' &&
      (text[b - 2] == '=' || text[b - 2] == '!')) {
    return true;
  }
  std::size_t p = after_open;  // balance the call's argument list
  int depth = 1;
  while (p < text.size() && depth > 0) {
    if (text[p] == '(') ++depth;
    if (text[p] == ')') --depth;
    ++p;
  }
  while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])))
    ++p;
  return p + 1 < text.size() && (text[p] == '=' || text[p] == '!') &&
         text[p + 1] == '=';
}

/// R3 — nondeterminism sources.
void check_r3(const std::string& path, const std::string& text,
              const Suppressions& suppress, std::vector<Finding>& out) {
  struct Banned {
    const char* pattern;
    const char* why;
  };
  static const Banned banned[] = {
      {R"(\bstd::rand\b)", "std::rand is not seedable per-stream; use "
                           "sic::Rng (util/rng.hpp)"},
      {R"(\bsrand\s*\()", "srand mutates global state; use sic::Rng "
                          "(util/rng.hpp)"},
      {R"(\bsystem_clock\b)", "wall-clock time breaks reproducibility; use "
                              "steady_clock (and only in obs/bench code)"},
      {R"(\bhigh_resolution_clock\b)",
       "high_resolution_clock may alias system_clock; use steady_clock (and "
       "only in obs/bench code)"},
  };
  for (const Banned& b : banned) {
    const std::regex re(b.pattern);
    for (auto it = std::sregex_iterator(text.begin(), text.end(), re);
         it != std::sregex_iterator(); ++it) {
      emit(out, suppress, "R3", path,
           line_of(text, static_cast<std::size_t>(it->position())), "",
           b.why);
    }
  }

  const std::set<std::string> unordered = unordered_names(text);
  if (unordered.empty()) return;
  // Range-for over an unordered container: iteration order is unspecified.
  static const std::regex range_for_re(
      R"(for\s*\([^;()]*:\s*(?:this->)?(?:[A-Za-z_]\w*\.)*([A-Za-z_]\w*)\s*\))");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), range_for_re);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (unordered.count(name) == 0) continue;
    emit(out, suppress, "R3", path,
         line_of(text, static_cast<std::size_t>(it->position())), "",
         "iteration over unordered container '" + name +
             "' has unspecified order; iterate a sorted copy or an ordered "
             "container");
  }
  static const std::regex begin_re(
      R"(\b([A-Za-z_]\w*)\s*\.\s*(begin|end|cbegin|cend)\s*\()");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), begin_re);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    if (unordered.count(name) == 0) continue;
    const std::string method = (*it)[2].str();
    if ((method == "end" || method == "cend") &&
        is_validity_comparison(
            text, static_cast<std::size_t>(it->position(1)),
            static_cast<std::size_t>(it->position() + it->length()))) {
      continue;
    }
    emit(out, suppress, "R3", path,
         line_of(text, static_cast<std::size_t>(it->position())), "",
         "iterator over unordered container '" + name +
             "' has unspecified order; iterate a sorted copy or an ordered "
             "container");
  }
}

/// True if `prefix` (the statement text before a metrics mutator chain)
/// puts the mutator inside a value-producing expression.
bool impure_prefix(std::string_view prefix) {
  static const std::regex return_re(R"(\breturn\b)");
  if (std::regex_search(prefix.begin(), prefix.end(), return_re)) return true;
  int depth = 0;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    const char c = prefix[i];
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == '=') {
      const char prev = i > 0 ? prefix[i - 1] : ' ';
      const char next = i + 1 < prefix.size() ? prefix[i + 1] : ' ';
      // ==, !=, <=, >= are comparisons (consumed only inside a condition,
      // which the paren-depth check covers). Bare `=` AND the compound
      // +=, -=, ... forms all consume the chain's value.
      const bool comparison = next == '=' || prev == '=' || prev == '<' ||
                              prev == '>' || prev == '!';
      if (!comparison) return true;
    }
  }
  return depth > 0;  // unbalanced '(' => nested inside another call
}

/// R4 — metrics mutators used as values.
void check_r4(const std::string& path, const std::string& text,
              const Suppressions& suppress, std::vector<Finding>& out) {
  static const std::regex maker_re(
      R"(\b(counter|gauge|histogram|series)\s*\()");
  static const std::set<std::string> mutators{"inc", "set", "observe",
                                              "record"};
  for (auto it = std::sregex_iterator(text.begin(), text.end(), maker_re);
       it != std::sregex_iterator(); ++it) {
    // Balance the maker's argument list.
    std::size_t pos =
        static_cast<std::size_t>(it->position() + it->length());
    int depth = 1;
    while (pos < text.size() && depth > 0) {
      if (text[pos] == '(') ++depth;
      if (text[pos] == ')') --depth;
      ++pos;
    }
    if (depth != 0) continue;
    // Require a chained `.inc(` / `.set(` / `.observe(` — a bound reference
    // (`auto& h = reg.histogram(...)`) is not itself a mutation.
    std::size_t p = pos;
    while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])))
      ++p;
    if (p >= text.size() || text[p] != '.') continue;
    ++p;
    while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p])))
      ++p;
    std::size_t name_end = p;
    while (name_end < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[name_end])) ||
            text[name_end] == '_'))
      ++name_end;
    if (mutators.count(text.substr(p, name_end - p)) == 0) continue;

    // Statement prefix: back from the maker token to the nearest ; { or }.
    const auto match_pos = static_cast<std::size_t>(it->position());
    std::size_t stmt_start = 0;
    for (std::size_t i = match_pos; i > 0; --i) {
      const char c = text[i - 1];
      if (c == ';' || c == '{' || c == '}') {
        stmt_start = i;
        break;
      }
    }
    const std::string_view prefix =
        std::string_view{text}.substr(stmt_start, match_pos - stmt_start);
    if (!impure_prefix(prefix)) continue;
    emit(out, suppress, "R4", path, line_of(text, match_pos), "",
         "metrics mutator used inside a value-producing expression; "
         "observers must be pure side-channel statements");
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

namespace {

/// If `source[i]` begins a raw string literal — an optional u8/u/U/L
/// encoding prefix followed by R" — returns the number of characters
/// before the opening quote (1 for R", 2 for uR"/UR"/LR", 3 for u8R").
/// Returns 0 when `i` is mid-identifier or no raw string starts here.
std::size_t raw_prefix_length(std::string_view source, std::size_t i) {
  if (i > 0 && (std::isalnum(static_cast<unsigned char>(source[i - 1])) ||
                source[i - 1] == '_')) {
    return 0;
  }
  std::size_t j = i;
  if (source.compare(j, 2, "u8") == 0) {
    j += 2;
  } else if (source[j] == 'u' || source[j] == 'U' || source[j] == 'L') {
    ++j;
  }
  if (j + 1 < source.size() && source[j] == 'R' && source[j + 1] == '"') {
    return j + 1 - i;
  }
  return 0;
}

/// Shared scanner behind sanitize()/comments_only(): copies one channel
/// (code or comments) into a same-shape buffer and blanks the other,
/// preserving newlines and column positions in both.
std::string strip(std::string_view source, bool keep_code) {
  std::string out(source.size(), ' ');
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // )delim" terminator for raw strings
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char c = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    if (c == '\n') out[i] = '\n';
    switch (state) {
      case State::kCode: {
        const std::size_t raw_len =
            (c == 'R' || c == 'u' || c == 'U' || c == 'L')
                ? raw_prefix_length(source, i)
                : 0;
        if (c == '/' && next == '/') {
          if (!keep_code) out[i] = '/';
          state = State::kLineComment;
        } else if (c == '/' && next == '*') {
          if (!keep_code) {
            out[i] = '/';
            out[i + 1] = '*';
          }
          state = State::kBlockComment;
          ++i;
        } else if (raw_len > 0) {
          // (u8|u|U|L)?R"delim( ... )delim"
          std::size_t open = source.find('(', i + raw_len + 1);
          if (open == std::string_view::npos) {
            if (keep_code) out[i] = c;
            break;
          }
          raw_delim = ")";
          raw_delim.append(
              source.substr(i + raw_len + 1, open - (i + raw_len + 1)));
          raw_delim.push_back('"');
          if (keep_code) {
            for (std::size_t j = i; j <= i + raw_len; ++j) out[j] = source[j];
          }
          i = open;  // blank from after '(' onwards
          state = State::kRawString;
        } else if (c == '"') {
          if (keep_code) out[i] = '"';
          state = State::kString;
        } else if (c == '\'') {
          // A quote right after an identifier/digit char is a digit
          // separator (299'792'458), not a char literal.
          const bool separator =
              i > 0 && (std::isalnum(static_cast<unsigned char>(
                            source[i - 1])) ||
                        source[i - 1] == '_');
          if (keep_code) out[i] = '\'';
          if (!separator) state = State::kChar;
        } else if (keep_code) {
          out[i] = c;
        }
        break;
      }
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else if (!keep_code) {
          out[i] = c;
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          if (!keep_code) {
            out[i] = '*';
            out[i + 1] = '/';
          }
          state = State::kCode;
          ++i;
        } else if (!keep_code) {
          out[i] = c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
          if (i < source.size() && source[i] == '\n') out[i] = '\n';
        } else if (c == '"') {
          if (keep_code) out[i] = '"';
          state = State::kCode;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          if (keep_code) out[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (source.compare(i, raw_delim.size(), raw_delim) == 0) {
          if (keep_code) out[i + raw_delim.size() - 1] = '"';
          i += raw_delim.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

}  // namespace

std::string sanitize(std::string_view source) { return strip(source, true); }

std::string comments_only(std::string_view source) {
  return strip(source, false);
}

std::vector<Finding> lint_file(const std::string& path,
                               std::string_view source) {
  const std::string text = sanitize(source);
  const Suppressions suppress{comments_only(source), text};
  std::vector<Finding> out;
  if (r1_applies(path)) check_r1(path, text, suppress, out);
  if (r2_applies(path)) check_r2(path, text, suppress, out);
  if (r3_applies(path)) check_r3(path, text, suppress, out);
  if (r4_applies(path)) check_r4(path, text, suppress, out);
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

std::vector<std::string> parse_baseline(std::string_view text) {
  std::vector<std::string> entries;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) nl = text.size();
    std::string line{text.substr(start, nl - start)};
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first != std::string::npos) {
      const std::size_t last = line.find_last_not_of(" \t\r");
      entries.push_back(line.substr(first, last - first + 1));
    }
    start = nl + 1;
  }
  return entries;
}

std::vector<Finding> apply_baseline(std::vector<Finding> findings,
                                    const std::vector<std::string>& baseline) {
  std::unordered_set<std::string> entries(baseline.begin(), baseline.end());
  std::vector<Finding> out;
  out.reserve(findings.size());
  std::unordered_set<std::string> used;
  for (Finding& f : findings) {
    const std::string key = f.path + ":" + f.symbol;
    if (f.rule == "R2" && entries.count(key) > 0) {
      used.insert(key);
      continue;  // accepted debt
    }
    out.push_back(std::move(f));
  }
  for (const std::string& entry : baseline) {
    if (used.count(entry) > 0) continue;
    out.push_back(Finding{
        "baseline", entry, 0, "",
        "stale baseline entry (no matching R2 finding); remove it"});
  }
  return out;
}

std::string format_finding(const Finding& finding) {
  std::ostringstream os;
  os << finding.path << ":" << finding.line << ": [" << finding.rule << "] "
     << finding.message;
  return os.str();
}

}  // namespace sic::lint
