#include "analysis/montecarlo.hpp"

#include <gtest/gtest.h>

#include "analysis/stats.hpp"

namespace sic::analysis {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

TEST(MonteCarlo, TechniqueGainsOrdering) {
  // For any single pair: every technique's realized gain ≥ plain SIC's
  // realized floor of 1, and power control / multirate dominate plain SIC.
  Rng rng{3};
  topology::SamplerConfig config;
  for (int i = 0; i < 300; ++i) {
    const auto sample = topology::sample_two_to_one(rng, config);
    const auto ctx = core::UploadPairContext::make(
        sample.s1, sample.s2, sample.noise, kShannon);
    const auto g = evaluate_upload_pair_techniques(ctx);
    EXPECT_GE(g.sic, 1.0);
    EXPECT_GE(g.power_control + 1e-9, g.sic);
    EXPECT_GE(g.multirate + 1e-9, g.sic);
    EXPECT_GE(g.packing, 1.0);
  }
}

TEST(MonteCarlo, TwoLinkGainsDeterministicPerSeed) {
  topology::SamplerConfig config;
  const auto a = run_two_link_gains(config, kShannon, 100, 5);
  const auto b = run_two_link_gains(config, kShannon, 100, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(MonteCarlo, TwoToOneSamplesHaveAllSeries) {
  topology::SamplerConfig config;
  const auto samples = run_two_to_one_techniques(config, kShannon, 200, 11);
  EXPECT_EQ(samples.sic.size(), 200u);
  EXPECT_EQ(samples.power_control.size(), 200u);
  EXPECT_EQ(samples.multirate.size(), 200u);
  EXPECT_EQ(samples.packing.size(), 200u);
}

TEST(MonteCarlo, TwoLinkTechniquesDominatePlain) {
  topology::SamplerConfig config;
  const auto samples = run_two_link_techniques(config, kShannon, 150, 13);
  ASSERT_EQ(samples.power_control.size(), samples.sic.size());
  ASSERT_EQ(samples.packing.size(), samples.sic.size());
  EXPECT_TRUE(samples.multirate.empty());  // N/A in the two-receiver case
  for (std::size_t i = 0; i < samples.sic.size(); ++i) {
    EXPECT_GE(samples.power_control[i] + 1e-9, samples.sic[i]);
    EXPECT_GE(samples.packing[i] + 1e-9, samples.sic[i]);
  }
}

TEST(MonteCarlo, UploadGainsExceedCrossLinkGains) {
  // The paper's core comparative claim, at matched scale: common-receiver
  // topologies yield more SIC gain than distinct-receiver ones.
  topology::SamplerConfig config;
  const auto upload = run_two_to_one_techniques(config, kShannon, 2000, 21);
  const auto cross = run_two_link_gains(config, kShannon, 2000, 21);
  const double upload_mean = summarize(upload.sic).mean;
  const double cross_mean = summarize(cross).mean;
  EXPECT_GT(upload_mean, cross_mean);
}

}  // namespace
}  // namespace sic::analysis
