#ifndef SICMAC_CORE_PAIR_COST_ENGINE_HPP
#define SICMAC_CORE_PAIR_COST_ENGINE_HPP

/// \file pair_cost_engine.hpp
/// Incremental pair-cost engine for the Fig. 12 scheduling reduction.
///
/// The reduction's dominant cost at realistic client counts is not the
/// matching but the all-pairs completion-time matrix feeding it: n(n−1)/2
/// best_pair_plan evaluations, each re-deriving per-client state (solo
/// airtime, margin-derated RSS) that only depends on one endpoint. The
/// engine splits that work into
///
///  - per-client derived state, computed once per client and reused across
///    the client's whole row (SoA layout: rss / derated rss / solo airtime
///    in parallel arrays),
///  - a pair kernel shared with best_pair_plan (see
///    best_pair_plan_from_context) evaluating a row of pairs against one
///    client's precomputed state, and
///  - a pair-plan cache with dirty-row invalidation keyed on the client's
///    channel fingerprint (its linear RSS): update_client() invalidates a
///    row only when the new estimate moved beyond a configurable epsilon,
///    so a re-matching round after re-estimation recomputes O(Δn·n) plans
///    instead of O(n²), with the plan table and cost matrix reused across
///    rounds instead of reallocated.
///
/// Contract: schedules are bit-identical to the historical from-scratch
/// path (same PairPlans, same matching input, same slot order) whenever the
/// invalidation epsilon is 0 dB — the default — because the cache only ever
/// skips recomputations whose inputs are unchanged. A nonzero epsilon is an
/// explicit approximation knob: rows within epsilon keep serving the plans
/// of their *fingerprinted* (stale) RSS. Pinned by
/// tests/pair_cost_engine_test.cpp.
///
/// Observability: each schedule() / schedule_subset() publishes engine
/// counters (pair evals, cache hits, row invalidations, builds) and a
/// kernel wall-time histogram under scheduler.pair_engine.* at the build
/// boundary, following the zero-cost-when-detached contract — the hot path
/// accumulates plain integers and never touches the registry.

#include <cstdint>
#include <span>
#include <vector>

#include "channel/link.hpp"
#include "core/matching_tier.hpp"
#include "core/scheduler.hpp"
#include "matching/graph.hpp"
#include "phy/rate_adapter.hpp"

namespace sic::core {

/// Monotone counters for one engine instance (schedule-independent: they
/// depend only on the sequence of set_clients/update_client/schedule calls,
/// never on wall clock or thread placement).
struct PairCostEngineStats {
  std::uint64_t builds = 0;             ///< schedule()/schedule_subset() calls
  std::uint64_t row_invalidations = 0;  ///< rows dirtied beyond epsilon
  std::uint64_t pair_evals = 0;         ///< pair plans computed by the kernel
  std::uint64_t pair_cache_hits = 0;    ///< pair plans served from cache
};

class PairCostEngine {
 public:
  /// \p adapter must outlive the engine. \p invalidation_epsilon is the
  /// channel-fingerprint tolerance of update_client(): estimates moving at
  /// most this many dB keep their cached row. 0 dB (the default) preserves
  /// bit-identity with from-scratch scheduling.
  PairCostEngine(const phy::RateAdapter& adapter, SchedulerOptions options,
                 Decibels invalidation_epsilon = Decibels{0.0});

  /// Installs a new client set: every row becomes dirty (a full rebuild),
  /// unconditionally — set_clients means "new topology", so counters stay
  /// independent of whatever happened to be cached. Storage is reused.
  /// Clients must share one noise floor when there are two or more.
  void set_clients(std::span<const channel::LinkBudget> clients);

  /// Re-estimates one client's RSS. Invalidates the client's row only when
  /// the estimate moved beyond the invalidation epsilon; otherwise the row
  /// keeps its fingerprinted RSS and cached plans. Throws std::out_of_range
  /// when \p client is not a current client index — callers racing a
  /// handoff against a topology change get a typed error instead of an
  /// out-of-bounds write.
  void update_client(int client, Milliwatts rss);

  [[nodiscard]] int size() const { return n_; }
  [[nodiscard]] const SchedulerOptions& options() const { return options_; }
  [[nodiscard]] const PairCostEngineStats& stats() const { return stats_; }

  /// The concrete matcher the most recent schedule()/schedule_subset()
  /// resolved to (meaningful once a build with >= 2 clients ran); how a
  /// kAuto policy reports which side of the threshold it landed on.
  [[nodiscard]] MatchingTier last_matching_tier() const { return last_tier_; }

  /// The schedule over all clients; recomputes dirty pairs only.
  [[nodiscard]] Schedule schedule();

  /// The schedule over a subset of clients (the closed-loop executor's
  /// residual backlog). Slot indices refer to positions in \p clients, so
  /// the result is interchangeable with schedule_upload() called on the
  /// subset's budgets. Indices must be distinct and in range.
  [[nodiscard]] Schedule schedule_subset(std::span<const int> clients);

 private:
  /// Batched row kernel: computes and caches the pair plans of client
  /// \p gi against every client in \p cols in three passes over SoA
  /// scratch — (1) stronger/weaker normalization + both SIC SINRs,
  /// (2) one rate_span() call for all rate lookups (single virtual
  /// dispatch per row), (3) plan selection replicating
  /// best_pair_plan_from_context bit-for-bit.
  void compute_row(int gi, std::span<const int> cols);
  [[nodiscard]] Schedule schedule_indices(std::span<const int> idx);
  void refresh_derived(int client);
  void invalidate_row(int client);
  void publish_stats();

  const phy::RateAdapter* adapter_;
  SchedulerOptions options_;
  double derate_ = 1.0;  ///< linear admission-margin back-off, hoisted
  Decibels epsilon_{0.0};
  Milliwatts noise_{0.0};
  int n_ = 0;

  // Per-client derived state, SoA so the row kernel streams it.
  std::vector<Milliwatts> rss_;          ///< fingerprinted channel estimate
  std::vector<Milliwatts> derated_rss_;  ///< rss × margin derate
  std::vector<double> solo_airtime_;     ///< clean solo airtime

  // Symmetric pair-plan cache (n × n, both triangles mirrored).
  std::vector<PairPlan> plans_;
  std::vector<std::uint8_t> valid_;

  std::vector<int> all_indices_;    ///< identity map for schedule()
  matching::CostMatrix costs_{0};   ///< scratch, reused across builds

  // Row-kernel and matcher scratch, reused across builds (mirrors the
  // costs_ idiom: one allocation for the engine's lifetime).
  std::vector<int> row_cols_;                      ///< dirty columns of a row
  std::vector<double> row_sinr_;                   ///< both SIC SINR lanes
  std::vector<BitsPerSecond> row_rates_;           ///< rate_span results
  std::vector<double> serial_scratch_;             ///< per-vertex solo airtime
  std::vector<matching::WeightedEdge> edge_scratch_;

  MatchingTier last_tier_ = MatchingTier::kBlossom;
  PairCostEngineStats stats_;
  PairCostEngineStats published_;  ///< high-water mark already published
};

}  // namespace sic::core

#endif  // SICMAC_CORE_PAIR_COST_ENGINE_HPP
