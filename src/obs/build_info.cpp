#include "obs/build_info.hpp"

#ifndef SICMAC_GIT_DESCRIBE
#define SICMAC_GIT_DESCRIBE "unknown"
#endif

namespace sic::obs {

const char* git_describe() { return SICMAC_GIT_DESCRIBE; }

}  // namespace sic::obs
