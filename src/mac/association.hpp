#ifndef SICMAC_MAC_ASSOCIATION_HPP
#define SICMAC_MAC_ASSOCIATION_HPP

/// \file association.hpp
/// Batched client→AP association scoring — the compute half of the
/// deployment engine's association/handoff pass, split out so it can be
/// driven at 100k–1M clients by bench/perf_deployment without dragging an
/// engine along.
///
/// The pass is two-phase (see DESIGN.md "Large-deployment fast path"):
///
///  1. *Score* (this file, parallel): for every eligible client, find the
///     best-scoring live AP against a start-of-epoch snapshot of alive
///     flags and member counts. Clients are mapped over the ThreadPool in
///     index chunks and every result is index-addressed, so the proposals
///     are bit-identical at any thread count. Association scoring draws
///     no randomness — determinism needs no substreams here, only
///     order-independent writes.
///  2. *Commit* (the engine, sequential): walk clients in id order,
///     apply hysteresis against the incumbent score computed in phase 1
///     (once per client per epoch, never re-derived), and edit member
///     lists.
///
/// Two candidate enumerations produce byte-identical proposals:
///
///  - kGrid consults the uniform-grid AP index ring by ring and stops as
///    soon as no unvisited AP can win: any AP in an unvisited ring is at
///    least ring_lower_bound_m away (so its RSS is at most the RSS at
///    that distance) and carries at least the fleet-minimum member count
///    (so its load penalty is at least the minimum penalty). When that
///    upper bound — minus a 1e-6 dB guard absorbing floating-point slack
///    in the bound itself, scores are never perturbed — falls below the
///    best score already found, no farther AP can matter. This is an
///    exact branch-and-bound, not a fixed-k heuristic: it is pinned
///    decision-identical to the brute-force scan by property test.
///  - kBruteForce scans every AP in id order — the O(clients × APs)
///    reference the fast path is measured and verified against.

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "channel/pathloss.hpp"
#include "topology/spatial_index.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace sic::mac {

/// Candidate enumeration strategy for the association score phase.
enum class AssociationMode {
  kGrid,        ///< spatial-index ring walk with exact cutoff (default)
  kBruteForce,  ///< scan every AP — the reference path
};

/// Phase-1 output for one client, index-addressed by client id.
struct AssociationProposal {
  int best_ap = -1;  ///< best-scoring live AP, -1 when none is live
  Dbm best_score{-std::numeric_limits<double>::infinity()};
  /// Incumbent AP's score under the same snapshot (-inf when
  /// unassigned); the commit phase's hysteresis check reuses this instead
  /// of re-deriving it.
  Dbm incumbent_score{-std::numeric_limits<double>::infinity()};
  /// APs actually scored (telemetry: the fast path's whole point is that
  /// this stays near the handful of nearby cells, not n_aps).
  std::uint32_t candidates = 0;
};

/// Scores every client against a per-epoch AP snapshot. Construction
/// builds the spatial index once — AP sites are fixed for the planner's
/// lifetime, liveness and load are per-plan inputs.
class AssociationPlanner {
 public:
  /// \p pathloss must outlive the planner. \p load_penalty_per_client
  /// must be non-negative (the grid cutoff's load bound relies on it).
  AssociationPlanner(std::span<const topology::Point> ap_sites,
                     const channel::LogDistancePathLoss& pathloss,
                     Dbm client_tx_power, Decibels load_penalty_per_client);

  /// Association tracks slow-scale beacon RSS: geometry plus a load
  /// penalty. Per-client drift shifts every AP's beacon equally and
  /// transient bursts are invisible at this timescale, so neither enters
  /// the comparison. \p members is the AP's snapshot member count.
  [[nodiscard]] Dbm score(topology::Point client, int ap, int members) const;

  /// Fills \p out (resized to the client count) with one proposal per
  /// client. SoA inputs: client positions (\p xs / \p ys), eligibility
  /// (\p eligible, 0 ⇒ the slot gets a default proposal), incumbent AP
  /// ids (\p incumbent, -1 = unassigned), and the AP snapshot (\p
  /// ap_alive / \p ap_members). Parallel over \p pool; bit-identical for
  /// any thread count.
  void plan(AssociationMode mode, std::span<const double> xs,
            std::span<const double> ys,
            std::span<const std::uint8_t> eligible,
            std::span<const int> incumbent,
            std::span<const std::uint8_t> ap_alive,
            std::span<const int> ap_members, ThreadPool& pool,
            std::vector<AssociationProposal>& out) const;

  [[nodiscard]] const topology::SpatialGridIndex& index() const {
    return index_;
  }
  [[nodiscard]] int n_aps() const { return index_.size(); }

 private:
  [[nodiscard]] AssociationProposal propose_brute(
      topology::Point client, int incumbent,
      std::span<const std::uint8_t> ap_alive,
      std::span<const int> ap_members) const;
  [[nodiscard]] AssociationProposal propose_grid(
      topology::Point client, int incumbent,
      std::span<const std::uint8_t> ap_alive,
      std::span<const int> ap_members, int min_live_members,
      std::vector<int>& ring_scratch) const;

  topology::SpatialGridIndex index_;
  const channel::LogDistancePathLoss* pathloss_;
  Dbm client_tx_power_;
  Decibels load_penalty_per_client_;
};

}  // namespace sic::mac

#endif  // SICMAC_MAC_ASSOCIATION_HPP
