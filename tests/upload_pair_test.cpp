#include "core/upload_pair.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/mathx.hpp"

namespace sic::core {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};
constexpr Milliwatts kN0{1.0};

UploadPairContext ctx_db(double s1_db, double s2_db, double bits = 12000.0) {
  return UploadPairContext::make(Milliwatts{Decibels{s1_db}.linear()},
                                 Milliwatts{Decibels{s2_db}.linear()}, kN0,
                                 kShannon, bits);
}

TEST(UploadPair, SerialAirtimeIsEquation5) {
  const auto ctx = ctx_db(20.0, 10.0);
  const double r1 = kShannon.rate(Decibels{20.0}.linear()).value();
  const double r2 = kShannon.rate(Decibels{10.0}.linear()).value();
  EXPECT_NEAR(serial_airtime(ctx), 12000.0 / r1 + 12000.0 / r2, 1e-12);
}

TEST(UploadPair, SicAirtimeIsEquation6) {
  const auto ctx = ctx_db(20.0, 10.0);
  const auto rates = sic_rates(ctx);
  const double expect = std::max(12000.0 / rates.stronger.value(),
                                 12000.0 / rates.weaker.value());
  EXPECT_NEAR(sic_airtime(ctx), expect, 1e-12);
}

TEST(UploadPair, SicRatesMatchEquations1And2) {
  const auto ctx = ctx_db(24.0, 11.0);
  const auto rates = sic_rates(ctx);
  const double s1 = Decibels{24.0}.linear();
  const double s2 = Decibels{11.0}.linear();
  EXPECT_NEAR(rates.stronger.value(), 20e6 * log2_1p(s1 / (s2 + 1.0)), 1.0);
  EXPECT_NEAR(rates.weaker.value(), 20e6 * log2_1p(s2), 1.0);
}

TEST(UploadPair, GainPeaksAtSquareRelationship) {
  // Fig. 4: for fixed S², the gain over S¹ peaks where SNR₁ ≈ 2·SNR₂ in dB.
  const double s2_db = 12.0;
  double best_gain = 0.0;
  double best_s1_db = 0.0;
  for (double s1_db = s2_db; s1_db <= 40.0; s1_db += 0.05) {
    const double g = sic_gain(ctx_db(s1_db, s2_db));
    if (g > best_gain) {
      best_gain = g;
      best_s1_db = s1_db;
    }
  }
  EXPECT_NEAR(best_s1_db, 2.0 * s2_db, 0.75);
  EXPECT_GT(best_gain, 1.4);
}

TEST(UploadPair, EqualRateStrongerRssClosedForm) {
  const Milliwatts weaker{Decibels{12.0}.linear()};
  const Milliwatts target = equal_rate_stronger_rss(weaker, kN0);
  // At that stronger RSS the two SIC rates coincide.
  const auto ctx = UploadPairContext::make(target, weaker, kN0, kShannon);
  const auto rates = sic_rates(ctx);
  EXPECT_NEAR(rates.stronger.value(), rates.weaker.value(),
              rates.weaker.value() * 1e-9);
  // And the square law: S¹* = S²(S²+N₀)/N₀ ≈ (S²)² for large S², i.e.
  // ~24 dB for a 12 dB weaker signal (slightly above, by the +N₀ term).
  EXPECT_NEAR(Decibels::from_linear(target.value()).value(), 24.0, 0.35);
}

TEST(UploadPair, GainAtEqualRatesIsMaximal) {
  // On the ridge the full serial exchange collapses into one airtime.
  const Milliwatts weaker{Decibels{15.0}.linear()};
  const Milliwatts stronger = equal_rate_stronger_rss(weaker, kN0);
  const auto ctx = UploadPairContext::make(stronger, weaker, kN0, kShannon);
  // Z+ = the weaker's clean airtime; Z- = stronger clean + weaker clean.
  const double z_plus = sic_airtime(ctx);
  const double weaker_clean =
      airtime_seconds(12000.0, kShannon.rate(weaker.value()));
  EXPECT_NEAR(z_plus, weaker_clean, 1e-12);
  EXPECT_GT(sic_gain(ctx), 1.5);
}

TEST(UploadPair, ExtremeDisparityApproachesNoGain) {
  // Far off the ridge SIC degenerates: Z+ ≈ the weaker link's airtime ≈
  // the whole serial exchange.
  const double g = sic_gain(ctx_db(60.0, 3.0));
  EXPECT_LT(g, 1.2);
  EXPECT_GT(g, 0.9);
}

TEST(UploadPair, RealizedGainClampsAtOne) {
  for (double s1 = 5.0; s1 <= 45.0; s1 += 5.0) {
    for (double s2 = 1.0; s2 <= s1; s2 += 4.0) {
      EXPECT_GE(realized_gain(ctx_db(s1, s2)), 1.0);
    }
  }
}

TEST(UploadPair, GainIndependentOfPacketLength) {
  // Both Z's scale linearly in L, so the ratio is L-free.
  const double g_small = sic_gain(ctx_db(22.0, 11.0, 1000.0));
  const double g_large = sic_gain(ctx_db(22.0, 11.0, 1e6));
  EXPECT_NEAR(g_small, g_large, 1e-12);
}

TEST(UploadPair, DeadWeakLinkMakesSicInfeasible) {
  const auto ctx = UploadPairContext::make(Milliwatts{100.0}, Milliwatts{0.0},
                                           kN0, kShannon);
  EXPECT_TRUE(std::isinf(sic_airtime(ctx)));
  EXPECT_TRUE(std::isinf(serial_airtime(ctx)));
  EXPECT_DOUBLE_EQ(sic_gain(ctx), 0.0);
}

TEST(UploadPair, MakeRejectsBadLength) {
  EXPECT_THROW((void)UploadPairContext::make(Milliwatts{1.0}, Milliwatts{1.0},
                                             kN0, kShannon, 0.0),
               std::logic_error);
}

/// Discrete rates leave slack for SIC to harvest (Section 7): with the
/// 802.11g ladder the realized gain is never below the Shannon-policy gain
/// in these sampled geometries.
class DiscreteSlack : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(DiscreteSlack, RealizedGainAtLeastOne) {
  const auto [s1_db, s2_db] = GetParam();
  const phy::DiscreteRateAdapter g{phy::RateTable::dot11g()};
  const auto ctx = UploadPairContext::make(
      Milliwatts{Decibels{s1_db}.linear()},
      Milliwatts{Decibels{s2_db}.linear()}, kN0, g);
  EXPECT_GE(realized_gain(ctx), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DiscreteSlack,
    ::testing::Values(std::pair{30.0, 15.0}, std::pair{24.0, 12.0},
                      std::pair{40.0, 20.0}, std::pair{18.0, 9.0},
                      std::pair{12.0, 6.0}, std::pair{50.0, 25.0}));

}  // namespace
}  // namespace sic::core
