#include "phy/error_model.hpp"

#include <gtest/gtest.h>

#include "phy/rate_table.hpp"

namespace sic::phy {
namespace {

TEST(ErrorModel, BerMonotoneDecreasingInSinr) {
  for (const Modulation m : {Modulation::kBpsk, Modulation::kQpsk,
                             Modulation::kQam16, Modulation::kQam64}) {
    double prev = 1.0;
    for (double db = -5.0; db <= 35.0; db += 1.0) {
      const double ber = bit_error_rate(m, Decibels{db}.linear());
      EXPECT_LE(ber, prev + 1e-15) << to_string(m) << " at " << db;
      prev = ber;
    }
  }
}

TEST(ErrorModel, DenserConstellationsNeedMoreSinr) {
  // At a fixed SINR, BER ordering: BPSK <= QPSK <= 16QAM <= 64QAM.
  const double sinr = Decibels{12.0}.linear();
  const double bpsk = bit_error_rate(Modulation::kBpsk, sinr);
  const double qpsk = bit_error_rate(Modulation::kQpsk, sinr);
  const double qam16 = bit_error_rate(Modulation::kQam16, sinr);
  const double qam64 = bit_error_rate(Modulation::kQam64, sinr);
  EXPECT_LT(bpsk, qpsk);
  EXPECT_LT(qpsk, qam16);
  EXPECT_LT(qam16, qam64);
}

TEST(ErrorModel, BpskBerKnownValue) {
  // BER = Q(sqrt(2*SNR)); at SNR = 9.6 dB (Eb/N0 for 1e-5): ~1e-5.
  const double ber = bit_error_rate(Modulation::kBpsk, Decibels{9.6}.linear());
  EXPECT_GT(ber, 1e-6);
  EXPECT_LT(ber, 1e-4);
}

TEST(ErrorModel, ZeroSinrIsCoinFlip) {
  EXPECT_DOUBLE_EQ(bit_error_rate(Modulation::kBpsk, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(packet_error_rate(dot11g_mcs()[0], 0.0), 1.0);
}

TEST(ErrorModel, PerMonotoneInSinrAndLength) {
  const auto& mcs54 = dot11g_mcs().back();
  double prev = 1.0;
  for (double db = 10.0; db <= 35.0; db += 0.5) {
    const double per = packet_error_rate(mcs54, Decibels{db}.linear());
    EXPECT_LE(per, prev + 1e-15);
    prev = per;
  }
  // Longer packets fail more.
  const double sinr = Decibels{23.0}.linear();
  EXPECT_LE(packet_error_rate(mcs54, sinr, 4000.0),
            packet_error_rate(mcs54, sinr, 12000.0));
}

TEST(ErrorModel, McsLadderCoversDotElevenG) {
  const auto& ladder = dot11g_mcs();
  ASSERT_EQ(ladder.size(), 8u);
  EXPECT_DOUBLE_EQ(ladder.front().phy_rate.megabits(), 6.0);
  EXPECT_DOUBLE_EQ(ladder.back().phy_rate.megabits(), 54.0);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].phy_rate.value(), ladder[i - 1].phy_rate.value());
  }
}

TEST(ErrorModel, BestMeasuredRateIsStepFunction) {
  double prev = -1.0;
  for (double db = 0.0; db <= 35.0; db += 0.5) {
    const double rate = best_measured_rate(Decibels{db}).value();
    EXPECT_GE(rate, prev);
    prev = rate;
  }
  EXPECT_DOUBLE_EQ(best_measured_rate(Decibels{0.0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(best_measured_rate(Decibels{35.0}).megabits(), 54.0);
}

TEST(ErrorModel, ThresholdsMatchCanonicalTableWithinMargin) {
  // The RateTable thresholds are the model's 90%-PRR boundaries plus an
  // indoor margin; they must agree within ~3.5 dB and never be *below*
  // the physics (a table more optimistic than AWGN would be wrong).
  const auto& table = RateTable::dot11g();
  for (const auto& mcs : dot11g_mcs()) {
    const Decibels model = delivery_threshold(mcs);
    const Decibels tabled = table.min_sinr_for(mcs.phy_rate);
    EXPECT_GE(tabled.value(), model.value() - 0.2)
        << mcs.phy_rate.megabits() << " Mbps";
    EXPECT_LE(tabled.value() - model.value(), 3.5)
        << mcs.phy_rate.megabits() << " Mbps";
  }
}

TEST(ErrorModel, ThresholdsMonotoneAcrossLadder) {
  double prev = -100.0;
  for (const auto& mcs : dot11g_mcs()) {
    const double threshold = delivery_threshold(mcs).value();
    EXPECT_GT(threshold, prev) << mcs.phy_rate.megabits();
    prev = threshold;
  }
}

TEST(ErrorModel, StricterTargetNeedsMoreSinr) {
  const auto& mcs = dot11g_mcs()[4];  // 24 Mbps
  EXPECT_GT(delivery_threshold(mcs, 0.99).value(),
            delivery_threshold(mcs, 0.5).value());
}

}  // namespace
}  // namespace sic::phy
