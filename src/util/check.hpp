#ifndef SICMAC_UTIL_CHECK_HPP
#define SICMAC_UTIL_CHECK_HPP

/// \file check.hpp
/// Precondition checking. SIC_CHECK is always on (library boundary /
/// programmer-error checks, per CppCoreGuidelines I.6); SIC_DCHECK compiles
/// out in release hot paths.

#include <sstream>
#include <stdexcept>
#include <string>

namespace sic {

/// Thrown by SIC_CHECK / SIC_CHECK_MSG on a violated precondition. Derives
/// from std::logic_error so existing catch sites (and tests) that catch the
/// standard type keep working, while callers can catch the project type by
/// category (sic_lint R8).
class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "SIC_CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace sic

#define SIC_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr)) ::sic::detail::check_failed(#expr, __FILE__, __LINE__, {}); \
  } while (false)

#define SIC_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr))                                                      \
      ::sic::detail::check_failed(#expr, __FILE__, __LINE__, (msg));  \
  } while (false)

#ifdef NDEBUG
#define SIC_DCHECK(expr) ((void)0)
#else
#define SIC_DCHECK(expr) SIC_CHECK(expr)
#endif

#endif  // SICMAC_UTIL_CHECK_HPP
