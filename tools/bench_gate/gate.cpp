#include "gate.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace sic::bench_gate {

namespace {

void skip_ws(std::string_view text, std::size_t& i) {
  while (i < text.size() &&
         (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
          text[i] == '\r')) {
    ++i;
  }
}

/// Advances past a JSON string (opening quote at text[i]).
void skip_string(std::string_view text, std::size_t& i) {
  ++i;  // opening quote
  while (i < text.size() && text[i] != '"') {
    i += text[i] == '\\' ? 2 : 1;
  }
  if (i >= text.size()) throw std::runtime_error("unterminated JSON string");
  ++i;  // closing quote
}

std::string read_string(std::string_view text, std::size_t& i) {
  const std::size_t begin = i + 1;
  skip_string(text, i);
  return std::string{text.substr(begin, i - 1 - begin)};
}

/// Advances past any JSON value, tracking bracket depth; numeric
/// top-level scalars are the caller's fast path, so this handles the
/// rest (strings, objects, arrays, literals).
void skip_value(std::string_view text, std::size_t& i) {
  skip_ws(text, i);
  if (i >= text.size()) throw std::runtime_error("truncated JSON value");
  if (text[i] == '"') {
    skip_string(text, i);
    return;
  }
  if (text[i] == '{' || text[i] == '[') {
    int depth = 0;
    while (i < text.size()) {
      const char c = text[i];
      if (c == '"') {
        skip_string(text, i);
        continue;
      }
      if (c == '{' || c == '[') ++depth;
      if (c == '}' || c == ']') {
        --depth;
        if (depth == 0) {
          ++i;
          return;
        }
      }
      ++i;
    }
    throw std::runtime_error("unbalanced JSON brackets");
  }
  // Literal or number: consume until a delimiter.
  while (i < text.size() && text[i] != ',' && text[i] != '}' &&
         text[i] != ']') {
    ++i;
  }
}

}  // namespace

std::map<std::string, double> parse_flat_json(std::string_view text) {
  std::map<std::string, double> out;
  std::size_t i = 0;
  skip_ws(text, i);
  if (i >= text.size() || text[i] != '{') {
    throw std::runtime_error("bench summary is not a JSON object");
  }
  ++i;
  skip_ws(text, i);
  if (i < text.size() && text[i] == '}') return out;  // empty object
  while (i < text.size()) {
    skip_ws(text, i);
    if (i >= text.size() || text[i] != '"') {
      throw std::runtime_error("expected JSON key");
    }
    const std::string key = read_string(text, i);
    skip_ws(text, i);
    if (i >= text.size() || text[i] != ':') {
      throw std::runtime_error("expected ':' after key " + key);
    }
    ++i;
    skip_ws(text, i);
    if (i < text.size() &&
        (text[i] == '-' || (text[i] >= '0' && text[i] <= '9'))) {
      const std::string owned{text.substr(i)};
      char* end = nullptr;
      const double v = std::strtod(owned.c_str(), &end);
      if (end == owned.c_str()) {
        throw std::runtime_error("bad number for key " + key);
      }
      out[key] = v;
      i += static_cast<std::size_t>(end - owned.c_str());
    } else {
      skip_value(text, i);
    }
    skip_ws(text, i);
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == '}') return out;
    throw std::runtime_error("expected ',' or '}' in bench summary");
  }
  throw std::runtime_error("truncated bench summary");
}

Pin parse_pin(std::string_view spec, double default_tolerance) {
  Pin pin;
  pin.tolerance_frac = default_tolerance;
  std::size_t colon = spec.find(':');
  pin.key = std::string{spec.substr(0, colon)};
  if (pin.key.empty()) throw std::runtime_error("empty --pin key");
  while (colon != std::string_view::npos) {
    const std::size_t begin = colon + 1;
    colon = spec.find(':', begin);
    const std::string_view part = spec.substr(
        begin,
        colon == std::string_view::npos ? std::string_view::npos
                                        : colon - begin);
    if (part == "lower") {
      pin.higher_is_better = false;
    } else if (part == "higher") {
      pin.higher_is_better = true;
    } else if (!part.empty() && part.back() == '%') {
      const std::string owned{part.substr(0, part.size() - 1)};
      char* end = nullptr;
      const double pct = std::strtod(owned.c_str(), &end);
      if (end != owned.c_str() + owned.size() || !(pct >= 0.0)) {
        throw std::runtime_error("bad --pin tolerance: " + std::string{spec});
      }
      pin.tolerance_frac = pct / 100.0;
    } else {
      throw std::runtime_error("bad --pin spec (key[:tol%][:lower]): " +
                               std::string{spec});
    }
  }
  return pin;
}

GateReport run_gate(const std::map<std::string, double>& baseline,
                    const std::map<std::string, double>& current,
                    const std::vector<Pin>& pins,
                    const std::map<std::string, double>& perturb) {
  GateReport report;
  for (const Pin& pin : pins) {
    KeyResult r;
    r.key = pin.key;
    r.tolerance_frac = pin.tolerance_frac;
    r.higher_is_better = pin.higher_is_better;
    const auto b = baseline.find(pin.key);
    const auto c = current.find(pin.key);
    r.missing_baseline = b == baseline.end();
    r.missing_current = c == current.end();
    if (r.missing_baseline || r.missing_current) {
      // A pinned key that vanished is a regression of the bench itself.
      r.regressed = true;
      report.keys.push_back(std::move(r));
      continue;
    }
    r.baseline = b->second;
    r.current = c->second;
    const auto p = perturb.find(pin.key);
    if (p != perturb.end()) r.current *= p->second;
    if (r.baseline == 0.0) {
      r.change_frac = r.current == 0.0 ? 0.0 : 1.0;
    } else {
      r.change_frac = (r.current - r.baseline) / std::fabs(r.baseline);
    }
    const double regressing_drop =
        pin.higher_is_better ? -r.change_frac : r.change_frac;
    r.regressed = regressing_drop > pin.tolerance_frac;
    report.keys.push_back(std::move(r));
  }
  return report;
}

bool GateReport::ok() const {
  for (const KeyResult& r : keys) {
    if (r.regressed) return false;
  }
  return true;
}

std::string GateReport::text() const {
  std::ostringstream os;
  char buf[200];
  std::snprintf(buf, sizeof(buf), "%-24s %14s %14s %9s %7s %5s  %s\n", "key",
                "baseline", "current", "change", "tol", "dir", "verdict");
  os << buf;
  for (const KeyResult& r : keys) {
    if (r.missing_baseline || r.missing_current) {
      std::snprintf(buf, sizeof(buf), "%-24s %14s %14s %9s %6.1f%% %5s  %s\n",
                    r.key.c_str(), r.missing_baseline ? "MISSING" : "-",
                    r.missing_current ? "MISSING" : "-", "-",
                    100.0 * r.tolerance_frac,
                    r.higher_is_better ? "up" : "down", "FAIL");
      os << buf;
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "%-24s %14.4g %14.4g %+8.1f%% %6.1f%% %5s  %s\n",
                  r.key.c_str(), r.baseline, r.current, 100.0 * r.change_frac,
                  100.0 * r.tolerance_frac, r.higher_is_better ? "up" : "down",
                  r.regressed ? "FAIL" : "ok");
    os << buf;
  }
  os << (ok() ? "bench gate: ok\n" : "bench gate: REGRESSION\n");
  return os.str();
}

}  // namespace sic::bench_gate
