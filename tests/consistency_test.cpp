/// Cross-module consistency properties: the analytic algebra, the
/// scheduler, and the discrete-event simulator must tell one story.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "analysis/montecarlo.hpp"
#include "core/cross_link.hpp"
#include "core/packing.hpp"
#include "core/scheduler.hpp"
#include "core/upload_pair.hpp"
#include "mac/upload_sim.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace sic {
namespace {

constexpr Milliwatts kN0{1.0};
const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

std::vector<channel::LinkBudget> random_clients(Rng& rng, int n) {
  std::vector<channel::LinkBudget> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(channel::LinkBudget{
        Milliwatts{Decibels{rng.uniform(10.0, 35.0)}.linear()}, kN0});
  }
  return out;
}

TEST(Consistency, SimulatedScheduleTimeTracksAnalyticTotal) {
  // The scheduled-upload simulation must take the schedule's analytic
  // airtime plus bounded MAC overhead (preambles, SIFS, ACKs) — never
  // less than the airtime, never more than airtime + per-slot overhead.
  Rng rng{7};
  for (int trial = 0; trial < 10; ++trial) {
    const auto clients = random_clients(rng, rng.uniform_int(2, 8));
    core::SchedulerOptions options;
    options.enable_power_control = true;
    const auto schedule = core::schedule_upload(clients, kShannon, options);
    mac::UploadSimConfig config;
    const auto run =
        mac::run_scheduled_upload(clients, kShannon, schedule, config);
    ASSERT_EQ(run.delivered, run.offered) << "trial " << trial;
    EXPECT_GT(run.completion_s, schedule.total_airtime);
    // Overhead bound: every slot costs at most 2 preambles + 3 SIFS +
    // 2 ACKs + scheduling slack. 200 us/slot is generous.
    const double overhead_bound = 200e-6 * schedule.slots.size() * 2.0;
    EXPECT_LT(run.completion_s, schedule.total_airtime + overhead_bound)
        << "trial " << trial;
  }
}

TEST(Consistency, SchedulerInvariantUnderClientPermutation) {
  Rng rng{13};
  const auto clients = random_clients(rng, 9);
  const auto base = core::schedule_upload(clients, kShannon, {});
  auto shuffled = clients;
  std::shuffle(shuffled.begin(), shuffled.end(), rng.engine());
  const auto permuted = core::schedule_upload(shuffled, kShannon, {});
  EXPECT_NEAR(base.total_airtime, permuted.total_airtime,
              base.total_airtime * 1e-9);
}

TEST(Consistency, MonteCarloMirrorSymmetry) {
  // evaluate_cross_link must be invariant under swapping the two links.
  Rng rng{17};
  topology::SamplerConfig config;
  for (int i = 0; i < 500; ++i) {
    const auto sample = topology::sample_two_link(rng, config);
    const auto fwd = core::evaluate_cross_link(sample.rss, kShannon);
    const auto mir = core::evaluate_cross_link(sample.rss.mirrored(), kShannon);
    EXPECT_EQ(fwd.sic_feasible, mir.sic_feasible);
    EXPECT_NEAR(fwd.gain, mir.gain, fwd.gain * 1e-9);
    EXPECT_NEAR(fwd.serial_airtime, mir.serial_airtime,
                fwd.serial_airtime * 1e-12);
  }
}

TEST(Consistency, PairGainMatchesMonteCarloEvaluator) {
  // The per-pair technique evaluator must equal the raw core calls.
  Rng rng{19};
  topology::SamplerConfig config;
  for (int i = 0; i < 100; ++i) {
    const auto sample = topology::sample_two_to_one(rng, config);
    const auto ctx = core::UploadPairContext::make(sample.s1, sample.s2,
                                                   sample.noise, kShannon);
    const auto gains = analysis::evaluate_upload_pair_techniques(ctx);
    EXPECT_DOUBLE_EQ(gains.sic, core::realized_gain(ctx));
    EXPECT_DOUBLE_EQ(gains.packing, core::packing_two_to_one(ctx).gain);
  }
}

TEST(Consistency, ImperfectApLosesSicDecodesInSimulation) {
  // The Section 9 knobs must flow through to the end-to-end simulator: a
  // 10% residual eliminates SIC decodes that the perfect AP achieves.
  const std::vector<channel::LinkBudget> clients{
      channel::LinkBudget{Milliwatts{Decibels{24.0}.linear()}, kN0},
      channel::LinkBudget{Milliwatts{Decibels{12.0}.linear()}, kN0}};
  const auto schedule = core::schedule_upload(clients, kShannon, {});
  mac::UploadSimConfig perfect;
  const auto clean = mac::run_scheduled_upload(clients, kShannon, schedule,
                                               perfect);
  ASSERT_GT(clean.medium.sic_decodes, 0u);
  mac::UploadSimConfig impaired = perfect;
  impaired.cancellation_residual = 0.1;
  impaired.recovery.enabled = false;  // open loop: the loss stays a drop
  const auto degraded =
      mac::run_scheduled_upload(clients, kShannon, schedule, impaired);
  EXPECT_EQ(degraded.medium.sic_decodes, 0u);
  EXPECT_LT(degraded.delivered, degraded.offered);
  // The closed-loop executor sees the same decode failure but recovers it
  // through a solo retry (the clean path is immune to the residual).
  impaired.recovery.enabled = true;
  const auto recovered =
      mac::run_scheduled_upload(clients, kShannon, schedule, impaired);
  EXPECT_EQ(recovered.failures.unrecovered, 0u);
  EXPECT_GT(recovered.failures.recovered, 0u);
}

TEST(Consistency, ObserversNeverPerturbTheSimulation) {
  // The sic::obs contract: a MetricsRegistry or TraceSink is a pure
  // observer. Attaching both must leave every simulation result
  // bit-for-bit identical to a detached run, even on the fault-heavy
  // closed-loop path where the instrumentation is densest.
  Rng rng{23};
  const auto clients = random_clients(rng, 6);
  const auto schedule = core::schedule_upload(clients, kShannon, {});
  mac::UploadSimConfig config;
  config.frames_per_client = 3;
  config.faults.stale_rss_sigma = Decibels{3.0};
  config.faults.cancellation_failure_prob = 0.2;
  config.faults.ack_loss_prob = 0.05;

  const auto detached =
      mac::run_scheduled_upload(clients, kShannon, schedule, config);

  obs::MetricsRegistry registry;
  std::ostringstream trace_os;
  obs::TraceSink sink{trace_os};
  ASSERT_EQ(obs::set_metrics(&registry), nullptr);
  ASSERT_EQ(obs::set_trace(&sink), nullptr);
  const auto observed =
      mac::run_scheduled_upload(clients, kShannon, schedule, config);
  obs::set_metrics(nullptr);
  obs::set_trace(nullptr);

  // Observers saw the run...
  EXPECT_GT(registry.counter("mac.upload.runs").value(), 0u);
  EXPECT_GT(sink.events_written(), 0u);

  // ...without changing a single bit of it. EXPECT_EQ on the doubles is
  // deliberate: bit-identity, not tolerance.
  EXPECT_EQ(observed.completion_s, detached.completion_s);
  EXPECT_EQ(observed.offered, detached.offered);
  EXPECT_EQ(observed.delivered, detached.delivered);
  EXPECT_EQ(observed.retries, detached.retries);
  EXPECT_EQ(observed.drops, detached.drops);
  EXPECT_EQ(observed.medium.transmissions, detached.medium.transmissions);
  EXPECT_EQ(observed.medium.delivered, detached.medium.delivered);
  EXPECT_EQ(observed.medium.failed_clean, detached.medium.failed_clean);
  EXPECT_EQ(observed.medium.failed_collision,
            detached.medium.failed_collision);
  EXPECT_EQ(observed.medium.sic_decodes, detached.medium.sic_decodes);
  EXPECT_EQ(observed.medium.capture_decodes, detached.medium.capture_decodes);
  EXPECT_EQ(observed.failures.rate_misses, detached.failures.rate_misses);
  EXPECT_EQ(observed.failures.cancellation_failures,
            detached.failures.cancellation_failures);
  EXPECT_EQ(observed.failures.ack_losses, detached.failures.ack_losses);
  EXPECT_EQ(observed.failures.duplicate_deliveries,
            detached.failures.duplicate_deliveries);
  EXPECT_EQ(observed.failures.retransmissions,
            detached.failures.retransmissions);
  EXPECT_EQ(observed.failures.mode_demotions, detached.failures.mode_demotions);
  EXPECT_EQ(observed.failures.client_demotions,
            detached.failures.client_demotions);
  EXPECT_EQ(observed.failures.rematch_rounds, detached.failures.rematch_rounds);
  EXPECT_EQ(observed.failures.recovered, detached.failures.recovered);
  EXPECT_EQ(observed.failures.unrecovered, detached.failures.unrecovered);
  EXPECT_EQ(observed.failures.retry_histogram, detached.failures.retry_histogram);
}

TEST(Consistency, AdcLimitFlowsThroughSimulator) {
  // 25 dB disparity pair with a 20 dB ADC limit: weaker frame lost.
  const std::vector<channel::LinkBudget> clients{
      channel::LinkBudget{Milliwatts{Decibels{30.0}.linear()}, kN0},
      channel::LinkBudget{Milliwatts{Decibels{5.0}.linear()}, kN0}};
  const auto schedule = core::schedule_upload(clients, kShannon, {});
  // Only meaningful when the scheduler actually picked a SIC slot.
  if (schedule.slots.size() == 1 &&
      schedule.slots[0].plan.mode == core::PairMode::kSic) {
    mac::UploadSimConfig limited;
    limited.max_decodable_disparity = Decibels{20.0};
    limited.recovery.enabled = false;  // open loop: the loss stays a drop
    const auto run =
        mac::run_scheduled_upload(clients, kShannon, schedule, limited);
    EXPECT_LT(run.delivered, run.offered);
    // Closed loop: the weaker client's frame is retried solo (no disparity
    // once it transmits alone) and everything lands.
    limited.recovery.enabled = true;
    const auto recovered =
        mac::run_scheduled_upload(clients, kShannon, schedule, limited);
    EXPECT_EQ(recovered.failures.unrecovered, 0u);
    EXPECT_EQ(recovered.delivered, recovered.offered);
  }
}

}  // namespace
}  // namespace sic
