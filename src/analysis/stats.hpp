#ifndef SICMAC_ANALYSIS_STATS_HPP
#define SICMAC_ANALYSIS_STATS_HPP

/// \file stats.hpp
/// Summary statistics and empirical CDFs for the Monte Carlo and trace
/// experiments (Figs. 6, 11, 13, 14 are all CDFs).

#include <cstdint>
#include <span>
#include <vector>

namespace sic::analysis {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Quantile of an ascending-sorted sample set with linear interpolation
/// between order statistics (the "R-7" / numpy default): p in [0, 1] maps
/// to rank p*(n-1), fractional ranks interpolate between the two
/// neighbouring samples. Used by the bootstrap CI below; exposed for
/// direct regression testing against known quantiles.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double p);

/// Empirical CDF over a fixed sample set.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  /// P(X <= x).
  [[nodiscard]] double at(double x) const;

  /// Smallest sample q with P(X <= q) >= p, p in [0, 1].
  [[nodiscard]] double quantile(double p) const;

  /// P(X > x) — e.g. "fraction of topologies with gain over 1.2".
  [[nodiscard]] double fraction_above(double x) const { return 1.0 - at(x); }

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] std::span<const double> sorted_samples() const { return sorted_; }

  /// Evenly spaced (x, F(x)) points for plotting/printing, endpoints
  /// included.
  struct Point {
    double x;
    double f;
  };
  [[nodiscard]] std::vector<Point> curve(int points = 21) const;

 private:
  std::vector<double> sorted_;
};

/// A two-sided bootstrap confidence interval.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;

  [[nodiscard]] bool contains(double x) const { return lo <= x && x <= hi; }
};

/// Percentile-bootstrap confidence interval for the fraction of samples
/// strictly above \p threshold — the statistic every "X% of cases gain over
/// 20%" claim in EXPERIMENTS.md rests on. Deterministic given the seed.
[[nodiscard]] ConfidenceInterval bootstrap_fraction_above(
    std::span<const double> samples, double threshold,
    double confidence = 0.95, int resamples = 1000, std::uint64_t seed = 1);

}  // namespace sic::analysis

#endif  // SICMAC_ANALYSIS_STATS_HPP
