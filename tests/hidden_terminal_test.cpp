/// Hidden terminals in the DCF simulator: when clients cannot hear each
/// other (mutual RSS below the carrier-sense threshold), backoff stops
/// preventing overlap and collisions at the AP surge — exactly the regime
/// where an SIC-capable receiver earns its keep (cf. ZigZag's motivation,
/// which the paper contrasts itself against).

#include <gtest/gtest.h>

#include <vector>

#include "mac/upload_sim.hpp"

namespace sic::mac {
namespace {

constexpr Milliwatts kN0{1.0};
const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

std::vector<channel::LinkBudget> two_clients() {
  return {channel::LinkBudget{Milliwatts{Decibels{24.0}.linear()}, kN0},
          channel::LinkBudget{Milliwatts{Decibels{12.0}.linear()}, kN0}};
}

UploadSimResult run(Decibels mutual_snr, bool sic, double margin,
                    std::uint64_t seed) {
  UploadSimConfig config;
  config.frames_per_client = 20;
  config.client_mutual_snr = mutual_snr;
  config.sic_at_ap = sic;
  config.rate_margin = margin;
  config.seed = seed;
  return run_dcf_upload(two_clients(), kShannon, config);
}

TEST(HiddenTerminal, HiddenClientsCollideMoreThanVisibleOnes) {
  // Mutual SNR 0 dB is far below the 12 dB carrier-sense threshold.
  std::uint64_t visible_collisions = 0;
  std::uint64_t hidden_collisions = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    visible_collisions +=
        run(Decibels{25.0}, true, 1.0, seed).medium.failed_collision;
    hidden_collisions +=
        run(Decibels{0.0}, true, 1.0, seed).medium.failed_collision;
  }
  EXPECT_GT(hidden_collisions, 2 * std::max<std::uint64_t>(visible_collisions, 1));
}

TEST(HiddenTerminal, SicSalvagesHiddenTerminalCollisions) {
  // With a rate margin (practical adapters), the hidden-terminal overlap
  // becomes SIC-decodable at the AP: the SIC receiver delivers more of the
  // offered load than the plain receiver across seeds.
  std::uint64_t delivered_sic = 0;
  std::uint64_t delivered_plain = 0;
  std::uint64_t sic_decodes = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto with_sic = run(Decibels{0.0}, true, 0.5, seed);
    const auto without = run(Decibels{0.0}, false, 0.5, seed);
    delivered_sic += with_sic.delivered;
    delivered_plain += without.delivered;
    sic_decodes += with_sic.medium.sic_decodes;
  }
  EXPECT_GT(sic_decodes, 0u);
  EXPECT_GE(delivered_sic, delivered_plain);
}

TEST(HiddenTerminal, VisibleClientsRarelyCollide) {
  const auto result = run(Decibels{25.0}, true, 1.0, 3);
  // Carrier sense + backoff keeps the loss rate low when everyone hears
  // everyone; some residual collisions (equal backoff draws) are expected.
  EXPECT_LT(result.medium.failed_collision, result.medium.transmissions / 4);
  EXPECT_GE(result.delivered + result.drops, result.offered);
}

}  // namespace
}  // namespace sic::mac
