// Unit tests for the sic::obs time-series registry: ring eviction and
// dropped accounting, name-ordered deterministic CSV/JSONL exports, and the
// thread-local attach point.

#include "obs/timeseries.hpp"

#include <string>

#include <gtest/gtest.h>

namespace sic::obs {
namespace {

TEST(TimeSeries, RecordsPointsOldestFirst) {
  TimeSeries s{4};
  s.record(0, 1.0);
  s.record(1, 2.0);
  s.record(2, 3.0);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.capacity(), 4u);
  EXPECT_EQ(s.dropped(), 0u);
  EXPECT_EQ(s.point(0).epoch, 0u);
  EXPECT_DOUBLE_EQ(s.point(0).value, 1.0);
  EXPECT_EQ(s.point(2).epoch, 2u);
  EXPECT_DOUBLE_EQ(s.point(2).value, 3.0);
}

TEST(TimeSeries, FullRingEvictsOldestAndCountsDrops) {
  TimeSeries s{3};
  for (std::uint64_t e = 0; e < 7; ++e) {
    s.record(e, static_cast<double>(e) * 10.0);
  }
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.dropped(), 4u);
  // The last three samples survive, oldest first.
  EXPECT_EQ(s.point(0).epoch, 4u);
  EXPECT_EQ(s.point(1).epoch, 5u);
  EXPECT_EQ(s.point(2).epoch, 6u);
  EXPECT_DOUBLE_EQ(s.point(2).value, 60.0);
}

TEST(TimeSeriesRegistry, SeriesHaveStableAddressesAndKeepCapacity) {
  TimeSeriesRegistry reg{8};
  TimeSeries& a = reg.series("a");
  EXPECT_EQ(a.capacity(), 8u);
  TimeSeries& b = reg.series("b", 2);
  EXPECT_EQ(b.capacity(), 2u);
  for (int i = 0; i < 50; ++i) {
    reg.series("s" + std::to_string(i));
  }
  EXPECT_EQ(&a, &reg.series("a"));
  // An existing series keeps its original capacity.
  EXPECT_EQ(reg.series("b", 64).capacity(), 2u);
  EXPECT_EQ(reg.n_series(), 52u);
}

TEST(TimeSeriesRegistry, CsvIsWideSortedAndBlankWhereAbsent) {
  TimeSeriesRegistry reg;
  reg.series("z.late").record(1, 2.5);
  reg.series("a.early").record(0, 1.0);
  reg.series("a.early").record(1, 1.5);
  const std::string csv = reg.csv();
  // Header name-ordered; row per distinct epoch; blank cell where a
  // series has no sample.
  EXPECT_EQ(csv,
            "epoch,a.early,z.late\n"
            "0,1,\n"
            "1,1.5,2.5\n");
}

TEST(TimeSeriesRegistry, CsvLastSampleWinsWithinAnEpoch) {
  TimeSeriesRegistry reg;
  reg.series("x").record(3, 1.0);
  reg.series("x").record(3, 9.0);
  EXPECT_EQ(reg.csv(), "epoch,x\n3,9\n");
}

TEST(TimeSeriesRegistry, JsonlIsNameOrderedWithDropCounts) {
  TimeSeriesRegistry reg;
  reg.series("b", 1).record(0, 1.0);
  reg.series("b", 1).record(1, 2.0);  // evicts epoch 0
  reg.series("a").record(5, 0.5);
  EXPECT_EQ(reg.jsonl(),
            "{\"series\":\"a\",\"dropped\":0,\"points\":[[5,0.5]]}\n"
            "{\"series\":\"b\",\"dropped\":1,\"points\":[[1,2]]}\n");
}

TEST(TimeSeriesRegistry, JsonObjectEmbedsAllSeries) {
  TimeSeriesRegistry reg;
  reg.series("one").record(0, 1.0);
  reg.series("two").record(2, 0.25);
  EXPECT_EQ(reg.json_object(),
            "{\"one\":[[0,1]],\"two\":[[2,0.25]]}");
}

TEST(TimeSeriesRegistry, ExportsAreByteIdenticalAcrossRuns) {
  const auto run = [] {
    TimeSeriesRegistry reg;
    reg.series("deploy.health").record(0, 0.1 + 0.2);  // round-trip format
    reg.series("deploy.health").record(1, 1.0 / 3.0);
    reg.series("deploy.offered").record(1, 32.0);
    return reg.csv() + "|" + reg.jsonl() + "|" + reg.json_object();
  };
  EXPECT_EQ(run(), run());
}

TEST(TimeSeriesGlobalAttachPoint, SetReturnsPrevious) {
  ASSERT_EQ(timeseries(), nullptr);
  TimeSeriesRegistry reg;
  EXPECT_EQ(set_timeseries(&reg), nullptr);
  EXPECT_EQ(timeseries(), &reg);
  EXPECT_EQ(set_timeseries(nullptr), &reg);
  EXPECT_EQ(timeseries(), nullptr);
}

}  // namespace
}  // namespace sic::obs
