#include "trace/io.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>

namespace sic::trace {

namespace {

/// Strips a trailing CR (CRLF endings from Windows-authored traces) and
/// trailing spaces/tabs.
std::string rstrip(const std::string& s) {
  std::string_view v{s};
  while (!v.empty() &&
         (v.back() == '\r' || v.back() == ' ' || v.back() == '\t')) {
    v.remove_suffix(1);
  }
  return std::string{v};
}

bool is_blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return c == ' ' || c == '\t'; });
}

[[noreturn]] void malformed(int lineno, const std::string& line,
                            const char* what) {
  throw TraceFormatError("malformed trace CSV at line " +
                         std::to_string(lineno) + " (" + what +
                         "): " + line);
}

}  // namespace

void write_csv(const RssiTrace& trace, std::ostream& os) {
  os << "timestamp_s,ap_id,client_id,rssi_dbm\n";
  for (const auto& snap : trace.snapshots) {
    for (const auto& ap : snap.aps) {
      for (const auto& obs : ap.clients) {
        os << snap.timestamp_s << ',' << ap.ap_id << ',' << obs.client_id
           << ',' << obs.rssi.value() << '\n';
      }
    }
  }
}

void write_csv_file(const RssiTrace& trace, const std::string& path) {
  std::ofstream os{path};
  if (!os) throw TraceIoError("cannot open trace file for write: " + path);
  write_csv(trace, os);
}

RssiTrace read_csv(std::istream& is) {
  std::string raw;
  if (!std::getline(is, raw)) {
    throw TraceFormatError("trace CSV is empty");
  }
  if (rstrip(raw) != "timestamp_s,ap_id,client_id,rssi_dbm") {
    throw TraceFormatError("unexpected trace CSV header: " + raw);
  }
  // timestamp -> ap -> observations
  std::map<std::int64_t, std::map<std::uint32_t, std::vector<ClientObservation>>>
      rows;
  int lineno = 1;
  while (std::getline(is, raw)) {
    ++lineno;
    const std::string line = rstrip(raw);
    if (line.empty() || is_blank(line)) continue;
    std::istringstream ls{line};
    std::int64_t ts = 0;
    std::uint32_t ap = 0;
    std::uint32_t client = 0;
    double rssi = 0.0;
    char c1 = 0, c2 = 0, c3 = 0;
    if (!(ls >> ts >> c1 >> ap >> c2 >> client >> c3 >> rssi) || c1 != ',' ||
        c2 != ',' || c3 != ',') {
      malformed(lineno, raw, "expected timestamp_s,ap_id,client_id,rssi_dbm");
    }
    std::string rest;
    if (ls >> rest) {
      malformed(lineno, raw, "trailing junk after rssi_dbm");
    }
    rows[ts][ap].push_back(ClientObservation{client, Dbm{rssi}});
  }
  RssiTrace trace;
  for (auto& [ts, aps] : rows) {
    Snapshot snap;
    snap.timestamp_s = ts;
    for (auto& [ap_id, clients] : aps) {
      ApSnapshot ap_snap;
      ap_snap.ap_id = ap_id;
      ap_snap.clients = std::move(clients);
      snap.aps.push_back(std::move(ap_snap));
    }
    trace.snapshots.push_back(std::move(snap));
  }
  return trace;
}

RssiTrace read_csv_file(const std::string& path) {
  std::ifstream is{path};
  if (!is) throw TraceIoError("cannot open trace file for read: " + path);
  return read_csv(is);
}

}  // namespace sic::trace
