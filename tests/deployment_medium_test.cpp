/// The Deployment→Medium bridge, and a live two-cell EWLAN simulation on
/// top of it: co-channel cells contending on one floor.

#include "mac/deployment_medium.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "mac/access_point.hpp"
#include "mac/station.hpp"

namespace sic::mac {
namespace {

const phy::ShannonRateAdapter kShannon{megahertz(20.0)};

TEST(DeploymentMedium, GainsMatchDeploymentRss) {
  const auto ewlan = topology::make_ewlan();
  EventQueue queue;
  const auto medium = make_medium_from_deployment(queue, ewlan, kShannon);
  for (const auto& from : ewlan.nodes) {
    for (const auto& to : ewlan.nodes) {
      if (from.id == to.id) continue;
      EXPECT_DOUBLE_EQ(
          medium->gain(static_cast<MacNodeId>(from.id),
                       static_cast<MacNodeId>(to.id)).value(),
          ewlan.rss(from, to).value());
    }
  }
  EXPECT_DOUBLE_EQ(medium->noise().value(), ewlan.noise().value());
}

TEST(DeploymentMedium, AsymmetricPowersGiveAsymmetricGains) {
  auto chain = topology::make_mesh_chain();
  chain.nodes[0].tx_power = Dbm{30.0};  // A runs hot
  chain.nodes[1].tx_power = Dbm{10.0};  // C runs cold
  EventQueue queue;
  const auto medium = make_medium_from_deployment(queue, chain, kShannon);
  EXPECT_GT(medium->gain(0, 1).value(), medium->gain(1, 0).value());
}

TEST(DeploymentMedium, TwoCellEwlanUploadRuns) {
  // Full-floor simulation: both cells' clients contend co-channel; each
  // AP serves its own clients. Everyone is within carrier sense on the
  // default floor, so DCF serializes the whole floor and all frames land.
  const auto ewlan = topology::make_ewlan(/*ap_separation_m=*/30.0,
                                          /*cell_radius_m=*/12.0, /*seed=*/3);
  EventQueue queue;
  const auto medium = make_medium_from_deployment(queue, ewlan, kShannon);
  AccessPoint ap1{queue, *medium, 0};
  AccessPoint ap2{queue, *medium, 1};

  std::vector<std::unique_ptr<DcfStation>> stations;
  const auto add = [&](MacNodeId client, MacNodeId ap, std::uint64_t seed) {
    const double snr =
        ewlan.rss(ewlan.nodes[static_cast<std::size_t>(client)],
                  ewlan.nodes[static_cast<std::size_t>(ap)]) /
        ewlan.noise();
    auto st = std::make_unique<DcfStation>(queue, *medium, client, ap,
                                           kShannon.rate(snr), Rng{seed});
    st->enqueue(5, 12000.0);
    st->start();
    stations.push_back(std::move(st));
  };
  add(2, 0, 1);
  add(3, 0, 2);
  add(4, 1, 3);
  add(5, 1, 4);

  queue.run_until(from_seconds(60.0));

  EXPECT_EQ(ap1.received_from(2) + ap1.received_from(3), 10u);
  EXPECT_EQ(ap2.received_from(4) + ap2.received_from(5), 10u);
  for (const auto& st : stations) {
    EXPECT_TRUE(st->done());
    EXPECT_EQ(st->stats().drops, 0u);
  }
}

TEST(DeploymentMedium, ZeroClientApIsIdleButReachable) {
  // A deployment where one AP has no associated clients: the bridge must
  // still build gains to/from it, and the floor must run — the idle AP
  // simply never receives a data frame.
  topology::Deployment floor;
  floor.nodes.push_back(
      topology::Node{0, topology::NodeRole::kAccessPoint, {0.0, 0.0}});
  floor.nodes.push_back(
      topology::Node{1, topology::NodeRole::kAccessPoint, {40.0, 0.0}});
  floor.nodes.push_back(
      topology::Node{2, topology::NodeRole::kClient, {4.0, 0.0}});
  EventQueue queue;
  const auto medium = make_medium_from_deployment(queue, floor, kShannon);
  AccessPoint busy{queue, *medium, 0};
  AccessPoint idle{queue, *medium, 1};
  EXPECT_GT(medium->gain(2, 1).value(), 0.0);  // idle AP still hears it

  const double snr = floor.rss(floor.nodes[2], floor.nodes[0]) / floor.noise();
  DcfStation station{queue, *medium, 2, 0, kShannon.rate(snr), Rng{1}};
  station.enqueue(3, 12000.0);
  station.start();
  queue.run_until(from_seconds(10.0));

  EXPECT_TRUE(station.done());
  EXPECT_EQ(busy.received_from(2), 3u);
  EXPECT_EQ(idle.received_from(2), 0u);
}

TEST(DeploymentMedium, EquidistantClientHearsBothApsIdentically) {
  // A client exactly halfway between two same-power APs must present
  // bit-identical gains toward both — the tie the deployment engine's
  // association pass breaks toward the lower AP id. Pin the equality here
  // so that tie-break stays a policy choice, not a float accident.
  topology::Deployment floor;
  floor.nodes.push_back(
      topology::Node{0, topology::NodeRole::kAccessPoint, {0.0, 0.0}});
  floor.nodes.push_back(
      topology::Node{1, topology::NodeRole::kAccessPoint, {40.0, 0.0}});
  floor.nodes.push_back(
      topology::Node{2, topology::NodeRole::kClient, {20.0, 0.0}});
  EventQueue queue;
  const auto medium = make_medium_from_deployment(queue, floor, kShannon);
  EXPECT_DOUBLE_EQ(medium->gain(2, 0).value(), medium->gain(2, 1).value());
  EXPECT_DOUBLE_EQ(medium->gain(0, 2).value(), medium->gain(1, 2).value());
}

TEST(DeploymentMedium, RejectsNonContiguousIds) {
  topology::Deployment bad;
  bad.nodes.push_back(topology::Node{5, topology::NodeRole::kClient, {}});
  EventQueue queue;
  EXPECT_THROW((void)make_medium_from_deployment(queue, bad, kShannon),
               std::logic_error);
}

}  // namespace
}  // namespace sic::mac
