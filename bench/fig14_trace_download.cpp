/// Reproduces Fig. 14: trace-based evaluation of two AP→client link pairs
/// under (a) arbitrary (Shannon) bitrates and (b) the discrete 802.11g
/// rate set, each with and without packet packing. Paper: under arbitrary
/// bitrates even packing leaves limited gains; discrete bitrates leave
/// quantization slack for SIC, and packing then yields >20% gain in a
/// substantially larger fraction of scenarios.

#include <cstdio>

#include "analysis/trace_eval.hpp"
#include "bench_util.hpp"
#include "trace/link_trace.hpp"

int main(int argc, char** argv) {
  using namespace sic;
  const bench::RunTimer timer;
  bench::header("Fig. 14 — trace-driven download link pairs",
                "(a) arbitrary bitrates: limited gains; (b) discrete "
                "802.11g bitrates: SIC improves, packing unlocks more");

  trace::LinkTraceConfig config;  // 5 APs x 100 locations
  constexpr std::uint64_t kSeed = 777;
  const auto link_trace = generate_link_trace(config, kSeed);
  analysis::DownloadTraceEvalConfig eval;
  eval.pair_samples = 10000;
  eval.threads = bench::threads(argc, argv);
  std::printf("campaign: %d APs, %d client locations, %d link-pair "
              "scenarios, seed=%llu\n\n",
              link_trace.n_aps(), link_trace.n_locations(), eval.pair_samples,
              static_cast<unsigned long long>(kSeed));

  const phy::ShannonRateAdapter shannon{megahertz(20.0)};
  const phy::DiscreteRateAdapter g{phy::RateTable::dot11g()};

  std::printf("--- (a) arbitrary bitrates ---\n");
  const auto arb = analysis::evaluate_download_trace(link_trace, shannon, eval);
  const analysis::EmpiricalCdf arb_plain{arb.plain};
  const analysis::EmpiricalCdf arb_pack{arb.packing};
  bench::print_fractions("SIC", arb_plain);
  bench::print_fractions("SIC + packing", arb_pack);
  bench::print_cdf("SIC", arb_plain);
  bench::print_cdf("SIC + packing", arb_pack);

  std::printf("\n--- (b) discrete 802.11g bitrates ---\n");
  const auto disc = analysis::evaluate_download_trace(link_trace, g, eval);
  const analysis::EmpiricalCdf disc_plain{disc.plain};
  const analysis::EmpiricalCdf disc_pack{disc.packing};
  bench::print_fractions("SIC", disc_plain);
  bench::print_fractions("SIC + packing", disc_pack);
  bench::print_cdf("SIC", disc_plain);
  bench::print_cdf("SIC + packing", disc_pack);

  std::printf("\nheadline comparison (fraction of scenarios with >20%% gain):\n");
  std::printf("  arbitrary + packing : %.1f%%\n",
              100.0 * arb_pack.fraction_above(1.2));
  std::printf("  discrete  + packing : %.1f%%   (paper: ~40%%)\n",
              100.0 * disc_pack.fraction_above(1.2));
  if (const auto prefix = bench::csv_prefix(argc, argv)) {
    const std::string man = bench::manifest(
        kSeed, timer, 2 * static_cast<std::uint64_t>(eval.pair_samples));
    bench::write_text_file(*prefix + "fig14a_sic.csv",
                           man + bench::cdf_csv(arb_plain));
    bench::write_text_file(*prefix + "fig14a_packing.csv",
                           man + bench::cdf_csv(arb_pack));
    bench::write_text_file(*prefix + "fig14b_sic.csv",
                           man + bench::cdf_csv(disc_plain));
    bench::write_text_file(*prefix + "fig14b_packing.csv",
                           man + bench::cdf_csv(disc_pack));
  }
  return 0;
}
